package sedna

import (
	"strings"
	"testing"
)

const libraryXML = `<library>
  <book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book>
  <book><title>An Introduction to Database Systems</title><author>Date</author>
    <issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book>
  <paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper>
</library>`

func openLib(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.LoadXMLString("library", libraryXML); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicQuery(t *testing.T) {
	db := openLib(t)
	res, err := db.Query(`count(doc("library")//author)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "5" || res.Count != 1 {
		t.Fatalf("res = %+v", res)
	}
	if _, err := db.Query(`UPDATE delete doc("library")//paper`); err == nil {
		t.Fatal("Query must reject update statements")
	}
}

func TestPublicExecuteAutoCommit(t *testing.T) {
	db := openLib(t)
	res, err := db.Execute(`UPDATE insert <author>New</author> into doc("library")/library/paper`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updated != 1 {
		t.Fatalf("updated = %d", res.Updated)
	}
	res, _ = db.Query(`count(doc("library")//author)`)
	if res.Data != "6" {
		t.Fatalf("after insert: %s", res.Data)
	}
}

func TestPublicTransactions(t *testing.T) {
	db := openLib(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Execute(`UPDATE delete doc("library")//paper`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`count(doc("library")//paper)`)
	if res.Data != "1" {
		t.Fatal("rollback lost data")
	}
}

func TestNavigationAPI(t *testing.T) {
	db := openLib(t)
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	root, err := tx.Document("library")
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind() != "document" {
		t.Fatalf("kind = %s", root.Kind())
	}
	kids, err := root.Children()
	if err != nil || len(kids) != 1 {
		t.Fatalf("document children: %d %v", len(kids), err)
	}
	lib := kids[0]
	if lib.Name() != "library" || lib.Path() != "/library" {
		t.Fatalf("lib = %s %s", lib.Name(), lib.Path())
	}
	libKids, err := lib.Children()
	if err != nil || len(libKids) != 3 {
		t.Fatalf("library children = %d", len(libKids))
	}
	book1 := libKids[0]
	title, err := book1.Child("title")
	if err != nil || title == nil {
		t.Fatal("title child missing")
	}
	sv, err := title.StringValue()
	if err != nil || sv != "Foundations of Databases" {
		t.Fatalf("title = %q", sv)
	}
	// Sibling navigation.
	book2, err := book1.NextSibling()
	if err != nil || book2.Name() != "book" {
		t.Fatal("next sibling")
	}
	back, err := book2.PrevSibling()
	if err != nil || back.desc.Ptr != book1.desc.Ptr {
		t.Fatal("prev sibling")
	}
	// Label-based relations.
	if !lib.IsAncestorOf(title) || title.IsAncestorOf(lib) {
		t.Fatal("ancestry via labels")
	}
	if !book1.Before(book2) || book2.Before(book1) {
		t.Fatal("document order via labels")
	}
	// Parent via indirection.
	p, err := title.Parent()
	if err != nil || p.desc.Ptr != book1.desc.Ptr {
		t.Fatal("parent")
	}
	// Serialization.
	xml, err := book2.Child("issue")
	if err != nil || xml == nil {
		t.Fatal("issue missing")
	}
	s, err := xml.XML()
	if err != nil || !strings.Contains(s, "<publisher>Addison-Wesley</publisher>") {
		t.Fatalf("xml = %q", s)
	}
	// Schema dump has the Figure 2 shape.
	if d := lib.SchemaDump(); !strings.Contains(d, `element "library"`) {
		t.Fatalf("schema dump: %s", d)
	}
}

func TestAttrNavigation(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.LoadXMLString("d", `<r><e id="42" cls="x">body</e></r>`)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	root, _ := tx.Document("d")
	kids, _ := root.Children()
	e, _ := kids[0].Child("e")
	v, err := e.Attr("id")
	if err != nil || v != "42" {
		t.Fatalf("attr = %q", v)
	}
	if v, _ := e.Attr("missing"); v != "" {
		t.Fatalf("missing attr = %q", v)
	}
}

func TestPersistencePublicAPI(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadXMLString("d", `<r><v>keep</v></r>`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`doc("d")/r/v/text()`)
	if err != nil || res.Data != "keep" {
		t.Fatalf("res = %+v err = %v", res, err)
	}
	if docs := db2.Documents(); len(docs) != 1 || docs[0] != "d" {
		t.Fatalf("documents = %v", docs)
	}
}

func TestIndexSurvivesCleanRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadXMLString("library", libraryXML)
	if _, err := db.Execute(`CREATE INDEX "byauthor" ON doc("library")//book BY author AS string`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query(`index-scan("byauthor", "Date")/title/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "An Introduction to Database Systems" {
		t.Fatalf("index after restart: %q", res.Data)
	}
	// The index stays maintained after restart.
	if _, err := db2.Execute(`UPDATE insert <book><title>T</title><author>Zhu</author></book> into doc("library")/library`); err != nil {
		t.Fatal(err)
	}
	res, _ = db2.Query(`count(index-scan("byauthor", "Zhu"))`)
	if res.Data != "1" {
		t.Fatalf("index not maintained after restart: %s", res.Data)
	}
}

func TestBackupPublicAPI(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir+"/db", &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadXMLString("d", `<r/>`)
	if err := db.Backup(dir + "/bak"); err != nil {
		t.Fatal(err)
	}
	db.Execute(`UPDATE insert <x/> into doc("d")/r`)
	if err := db.BackupIncremental(dir + "/bak"); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := Restore(dir+"/bak", dir+"/restored", -1); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir+"/restored", &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, _ := db2.Query(`count(doc("d")/r/x)`)
	if res.Data != "1" {
		t.Fatalf("restored count = %s", res.Data)
	}
}
