// Recovery: demonstrates §6.4 and §6.5 — write-ahead logging, the two-step
// crash recovery (persistent-snapshot restore + committed-transaction
// redo), and hot backup with incremental point-in-time restore.
//
// A crash is simulated by abandoning the database files without a clean
// shutdown and reopening them.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sedna"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbDir := filepath.Join(dir, "db")

	// --- Phase 1: committed work, then a "crash" -------------------------
	db, err := sedna.Open(dbDir, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadXMLString("accounts", `<accounts>
	    <account id="a"><balance>100</balance></account>
	    <account id="b"><balance>50</balance></account>
	  </accounts>`); err != nil {
		log.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// A committed post-checkpoint transaction (must survive)...
	if _, err := db.Execute(`UPDATE replace $b in doc("accounts")//account[@id = "a"]/balance
	                         with <balance>75</balance>`); err != nil {
		log.Fatal(err)
	}
	// ...and an uncommitted one (must disappear).
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Execute(`UPDATE delete doc("accounts")//account[@id = "b"]`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulating a crash with one committed and one in-flight transaction...")
	// Abandon everything without Close: the crash. (The open files are
	// dropped with the process in a real crash; here we just reopen.)
	crash(db)

	// --- Phase 2: recovery ----------------------------------------------
	db2, err := sedna.Open(dbDir, nil) // Open always runs two-step recovery
	if err != nil {
		log.Fatal(err)
	}
	res, err := db2.Query(`data(doc("accounts")//account[@id = "a"]/balance)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("account a after recovery: %s (committed update redone)\n", res.Data)
	res, err = db2.Query(`count(doc("accounts")//account)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accounts after recovery: %s (uncommitted delete discarded)\n", res.Data)

	// --- Phase 3: hot backup + point-in-time restore ---------------------
	backupDir := filepath.Join(dir, "backup")
	if err := db2.Backup(backupDir); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full hot backup taken")

	if _, err := db2.Execute(`UPDATE insert <account id="c"><balance>10</balance></account>
	                          into doc("accounts")/accounts`); err != nil {
		log.Fatal(err)
	}
	if err := db2.BackupIncremental(backupDir); err != nil {
		log.Fatal(err)
	}
	fmt.Println("incremental backup 1 taken (account c)")

	if _, err := db2.Execute(`UPDATE insert <account id="d"><balance>20</balance></account>
	                          into doc("accounts")/accounts`); err != nil {
		log.Fatal(err)
	}
	if err := db2.BackupIncremental(backupDir); err != nil {
		log.Fatal(err)
	}
	fmt.Println("incremental backup 2 taken (account d)")
	db2.Close()

	// Restore to the state after incremental 1 — point-in-time recovery.
	restored := filepath.Join(dir, "restored")
	if err := sedna.Restore(backupDir, restored, 1); err != nil {
		log.Fatal(err)
	}
	db3, err := sedna.Open(restored, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db3.Close()
	res, err = db3.Query(`string-join(for $a in doc("accounts")//account return string($a/@id), ",")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accounts in point-in-time restore (after incremental 1): %s\n", res.Data)
}

// crash abandons the database as a crash would. The test suite uses an
// internal hook; for the example we simply leak the handles — the files on
// disk are in exactly the state a kill -9 would leave.
func crash(db *sedna.DB) {
	_ = db // intentionally no Close
}
