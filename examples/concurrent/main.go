// Concurrent: demonstrates §6 — updaters mutate a document under
// document-granularity strict 2PL while snapshot (read-only) transactions
// keep reading consistent states without ever blocking (§6.3), and a
// long-lived snapshot observes the state it started with even as commits
// land.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sedna"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-concurrent-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sedna.Open(filepath.Join(dir, "db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.LoadXMLString("counter", `<state><items></items></state>`); err != nil {
		log.Fatal(err)
	}

	// A long-lived snapshot taken before any update.
	longSnap, err := db.BeginReadOnly()
	if err != nil {
		log.Fatal(err)
	}

	const writers = 2
	const readers = 4
	const writesEach = 50

	var writerWG, readerWG sync.WaitGroup
	var readsDone atomic.Int64
	stop := make(chan struct{})

	// Writers append items, each in its own committed transaction.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < writesEach; i++ {
				stmt := fmt.Sprintf(
					`UPDATE insert <item w="%d" n="%d"/> into doc("counter")/state/items`, w, i)
				if _, err := db.Execute(stmt); err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers run snapshot queries concurrently; they never wait for
	// writers' locks.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(`count(doc("counter")//item)`); err != nil {
					log.Printf("reader: %v", err)
					return
				}
				readsDone.Add(1)
			}
		}()
	}

	start := time.Now()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	elapsed := time.Since(start)

	res, err := db.Query(`count(doc("counter")//item)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final item count: %s (want %d)\n", res.Data, writers*writesEach)
	fmt.Printf("snapshot reads completed while writing: %d in %v\n",
		readsDone.Load(), elapsed.Round(time.Millisecond))

	// The long-lived snapshot still sees the initial, empty state.
	resOld, err := longSnap.Execute(`count(doc("counter")//item)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long-lived snapshot still sees: %s items (consistent past state)\n", resOld.Data)
	longSnap.Rollback()

	st := db.BufferStats()
	fmt.Printf("page versions made: %d, purged: %d (piggybacked, §6.1)\n",
		st.VersionsMade, st.VersionsFreed)
}
