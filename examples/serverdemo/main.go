// Serverdemo: the client-server architecture of the paper's Figure 1 in one
// process — a governor managing sessions over TCP, two client sessions with
// explicit transactions, and the governor's introspection counters.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sedna/client"
	"sedna/internal/core"
	"sedna/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-serverdemo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(filepath.Join(dir, "db"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	srv, err := server.Listen(db, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("sednad listening on %s\n", srv.Addr())

	// Session 1 creates and fills a document.
	c1, err := client.Connect(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c1.Close()
	mustExec(c1, `CREATE DOCUMENT "inventory"`)
	mustExec(c1, `UPDATE insert
	  <inventory>
	    <part sku="bolt-m4"><qty>120</qty></part>
	    <part sku="nut-m4"><qty>95</qty></part>
	  </inventory> into doc("inventory")`)

	// Session 2 reads concurrently.
	c2, err := client.Connect(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Execute(`for $p in doc("inventory")//part
	                        order by $p/@sku
	                        return <line sku="{$p/@sku}" qty="{$p/qty/text()}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("session 2 sees:", res.Data)

	// Session 1 runs an explicit transaction and rolls it back; session 2
	// never observes the intermediate state.
	if err := c1.Begin(false); err != nil {
		log.Fatal(err)
	}
	mustExec(c1, `UPDATE delete doc("inventory")//part`)
	res, _ = c2.Execute(`count(doc("inventory")//part)`)
	fmt.Println("during session 1's uncommitted delete, session 2 counts:", res.Data)
	if err := c1.Rollback(); err != nil {
		log.Fatal(err)
	}
	res, _ = c2.Execute(`count(doc("inventory")//part)`)
	fmt.Println("after rollback, session 2 counts:", res.Data)

	gov := srv.Governor()
	fmt.Printf("governor: %d sessions registered, %d transactions started\n",
		gov.SessionCount(), gov.TxnsStarted())
}

func mustExec(c *client.Conn, stmt string) {
	if _, err := c.Execute(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
