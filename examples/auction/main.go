// Auction: an XMark-inspired analytical workload over a deeper, more varied
// document — FLWOR joins between people and bids, aggregation, ordering and
// element construction.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sedna"
	"sedna/internal/xmlgen"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-auction-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sedna.Open(filepath.Join(dir, "db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Println("loading auction site (400 people, 150 auctions, 4 bids each)...")
	doc := xmlgen.AuctionString(400, 150, 4, 7)
	if err := db.LoadXML("auction", strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}

	run := func(title, q string) {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		out := res.Data
		if len(out) > 120 {
			out = out[:120] + "..."
		}
		fmt.Printf("\n%s (%v)\n  %s\n", title, time.Since(start).Round(time.Microsecond), out)
	}

	run("Q1: how many bids in total?",
		`count(doc("auction")//bidder)`)

	run("Q2: the five highest current prices",
		`string-join(
		   for $p in (for $a in doc("auction")//open_auction
		              order by number($a/current) descending
		              return $a/current/text())[position() <= 5]
		   return string($p), ", ")`)

	run("Q3: auctions whose current price grew past 20x the initial",
		`count(for $a in doc("auction")//open_auction
		       where number($a/current) > 20 * number($a/initial)
		       return $a)`)

	run("Q4: people with a stated interest in Databases",
		`count(doc("auction")//person[profile/interest = "Databases"])`)

	run("Q5: construct a report of expensive european items",
		`<report>{
		   for $i in doc("auction")/site/regions/europe/item
		   where number($i/quantity) >= 5
		   return <lot name="{$i/name/text()}" qty="{$i/quantity/text()}"/>
		 }</report>`)

	run("Q6: average number of bids per auction",
		`avg(for $a in doc("auction")//open_auction return count($a/bidder))`)

	// An update workload: close cheap auctions.
	res, err := db.Execute(
		`UPDATE delete doc("auction")//open_auction[number(current) < 100]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed %d cheap auctions\n", res.Updated)
	res, _ = db.Query(`count(doc("auction")//open_auction)`)
	fmt.Printf("auctions remaining: %s\n", res.Data)
}
