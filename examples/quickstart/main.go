// Quickstart: open a database, load a document, query it, update it, and
// read it back — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sedna"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sedna.Open(filepath.Join(dir, "db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load the paper's running example.
	err = db.LoadXMLString("library", `
		<library>
		  <book>
		    <title>Foundations of Databases</title>
		    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
		  </book>
		  <book>
		    <title>An Introduction to Database Systems</title>
		    <author>Date</author>
		    <issue><publisher>Addison-Wesley</publisher><year>2004</year></issue>
		  </book>
		  <paper>
		    <title>A Relational Model for Large Shared Data Banks</title>
		    <author>Codd</author>
		  </paper>
		</library>`)
	if err != nil {
		log.Fatal(err)
	}

	// Query with XQuery.
	res, err := db.Query(`for $b in doc("library")/library/book
	                      where count($b/author) > 1
	                      return $b/title/text()`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books with several authors:", res.Data)

	// Update with XUpdate.
	if _, err := db.Execute(`UPDATE insert <year>1995</year> into doc("library")/library/book[1]`); err != nil {
		log.Fatal(err)
	}

	// Element construction.
	res, err = db.Query(`<summary books="{count(doc("library")//book)}"
	                              papers="{count(doc("library")//paper)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("summary:", res.Data)

	// Direct navigation API.
	tx, err := db.BeginReadOnly()
	if err != nil {
		log.Fatal(err)
	}
	defer tx.Rollback()
	root, err := tx.Document("library")
	if err != nil {
		log.Fatal(err)
	}
	kids, _ := root.Children()
	lib := kids[0]
	fmt.Println("descriptive schema of the document:")
	fmt.Print(lib.SchemaDump())
}
