// Library: reproduces the paper's Figure 2 behaviourally. It loads a scaled
// library corpus, prints the descriptive schema tree (the figure's central
// structure) with per-schema-node node/block counts, shows how the
// schema acts as a naturally built index for path queries, and demonstrates
// updates maintaining the clustering.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sedna"
	"sedna/internal/xmlgen"
)

func main() {
	dir, err := os.MkdirTemp("", "sedna-library-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sedna.Open(filepath.Join(dir, "db"), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const entries = 5000
	fmt.Printf("loading a %d-entry library corpus...\n", entries)
	start := time.Now()
	if err := db.LoadXML("library", strings.NewReader(xmlgen.LibraryString(entries, 42))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Figure 2: the descriptive schema is a concise structure summary —
	// every path in the document has exactly one schema path, and each
	// schema node heads the block list clustering its nodes.
	tx, err := db.BeginReadOnly()
	if err != nil {
		log.Fatal(err)
	}
	root, _ := tx.Document("library")
	kids, _ := root.Children()
	fmt.Println("descriptive schema (cf. paper Figure 2):")
	fmt.Print(kids[0].SchemaDump())
	tx.Rollback()

	// The schema-driven layout answers selective path queries by touching
	// only the matching schema nodes' blocks.
	queries := []string{
		`count(doc("library")/library/book)`,
		`count(doc("library")//author)`,
		`doc("library")/library/book[10]/title/text()`,
		`count(doc("library")//issue[year > 2000])`,
		`string-join(distinct-values(for $p in doc("library")//publisher return string($p)), ", ")`,
	}
	for _, q := range queries {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  => %.80s  (%v, %d schema scans)\n",
			q, res.Data, time.Since(start).Round(time.Microsecond), res.Stats.SchemaScans)
	}

	// Value index + explicit index scan (cost-based selection is future
	// work in the paper, as in the original Sedna).
	if _, err := db.Execute(`CREATE INDEX "byyear" ON doc("library")/library/book BY year AS number`); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`count(index-scan("byyear", 1995))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbooks from 1995 via value index: %s\n", res.Data)

	// Updates keep the clustering and the index consistent.
	if _, err := db.Execute(`UPDATE insert
	    <book><title>Transaction Processing</title><author>Gray</author><year>1995</year></book>
	    into doc("library")/library`); err != nil {
		log.Fatal(err)
	}
	res, _ = db.Query(`count(index-scan("byyear", 1995))`)
	fmt.Printf("after inserting one more 1995 book: %s\n", res.Data)
}
