// Package subtree implements the baseline storage strategy the paper
// contrasts with schema-driven clustering (§2): an XML document stored as
// depth-first-serialized subtrees, so an element is physically adjacent to
// its descendants. Retrieving a whole element (with sub-elements of all
// types) is a contiguous read; selecting only nodes of one name/predicate
// must visit every record, because records of different element types share
// pages. Experiment E1 measures both sides of that trade-off against the
// schema-driven store.
//
// The store uses the same page substrate (storage.Writer/Reader) as the
// main engine, so buffer-manager costs are comparable.
package subtree

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"sedna/internal/sas"
	"sedna/internal/storage"
)

// Page layout: kind(1) pad(1) used(2) next(8) = 12-byte header, then data.
const (
	pageKind   = 6
	phUsed     = 2
	phNext     = 4
	pageHeader = 12
	pageData   = sas.PageSize - pageHeader
)

// Record header: kind(1) nameLen(2) textLen(4) subtreeLen(4) = 11 bytes,
// then name bytes, then text bytes. subtreeLen is the total encoded length
// of the record and all its descendants, enabling contiguous subtree reads
// and subtree skips.
const recHeader = 11

// Node kinds.
const (
	KindElement = 1
	KindText    = 2
	KindAttr    = 3
)

// Store is one subtree-clustered document.
type Store struct {
	First sas.XPtr // first page
	Size  int64    // total encoded bytes
}

// writerStream appends bytes across chained pages.
type writerStream struct {
	w     storage.Writer
	first sas.XPtr
	cur   sas.XPtr
	used  int
	total int64
	buf   []byte // page-local buffer flushed on page switch
}

func newWriterStream(w storage.Writer) (*writerStream, error) {
	ws := &writerStream{w: w}
	if err := ws.newPage(); err != nil {
		return nil, err
	}
	ws.first = ws.cur
	return ws, nil
}

func (ws *writerStream) newPage() error {
	id, err := ws.w.AllocPage()
	if err != nil {
		return err
	}
	page := make([]byte, sas.PageSize)
	page[0] = pageKind
	if err := ws.w.WriteAt(id.Ptr(), page); err != nil {
		return err
	}
	if !ws.cur.IsNil() {
		if err := ws.flush(); err != nil {
			return err
		}
		var next [8]byte
		binary.LittleEndian.PutUint64(next[:], uint64(id.Ptr()))
		if err := ws.w.WriteAt(ws.cur.Add(phNext), next[:]); err != nil {
			return err
		}
	}
	ws.cur = id.Ptr()
	ws.used = 0
	ws.buf = ws.buf[:0]
	return nil
}

func (ws *writerStream) flush() error {
	if len(ws.buf) == 0 {
		return nil
	}
	off := pageHeader + ws.used - len(ws.buf)
	if err := ws.w.WriteAt(ws.cur.Add(uint32(off)), ws.buf); err != nil {
		return err
	}
	var used [2]byte
	binary.LittleEndian.PutUint16(used[:], uint16(ws.used))
	if err := ws.w.WriteAt(ws.cur.Add(phUsed), used[:]); err != nil {
		return err
	}
	ws.buf = ws.buf[:0]
	return nil
}

func (ws *writerStream) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if ws.used == pageData {
			if err := ws.newPage(); err != nil {
				return 0, err
			}
		}
		room := pageData - ws.used
		chunk := p
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		ws.buf = append(ws.buf, chunk...)
		ws.used += len(chunk)
		ws.total += int64(len(chunk))
		p = p[len(chunk):]
	}
	return n, nil
}

// node is the in-memory build tree.
type node struct {
	kind     byte
	name     string
	text     string
	children []*node
}

func (n *node) encodedLen() int {
	total := recHeader + len(n.name) + len(n.text)
	for _, c := range n.children {
		total += c.encodedLen()
	}
	return total
}

func (n *node) encode(w io.Writer) error {
	var hdr [recHeader]byte
	hdr[0] = n.kind
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(n.name)))
	binary.LittleEndian.PutUint32(hdr[3:], uint32(len(n.text)))
	binary.LittleEndian.PutUint32(hdr[7:], uint32(n.encodedLen()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, n.name); err != nil {
		return err
	}
	if _, err := io.WriteString(w, n.text); err != nil {
		return err
	}
	for _, c := range n.children {
		if err := c.encode(w); err != nil {
			return err
		}
	}
	return nil
}

// Load parses XML from r and stores it subtree-clustered.
func Load(w storage.Writer, r io.Reader) (*Store, error) {
	dec := xml.NewDecoder(r)
	root := &node{kind: KindElement, name: "#document"}
	stack := []*node{root}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("subtree: parse: %w", err)
		}
		top := stack[len(stack)-1]
		switch tk := tok.(type) {
		case xml.StartElement:
			n := &node{kind: KindElement, name: tk.Name.Local}
			for _, a := range tk.Attr {
				n.children = append(n.children, &node{kind: KindAttr, name: a.Name.Local, text: a.Value})
			}
			top.children = append(top.children, n)
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(tk)
			if strings.TrimSpace(s) == "" {
				continue
			}
			top.children = append(top.children, &node{kind: KindText, text: s})
		}
	}
	ws, err := newWriterStream(w)
	if err != nil {
		return nil, err
	}
	if err := root.encode(ws); err != nil {
		return nil, err
	}
	if err := ws.flush(); err != nil {
		return nil, err
	}
	return &Store{First: ws.first, Size: ws.total}, nil
}

// stream reads the byte stream back across chained pages.
type stream struct {
	r    storage.Reader
	cur  sas.XPtr
	off  int // offset into current page data
	used int
	next sas.XPtr
	pos  int64
}

func (s *Store) open(r storage.Reader) (*stream, error) {
	st := &stream{r: r, cur: s.First}
	if err := st.loadHeader(); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *stream) loadHeader() error {
	return st.r.ReadPage(st.cur, func(page []byte) error {
		if page[0] != pageKind {
			return fmt.Errorf("subtree: page %v has kind %d", st.cur, page[0])
		}
		st.used = int(binary.LittleEndian.Uint16(page[phUsed:]))
		st.next = sas.XPtr(binary.LittleEndian.Uint64(page[phNext:]))
		st.off = 0
		return nil
	})
}

func (st *stream) Read(p []byte) (int, error) {
	if st.off >= st.used {
		if st.next.IsNil() {
			return 0, io.EOF
		}
		st.cur = st.next
		if err := st.loadHeader(); err != nil {
			return 0, err
		}
		if st.used == 0 {
			return 0, io.EOF
		}
	}
	var n int
	err := st.r.ReadPage(st.cur, func(page []byte) error {
		data := page[pageHeader+st.off : pageHeader+st.used]
		n = copy(p, data)
		return nil
	})
	if err != nil {
		return 0, err
	}
	st.off += n
	st.pos += int64(n)
	return n, nil
}

// Rec is one decoded record header.
type Rec struct {
	Kind       byte
	Name       string
	Text       string
	SubtreeLen int
	Pos        int64 // stream position of the record start
}

// Scan visits every record in document order — the full-document scan that
// selective queries pay under subtree clustering. visit returning false
// stops.
func (s *Store) Scan(r storage.Reader, visit func(Rec) (bool, error)) error {
	st, err := s.open(r)
	if err != nil {
		return err
	}
	br := &byteReader{s: st}
	for {
		pos := st.pos - int64(br.buffered())
		var hdr [recHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		nameLen := int(binary.LittleEndian.Uint16(hdr[1:]))
		textLen := int(binary.LittleEndian.Uint32(hdr[3:]))
		sub := int(binary.LittleEndian.Uint32(hdr[7:]))
		nb := make([]byte, nameLen+textLen)
		if _, err := io.ReadFull(br, nb); err != nil {
			return err
		}
		rec := Rec{
			Kind: hdr[0], Name: string(nb[:nameLen]), Text: string(nb[nameLen:]),
			SubtreeLen: sub, Pos: pos,
		}
		cont, err := visit(rec)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
}

// ReadSubtreeBytes reads the full encoded subtree at stream position pos —
// the contiguous read that makes subtree clustering fast for whole-element
// retrieval.
func (s *Store) ReadSubtreeBytes(r storage.Reader, pos int64, subtreeLen int) ([]byte, error) {
	st, err := s.open(r)
	if err != nil {
		return nil, err
	}
	if err := skipN(st, pos); err != nil {
		return nil, err
	}
	out := make([]byte, subtreeLen)
	if _, err := io.ReadFull(st, out); err != nil {
		return nil, err
	}
	return out, nil
}

func skipN(r io.Reader, n int64) error {
	_, err := io.CopyN(io.Discard, r, n)
	return err
}

// byteReader adds small-read buffering over the page stream.
type byteReader struct {
	s   *stream
	buf [512]byte
	r   int
	n   int
}

func (b *byteReader) buffered() int { return b.n - b.r }

func (b *byteReader) Read(p []byte) (int, error) {
	if b.r == b.n {
		n, err := b.s.Read(b.buf[:])
		if err != nil {
			return 0, err
		}
		b.r, b.n = 0, n
	}
	n := copy(p, b.buf[b.r:b.n])
	b.r += n
	return n, nil
}
