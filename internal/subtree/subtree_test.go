package subtree

import (
	"strings"
	"testing"

	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/xmlgen"
)

// memWriter is an in-memory storage.Writer.
type memWriter struct {
	pages map[sas.PageID][]byte
	next  uint64
}

func newMemWriter() *memWriter {
	return &memWriter{pages: make(map[sas.PageID][]byte), next: 1}
}

func (m *memWriter) page(id sas.PageID) []byte {
	p := m.pages[id]
	if p == nil {
		p = make([]byte, sas.PageSize)
		m.pages[id] = p
	}
	return p
}
func (m *memWriter) ReadPage(p sas.XPtr, fn func(page []byte) error) error {
	return fn(m.page(sas.PageIDOf(p)))
}
func (m *memWriter) TxnID() uint64 { return 1 }
func (m *memWriter) WriteAt(p sas.XPtr, data []byte) error {
	copy(m.page(sas.PageIDOf(p))[p.PageOffset():], data)
	return nil
}
func (m *memWriter) AllocPage() (sas.PageID, error) {
	id := sas.PageIDFromGlobal(m.next)
	m.next++
	return id, nil
}
func (m *memWriter) FreePage(sas.PageID) error                               { return nil }
func (m *memWriter) NoteSchemaNode(*storage.Doc, *schema.Node, *schema.Node) {}
func (m *memWriter) NoteSchemaBlocks(*storage.Doc, *schema.Node)             {}
func (m *memWriter) NoteDocMeta(*storage.Doc)                                {}
func (m *memWriter) TouchDoc(doc *storage.Doc)                               {}

func (m *memWriter) Defer(func()) {}

func TestLoadAndScan(t *testing.T) {
	w := newMemWriter()
	s, err := Load(w, strings.NewReader(`<lib><book><title>A</title><author>X</author></book><book><title>B</title></book></lib>`))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var titles []string
	err = s.Scan(w, func(r Rec) (bool, error) {
		if r.Kind == KindElement {
			names = append(names, r.Name)
		}
		if r.Kind == KindText {
			titles = append(titles, r.Text)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"#document", "lib", "book", "title", "author", "book", "title"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if len(titles) != 3 || titles[0] != "A" {
		t.Fatalf("texts = %v", titles)
	}
}

func TestSubtreeContiguousRead(t *testing.T) {
	w := newMemWriter()
	s, err := Load(w, strings.NewReader(xmlgen.LibraryString(200, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Find the 5th book and read its whole subtree contiguously.
	found := 0
	var rec Rec
	err = s.Scan(w, func(r Rec) (bool, error) {
		if r.Kind == KindElement && r.Name == "book" {
			found++
			if found == 5 {
				rec = r
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil || found != 5 {
		t.Fatalf("scan: found=%d err=%v", found, err)
	}
	raw, err := s.ReadSubtreeBytes(w, rec.Pos, rec.SubtreeLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != rec.SubtreeLen {
		t.Fatalf("subtree read %d bytes, want %d", len(raw), rec.SubtreeLen)
	}
	// The first record in the blob is the book itself.
	if raw[0] != KindElement {
		t.Fatalf("subtree head kind = %d", raw[0])
	}
}

func TestMultiPageDocument(t *testing.T) {
	w := newMemWriter()
	s, err := Load(w, strings.NewReader(xmlgen.LibraryString(3000, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size < int64(sas.PageSize)*2 {
		t.Fatalf("document too small to span pages: %d", s.Size)
	}
	count := 0
	err = s.Scan(w, func(r Rec) (bool, error) {
		if r.Kind == KindElement && r.Name == "author" {
			count++
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no authors found in multi-page scan")
	}
}
