package index

import (
	"fmt"
	"math/rand"
	"testing"

	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// memWriter is an in-memory storage.Writer for index tests.
type memWriter struct {
	pages map[sas.PageID][]byte
	next  uint64
}

func newMemWriter() *memWriter {
	return &memWriter{pages: make(map[sas.PageID][]byte), next: 1}
}

func (m *memWriter) page(id sas.PageID) []byte {
	p := m.pages[id]
	if p == nil {
		p = make([]byte, sas.PageSize)
		m.pages[id] = p
	}
	return p
}

func (m *memWriter) ReadPage(p sas.XPtr, fn func(page []byte) error) error {
	return fn(m.page(sas.PageIDOf(p)))
}
func (m *memWriter) TxnID() uint64 { return 1 }
func (m *memWriter) WriteAt(p sas.XPtr, data []byte) error {
	copy(m.page(sas.PageIDOf(p))[p.PageOffset():], data)
	return nil
}
func (m *memWriter) AllocPage() (sas.PageID, error) {
	id := sas.PageIDFromGlobal(m.next)
	m.next++
	return id, nil
}
func (m *memWriter) FreePage(id sas.PageID) error                               { return nil }
func (m *memWriter) NoteSchemaNode(doc *storage.Doc, parent, node *schema.Node) {}
func (m *memWriter) NoteSchemaBlocks(doc *storage.Doc, node *schema.Node)       {}
func (m *memWriter) NoteDocMeta(doc *storage.Doc)                               {}
func (m *memWriter) TouchDoc(doc *storage.Doc)                                  {}

func (m *memWriter) Defer(func()) {}

func handle(i int) sas.XPtr { return sas.MakePtr(7, uint32(i)*8) }

func TestInsertLookup(t *testing.T) {
	w := newMemWriter()
	tr, err := Create(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(w, StringKey(fmt.Sprintf("key-%03d", i)), handle(i)); err != nil {
			t.Fatal(err)
		}
	}
	hs, err := tr.Lookup(w, StringKey("key-042"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0] != handle(42) {
		t.Fatalf("lookup = %v", hs)
	}
	if hs, _ := tr.Lookup(w, StringKey("absent")); len(hs) != 0 {
		t.Fatalf("absent key found: %v", hs)
	}
}

func TestDuplicateKeysDistinctHandles(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(w, StringKey("dup"), handle(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-inserting the same (key, handle) is a no-op.
	if err := tr.Insert(w, StringKey("dup"), handle(3)); err != nil {
		t.Fatal(err)
	}
	hs, _ := tr.Lookup(w, StringKey("dup"))
	if len(hs) != 10 {
		t.Fatalf("duplicates = %d, want 10", len(hs))
	}
}

func TestSplitsAndOrder(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	n := leafCap()*5 + 17 // force leaf and internal splits
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(w, NumberKey(float64(i)), handle(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := tr.Count(w); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	// Full range scan must be sorted and complete.
	var lo, hi Key
	for i := range hi {
		hi[i] = 0xFF
	}
	prev := -1
	err := tr.Range(w, lo, hi, func(k Key, h sas.XPtr) bool {
		cur := int(h.Offset()) / 8
		_ = k
		if prevKeyGreater(t, prev, cur) {
			t.Fatalf("out of order: %d after %d", cur, prev)
		}
		prev = cur
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func prevKeyGreater(t *testing.T, prev, cur int) bool {
	t.Helper()
	return prev >= 0 && cur < prev
}

func TestNumberKeyOrdering(t *testing.T) {
	vals := []float64{-1e9, -3.5, -1, -0.25, 0, 0.25, 1, 3.5, 42, 1e9}
	for i := 0; i+1 < len(vals); i++ {
		a, b := NumberKey(vals[i]), NumberKey(vals[i+1])
		if !(string(a[:]) < string(b[:])) {
			t.Fatalf("NumberKey(%g) !< NumberKey(%g)", vals[i], vals[i+1])
		}
	}
}

func TestDelete(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	for i := 0; i < 200; i++ {
		tr.Insert(w, NumberKey(float64(i)), handle(i))
	}
	for i := 0; i < 200; i += 2 {
		if err := tr.Delete(w, NumberKey(float64(i)), handle(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting a missing entry is a no-op.
	if err := tr.Delete(w, NumberKey(9999), handle(1)); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Count(w); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if hs, _ := tr.Lookup(w, NumberKey(4)); len(hs) != 0 {
		t.Fatal("deleted key still present")
	}
	if hs, _ := tr.Lookup(w, NumberKey(5)); len(hs) != 1 {
		t.Fatal("kept key lost")
	}
}

func TestRangeScan(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	for i := 0; i < 1000; i++ {
		tr.Insert(w, NumberKey(float64(i)), handle(i))
	}
	got := 0
	err := tr.Range(w, NumberKey(100), NumberKey(199), func(k Key, h sas.XPtr) bool {
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("range hits = %d, want 100", got)
	}
}

func TestRandomInsertDeleteProperty(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	rng := rand.New(rand.NewSource(11))
	ref := make(map[int]bool)
	for op := 0; op < 5000; op++ {
		i := rng.Intn(800)
		if rng.Intn(3) == 0 {
			tr.Delete(w, NumberKey(float64(i)), handle(i))
			delete(ref, i)
		} else {
			tr.Insert(w, NumberKey(float64(i)), handle(i))
			ref[i] = true
		}
	}
	if got, _ := tr.Count(w); got != len(ref) {
		t.Fatalf("count = %d, want %d", got, len(ref))
	}
	for i := range ref {
		hs, _ := tr.Lookup(w, NumberKey(float64(i)))
		if len(hs) != 1 {
			t.Fatalf("key %d: %d hits", i, len(hs))
		}
	}
}

func TestFreeAll(t *testing.T) {
	w := newMemWriter()
	tr, _ := Create(w)
	for i := 0; i < leafCap()*3; i++ {
		tr.Insert(w, NumberKey(float64(i)), handle(i))
	}
	if err := tr.FreeAll(w); err != nil {
		t.Fatal(err)
	}
}
