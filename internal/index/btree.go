// Package index implements Sedna's value indexes: a B+tree keyed by a typed
// value (string or number) mapping to node handles (§4.1.2: "node handle is
// used to refer to an XML node from index structures" — handles stay valid
// when descriptors move). The tree lives in database pages accessed through
// the storage Writer/Reader interfaces, so index updates are WAL-logged,
// versioned for snapshots, and physically redone by recovery like all other
// page content.
//
// Keys are normalized to a fixed 24-byte prefix (strings truncated, numbers
// order-preservingly encoded); the node handle is the tiebreaker. Equal
// prefixes of distinct long strings make the index imprecise, so lookups
// must be rechecked against the actual value — the query executor does.
package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"sedna/internal/sas"
	"sedna/internal/storage"
)

// KeyPrefixSize is the fixed normalized-key size.
const KeyPrefixSize = 24

// Page kinds (continuing the storage block-kind space).
const (
	kindInternal = 4
	kindLeaf     = 5
)

// Entry layout:
//
//	leaf:     key[24] | handle(8)                    = 32 bytes
//	internal: key[24] | handle(8) | child(8)         = 40 bytes
//
// Internal entry i's child covers keys >= entry i's (key,handle) and < the
// next entry's; a separate leftmost child pointer covers smaller keys.
//
// Page header: kind(1) pad(1) count(2) next(8) leftmost(8) = 20 bytes.
const (
	hdrCount    = 2
	hdrNext     = 4 // leaf chain (leaves only)
	hdrLeftmost = 12
	headerSize  = 20
	leafEntry   = KeyPrefixSize + 8
	innerEntry  = KeyPrefixSize + 16
)

func leafCap() int  { return (sas.PageSize - headerSize) / leafEntry }
func innerCap() int { return (sas.PageSize - headerSize) / innerEntry }

// Key is a normalized index key.
type Key [KeyPrefixSize]byte

// StringKey normalizes a string value.
func StringKey(s string) Key {
	var k Key
	k[0] = 's'
	copy(k[1:], s)
	return k
}

// NumberKey normalizes a float64 with order-preserving encoding.
func NumberKey(f float64) Key {
	var k Key
	k[0] = 'n'
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative numbers: flip everything
	} else {
		bits |= 1 << 63 // positive: flip the sign bit
	}
	binary.BigEndian.PutUint64(k[1:], bits)
	return k
}

// KeyFor normalizes a value according to the index type.
func KeyFor(typ string, value string, numeric float64) Key {
	if typ == "number" {
		return NumberKey(numeric)
	}
	return StringKey(value)
}

func keyLess(a Key, ah sas.XPtr, b Key, bh sas.XPtr) bool {
	if c := bytes.Compare(a[:], b[:]); c != 0 {
		return c < 0
	}
	return ah < bh
}

// Tree is a handle to a B+tree rooted at Root.
type Tree struct {
	Root sas.XPtr
}

// Create allocates an empty tree (a single empty leaf).
func Create(w storage.Writer) (*Tree, error) {
	id, err := w.AllocPage()
	if err != nil {
		return nil, err
	}
	page := make([]byte, sas.PageSize)
	page[0] = kindLeaf
	if err := w.WriteAt(id.Ptr(), page); err != nil {
		return nil, err
	}
	return &Tree{Root: id.Ptr()}, nil
}

// readPage copies a page (small helper; index pages are modified wholesale).
func readPage(r storage.Reader, p sas.XPtr) ([]byte, error) {
	buf := make([]byte, sas.PageSize)
	err := r.ReadPage(p, func(page []byte) error {
		copy(buf, page)
		return nil
	})
	return buf, err
}

func count(page []byte) int       { return int(binary.LittleEndian.Uint16(page[hdrCount:])) }
func setCount(page []byte, n int) { binary.LittleEndian.PutUint16(page[hdrCount:], uint16(n)) }
func nextLeaf(page []byte) sas.XPtr {
	return sas.XPtr(binary.LittleEndian.Uint64(page[hdrNext:]))
}
func setNextLeaf(page []byte, p sas.XPtr) {
	binary.LittleEndian.PutUint64(page[hdrNext:], uint64(p))
}
func leftmost(page []byte) sas.XPtr {
	return sas.XPtr(binary.LittleEndian.Uint64(page[hdrLeftmost:]))
}
func setLeftmost(page []byte, p sas.XPtr) {
	binary.LittleEndian.PutUint64(page[hdrLeftmost:], uint64(p))
}

func leafKey(page []byte, i int) (Key, sas.XPtr) {
	off := headerSize + i*leafEntry
	var k Key
	copy(k[:], page[off:])
	return k, sas.XPtr(binary.LittleEndian.Uint64(page[off+KeyPrefixSize:]))
}

func setLeafEntry(page []byte, i int, k Key, h sas.XPtr) {
	off := headerSize + i*leafEntry
	copy(page[off:], k[:])
	binary.LittleEndian.PutUint64(page[off+KeyPrefixSize:], uint64(h))
}

func innerKey(page []byte, i int) (Key, sas.XPtr, sas.XPtr) {
	off := headerSize + i*innerEntry
	var k Key
	copy(k[:], page[off:])
	return k,
		sas.XPtr(binary.LittleEndian.Uint64(page[off+KeyPrefixSize:])),
		sas.XPtr(binary.LittleEndian.Uint64(page[off+KeyPrefixSize+8:]))
}

func setInnerEntry(page []byte, i int, k Key, h, child sas.XPtr) {
	off := headerSize + i*innerEntry
	copy(page[off:], k[:])
	binary.LittleEndian.PutUint64(page[off+KeyPrefixSize:], uint64(h))
	binary.LittleEndian.PutUint64(page[off+KeyPrefixSize+8:], uint64(child))
}

// Insert adds (key, handle) to the tree. The returned root may differ from
// the previous one when the root splits; the caller persists it in the
// catalog.
func (t *Tree) Insert(w storage.Writer, k Key, h sas.XPtr) error {
	newChild, splitKey, splitHandle, err := t.insertRec(w, t.Root, k, h)
	if err != nil {
		return err
	}
	if newChild.IsNil() {
		return nil
	}
	// Root split: new internal root.
	id, err := w.AllocPage()
	if err != nil {
		return err
	}
	page := make([]byte, sas.PageSize)
	page[0] = kindInternal
	setCount(page, 1)
	setLeftmost(page, t.Root)
	setInnerEntry(page, 0, splitKey, splitHandle, newChild)
	if err := w.WriteAt(id.Ptr(), page); err != nil {
		return err
	}
	t.Root = id.Ptr()
	return nil
}

// insertRec inserts into the subtree at p; on split it returns the new
// right sibling and its separator.
func (t *Tree) insertRec(w storage.Writer, p sas.XPtr, k Key, h sas.XPtr) (sas.XPtr, Key, sas.XPtr, error) {
	page, err := readPage(w, p)
	if err != nil {
		return sas.NilPtr, Key{}, sas.NilPtr, err
	}
	n := count(page)
	if page[0] == kindLeaf {
		// Position: first entry >= (k,h).
		pos := 0
		for pos < n {
			ek, eh := leafKey(page, pos)
			if !keyLess(ek, eh, k, h) {
				if ek == k && eh == h {
					return sas.NilPtr, Key{}, sas.NilPtr, nil // duplicate
				}
				break
			}
			pos++
		}
		if n < leafCap() {
			copy(page[headerSize+(pos+1)*leafEntry:], page[headerSize+pos*leafEntry:headerSize+n*leafEntry])
			setLeafEntry(page, pos, k, h)
			setCount(page, n+1)
			return sas.NilPtr, Key{}, sas.NilPtr, w.WriteAt(p, page)
		}
		// Split the leaf.
		rid, err := w.AllocPage()
		if err != nil {
			return sas.NilPtr, Key{}, sas.NilPtr, err
		}
		right := make([]byte, sas.PageSize)
		right[0] = kindLeaf
		mid := n / 2
		for i := mid; i < n; i++ {
			ek, eh := leafKey(page, i)
			setLeafEntry(right, i-mid, ek, eh)
		}
		setCount(right, n-mid)
		setNextLeaf(right, nextLeaf(page))
		setCount(page, mid)
		setNextLeaf(page, rid.Ptr())
		// Insert into the proper half.
		sepK, sepH := leafKey(right, 0)
		if keyLess(k, h, sepK, sepH) {
			insertLeafInPlace(page, k, h)
		} else {
			insertLeafInPlace(right, k, h)
		}
		if err := w.WriteAt(p, page); err != nil {
			return sas.NilPtr, Key{}, sas.NilPtr, err
		}
		if err := w.WriteAt(rid.Ptr(), right); err != nil {
			return sas.NilPtr, Key{}, sas.NilPtr, err
		}
		sk, sh := leafKey(right, 0)
		return rid.Ptr(), sk, sh, nil
	}

	// Internal node: find child.
	child := leftmost(page)
	pos := 0
	for pos < n {
		ek, eh, ch := innerKey(page, pos)
		if keyLess(k, h, ek, eh) {
			break
		}
		child = ch
		pos++
	}
	newChild, sk, sh, err := t.insertRec(w, child, k, h)
	if err != nil || newChild.IsNil() {
		return sas.NilPtr, Key{}, sas.NilPtr, err
	}
	if n < innerCap() {
		copy(page[headerSize+(pos+1)*innerEntry:], page[headerSize+pos*innerEntry:headerSize+n*innerEntry])
		setInnerEntry(page, pos, sk, sh, newChild)
		setCount(page, n+1)
		return sas.NilPtr, Key{}, sas.NilPtr, w.WriteAt(p, page)
	}
	// Split the internal node.
	rid, err := w.AllocPage()
	if err != nil {
		return sas.NilPtr, Key{}, sas.NilPtr, err
	}
	// Build the full entry list including the new one, then split around
	// the median.
	type entry struct {
		k     Key
		h     sas.XPtr
		child sas.XPtr
	}
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		ek, eh, ch := innerKey(page, i)
		entries = append(entries, entry{ek, eh, ch})
	}
	entries = append(entries[:pos:pos], append([]entry{{sk, sh, newChild}}, entries[pos:]...)...)
	mid := len(entries) / 2
	sep := entries[mid]
	right := make([]byte, sas.PageSize)
	right[0] = kindInternal
	setLeftmost(right, sep.child)
	for i, en := range entries[mid+1:] {
		setInnerEntry(right, i, en.k, en.h, en.child)
	}
	setCount(right, len(entries)-mid-1)
	for i, en := range entries[:mid] {
		setInnerEntry(page, i, en.k, en.h, en.child)
	}
	setCount(page, mid)
	if err := w.WriteAt(p, page); err != nil {
		return sas.NilPtr, Key{}, sas.NilPtr, err
	}
	if err := w.WriteAt(rid.Ptr(), right); err != nil {
		return sas.NilPtr, Key{}, sas.NilPtr, err
	}
	return rid.Ptr(), sep.k, sep.h, nil
}

func insertLeafInPlace(page []byte, k Key, h sas.XPtr) {
	n := count(page)
	pos := 0
	for pos < n {
		ek, eh := leafKey(page, pos)
		if !keyLess(ek, eh, k, h) {
			break
		}
		pos++
	}
	copy(page[headerSize+(pos+1)*leafEntry:], page[headerSize+pos*leafEntry:headerSize+n*leafEntry])
	setLeafEntry(page, pos, k, h)
	setCount(page, n+1)
}

// Delete removes (key, handle); missing entries are ignored. Pages are not
// merged on underflow (space is reclaimed when the index is dropped).
func (t *Tree) Delete(w storage.Writer, k Key, h sas.XPtr) error {
	p := t.Root
	for {
		page, err := readPage(w, p)
		if err != nil {
			return err
		}
		n := count(page)
		if page[0] == kindInternal {
			child := leftmost(page)
			for i := 0; i < n; i++ {
				ek, eh, ch := innerKey(page, i)
				if keyLess(k, h, ek, eh) {
					break
				}
				child = ch
			}
			p = child
			continue
		}
		for i := 0; i < n; i++ {
			ek, eh := leafKey(page, i)
			if ek == k && eh == h {
				copy(page[headerSize+i*leafEntry:], page[headerSize+(i+1)*leafEntry:headerSize+n*leafEntry])
				setCount(page, n-1)
				return w.WriteAt(p, page)
			}
		}
		return nil
	}
}

// Lookup returns the handles of all entries with exactly key k.
func (t *Tree) Lookup(r storage.Reader, k Key) ([]sas.XPtr, error) {
	var out []sas.XPtr
	err := t.Range(r, k, k, func(_ Key, h sas.XPtr) bool {
		out = append(out, h)
		return true
	})
	return out, err
}

// Range visits entries with lo <= key <= hi in key order.
func (t *Tree) Range(r storage.Reader, lo, hi Key, visit func(k Key, h sas.XPtr) bool) error {
	// Descend to the first leaf that may contain lo.
	p := t.Root
	for {
		page, err := readPage(r, p)
		if err != nil {
			return err
		}
		if page[0] == kindLeaf {
			break
		}
		if page[0] != kindInternal {
			return fmt.Errorf("index: page %v is not an index page", p)
		}
		n := count(page)
		child := leftmost(page)
		for i := 0; i < n; i++ {
			ek, eh, ch := innerKey(page, i)
			if keyLess(lo, 0, ek, eh) {
				break
			}
			child = ch
		}
		p = child
	}
	for !p.IsNil() {
		page, err := readPage(r, p)
		if err != nil {
			return err
		}
		n := count(page)
		for i := 0; i < n; i++ {
			ek, eh := leafKey(page, i)
			if bytes.Compare(ek[:], lo[:]) < 0 {
				continue
			}
			if bytes.Compare(ek[:], hi[:]) > 0 {
				return nil
			}
			if !visit(ek, eh) {
				return nil
			}
		}
		p = nextLeaf(page)
	}
	return nil
}

// FreeAll releases every page of the tree (DROP INDEX).
func (t *Tree) FreeAll(w storage.Writer) error {
	var rec func(p sas.XPtr) error
	rec = func(p sas.XPtr) error {
		page, err := readPage(w, p)
		if err != nil {
			return err
		}
		if page[0] == kindInternal {
			if err := rec(leftmost(page)); err != nil {
				return err
			}
			for i := 0; i < count(page); i++ {
				_, _, ch := innerKey(page, i)
				if err := rec(ch); err != nil {
					return err
				}
			}
		}
		return w.FreePage(sas.PageIDOf(p))
	}
	return rec(t.Root)
}

// Count returns the number of entries (full scan; tests and tools).
func (t *Tree) Count(r storage.Reader) (int, error) {
	n := 0
	var lo, hi Key
	for i := range hi {
		hi[i] = 0xFF
	}
	err := t.Range(r, lo, hi, func(Key, sas.XPtr) bool { n++; return true })
	return n, err
}
