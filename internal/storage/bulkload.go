package storage

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// Streaming bulk loader. The paper treats bulk load as a first-class path:
// a document arriving as a token stream is in document order, so descriptor
// blocks can be constructed append-only per schema node instead of funneling
// every node through the generic insert. The consequences the loader
// exploits:
//
//   - Sibling and parent back-patches always land in builder memory. A new
//     node's left sibling and its parent are, by document order, the most
//     recently appended descriptors of their schema nodes — and the loader
//     keeps exactly one open (in-memory) block per schema node, flushing a
//     block only when its successor opens. The open elements of the parse
//     stack are therefore always patchable without a page write.
//   - NIDs are assigned sequentially from evenly pre-spaced labels per
//     level (nid.BulkNth), never by midpoint re-derivation between two
//     existing labels.
//   - Text goes straight into builder-owned text blocks; indirection
//     entries are appended into builder-owned indirection blocks.
//   - A completed block is written through the buffer pool as one
//     whole-page write — which the transaction layer logs as a single
//     whole-page WAL image, so recovery replays the load physically.
//
// Widening keeps the §4.1 delayed-widening economics: when an open element
// gains a child of a previously unseen kind, only that element's descriptor
// (by the open-block invariant, the last of its block) is popped and
// re-appended at the new width; earlier blocks keep their narrower layout.
//
// The loader requires a freshly created document (only the root descriptor
// exists): appends start after "nothing", so every chain is built from
// scratch and rollback reduces to the transaction's ordinary page
// pre-images plus the registered Defer undos.

// BulkNode is the loader's view of one appended node. Callers hold
// BulkNodes only for open elements (the parse stack); leaves need none.
type BulkNode struct {
	handle sas.XPtr
	ptr    sas.XPtr
	sn     *schema.Node
	label  nid.Label
	parent *BulkNode

	slots     int    // child-pointer slots of the encoded descriptor
	ord       uint64 // next child ordinal (BulkSpacing pre-spaced labels)
	lastChild sas.XPtr

	// external marks a descriptor living outside builder memory — the
	// pre-existing root before its adoption into a builder block.
	external bool
}

// BulkStats summarizes one completed bulk load.
type BulkStats struct {
	Nodes        uint64 // descriptors appended (the pre-existing root excluded)
	Blocks       uint64 // node blocks built
	TextBytes    uint64 // text payload bytes stored
	PagesFlushed uint64 // whole pages written (node + indirection + text)
}

// bulkBlock is one in-construction node block: a private page image plus
// its live header. The header is encoded into the image only at flush time.
type bulkBlock struct {
	base sas.XPtr
	page []byte
	h    nodeBlockHeader
}

// hasRoom reports whether one more descriptor fits. Builder blocks are
// append-only (no free chain), so geometry is the whole answer.
func (blk *bulkBlock) hasRoom() bool {
	return int(blk.h.SlotTop)+blk.h.DescSize <= sas.PageSize
}

// append encodes d into the next slot and links it at the chain tail.
func (blk *bulkBlock) append(d *Desc, ov sas.XPtr, ovLen int) sas.XPtr {
	off := blk.h.SlotTop
	prev := blk.h.LastDesc
	encodeDesc(blk.page[off:int(off)+blk.h.DescSize], d, ov, ovLen, 0, prev)
	if prev == 0 {
		blk.h.FirstDesc = off
	} else {
		putU16(blk.page, int(prev)+dNextIn, off)
	}
	blk.h.LastDesc = off
	blk.h.SlotTop = off + uint16(blk.h.DescSize)
	blk.h.Count++
	return blk.base.Add(uint32(off))
}

// appendRaw places already-encoded descriptor bytes (zero-extended to this
// block's width) into the next slot, fixing only the in-block chain fields.
func (blk *bulkBlock) appendRaw(raw []byte) sas.XPtr {
	off := blk.h.SlotTop
	prev := blk.h.LastDesc
	copy(blk.page[off:int(off)+blk.h.DescSize], raw)
	putU16(blk.page, int(off)+dNextIn, 0)
	putU16(blk.page, int(off)+dPrevIn, prev)
	if prev == 0 {
		blk.h.FirstDesc = off
	} else {
		putU16(blk.page, int(prev)+dNextIn, off)
	}
	blk.h.LastDesc = off
	blk.h.SlotTop = off + uint16(blk.h.DescSize)
	blk.h.Count++
	return blk.base.Add(uint32(off))
}

// bulkSchemaState tracks the builder-owned tail of one schema node's block
// chain.
type bulkSchemaState struct {
	sn      *schema.Node
	open    *bulkBlock
	first   sas.XPtr // first builder-built block
	oldLast sas.XPtr // sn.LastBlock when the builder first touched sn
	blocks  uint32
	nodes   uint64
}

// bulkPage is a builder-owned indirection or text page under construction.
type bulkPage struct {
	base sas.XPtr
	page []byte
}

// BulkLoader constructs a freshly created document's storage directly from
// a document-order node stream. All block construction happens in private
// page images; pages reach the buffer pool (and the WAL) only as completed
// wholes, plus the handful of real writes that stitch builder chains onto
// the document's pre-existing root and indirection block at Finish.
type BulkLoader struct {
	w   Writer
	doc *Doc

	states map[uint32]*bulkSchemaState
	// mem maps page base -> private image for every open builder page, so
	// back-patches and reads are resolved in memory first and fall back to
	// ordinary logged writes only for real pages.
	mem map[sas.XPtr][]byte

	indir        *bulkPage
	indirTop     uint16
	indirCount   uint16
	indirFirst   sas.XPtr
	oldIndirLast sas.XPtr

	text          *bulkPage
	textSlots     uint16
	textDataStart int
	textFirst     sas.XPtr
	oldTextLast   sas.XPtr

	root  *BulkNode
	stats BulkStats

	// flushHook, when set, runs after every whole-page write; an error
	// aborts the load (crash-injection tests hook here).
	flushHook func(pagesFlushed uint64) error
}

// NewBulkLoader prepares a bulk load into doc, which must be freshly
// created in this transaction (root descriptor only).
func NewBulkLoader(w Writer, doc *Doc) (*BulkLoader, error) {
	if len(doc.Schema.Root.Children) != 0 || doc.Schema.Root.NodeCount != 1 {
		return nil, fmt.Errorf("storage: bulk loader requires a freshly created document, %q is not", doc.Name)
	}
	d, err := DescOf(w, doc.RootHandle)
	if err != nil {
		return nil, err
	}
	b := &BulkLoader{
		w:            w,
		doc:          doc,
		states:       make(map[uint32]*bulkSchemaState),
		mem:          make(map[sas.XPtr][]byte),
		oldIndirLast: doc.IndirLast,
		oldTextLast:  doc.TextLast,
	}
	b.root = &BulkNode{
		handle:   doc.RootHandle,
		ptr:      d.Ptr,
		sn:       doc.Schema.Root,
		label:    d.Label,
		slots:    d.ChildSlots,
		external: true,
	}
	return b, nil
}

// Root returns the document node every load starts under.
func (b *BulkLoader) Root() *BulkNode { return b.root }

// SetFlushHook installs a callback invoked after every whole-page write;
// returning an error aborts the load mid-stream (used by crash tests).
func (b *BulkLoader) SetFlushHook(fn func(pagesFlushed uint64) error) { b.flushHook = fn }

// AppendElement appends an element as the next child of parent (which must
// be the innermost open element) and returns its open node.
func (b *BulkLoader) AppendElement(parent *BulkNode, name string) (*BulkNode, error) {
	n := &BulkNode{}
	if err := b.appendNode(parent, schema.KindElement, name, nil, n); err != nil {
		return nil, err
	}
	return n, nil
}

// AppendLeaf appends a childless node (attribute, text, comment, PI) as the
// next child of parent.
func (b *BulkLoader) AppendLeaf(parent *BulkNode, kind schema.NodeKind, name string, text []byte) error {
	var n BulkNode
	return b.appendNode(parent, kind, name, text, &n)
}

// appendNode places one node in document order: schema maintenance, a
// sequential pre-spaced label, descriptor encoding into the schema node's
// open block, text and indirection allocation, and the two back-patches
// (left sibling's forward pointer, parent's first-child slot) that the
// open-block invariant guarantees land in builder memory.
func (b *BulkLoader) appendNode(parent *BulkNode, kind schema.NodeKind, name string, text []byte, out *BulkNode) error {
	doc := b.doc
	sn, created := doc.Schema.EnsureChild(parent.sn, kind, name)
	if created {
		b.w.NoteSchemaNode(doc, parent.sn, sn)
		b.w.Defer(func() { doc.Schema.Remove(sn) })
	}
	label := nid.BulkNth(parent.label, parent.ord)
	parent.ord++
	slotIdx := parent.sn.ChildIndex(sn)
	if slotIdx < 0 {
		return fmt.Errorf("storage: bulk load: %s is not a schema child of %s", sn.Path(), parent.sn.Path())
	}
	if slotIdx >= parent.slots {
		if err := b.widen(parent, len(parent.sn.Children)); err != nil {
			return err
		}
	}
	ss := b.state(sn)
	blk := ss.open
	if blk == nil || !blk.hasRoom() {
		var err error
		blk, err = b.rollBlock(ss, len(sn.Children))
		if err != nil {
			return err
		}
	}
	var textPtr sas.XPtr
	if len(text) > 0 {
		var err error
		textPtr, err = b.allocText(text)
		if err != nil {
			return err
		}
		b.stats.TextBytes += uint64(len(text))
	}
	var ovPtr sas.XPtr
	if len(label.Prefix) > nidInlineCap {
		var err error
		ovPtr, err = b.allocText(label.Prefix)
		if err != nil {
			return err
		}
	}
	ptr := blk.base.Add(uint32(blk.h.SlotTop))
	handle, err := b.allocHandle(ptr)
	if err != nil {
		return err
	}
	d := Desc{
		Label:   label,
		Handle:  handle,
		Parent:  parent.handle,
		LeftSib: parent.lastChild,
		Text:    textPtr,
		TextLen: uint32(len(text)),
	}
	blk.append(&d, ovPtr, len(label.Prefix))
	if !parent.lastChild.IsNil() {
		if err := b.patchPtr(parent.lastChild.Add(dRightSib), ptr); err != nil {
			return err
		}
	}
	// The first child of this kind in document order claims the parent's
	// child slot; later siblings of the kind leave it alone.
	slotAddr := parent.ptr.Add(uint32(dChildren + 8*slotIdx))
	cur, err := b.readPtr(slotAddr)
	if err != nil {
		return err
	}
	if cur.IsNil() {
		if err := b.patchPtr(slotAddr, ptr); err != nil {
			return err
		}
	}
	parent.lastChild = ptr
	ss.nodes++
	b.stats.Nodes++
	*out = BulkNode{handle: handle, ptr: ptr, sn: sn, label: label, parent: parent, slots: blk.h.ChildSlots}
	return nil
}

// state returns (creating on first touch) the builder state of sn.
func (b *BulkLoader) state(sn *schema.Node) *bulkSchemaState {
	ss := b.states[sn.ID]
	if ss == nil {
		ss = &bulkSchemaState{sn: sn, oldLast: sn.LastBlock}
		b.states[sn.ID] = ss
	}
	return ss
}

// rollBlock opens a fresh builder block of (at least) the given width for
// ss, sealing and flushing the previous open block behind it.
func (b *BulkLoader) rollBlock(ss *bulkSchemaState, width int) (*bulkBlock, error) {
	if ss.open != nil && width < ss.open.h.ChildSlots {
		width = ss.open.h.ChildSlots
	}
	id, err := b.w.AllocPage()
	if err != nil {
		return nil, err
	}
	base := id.Ptr()
	blk := &bulkBlock{base: base, page: make([]byte, sas.PageSize)}
	blk.h = nodeBlockHeader{
		ChildSlots: width,
		SchemaID:   ss.sn.ID,
		DocID:      b.doc.ID,
		DescSize:   descSizeFor(width),
		SlotTop:    nodeBlockHeaderSize,
	}
	if ss.open != nil {
		blk.h.Prev = ss.open.base
		if err := b.flushNodeBlock(ss.open, base); err != nil {
			return nil, err
		}
	} else {
		blk.h.Prev = ss.oldLast
	}
	if ss.first.IsNil() {
		ss.first = base
	}
	ss.open = blk
	ss.blocks++
	b.stats.Blocks++
	b.mem[base] = blk.page
	return blk, nil
}

// widen grows n's descriptor to the given child-slot width. By the
// open-block invariant, only open elements widen and an open element is
// always the last descriptor of its schema node's open block, so the move
// is a pop off the block tail plus one re-append — never a run move.
func (b *BulkLoader) widen(n *BulkNode, width int) error {
	if width <= n.slots {
		return nil
	}
	if n.external {
		return b.adopt(n, width)
	}
	ss := b.states[n.sn.ID]
	if ss == nil || ss.open == nil {
		return fmt.Errorf("storage: bulk widen: no open block for %s", n.sn.Path())
	}
	blk := ss.open
	off := uint16(n.ptr.PageOffset())
	if blk.base != n.ptr.PageBase() || blk.h.LastDesc != off {
		return fmt.Errorf("storage: bulk widen: node %v is not the tail of its open block", n.ptr)
	}
	oldPtr := n.ptr
	oldSize := blk.h.DescSize
	raw := make([]byte, descSizeFor(width))
	copy(raw, blk.page[off:int(off)+oldSize])
	// Pop n off the block tail. Builder blocks are append-only, so the
	// slot space is simply rolled back.
	prevOff := getU16(blk.page[off:], dPrevIn)
	zero(blk.page[off : int(off)+oldSize])
	blk.h.Count--
	blk.h.SlotTop = off
	blk.h.LastDesc = prevOff
	if prevOff == 0 {
		blk.h.FirstDesc = 0
	} else {
		putU16(blk.page, int(prevOff)+dNextIn, 0)
	}
	var dst *bulkBlock
	if blk.h.Count == 0 {
		// The block held only n: re-open the same page at the new width
		// instead of leaving an empty block in the chain.
		blk.h.ChildSlots = width
		blk.h.DescSize = descSizeFor(width)
		dst = blk
	} else {
		nb, err := b.rollBlock(ss, width)
		if err != nil {
			return err
		}
		dst = nb
	}
	newPtr := dst.appendRaw(raw)
	// Constant-cost fixups (§4.1): the indirection entry, the left
	// sibling's forward pointer, and possibly the parent's child slot.
	// Children found their parent through the handle and need nothing.
	if err := b.patchPtr(n.handle, newPtr); err != nil {
		return err
	}
	if ls := getPtr(raw, dLeftSib); !ls.IsNil() {
		if err := b.patchPtr(ls.Add(dRightSib), newPtr); err != nil {
			return err
		}
	}
	if n.parent != nil {
		if err := b.repointParentSlot(n.parent, n.sn, oldPtr, newPtr); err != nil {
			return err
		}
		if n.parent.lastChild == oldPtr {
			n.parent.lastChild = newPtr
		}
	}
	n.ptr = newPtr
	n.slots = width
	return nil
}

// adopt moves the pre-existing root descriptor (created by CreateDoc in a
// real zero-width block) into a builder block of the required width, so
// that from the first child on the whole document is builder-constructed.
func (b *BulkLoader) adopt(n *BulkNode, width int) error {
	base := n.ptr.PageBase()
	off := uint16(n.ptr.PageOffset())
	raw := make([]byte, descSizeFor(width))
	err := b.w.ReadPage(base, func(page []byte) error {
		h, err := decodeNodeHeader(page)
		if err != nil {
			return err
		}
		size := h.DescSize
		if size > len(raw) {
			size = len(raw)
		}
		copy(raw, page[int(off):int(off)+size])
		return nil
	})
	if err != nil {
		return err
	}
	empty, err := unlinkInBlock(b.w, base, off)
	if err != nil {
		return err
	}
	if !empty {
		return fmt.Errorf("storage: bulk adopt: block %v still holds descriptors", base)
	}
	if err := freeNodeBlock(b.w, b.doc, n.sn, base); err != nil {
		return err
	}
	ss := b.state(n.sn)
	dst, err := b.rollBlock(ss, width)
	if err != nil {
		return err
	}
	newPtr := dst.appendRaw(raw)
	if err := b.patchPtr(n.handle, newPtr); err != nil {
		return err
	}
	n.ptr = newPtr
	n.slots = width
	n.external = false
	return nil
}

// repointParentSlot redirects parent's first-child slot for child's kind
// from old to new, if it currently points at old.
func (b *BulkLoader) repointParentSlot(parent *BulkNode, child *schema.Node, old, new sas.XPtr) error {
	si := parent.sn.ChildIndex(child)
	if si < 0 || si >= parent.slots {
		return nil
	}
	addr := parent.ptr.Add(uint32(dChildren + 8*si))
	cur, err := b.readPtr(addr)
	if err != nil {
		return err
	}
	if cur == old {
		return b.patchPtr(addr, new)
	}
	return nil
}

// patchPtr writes an 8-byte pointer, in builder memory when the target page
// is still open, through the transaction otherwise.
func (b *BulkLoader) patchPtr(p sas.XPtr, v sas.XPtr) error {
	if page, ok := b.mem[p.PageBase()]; ok {
		putPtr(page, int(p.PageOffset()), v)
		return nil
	}
	return writePtrAt(b.w, p, v)
}

// readPtr reads an 8-byte pointer, preferring builder memory.
func (b *BulkLoader) readPtr(p sas.XPtr) (sas.XPtr, error) {
	if page, ok := b.mem[p.PageBase()]; ok {
		return getPtr(page, int(p.PageOffset())), nil
	}
	return readPtrAt(b.w, p)
}

// allocHandle appends an indirection entry pointing at desc.
func (b *BulkLoader) allocHandle(desc sas.XPtr) (sas.XPtr, error) {
	if b.indir == nil || int(b.indirTop)+indirEntrySize > sas.PageSize {
		if err := b.rollIndir(); err != nil {
			return sas.NilPtr, err
		}
	}
	off := b.indirTop
	putPtr(b.indir.page, int(off), desc)
	b.indirTop += indirEntrySize
	b.indirCount++
	return b.indir.base.Add(uint32(off)), nil
}

func (b *BulkLoader) rollIndir() error {
	id, err := b.w.AllocPage()
	if err != nil {
		return err
	}
	base := id.Ptr()
	page := make([]byte, sas.PageSize)
	page[0] = blockKindIndir
	prev := b.oldIndirLast
	if b.indir != nil {
		prev = b.indir.base
		putPtr(b.indir.page, ibNext, base)
		if err := b.flushIndir(); err != nil {
			return err
		}
	}
	putPtr(page, ibPrev, prev)
	if b.indirFirst.IsNil() {
		b.indirFirst = base
	}
	b.indir = &bulkPage{base: base, page: page}
	b.indirTop = indirBlockHeaderSize
	b.indirCount = 0
	b.mem[base] = page
	return nil
}

func (b *BulkLoader) flushIndir() error {
	putU16(b.indir.page, ibCount, b.indirCount)
	putU16(b.indir.page, ibSlotTop, b.indirTop)
	return b.flushPage(b.indir.base, b.indir.page)
}

// allocText stores data in builder-owned text blocks, chunked back to front
// exactly like AllocText so each chunk knows its successor.
func (b *BulkLoader) allocText(data []byte) (sas.XPtr, error) {
	if len(data) == 0 {
		return sas.NilPtr, nil
	}
	var next sas.XPtr
	for start := (len(data) - 1) / maxChunkPayload * maxChunkPayload; start >= 0; start -= maxChunkPayload {
		end := start + maxChunkPayload
		if end > len(data) {
			end = len(data)
		}
		slot, err := b.placeChunk(next, data[start:end])
		if err != nil {
			return sas.NilPtr, err
		}
		next = slot
	}
	return next, nil
}

func (b *BulkLoader) placeChunk(next sas.XPtr, payload []byte) (sas.XPtr, error) {
	need := textChunkHeader + len(payload)
	if b.text == nil || textBlockHeaderSize+(int(b.textSlots)+1)*textSlotSize+need > b.textDataStart {
		if err := b.rollText(); err != nil {
			return sas.NilPtr, err
		}
	}
	slotOff := textBlockHeaderSize + int(b.textSlots)*textSlotSize
	recOff := b.textDataStart - need
	putPtr(b.text.page, recOff, next)
	copy(b.text.page[recOff+textChunkHeader:recOff+need], payload)
	putU16(b.text.page, slotOff, uint16(recOff))
	putU16(b.text.page, slotOff+2, uint16(need))
	b.textSlots++
	b.textDataStart = recOff
	return b.text.base.Add(uint32(slotOff)), nil
}

func (b *BulkLoader) rollText() error {
	id, err := b.w.AllocPage()
	if err != nil {
		return err
	}
	base := id.Ptr()
	page := make([]byte, sas.PageSize)
	page[0] = blockKindText
	prev := b.oldTextLast
	if b.text != nil {
		prev = b.text.base
		putPtr(b.text.page, tbNext, base)
		if err := b.flushText(); err != nil {
			return err
		}
	}
	putPtr(page, tbPrev, prev)
	if b.textFirst.IsNil() {
		b.textFirst = base
	}
	b.text = &bulkPage{base: base, page: page}
	b.textSlots = 0
	b.textDataStart = sas.PageSize
	b.mem[base] = page
	return nil
}

func (b *BulkLoader) flushText() error {
	putU16(b.text.page, tbSlotCount, b.textSlots)
	putU16(b.text.page, tbDataStart, uint16(b.textDataStart))
	return b.flushPage(b.text.base, b.text.page)
}

func (b *BulkLoader) flushNodeBlock(blk *bulkBlock, next sas.XPtr) error {
	blk.h.Next = next
	encodeNodeHeader(blk.page, blk.h)
	return b.flushPage(blk.base, blk.page)
}

// flushPage writes one completed builder page through the transaction (one
// whole-page WAL image) and releases the private copy.
func (b *BulkLoader) flushPage(base sas.XPtr, page []byte) error {
	if err := b.w.WriteAt(base, page); err != nil {
		return err
	}
	delete(b.mem, base)
	b.stats.PagesFlushed++
	if b.flushHook != nil {
		if err := b.flushHook(b.stats.PagesFlushed); err != nil {
			return err
		}
	}
	return nil
}

// Finish flushes every open builder page, splices the builder chains onto
// the document's pre-existing structures, and updates schema-node and
// document metadata (with Defer-registered undos, so a later rollback of
// the surrounding transaction restores all in-memory state). The caller
// logs the bulk-load WAL record and commits.
func (b *BulkLoader) Finish() (BulkStats, error) {
	w, doc := b.w, b.doc
	for _, ss := range b.states {
		if ss.open == nil {
			continue
		}
		if ss.open.h.Count == 0 {
			return b.stats, fmt.Errorf("storage: bulk load left an empty open block for %s", ss.sn.Path())
		}
		if err := b.flushNodeBlock(ss.open, sas.NilPtr); err != nil {
			return b.stats, err
		}
	}
	if b.indir != nil {
		if err := b.flushIndir(); err != nil {
			return b.stats, err
		}
	}
	if b.text != nil {
		if err := b.flushText(); err != nil {
			return b.stats, err
		}
	}
	for _, ss := range b.states {
		if ss.first.IsNil() {
			continue
		}
		sn := ss.sn
		if !ss.oldLast.IsNil() {
			if err := writePtrAt(w, ss.oldLast.Add(nbNext), ss.first); err != nil {
				return b.stats, err
			}
		}
		oldFirst, oldLastB, oldBlocks, oldNodes := sn.FirstBlock, sn.LastBlock, sn.BlockCount, sn.NodeCount
		if sn.FirstBlock.IsNil() {
			sn.FirstBlock = ss.first
		}
		sn.LastBlock = ss.open.base
		sn.BlockCount += ss.blocks
		sn.NodeCount += ss.nodes
		w.Defer(func() {
			sn.FirstBlock, sn.LastBlock, sn.BlockCount, sn.NodeCount = oldFirst, oldLastB, oldBlocks, oldNodes
		})
		w.NoteSchemaBlocks(doc, sn)
	}
	docMeta := false
	if !b.indirFirst.IsNil() {
		oldF, oldL := doc.IndirFirst, doc.IndirLast
		if b.oldIndirLast.IsNil() {
			doc.IndirFirst = b.indirFirst
		} else {
			if err := writePtrAt(w, b.oldIndirLast.Add(ibNext), b.indirFirst); err != nil {
				return b.stats, err
			}
		}
		doc.IndirLast = b.indir.base
		w.Defer(func() { doc.IndirFirst, doc.IndirLast = oldF, oldL })
		docMeta = true
	}
	if !b.textFirst.IsNil() {
		oldF, oldL := doc.TextFirst, doc.TextLast
		if b.oldTextLast.IsNil() {
			doc.TextFirst = b.textFirst
		} else {
			if err := writePtrAt(w, b.oldTextLast.Add(tbNext), b.textFirst); err != nil {
				return b.stats, err
			}
		}
		doc.TextLast = b.text.base
		w.Defer(func() { doc.TextFirst, doc.TextLast = oldF, oldL })
		docMeta = true
	}
	if docMeta {
		w.NoteDocMeta(doc)
	}
	w.TouchDoc(doc)
	return b.stats, nil
}

func zero(s []byte) {
	for i := range s {
		s[i] = 0
	}
}
