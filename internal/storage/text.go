package storage

import (
	"encoding/binary"
	"fmt"

	"sedna/internal/sas"
)

// Text storage (§4.1): text values have unrestricted length, so they are
// kept apart from the fixed-size structural part in slotted pages. A value
// is a chain of chunks; each chunk lives in a slot of a text block, and the
// value's pointer is the XPtr of the first chunk's slot entry. Because
// pointers address slot entries rather than record bytes, in-page compaction
// moves records without invalidating any pointer.

// AllocText stores data in the document's text storage and returns the
// record pointer (nil for empty data, which is stored inline as length 0).
func AllocText(w Writer, doc *Doc, data []byte) (sas.XPtr, error) {
	if len(data) == 0 {
		return sas.NilPtr, nil
	}
	// Write chunks back to front so each chunk knows its successor.
	var next sas.XPtr
	for start := (len(data) - 1) / maxChunkPayload * maxChunkPayload; start >= 0; start -= maxChunkPayload {
		end := start + maxChunkPayload
		if end > len(data) {
			end = len(data)
		}
		slot, err := allocChunk(w, doc, next, data[start:end])
		if err != nil {
			return sas.NilPtr, err
		}
		next = slot
	}
	return next, nil
}

// FreeText releases the record chain starting at ptr.
func FreeText(w Writer, doc *Doc, ptr sas.XPtr) error {
	for !ptr.IsNil() {
		next, err := chunkNext(w, ptr)
		if err != nil {
			return err
		}
		if err := freeChunk(w, doc, ptr); err != nil {
			return err
		}
		ptr = next
	}
	return nil
}

// ReadText reads the full value of the record chain starting at ptr.
// totalLen is the descriptor's recorded length, used to presize the result.
func ReadText(r Reader, ptr sas.XPtr, totalLen uint32) ([]byte, error) {
	out := make([]byte, 0, totalLen)
	for !ptr.IsNil() {
		var next sas.XPtr
		err := r.ReadPage(ptr, func(page []byte) error {
			off, length, err := slotAt(page, ptr.PageOffset())
			if err != nil {
				return err
			}
			next = sas.XPtr(binary.LittleEndian.Uint64(page[off:]))
			out = append(out, page[off+textChunkHeader:off+length]...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		ptr = next
	}
	if uint32(len(out)) != totalLen {
		return nil, fmt.Errorf("storage: text length mismatch: chain has %d bytes, descriptor says %d", len(out), totalLen)
	}
	return out, nil
}

// slotAt validates and decodes the slot entry at in-page offset slotOff.
func slotAt(page []byte, slotOff uint32) (off, length int, err error) {
	if page[0] != blockKindText {
		return 0, 0, fmt.Errorf("storage: text pointer into non-text block (kind %d)", page[0])
	}
	o := int(getU16(page, int(slotOff)))
	l := int(getU16(page, int(slotOff)+2))
	if l == freeSlotLen {
		return 0, 0, fmt.Errorf("storage: text pointer to freed slot")
	}
	return o, l, nil
}

// chunkNext reads the next-chunk pointer of the chunk at slot ptr.
func chunkNext(r Reader, ptr sas.XPtr) (sas.XPtr, error) {
	var next sas.XPtr
	err := r.ReadPage(ptr, func(page []byte) error {
		off, _, err := slotAt(page, ptr.PageOffset())
		if err != nil {
			return err
		}
		next = sas.XPtr(binary.LittleEndian.Uint64(page[off:]))
		return nil
	})
	return next, err
}

// allocChunk places one chunk (next pointer + payload) in the document's
// text storage and returns the slot pointer.
func allocChunk(w Writer, doc *Doc, next sas.XPtr, payload []byte) (sas.XPtr, error) {
	need := textChunkHeader + len(payload)
	block := doc.TextLast
	if !block.IsNil() {
		slot, ok, err := tryPlaceChunk(w, block, next, payload, need)
		if err != nil {
			return sas.NilPtr, err
		}
		if ok {
			return slot, nil
		}
	}
	block, err := newTextBlock(w, doc)
	if err != nil {
		return sas.NilPtr, err
	}
	slot, ok, err := tryPlaceChunk(w, block, next, payload, need)
	if err != nil {
		return sas.NilPtr, err
	}
	if !ok {
		return sas.NilPtr, fmt.Errorf("storage: chunk of %d bytes does not fit an empty text block", need)
	}
	return slot, nil
}

// tryPlaceChunk attempts to place the chunk in the given block, compacting
// first if fragmentation would make it fit.
func tryPlaceChunk(w Writer, block sas.XPtr, next sas.XPtr, payload []byte, need int) (sas.XPtr, bool, error) {
	var slotPtr sas.XPtr
	var ok bool
	// Read the current geometry.
	var slotCount, freeSlot, dataStart, freeBytes uint16
	err := w.ReadPage(block, func(page []byte) error {
		slotCount = getU16(page, tbSlotCount)
		freeSlot = getU16(page, tbFreeSlot)
		dataStart = getU16(page, tbDataStart)
		freeBytes = getU16(page, tbFreeBytes)
		return nil
	})
	if err != nil {
		return sas.NilPtr, false, err
	}
	slotEnd := textBlockHeaderSize + int(slotCount)*textSlotSize
	newSlot := freeSlot != 0
	extra := 0
	if !newSlot {
		extra = textSlotSize // a fresh slot entry must fit too
	}
	if slotEnd+extra+need > int(dataStart) {
		// Try compaction if enough reclaimable space exists.
		if int(freeBytes) >= need && slotEnd+extra+need <= int(dataStart)+int(freeBytes) {
			if err := compactTextBlock(w, block); err != nil {
				return sas.NilPtr, false, err
			}
			err = w.ReadPage(block, func(page []byte) error {
				freeSlot = getU16(page, tbFreeSlot)
				dataStart = getU16(page, tbDataStart)
				slotCount = getU16(page, tbSlotCount)
				return nil
			})
			if err != nil {
				return sas.NilPtr, false, err
			}
			slotEnd = textBlockHeaderSize + int(slotCount)*textSlotSize
			if slotEnd+extra+need > int(dataStart) {
				return sas.NilPtr, false, nil
			}
		} else {
			return sas.NilPtr, false, nil
		}
	}
	// Place the record.
	newDataStart := int(dataStart) - need
	rec := make([]byte, need)
	binary.LittleEndian.PutUint64(rec, uint64(next))
	copy(rec[textChunkHeader:], payload)
	if err := w.WriteAt(block.Add(uint32(newDataStart)), rec); err != nil {
		return sas.NilPtr, false, err
	}
	var slotOff int
	if freeSlot != 0 {
		slotOff = int(freeSlot)
		// Pop the free-slot chain: its off field holds the next free slot.
		nextFree, err := readU16At(w, block.Add(uint32(slotOff)))
		if err != nil {
			return sas.NilPtr, false, err
		}
		if err := writeU16At(w, block.Add(tbFreeSlot), nextFree); err != nil {
			return sas.NilPtr, false, err
		}
	} else {
		slotOff = slotEnd
		if err := writeU16At(w, block.Add(tbSlotCount), slotCount+1); err != nil {
			return sas.NilPtr, false, err
		}
	}
	var entry [4]byte
	binary.LittleEndian.PutUint16(entry[0:], uint16(newDataStart))
	binary.LittleEndian.PutUint16(entry[2:], uint16(need))
	if err := w.WriteAt(block.Add(uint32(slotOff)), entry[:]); err != nil {
		return sas.NilPtr, false, err
	}
	if err := writeU16At(w, block.Add(tbDataStart), uint16(newDataStart)); err != nil {
		return sas.NilPtr, false, err
	}
	slotPtr = block.Add(uint32(slotOff))
	ok = true
	return slotPtr, ok, err
}

// freeChunk releases a single chunk's slot, freeing the whole block when it
// was the last occupied slot.
func freeChunk(w Writer, doc *Doc, ptr sas.XPtr) error {
	block := ptr.PageBase()
	slotOff := ptr.PageOffset()
	var recLen uint16
	var anyUsed bool
	var freeSlot uint16
	var freeBytes uint16
	err := w.ReadPage(block, func(page []byte) error {
		if page[0] != blockKindText {
			return fmt.Errorf("storage: freeing text in non-text block")
		}
		recLen = getU16(page, int(slotOff)+2)
		if recLen == freeSlotLen {
			return fmt.Errorf("storage: double free of text slot %v", ptr)
		}
		freeSlot = getU16(page, tbFreeSlot)
		freeBytes = getU16(page, tbFreeBytes)
		slotCount := int(getU16(page, tbSlotCount))
		for i := 0; i < slotCount; i++ {
			off := textBlockHeaderSize + i*textSlotSize
			if uint32(off) == slotOff {
				continue
			}
			if getU16(page, off+2) != freeSlotLen {
				anyUsed = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !anyUsed {
		return freeTextBlock(w, doc, block)
	}
	var entry [4]byte
	binary.LittleEndian.PutUint16(entry[0:], freeSlot)
	binary.LittleEndian.PutUint16(entry[2:], freeSlotLen)
	if err := w.WriteAt(ptr, entry[:]); err != nil {
		return err
	}
	if err := writeU16At(w, block.Add(tbFreeSlot), uint16(slotOff)); err != nil {
		return err
	}
	return writeU16At(w, block.Add(tbFreeBytes), freeBytes+recLen)
}

// compactTextBlock repacks all live records against the page end, resetting
// fragmentation. Slot entries keep their positions, so record pointers stay
// valid.
func compactTextBlock(w Writer, block sas.XPtr) error {
	newPage := make([]byte, sas.PageSize)
	err := w.ReadPage(block, func(page []byte) error {
		copy(newPage, page)
		slotCount := int(getU16(page, tbSlotCount))
		dst := sas.PageSize
		for i := 0; i < slotCount; i++ {
			off := textBlockHeaderSize + i*textSlotSize
			l := int(getU16(page, off+2))
			if l == freeSlotLen {
				continue
			}
			o := int(getU16(page, off))
			dst -= l
			copy(newPage[dst:dst+l], page[o:o+l])
			putU16(newPage, off, uint16(dst))
		}
		putU16(newPage, tbDataStart, uint16(dst))
		putU16(newPage, tbFreeBytes, 0)
		return nil
	})
	if err != nil {
		return err
	}
	return w.WriteAt(block, newPage)
}

// newTextBlock allocates a text block and appends it to the document's text
// chain.
func newTextBlock(w Writer, doc *Doc) (sas.XPtr, error) {
	id, err := w.AllocPage()
	if err != nil {
		return sas.NilPtr, err
	}
	base := id.Ptr()
	page := make([]byte, sas.PageSize)
	page[0] = blockKindText
	putU16(page, tbDataStart, sas.PageSize)
	putPtr(page, tbPrev, doc.TextLast)
	if err := w.WriteAt(base, page); err != nil {
		return sas.NilPtr, err
	}
	oldFirst, oldLast := doc.TextFirst, doc.TextLast
	if !doc.TextLast.IsNil() {
		if err := writePtrAt(w, doc.TextLast.Add(tbNext), base); err != nil {
			return sas.NilPtr, err
		}
	} else {
		doc.TextFirst = base
	}
	doc.TextLast = base
	w.Defer(func() { doc.TextFirst, doc.TextLast = oldFirst, oldLast })
	w.NoteDocMeta(doc)
	return base, nil
}

// freeTextBlock unlinks the block from the document chain and releases its
// page.
func freeTextBlock(w Writer, doc *Doc, block sas.XPtr) error {
	var next, prev sas.XPtr
	err := w.ReadPage(block, func(page []byte) error {
		next = getPtr(page, tbNext)
		prev = getPtr(page, tbPrev)
		return nil
	})
	if err != nil {
		return err
	}
	if !prev.IsNil() {
		if err := writePtrAt(w, prev.Add(tbNext), next); err != nil {
			return err
		}
	}
	if !next.IsNil() {
		if err := writePtrAt(w, next.Add(tbPrev), prev); err != nil {
			return err
		}
	}
	oldFirst, oldLast := doc.TextFirst, doc.TextLast
	changed := false
	if doc.TextFirst == block {
		doc.TextFirst = next
		changed = true
	}
	if doc.TextLast == block {
		doc.TextLast = prev
		changed = true
	}
	if changed {
		w.Defer(func() { doc.TextFirst, doc.TextLast = oldFirst, oldLast })
		w.NoteDocMeta(doc)
	}
	return w.FreePage(sas.PageIDOf(block))
}
