package storage

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// ReadDesc reads and fully decodes the node descriptor at ptr, resolving an
// overflowed numbering-scheme label from text storage when necessary.
func ReadDesc(r Reader, ptr sas.XPtr) (Desc, error) {
	var d Desc
	var overflow sas.XPtr
	var nidLen int
	err := r.ReadPage(ptr, func(page []byte) error {
		h, err := decodeNodeHeader(page)
		if err != nil {
			return err
		}
		d, overflow, nidLen = decodeDescAt(page, ptr.PageBase(), uint16(ptr.PageOffset()), h)
		return nil
	})
	if err != nil {
		return Desc{}, err
	}
	if !overflow.IsNil() {
		prefix, err := ReadText(r, overflow, uint32(nidLen))
		if err != nil {
			return Desc{}, fmt.Errorf("storage: overflowed label of %v: %w", ptr, err)
		}
		d.Label.Prefix = prefix
	}
	return d, nil
}

// DescOf resolves a node handle and reads its descriptor.
func DescOf(r Reader, handle sas.XPtr) (Desc, error) {
	p, err := DerefHandle(r, handle)
	if err != nil {
		return Desc{}, err
	}
	return ReadDesc(r, p)
}

// Text returns the text value of the node (empty for nodes without text).
func Text(r Reader, d *Desc) ([]byte, error) {
	if d.Text.IsNil() {
		return nil, nil
	}
	return ReadText(r, d.Text, d.TextLen)
}

// ParentOf reads the parent descriptor, or ok=false for the document node.
func ParentOf(r Reader, d *Desc) (Desc, bool, error) {
	if d.Parent.IsNil() {
		return Desc{}, false, nil
	}
	p, err := DescOf(r, d.Parent)
	if err != nil {
		return Desc{}, false, err
	}
	return p, true, nil
}

// FirstChild returns the first child of d in document order: among the
// per-schema first-child pointers it is the one with the smallest label.
// ok=false if d has no children.
func FirstChild(r Reader, d *Desc) (Desc, bool, error) {
	var best Desc
	found := false
	for _, c := range d.Children {
		if c.IsNil() {
			continue
		}
		cd, err := ReadDesc(r, c)
		if err != nil {
			return Desc{}, false, err
		}
		if !found || nid.Compare(cd.Label, best.Label) < 0 {
			best = cd
			found = true
		}
	}
	return best, found, nil
}

// LastChild returns the last child of d in document order.
func LastChild(r Reader, d *Desc) (Desc, bool, error) {
	// Take the per-schema first child with the greatest label, then follow
	// right-sibling pointers to the end.
	var cur Desc
	found := false
	for _, c := range d.Children {
		if c.IsNil() {
			continue
		}
		cd, err := ReadDesc(r, c)
		if err != nil {
			return Desc{}, false, err
		}
		if !found || nid.Compare(cd.Label, cur.Label) > 0 {
			cur = cd
			found = true
		}
	}
	if !found {
		return Desc{}, false, nil
	}
	for !cur.RightSib.IsNil() {
		next, err := ReadDesc(r, cur.RightSib)
		if err != nil {
			return Desc{}, false, err
		}
		cur = next
	}
	return cur, true, nil
}

// ChildAtSlot returns the first child stored under the given schema-child
// slot. Descriptors in narrow blocks (delayed widening) report nil for
// slots beyond their width.
func (d *Desc) ChildAtSlot(slot int) sas.XPtr {
	if slot < 0 || slot >= len(d.Children) {
		return sas.NilPtr
	}
	return d.Children[slot]
}

// NextInList returns the next descriptor of the same schema node in
// document order, crossing block boundaries. ok=false at the end of the
// list.
func NextInList(r Reader, d *Desc) (Desc, bool, error) {
	if !d.NextInBlock.IsNil() {
		n, err := ReadDesc(r, d.NextInBlock)
		if err != nil {
			return Desc{}, false, err
		}
		return n, true, nil
	}
	block := d.Ptr.PageBase()
	for {
		h, err := readNodeHeader(r, block)
		if err != nil {
			return Desc{}, false, err
		}
		if h.Next.IsNil() {
			return Desc{}, false, nil
		}
		block = h.Next
		// Crossing a block boundary: hint the chain ahead so the pages the
		// scan will reach next are loading while it drains this block.
		hintChain(r, block)
		nh, err := readNodeHeader(r, block)
		if err != nil {
			return Desc{}, false, err
		}
		if nh.FirstDesc != 0 {
			n, err := ReadDesc(r, block.Add(uint32(nh.FirstDesc)))
			if err != nil {
				return Desc{}, false, err
			}
			return n, true, nil
		}
	}
}

// FirstOfSchema returns the first descriptor of the schema node's block
// list in document order; ok=false when the list is empty.
func FirstOfSchema(r Reader, sn *schema.Node) (Desc, bool, error) {
	block := sn.FirstBlock
	hintChain(r, block)
	for !block.IsNil() {
		h, err := readNodeHeader(r, block)
		if err != nil {
			return Desc{}, false, err
		}
		if h.FirstDesc != 0 {
			d, err := ReadDesc(r, block.Add(uint32(h.FirstDesc)))
			if err != nil {
				return Desc{}, false, err
			}
			return d, true, nil
		}
		block = h.Next
	}
	return Desc{}, false, nil
}

// LastOfSchema returns the last descriptor of the schema node's list.
func LastOfSchema(r Reader, sn *schema.Node) (Desc, bool, error) {
	block := sn.LastBlock
	for !block.IsNil() {
		h, err := readNodeHeader(r, block)
		if err != nil {
			return Desc{}, false, err
		}
		if h.LastDesc != 0 {
			d, err := ReadDesc(r, block.Add(uint32(h.LastDesc)))
			if err != nil {
				return Desc{}, false, err
			}
			return d, true, nil
		}
		block = h.Prev
	}
	return Desc{}, false, nil
}

// ScanSchema calls visit for every node of the schema node in document
// order. visit returning false stops the scan. This is the block-list scan
// that backs descendant-axis evaluation over the descriptive schema.
func ScanSchema(r Reader, sn *schema.Node, visit func(Desc) (bool, error)) error {
	d, ok, err := FirstOfSchema(r, sn)
	for {
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		cont, err := visit(d)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		d, ok, err = NextInList(r, &d)
	}
}

// FirstInRange returns the first descriptor of sn in document order whose
// label lies in the descendant range of anc. Blocks entirely before the
// range are skipped by comparing their last descriptor's label — the
// partial order of descriptors across blocks (§4.1) makes the skip sound.
// This is the primitive behind schema-driven descendant-axis evaluation.
func FirstInRange(r Reader, sn *schema.Node, anc nid.Label) (Desc, bool, error) {
	hintChain(r, sn.FirstBlock)
	for block := sn.FirstBlock; !block.IsNil(); {
		h, err := readNodeHeader(r, block)
		if err != nil {
			return Desc{}, false, err
		}
		if h.LastDesc != 0 {
			last, err := ReadDesc(r, block.Add(uint32(h.LastDesc)))
			if err != nil {
				return Desc{}, false, err
			}
			if nid.Compare(last.Label, anc) > 0 {
				// The range, if populated, starts in this block.
				for off := h.FirstDesc; off != 0; {
					d, err := ReadDesc(r, block.Add(uint32(off)))
					if err != nil {
						return Desc{}, false, err
					}
					if nid.Compare(d.Label, anc) > 0 {
						if nid.IsAncestor(anc, d.Label) {
							return d, true, nil
						}
						return Desc{}, false, nil // past the range: no descendants
					}
					if d.NextInBlock.IsNil() {
						off = 0
					} else {
						off = uint16(d.NextInBlock.PageOffset())
					}
				}
				return Desc{}, false, nil
			}
		}
		block = h.Next
		hintChain(r, block)
	}
	return Desc{}, false, nil
}

// BlockCountNext decodes the live-descriptor count and next pointer from a
// node-block page; recovery uses it to recompute schema counters.
func BlockCountNext(page []byte) (count int, next sas.XPtr) {
	return int(getU16(page, nbCount)), getPtr(page, nbNext)
}

// PageChainNext decodes the next-block pointer from raw page bytes for any
// block kind, reporting ok=false at chain end or on an unrecognized page.
// It is the chain decoder handed to the buffer manager's readahead workers
// (which are layout-agnostic): a worker that has just loaded a block uses it
// to discover the following one without any storage-layer call.
func PageChainNext(page []byte) (sas.PageID, bool) {
	var next sas.XPtr
	switch page[0] {
	case blockKindNode:
		next = getPtr(page, nbNext)
	case blockKindText:
		next = getPtr(page, tbNext)
	case blockKindIndir:
		next = getPtr(page, ibNext)
	default:
		return sas.PageID{}, false
	}
	if next.IsNil() {
		return sas.PageID{}, false
	}
	return sas.PageIDOf(next), true
}

// Prefetcher is optionally implemented by a Reader whose buffer pool does
// chain readahead. The block-list iterators type-assert it and emit a hint
// whenever the scan crosses (or is about to start walking) a block chain;
// implementations must be non-blocking, fire-and-forget.
type Prefetcher interface {
	PrefetchFrom(block sas.XPtr)
}

// hintChain emits a readahead hint for the chain starting at block if the
// reader supports it.
func hintChain(r Reader, block sas.XPtr) {
	if block.IsNil() {
		return
	}
	if p, ok := r.(Prefetcher); ok {
		p.PrefetchFrom(block)
	}
}

// ChainNext returns the next-block pointer of any block kind (node, text or
// indirection block); used when dropping a document frees whole chains.
func ChainNext(r Reader, block sas.XPtr) (sas.XPtr, error) {
	var next sas.XPtr
	err := r.ReadPage(block, func(page []byte) error {
		switch page[0] {
		case blockKindNode:
			next = getPtr(page, nbNext)
		case blockKindText:
			next = getPtr(page, tbNext)
		case blockKindIndir:
			next = getPtr(page, ibNext)
		default:
			return fmt.Errorf("storage: ChainNext on unknown block kind %d", page[0])
		}
		return nil
	})
	return next, err
}

// IsAncestorDesc reports whether a is a proper ancestor of b using the
// numbering scheme — no tree traversal required (§4.1.1 mechanism 1).
func IsAncestorDesc(a, b *Desc) bool {
	return nid.IsAncestor(a.Label, b.Label)
}

// DocLess reports document order between two nodes via their labels
// (§4.1.1 mechanism 2).
func DocLess(a, b *Desc) bool {
	return nid.Compare(a.Label, b.Label) < 0
}
