// Package storage implements Sedna's data organization (§4.1): document
// nodes are stored as fixed-size node descriptors clustered into blocks by
// descriptive-schema node, blocks of one schema node form a bidirectional
// list that is partly ordered by document order, descriptors carry direct
// sibling pointers and an indirect parent pointer through the indirection
// table, text values live in slotted pages, and every node has an immutable
// node handle (its indirection-table entry).
package storage

import (
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// Reader provides read access to pages. Implementations exist for live
// access (through the buffer manager's layer-mapped dereference) and for
// snapshot access (through the version store), so every traversal in this
// package works identically for updaters and for read-only transactions.
type Reader interface {
	// ReadPage invokes fn with the content of the page containing p. The
	// slice is only valid during the call.
	ReadPage(p sas.XPtr, fn func(page []byte) error) error
}

// Writer extends Reader with mutation. Every byte written through WriteAt is
// captured in the write-ahead log by the transaction layer (physical redo
// records), which is what makes recovery's second step possible; the
// transaction layer also turns page writes into version-chain pre-images for
// snapshot isolation.
type Writer interface {
	Reader

	// TxnID identifies the owning transaction.
	TxnID() uint64

	// WriteAt replaces len(data) bytes at p with data, logging the change.
	WriteAt(p sas.XPtr, data []byte) error

	// AllocPage allocates a page (rolled back if the transaction aborts).
	AllocPage() (sas.PageID, error)

	// FreePage releases a page at commit (kept if the transaction aborts).
	FreePage(id sas.PageID) error

	// NoteSchemaNode records that a new descriptive-schema node was created
	// under parent, so recovery can rebuild the schema.
	NoteSchemaNode(doc *Doc, parent, node *schema.Node)

	// NoteSchemaBlocks records that node's block-list heads or counters
	// changed.
	NoteSchemaBlocks(doc *Doc, node *schema.Node)

	// NoteDocMeta records that doc-level fields (indirection chain, text
	// chain, root handle) changed.
	NoteDocMeta(doc *Doc)

	// TouchDoc marks the document's in-memory metadata (e.g. schema node
	// counters) as modified without logging anything; the engine republishes
	// the committed metadata version for snapshot readers. Called by every
	// node insert/delete/text update.
	TouchDoc(doc *Doc)

	// Defer registers an undo action run (in reverse order) if the
	// transaction rolls back; used for in-memory schema and counter
	// changes, which are not covered by page pre-images.
	Defer(undo func())
}

// Doc is the storage-level state of one document. It is owned by the
// catalog; all fields except Schema are persisted in the catalog snapshot
// and re-established by recovery.
type Doc struct {
	ID     uint32
	Name   string
	Schema *schema.Schema

	// RootHandle is the node handle of the document node.
	RootHandle sas.XPtr

	// Indirection-table block chain and the block currently used for new
	// handle allocations.
	IndirFirst, IndirLast sas.XPtr

	// Text-storage block chain and the block currently tried first for new
	// text allocations.
	TextFirst, TextLast sas.XPtr
}
