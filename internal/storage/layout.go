package storage

import (
	"encoding/binary"
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/sas"
)

// Block kinds, stored in the first byte of every page used by this package.
const (
	blockKindNode  = 1
	blockKindIndir = 2
	blockKindText  = 3
)

// Node-block header layout (48 bytes):
//
//	 0  kind        byte
//	 1  reserved    byte
//	 2  childSlots  uint16  child-pointer slots per descriptor in this block
//	 4  schemaID    uint32  owning schema node
//	 8  docID       uint32  owning document
//	12  count       uint16  live descriptors
//	14  descSize    uint16  bytes per descriptor
//	16  nextBlock   XPtr
//	24  prevBlock   XPtr
//	32  firstDesc   uint16  offset of the first descriptor in document order
//	34  lastDesc    uint16
//	36  freeHead    uint16  head of the freed-slot chain (0 = none)
//	38  slotTop     uint16  offset of never-used space
//	40  reserved    [8]byte
const (
	nbKind              = 0
	nbChildSlots        = 2
	nbSchemaID          = 4
	nbDocID             = 8
	nbCount             = 12
	nbDescSize          = 14
	nbNext              = 16
	nbPrev              = 24
	nbFirstDesc         = 32
	nbLastDesc          = 34
	nbFreeHead          = 36
	nbSlotTop           = 38
	nodeBlockHeaderSize = 48
)

// Node-descriptor layout (fixed part 68 bytes + 8 bytes per child slot):
//
//	 0  nidLen      uint16  prefix length (also when overflowed)
//	 2  nidDelim    byte
//	 3  flags       byte    bit0: nid prefix stored in text storage
//	 4  nid         [16]byte  inline prefix, or overflow XPtr in bytes 4..12
//	20  handle      XPtr    this node's indirection entry
//	28  parent      XPtr    indirection entry of the parent (indirect pointer)
//	36  leftSib     XPtr    direct pointer to the left sibling's descriptor
//	44  rightSib    XPtr
//	52  nextInBlock uint16  in-block document-order chain
//	54  prevInBlock uint16
//	56  text        XPtr    text-storage record (text-carrying kinds)
//	64  textLen     uint32
//	68  children    [childSlots]XPtr  first child per schema-child slot
const (
	dNidLen       = 0
	dNidDelim     = 2
	dFlags        = 3
	dNid          = 4
	dHandle       = 20
	dParent       = 28
	dLeftSib      = 36
	dRightSib     = 44
	dNextIn       = 52
	dPrevIn       = 54
	dText         = 56
	dTextLen      = 64
	dChildren     = 68
	descFixedSize = 68

	nidInlineCap    = 16
	flagNidOverflow = 0x01
)

// descSizeFor returns the descriptor size for a block with the given number
// of child slots.
func descSizeFor(childSlots int) int {
	return descFixedSize + 8*childSlots
}

// nodeBlockCapacity returns how many descriptors fit a node block with the
// given slot count.
func nodeBlockCapacity(childSlots int) int {
	return (sas.PageSize - nodeBlockHeaderSize) / descSizeFor(childSlots)
}

func getU16(b []byte, off int) uint16      { return binary.LittleEndian.Uint16(b[off:]) }
func putU16(b []byte, off int, v uint16)   { binary.LittleEndian.PutUint16(b[off:], v) }
func getU32(b []byte, off int) uint32      { return binary.LittleEndian.Uint32(b[off:]) }
func putU32(b []byte, off int, v uint32)   { binary.LittleEndian.PutUint32(b[off:], v) }
func getPtr(b []byte, off int) sas.XPtr    { return sas.XPtr(binary.LittleEndian.Uint64(b[off:])) }
func putPtr(b []byte, off int, p sas.XPtr) { binary.LittleEndian.PutUint64(b[off:], uint64(p)) }

// nodeBlockHeader is the decoded node-block header.
type nodeBlockHeader struct {
	ChildSlots int
	SchemaID   uint32
	DocID      uint32
	Count      int
	DescSize   int
	Next, Prev sas.XPtr
	FirstDesc  uint16
	LastDesc   uint16
	FreeHead   uint16
	SlotTop    uint16
}

func decodeNodeHeader(page []byte) (nodeBlockHeader, error) {
	if page[nbKind] != blockKindNode {
		return nodeBlockHeader{}, fmt.Errorf("storage: page is not a node block (kind %d)", page[nbKind])
	}
	return nodeBlockHeader{
		ChildSlots: int(getU16(page, nbChildSlots)),
		SchemaID:   getU32(page, nbSchemaID),
		DocID:      getU32(page, nbDocID),
		Count:      int(getU16(page, nbCount)),
		DescSize:   int(getU16(page, nbDescSize)),
		Next:       getPtr(page, nbNext),
		Prev:       getPtr(page, nbPrev),
		FirstDesc:  getU16(page, nbFirstDesc),
		LastDesc:   getU16(page, nbLastDesc),
		FreeHead:   getU16(page, nbFreeHead),
		SlotTop:    getU16(page, nbSlotTop),
	}, nil
}

// encodeNodeHeader writes the full header into a page-sized buffer.
func encodeNodeHeader(page []byte, h nodeBlockHeader) {
	page[nbKind] = blockKindNode
	putU16(page, nbChildSlots, uint16(h.ChildSlots))
	putU32(page, nbSchemaID, h.SchemaID)
	putU32(page, nbDocID, h.DocID)
	putU16(page, nbCount, uint16(h.Count))
	putU16(page, nbDescSize, uint16(h.DescSize))
	putPtr(page, nbNext, h.Next)
	putPtr(page, nbPrev, h.Prev)
	putU16(page, nbFirstDesc, h.FirstDesc)
	putU16(page, nbLastDesc, h.LastDesc)
	putU16(page, nbFreeHead, h.FreeHead)
	putU16(page, nbSlotTop, h.SlotTop)
}

// Desc is a decoded node descriptor together with the identity of the block
// that holds it. Label decoding of overflowed prefixes happens lazily in
// readDesc.
type Desc struct {
	Ptr sas.XPtr // address of the descriptor

	SchemaID   uint32
	DocID      uint32
	ChildSlots int

	Label    nid.Label
	Handle   sas.XPtr
	Parent   sas.XPtr // parent's node handle (indirect)
	LeftSib  sas.XPtr
	RightSib sas.XPtr

	NextInBlock sas.XPtr // resolved to full pointers (nil at chain ends)
	PrevInBlock sas.XPtr

	Text    sas.XPtr
	TextLen uint32

	Children []sas.XPtr // one first-child pointer per schema-child slot
}

// decodeDescAt decodes the descriptor at byte offset off of the node block
// page whose base pointer is base. Overflowed labels are left with a nil
// prefix and reported via the second result (their length in the third), to
// be resolved by the caller with a text-storage read.
func decodeDescAt(page []byte, base sas.XPtr, off uint16, h nodeBlockHeader) (Desc, sas.XPtr, int) {
	b := page[off:]
	d := Desc{
		Ptr:        base.Add(uint32(off)),
		SchemaID:   h.SchemaID,
		DocID:      h.DocID,
		ChildSlots: h.ChildSlots,
		Handle:     getPtr(b, dHandle),
		Parent:     getPtr(b, dParent),
		LeftSib:    getPtr(b, dLeftSib),
		RightSib:   getPtr(b, dRightSib),
		Text:       getPtr(b, dText),
		TextLen:    getU32(b, dTextLen),
	}
	if n := getU16(b, dNextIn); n != 0 {
		d.NextInBlock = base.Add(uint32(n))
	}
	if p := getU16(b, dPrevIn); p != 0 {
		d.PrevInBlock = base.Add(uint32(p))
	}
	d.Children = make([]sas.XPtr, h.ChildSlots)
	for i := 0; i < h.ChildSlots; i++ {
		d.Children[i] = getPtr(b, dChildren+8*i)
	}
	nidLen := int(getU16(b, dNidLen))
	d.Label.Delim = b[dNidDelim]
	var overflow sas.XPtr
	if b[dFlags]&flagNidOverflow != 0 {
		overflow = getPtr(b, dNid)
		d.Label.Prefix = nil // resolved by the caller
	} else {
		d.Label.Prefix = append([]byte(nil), b[dNid:dNid+nidLen]...)
	}
	return d, overflow, nidLen
}

// encodeDesc writes the descriptor fields into buf (of the block's descSize)
// for a descriptor whose label fits inline or has been stored at
// overflowPtr (with prefix length ovLen). nextIn/prevIn are in-block
// offsets.
func encodeDesc(buf []byte, d *Desc, overflowPtr sas.XPtr, ovLen int, nextIn, prevIn uint16) {
	for i := range buf {
		buf[i] = 0
	}
	buf[dNidDelim] = d.Label.Delim
	if overflowPtr.IsNil() {
		putU16(buf, dNidLen, uint16(len(d.Label.Prefix)))
		copy(buf[dNid:dNid+nidInlineCap], d.Label.Prefix)
	} else {
		putU16(buf, dNidLen, uint16(ovLen))
		buf[dFlags] |= flagNidOverflow
		putPtr(buf, dNid, overflowPtr)
	}
	putPtr(buf, dHandle, d.Handle)
	putPtr(buf, dParent, d.Parent)
	putPtr(buf, dLeftSib, d.LeftSib)
	putPtr(buf, dRightSib, d.RightSib)
	putU16(buf, dNextIn, nextIn)
	putU16(buf, dPrevIn, prevIn)
	putPtr(buf, dText, d.Text)
	putU32(buf, dTextLen, d.TextLen)
	for i, c := range d.Children {
		if dChildren+8*i+8 <= len(buf) {
			putPtr(buf, dChildren+8*i, c)
		}
	}
}

// Indirection-block header layout (32 bytes):
//
//	 0  kind     byte
//	 2  count    uint16
//	 4  freeHead uint16  offset of the first free entry (0 = none)
//	 6  slotTop  uint16  offset of never-used space
//	 8  next     XPtr    document indirection-block chain
//	16  prev     XPtr
const (
	ibCount              = 2
	ibFreeHead           = 4
	ibSlotTop            = 6
	ibNext               = 8
	ibPrev               = 16
	indirBlockHeaderSize = 32
	indirEntrySize       = 8
)

// freeEntryMarker tags free indirection entries: the layer field holds the
// marker and the offset field the next free entry's in-block offset.
const freeEntryMarker = 0xFFFFFFFF

// Text-block header layout (28 bytes):
//
//	 0  kind      byte
//	 2  slotCount uint16
//	 4  freeSlot  uint16  offset of first free slot entry (0 = none)
//	 6  dataStart uint16  lowest used data byte (data grows downward)
//	 8  freeBytes uint16  reclaimable fragmented bytes
//	12  next      XPtr    document text-block chain
//	20  prev      XPtr
//
// Slot entries (4 bytes: off uint16, len uint16) grow upward from the
// header; records grow downward from the page end. A record pointer is the
// XPtr of its slot entry, so in-page compaction never invalidates pointers.
// A free slot has len == 0xFFFF and off == next free slot offset.
const (
	tbSlotCount         = 2
	tbFreeSlot          = 4
	tbDataStart         = 6
	tbFreeBytes         = 8
	tbNext              = 12
	tbPrev              = 20
	textBlockHeaderSize = 28
	textSlotSize        = 4
	freeSlotLen         = 0xFFFF
)

// Text records are chunked: each record begins with an 8-byte pointer to the
// next chunk's slot (nil for the last chunk), followed by payload bytes.
const (
	textChunkHeader = 8
	// maxChunkPayload keeps every chunk well under a page so that even
	// unrestricted-length values (§4.1) chain across pages.
	maxChunkPayload = 8192
)
