package storage

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// VerifyDoc checks every structural invariant of the paper's data
// organization for one document:
//
//   - indirection consistency: every node's handle resolves to its
//     descriptor, and every descriptor's handle field points back;
//   - sibling chains are doubly linked, label-ordered, and all siblings
//     share the parent handle;
//   - numbering-scheme containment: each child's label lies in its parent's
//     descendant range;
//   - per-schema child-slot pointers address the document-order-first child
//     of that schema type;
//   - block lists are doubly linked, counts match chain lengths, labels are
//     partly ordered (every descriptor of block i precedes every descriptor
//     of block j for i < j) and increase along in-block chains;
//   - the set of nodes reachable from the tree equals the set stored in the
//     block lists, and schema NodeCounts agree.
//
// It is used pervasively by tests (and by the sedna-check tool).
func VerifyDoc(r Reader, doc *Doc) error {
	treeNodes := make(map[sas.XPtr]bool) // descriptor ptr set from tree walk
	var walk func(d Desc) error
	walk = func(d Desc) error {
		// Handle round trip.
		hp, err := DerefHandle(r, d.Handle)
		if err != nil {
			return fmt.Errorf("node %v: %w", d.Ptr, err)
		}
		if hp != d.Ptr {
			return fmt.Errorf("node %v: handle resolves to %v", d.Ptr, hp)
		}
		if treeNodes[d.Ptr] {
			return fmt.Errorf("node %v reached twice in tree walk", d.Ptr)
		}
		treeNodes[d.Ptr] = true
		sn := doc.Schema.ByID(d.SchemaID)
		if sn == nil {
			return fmt.Errorf("node %v: unknown schema id %d", d.Ptr, d.SchemaID)
		}
		if !d.Label.Valid() {
			return fmt.Errorf("node %v: invalid label %v", d.Ptr, d.Label)
		}

		// Children: walk the sibling chain from the first child.
		first, ok, err := FirstChild(r, &d)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !first.LeftSib.IsNil() {
			return fmt.Errorf("node %v: first child %v has a left sibling", d.Ptr, first.Ptr)
		}
		// firstSeen tracks the first child per child schema for slot checks.
		firstSeen := make(map[uint32]sas.XPtr)
		prev := Desc{}
		havePrev := false
		for c, ok := first, true; ok; {
			if c.Parent != d.Handle {
				return fmt.Errorf("child %v: parent handle %v, want %v", c.Ptr, c.Parent, d.Handle)
			}
			if !nid.IsAncestor(d.Label, c.Label) {
				return fmt.Errorf("child %v: label %v outside parent range %v", c.Ptr, c.Label, d.Label)
			}
			if havePrev {
				if nid.Compare(prev.Label, c.Label) >= 0 {
					return fmt.Errorf("siblings %v,%v out of document order", prev.Ptr, c.Ptr)
				}
				if nid.IsAncestor(prev.Label, c.Label) {
					return fmt.Errorf("sibling %v labeled inside sibling %v's descendant range", c.Ptr, prev.Ptr)
				}
				if c.LeftSib != prev.Ptr {
					return fmt.Errorf("sibling %v: leftSib %v, want %v", c.Ptr, c.LeftSib, prev.Ptr)
				}
				if prev.RightSib != c.Ptr {
					return fmt.Errorf("sibling %v: rightSib %v, want %v", prev.Ptr, prev.RightSib, c.Ptr)
				}
			}
			if _, seen := firstSeen[c.SchemaID]; !seen {
				firstSeen[c.SchemaID] = c.Ptr
			}
			if err := walk(c); err != nil {
				return err
			}
			prev = c
			havePrev = true
			if c.RightSib.IsNil() {
				break
			}
			c, err = ReadDesc(r, c.RightSib)
			if err != nil {
				return err
			}
		}
		// Child-slot pointers.
		for i, slot := range d.Children {
			if i >= len(sn.Children) {
				if !slot.IsNil() {
					return fmt.Errorf("node %v: slot %d beyond schema width is set", d.Ptr, i)
				}
				continue
			}
			want := firstSeen[sn.Children[i].ID]
			if slot != want {
				return fmt.Errorf("node %v: slot %d (%s) = %v, want %v", d.Ptr, i, sn.Children[i].Path(), slot, want)
			}
		}
		return nil
	}
	root, err := DescOf(r, doc.RootHandle)
	if err != nil {
		return err
	}
	if err := walk(root); err != nil {
		return err
	}

	// Block-list invariants per schema node.
	listNodes := make(map[sas.XPtr]bool)
	var schemaErr error
	total := uint64(0)
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		if schemaErr != nil {
			return
		}
		schemaErr = verifySchemaList(r, doc, sn, listNodes)
		total += sn.NodeCount
	})
	if schemaErr != nil {
		return schemaErr
	}

	if len(treeNodes) != len(listNodes) {
		return fmt.Errorf("tree has %d nodes, block lists have %d", len(treeNodes), len(listNodes))
	}
	for p := range treeNodes {
		if !listNodes[p] {
			return fmt.Errorf("node %v reachable in tree but missing from block lists", p)
		}
	}
	if total != uint64(len(treeNodes)) {
		return fmt.Errorf("schema NodeCounts sum to %d, tree has %d", total, len(treeNodes))
	}
	return nil
}

func verifySchemaList(r Reader, doc *Doc, sn *schema.Node, seen map[sas.XPtr]bool) error {
	var prevBlock sas.XPtr
	var prevLabel *nid.Label
	blocks := 0
	count := uint64(0)
	for block := sn.FirstBlock; !block.IsNil(); {
		h, err := readNodeHeader(r, block)
		if err != nil {
			return fmt.Errorf("schema %s: %w", sn.Path(), err)
		}
		blocks++
		if h.SchemaID != sn.ID {
			return fmt.Errorf("schema %s: block %v belongs to schema %d", sn.Path(), block, h.SchemaID)
		}
		if h.DocID != doc.ID {
			return fmt.Errorf("schema %s: block %v belongs to doc %d", sn.Path(), block, h.DocID)
		}
		if h.Prev != prevBlock {
			return fmt.Errorf("schema %s: block %v prev = %v, want %v", sn.Path(), block, h.Prev, prevBlock)
		}
		if h.DescSize != descSizeFor(h.ChildSlots) {
			return fmt.Errorf("schema %s: block %v descSize %d for %d slots", sn.Path(), block, h.DescSize, h.ChildSlots)
		}
		// In-block chain.
		n := 0
		var lastOff uint16
		for off := h.FirstDesc; off != 0; {
			d, err := ReadDesc(r, block.Add(uint32(off)))
			if err != nil {
				return err
			}
			if seen[d.Ptr] {
				return fmt.Errorf("descriptor %v in two chains", d.Ptr)
			}
			seen[d.Ptr] = true
			if prevLabel != nil && nid.Compare(*prevLabel, d.Label) >= 0 {
				return fmt.Errorf("schema %s: partial order violated at %v", sn.Path(), d.Ptr)
			}
			l := d.Label
			prevLabel = &l
			n++
			count++
			lastOff = off
			if d.NextInBlock.IsNil() {
				off = 0
			} else {
				off = uint16(d.NextInBlock.PageOffset())
			}
		}
		if n != h.Count {
			return fmt.Errorf("schema %s: block %v chain has %d, header says %d", sn.Path(), block, n, h.Count)
		}
		if h.Count == 0 {
			return fmt.Errorf("schema %s: empty block %v not freed", sn.Path(), block)
		}
		if h.LastDesc != lastOff {
			return fmt.Errorf("schema %s: block %v lastDesc %d, chain ends at %d", sn.Path(), block, h.LastDesc, lastOff)
		}
		if h.Next.IsNil() && sn.LastBlock != block {
			return fmt.Errorf("schema %s: LastBlock %v, chain ends at %v", sn.Path(), sn.LastBlock, block)
		}
		prevBlock = block
		block = h.Next
	}
	if uint32(blocks) != sn.BlockCount {
		return fmt.Errorf("schema %s: BlockCount %d, found %d", sn.Path(), sn.BlockCount, blocks)
	}
	if count != sn.NodeCount {
		return fmt.Errorf("schema %s: NodeCount %d, found %d", sn.Path(), sn.NodeCount, count)
	}
	return nil
}
