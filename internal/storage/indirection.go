package storage

import (
	"fmt"

	"sedna/internal/sas"
)

// Indirection table (§4.1.2): a node handle is the XPtr of an entry in an
// indirection block; the entry holds the current address of the node's
// descriptor. Handles are immutable for the node's lifetime even when the
// descriptor moves (block split, widening), and the indirect parent pointer
// of every descriptor is a handle — which is exactly why moving a node with
// N children updates one indirection entry instead of N parent fields.

// AllocHandle allocates an indirection entry pointing at desc and returns
// the handle.
func AllocHandle(w Writer, doc *Doc, desc sas.XPtr) (sas.XPtr, error) {
	// Try the last indirection block first; allocate a new one if full.
	block := doc.IndirLast
	if !block.IsNil() {
		h, ok, err := tryAllocEntry(w, block, desc)
		if err != nil {
			return sas.NilPtr, err
		}
		if ok {
			return h, nil
		}
	}
	block, err := newIndirBlock(w, doc)
	if err != nil {
		return sas.NilPtr, err
	}
	h, ok, err := tryAllocEntry(w, block, desc)
	if err != nil {
		return sas.NilPtr, err
	}
	if !ok {
		return sas.NilPtr, fmt.Errorf("storage: fresh indirection block full")
	}
	return h, nil
}

func tryAllocEntry(w Writer, block sas.XPtr, desc sas.XPtr) (sas.XPtr, bool, error) {
	var freeHead, slotTop, count uint16
	err := w.ReadPage(block, func(page []byte) error {
		if page[0] != blockKindIndir {
			return fmt.Errorf("storage: not an indirection block")
		}
		freeHead = getU16(page, ibFreeHead)
		slotTop = getU16(page, ibSlotTop)
		count = getU16(page, ibCount)
		return nil
	})
	if err != nil {
		return sas.NilPtr, false, err
	}
	var off uint16
	switch {
	case freeHead != 0:
		off = freeHead
		entry, err := readPtrAt(w, block.Add(uint32(off)))
		if err != nil {
			return sas.NilPtr, false, err
		}
		if entry.Layer() != freeEntryMarker {
			return sas.NilPtr, false, fmt.Errorf("storage: corrupt indirection free chain at %v", block.Add(uint32(off)))
		}
		if err := writeU16At(w, block.Add(ibFreeHead), uint16(entry.Offset())); err != nil {
			return sas.NilPtr, false, err
		}
	case int(slotTop)+indirEntrySize <= sas.PageSize:
		off = slotTop
		if err := writeU16At(w, block.Add(ibSlotTop), slotTop+indirEntrySize); err != nil {
			return sas.NilPtr, false, err
		}
	default:
		return sas.NilPtr, false, nil
	}
	h := block.Add(uint32(off))
	if err := writePtrAt(w, h, desc); err != nil {
		return sas.NilPtr, false, err
	}
	if err := writeU16At(w, block.Add(ibCount), count+1); err != nil {
		return sas.NilPtr, false, err
	}
	return h, true, nil
}

// FreeHandle releases the indirection entry. (The paper garbage-collects
// handles at commit; here freeing is a logged page write, so an aborting
// transaction restores the entry with the page pre-image.)
func FreeHandle(w Writer, doc *Doc, h sas.XPtr) error {
	block := h.PageBase()
	var freeHead, count uint16
	err := w.ReadPage(block, func(page []byte) error {
		if page[0] != blockKindIndir {
			return fmt.Errorf("storage: handle %v not in an indirection block", h)
		}
		freeHead = getU16(page, ibFreeHead)
		count = getU16(page, ibCount)
		return nil
	})
	if err != nil {
		return err
	}
	if err := writePtrAt(w, h, sas.MakePtr(freeEntryMarker, uint32(freeHead))); err != nil {
		return err
	}
	if err := writeU16At(w, block.Add(ibFreeHead), uint16(h.PageOffset())); err != nil {
		return err
	}
	if count == 1 {
		// Last live entry: release the whole block ("orphaned blocks are
		// deleted").
		return freeIndirBlock(w, doc, block)
	}
	return writeU16At(w, block.Add(ibCount), count-1)
}

// DerefHandle resolves a node handle to the current descriptor address.
func DerefHandle(r Reader, h sas.XPtr) (sas.XPtr, error) {
	p, err := readPtrAt(r, h)
	if err != nil {
		return sas.NilPtr, err
	}
	if p.Layer() == freeEntryMarker {
		return sas.NilPtr, fmt.Errorf("storage: handle %v is free", h)
	}
	return p, nil
}

// SetHandle repoints a node handle at a new descriptor address — the single
// write that moves a node for all of its children at once.
func SetHandle(w Writer, h sas.XPtr, desc sas.XPtr) error {
	return writePtrAt(w, h, desc)
}

func newIndirBlock(w Writer, doc *Doc) (sas.XPtr, error) {
	id, err := w.AllocPage()
	if err != nil {
		return sas.NilPtr, err
	}
	base := id.Ptr()
	page := make([]byte, sas.PageSize)
	page[0] = blockKindIndir
	putU16(page, ibSlotTop, indirBlockHeaderSize)
	putPtr(page, ibPrev, doc.IndirLast)
	if err := w.WriteAt(base, page); err != nil {
		return sas.NilPtr, err
	}
	oldFirst, oldLast := doc.IndirFirst, doc.IndirLast
	if !doc.IndirLast.IsNil() {
		if err := writePtrAt(w, doc.IndirLast.Add(ibNext), base); err != nil {
			return sas.NilPtr, err
		}
	} else {
		doc.IndirFirst = base
	}
	doc.IndirLast = base
	w.Defer(func() { doc.IndirFirst, doc.IndirLast = oldFirst, oldLast })
	w.NoteDocMeta(doc)
	return base, nil
}

func freeIndirBlock(w Writer, doc *Doc, block sas.XPtr) error {
	var next, prev sas.XPtr
	err := w.ReadPage(block, func(page []byte) error {
		next = getPtr(page, ibNext)
		prev = getPtr(page, ibPrev)
		return nil
	})
	if err != nil {
		return err
	}
	if !prev.IsNil() {
		if err := writePtrAt(w, prev.Add(ibNext), next); err != nil {
			return err
		}
	}
	if !next.IsNil() {
		if err := writePtrAt(w, next.Add(ibPrev), prev); err != nil {
			return err
		}
	}
	oldFirst, oldLast := doc.IndirFirst, doc.IndirLast
	changed := false
	if doc.IndirFirst == block {
		doc.IndirFirst = next
		changed = true
	}
	if doc.IndirLast == block {
		doc.IndirLast = prev
		changed = true
	}
	if changed {
		w.Defer(func() { doc.IndirFirst, doc.IndirLast = oldFirst, oldLast })
		w.NoteDocMeta(doc)
	}
	return w.FreePage(sas.PageIDOf(block))
}
