package storage

import (
	"fmt"

	"sedna/internal/sas"
	"sedna/internal/schema"
)

// memWriter is an in-memory Writer for storage unit tests: pages live in a
// map, allocation is a counter, and WAL/versioning concerns are absent. The
// real implementation lives in the txn package; storage is written against
// the interface so both satisfy the same contract.
type memWriter struct {
	pages map[sas.PageID][]byte
	next  uint64
	undo  []func()
	freed []sas.PageID
}

func newMemWriter() *memWriter {
	return &memWriter{pages: make(map[sas.PageID][]byte), next: 1}
}

func (m *memWriter) page(id sas.PageID) []byte {
	p := m.pages[id]
	if p == nil {
		p = make([]byte, sas.PageSize)
		m.pages[id] = p
	}
	return p
}

func (m *memWriter) ReadPage(p sas.XPtr, fn func(page []byte) error) error {
	if p.IsNil() {
		return fmt.Errorf("memWriter: read of nil pointer")
	}
	return fn(m.page(sas.PageIDOf(p)))
}

func (m *memWriter) TxnID() uint64 { return 1 }

func (m *memWriter) WriteAt(p sas.XPtr, data []byte) error {
	if p.IsNil() {
		return fmt.Errorf("memWriter: write at nil pointer")
	}
	page := m.page(sas.PageIDOf(p))
	off := int(p.PageOffset())
	if off+len(data) > len(page) {
		return fmt.Errorf("memWriter: write of %d bytes at %v crosses page end", len(data), p)
	}
	copy(page[off:], data)
	return nil
}

func (m *memWriter) AllocPage() (sas.PageID, error) {
	id := sas.PageIDFromGlobal(m.next)
	m.next++
	return id, nil
}

func (m *memWriter) FreePage(id sas.PageID) error {
	m.freed = append(m.freed, id)
	return nil
}

func (m *memWriter) NoteSchemaNode(doc *Doc, parent, node *schema.Node) {}
func (m *memWriter) NoteSchemaBlocks(doc *Doc, node *schema.Node)       {}
func (m *memWriter) NoteDocMeta(doc *Doc)                               {}

func (m *memWriter) TouchDoc(doc *Doc) {}

func (m *memWriter) Defer(undo func()) { m.undo = append(m.undo, undo) }

// rollback runs the undo stack in reverse, mimicking transaction abort for
// the in-memory side effects.
func (m *memWriter) rollback() {
	for i := len(m.undo) - 1; i >= 0; i-- {
		m.undo[i]()
	}
	m.undo = nil
}
