package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sedna/internal/nid"
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// buildLibraryDoc loads the paper's Figure 2 sample document through the
// storage API and returns the handles of interest.
func buildLibraryDoc(t *testing.T, w Writer) (*Doc, map[string]sas.XPtr) {
	t.Helper()
	doc, err := CreateDoc(w, 1, "library.xml")
	if err != nil {
		t.Fatal(err)
	}
	hs := make(map[string]sas.XPtr)
	ins := func(key string, parent, left sas.XPtr, kind schema.NodeKind, name, text string) sas.XPtr {
		t.Helper()
		h, err := InsertNode(w, doc, parent, left, sas.NilPtr, kind, name, []byte(text))
		if err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
		hs[key] = h
		return h
	}
	lib := ins("library", doc.RootHandle, sas.NilPtr, schema.KindElement, "library", "")

	b1 := ins("book1", lib, sas.NilPtr, schema.KindElement, "book", "")
	t1 := ins("book1/title", b1, sas.NilPtr, schema.KindElement, "title", "")
	ins("book1/title/text", t1, sas.NilPtr, schema.KindText, "", "Foundations of Databases")
	a1 := ins("book1/author1", b1, hs["book1/title"], schema.KindElement, "author", "")
	ins("book1/author1/text", a1, sas.NilPtr, schema.KindText, "", "Abiteboul")
	a2 := ins("book1/author2", b1, a1, schema.KindElement, "author", "")
	ins("book1/author2/text", a2, sas.NilPtr, schema.KindText, "", "Hull")
	a3 := ins("book1/author3", b1, a2, schema.KindElement, "author", "")
	ins("book1/author3/text", a3, sas.NilPtr, schema.KindText, "", "Vianu")

	b2 := ins("book2", lib, b1, schema.KindElement, "book", "")
	t2 := ins("book2/title", b2, sas.NilPtr, schema.KindElement, "title", "")
	ins("book2/title/text", t2, sas.NilPtr, schema.KindText, "", "An Introduction to Database Systems")
	a4 := ins("book2/author", b2, t2, schema.KindElement, "author", "")
	ins("book2/author/text", a4, sas.NilPtr, schema.KindText, "", "Date")
	iss := ins("book2/issue", b2, a4, schema.KindElement, "issue", "")
	pub := ins("book2/issue/publisher", iss, sas.NilPtr, schema.KindElement, "publisher", "")
	ins("book2/issue/publisher/text", pub, sas.NilPtr, schema.KindText, "", "Addison-Wesley")
	yr := ins("book2/issue/year", iss, pub, schema.KindElement, "year", "")
	ins("book2/issue/year/text", yr, sas.NilPtr, schema.KindText, "", "2004")

	p := ins("paper", lib, b2, schema.KindElement, "paper", "")
	pt := ins("paper/title", p, sas.NilPtr, schema.KindElement, "title", "")
	ins("paper/title/text", pt, sas.NilPtr, schema.KindText, "", "A Relational Model for Large Shared Data Banks")
	pa := ins("paper/author", p, pt, schema.KindElement, "author", "")
	ins("paper/author/text", pa, sas.NilPtr, schema.KindText, "", "Codd")
	return doc, hs
}

func TestCreateDoc(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "d")
	if err != nil {
		t.Fatal(err)
	}
	root, err := DescOf(w, doc.RootHandle)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Parent.IsNil() {
		t.Fatal("document node must have no parent")
	}
	if !nid.Same(root.Label, nid.Root()) {
		t.Fatalf("root label = %v", root.Label)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestLibraryDocumentStructure(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}

	// Figure 2: the library schema node has 2 element children even though
	// the data has 2 books + 1 paper.
	libSn := doc.Schema.Root.Child(schema.KindElement, "library")
	if len(libSn.Children) != 2 {
		t.Fatalf("library schema children = %d", len(libSn.Children))
	}
	// The library descriptor has exactly two child pointers: first book and
	// first paper.
	lib, err := DescOf(w, hs["library"])
	if err != nil {
		t.Fatal(err)
	}
	book1, _ := DescOf(w, hs["book1"])
	paper, _ := DescOf(w, hs["paper"])
	if lib.ChildAtSlot(0) != book1.Ptr {
		t.Fatalf("slot 0 = %v, want first book %v", lib.ChildAtSlot(0), book1.Ptr)
	}
	if lib.ChildAtSlot(1) != paper.Ptr {
		t.Fatalf("slot 1 = %v, want paper %v", lib.ChildAtSlot(1), paper.Ptr)
	}

	// Traversal: children of library in document order are book1, book2,
	// paper — crossing schema types via sibling pointers.
	first, ok, err := FirstChild(w, &lib)
	if err != nil || !ok {
		t.Fatalf("FirstChild: %v %v", ok, err)
	}
	book2, _ := DescOf(w, hs["book2"])
	order := []sas.XPtr{book1.Ptr, book2.Ptr, paper.Ptr}
	cur := first
	for i, want := range order {
		if cur.Ptr != want {
			t.Fatalf("child %d = %v, want %v", i, cur.Ptr, want)
		}
		if i < len(order)-1 {
			cur, err = ReadDesc(w, cur.RightSib)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cur.RightSib.IsNil() {
		t.Fatal("paper must be the last child")
	}

	// All three author schema nodes' data: book authors share one schema
	// node (4 nodes), paper author is a distinct schema node (1 node).
	bookAuthor := libSn.Child(schema.KindElement, "book").Child(schema.KindElement, "author")
	if bookAuthor.NodeCount != 4 {
		t.Fatalf("book/author count = %d, want 4", bookAuthor.NodeCount)
	}
	paperAuthor := libSn.Child(schema.KindElement, "paper").Child(schema.KindElement, "author")
	if paperAuthor.NodeCount != 1 {
		t.Fatalf("paper/author count = %d, want 1", paperAuthor.NodeCount)
	}

	// Text round trip.
	yr := hs["book2/issue/year/text"]
	yd, err := DescOf(w, yr)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Text(w, &yd)
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "2004" {
		t.Fatalf("year text = %q", text)
	}
}

func TestScanSchemaDocumentOrder(t *testing.T) {
	w := newMemWriter()
	doc, _ := buildLibraryDoc(t, w)
	libSn := doc.Schema.Root.Child(schema.KindElement, "library")
	authorSn := libSn.Child(schema.KindElement, "book").Child(schema.KindElement, "author")

	var texts []string
	err := ScanSchema(w, authorSn, func(d Desc) (bool, error) {
		// author -> text child
		c, ok, err := FirstChild(w, &d)
		if err != nil || !ok {
			return false, fmt.Errorf("author without text: %v", err)
		}
		b, err := Text(w, &c)
		if err != nil {
			return false, err
		}
		texts = append(texts, string(b))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Abiteboul", "Hull", "Vianu", "Date"}
	if len(texts) != len(want) {
		t.Fatalf("scan found %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("scan order %v, want %v", texts, want)
		}
	}
}

func TestAncestorViaLabels(t *testing.T) {
	w := newMemWriter()
	_, hs := buildLibraryDoc(t, w)
	lib, _ := DescOf(w, hs["library"])
	year, _ := DescOf(w, hs["book2/issue/year"])
	book1, _ := DescOf(w, hs["book1"])
	if !IsAncestorDesc(&lib, &year) {
		t.Fatal("library must be ancestor of year")
	}
	if IsAncestorDesc(&book1, &year) {
		t.Fatal("book1 must not be ancestor of book2's year")
	}
	if !DocLess(&book1, &year) {
		t.Fatal("book1 precedes year in document order")
	}
}

func TestInsertMiddleSibling(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	// Insert a book directly after book1 (left given, right resolved from
	// the chain): the new node lands between book1 and book2.
	mid, err := InsertNode(w, doc, hs["library"], hs["book1"], sas.NilPtr, schema.KindElement, "book", nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := DescOf(w, hs["book1"])
	m, _ := DescOf(w, mid)
	b2, _ := DescOf(w, hs["book2"])
	if b1.RightSib != m.Ptr || m.RightSib != b2.Ptr || m.LeftSib != b1.Ptr || b2.LeftSib != m.Ptr {
		t.Fatal("middle insert not wired between book1 and book2")
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSubtree(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	before := doc.Schema.Root.Child(schema.KindElement, "library").NodeCount

	if err := DeleteSubtree(w, doc, hs["book2"]); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
	// book1's right sibling is now paper.
	b1, _ := DescOf(w, hs["book1"])
	paper, _ := DescOf(w, hs["paper"])
	if b1.RightSib != paper.Ptr {
		t.Fatalf("book1.rightSib = %v, want paper %v", b1.RightSib, paper.Ptr)
	}
	if paper.LeftSib != b1.Ptr {
		t.Fatalf("paper.leftSib = %v", paper.LeftSib)
	}
	// The issue/publisher/year schema nodes now hold zero nodes.
	issueSn := doc.Schema.Root.Child(schema.KindElement, "library").
		Child(schema.KindElement, "book").Child(schema.KindElement, "issue")
	if issueSn.NodeCount != 0 {
		t.Fatalf("issue NodeCount = %d", issueSn.NodeCount)
	}
	if before != 1 {
		t.Fatalf("library count changed: %d", before)
	}
	// Deleting the document node must fail.
	if err := DeleteSubtree(w, doc, doc.RootHandle); err == nil {
		t.Fatal("deleting the document node must fail")
	}
}

func TestDeleteFirstChildUpdatesSlot(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	if err := DeleteSubtree(w, doc, hs["book1"]); err != nil {
		t.Fatal(err)
	}
	lib, _ := DescOf(w, hs["library"])
	b2, _ := DescOf(w, hs["book2"])
	if lib.ChildAtSlot(0) != b2.Ptr {
		t.Fatalf("book slot = %v, want book2 %v", lib.ChildAtSlot(0), b2.Ptr)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateText(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	h := hs["book2/issue/year/text"]
	if err := UpdateText(w, doc, h, []byte("2005")); err != nil {
		t.Fatal(err)
	}
	d, _ := DescOf(w, h)
	text, err := Text(w, &d)
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "2005" {
		t.Fatalf("text = %q", text)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestLongTextChunking(t *testing.T) {
	w := newMemWriter()
	doc, hs := buildLibraryDoc(t, w)
	long := bytes.Repeat([]byte("sedna "), 10000) // 60 KB, several chunks/pages
	h, err := InsertNode(w, doc, hs["paper"], sas.NilPtr, sas.NilPtr, schema.KindText, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := UpdateText(w, doc, h, long); err != nil {
		t.Fatal(err)
	}
	d, _ := DescOf(w, h)
	got, err := Text(w, &d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, long) {
		t.Fatalf("long text mismatch: %d vs %d bytes", len(got), len(long))
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
	// Free it again.
	if err := UpdateText(w, doc, h, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d, _ = DescOf(w, h)
	got, _ = Text(w, &d)
	if string(got) != "x" {
		t.Fatalf("text = %q", got)
	}
}

func TestBulkLoadSplitsBlocks(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "big")
	if err != nil {
		t.Fatal(err)
	}
	rootEl, err := InsertNode(w, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "root", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert enough children of one schema node to force several blocks.
	n := nodeBlockCapacity(0)*3 + 7
	left := sas.NilPtr
	for i := 0; i < n; i++ {
		h, err := InsertNode(w, doc, rootEl, left, sas.NilPtr, schema.KindElement, "item", nil)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		left = h
	}
	itemSn := doc.Schema.Root.Child(schema.KindElement, "root").Child(schema.KindElement, "item")
	if itemSn.BlockCount < 3 {
		t.Fatalf("expected ≥3 blocks, got %d", itemSn.BlockCount)
	}
	if itemSn.NodeCount != uint64(n) {
		t.Fatalf("NodeCount = %d, want %d", itemSn.NodeCount, n)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertDeleteInvariants(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "rand")
	if err != nil {
		t.Fatal(err)
	}
	rootEl, err := InsertNode(w, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "r", nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	type node struct {
		h        sas.XPtr
		children []sas.XPtr
	}
	parents := []sas.XPtr{rootEl}
	kids := map[sas.XPtr][]sas.XPtr{}
	names := []string{"a", "b", "c"}
	var all []sas.XPtr
	for i := 0; i < 800; i++ {
		p := parents[rng.Intn(len(parents))]
		siblings := kids[p]
		at := 0
		if len(siblings) > 0 {
			at = rng.Intn(len(siblings) + 1)
		}
		var left, right sas.XPtr
		if at > 0 {
			left = siblings[at-1]
		}
		if at < len(siblings) {
			right = siblings[at]
		}
		h, err := InsertNode(w, doc, p, left, right, schema.KindElement, names[rng.Intn(len(names))], nil)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		siblings = append(siblings, sas.NilPtr)
		copy(siblings[at+1:], siblings[at:])
		siblings[at] = h
		kids[p] = siblings
		all = append(all, h)
		if rng.Intn(4) == 0 {
			parents = append(parents, h)
		}
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatalf("after inserts: %v", err)
	}

	// Delete ~third of the leaves (nodes without registered children).
	deleted := 0
	for _, h := range all {
		if len(kids[h]) != 0 || rng.Intn(3) != 0 {
			continue
		}
		// Still present? Its parent may have been deleted already; detect
		// by deref.
		if _, err := DescOf(w, h); err != nil {
			continue
		}
		if err := DeleteSubtree(w, doc, h); err != nil {
			t.Fatalf("delete: %v", err)
		}
		// Remove from the parent's bookkeeping.
		for p, sibs := range kids {
			for i, s := range sibs {
				if s == h {
					kids[p] = append(sibs[:i], sibs[i+1:]...)
					break
				}
			}
		}
		deleted++
	}
	if deleted == 0 {
		t.Fatal("test deleted nothing")
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
}

func TestDelayedWidening(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "widen")
	if err != nil {
		t.Fatal(err)
	}
	rootEl, err := InsertNode(w, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "r", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Many r-children named e: the e schema node's descriptors start with
	// zero child slots.
	var es []sas.XPtr
	left := sas.NilPtr
	for i := 0; i < 50; i++ {
		h, err := InsertNode(w, doc, rootEl, left, sas.NilPtr, schema.KindElement, "e", nil)
		if err != nil {
			t.Fatal(err)
		}
		es = append(es, h)
		left = h
	}
	eSn := doc.Schema.Root.Child(schema.KindElement, "r").Child(schema.KindElement, "e")
	if len(eSn.Children) != 0 {
		t.Fatal("e should have no schema children yet")
	}

	// Give ONE e a child: this adds a schema child of e and must widen only
	// that e's descriptor (delayed per-block widening) — the others keep
	// their narrow blocks.
	mid := es[25]
	if _, err := InsertNode(w, doc, mid, sas.NilPtr, sas.NilPtr, schema.KindElement, "sub", nil); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
	d, err := DescOf(w, mid)
	if err != nil {
		t.Fatal(err)
	}
	if d.ChildSlots < 1 {
		t.Fatalf("widened descriptor has %d slots", d.ChildSlots)
	}
	// A neighbour that got no children can still be narrow.
	d0, err := DescOf(w, es[0])
	if err != nil {
		t.Fatal(err)
	}
	if d0.ChildSlots != 0 {
		t.Fatalf("untouched descriptor widened to %d slots", d0.ChildSlots)
	}
	// Now give the narrow one a child too.
	if _, err := InsertNode(w, doc, es[0], sas.NilPtr, sas.NilPtr, schema.KindElement, "sub", nil); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestDeepDocumentLabelOverflow(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "deep")
	if err != nil {
		t.Fatal(err)
	}
	// A 30-level chain: labels exceed the 16-byte inline capacity and
	// overflow into text storage.
	parent := doc.RootHandle
	for i := 0; i < 30; i++ {
		h, err := InsertNode(w, doc, parent, sas.NilPtr, sas.NilPtr, schema.KindElement, "d", nil)
		if err != nil {
			t.Fatalf("level %d: %v", i, err)
		}
		parent = h
	}
	d, err := DescOf(w, parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Label.Prefix) <= nidInlineCap {
		t.Skipf("labels stayed inline (%d bytes); overflow untested", len(d.Label.Prefix))
	}
	if err := VerifyDoc(w, doc); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackUndoesSchemaGrowth(t *testing.T) {
	w := newMemWriter()
	doc, err := CreateDoc(w, 1, "undo")
	if err != nil {
		t.Fatal(err)
	}
	w.undo = nil // forget doc-creation undos; we roll back only the insert
	if _, err := InsertNode(w, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "x", nil); err != nil {
		t.Fatal(err)
	}
	if doc.Schema.Root.Child(schema.KindElement, "x") == nil {
		t.Fatal("schema node missing")
	}
	w.rollback()
	if doc.Schema.Root.Child(schema.KindElement, "x") != nil {
		t.Fatal("schema growth not undone")
	}
	if doc.Schema.Root.Child(schema.KindElement, "x") != nil {
		t.Fatal("x still present")
	}
}
