package storage

import (
	"encoding/binary"
	"fmt"

	"sedna/internal/sas"
)

// Small typed read/write helpers over the Reader/Writer page interfaces.
// Reads copy out of the pinned page; writes go through WriteAt so that they
// are WAL-logged and versioned by the transaction layer.

func readBytes(r Reader, p sas.XPtr, n int) ([]byte, error) {
	out := make([]byte, n)
	err := r.ReadPage(p, func(page []byte) error {
		off := int(p.PageOffset())
		if off+n > len(page) {
			return fmt.Errorf("storage: read of %d bytes at %v crosses page end", n, p)
		}
		copy(out, page[off:off+n])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func readU16At(r Reader, p sas.XPtr) (uint16, error) {
	b, err := readBytes(r, p, 2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func readPtrAt(r Reader, p sas.XPtr) (sas.XPtr, error) {
	b, err := readBytes(r, p, 8)
	if err != nil {
		return 0, err
	}
	return sas.XPtr(binary.LittleEndian.Uint64(b)), nil
}

func writeU16At(w Writer, p sas.XPtr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return w.WriteAt(p, b[:])
}

func writeU32At(w Writer, p sas.XPtr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return w.WriteAt(p, b[:])
}

func writePtrAt(w Writer, p sas.XPtr, v sas.XPtr) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return w.WriteAt(p, b[:])
}

// readNodeHeader decodes the node-block header of the block containing p.
func readNodeHeader(r Reader, block sas.XPtr) (nodeBlockHeader, error) {
	var h nodeBlockHeader
	err := r.ReadPage(block, func(page []byte) error {
		var err error
		h, err = decodeNodeHeader(page)
		return err
	})
	return h, err
}
