package storage

import (
	"fmt"

	"sedna/internal/sas"
)

// DeleteSubtree removes the node identified by handle together with its
// entire subtree (the XML update semantics of node deletion). The document
// node cannot be deleted this way.
func DeleteSubtree(w Writer, doc *Doc, handle sas.XPtr) error {
	d, err := DescOf(w, handle)
	if err != nil {
		return err
	}
	if d.Parent.IsNil() {
		return fmt.Errorf("storage: cannot delete the document node")
	}
	return deleteRec(w, doc, handle)
}

func deleteRec(w Writer, doc *Doc, handle sas.XPtr) error {
	d, err := DescOf(w, handle)
	if err != nil {
		return err
	}
	// Collect child handles first: deleting mutates sibling chains.
	var kids []sas.XPtr
	c, ok, err := FirstChild(w, &d)
	for {
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		kids = append(kids, c.Handle)
		if c.RightSib.IsNil() {
			break
		}
		c, err = ReadDesc(w, c.RightSib)
		ok = err == nil
	}
	for _, k := range kids {
		if err := deleteRec(w, doc, k); err != nil {
			return err
		}
	}
	return deleteLeaf(w, doc, handle)
}

// deleteLeaf unlinks and frees a single childless node.
func deleteLeaf(w Writer, doc *Doc, handle sas.XPtr) error {
	d, err := DescOf(w, handle)
	if err != nil {
		return err
	}
	sn := doc.Schema.ByID(d.SchemaID)
	if sn == nil {
		return fmt.Errorf("storage: delete: unknown schema node %d", d.SchemaID)
	}

	// Sibling chain.
	if !d.LeftSib.IsNil() {
		if err := writePtrAt(w, d.LeftSib.Add(dRightSib), d.RightSib); err != nil {
			return err
		}
	}
	if !d.RightSib.IsNil() {
		if err := writePtrAt(w, d.RightSib.Add(dLeftSib), d.LeftSib); err != nil {
			return err
		}
	}

	// Parent child-slot: if it points at this node, repoint it at the next
	// sibling of the same schema node (siblings share the parent), or nil.
	if !d.Parent.IsNil() && sn.Parent != nil {
		slotIdx := sn.Parent.ChildIndex(sn)
		if slotIdx >= 0 {
			pPtr, err := DerefHandle(w, d.Parent)
			if err != nil {
				return err
			}
			slotAddr := pPtr.Add(uint32(dChildren + 8*slotIdx))
			cur, err := readPtrAt(w, slotAddr)
			if err != nil {
				return err
			}
			if cur == d.Ptr {
				next := sas.NilPtr
				for sib := d.RightSib; !sib.IsNil(); {
					sd, err := ReadDesc(w, sib)
					if err != nil {
						return err
					}
					if sd.SchemaID == d.SchemaID {
						next = sd.Ptr
						break
					}
					sib = sd.RightSib
				}
				if err := writePtrAt(w, slotAddr, next); err != nil {
					return err
				}
			}
		}
	}

	// Text value and overflowed label.
	if !d.Text.IsNil() {
		if err := FreeText(w, doc, d.Text); err != nil {
			return err
		}
	}
	var ov sas.XPtr
	err = w.ReadPage(d.Ptr, func(page []byte) error {
		off := int(d.Ptr.PageOffset())
		if page[off+dFlags]&flagNidOverflow != 0 {
			ov = getPtr(page[off:], dNid)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !ov.IsNil() {
		if err := FreeText(w, doc, ov); err != nil {
			return err
		}
	}

	// Descriptor slot and, when emptied, the block.
	block := d.Ptr.PageBase()
	empty, err := unlinkInBlock(w, block, uint16(d.Ptr.PageOffset()))
	if err != nil {
		return err
	}
	if empty {
		if err := freeNodeBlock(w, doc, sn, block); err != nil {
			return err
		}
	}

	// Node handle.
	if err := FreeHandle(w, doc, handle); err != nil {
		return err
	}

	sn.NodeCount--
	w.Defer(func() { sn.NodeCount++ })
	w.TouchDoc(doc)
	return nil
}

// UpdateText replaces the text value of a text-carrying node.
func UpdateText(w Writer, doc *Doc, handle sas.XPtr, text []byte) error {
	d, err := DescOf(w, handle)
	if err != nil {
		return err
	}
	if !d.Text.IsNil() {
		if err := FreeText(w, doc, d.Text); err != nil {
			return err
		}
	}
	var tp sas.XPtr
	if len(text) > 0 {
		tp, err = AllocText(w, doc, text)
		if err != nil {
			return err
		}
	}
	// Re-resolve: freeing text never moves descriptors, but stay uniform.
	p, err := DerefHandle(w, handle)
	if err != nil {
		return err
	}
	if err := writePtrAt(w, p.Add(dText), tp); err != nil {
		return err
	}
	if err := writeU32At(w, p.Add(dTextLen), uint32(len(text))); err != nil {
		return err
	}
	// A text replacement changes document content without moving any
	// descriptor: touch the document anyway so commit publishes a new
	// metadata version (snapshot readers key resident caching off it).
	w.TouchDoc(doc)
	return nil
}
