package storage

import (
	"fmt"

	"sedna/internal/sas"
	"sedna/internal/schema"
)

// Node-block list management. Blocks of one schema node form a bidirectional
// list; descriptors are partly ordered: every descriptor of block i precedes
// every descriptor of block j in document order when i < j, while within a
// block order is kept by the next/prev-in-block chain only (§4.1).

// newNodeBlock allocates a node block for sn with the given descriptor
// width and links it into sn's block list after prev (nil = at the front).
func newNodeBlock(w Writer, doc *Doc, sn *schema.Node, childSlots int, prev sas.XPtr) (sas.XPtr, error) {
	id, err := w.AllocPage()
	if err != nil {
		return sas.NilPtr, err
	}
	base := id.Ptr()

	var next sas.XPtr
	if prev.IsNil() {
		next = sn.FirstBlock
	} else {
		h, err := readNodeHeader(w, prev)
		if err != nil {
			return sas.NilPtr, err
		}
		next = h.Next
	}

	page := make([]byte, sas.PageSize)
	encodeNodeHeader(page, nodeBlockHeader{
		ChildSlots: childSlots,
		SchemaID:   sn.ID,
		DocID:      doc.ID,
		DescSize:   descSizeFor(childSlots),
		Next:       next,
		Prev:       prev,
		SlotTop:    nodeBlockHeaderSize,
	})
	if err := w.WriteAt(base, page); err != nil {
		return sas.NilPtr, err
	}

	oldFirst, oldLast, oldBlocks := sn.FirstBlock, sn.LastBlock, sn.BlockCount
	if prev.IsNil() {
		sn.FirstBlock = base
	} else {
		if err := writePtrAt(w, prev.Add(nbNext), base); err != nil {
			return sas.NilPtr, err
		}
	}
	if next.IsNil() {
		sn.LastBlock = base
	} else {
		if err := writePtrAt(w, next.Add(nbPrev), base); err != nil {
			return sas.NilPtr, err
		}
	}
	sn.BlockCount++
	w.Defer(func() { sn.FirstBlock, sn.LastBlock, sn.BlockCount = oldFirst, oldLast, oldBlocks })
	w.NoteSchemaBlocks(doc, sn)
	return base, nil
}

// freeNodeBlock unlinks an empty node block from sn's list and releases the
// page.
func freeNodeBlock(w Writer, doc *Doc, sn *schema.Node, block sas.XPtr) error {
	h, err := readNodeHeader(w, block)
	if err != nil {
		return err
	}
	if h.Count != 0 {
		return fmt.Errorf("storage: freeing non-empty node block %v (%d descriptors)", block, h.Count)
	}
	if !h.Prev.IsNil() {
		if err := writePtrAt(w, h.Prev.Add(nbNext), h.Next); err != nil {
			return err
		}
	}
	if !h.Next.IsNil() {
		if err := writePtrAt(w, h.Next.Add(nbPrev), h.Prev); err != nil {
			return err
		}
	}
	oldFirst, oldLast, oldBlocks := sn.FirstBlock, sn.LastBlock, sn.BlockCount
	if sn.FirstBlock == block {
		sn.FirstBlock = h.Next
	}
	if sn.LastBlock == block {
		sn.LastBlock = h.Prev
	}
	sn.BlockCount--
	w.Defer(func() { sn.FirstBlock, sn.LastBlock, sn.BlockCount = oldFirst, oldLast, oldBlocks })
	w.NoteSchemaBlocks(doc, sn)
	return w.FreePage(sas.PageIDOf(block))
}

// blockHasRoom reports whether one more descriptor fits.
func blockHasRoom(h nodeBlockHeader) bool {
	return h.FreeHead != 0 || int(h.SlotTop)+h.DescSize <= sas.PageSize
}

// allocDescSlot takes a descriptor slot in the block (the caller must have
// ensured room) and increments the live count. The slot content is
// unspecified until the caller writes the descriptor.
func allocDescSlot(w Writer, block sas.XPtr) (uint16, error) {
	h, err := readNodeHeader(w, block)
	if err != nil {
		return 0, err
	}
	var off uint16
	if h.FreeHead != 0 {
		off = h.FreeHead
		next, err := readU16At(w, block.Add(uint32(off)))
		if err != nil {
			return 0, err
		}
		if err := writeU16At(w, block.Add(nbFreeHead), next); err != nil {
			return 0, err
		}
	} else {
		if int(h.SlotTop)+h.DescSize > sas.PageSize {
			return 0, fmt.Errorf("storage: node block %v has no room", block)
		}
		off = h.SlotTop
		if err := writeU16At(w, block.Add(nbSlotTop), h.SlotTop+uint16(h.DescSize)); err != nil {
			return 0, err
		}
	}
	if err := writeU16At(w, block.Add(nbCount), uint16(h.Count+1)); err != nil {
		return 0, err
	}
	return off, nil
}

// linkInBlock inserts the descriptor at off into the in-block document-order
// chain after the descriptor at after (0 = at the front), updating the
// block's first/last markers. The descriptor bytes must already be written.
func linkInBlock(w Writer, block sas.XPtr, off, after uint16) error {
	h, err := readNodeHeader(w, block)
	if err != nil {
		return err
	}
	var next uint16
	if after == 0 {
		next = h.FirstDesc
		if err := writeU16At(w, block.Add(nbFirstDesc), off); err != nil {
			return err
		}
	} else {
		n, err := readU16At(w, block.Add(uint32(after)+dNextIn))
		if err != nil {
			return err
		}
		next = n
		if err := writeU16At(w, block.Add(uint32(after)+dNextIn), off); err != nil {
			return err
		}
	}
	if err := writeU16At(w, block.Add(uint32(off)+dPrevIn), after); err != nil {
		return err
	}
	if err := writeU16At(w, block.Add(uint32(off)+dNextIn), next); err != nil {
		return err
	}
	if next == 0 {
		return writeU16At(w, block.Add(nbLastDesc), off)
	}
	return writeU16At(w, block.Add(uint32(next)+dPrevIn), off)
}

// unlinkInBlock removes the descriptor at off from the in-block chain,
// returns the slot to the free chain and decrements the count. It reports
// whether the block became empty (the caller then frees it).
func unlinkInBlock(w Writer, block sas.XPtr, off uint16) (empty bool, err error) {
	h, err := readNodeHeader(w, block)
	if err != nil {
		return false, err
	}
	prev, err := readU16At(w, block.Add(uint32(off)+dPrevIn))
	if err != nil {
		return false, err
	}
	next, err := readU16At(w, block.Add(uint32(off)+dNextIn))
	if err != nil {
		return false, err
	}
	if prev == 0 {
		if err := writeU16At(w, block.Add(nbFirstDesc), next); err != nil {
			return false, err
		}
	} else {
		if err := writeU16At(w, block.Add(uint32(prev)+dNextIn), next); err != nil {
			return false, err
		}
	}
	if next == 0 {
		if err := writeU16At(w, block.Add(nbLastDesc), prev); err != nil {
			return false, err
		}
	} else {
		if err := writeU16At(w, block.Add(uint32(next)+dPrevIn), prev); err != nil {
			return false, err
		}
	}
	// Push the slot onto the free chain (its first two bytes hold the next
	// free offset).
	if err := writeU16At(w, block.Add(uint32(off)), h.FreeHead); err != nil {
		return false, err
	}
	if err := writeU16At(w, block.Add(nbFreeHead), off); err != nil {
		return false, err
	}
	if err := writeU16At(w, block.Add(nbCount), uint16(h.Count-1)); err != nil {
		return false, err
	}
	return h.Count-1 == 0, nil
}

// moveRun moves the descriptors from fromOff to the end of the in-block
// chain of block into a fresh block (with newChildSlots descriptor width)
// inserted immediately after it, preserving document order. This implements
// both block splitting on overflow and the delayed per-block descriptor
// widening of §4.1. Each moved node costs a constant number of external
// updates: its indirection entry, its two sibling backlinks, and possibly
// its parent's child-slot pointer — the design the paper adopts to keep
// update cost bounded.
func moveRun(w Writer, doc *Doc, sn *schema.Node, block sas.XPtr, fromOff uint16, newChildSlots int) error {
	oldH, err := readNodeHeader(w, block)
	if err != nil {
		return err
	}
	if newChildSlots < oldH.ChildSlots {
		newChildSlots = oldH.ChildSlots
	}
	// Collect the run in document order.
	type moved struct {
		d      Desc
		nidOv  sas.XPtr
		nidLen int
		oldOff uint16
	}
	var run []moved
	err = w.ReadPage(block, func(page []byte) error {
		for off := fromOff; off != 0; {
			d, ov, nl := decodeDescAt(page, block, off, oldH)
			run = append(run, moved{d: d, nidOv: ov, nidLen: nl, oldOff: off})
			off = getU16(page[off:], dNextIn)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(run) == 0 {
		return fmt.Errorf("storage: moveRun with empty run at %v+%d", block, fromOff)
	}
	prevOff := uint16(0)
	err = w.ReadPage(block, func(page []byte) error {
		prevOff = getU16(page[fromOff:], dPrevIn)
		return nil
	})
	if err != nil {
		return err
	}
	descSize := descSizeFor(newChildSlots)
	capacity := nodeBlockCapacity(newChildSlots)

	// The run may exceed one wide block's capacity (narrow descriptors are
	// smaller): distribute it across as many fresh blocks as needed,
	// chained in order after the source block.
	type chunkPlacement struct {
		base sas.XPtr
		offs []uint16
	}
	var chunks []chunkPlacement
	trans := make(map[sas.XPtr]sas.XPtr, len(run))
	prevBlock := block
	for start := 0; start < len(run); start += capacity {
		end := start + capacity
		if end > len(run) {
			end = len(run)
		}
		nb, err := newNodeBlock(w, doc, sn, newChildSlots, prevBlock)
		if err != nil {
			return err
		}
		pl := chunkPlacement{base: nb, offs: make([]uint16, end-start)}
		for i := range pl.offs {
			pl.offs[i] = uint16(nodeBlockHeaderSize + i*descSize)
			trans[run[start+i].d.Ptr] = nb.Add(uint32(pl.offs[i]))
		}
		chunks = append(chunks, pl)
		prevBlock = nb
	}

	idx := 0
	for _, pl := range chunks {
		n := len(pl.offs)
		page := make([]byte, sas.PageSize)
		encodeNodeHeader(page, nodeBlockHeader{
			ChildSlots: newChildSlots,
			SchemaID:   sn.ID,
			DocID:      doc.ID,
			Count:      n,
			DescSize:   descSize,
			FirstDesc:  pl.offs[0],
			LastDesc:   pl.offs[n-1],
			SlotTop:    uint16(nodeBlockHeaderSize + n*descSize),
		})
		// newNodeBlock linked the list on disk; read back the authoritative
		// neighbours.
		nh, err := readNodeHeader(w, pl.base)
		if err != nil {
			return err
		}
		putPtr(page, nbNext, nh.Next)
		putPtr(page, nbPrev, nh.Prev)
		for i := 0; i < n; i++ {
			d := run[idx+i].d
			if p, ok := trans[d.LeftSib]; ok {
				d.LeftSib = p
			}
			if p, ok := trans[d.RightSib]; ok {
				d.RightSib = p
			}
			// Grow the child-slot array to the new width.
			if len(d.Children) < newChildSlots {
				grown := make([]sas.XPtr, newChildSlots)
				copy(grown, d.Children)
				d.Children = grown
			}
			var next, prev uint16
			if i+1 < n {
				next = pl.offs[i+1]
			}
			if i > 0 {
				prev = pl.offs[i-1]
			}
			encodeDesc(page[pl.offs[i]:int(pl.offs[i])+descSize], &d, run[idx+i].nidOv, run[idx+i].nidLen, next, prev)
		}
		if err := w.WriteAt(pl.base, page); err != nil {
			return err
		}
		idx += n
	}

	// External fixups per moved descriptor.
	slotIdx := -1
	if sn.Parent != nil {
		slotIdx = sn.Parent.ChildIndex(sn)
	}
	for _, m := range run {
		newPtr := trans[m.d.Ptr]
		if err := SetHandle(w, m.d.Handle, newPtr); err != nil {
			return err
		}
		if !m.d.LeftSib.IsNil() {
			if _, inRun := trans[m.d.LeftSib]; !inRun {
				if err := writePtrAt(w, m.d.LeftSib.Add(dRightSib), newPtr); err != nil {
					return err
				}
			}
		}
		if !m.d.RightSib.IsNil() {
			if _, inRun := trans[m.d.RightSib]; !inRun {
				if err := writePtrAt(w, m.d.RightSib.Add(dLeftSib), newPtr); err != nil {
					return err
				}
			}
		}
		if slotIdx >= 0 && !m.d.Parent.IsNil() {
			pPtr, err := DerefHandle(w, m.d.Parent)
			if err != nil {
				return err
			}
			slotAddr := pPtr.Add(uint32(dChildren + 8*slotIdx))
			cur, err := readPtrAt(w, slotAddr)
			if err != nil {
				return err
			}
			if cur == m.d.Ptr {
				if err := writePtrAt(w, slotAddr, newPtr); err != nil {
					return err
				}
			}
		}
	}

	// Shrink the old block: detach the run and free its slots.
	if prevOff != 0 {
		if err := writeU16At(w, block.Add(uint32(prevOff)+dNextIn), 0); err != nil {
			return err
		}
	} else {
		if err := writeU16At(w, block.Add(nbFirstDesc), 0); err != nil {
			return err
		}
	}
	if err := writeU16At(w, block.Add(nbLastDesc), prevOff); err != nil {
		return err
	}
	freeHead := oldH.FreeHead
	for _, m := range run {
		if err := writeU16At(w, block.Add(uint32(m.oldOff)), freeHead); err != nil {
			return err
		}
		freeHead = m.oldOff
	}
	if err := writeU16At(w, block.Add(nbFreeHead), freeHead); err != nil {
		return err
	}
	remaining := oldH.Count - len(run)
	if err := writeU16At(w, block.Add(nbCount), uint16(remaining)); err != nil {
		return err
	}
	if remaining == 0 {
		return freeNodeBlock(w, doc, sn, block)
	}
	return nil
}

// MoveFirstRun splits the first block of sn's list at its midpoint, forcing
// the second half of its descriptors to move (with all the per-node fixups
// of moveRun). It returns the moved descriptors' handles — the E4
// experiment uses it to measure move cost versus child fan-out.
func MoveFirstRun(w Writer, doc *Doc, sn *schema.Node) ([]sas.XPtr, error) {
	// Find the first block with at least two descriptors (repeated splits
	// shrink earlier blocks).
	block := sn.FirstBlock
	var h nodeBlockHeader
	for {
		if block.IsNil() {
			return nil, fmt.Errorf("storage: schema node %s has no splittable block", sn.Path())
		}
		var err error
		h, err = readNodeHeader(w, block)
		if err != nil {
			return nil, err
		}
		if h.Count >= 2 {
			break
		}
		block = h.Next
	}
	// Find the midpoint offset along the in-block chain.
	off := h.FirstDesc
	for i := 0; i < h.Count/2; i++ {
		next, err := readU16At(w, block.Add(uint32(off)+dNextIn))
		if err != nil {
			return nil, err
		}
		off = next
	}
	// Collect the handles that will move.
	var handles []sas.XPtr
	for cur := off; cur != 0; {
		hd, err := readPtrAt(w, block.Add(uint32(cur)+dHandle))
		if err != nil {
			return nil, err
		}
		handles = append(handles, hd)
		next, err := readU16At(w, block.Add(uint32(cur)+dNextIn))
		if err != nil {
			return nil, err
		}
		cur = next
	}
	if err := moveRun(w, doc, sn, block, off, h.ChildSlots); err != nil {
		return nil, err
	}
	return handles, nil
}

// SimulateDirectParentFixups performs the extra writes a direct-parent
// design would pay for the same move: one parent-pointer write per child of
// every moved node (the E4 baseline).
func SimulateDirectParentFixups(w Writer, doc *Doc, sn *schema.Node, moved []sas.XPtr) error {
	for _, h := range moved {
		d, err := DescOf(w, h)
		if err != nil {
			return err
		}
		c, ok, err := FirstChild(w, &d)
		for {
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			// Rewrite the child's parent field (same value: the cost, not
			// the semantics, is what is being measured).
			if err := writePtrAt(w, c.Ptr.Add(dParent), c.Parent); err != nil {
				return err
			}
			if c.RightSib.IsNil() {
				break
			}
			c, err = ReadDesc(w, c.RightSib)
		}
	}
	return nil
}
