package storage

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/sas"
	"sedna/internal/schema"
)

// CreateDoc materializes an empty document: a fresh descriptive schema, the
// document node's descriptor and its indirection entry.
func CreateDoc(w Writer, id uint32, name string) (*Doc, error) {
	doc := &Doc{ID: id, Name: name, Schema: schema.New()}
	sn := doc.Schema.Root
	block, err := newNodeBlock(w, doc, sn, 0, sas.NilPtr)
	if err != nil {
		return nil, err
	}
	off, err := allocDescSlot(w, block)
	if err != nil {
		return nil, err
	}
	ptr := block.Add(uint32(off))
	handle, err := AllocHandle(w, doc, ptr)
	if err != nil {
		return nil, err
	}
	d := Desc{Label: nid.Root(), Handle: handle}
	buf := make([]byte, descSizeFor(0))
	encodeDesc(buf, &d, sas.NilPtr, 0, 0, 0)
	if err := w.WriteAt(ptr, buf); err != nil {
		return nil, err
	}
	if err := linkInBlock(w, block, off, 0); err != nil {
		return nil, err
	}
	doc.RootHandle = handle
	sn.NodeCount++
	w.Defer(func() { sn.NodeCount-- })
	w.NoteDocMeta(doc)
	w.TouchDoc(doc)
	return doc, nil
}

// InsertNode inserts a new node under the parent identified by handle
// parentH, between siblings leftH and rightH (either may be nil, meaning
// first/last position). It maintains the descriptive schema incrementally,
// assigns a relabel-free numbering-scheme label, places the descriptor in
// the right block of its schema node's list (splitting or widening blocks
// as needed) and wires all pointers. It returns the new node's handle.
func InsertNode(w Writer, doc *Doc, parentH, leftH, rightH sas.XPtr, kind schema.NodeKind, name string, text []byte) (sas.XPtr, error) {
	parent, err := DescOf(w, parentH)
	if err != nil {
		return sas.NilPtr, fmt.Errorf("storage: insert: parent: %w", err)
	}
	parentSn := doc.Schema.ByID(parent.SchemaID)
	if parentSn == nil {
		return sas.NilPtr, fmt.Errorf("storage: insert: unknown parent schema node %d", parent.SchemaID)
	}
	if parentSn.Kind != schema.KindDocument && parentSn.Kind != schema.KindElement {
		return sas.NilPtr, fmt.Errorf("storage: cannot insert under a %v node", parentSn.Kind)
	}

	// Maintain the descriptive schema.
	sn, created := doc.Schema.EnsureChild(parentSn, kind, name)
	if created {
		w.NoteSchemaNode(doc, parentSn, sn)
		w.Defer(func() { doc.Schema.Remove(sn) })
	}

	// Resolve the insertion point to the actual adjacent pair in the
	// sibling chain: a given left implies its current right sibling (and
	// vice versa); neither given means "append as last child".
	var left, right *Desc
	switch {
	case !leftH.IsNil():
		d, err := DescOf(w, leftH)
		if err != nil {
			return sas.NilPtr, err
		}
		if d.Parent != parentH {
			return sas.NilPtr, fmt.Errorf("storage: left sibling is not a child of the parent")
		}
		left = &d
		if !d.RightSib.IsNil() {
			rd, err := ReadDesc(w, d.RightSib)
			if err != nil {
				return sas.NilPtr, err
			}
			right = &rd
		}
	case !rightH.IsNil():
		d, err := DescOf(w, rightH)
		if err != nil {
			return sas.NilPtr, err
		}
		if d.Parent != parentH {
			return sas.NilPtr, fmt.Errorf("storage: right sibling is not a child of the parent")
		}
		right = &d
		if !d.LeftSib.IsNil() {
			ld, err := ReadDesc(w, d.LeftSib)
			if err != nil {
				return sas.NilPtr, err
			}
			left = &ld
		}
	default:
		lc, ok, err := LastChild(w, &parent)
		if err != nil {
			return sas.NilPtr, err
		}
		if ok {
			left = &lc
		}
	}
	var ll, rl *nid.Label
	if left != nil {
		ll = &left.Label
	}
	if right != nil {
		rl = &right.Label
	}
	label := nid.Between(parent.Label, ll, rl)

	// Make sure the parent descriptor has a child slot for sn, widening its
	// block lazily (delayed per-block widening, §4.1).
	slotIdx := parentSn.ChildIndex(sn)
	if slotIdx >= parent.ChildSlots {
		if err := widenDesc(w, doc, parentSn, parent, len(parentSn.Children)); err != nil {
			return sas.NilPtr, err
		}
	}

	// Decide where the descriptor goes in sn's block list and ensure room.
	predH, succH, err := findListPosition(w, sn, label, left, right)
	if err != nil {
		return sas.NilPtr, err
	}
	block, after, err := makeRoom(w, doc, sn, predH, succH)
	if err != nil {
		return sas.NilPtr, err
	}

	// Allocate the slot, the handle, the text value, and an overflow record
	// for a long label.
	off, err := allocDescSlot(w, block)
	if err != nil {
		return sas.NilPtr, err
	}
	ptr := block.Add(uint32(off))
	handle, err := AllocHandle(w, doc, ptr)
	if err != nil {
		return sas.NilPtr, err
	}
	var textPtr sas.XPtr
	if kind.HasText() && len(text) > 0 {
		textPtr, err = AllocText(w, doc, text)
		if err != nil {
			return sas.NilPtr, err
		}
	}
	var ovPtr sas.XPtr
	if len(label.Prefix) > nidInlineCap {
		ovPtr, err = AllocText(w, doc, label.Prefix)
		if err != nil {
			return sas.NilPtr, err
		}
	}

	// Splits during makeRoom may have moved the siblings: re-resolve their
	// current addresses through their immutable handles.
	if left != nil {
		d, err := DescOf(w, left.Handle)
		if err != nil {
			return sas.NilPtr, err
		}
		left = &d
	}
	if right != nil {
		d, err := DescOf(w, right.Handle)
		if err != nil {
			return sas.NilPtr, err
		}
		right = &d
	}

	blockH, err := readNodeHeader(w, block)
	if err != nil {
		return sas.NilPtr, err
	}
	d := Desc{
		Label:    label,
		Handle:   handle,
		Parent:   parentH,
		Text:     textPtr,
		TextLen:  uint32(len(text)),
		Children: make([]sas.XPtr, blockH.ChildSlots),
	}
	if left != nil {
		d.LeftSib = left.Ptr
	}
	if right != nil {
		d.RightSib = right.Ptr
	}
	buf := make([]byte, blockH.DescSize)
	encodeDesc(buf, &d, ovPtr, len(label.Prefix), 0, 0)
	if err := w.WriteAt(ptr, buf); err != nil {
		return sas.NilPtr, err
	}
	if err := linkInBlock(w, block, off, after); err != nil {
		return sas.NilPtr, err
	}

	// Sibling backlinks.
	if left != nil {
		if err := writePtrAt(w, left.Ptr.Add(dRightSib), ptr); err != nil {
			return sas.NilPtr, err
		}
	}
	if right != nil {
		if err := writePtrAt(w, right.Ptr.Add(dLeftSib), ptr); err != nil {
			return sas.NilPtr, err
		}
	}

	// Parent child-slot pointer: it points to the first child of this
	// schema type in document order.
	pPtr, err := DerefHandle(w, parentH)
	if err != nil {
		return sas.NilPtr, err
	}
	slotAddr := pPtr.Add(uint32(dChildren + 8*slotIdx))
	cur, err := readPtrAt(w, slotAddr)
	if err != nil {
		return sas.NilPtr, err
	}
	setSlot := cur.IsNil()
	if !setSlot {
		cd, err := ReadDesc(w, cur)
		if err != nil {
			return sas.NilPtr, err
		}
		setSlot = nid.Compare(label, cd.Label) < 0
	}
	if setSlot {
		if err := writePtrAt(w, slotAddr, ptr); err != nil {
			return sas.NilPtr, err
		}
	}

	sn.NodeCount++
	w.Defer(func() { sn.NodeCount-- })
	w.TouchDoc(doc)
	return handle, nil
}

// widenDesc relocates the descriptor d (and its in-block followers) into a
// block wide enough for `width` child slots, unless its block already is.
func widenDesc(w Writer, doc *Doc, sn *schema.Node, d Desc, width int) error {
	block := d.Ptr.PageBase()
	h, err := readNodeHeader(w, block)
	if err != nil {
		return err
	}
	if h.ChildSlots >= width {
		return nil
	}
	return moveRun(w, doc, sn, block, uint16(d.Ptr.PageOffset()), width)
}

// findListPosition locates the in-list neighbours (as handles) of a new
// node of sn with the given label. left/right are its tree siblings when
// they exist, enabling the constant-time fast paths that cover bulk loading
// and ordinary sibling insertion.
func findListPosition(r Reader, sn *schema.Node, label nid.Label, left, right *Desc) (predH, succH sas.XPtr, err error) {
	// Fast path: a tree sibling of the same schema node is the immediate
	// list neighbour (everything between them in document order is a
	// descendant of the left sibling, which has a different path).
	if left != nil && left.SchemaID == sn.ID {
		return left.Handle, sas.NilPtr, nil
	}
	if right != nil && right.SchemaID == sn.ID {
		return sas.NilPtr, right.Handle, nil
	}
	if sn.FirstBlock.IsNil() {
		return sas.NilPtr, sas.NilPtr, nil
	}
	// Fast path: append at the end of the list.
	last, ok, err := LastOfSchema(r, sn)
	if err != nil {
		return sas.NilPtr, sas.NilPtr, err
	}
	if !ok {
		return sas.NilPtr, sas.NilPtr, nil
	}
	if nid.Compare(last.Label, label) < 0 {
		return last.Handle, sas.NilPtr, nil
	}
	// General case: scan the list for the first descriptor after label.
	var pred *Desc
	d, ok, err := FirstOfSchema(r, sn)
	for {
		if err != nil {
			return sas.NilPtr, sas.NilPtr, err
		}
		if !ok {
			break
		}
		if nid.Compare(label, d.Label) < 0 {
			if pred != nil {
				return pred.Handle, sas.NilPtr, nil
			}
			return sas.NilPtr, d.Handle, nil
		}
		cp := d
		pred = &cp
		d, ok, err = NextInList(r, &cp)
	}
	if pred != nil {
		return pred.Handle, sas.NilPtr, nil
	}
	return sas.NilPtr, sas.NilPtr, nil
}

// makeRoom guarantees a free descriptor slot at the list position described
// by predH/succH (insert after pred, or before succ, or into an empty
// list), splitting blocks or creating new ones while preserving the partial
// order of descriptors across blocks. It returns the target block and the
// in-block offset to link after (0 = front).
func makeRoom(w Writer, doc *Doc, sn *schema.Node, predH, succH sas.XPtr) (sas.XPtr, uint16, error) {
	width := len(sn.Children)
	switch {
	case !predH.IsNil():
		pd, err := DescOf(w, predH)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		block := pd.Ptr.PageBase()
		h, err := readNodeHeader(w, block)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		if blockHasRoom(h) {
			return block, uint16(pd.Ptr.PageOffset()), nil
		}
		if pd.NextInBlock.IsNil() {
			// pred is the last descriptor of a full block: use the front of
			// the next block if it has room, else chain in a fresh block.
			if !h.Next.IsNil() {
				nh, err := readNodeHeader(w, h.Next)
				if err != nil {
					return sas.NilPtr, 0, err
				}
				if blockHasRoom(nh) {
					return h.Next, 0, nil
				}
			}
			nb, err := newNodeBlock(w, doc, sn, width, block)
			if err != nil {
				return sas.NilPtr, 0, err
			}
			return nb, 0, nil
		}
		// Split: move everything after pred to a fresh block; pred's block
		// then has room.
		if err := moveRun(w, doc, sn, block, uint16(pd.NextInBlock.PageOffset()), width); err != nil {
			return sas.NilPtr, 0, err
		}
		pd, err = DescOf(w, predH) // unchanged address, re-read defensively
		if err != nil {
			return sas.NilPtr, 0, err
		}
		return pd.Ptr.PageBase(), uint16(pd.Ptr.PageOffset()), nil

	case !succH.IsNil():
		sd, err := DescOf(w, succH)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		block := sd.Ptr.PageBase()
		h, err := readNodeHeader(w, block)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		after := uint16(0)
		if !sd.PrevInBlock.IsNil() {
			after = uint16(sd.PrevInBlock.PageOffset())
		}
		if blockHasRoom(h) {
			return block, after, nil
		}
		if after == 0 {
			// Insert before the block's first descriptor: prepend a block.
			nb, err := newNodeBlock(w, doc, sn, width, h.Prev)
			if err != nil {
				return sas.NilPtr, 0, err
			}
			return nb, 0, nil
		}
		// Split at succ, then insert at the front of the new block.
		if err := moveRun(w, doc, sn, block, uint16(sd.Ptr.PageOffset()), width); err != nil {
			return sas.NilPtr, 0, err
		}
		sd, err = DescOf(w, succH)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		// The new descriptor precedes succ, so it goes right before succ in
		// succ's (new) block.
		after = 0
		if !sd.PrevInBlock.IsNil() {
			after = uint16(sd.PrevInBlock.PageOffset())
		}
		return sd.Ptr.PageBase(), after, nil

	default:
		if !sn.FirstBlock.IsNil() {
			h, err := readNodeHeader(w, sn.FirstBlock)
			if err != nil {
				return sas.NilPtr, 0, err
			}
			if blockHasRoom(h) && h.Count == 0 {
				return sn.FirstBlock, 0, nil
			}
		}
		nb, err := newNodeBlock(w, doc, sn, width, sas.NilPtr)
		if err != nil {
			return sas.NilPtr, 0, err
		}
		return nb, 0, nil
	}
}
