package sas

import (
	"testing"
	"testing/quick"
)

func TestMakePtrRoundTrip(t *testing.T) {
	f := func(layer, offset uint32) bool {
		p := MakePtr(layer, offset)
		return p.Layer() == layer && p.Offset() == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilPtr(t *testing.T) {
	if !NilPtr.IsNil() {
		t.Fatal("NilPtr must be nil")
	}
	if MakePtr(1, 0).IsNil() {
		t.Fatal("layer-1 pointer must not be nil")
	}
	if NilPtr.String() != "nil" {
		t.Fatalf("got %q", NilPtr.String())
	}
}

func TestPageDecomposition(t *testing.T) {
	p := MakePtr(3, 5*PageSize+123)
	if p.PageOffset() != 123 {
		t.Fatalf("PageOffset = %d", p.PageOffset())
	}
	if p.PageIndex() != 5 {
		t.Fatalf("PageIndex = %d", p.PageIndex())
	}
	if p.PageBase() != MakePtr(3, 5*PageSize) {
		t.Fatalf("PageBase = %v", p.PageBase())
	}
	id := PageIDOf(p)
	if id.Layer != 3 || id.Page != 5 {
		t.Fatalf("PageIDOf = %v", id)
	}
	if id.Ptr() != p.PageBase() {
		t.Fatalf("PageID.Ptr = %v", id.Ptr())
	}
}

func TestAdd(t *testing.T) {
	p := MakePtr(2, 100)
	q := p.Add(28)
	if q.Layer() != 2 || q.Offset() != 128 {
		t.Fatalf("Add = %v", q)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add past layer end must panic")
		}
	}()
	MakePtr(1, 0xFFFFFFFF).Add(1)
}

func TestGlobalIndexRoundTrip(t *testing.T) {
	f := func(layer, page uint32) bool {
		layer = layer%1000 + 1
		page = page % PagesPerLayer
		id := PageID{Layer: layer, Page: page}
		return PageIDFromGlobal(id.GlobalIndex()) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIndexDense(t *testing.T) {
	// Layer 1 page 0 is global 0; the numbering is dense across layers.
	if g := (PageID{Layer: 1, Page: 0}).GlobalIndex(); g != 0 {
		t.Fatalf("global of L1.P0 = %d", g)
	}
	last := PageID{Layer: 1, Page: PagesPerLayer - 1}
	next := PageID{Layer: 2, Page: 0}
	if next.GlobalIndex() != last.GlobalIndex()+1 {
		t.Fatalf("layers not dense: %d then %d", last.GlobalIndex(), next.GlobalIndex())
	}
}

func TestGlobalIndexNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalIndex of nil page must panic")
		}
	}()
	_ = PageID{}.GlobalIndex()
}

func TestPageIDString(t *testing.T) {
	if s := (PageID{Layer: 2, Page: 7}).String(); s != "L2.P7" {
		t.Fatalf("got %q", s)
	}
}
