// Package sas implements the Sedna Address Space (SAS): a 64-bit database
// address space divided into layers of equal size, where a pointer is the
// pair (layer number, address within layer).
//
// The paper's key memory-management idea (§4.2) is that an address within a
// layer maps to the process virtual address space on an equality basis, so
// pointers have the same representation on disk and in memory and no pointer
// swizzling is ever required. This package provides the pointer type and the
// layer arithmetic; the fault-handling half of the mechanism (loading a page
// when the layer resident at the target slot differs from the addressed
// layer) lives in package buffer.
package sas

import "fmt"

// PageSizeShift is log2 of the page size. Pages are the unit of interaction
// with disk and of buffer management; layers are the unit of address-space
// mapping (a layer is what must "fit into the virtual address space").
const PageSizeShift = 14

// PageSize is the size in bytes of every database page.
const PageSize = 1 << PageSizeShift // 16 KiB

// LayerSize is the size in bytes of one SAS layer. The paper uses the full
// 32-bit offset range per layer; we keep the 32-bit offset field but cap the
// populated portion of each layer so that layer slot tables stay small. This
// is a constant of the reproduction, not of the format: offsets are still
// 32-bit on disk.
const LayerSize = 1 << 26 // 64 MiB populated per layer

// PagesPerLayer is the number of pages in one layer.
const PagesPerLayer = LayerSize / PageSize

// XPtr is a pointer into the Sedna Address Space: the layer number in the
// high 32 bits and the byte address within the layer in the low 32 bits.
// The zero value is the nil pointer (layer 0 is never allocated).
type XPtr uint64

// NilPtr is the null SAS pointer.
const NilPtr XPtr = 0

// MakePtr assembles an XPtr from a layer number and an offset within the
// layer.
func MakePtr(layer uint32, offset uint32) XPtr {
	return XPtr(uint64(layer)<<32 | uint64(offset))
}

// Layer returns the layer number of p.
func (p XPtr) Layer() uint32 { return uint32(p >> 32) }

// Offset returns the byte address of p within its layer.
func (p XPtr) Offset() uint32 { return uint32(p) }

// IsNil reports whether p is the null pointer.
func (p XPtr) IsNil() bool { return p == NilPtr }

// PageOffset returns the byte offset of p within its page.
func (p XPtr) PageOffset() uint32 { return uint32(p) & (PageSize - 1) }

// PageBase returns the pointer to the start of the page containing p.
func (p XPtr) PageBase() XPtr { return p &^ (PageSize - 1) }

// PageIndex returns the index of p's page within its layer.
func (p XPtr) PageIndex() uint32 { return uint32(p) >> PageSizeShift }

// Add returns p advanced by delta bytes. The result stays within the same
// layer; advancing past the layer end is a programming error and panics.
func (p XPtr) Add(delta uint32) XPtr {
	off := uint64(uint32(p)) + uint64(delta)
	if off > 0xFFFFFFFF {
		panic("sas: XPtr.Add overflows layer")
	}
	return XPtr(uint64(p.Layer())<<32 | off)
}

// String formats p as layer:offset for diagnostics.
func (p XPtr) String() string {
	if p.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%08x", p.Layer(), p.Offset())
}

// PageID identifies a page globally: the layer number and the page index
// within the layer. It is the key used by the buffer manager and the page
// file.
type PageID struct {
	Layer uint32
	Page  uint32 // page index within the layer
}

// PageIDOf returns the PageID of the page containing p.
func PageIDOf(p XPtr) PageID {
	return PageID{Layer: p.Layer(), Page: p.PageIndex()}
}

// Ptr returns the SAS pointer to the first byte of the page.
func (id PageID) Ptr() XPtr {
	return MakePtr(id.Layer, id.Page<<PageSizeShift)
}

// IsNil reports whether id identifies no page (layer 0 is reserved).
func (id PageID) IsNil() bool { return id.Layer == 0 }

// GlobalIndex returns the dense global page number used as the file offset
// multiplier in the data file: layers are allocated contiguously, layer 1
// first.
func (id PageID) GlobalIndex() uint64 {
	if id.Layer == 0 {
		panic("sas: GlobalIndex of nil page")
	}
	return uint64(id.Layer-1)*PagesPerLayer + uint64(id.Page)
}

// PageIDFromGlobal is the inverse of GlobalIndex.
func PageIDFromGlobal(g uint64) PageID {
	return PageID{Layer: uint32(g/PagesPerLayer) + 1, Page: uint32(g % PagesPerLayer)}
}

// String formats the page id for diagnostics.
func (id PageID) String() string {
	return fmt.Sprintf("L%d.P%d", id.Layer, id.Page)
}
