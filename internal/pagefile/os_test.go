package pagefile

import "os"

// Small wrappers so tests can open files without importing os at every site.

func osOpenRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}

func osOpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
