package pagefile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sedna/internal/metrics"
	"sedna/internal/sas"
)

func openTemp(t *testing.T) *File {
	t.Helper()
	pf, err := Open(filepath.Join(t.TempDir(), "data.sdb"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestOpenCreatesMaster(t *testing.T) {
	pf := openTemp(t)
	m := pf.Master()
	if m.NextAlloc != 1 {
		t.Fatalf("NextAlloc = %d, want 1 (page 0 reserved)", m.NextAlloc)
	}
}

func TestReopenKeepsMaster(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.sdb")
	pf, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteMaster(Master{NextAlloc: 42, CheckpointLSN: 7, CommitTS: 9, CleanShutdown: true}); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	pf2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	m := pf2.Master()
	if m.NextAlloc != 42 || m.CheckpointLSN != 7 || m.CommitTS != 9 || !m.CleanShutdown {
		t.Fatalf("master = %+v", m)
	}
	if pf2.NextAlloc() != 42 {
		t.Fatalf("live allocator = %d", pf2.NextAlloc())
	}
}

func TestPageRoundTrip(t *testing.T) {
	pf := openTemp(t)
	id := pf.Alloc()
	data := make([]byte, sas.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := pf.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, sas.PageSize)
	if err := pf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page contents differ after round trip")
	}
}

func TestReadBeyondEOFIsZero(t *testing.T) {
	pf := openTemp(t)
	buf := make([]byte, sas.PageSize)
	buf[0] = 0xFF
	if err := pf.ReadPage(sas.PageID{Layer: 1, Page: 100}, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want zero page", i, b)
		}
	}
}

func TestAllocSequentialAndRecycle(t *testing.T) {
	pf := openTemp(t)
	a := pf.Alloc()
	b := pf.Alloc()
	if a.GlobalIndex()+1 != b.GlobalIndex() {
		t.Fatalf("allocations not dense: %v then %v", a, b)
	}
	pf.Free(a)
	c := pf.Alloc()
	if c != a {
		t.Fatalf("free page not recycled: got %v want %v", c, a)
	}
}

func TestFreeMasterPanics(t *testing.T) {
	pf := openTemp(t)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing master page must panic")
		}
	}()
	pf.Free(MasterPageID)
}

func TestResetAllocator(t *testing.T) {
	pf := openTemp(t)
	pf.Alloc()
	pf.Alloc()
	free := []sas.PageID{{Layer: 1, Page: 9}}
	pf.ResetAllocator(5, free)
	if pf.NextAlloc() != 5 {
		t.Fatalf("NextAlloc = %d", pf.NextAlloc())
	}
	if got := pf.FreeList(); len(got) != 1 || got[0] != free[0] {
		t.Fatalf("free list = %v", got)
	}
	// Alloc consumes the free list first.
	if id := pf.Alloc(); id != free[0] {
		t.Fatalf("Alloc = %v", id)
	}
	if id := pf.Alloc(); id.GlobalIndex() != 5 {
		t.Fatalf("Alloc = %v", id)
	}
}

func TestIsFreshSinceCheckpoint(t *testing.T) {
	pf := openTemp(t)
	if err := pf.WriteMaster(Master{NextAlloc: 10}); err != nil {
		t.Fatal(err)
	}
	if pf.IsFreshSinceCheckpoint(sas.PageIDFromGlobal(9)) {
		t.Fatal("page 9 existed at checkpoint")
	}
	if !pf.IsFreshSinceCheckpoint(sas.PageIDFromGlobal(10)) {
		t.Fatal("page 10 is fresh")
	}
}

func TestCorruptMagicRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.sdb")
	pf, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pf.Close()
	// Clobber the magic.
	f, err := osOpenRW(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("NOTSEDNA"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(path, Options{NoSync: true}); err == nil {
		t.Fatal("corrupt magic must be rejected")
	}
}

func TestSnapAreaRoundTrip(t *testing.T) {
	sa, err := OpenSnapArea(filepath.Join(t.TempDir(), "data.snap"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()

	id := sas.PageID{Layer: 1, Page: 3}
	data := make([]byte, sas.PageSize)
	data[0] = 0xAB
	if err := sa.Save(id, data); err != nil {
		t.Fatal(err)
	}
	if !sa.Saved(id) {
		t.Fatal("Saved must report true after Save")
	}
	// A second save of the same page is a no-op.
	other := make([]byte, sas.PageSize)
	other[0] = 0xCD
	if err := sa.Save(id, other); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = sa.Restore(func(gotID sas.PageID, d []byte) error {
		if gotID != id {
			t.Fatalf("restored id = %v", gotID)
		}
		cp := make([]byte, len(d))
		copy(cp, d)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != 0xAB {
		t.Fatalf("restore entries = %d, first byte %#x", len(got), got[0][0])
	}
	if sa.Len() != 1 {
		t.Fatalf("Len = %d", sa.Len())
	}
	if err := sa.Reset(33); err != nil {
		t.Fatal(err)
	}
	if sa.Saved(id) || sa.Len() != 0 {
		t.Fatal("Reset must clear the saved set")
	}
	if sa.Era() != 33 {
		t.Fatalf("Era = %d, want 33", sa.Era())
	}
}

func TestSnapAreaEraPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	sa, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Era() != 0 {
		t.Fatalf("fresh era = %d", sa.Era())
	}
	if err := sa.Reset(88); err != nil {
		t.Fatal(err)
	}
	// Saves after a reset go into the new era.
	if err := sa.Save(sas.PageID{Layer: 1, Page: 2}, make([]byte, sas.PageSize)); err != nil {
		t.Fatal(err)
	}
	sa.Close()

	sa2, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	if sa2.Era() != 88 {
		t.Fatalf("era after reopen = %d, want 88", sa2.Era())
	}
	if sa2.Len() != 1 {
		t.Fatalf("Len after reopen = %d", sa2.Len())
	}
}

func TestSnapAreaSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	sa, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	id := sas.PageID{Layer: 2, Page: 8}
	data := make([]byte, sas.PageSize)
	if err := sa.Save(id, data); err != nil {
		t.Fatal(err)
	}
	sa.Close()

	sa2, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	if !sa2.Saved(id) {
		t.Fatal("saved set must be rebuilt on reopen")
	}
}

func TestSnapAreaIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	sa, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	id := sas.PageID{Layer: 1, Page: 1}
	data := make([]byte, sas.PageSize)
	if err := sa.Save(id, data); err != nil {
		t.Fatal(err)
	}
	sa.Close()

	// Append half an entry, simulating a crash mid-write.
	f, err := osOpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sa2, err := OpenSnapArea(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	count := 0
	if err := sa2.Restore(func(sas.PageID, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("restored %d entries, want 1 (torn tail ignored)", count)
	}
}

func TestShortReadAtEOFZeroFills(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.sdb")
	pf, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	id := pf.Alloc()
	data := make([]byte, sas.PageSize)
	for i := range data {
		data[i] = 0xAB
	}
	if err := pf.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Truncate the file mid-page so the last page is partial: a crash can
	// leave exactly this shape, and the missing tail must read as zeros,
	// not as whatever the caller's buffer held.
	off := int64(id.GlobalIndex())*sas.PageSize + 100
	if err := os.Truncate(path, off); err != nil {
		t.Fatal(err)
	}
	pf, err = Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	buf := make([]byte, sas.PageSize)
	for i := range buf {
		buf[i] = 0xFF // stale garbage the read must overwrite
	}
	if err := pf.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0xAB {
			t.Fatalf("byte %d = %#x, want surviving prefix 0xAB", i, buf[i])
		}
	}
	for i := 100; i < len(buf); i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d = %#x, want zero-filled tail", i, buf[i])
		}
	}
	// ReadPages must zero-fill short tails the same way.
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := pf.ReadPages([]sas.PageID{id}, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB || buf[sas.PageSize-1] != 0 {
		t.Fatalf("ReadPages short read: first=%#x last=%#x", buf[0], buf[sas.PageSize-1])
	}
}

func TestReadPagesCoalescesAdjacent(t *testing.T) {
	reg := metrics.NewRegistry()
	pf, err := Open(filepath.Join(t.TempDir(), "data.sdb"), Options{NoSync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()

	// Lay out five pages; 0,1,2 adjacent, then a gap, then 4,5 adjacent.
	var ids []sas.PageID
	for i := 0; i < 6; i++ {
		id := pf.Alloc()
		if i == 3 {
			continue // hole in the request set, page still allocated
		}
		data := make([]byte, sas.PageSize)
		for j := range data {
			data[j] = byte(i + 1)
		}
		if err := pf.WritePage(id, data); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Request out of order, with a duplicate.
	req := []sas.PageID{ids[3], ids[0], ids[4], ids[2], ids[1], ids[0]}
	bufs := make([][]byte, len(req))
	for i := range bufs {
		bufs[i] = make([]byte, sas.PageSize)
	}
	before := reg.Counter("pagefile.batch_reads").Value()
	if err := pf.ReadPages(req, bufs); err != nil {
		t.Fatal(err)
	}
	reads := reg.Counter("pagefile.batch_reads").Value() - before
	if reads != 2 {
		t.Fatalf("coalesced preads = %d, want 2 (runs 0-2 and 4-5)", reads)
	}
	if got := reg.Counter("pagefile.batch_pages").Value(); got != uint64(len(req)) {
		t.Fatalf("batch_pages = %d, want %d", got, len(req))
	}
	want := []byte{5, 1, 6, 3, 2, 1}
	for i, b := range bufs {
		for j := 0; j < sas.PageSize; j++ {
			if b[j] != want[i] {
				t.Fatalf("buf %d byte %d = %#x, want %#x", i, j, b[j], want[i])
			}
		}
	}
}

func TestReadPagesMatchesReadPage(t *testing.T) {
	pf := openTemp(t)
	var ids []sas.PageID
	for i := 0; i < 9; i++ {
		id := pf.Alloc()
		data := make([]byte, sas.PageSize)
		for j := range data {
			data[j] = byte(i*31 + j)
		}
		if err := pf.WritePage(id, data); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Include one never-written page (beyond EOF after the writes? no —
	// allocation order means the last written page extends the file; use a
	// far page instead).
	ids = append(ids, sas.PageID{Layer: 1, Page: 500})
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, sas.PageSize)
	}
	if err := pf.ReadPages(ids, bufs); err != nil {
		t.Fatal(err)
	}
	single := make([]byte, sas.PageSize)
	for i, id := range ids {
		if err := pf.ReadPage(id, single); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, bufs[i]) {
			t.Fatalf("page %v: ReadPages differs from ReadPage", id)
		}
	}
}

func TestReadPagesLengthMismatch(t *testing.T) {
	pf := openTemp(t)
	if err := pf.ReadPages([]sas.PageID{{Layer: 1, Page: 1}}, nil); err == nil {
		t.Fatal("want error on ids/bufs length mismatch")
	}
	if err := pf.ReadPages(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
