package pagefile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"sedna/internal/sas"
)

// SnapMagic identifies a snapshot-area file.
const SnapMagic = "SEDNSNP1"

// SnapArea is the snapshot area: an append-only side file that receives the
// persistent-snapshot (checkpoint-time) copy of every page the first time it
// is overwritten in the data file after a checkpoint. Restoring all entries
// over the data file reconstructs the transaction-consistent persistent
// snapshot — step one of the paper's two-step recovery (§6.4). The area is
// reset at every checkpoint.
//
// Every area carries the era (the checkpoint LSN) of the snapshot its
// entries protect. Recovery restores the area only when its era matches the
// master page's checkpoint LSN; a mismatch means a crash hit the narrow
// window between publishing a new checkpoint and resetting the area, in
// which case the data file already *is* the new snapshot and the stale
// entries must be discarded.
//
// File layout: 8-byte magic, 8-byte era, then entries of
// (layer uint32 | page uint32 | PageSize bytes).
type SnapArea struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	era    uint64
	saved  map[sas.PageID]bool
	noSync bool
}

const snapHeaderSize = 16
const snapEntrySize = 8 + sas.PageSize

// OpenSnapArea opens or creates the snapshot area at path. Existing entries
// are preserved (they are consumed by recovery).
func OpenSnapArea(path string, opts Options) (*SnapArea, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open snapshot area: %w", err)
	}
	sa := &SnapArea{f: f, path: path, saved: make(map[sas.PageID]bool), noSync: opts.NoSync}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < snapHeaderSize {
		if err := sa.writeHeaderLocked(0); err != nil {
			f.Close()
			return nil, err
		}
		return sa, nil
	}
	var hdr [snapHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:8]) != SnapMagic {
		f.Close()
		return nil, fmt.Errorf("%w: snapshot area magic", ErrCorrupt)
	}
	sa.era = binary.LittleEndian.Uint64(hdr[8:])
	// Rebuild the saved set so that duplicate saves are suppressed if the
	// process reopens the area without a checkpoint in between.
	if err := sa.Restore(func(id sas.PageID, _ []byte) error {
		sa.saved[id] = true
		return nil
	}); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return sa, nil
}

func (sa *SnapArea) writeHeaderLocked(era uint64) error {
	var hdr [snapHeaderSize]byte
	copy(hdr[:], SnapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], era)
	if _, err := sa.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("pagefile: snapshot header: %w", err)
	}
	if !sa.noSync {
		if err := sa.f.Sync(); err != nil {
			return err
		}
	}
	sa.era = era
	if _, err := sa.f.Seek(snapHeaderSize, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Era returns the checkpoint era whose snapshot this area protects.
func (sa *SnapArea) Era() uint64 {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.era
}

// Saved reports whether the page already has a snapshot copy.
func (sa *SnapArea) Saved(id sas.PageID) bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.saved[id]
}

// Save appends the persistent-snapshot copy of the page if one has not been
// saved since the last reset. data must be the page content as of the last
// checkpoint. It is durable when Save returns (unless NoSync).
func (sa *SnapArea) Save(id sas.PageID, data []byte) error {
	if len(data) != sas.PageSize {
		return fmt.Errorf("pagefile: snapshot save buffer is %d bytes", len(data))
	}
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.saved[id] {
		return nil
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], id.Layer)
	binary.LittleEndian.PutUint32(hdr[4:], id.Page)
	if _, err := sa.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("pagefile: snapshot append: %w", err)
	}
	if _, err := sa.f.Write(data); err != nil {
		return fmt.Errorf("pagefile: snapshot append: %w", err)
	}
	if !sa.noSync {
		if err := sa.f.Sync(); err != nil {
			return fmt.Errorf("pagefile: snapshot sync: %w", err)
		}
	}
	sa.saved[id] = true
	return nil
}

// Restore iterates all complete entries in the area in append order. A
// truncated trailing entry (torn write during a crash) is ignored: the
// corresponding Save never returned, so the data-file page was never
// overwritten. The file position is left at the end for further appends.
func (sa *SnapArea) Restore(apply func(id sas.PageID, data []byte) error) error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if _, err := sa.f.Seek(snapHeaderSize, io.SeekStart); err != nil {
		return err
	}
	buf := make([]byte, snapEntrySize)
	for {
		_, err := io.ReadFull(sa.f, buf)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil // torn tail
		}
		if err != nil {
			return fmt.Errorf("pagefile: snapshot read: %w", err)
		}
		id := sas.PageID{
			Layer: binary.LittleEndian.Uint32(buf[0:]),
			Page:  binary.LittleEndian.Uint32(buf[4:]),
		}
		if err := apply(id, buf[8:]); err != nil {
			return err
		}
	}
}

// Len returns the number of distinct pages saved since the last reset.
func (sa *SnapArea) Len() int {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return len(sa.saved)
}

// Reset truncates the area and stamps it with the era (checkpoint LSN) of
// the snapshot its future entries will protect. Called at checkpoint after
// all committed pages have been flushed to the data file and the master page
// published.
func (sa *SnapArea) Reset(era uint64) error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if err := sa.f.Truncate(0); err != nil {
		return fmt.Errorf("pagefile: snapshot truncate: %w", err)
	}
	if err := sa.writeHeaderLocked(era); err != nil {
		return err
	}
	sa.saved = make(map[sas.PageID]bool)
	return nil
}

// Close closes the snapshot area.
func (sa *SnapArea) Close() error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.f.Close()
}

// Path returns the file path.
func (sa *SnapArea) Path() string { return sa.path }
