// Package pagefile implements the persistent page store underneath the Sedna
// buffer manager: a data file addressed by (layer, page) identifiers, a
// master page holding checkpoint metadata, page allocation with a free list,
// and the snapshot area that keeps persistent-snapshot copies of pages that
// were overwritten in place since the last checkpoint (§6.4 of the paper:
// recovery first restores the transaction-consistent persistent snapshot,
// then redoes the log).
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"sedna/internal/metrics"
	"sedna/internal/sas"
)

// Magic identifies a Sedna-Go data file.
const Magic = "SEDNAGO1"

// FormatVersion is bumped on incompatible layout changes.
const FormatVersion = 1

// ErrCorrupt reports a malformed data file.
var ErrCorrupt = errors.New("pagefile: corrupt data file")

// Master is the content of the master page (global page 0). It records the
// state of the page allocator and of the log as of the last checkpoint; all
// fields describe the persistent snapshot, not the live state.
type Master struct {
	NextAlloc     uint64 // global index of the next never-allocated page
	CheckpointLSN uint64 // LSN of the last checkpoint record
	CommitTS      uint64 // commit-timestamp counter as of the checkpoint
	CleanShutdown bool   // set by Close, cleared by the first write
	MetaGen       uint64 // generation number of the valid catalog snapshot
}

// File is the page-addressed data file.
type File struct {
	mu sync.Mutex

	f    *os.File
	path string

	master Master // persistent (checkpoint-time) allocator state

	// Live allocator state, reset to master at recovery.
	nextAlloc uint64
	freeList  []sas.PageID

	noSync bool

	met pfMetrics
}

// pfMetrics binds the pagefile counters in a metrics registry.
type pfMetrics struct {
	reads      *metrics.Counter
	writes     *metrics.Counter
	extends    *metrics.Counter // fresh pages handed out past the high-water mark
	frees      *metrics.Counter
	syncs      *metrics.Counter
	batchReads *metrics.Counter // coalesced preads issued by ReadPages
	batchPages *metrics.Counter // pages delivered through ReadPages
}

func bindPfMetrics(reg *metrics.Registry) pfMetrics {
	return pfMetrics{
		reads:      reg.Counter("pagefile.reads"),
		writes:     reg.Counter("pagefile.writes"),
		extends:    reg.Counter("pagefile.extends"),
		frees:      reg.Counter("pagefile.frees"),
		syncs:      reg.Counter("pagefile.syncs"),
		batchReads: reg.Counter("pagefile.batch_reads"),
		batchPages: reg.Counter("pagefile.batch_pages"),
	}
}

// Options configures Open.
type Options struct {
	// NoSync disables fsync. Only for tests and benchmarks that accept
	// losing durability on power failure.
	NoSync bool
	// Metrics is the registry the file reports into under the "pagefile."
	// family (nil = a fresh private registry).
	Metrics *metrics.Registry
}

// MasterPageID is the identity of the master page; it is never handed out by
// Alloc.
var MasterPageID = sas.PageID{Layer: 1, Page: 0}

// Open opens or creates the data file at path.
func Open(path string, opts Options) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open: %w", err)
	}
	pf := &File{f: f, path: path, noSync: opts.NoSync, met: bindPfMetrics(metrics.OrNew(opts.Metrics))}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat: %w", err)
	}
	if st.Size() == 0 {
		pf.master = Master{NextAlloc: 1} // page 0 is the master page
		pf.nextAlloc = 1
		if err := pf.flushMasterLocked(); err != nil {
			f.Close()
			return nil, err
		}
		return pf, nil
	}
	if err := pf.readMaster(); err != nil {
		f.Close()
		return nil, err
	}
	pf.nextAlloc = pf.master.NextAlloc
	return pf, nil
}

func (pf *File) readMaster() error {
	buf := make([]byte, sas.PageSize)
	if _, err := pf.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("pagefile: read master: %w", err)
	}
	if string(buf[:8]) != Magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != FormatVersion {
		return fmt.Errorf("%w: format version %d", ErrCorrupt, v)
	}
	if ps := binary.LittleEndian.Uint32(buf[12:]); ps != sas.PageSize {
		return fmt.Errorf("%w: page size %d (built with %d)", ErrCorrupt, ps, sas.PageSize)
	}
	pf.master.NextAlloc = binary.LittleEndian.Uint64(buf[16:])
	pf.master.CheckpointLSN = binary.LittleEndian.Uint64(buf[24:])
	pf.master.CommitTS = binary.LittleEndian.Uint64(buf[32:])
	pf.master.CleanShutdown = buf[40] == 1
	pf.master.MetaGen = binary.LittleEndian.Uint64(buf[48:])
	return nil
}

func (pf *File) flushMasterLocked() error {
	buf := make([]byte, sas.PageSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], sas.PageSize)
	binary.LittleEndian.PutUint64(buf[16:], pf.master.NextAlloc)
	binary.LittleEndian.PutUint64(buf[24:], pf.master.CheckpointLSN)
	binary.LittleEndian.PutUint64(buf[32:], pf.master.CommitTS)
	if pf.master.CleanShutdown {
		buf[40] = 1
	}
	binary.LittleEndian.PutUint64(buf[48:], pf.master.MetaGen)
	if _, err := pf.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pagefile: write master: %w", err)
	}
	return pf.syncLocked()
}

func (pf *File) syncLocked() error {
	if pf.noSync {
		return nil
	}
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("pagefile: sync: %w", err)
	}
	pf.met.syncs.Inc()
	return nil
}

// Master returns the checkpoint-time metadata.
func (pf *File) Master() Master {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.master
}

// WriteMaster atomically (with respect to this process) updates the master
// page. Called at checkpoint with the new allocator and log positions.
func (pf *File) WriteMaster(m Master) error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.master = m
	return pf.flushMasterLocked()
}

// ReadPage reads the page id into buf, which must be PageSize bytes. Reading
// a page past the end of the file yields zero bytes (pages are materialized
// lazily).
func (pf *File) ReadPage(id sas.PageID, buf []byte) error {
	if len(buf) != sas.PageSize {
		return fmt.Errorf("pagefile: ReadPage buffer is %d bytes", len(buf))
	}
	pf.met.reads.Inc()
	off := int64(id.GlobalIndex()) * sas.PageSize
	n, err := pf.f.ReadAt(buf, off)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("pagefile: read %v: %w", id, err)
	}
	// Pages are materialized lazily: a read at or past EOF — including a
	// *short* read of a partial page at EOF — yields zeros for the missing
	// tail, exactly as if the file had been extended with zero pages.
	zeroFill(buf[n:])
	return nil
}

func zeroFill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// ReadPages reads a batch of pages in one pass: the requests are sorted by
// file position and runs of adjacent pages are coalesced into a single large
// pread each, so a chain of consecutively-allocated blocks costs one syscall
// instead of one per page. ids[i] is read into bufs[i] (each PageSize bytes);
// reads past EOF zero-fill like ReadPage. Duplicate ids are allowed.
func (pf *File) ReadPages(ids []sas.PageID, bufs [][]byte) error {
	if len(ids) != len(bufs) {
		return fmt.Errorf("pagefile: ReadPages got %d ids, %d buffers", len(ids), len(bufs))
	}
	if len(ids) == 0 {
		return nil
	}
	for i, b := range bufs {
		if len(b) != sas.PageSize {
			return fmt.Errorf("pagefile: ReadPages buffer %d is %d bytes", i, len(b))
		}
	}
	// Order the requests by file position without disturbing the caller's
	// slices: sort an index permutation keyed by the global page index.
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return ids[order[a]].GlobalIndex() < ids[order[b]].GlobalIndex()
	})
	pf.met.reads.Add(uint64(len(ids)))
	pf.met.batchPages.Add(uint64(len(ids)))
	for start := 0; start < len(order); {
		// Grow a run of file-adjacent pages (duplicates collapse onto the
		// same position and stay in the run).
		end := start + 1
		for end < len(order) {
			prev, next := ids[order[end-1]].GlobalIndex(), ids[order[end]].GlobalIndex()
			if next != prev && next != prev+1 {
				break
			}
			end++
		}
		first := ids[order[start]].GlobalIndex()
		last := ids[order[end-1]].GlobalIndex()
		span := int(last-first) + 1
		if span == 1 && end-start == 1 {
			pf.met.batchReads.Inc()
			off := int64(first) * sas.PageSize
			n, err := pf.f.ReadAt(bufs[order[start]], off)
			if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("pagefile: read %v: %w", ids[order[start]], err)
			}
			zeroFill(bufs[order[start]][n:])
			start = end
			continue
		}
		big := make([]byte, span*sas.PageSize)
		pf.met.batchReads.Inc()
		off := int64(first) * sas.PageSize
		n, err := pf.f.ReadAt(big, off)
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("pagefile: batch read at %v: %w", ids[order[start]], err)
		}
		zeroFill(big[n:])
		for i := start; i < end; i++ {
			rel := int(ids[order[i]].GlobalIndex() - first)
			copy(bufs[order[i]], big[rel*sas.PageSize:])
		}
		start = end
	}
	return nil
}

// WritePage writes the page id from data (PageSize bytes).
func (pf *File) WritePage(id sas.PageID, data []byte) error {
	if len(data) != sas.PageSize {
		return fmt.Errorf("pagefile: WritePage buffer is %d bytes", len(data))
	}
	pf.met.writes.Inc()
	off := int64(id.GlobalIndex()) * sas.PageSize
	if _, err := pf.f.WriteAt(data, off); err != nil {
		return fmt.Errorf("pagefile: write %v: %w", id, err)
	}
	return nil
}

// Sync flushes the file to stable storage.
func (pf *File) Sync() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.syncLocked()
}

// Alloc returns a page for use, recycling from the free list when possible.
// The returned page's previous content is unspecified.
func (pf *File) Alloc() sas.PageID {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if n := len(pf.freeList); n > 0 {
		id := pf.freeList[n-1]
		pf.freeList = pf.freeList[:n-1]
		return id
	}
	id := sas.PageIDFromGlobal(pf.nextAlloc)
	pf.nextAlloc++
	pf.met.extends.Inc()
	return id
}

// Free returns a page to the allocator. The free list is persisted by the
// engine at checkpoint time (it is part of the catalog metadata), so between
// checkpoints it is purely in-memory; recovery resets it to the checkpoint
// state.
func (pf *File) Free(id sas.PageID) {
	if id == MasterPageID {
		panic("pagefile: freeing the master page")
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.freeList = append(pf.freeList, id)
	pf.met.frees.Inc()
}

// NextAlloc returns the live next-allocation cursor.
func (pf *File) NextAlloc() uint64 {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.nextAlloc
}

// FreeList returns a copy of the live free list.
func (pf *File) FreeList() []sas.PageID {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	out := make([]sas.PageID, len(pf.freeList))
	copy(out, pf.freeList)
	return out
}

// ResetAllocator forces the live allocator state; used by recovery to roll
// the allocator back to the checkpoint state, and by checkpoint loading.
func (pf *File) ResetAllocator(nextAlloc uint64, freeList []sas.PageID) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	pf.nextAlloc = nextAlloc
	pf.freeList = append([]sas.PageID(nil), freeList...)
}

// RedoAlloc replays a logged page allocation during recovery: the page is
// removed from the free list if present, and the next-allocation cursor is
// advanced past it otherwise.
func (pf *File) RedoAlloc(id sas.PageID) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for i, f := range pf.freeList {
		if f == id {
			pf.freeList = append(pf.freeList[:i], pf.freeList[i+1:]...)
			return
		}
	}
	if g := id.GlobalIndex(); g >= pf.nextAlloc {
		pf.nextAlloc = g + 1
	}
}

// IsFreshSinceCheckpoint reports whether the page did not exist in the
// persistent snapshot; such pages never need a snapshot-area copy before
// being overwritten in place.
func (pf *File) IsFreshSinceCheckpoint(id sas.PageID) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return id.GlobalIndex() >= pf.master.NextAlloc
}

// Size returns the data file size in bytes.
func (pf *File) Size() (int64, error) {
	st, err := pf.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Path returns the file path.
func (pf *File) Path() string { return pf.path }

// Close flushes and closes the file.
func (pf *File) Close() error {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if err := pf.syncLocked(); err != nil {
		pf.f.Close()
		return err
	}
	return pf.f.Close()
}
