package buffer

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sedna/internal/sas"
)

// hammerPool runs readers, snapshot readers, writers and a janitor over a
// shared pool and verifies the last committed byte of every written page
// afterwards. Run under -race it exercises the stripe read-lock deref fast
// path, clock-sweep eviction, pin/unpin atomics, version chains and commit
// against each other.
func hammerPool(t *testing.T, capacity, pages, readers, writers, iters int) {
	t.Helper()
	m, pf, _ := newTestManager(t, capacity)
	ids := make([]sas.PageID, pages)
	for i := range ids {
		ids[i] = pf.Alloc()
	}
	// Live (non-snapshot) reads model a reader transaction holding its own
	// document lock, so they target reader-owned pages: document-granularity
	// 2PL above this layer excludes live read/write overlap on one
	// document's pages. Snapshot reads are lock-free by design and hammer
	// every page, including the writers'.
	roIDs := make([]sas.PageID, 4)
	for i := range roIDs {
		roIDs[i] = pf.Alloc()
	}
	var cts atomic.Uint64
	m.SetActiveSnapshots(func() []uint64 { return []uint64{cts.Load()} })

	var wg sync.WaitGroup
	var busy atomic.Uint64
	errc := make(chan error, readers+writers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, sas.PageSize)
			for i := 0; i < iters; i++ {
				id := ids[rng.Intn(len(ids))]
				if i%4 == 0 {
					if err := m.ReadSnapshot(id, cts.Load(), buf); err != nil {
						errc <- err
						return
					}
					continue
				}
				f, err := m.Deref(roIDs[rng.Intn(len(roIDs))].Ptr())
				if err != nil {
					if errors.Is(err, ErrBusy) {
						busy.Add(1)
						continue
					}
					errc <- err
					return
				}
				_ = f.Data()[0]
				m.Unpin(f)
			}
		}(int64(r))
	}

	// Each writer owns a disjoint partition of pages, mirroring the
	// document-granularity 2PL above the buffer layer.
	want := make([][]byte, writers) // last committed byte per partition slot
	for w := 0; w < writers; w++ {
		want[w] = make([]byte, pages)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			part := ids[w*pages/writers : (w+1)*pages/writers]
			for i := 0; i < iters; i++ {
				txn := uint64(1 + w + writers*(i+1))
				slot := rng.Intn(len(part))
				id := part[slot]
				f, err := m.PinWrite(id, txn)
				if err != nil {
					if errors.Is(err, ErrBusy) {
						busy.Add(1)
						continue
					}
					errc <- err
					return
				}
				v := byte(1 + (i % 250))
				f.Data()[0] = v
				m.Unpin(f)
				if i%7 == 3 {
					if err := m.RollbackTxn(txn); err != nil {
						errc <- err
						return
					}
					continue
				}
				m.CommitTxn(txn, cts.Add(1))
				want[w][w*pages/writers+slot] = v
			}
		}(w)
	}

	// Janitor: version purge and counter reads race the workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			m.PurgeAllVersions()
			_ = m.VersionCount()
			_ = m.DirtyCount()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if n := busy.Load(); n > uint64(iters) {
		t.Fatalf("excessive ErrBusy under pin retry: %d", n)
	}

	// Every partition slot must hold its last committed byte, both live and
	// through a current-timestamp snapshot read.
	snap := make([]byte, sas.PageSize)
	now := cts.Load()
	for w := 0; w < writers; w++ {
		for slot, v := range want[w] {
			if v == 0 {
				continue
			}
			f, err := m.Pin(ids[slot])
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Data()[0]; got != v {
				t.Fatalf("page %v live byte = %d, want %d", ids[slot], got, v)
			}
			m.Unpin(f)
			if err := m.ReadSnapshot(ids[slot], now, snap); err != nil {
				t.Fatal(err)
			}
			if snap[0] != v {
				t.Fatalf("page %v snapshot byte = %d, want %d", ids[slot], snap[0], v)
			}
		}
	}
}

// TestStressTinyPool hammers a capacity-4 pool (a single stripe), so every
// operation contends for the same mutex and eviction churns constantly.
func TestStressTinyPool(t *testing.T) {
	hammerPool(t, 4, 16, 2, 2, 300)
}

// TestStressStripedPool hammers a pool large enough to shard into the full
// stripe fan-out, with more pages than frames so the clock sweep runs under
// concurrent pinning.
func TestStressStripedPool(t *testing.T) {
	capacity := maxStripes * minStripeFrames // 1024: full fan-out
	m, _, _ := newTestManager(t, capacity)
	if m.Stripes() != maxStripes {
		t.Fatalf("stripes = %d, want %d", m.Stripes(), maxStripes)
	}
	hammerPool(t, capacity, capacity+capacity/2, 4, 2, 250)
}

func TestDoubleUnpinPanics(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	f, err := m.Pin(pf.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin must panic")
		}
	}()
	m.Unpin(f)
}

// TestPinWaitRecovers pins every frame, releases one from another goroutine
// shortly after, and expects the blocked Pin to succeed within the bounded
// wait instead of surfacing ErrBusy.
func TestPinWaitRecovers(t *testing.T) {
	m, pf, _ := newTestManager(t, 2)
	p1, p2, p3 := pf.Alloc(), pf.Alloc(), pf.Alloc()
	f1, err := m.Pin(p1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Pin(p2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		m.Unpin(f2)
	}()
	f3, err := m.Pin(p3)
	if err != nil {
		t.Fatalf("Pin did not recover from transient pin pressure: %v", err)
	}
	m.Unpin(f3)
	m.Unpin(f1)
	if got := m.Metrics().Snapshot().Counters["buffer.pin_waits"]; got == 0 {
		t.Fatal("buffer.pin_waits not incremented")
	}
}
