package buffer

import (
	"encoding/binary"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
)

// writeChain allocates n pages forming a nextBlock-style chain: each page
// stores its successor's global index at offset 8 (0 = end) plus a payload
// byte, using the test's own layout — the prefetcher is layout-agnostic and
// takes the decoder as a callback.
func writeChain(t *testing.T, pf *pagefile.File, n int) []sas.PageID {
	t.Helper()
	ids := make([]sas.PageID, n)
	for i := range ids {
		ids[i] = pf.Alloc()
	}
	buf := make([]byte, sas.PageSize)
	for i, id := range ids {
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		var next uint64
		if i+1 < n {
			next = ids[i+1].GlobalIndex()
		}
		binary.LittleEndian.PutUint64(buf[8:], next)
		if err := pf.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func chainDecode(page []byte) (sas.PageID, bool) {
	g := binary.LittleEndian.Uint64(page[8:])
	if g == 0 {
		return sas.PageID{}, false
	}
	return sas.PageIDFromGlobal(g), true
}

// waitFor polls cond for up to two seconds — prefetching is asynchronous and
// best-effort, so tests wait for the effect rather than the mechanism.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPrefetchChainLoadsAheadAndCountsHits(t *testing.T) {
	m, pf, _ := newTestManager(t, 256)
	ids := writeChain(t, pf, 6)

	m.PrefetchChain(ids[0], len(ids), chainDecode)
	waitFor(t, "chain resident", func() bool {
		return m.PrefetchResident() >= len(ids)
	})
	if got := m.met.prefetchIssued.Value(); got < uint64(len(ids)) {
		t.Fatalf("prefetch_issued = %d, want >= %d", got, len(ids))
	}

	// A real scan over the chain should hit every prefetched frame and
	// consume the budget shares.
	reads := m.met.diskReads.Value()
	for i, id := range ids {
		f, err := m.Deref(id.Ptr())
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i+1) {
			t.Fatalf("page %d payload = %#x", i, f.Data()[0])
		}
		m.Unpin(f)
	}
	if got := m.met.diskReads.Value(); got != reads {
		t.Fatalf("scan did %d synchronous disk reads, want 0 (all prefetched)", got-reads)
	}
	if got := m.met.prefetchHits.Value(); got != uint64(len(ids)) {
		t.Fatalf("prefetch_hits = %d, want %d", got, len(ids))
	}
	if got := m.PrefetchResident(); got != 0 {
		t.Fatalf("resident after full scan = %d, want 0", got)
	}
}

func TestPrefetchBatchesAdjacentPages(t *testing.T) {
	// The pagefile must share the manager's registry for the batch counters
	// to be visible here.
	reg := metrics.NewRegistry()
	dir := t.TempDir()
	pf, err := pagefile.Open(filepath.Join(dir, "data.sdb"), pagefile.Options{NoSync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := pagefile.OpenSnapArea(filepath.Join(dir, "data.snap"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close(); snap.Close() })
	m := NewWithMetrics(pf, snap, 256, reg)
	t.Cleanup(m.StopPrefetch)

	ids := writeChain(t, pf, 8)
	before := m.reg.Counter("pagefile.batch_pages").Value()
	m.Prefetch(ids)
	waitFor(t, "batch resident", func() bool {
		return m.PrefetchResident() >= len(ids)
	})
	if got := m.reg.Counter("pagefile.batch_pages").Value() - before; got == 0 {
		t.Fatal("prefetcher did not use the batched read path")
	}
}

func TestPrefetchDepthZeroIsNoop(t *testing.T) {
	m, pf, _ := newTestManager(t, 64)
	ids := writeChain(t, pf, 3)
	m.PrefetchChain(ids[0], 0, chainDecode)
	time.Sleep(10 * time.Millisecond)
	if got := m.met.prefetchIssued.Value() + m.met.prefetchDropped.Value(); got != 0 {
		t.Fatalf("depth 0 produced prefetch activity: issued+dropped = %d", got)
	}
	if m.PrefetchResident() != 0 {
		t.Fatalf("depth 0 left %d resident pages", m.PrefetchResident())
	}
}

func TestPrefetchBudgetIsHardBound(t *testing.T) {
	m, pf, _ := newTestManager(t, 64) // budget = 8
	budget := m.PrefetchBudget()
	ids := writeChain(t, pf, 4*budget)
	m.Prefetch(ids)
	waitFor(t, "budget consumed", func() bool {
		return m.PrefetchResident() >= budget || m.met.prefetchDropped.Value() > 0
	})
	for i := 0; i < 100; i++ {
		if got := m.PrefetchResident(); got > budget {
			t.Fatalf("resident = %d exceeds budget %d", got, budget)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if m.met.prefetchDropped.Value() == 0 {
		t.Fatal("flooding 4x the budget dropped nothing")
	}
}

func TestPrefetchAfterStopIsIgnored(t *testing.T) {
	m, pf, _ := newTestManager(t, 64)
	ids := writeChain(t, pf, 3)
	m.StopPrefetch()
	m.Prefetch(ids)
	time.Sleep(5 * time.Millisecond)
	if m.PrefetchResident() != 0 {
		t.Fatalf("prefetch after stop installed %d pages", m.PrefetchResident())
	}
	m.StopPrefetch() // idempotent
}

func TestInvalidateAllDiscardsPrefetchedFrames(t *testing.T) {
	m, pf, _ := newTestManager(t, 256)
	ids := writeChain(t, pf, 5)
	m.Prefetch(ids)
	waitFor(t, "resident", func() bool { return m.PrefetchResident() >= len(ids) })
	m.InvalidateAll()
	if got := m.PrefetchResident(); got != 0 {
		t.Fatalf("resident after InvalidateAll = %d", got)
	}
	if got := m.met.prefetchWasted.Value(); got < uint64(len(ids)) {
		t.Fatalf("prefetch_wasted = %d, want >= %d", got, len(ids))
	}
}

// TestPrefetchStressTinyPool floods the readahead machinery against a pool
// smaller than the prefetch budget while scans, writers and pins compete for
// frames. Run under -race it checks, throughout and afterwards:
//
//   - a pinned frame is never evicted (pointer identity survives the storm);
//   - the resident-prefetch count never exceeds the hard budget;
//   - no deadlock against the documented stripe→WAL→pagefile lock order
//     (writers force dirty frames and evictions while hints install);
//   - committed data survives byte-exact.
func TestPrefetchStressTinyPool(t *testing.T) {
	m, pf, _ := newTestManager(t, 3) // collapses to one stripe; budget floor 4 > capacity
	m.SetWALFlush(func() error { return nil })
	if m.PrefetchBudget() <= m.Capacity() {
		t.Fatalf("stress wants budget (%d) > capacity (%d)", m.PrefetchBudget(), m.Capacity())
	}
	chain := writeChain(t, pf, 32)
	scanIDs := chain[:16]
	writeID := pf.Alloc()
	pinID := pf.Alloc()

	// Hold one frame pinned across the whole run.
	pinned, err := m.Pin(pinID)
	if err != nil {
		t.Fatal(err)
	}
	copy(pinned.Data(), []byte("sentinel"))

	const iters = 400
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	stop := make(chan struct{})

	// Budget watchdog (own WaitGroup: it runs until the workers finish).
	var watchdog sync.WaitGroup
	watchdog.Add(1)
	go func() {
		defer watchdog.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := m.PrefetchResident(); got > m.PrefetchBudget() {
				errc <- errBudget(got)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Hinters flood chain prefetches.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				m.PrefetchChain(chain[rng.Intn(len(chain))], 8, chainDecode)
			}
		}(int64(w))
	}

	// Scanners deref chain pages (competing with installs for the 3 frames).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters; i++ {
				id := scanIDs[rng.Intn(len(scanIDs))]
				f, err := m.Pin(id)
				if err != nil {
					continue // ErrBusy under extreme pin pressure is legal
				}
				if f.Data()[0] == 0 {
					errc <- errZero(id)
					m.Unpin(f)
					return
				}
				m.Unpin(f)
			}
		}(int64(w))
	}

	// A writer keeps one page dirty so installs must skip it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			f, err := m.PinWrite(writeID, 1)
			if err != nil {
				continue
			}
			f.Data()[0] = byte(i + 1)
			m.Unpin(f)
			m.CommitTxn(1, uint64(i+1))
		}
	}()

	wg.Wait()
	close(stop)
	watchdog.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The pinned frame must have survived untouched and unevicted.
	again, err := m.Pin(pinID)
	if err != nil {
		t.Fatal(err)
	}
	if again != pinned {
		t.Fatal("pinned frame was evicted and reloaded during the stress run")
	}
	if string(again.Data()[:8]) != "sentinel" {
		t.Fatalf("pinned frame content clobbered: %q", again.Data()[:8])
	}
	m.Unpin(again)
	m.Unpin(pinned)
	if got := m.PrefetchResident(); got > m.PrefetchBudget() {
		t.Fatalf("final resident %d > budget %d", got, m.PrefetchBudget())
	}
}

type errBudget int

func (e errBudget) Error() string { return "resident prefetch pages exceeded budget" }

type errZero sas.PageID

func (e errZero) Error() string { return "scanned page read as zeros" }

// TestReadSnapshotInstallWindow covers the scan-side sequential read-around:
// a cold snapshot miss with a window reads the demanded page plus its
// file-adjacent successors in one batched pread, installs the extras as
// prefetched frames, and the scan's subsequent reads over them are served
// resident — no further disk reads — and counted as prefetch hits. A plain
// ReadSnapshot (the depth-0 path) must leave no residency footprint at all.
func TestReadSnapshotInstallWindow(t *testing.T) {
	m, pf, _ := newTestManager(t, 256)
	ids := writeChain(t, pf, 8)
	buf := make([]byte, sas.PageSize)

	// Depth-0 path first: footprint-free.
	if err := m.ReadSnapshot(ids[0], 1, buf); err != nil {
		t.Fatal(err)
	}
	if m.PrefetchResident() != 0 || m.met.prefetchIssued.Value() != 0 {
		t.Fatalf("plain ReadSnapshot left a footprint: resident=%d issued=%d",
			m.PrefetchResident(), m.met.prefetchIssued.Value())
	}

	if err := m.ReadSnapshotInstall(ids[0], 1, buf, len(ids)); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("demanded page payload = %#x, want 1", buf[0])
	}
	if got := int(m.met.prefetchIssued.Value()); got != len(ids)-1 {
		t.Fatalf("prefetch_issued = %d, want %d extras", got, len(ids)-1)
	}
	reads := m.met.diskReads.Value()
	for i, id := range ids[1:] {
		if err := m.ReadSnapshot(id, 1, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+2) {
			t.Fatalf("page %d payload = %#x", i+1, buf[0])
		}
	}
	if got := m.met.diskReads.Value(); got != reads {
		t.Fatalf("scan over installed window did %d disk reads, want 0", got-reads)
	}
	if got := int(m.met.prefetchHits.Value()); got != len(ids)-1 {
		t.Fatalf("prefetch_hits = %d, want %d", got, len(ids)-1)
	}
}

// TestReadSnapshotInstallRefusesStaleExtras pins the install-safety predicate:
// an adjacent page that a transaction commits between the eligibility capture
// and the install must not be published from the read-around bytes. Here the
// adjacent page is already dirty (uncommitted) at read time, so it is
// ineligible from the start and the window must skip it.
func TestReadSnapshotInstallRefusesStaleExtras(t *testing.T) {
	m, pf, _ := newTestManager(t, 256)
	ids := writeChain(t, pf, 2)

	// Make ids[1] dirty under an uncommitted writer.
	f, err := m.PinWrite(ids[1], 7)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 0xEE
	m.Unpin(f)
	buf := make([]byte, sas.PageSize)
	if err := m.ReadSnapshotInstall(ids[0], 1, buf, 2); err != nil {
		t.Fatal(err)
	}
	// The dirty page keeps its in-pool content; nothing was installed over it.
	g, err := m.Deref(ids[1].Ptr())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unpin(g)
	if g.Data()[0] != 0xEE {
		t.Fatalf("dirty page content = %#x, want 0xEE (read-around must not overwrite)", g.Data()[0])
	}
}
