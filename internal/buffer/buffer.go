// Package buffer implements the Sedna buffer manager together with the two
// mechanisms the paper builds on top of it:
//
//   - the layer-mapping dereference of §4.2 / Fig. 4: an address within a
//     layer maps to a virtual-address slot on an equality basis, so a SAS
//     pointer dereference is a slot lookup plus a layer-number check, with a
//     buffer-manager "memory fault" on mismatch — no pointer swizzling;
//
//   - page-level multiversioning of §6.1: the first update to a page inside
//     a transaction pushes a copy-on-write pre-image onto the page's version
//     chain, commit stamps the page with a commit timestamp, and snapshot
//     (read-only) transactions resolve the newest version not newer than
//     their snapshot timestamp. Old versions are purged when no active
//     snapshot can reach them, piggybacked on new-version creation.
//
// The buffer manager also enforces the interaction with recovery: before a
// page that existed in the persistent snapshot is overwritten in the data
// file, its checkpoint-time content is saved to the snapshot area (§6.4).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
)

// ErrBusy reports that every frame is pinned and none can be evicted.
var ErrBusy = errors.New("buffer: all frames pinned")

// ErrWriteConflict reports that a transaction tried to update a page that
// carries uncommitted changes of another transaction. Document-granularity
// strict 2PL makes this unreachable in normal operation; it guards the
// invariant.
var ErrWriteConflict = errors.New("buffer: page has uncommitted changes of another transaction")

// Frame is a main-memory copy of one page.
type Frame struct {
	id   sas.PageID
	data []byte
	pin  int
	lru  *list.Element
}

// ID returns the identity of the page held by the frame.
func (f *Frame) ID() sas.PageID { return f.id }

// Data returns the page bytes. The caller must hold the frame pinned while
// reading or writing, and must hold the owning document's lock (or be the
// sole writer) while writing.
func (f *Frame) Data() []byte { return f.data }

// pageVersion is one committed pre-image on a page's version chain.
type pageVersion struct {
	ts   uint64 // commit timestamp of this content
	data []byte
}

type slotEntry struct {
	layer uint32
	frame *Frame
}

// Stats is the legacy flat view of the buffer-manager counters. The counters
// themselves live in the metrics registry (family "buffer.*"); Stats remains
// as a thin compatibility accessor for existing experiment output.
type Stats struct {
	Hits          uint64 // dereferences answered by the mapped slot
	Faults        uint64 // dereferences that missed the slot mapping
	DiskReads     uint64
	DiskWrites    uint64
	Evictions     uint64
	SnapSaves     uint64 // persistent-snapshot copies taken before overwrite
	VersionsMade  uint64 // pre-images pushed
	VersionsFreed uint64 // pre-images purged
	SnapshotReads uint64 // page reads resolved for snapshot transactions
}

// bufMetrics binds the buffer-manager counters in a metrics registry.
type bufMetrics struct {
	hits          *metrics.Counter
	faults        *metrics.Counter
	diskReads     *metrics.Counter
	diskWrites    *metrics.Counter
	evictions     *metrics.Counter
	snapSaves     *metrics.Counter
	versionsMade  *metrics.Counter
	versionsFreed *metrics.Counter
	snapshotReads *metrics.Counter
	versionsLive  *metrics.Gauge
}

func bindBufMetrics(reg *metrics.Registry) bufMetrics {
	return bufMetrics{
		hits:          reg.Counter("buffer.hits"),
		faults:        reg.Counter("buffer.faults"),
		diskReads:     reg.Counter("buffer.disk_reads"),
		diskWrites:    reg.Counter("buffer.disk_writes"),
		evictions:     reg.Counter("buffer.evictions"),
		snapSaves:     reg.Counter("buffer.snap_saves"),
		versionsMade:  reg.Counter("buffer.versions_made"),
		versionsFreed: reg.Counter("buffer.versions_freed"),
		snapshotReads: reg.Counter("buffer.snapshot_reads"),
		versionsLive:  reg.Gauge("buffer.versions_live"),
	}
}

// Manager is the buffer manager.
type Manager struct {
	mu sync.Mutex

	pf   *pagefile.File
	snap *pagefile.SnapArea

	capacity int
	frames   map[sas.PageID]*Frame
	lru      *list.List // front = most recently used

	// slots emulates the process virtual address range one layer maps to:
	// slots[pageIndex] records which layer's page is currently mapped at
	// that address. Equality-basis mapping means a pointer's page index IS
	// its slot index.
	slots []slotEntry

	// Versioning state. It is keyed by page identity, not by frame, so it
	// survives eviction.
	pageTS   map[sas.PageID]uint64              // commit TS of the live content
	dirtyBy  map[sas.PageID]uint64              // txn holding uncommitted changes
	dirty    map[sas.PageID]bool                // live content differs from disk
	chains   map[sas.PageID][]pageVersion       // newest first
	txnPages map[uint64]map[sas.PageID]struct{} // pages dirtied per txn

	walFlush    func() error    // flush the WAL; called before any page write (WAL rule)
	activeSnaps func() []uint64 // timestamps of active snapshots, for purge

	reg *metrics.Registry
	met bufMetrics
}

// New creates a buffer manager over the data file and snapshot area with
// room for capacity frames, reporting into a private metrics registry.
func New(pf *pagefile.File, snap *pagefile.SnapArea, capacity int) *Manager {
	return NewWithMetrics(pf, snap, capacity, nil)
}

// NewWithMetrics creates a buffer manager that reports its counters into reg
// under the "buffer." family (nil = a fresh private registry).
func NewWithMetrics(pf *pagefile.File, snap *pagefile.SnapArea, capacity int, reg *metrics.Registry) *Manager {
	if capacity < 2 {
		capacity = 2
	}
	reg = metrics.OrNew(reg)
	return &Manager{
		reg:      reg,
		met:      bindBufMetrics(reg),
		pf:       pf,
		snap:     snap,
		capacity: capacity,
		frames:   make(map[sas.PageID]*Frame),
		lru:      list.New(),
		slots:    make([]slotEntry, sas.PagesPerLayer),
		pageTS:   make(map[sas.PageID]uint64),
		dirtyBy:  make(map[sas.PageID]uint64),
		dirty:    make(map[sas.PageID]bool),
		chains:   make(map[sas.PageID][]pageVersion),
		txnPages: make(map[uint64]map[sas.PageID]struct{}),
	}
}

// SetWALFlush installs the hook that flushes the write-ahead log; it is
// invoked before any dirty page reaches the data file.
func (m *Manager) SetWALFlush(fn func() error) { m.walFlush = fn }

// SetActiveSnapshots installs the provider of active snapshot timestamps
// used by version purging.
func (m *Manager) SetActiveSnapshots(fn func() []uint64) { m.activeSnaps = fn }

// Stats returns a flat copy of the event counters — the compatibility
// accessor over the metrics registry for pre-registry consumers.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:          m.met.hits.Value(),
		Faults:        m.met.faults.Value(),
		DiskReads:     m.met.diskReads.Value(),
		DiskWrites:    m.met.diskWrites.Value(),
		Evictions:     m.met.evictions.Value(),
		SnapSaves:     m.met.snapSaves.Value(),
		VersionsMade:  m.met.versionsMade.Value(),
		VersionsFreed: m.met.versionsFreed.Value(),
		SnapshotReads: m.met.snapshotReads.Value(),
	}
}

// Metrics returns the registry this manager reports into.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Capacity returns the frame-pool capacity.
func (m *Manager) Capacity() int { return m.capacity }

// Deref resolves a SAS pointer to its page frame through the layer-mapping
// fast path: the pointer's page index selects the slot; if the resident
// layer matches the pointer's layer the dereference costs one comparison
// (the paper's "comparable to a conventional pointer"). A mismatch is the
// emulated memory fault handled by loading the page. The frame is returned
// pinned; the caller must Unpin it.
func (m *Manager) Deref(p sas.XPtr) (*Frame, error) {
	f, _, err := m.DerefTrack(p)
	return f, err
}

// DerefTrack is Deref additionally reporting whether the dereference
// faulted (layer mismatch → page load), so callers can attribute faults to
// the active trace span.
func (m *Manager) DerefTrack(p sas.XPtr) (*Frame, bool, error) {
	if p.IsNil() {
		return nil, false, errors.New("buffer: dereference of nil XPtr")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	slot := p.PageIndex()
	if e := &m.slots[slot]; e.frame != nil && e.layer == p.Layer() {
		m.met.hits.Inc()
		m.touch(e.frame)
		e.frame.pin++
		return e.frame, false, nil
	}
	m.met.faults.Inc()
	f, err := m.loadLocked(sas.PageIDOf(p))
	if err != nil {
		return nil, true, err
	}
	m.slots[slot] = slotEntry{layer: p.Layer(), frame: f}
	f.pin++
	return f, true, nil
}

// Pin loads (if necessary) and pins the page. Unlike Deref it does not go
// through or update the layer mapping.
func (m *Manager) Pin(id sas.PageID) (*Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := m.loadLocked(id)
	if err != nil {
		return nil, err
	}
	f.pin++
	return f, nil
}

// Unpin releases a pin taken by Pin, Deref, PinWrite or PinNew.
func (m *Manager) Unpin(f *Frame) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.pin <= 0 {
		panic("buffer: Unpin of unpinned frame")
	}
	f.pin--
}

// PinWrite prepares the page for modification by txn: on the first touch it
// pushes the committed pre-image onto the version chain and registers the
// page in the transaction's dirty set. The frame is returned pinned.
func (m *Manager) PinWrite(id sas.PageID, txn uint64) (*Frame, error) {
	if txn == 0 {
		panic("buffer: PinWrite with zero txn id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if owner := m.dirtyBy[id]; owner != 0 && owner != txn {
		return nil, fmt.Errorf("%w: page %v owned by txn %d", ErrWriteConflict, id, owner)
	}
	f, err := m.loadLocked(id)
	if err != nil {
		return nil, err
	}
	if m.dirtyBy[id] != txn {
		pre := make([]byte, sas.PageSize)
		copy(pre, f.data)
		m.chains[id] = append([]pageVersion{{ts: m.pageTS[id], data: pre}}, m.chains[id]...)
		m.met.versionsMade.Inc()
		m.met.versionsLive.Inc()
		m.dirtyBy[id] = txn
		m.purgeChainLocked(id)
		tp := m.txnPages[txn]
		if tp == nil {
			tp = make(map[sas.PageID]struct{})
			m.txnPages[txn] = tp
		}
		tp[id] = struct{}{}
	}
	m.dirty[id] = true
	f.pin++
	return f, nil
}

// PinNew prepares a newly allocated page for txn: it behaves like PinWrite
// (so that recycled pages keep a pre-image for snapshot readers and for
// rollback) and zeroes the content. The frame is returned pinned.
func (m *Manager) PinNew(id sas.PageID, txn uint64) (*Frame, error) {
	f, err := m.PinWrite(id, txn)
	if err != nil {
		return nil, err
	}
	data := f.Data()
	for i := range data {
		data[i] = 0
	}
	return f, nil
}

// loadLocked returns the frame for id, reading it from disk if absent.
func (m *Manager) loadLocked(id sas.PageID) (*Frame, error) {
	if f := m.frames[id]; f != nil {
		m.touch(f)
		return f, nil
	}
	f, err := m.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := m.pf.ReadPage(id, f.data); err != nil {
		m.dropFrameLocked(f)
		return nil, err
	}
	m.met.diskReads.Inc()
	return f, nil
}

// newFrameLocked allocates a frame for id, evicting if the pool is full.
func (m *Manager) newFrameLocked(id sas.PageID) (*Frame, error) {
	for len(m.frames) >= m.capacity {
		if err := m.evictOneLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, sas.PageSize)}
	f.lru = m.lru.PushFront(f)
	m.frames[id] = f
	return f, nil
}

func (m *Manager) touch(f *Frame) {
	m.lru.MoveToFront(f.lru)
}

func (m *Manager) dropFrameLocked(f *Frame) {
	m.lru.Remove(f.lru)
	delete(m.frames, f.id)
	slot := f.id.Page
	if e := &m.slots[slot]; e.frame == f {
		*e = slotEntry{}
	}
}

// evictOneLocked writes back and drops the least recently used unpinned
// frame.
func (m *Manager) evictOneLocked() error {
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*Frame)
		if f.pin > 0 {
			continue
		}
		if m.dirty[f.id] {
			if err := m.flushFrameLocked(f); err != nil {
				return err
			}
		}
		m.dropFrameLocked(f)
		m.met.evictions.Inc()
		return nil
	}
	return ErrBusy
}

// flushFrameLocked writes the frame to the data file, observing the WAL rule
// and the persistent-snapshot save-before-overwrite rule.
func (m *Manager) flushFrameLocked(f *Frame) error {
	if m.walFlush != nil {
		if err := m.walFlush(); err != nil {
			return err
		}
	}
	if m.snap != nil && !m.pf.IsFreshSinceCheckpoint(f.id) && !m.snap.Saved(f.id) {
		// The checkpoint-time content is the current on-disk content: this
		// is the first overwrite since the checkpoint.
		old := make([]byte, sas.PageSize)
		if err := m.pf.ReadPage(f.id, old); err != nil {
			return err
		}
		if err := m.snap.Save(f.id, old); err != nil {
			return err
		}
		m.met.snapSaves.Inc()
	}
	if err := m.pf.WritePage(f.id, f.data); err != nil {
		return err
	}
	m.met.diskWrites.Inc()
	delete(m.dirty, f.id)
	return nil
}

// CommitTxn makes txn's pages committed at commit timestamp cts.
func (m *Manager) CommitTxn(txn, cts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.txnPages[txn] {
		delete(m.dirtyBy, id)
		m.pageTS[id] = cts
	}
	delete(m.txnPages, txn)
}

// RollbackTxn restores the pre-images of every page txn dirtied and discards
// the transaction's versions.
func (m *Manager) RollbackTxn(txn uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.txnPages[txn] {
		chain := m.chains[id]
		if len(chain) > 0 && chain[0].ts == m.pageTS[id] {
			// The chain top is the pre-image pushed by this transaction's
			// first touch: copy it back and pop it.
			f, err := m.loadLocked(id)
			if err != nil {
				return err
			}
			copy(f.data, chain[0].data)
			if len(chain) == 1 {
				delete(m.chains, id)
			} else {
				m.chains[id] = chain[1:]
			}
			m.met.versionsFreed.Inc()
			m.met.versionsLive.Dec()
			m.dirty[id] = true // disk may hold the discarded bytes
		} else {
			// Freshly allocated page (PinNew): no pre-image to restore. The
			// content is unreachable garbage; zero it defensively.
			if f := m.frames[id]; f != nil {
				for i := range f.data {
					f.data[i] = 0
				}
			}
			m.dirty[id] = true
		}
		delete(m.dirtyBy, id)
	}
	delete(m.txnPages, txn)
	return nil
}

// ReadSnapshot copies the content of the page as of snapshot timestamp
// snapTS into buf. A page that did not exist at the snapshot reads as
// zeros.
func (m *Manager) ReadSnapshot(id sas.PageID, snapTS uint64, buf []byte) error {
	if len(buf) != sas.PageSize {
		return fmt.Errorf("buffer: ReadSnapshot buffer is %d bytes", len(buf))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.snapshotReads.Inc()
	if m.dirtyBy[id] == 0 && m.pageTS[id] <= snapTS {
		// The live content is visible.
		if f := m.frames[id]; f != nil {
			m.touch(f)
			copy(buf, f.data)
			return nil
		}
		if err := m.pf.ReadPage(id, buf); err != nil {
			return err
		}
		m.met.diskReads.Inc()
		return nil
	}
	for _, v := range m.chains[id] {
		if v.ts <= snapTS {
			copy(buf, v.data)
			return nil
		}
	}
	// No version old enough: the page did not exist at the snapshot.
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// purgeChainLocked drops versions of the page that no active snapshot can
// read. A version with timestamp v.ts is the visible one for snapshot s iff
// v.ts <= s and s is below the timestamp of the next newer content.
func (m *Manager) purgeChainLocked(id sas.PageID) {
	chain := m.chains[id]
	if len(chain) == 0 {
		return
	}
	var snaps []uint64
	if m.activeSnaps != nil {
		snaps = m.activeSnaps()
	}
	nextTS := m.pageTS[id] // timestamp of the next newer content (live)
	dirty := m.dirtyBy[id] != 0
	kept := chain[:0]
	for i, v := range chain {
		needed := false
		if dirty && i == 0 {
			// The live content is uncommitted and invisible: the chain top
			// is the visible version for every snapshot at or above its
			// timestamp, and it is also the rollback pre-image. Always keep
			// it.
			needed = true
		} else {
			for _, s := range snaps {
				if v.ts <= s && s < nextTS {
					needed = true
					break
				}
			}
		}
		if needed {
			kept = append(kept, v)
		} else {
			m.met.versionsFreed.Inc()
			m.met.versionsLive.Dec()
		}
		nextTS = v.ts
	}
	if len(kept) == 0 {
		delete(m.chains, id)
	} else {
		m.chains[id] = kept
	}
}

// PurgeAllVersions runs the purge rule over every chain; the transaction
// manager calls it when snapshots advance.
func (m *Manager) PurgeAllVersions() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.chains {
		if m.dirtyBy[id] != 0 {
			// The chain top is an uncommitted pre-image; leave the chain to
			// rollback/commit handling.
			continue
		}
		m.purgeChainLocked(id)
	}
}

// VersionCount returns the total number of retained pre-images (for tests
// and the E12 experiment).
func (m *Manager) VersionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.chains {
		n += len(c)
	}
	return n
}

// FlushCommitted writes every committed dirty page to the data file (with
// snapshot-area saves) and syncs. Uncommitted pages are skipped. The engine
// must quiesce writers first.
func (m *Manager) FlushCommitted() error {
	m.mu.Lock()
	var ids []sas.PageID
	for id := range m.dirty {
		if m.dirtyBy[id] == 0 {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		f, err := m.loadLocked(id)
		if err != nil {
			m.mu.Unlock()
			return err
		}
		if err := m.flushFrameLocked(f); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	m.mu.Unlock()
	return m.pf.Sync()
}

// DropVersions discards every version chain and commit-timestamp record.
// Used after recovery and at shutdown, when no snapshots exist.
func (m *Manager) DropVersions() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chains = make(map[sas.PageID][]pageVersion)
	m.pageTS = make(map[sas.PageID]uint64)
	m.met.versionsLive.Set(0)
}

// InvalidateAll drops every frame and mapping without writing anything.
// Used by recovery before re-reading the restored data file, and by hot
// backup tests. Panics if any frame is pinned.
func (m *Manager) InvalidateAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.frames {
		if f.pin > 0 {
			panic("buffer: InvalidateAll with pinned frames")
		}
	}
	m.frames = make(map[sas.PageID]*Frame)
	m.lru = list.New()
	m.slots = make([]slotEntry, sas.PagesPerLayer)
	m.dirty = make(map[sas.PageID]bool)
	m.dirtyBy = make(map[sas.PageID]uint64)
	m.txnPages = make(map[uint64]map[sas.PageID]struct{})
	m.chains = make(map[sas.PageID][]pageVersion)
	m.pageTS = make(map[sas.PageID]uint64)
	m.met.versionsLive.Set(0)
}

// DirtyCount returns the number of pages whose live content differs from
// disk.
func (m *Manager) DirtyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}
