// Package buffer implements the Sedna buffer manager together with the two
// mechanisms the paper builds on top of it:
//
//   - the layer-mapping dereference of §4.2 / Fig. 4: an address within a
//     layer maps to a virtual-address slot on an equality basis, so a SAS
//     pointer dereference is a slot lookup plus a layer-number check, with a
//     buffer-manager "memory fault" on mismatch — no pointer swizzling;
//
//   - page-level multiversioning of §6.1: the first update to a page inside
//     a transaction pushes a copy-on-write pre-image onto the page's version
//     chain, commit stamps the page with a commit timestamp, and snapshot
//     (read-only) transactions resolve the newest version not newer than
//     their snapshot timestamp. Old versions are purged when no active
//     snapshot can reach them, piggybacked on new-version creation.
//
// The buffer manager also enforces the interaction with recovery: before a
// page that existed in the persistent snapshot is overwritten in the data
// file, its checkpoint-time content is saved to the snapshot area (§6.4).
//
// # Concurrency
//
// The pool is sharded into power-of-two lock stripes selected by the page
// index (id.Page & mask), so pages sharing a virtual-address slot — same
// page index, any layer — always live in the same stripe and every slot is
// owned by exactly one stripe. Each stripe holds its own frame map, a
// clock-sweep (second-chance) replacement ring, its share of the slot table
// and the versioning maps for its pages. A hot Deref is a stripe read-lock,
// one slot comparison and two atomics (ref bit + pin count); snapshot reads
// also run entirely under the stripe read-lock, so readers on distinct
// stripes never serialize and readers on the same stripe share it.
//
// Lock order: at most one stripe mutex is held at a time. While holding a
// stripe mutex the manager may acquire, in this order only: the WAL mutex
// (walFlush during eviction), the transaction-manager mutex (activeSnaps
// during purge), and the pagefile/snap-area mutexes. The txn-pages mutex
// (txnMu) is never held together with a stripe mutex. Per-frame pin counts
// and ref bits are atomics; pins are only *taken* while holding the owning
// stripe's mutex (read or write), and eviction inspects them under the
// write lock, so a pinned frame can never be chosen as a victim. Unpin is
// lock-free.
//
// The readahead workers (prefetch.go) obey the same order: page reads happen
// with no locks held, installs take exactly one stripe mutex, and the
// prefetch eviction sweep never flushes (so it never touches the WAL mutex).
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
)

// ErrBusy reports that every frame is pinned and none can be evicted, even
// after the bounded pin wait.
var ErrBusy = errors.New("buffer: all frames pinned")

// ErrWriteConflict reports that a transaction tried to update a page that
// carries uncommitted changes of another transaction. Document-granularity
// strict 2PL makes this unreachable in normal operation; it guards the
// invariant.
var ErrWriteConflict = errors.New("buffer: page has uncommitted changes of another transaction")

// maxStripes bounds the stripe fan-out. The count is halved until every
// stripe owns at least minStripeFrames frames: striping partitions the
// pool, so a stripe must stay large enough that one statement's transient
// pins can never exhaust it. Tiny test pools (capacity 2–127) collapse to a
// single stripe and keep exact whole-pool eviction semantics.
const (
	maxStripes      = 16
	minStripeFrames = 64
)

// Bounded wait-and-retry for pin pressure: a load that finds every frame in
// the stripe pinned backs off and retries instead of failing the statement,
// up to pinWaitBudget in total.
const (
	pinWaitBudget  = 50 * time.Millisecond
	pinWaitInitial = 200 * time.Microsecond
	pinWaitMax     = 5 * time.Millisecond
)

// Frame is a main-memory copy of one page.
type Frame struct {
	id   sas.PageID
	data []byte

	// pin is the pin count. It is incremented only while holding the owning
	// stripe's mutex (read or write); eviction reads it under the write
	// lock, which excludes pinning, so pin==0 under the write lock means the
	// frame is evictable. Unpin decrements without any lock.
	pin atomic.Int32

	// ref is the clock-sweep reference bit, set on every touch and cleared
	// by the sweeping hand (second chance).
	ref atomic.Bool

	// clockIdx is the frame's position in its stripe's clock ring,
	// maintained under the stripe mutex for O(1) removal.
	clockIdx int

	// prefetched marks a frame installed by the readahead worker that has
	// not yet been touched by a real access. The first touch CASes it off
	// and counts a prefetch hit; eviction or invalidation while still set
	// counts the read as wasted. Both transitions release the frame's share
	// of the resident-prefetch budget.
	prefetched atomic.Bool
}

// ID returns the identity of the page held by the frame.
func (f *Frame) ID() sas.PageID { return f.id }

// Data returns the page bytes. The caller must hold the frame pinned while
// reading or writing, and must hold the owning document's lock (or be the
// sole writer) while writing.
func (f *Frame) Data() []byte { return f.data }

// pageVersion is one committed pre-image on a page's version chain.
type pageVersion struct {
	ts   uint64 // commit timestamp of this content
	data []byte
}

type slotEntry struct {
	layer uint32
	frame *Frame
}

// Stats is the legacy flat view of the buffer-manager counters. The counters
// themselves live in the metrics registry (family "buffer.*"); Stats remains
// as a thin compatibility accessor for existing experiment output.
type Stats struct {
	Hits          uint64 // dereferences answered by the mapped slot
	Faults        uint64 // dereferences that missed the slot mapping
	DiskReads     uint64
	DiskWrites    uint64
	Evictions     uint64
	SnapSaves     uint64 // persistent-snapshot copies taken before overwrite
	VersionsMade  uint64 // pre-images pushed
	VersionsFreed uint64 // pre-images purged
	SnapshotReads uint64 // page reads resolved for snapshot transactions
}

// bufMetrics binds the buffer-manager counters in a metrics registry.
type bufMetrics struct {
	hits           *metrics.Counter
	faults         *metrics.Counter
	diskReads      *metrics.Counter
	diskWrites     *metrics.Counter
	evictions      *metrics.Counter
	snapSaves      *metrics.Counter
	versionsMade   *metrics.Counter
	versionsFreed  *metrics.Counter
	snapshotReads  *metrics.Counter
	versionsLive   *metrics.Gauge
	stripeLockWait *metrics.Counter // ns spent blocked on contended stripe mutexes
	clockSweeps    *metrics.Counter // clock-hand advances during eviction scans
	pinWaits       *metrics.Counter // bounded waits entered because all frames were pinned

	prefetchIssued  *metrics.Counter // pages read from disk and installed by the prefetcher
	prefetchHits    *metrics.Counter // prefetched frames later touched by a real access
	prefetchWasted  *metrics.Counter // prefetched frames evicted or invalidated untouched
	prefetchDropped *metrics.Counter // hints discarded (queue full, budget, raced, stale)
}

func bindBufMetrics(reg *metrics.Registry) bufMetrics {
	return bufMetrics{
		hits:           reg.Counter("buffer.hits"),
		faults:         reg.Counter("buffer.faults"),
		diskReads:      reg.Counter("buffer.disk_reads"),
		diskWrites:     reg.Counter("buffer.disk_writes"),
		evictions:      reg.Counter("buffer.evictions"),
		snapSaves:      reg.Counter("buffer.snap_saves"),
		versionsMade:   reg.Counter("buffer.versions_made"),
		versionsFreed:  reg.Counter("buffer.versions_freed"),
		snapshotReads:  reg.Counter("buffer.snapshot_reads"),
		versionsLive:   reg.Gauge("buffer.versions_live"),
		stripeLockWait: reg.Counter("buffer.stripe_lock_wait_ns"),
		clockSweeps:    reg.Counter("buffer.clock_sweeps"),
		pinWaits:       reg.Counter("buffer.pin_waits"),

		prefetchIssued:  reg.Counter("buffer.prefetch_issued"),
		prefetchHits:    reg.Counter("buffer.prefetch_hits"),
		prefetchWasted:  reg.Counter("buffer.prefetch_wasted"),
		prefetchDropped: reg.Counter("buffer.prefetch_dropped"),
	}
}

// stripe is one lock shard of the pool: the frames, clock ring, slot-table
// share and versioning state for every page whose index hashes here.
type stripe struct {
	mu sync.RWMutex

	capacity int
	frames   map[sas.PageID]*Frame
	clock    []*Frame // clock-sweep ring; positions tracked in Frame.clockIdx
	hand     int

	// slots is this stripe's share of the emulated process virtual address
	// range: slots[pageIndex>>stripeShift] records which layer's page is
	// currently mapped at that address. Equality-basis mapping means a
	// pointer's page index IS its slot index.
	slots []slotEntry

	// Versioning state. It is keyed by page identity, not by frame, so it
	// survives eviction.
	pageTS  map[sas.PageID]uint64        // commit TS of the live content
	dirtyBy map[sas.PageID]uint64        // txn holding uncommitted changes
	dirty   map[sas.PageID]bool          // live content differs from disk
	chains  map[sas.PageID][]pageVersion // newest first
}

// Manager is the buffer manager.
type Manager struct {
	pf   *pagefile.File
	snap *pagefile.SnapArea

	capacity    int
	stripes     []*stripe
	stripeMask  uint32
	stripeShift uint

	// txnPages maps a transaction to the set of pages it dirtied, across all
	// stripes. Guarded by txnMu, which is never held together with a stripe
	// mutex.
	txnMu    sync.Mutex
	txnPages map[uint64]map[sas.PageID]struct{}

	walFlush    func() error    // flush the WAL; called before any page write (WAL rule)
	activeSnaps func() []uint64 // timestamps of active snapshots, for purge

	// pref is the async readahead machinery (prefetch.go): a bounded worker
	// pool that loads hinted pages into unpinned frames ahead of the scan.
	pref prefetcher

	reg *metrics.Registry
	met bufMetrics
}

// New creates a buffer manager over the data file and snapshot area with
// room for capacity frames, reporting into a private metrics registry.
func New(pf *pagefile.File, snap *pagefile.SnapArea, capacity int) *Manager {
	return NewWithMetrics(pf, snap, capacity, nil)
}

// NewWithMetrics creates a buffer manager that reports its counters into reg
// under the "buffer." family (nil = a fresh private registry).
func NewWithMetrics(pf *pagefile.File, snap *pagefile.SnapArea, capacity int, reg *metrics.Registry) *Manager {
	if capacity < 2 {
		capacity = 2
	}
	reg = metrics.OrNew(reg)
	n := maxStripes
	for n > 1 && capacity/n < minStripeFrames {
		n /= 2
	}
	shift := uint(0)
	for 1<<shift < n {
		shift++
	}
	m := &Manager{
		reg:         reg,
		met:         bindBufMetrics(reg),
		pf:          pf,
		snap:        snap,
		capacity:    capacity,
		stripes:     make([]*stripe, n),
		stripeMask:  uint32(n - 1),
		stripeShift: shift,
		txnPages:    make(map[uint64]map[sas.PageID]struct{}),
	}
	m.pref.init(capacity)
	slotsPer := (sas.PagesPerLayer + n - 1) / n
	base, extra := capacity/n, capacity%n
	for i := range m.stripes {
		cap := base
		if i < extra {
			cap++
		}
		m.stripes[i] = &stripe{
			capacity: cap,
			frames:   make(map[sas.PageID]*Frame),
			slots:    make([]slotEntry, slotsPer),
			pageTS:   make(map[sas.PageID]uint64),
			dirtyBy:  make(map[sas.PageID]uint64),
			dirty:    make(map[sas.PageID]bool),
			chains:   make(map[sas.PageID][]pageVersion),
		}
	}
	return m
}

func (m *Manager) stripeFor(page uint32) *stripe {
	return m.stripes[page&m.stripeMask]
}

// lock acquires the stripe write lock, accounting contention into
// buffer.stripe_lock_wait_ns. The TryLock fast path keeps the uncontended
// case free of clock reads.
func (s *stripe) lock(m *Manager) {
	if s.mu.TryLock() {
		return
	}
	start := time.Now()
	s.mu.Lock()
	m.met.stripeLockWait.Add(uint64(time.Since(start)))
}

// rlock acquires the stripe read lock, accounting contention like lock.
func (s *stripe) rlock(m *Manager) {
	if s.mu.TryRLock() {
		return
	}
	start := time.Now()
	s.mu.RLock()
	m.met.stripeLockWait.Add(uint64(time.Since(start)))
}

// SetWALFlush installs the hook that flushes the write-ahead log; it is
// invoked before any dirty page reaches the data file.
func (m *Manager) SetWALFlush(fn func() error) { m.walFlush = fn }

// SetActiveSnapshots installs the provider of active snapshot timestamps
// used by version purging.
func (m *Manager) SetActiveSnapshots(fn func() []uint64) { m.activeSnaps = fn }

// Stats returns a flat copy of the event counters — the compatibility
// accessor over the metrics registry for pre-registry consumers.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:          m.met.hits.Value(),
		Faults:        m.met.faults.Value(),
		DiskReads:     m.met.diskReads.Value(),
		DiskWrites:    m.met.diskWrites.Value(),
		Evictions:     m.met.evictions.Value(),
		SnapSaves:     m.met.snapSaves.Value(),
		VersionsMade:  m.met.versionsMade.Value(),
		VersionsFreed: m.met.versionsFreed.Value(),
		SnapshotReads: m.met.snapshotReads.Value(),
	}
}

// Metrics returns the registry this manager reports into.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Capacity returns the frame-pool capacity.
func (m *Manager) Capacity() int { return m.capacity }

// Stripes returns the lock-stripe count (for tests and experiments).
func (m *Manager) Stripes() int { return len(m.stripes) }

// withPinRetry runs attempt, and on ErrBusy backs off and retries within
// pinWaitBudget so transient pin pressure does not fail statements. attempt
// must not hold any lock when it returns.
func (m *Manager) withPinRetry(attempt func() (*Frame, error)) (*Frame, error) {
	f, err := attempt()
	if !errors.Is(err, ErrBusy) {
		return f, err
	}
	m.met.pinWaits.Inc()
	deadline := time.Now().Add(pinWaitBudget)
	backoff := pinWaitInitial
	for {
		time.Sleep(backoff)
		f, err = attempt()
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			return f, err
		}
		if backoff < pinWaitMax {
			backoff *= 2
		}
	}
}

// Deref resolves a SAS pointer to its page frame through the layer-mapping
// fast path: the pointer's page index selects the slot; if the resident
// layer matches the pointer's layer the dereference costs one comparison
// (the paper's "comparable to a conventional pointer"). A mismatch is the
// emulated memory fault handled by loading the page. The frame is returned
// pinned; the caller must Unpin it.
func (m *Manager) Deref(p sas.XPtr) (*Frame, error) {
	f, _, err := m.DerefTrack(p)
	return f, err
}

// DerefTrack is Deref additionally reporting whether the dereference
// faulted (layer mismatch → page load), so callers can attribute faults to
// the active trace span.
func (m *Manager) DerefTrack(p sas.XPtr) (*Frame, bool, error) {
	if p.IsNil() {
		return nil, false, errors.New("buffer: dereference of nil XPtr")
	}
	page := p.PageIndex()
	s := m.stripeFor(page)
	slot := int(page >> m.stripeShift)
	layer := p.Layer()

	// Fast path: the slot maps this layer. A read lock suffices — pinning
	// is an atomic increment and eviction needs the write lock.
	s.rlock(m)
	if e := &s.slots[slot]; e.frame != nil && e.layer == layer {
		f := e.frame
		f.ref.Store(true)
		f.pin.Add(1)
		s.mu.RUnlock()
		m.met.hits.Inc()
		m.notePrefetchTouch(f)
		return f, false, nil
	}
	s.mu.RUnlock()

	// Memory fault: load the page and remap the slot.
	m.met.faults.Inc()
	f, err := m.withPinRetry(func() (*Frame, error) {
		s.lock(m)
		defer s.mu.Unlock()
		if e := &s.slots[slot]; e.frame != nil && e.layer == layer {
			// Another goroutine mapped it between our locks.
			f := e.frame
			f.ref.Store(true)
			f.pin.Add(1)
			return f, nil
		}
		f, err := s.load(m, sas.PageIDOf(p))
		if err != nil {
			return nil, err
		}
		s.slots[slot] = slotEntry{layer: layer, frame: f}
		f.pin.Add(1)
		return f, nil
	})
	if err != nil {
		return nil, true, err
	}
	return f, true, nil
}

// Pin loads (if necessary) and pins the page. Unlike Deref it does not go
// through or update the layer mapping.
func (m *Manager) Pin(id sas.PageID) (*Frame, error) {
	s := m.stripeFor(id.Page)
	s.rlock(m)
	if f := s.frames[id]; f != nil {
		f.ref.Store(true)
		f.pin.Add(1)
		s.mu.RUnlock()
		m.notePrefetchTouch(f)
		return f, nil
	}
	s.mu.RUnlock()
	return m.withPinRetry(func() (*Frame, error) {
		s.lock(m)
		defer s.mu.Unlock()
		f, err := s.load(m, id)
		if err != nil {
			return nil, err
		}
		f.pin.Add(1)
		return f, nil
	})
}

// Unpin releases a pin taken by Pin, Deref, PinWrite or PinNew. It is
// lock-free.
func (m *Manager) Unpin(f *Frame) {
	if f.pin.Add(-1) < 0 {
		panic("buffer: Unpin of unpinned frame")
	}
}

// PinWrite prepares the page for modification by txn: on the first touch it
// pushes the committed pre-image onto the version chain and registers the
// page in the transaction's dirty set. The frame is returned pinned.
func (m *Manager) PinWrite(id sas.PageID, txn uint64) (*Frame, error) {
	if txn == 0 {
		panic("buffer: PinWrite with zero txn id")
	}
	s := m.stripeFor(id.Page)
	f, err := m.withPinRetry(func() (*Frame, error) {
		s.lock(m)
		defer s.mu.Unlock()
		if owner := s.dirtyBy[id]; owner != 0 && owner != txn {
			return nil, fmt.Errorf("%w: page %v owned by txn %d", ErrWriteConflict, id, owner)
		}
		f, err := s.load(m, id)
		if err != nil {
			return nil, err
		}
		if s.dirtyBy[id] != txn {
			pre := make([]byte, sas.PageSize)
			copy(pre, f.data)
			s.chains[id] = append([]pageVersion{{ts: s.pageTS[id], data: pre}}, s.chains[id]...)
			m.met.versionsMade.Inc()
			m.met.versionsLive.Inc()
			s.dirtyBy[id] = txn
			s.purgeChain(m, id)
		}
		s.dirty[id] = true
		f.pin.Add(1)
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	m.txnMu.Lock()
	tp := m.txnPages[txn]
	if tp == nil {
		tp = make(map[sas.PageID]struct{})
		m.txnPages[txn] = tp
	}
	tp[id] = struct{}{}
	m.txnMu.Unlock()
	return f, nil
}

// PinNew prepares a newly allocated page for txn: it behaves like PinWrite
// (so that recycled pages keep a pre-image for snapshot readers and for
// rollback) and zeroes the content. The frame is returned pinned.
func (m *Manager) PinNew(id sas.PageID, txn uint64) (*Frame, error) {
	f, err := m.PinWrite(id, txn)
	if err != nil {
		return nil, err
	}
	data := f.Data()
	for i := range data {
		data[i] = 0
	}
	return f, nil
}

// load returns the frame for id, reading it from disk if absent. The caller
// holds the stripe write lock.
func (s *stripe) load(m *Manager, id sas.PageID) (*Frame, error) {
	if f := s.frames[id]; f != nil {
		f.ref.Store(true)
		m.notePrefetchTouch(f)
		return f, nil
	}
	for len(s.frames) >= s.capacity {
		if err := s.evictOne(m); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, sas.PageSize)}
	f.clockIdx = len(s.clock)
	s.clock = append(s.clock, f)
	s.frames[id] = f
	if err := m.pf.ReadPage(id, f.data); err != nil {
		s.drop(m, f)
		return nil, err
	}
	m.met.diskReads.Inc()
	f.ref.Store(true)
	return f, nil
}

// drop removes the frame from the stripe's clock ring, frame map and slot
// share. The caller holds the stripe write lock.
func (s *stripe) drop(m *Manager, f *Frame) {
	if f.prefetched.CompareAndSwap(true, false) {
		m.met.prefetchWasted.Inc()
		m.pref.resident.Add(-1)
	}
	last := len(s.clock) - 1
	i := f.clockIdx
	s.clock[i] = s.clock[last]
	s.clock[i].clockIdx = i
	s.clock = s.clock[:last]
	if s.hand > last {
		s.hand = 0
	}
	delete(s.frames, f.id)
	if e := &s.slots[int(f.id.Page)>>m.stripeShift]; e.frame == f {
		*e = slotEntry{}
	}
}

// evictOne runs the clock hand until a victim with a clear reference bit
// and no pins is found, writes it back if dirty, and drops it. Two full
// sweeps (clear refs, then reap) suffice; if they do not, every frame is
// pinned. The caller holds the stripe write lock.
func (s *stripe) evictOne(m *Manager) error {
	for i := 0; i < 2*len(s.clock)+1; i++ {
		if s.hand >= len(s.clock) {
			s.hand = 0
		}
		f := s.clock[s.hand]
		s.hand++
		m.met.clockSweeps.Inc()
		if f.pin.Load() > 0 {
			continue
		}
		if f.ref.Swap(false) {
			continue // second chance
		}
		if s.dirty[f.id] {
			if err := s.flushFrame(m, f); err != nil {
				return err
			}
		}
		s.drop(m, f)
		m.met.evictions.Inc()
		return nil
	}
	return ErrBusy
}

// flushFrame writes the frame to the data file, observing the WAL rule and
// the persistent-snapshot save-before-overwrite rule. The caller holds the
// stripe write lock; the WAL, snap-area and pagefile guard themselves, so
// flushes from different stripes proceed concurrently.
func (s *stripe) flushFrame(m *Manager, f *Frame) error {
	if m.walFlush != nil {
		if err := m.walFlush(); err != nil {
			return err
		}
	}
	if m.snap != nil && !m.pf.IsFreshSinceCheckpoint(f.id) && !m.snap.Saved(f.id) {
		// The checkpoint-time content is the current on-disk content: this
		// is the first overwrite since the checkpoint.
		old := make([]byte, sas.PageSize)
		if err := m.pf.ReadPage(f.id, old); err != nil {
			return err
		}
		if err := m.snap.Save(f.id, old); err != nil {
			return err
		}
		m.met.snapSaves.Inc()
	}
	if err := m.pf.WritePage(f.id, f.data); err != nil {
		return err
	}
	m.met.diskWrites.Inc()
	delete(s.dirty, f.id)
	return nil
}

// CommitTxn makes txn's pages committed at commit timestamp cts.
func (m *Manager) CommitTxn(txn, cts uint64) {
	m.txnMu.Lock()
	pages := m.txnPages[txn]
	delete(m.txnPages, txn)
	m.txnMu.Unlock()
	for id := range pages {
		s := m.stripeFor(id.Page)
		s.lock(m)
		delete(s.dirtyBy, id)
		s.pageTS[id] = cts
		s.mu.Unlock()
	}
}

// RollbackTxn restores the pre-images of every page txn dirtied and discards
// the transaction's versions.
func (m *Manager) RollbackTxn(txn uint64) error {
	m.txnMu.Lock()
	pages := m.txnPages[txn]
	delete(m.txnPages, txn)
	m.txnMu.Unlock()
	for id := range pages {
		s := m.stripeFor(id.Page)
		s.lock(m)
		if err := s.rollbackPage(m, id); err != nil {
			s.mu.Unlock()
			return err
		}
		s.mu.Unlock()
	}
	return nil
}

// rollbackPage undoes txn's changes to one page. The caller holds the
// stripe write lock.
func (s *stripe) rollbackPage(m *Manager, id sas.PageID) error {
	chain := s.chains[id]
	if len(chain) > 0 && chain[0].ts == s.pageTS[id] {
		// The chain top is the pre-image pushed by this transaction's
		// first touch: copy it back and pop it.
		f, err := s.load(m, id)
		if err != nil {
			return err
		}
		copy(f.data, chain[0].data)
		if len(chain) == 1 {
			delete(s.chains, id)
		} else {
			s.chains[id] = chain[1:]
		}
		m.met.versionsFreed.Inc()
		m.met.versionsLive.Dec()
		s.dirty[id] = true // disk may hold the discarded bytes
	} else {
		// Freshly allocated page (PinNew): no pre-image to restore. The
		// content is unreachable garbage; zero it defensively.
		if f := s.frames[id]; f != nil {
			for i := range f.data {
				f.data[i] = 0
			}
		}
		s.dirty[id] = true
	}
	delete(s.dirtyBy, id)
	return nil
}

// ReadSnapshot copies the content of the page as of snapshot timestamp
// snapTS into buf. A page that did not exist at the snapshot reads as
// zeros. It runs entirely under the stripe read lock, so snapshot readers
// never block each other — the paper's "read-only transactions are never
// blocked" (§6.3). Copying the live frame under the read lock is safe:
// a writer first sets dirtyBy under the write lock (making the live
// content invisible here) and the commit that clears dirtyBy again takes
// the write lock after the writer's last mutation.
func (m *Manager) ReadSnapshot(id sas.PageID, snapTS uint64, buf []byte) error {
	_, err := m.readSnapshot(id, snapTS, buf, false)
	return err
}

// ReadSnapshotInstall is ReadSnapshot for scans running with chain readahead
// enabled. A miss on the live-visible path reads a sequential window of up
// to `window` file-adjacent pages in one batched pread: the demanded page is
// returned and installed as a regular unpinned frame, and the over-read
// pages are installed as prefetched frames (budget-capped, first eviction
// victims). Scans proceed in rough allocation order, so the over-read pages
// are overwhelmingly the scan's next reads — this is the read-around that
// pays even single-threaded, by replacing per-page preads with one
// sequential pread per window. Plain snapshot reads leave no residency
// footprint; the installs also give the async chain workers a frontier to
// peek past instead of restarting windows at the scan's position.
func (m *Manager) ReadSnapshotInstall(id sas.PageID, snapTS uint64, buf []byte, window int) error {
	coldLive, err := m.readSnapshot(id, snapTS, buf, true)
	if err != nil || !coldLive {
		return err
	}
	if window < 1 {
		window = 1
	}
	if window > prefetchBatchMax {
		window = prefetchBatchMax
	}
	g0 := id.GlobalIndex()
	ids := make([]sas.PageID, window)
	bufs := make([][]byte, window)
	for i := range ids {
		ids[i] = sas.PageIDFromGlobal(g0 + uint64(i))
		bufs[i] = make([]byte, sas.PageSize)
	}
	elig, ts0 := m.prefetchEligibility(ids[1:])
	gen := m.pref.gen.Load()
	if err := m.pf.ReadPages(ids, bufs); err != nil {
		return err
	}
	m.met.diskReads.Inc()
	// Re-validate the demanded bytes: the pread ran without the stripe lock,
	// so any writer activity since the miss (PinWrite sets dirtyBy, a commit
	// bumps pageTS, a competing install makes it resident) sends us back
	// through the locked path instead of trusting a possibly stale read.
	if !m.snapColdStillValid(id, snapTS) {
		_, err := m.readSnapshot(id, snapTS, buf, false)
		return err
	}
	copy(buf, bufs[0])
	m.installSnapshotRead(id, snapTS, bufs[0])
	for i := 1; i < window; i++ {
		if !elig[i-1] {
			continue
		}
		if m.installPrefetched(ids[i], bufs[i], gen, ts0[i-1]) {
			m.met.prefetchIssued.Inc()
		}
	}
	return nil
}

// snapColdStillValid re-checks, under the stripe read lock, that the
// live-visible cold-miss conditions for a snapshot read still hold.
func (m *Manager) snapColdStillValid(id sas.PageID, snapTS uint64) bool {
	s := m.stripeFor(id.Page)
	s.rlock(m)
	defer s.mu.RUnlock()
	return s.frames[id] == nil && s.dirtyBy[id] == 0 && s.pageTS[id] <= snapTS
}

// prefetchEligibility captures, per page, whether a disk read made now may
// later be installed (not resident — which with the dirty ⟹ resident
// invariant also means the disk copy is current) and the page's commit
// timestamp at capture time. An install is refused unless the timestamp is
// still unchanged, so bytes that a concurrent commit (or a flush racing the
// pread) could have made stale never reach the pool.
func (m *Manager) prefetchEligibility(ids []sas.PageID) ([]bool, []uint64) {
	elig := make([]bool, len(ids))
	ts0 := make([]uint64, len(ids))
	for i, id := range ids {
		s := m.stripeFor(id.Page)
		s.rlock(m)
		elig[i] = s.frames[id] == nil && s.dirtyBy[id] == 0
		ts0[i] = s.pageTS[id]
		s.mu.RUnlock()
	}
	return elig, ts0
}

// readSnapshot implements ReadSnapshot; coldLive reports the live-visible
// cold-miss case. With deferDisk the disk read is left to the caller (buf is
// untouched when coldLive is true); otherwise it happens here, under the
// stripe read lock so it cannot race a flush of the same page.
func (m *Manager) readSnapshot(id sas.PageID, snapTS uint64, buf []byte, deferDisk bool) (coldLive bool, err error) {
	if len(buf) != sas.PageSize {
		return false, fmt.Errorf("buffer: ReadSnapshot buffer is %d bytes", len(buf))
	}
	s := m.stripeFor(id.Page)
	s.rlock(m)
	defer s.mu.RUnlock()
	m.met.snapshotReads.Inc()
	if s.dirtyBy[id] == 0 && s.pageTS[id] <= snapTS {
		// The live content is visible.
		if f := s.frames[id]; f != nil {
			f.ref.Store(true)
			m.notePrefetchTouch(f)
			copy(buf, f.data)
			return false, nil
		}
		if deferDisk {
			return true, nil
		}
		if err := m.pf.ReadPage(id, buf); err != nil {
			return false, err
		}
		m.met.diskReads.Inc()
		return true, nil
	}
	for _, v := range s.chains[id] {
		if v.ts <= snapTS {
			copy(buf, v.data)
			return false, nil
		}
	}
	// No version old enough: the page did not exist at the snapshot.
	for i := range buf {
		buf[i] = 0
	}
	return false, nil
}

// installSnapshotRead publishes bytes a snapshot scan just read from disk as
// a regular unpinned frame, taking ownership of data. Correctness of the
// install is re-established under the write lock: dirtyBy == 0 and pageTS
// <= snapTS there mean no commit has touched the page since the snapshot
// began (any later commit timestamp is necessarily above snapTS), so data
// still equals the live content. Room is made with the clean-only sweep —
// like a prefetch install, a snapshot read never flushes a dirty frame to
// get a slot.
func (m *Manager) installSnapshotRead(id sas.PageID, snapTS uint64, data []byte) {
	s := m.stripeFor(id.Page)
	s.lock(m)
	defer s.mu.Unlock()
	if s.frames[id] != nil || s.dirtyBy[id] != 0 || s.pageTS[id] > snapTS {
		return
	}
	for len(s.frames) >= s.capacity {
		if !s.prefetchEvictOne(m) {
			return
		}
	}
	f := &Frame{id: id, data: data}
	f.ref.Store(true)
	f.clockIdx = len(s.clock)
	s.clock = append(s.clock, f)
	s.frames[id] = f
	if e := &s.slots[int(id.Page)>>m.stripeShift]; e.frame == nil {
		*e = slotEntry{layer: id.Layer, frame: f}
	}
}

// purgeChain drops versions of the page that no active snapshot can read.
// A version with timestamp v.ts is the visible one for snapshot s iff
// v.ts <= s and s is below the timestamp of the next newer content. The
// caller holds the stripe write lock.
func (s *stripe) purgeChain(m *Manager, id sas.PageID) {
	chain := s.chains[id]
	if len(chain) == 0 {
		return
	}
	var snaps []uint64
	if m.activeSnaps != nil {
		snaps = m.activeSnaps()
	}
	nextTS := s.pageTS[id] // timestamp of the next newer content (live)
	dirty := s.dirtyBy[id] != 0
	kept := chain[:0]
	for i, v := range chain {
		needed := false
		if dirty && i == 0 {
			// The live content is uncommitted and invisible: the chain top
			// is the visible version for every snapshot at or above its
			// timestamp, and it is also the rollback pre-image. Always keep
			// it.
			needed = true
		} else {
			for _, sn := range snaps {
				if v.ts <= sn && sn < nextTS {
					needed = true
					break
				}
			}
		}
		if needed {
			kept = append(kept, v)
		} else {
			m.met.versionsFreed.Inc()
			m.met.versionsLive.Dec()
		}
		nextTS = v.ts
	}
	if len(kept) == 0 {
		delete(s.chains, id)
	} else {
		s.chains[id] = kept
	}
}

// PurgeAllVersions runs the purge rule over every chain; the transaction
// manager calls it when snapshots advance. Stripes are processed one at a
// time, so concurrent readers on other stripes are unaffected.
func (m *Manager) PurgeAllVersions() {
	for _, s := range m.stripes {
		s.lock(m)
		for id := range s.chains {
			if s.dirtyBy[id] != 0 {
				// The chain top is an uncommitted pre-image; leave the chain
				// to rollback/commit handling.
				continue
			}
			s.purgeChain(m, id)
		}
		s.mu.Unlock()
	}
}

// VersionCount returns the total number of retained pre-images (for tests
// and the E12 experiment).
func (m *Manager) VersionCount() int {
	n := 0
	for _, s := range m.stripes {
		s.rlock(m)
		for _, c := range s.chains {
			n += len(c)
		}
		s.mu.RUnlock()
	}
	return n
}

// FlushCommitted writes every committed dirty page to the data file (with
// snapshot-area saves) and syncs. Uncommitted pages are skipped. The engine
// must quiesce writers first.
func (m *Manager) FlushCommitted() error {
	for _, s := range m.stripes {
		s.lock(m)
		var ids []sas.PageID
		for id := range s.dirty {
			if s.dirtyBy[id] == 0 {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			f, err := s.load(m, id)
			if err != nil {
				s.mu.Unlock()
				return err
			}
			if err := s.flushFrame(m, f); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return m.pf.Sync()
}

// DropVersions discards every version chain and commit-timestamp record.
// Used after recovery and at shutdown, when no snapshots exist.
func (m *Manager) DropVersions() {
	for _, s := range m.stripes {
		s.lock(m)
		s.chains = make(map[sas.PageID][]pageVersion)
		s.pageTS = make(map[sas.PageID]uint64)
		s.mu.Unlock()
	}
	m.met.versionsLive.Set(0)
}

// InvalidateAll drops every frame and mapping without writing anything.
// Used by recovery before re-reading the restored data file, and by hot
// backup tests. Panics if any frame is pinned.
func (m *Manager) InvalidateAll() {
	// Fence the prefetch workers first: any install that locks its stripe
	// after this bump sees a stale generation and refuses, so no prefetched
	// page can reappear behind the invalidation.
	m.pref.gen.Add(1)
	for _, s := range m.stripes {
		s.lock(m)
		for _, f := range s.frames {
			if f.pin.Load() > 0 {
				s.mu.Unlock()
				panic("buffer: InvalidateAll with pinned frames")
			}
			if f.prefetched.Load() {
				m.met.prefetchWasted.Inc()
			}
		}
		s.frames = make(map[sas.PageID]*Frame)
		s.clock = nil
		s.hand = 0
		s.slots = make([]slotEntry, len(s.slots))
		s.dirty = make(map[sas.PageID]bool)
		s.dirtyBy = make(map[sas.PageID]uint64)
		s.chains = make(map[sas.PageID][]pageVersion)
		s.pageTS = make(map[sas.PageID]uint64)
		s.mu.Unlock()
	}
	m.txnMu.Lock()
	m.txnPages = make(map[uint64]map[sas.PageID]struct{})
	m.txnMu.Unlock()
	m.met.versionsLive.Set(0)
	m.pref.resident.Store(0)
}

// DirtyCount returns the number of pages whose live content differs from
// disk.
func (m *Manager) DirtyCount() int {
	n := 0
	for _, s := range m.stripes {
		s.rlock(m)
		n += len(s.dirty)
		s.mu.RUnlock()
	}
	return n
}
