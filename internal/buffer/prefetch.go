package buffer

import (
	"sync"
	"sync/atomic"

	"sedna/internal/sas"
)

// Readahead for block-list scans. Per-schema block lists are explicit
// nextBlock chains, so a scan's future page accesses are known in advance;
// the prefetcher overlaps those reads with the scan's compute. Hints are
// fire-and-forget: the enqueue path never blocks and never does I/O, the
// workers never pin frames, and an install that would require flushing a
// dirty frame or evicting a pinned one is simply dropped. Adjacent pages
// across one worker batch coalesce into single preads via
// pagefile.ReadPages.
//
// Lock discipline: workers read pages with no locks held, then install under
// one stripe write lock, which may cascade into the clean-eviction sweep —
// the same stripe→pagefile order as every other load. The resident budget
// (a fraction of pool capacity, see prefetchBudget) bounds how much of the
// pool untouched prefetched frames may occupy, so readahead can degrade only
// itself, never the hot set.
const (
	prefetchWorkers   = 2
	prefetchQueueSize = 256
	prefetchBatchMax  = 16

	// prefetchPeekBytes is how much of a resident frame a worker copies when
	// peeking a chain link. Chain decoders contractually read only the block
	// header (all next-pointer fields live in the first few dozen bytes), so
	// peeks avoid whole-page memcpys while skipping resident prefixes.
	prefetchPeekBytes = 128

	// prefetchBudgetDiv sets the resident budget to capacity/8 (with a small
	// floor so tiny test pools still exercise the machinery). Frames whose
	// prefetched bit is still set count against it; a real touch or an
	// eviction releases the share.
	prefetchBudgetDiv   = 8
	prefetchBudgetFloor = 4
)

// prefetchReq is one queued hint: load id, and if depth > 1 decode the next
// chain link from its bytes via next and follow it.
type prefetchReq struct {
	id    sas.PageID
	depth int
	next  func(page []byte) (sas.PageID, bool)
	gen   uint64
}

// prefetcher is the Manager's readahead state. Workers start lazily on the
// first hint and stop via StopPrefetch.
type prefetcher struct {
	queue chan prefetchReq
	done  chan struct{}
	wg    sync.WaitGroup

	start   sync.Once
	stopped atomic.Bool
	started atomic.Bool

	// inflight dedupes ids currently queued or being loaded.
	mu       sync.Mutex
	inflight map[sas.PageID]struct{}

	// resident counts frames whose prefetched bit is set; budget caps it.
	resident atomic.Int64
	budget   int

	// gen is bumped by InvalidateAll; installs carrying an older generation
	// are refused.
	gen atomic.Uint64
}

func (p *prefetcher) init(capacity int) {
	p.queue = make(chan prefetchReq, prefetchQueueSize)
	p.done = make(chan struct{})
	p.inflight = make(map[sas.PageID]struct{})
	p.budget = capacity / prefetchBudgetDiv
	if p.budget < prefetchBudgetFloor {
		p.budget = prefetchBudgetFloor
	}
}

func (p *prefetcher) forget(id sas.PageID) {
	p.mu.Lock()
	delete(p.inflight, id)
	p.mu.Unlock()
}

// notePrefetchTouch records a real access to a frame: if the frame was
// installed by the prefetcher and not yet used, this is the prefetch paying
// off. Lock-free; called from the Deref/Pin/load/ReadSnapshot hot paths.
func (m *Manager) notePrefetchTouch(f *Frame) {
	if f.prefetched.CompareAndSwap(true, false) {
		m.met.prefetchHits.Inc()
		m.pref.resident.Add(-1)
	}
}

// PrefetchBudget returns the cap on resident untouched prefetched frames.
func (m *Manager) PrefetchBudget() int { return m.pref.budget }

// PrefetchResident returns the number of resident prefetched frames that no
// real access has touched yet. Always ≤ PrefetchBudget plus transient
// in-flight installs of one worker batch.
func (m *Manager) PrefetchResident() int { return int(m.pref.resident.Load()) }

// Prefetch hints that the pages in ids are about to be read. Cold pages are
// loaded into unpinned frames by background workers; the call itself never
// blocks and never performs I/O.
func (m *Manager) Prefetch(ids []sas.PageID) {
	for _, id := range ids {
		m.prefetchEnqueue(id, 1, nil)
	}
}

// PrefetchChain hints that a scan is about to walk the block chain starting
// at id, up to depth pages. next decodes the successor page from raw page
// bytes (the buffer manager is layout-agnostic; storage supplies the
// decoder); it must depend only on the first prefetchPeekBytes bytes of the
// page, which holds for every block-header layout. Workers follow the chain asynchronously: each loaded page yields
// the next hint, so cold chains are discovered ahead of the scan without the
// scan ever faulting synchronously for the peek.
func (m *Manager) PrefetchChain(id sas.PageID, depth int, next func(page []byte) (sas.PageID, bool)) {
	m.prefetchEnqueue(id, depth, next)
}

func (m *Manager) prefetchEnqueue(id sas.PageID, depth int, next func([]byte) (sas.PageID, bool)) {
	p := &m.pref
	if depth <= 0 || p.stopped.Load() {
		return
	}
	p.start.Do(m.startPrefetchWorkers)
	p.mu.Lock()
	if _, busy := p.inflight[id]; busy {
		p.mu.Unlock()
		return
	}
	p.inflight[id] = struct{}{}
	p.mu.Unlock()
	select {
	case p.queue <- prefetchReq{id: id, depth: depth, next: next, gen: p.gen.Load()}:
	default:
		m.met.prefetchDropped.Inc()
		p.forget(id)
	}
}

func (m *Manager) startPrefetchWorkers() {
	p := &m.pref
	if p.stopped.Load() {
		return
	}
	p.started.Store(true)
	p.wg.Add(prefetchWorkers)
	for i := 0; i < prefetchWorkers; i++ {
		go m.prefetchWorker()
	}
}

// StopPrefetch shuts the readahead workers down and waits for them; safe to
// call whether or not they ever started. Hints arriving afterwards are
// ignored. The engine calls it before closing the data file.
func (m *Manager) StopPrefetch() {
	p := &m.pref
	p.stopped.Store(true)
	// Resolve the start slot: after this Do returns, either the workers are
	// fully started or they never will be.
	p.start.Do(func() {})
	if p.started.CompareAndSwap(true, false) {
		close(p.done)
		p.wg.Wait()
	}
}

func (m *Manager) prefetchWorker() {
	p := &m.pref
	defer p.wg.Done()
	scratch := make([]byte, prefetchPeekBytes)
	batch := make([]prefetchReq, 0, prefetchBatchMax)
	for {
		batch = batch[:0]
		select {
		case <-p.done:
			return
		case r := <-p.queue:
			batch = append(batch, r)
		}
		for len(batch) < prefetchBatchMax {
			select {
			case r := <-p.queue:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		m.prefetchBatch(batch, scratch)
	}
}

// prefetchBatch resolves one drained batch. Chained hints first skip their
// already-resident prefix in place (peeking each frame under the stripe read
// lock, never through the queue — a scan repeatedly hinting a chain it is
// halfway through must not cost one worker round-trip per resident block),
// then window-load from the first cold link. Flat hints are read in one
// coalesced pagefile batch and installed unpinned.
func (m *Manager) prefetchBatch(batch []prefetchReq, scratch []byte) {
	p := &m.pref
	flat := batch[:0]
	for _, r := range batch {
		p.forget(r.id)
		if r.gen != p.gen.Load() {
			m.met.prefetchDropped.Inc()
			continue
		}
		if r.next == nil || r.depth <= 1 {
			if resident, _, _ := m.chainPeekResident(prefetchReq{id: r.id, depth: 1}, scratch); !resident {
				flat = append(flat, r)
			}
			continue
		}
		id, depth := r.id, r.depth
		for depth > 0 {
			resident, nid, follow := m.chainPeekResident(prefetchReq{id: id, depth: depth, next: r.next}, scratch)
			if resident {
				if !follow {
					// Chain end, or a page under active update — unstable.
					break
				}
				id, depth = nid, depth-1
				continue
			}
			if int(p.resident.Load()) >= p.budget {
				m.met.prefetchDropped.Inc()
				break
			}
			// Converging hints resolve to the same first cold link; only one
			// worker window-loads it, the rest drop out here.
			p.mu.Lock()
			_, busy := p.inflight[id]
			if !busy {
				p.inflight[id] = struct{}{}
			}
			p.mu.Unlock()
			if busy {
				break
			}
			nid, ndepth, cont := m.prefetchChainWindow(prefetchReq{id: id, depth: depth, next: r.next, gen: r.gen})
			p.forget(id)
			if !cont {
				break
			}
			id, depth = nid, ndepth
		}
	}
	if len(flat) == 0 {
		return
	}
	ids := make([]sas.PageID, len(flat))
	bufs := make([][]byte, len(flat))
	for i, r := range flat {
		ids[i] = r.id
		bufs[i] = make([]byte, sas.PageSize)
	}
	elig, ts0 := m.prefetchEligibility(ids)
	if err := m.pf.ReadPages(ids, bufs); err != nil {
		for range flat {
			m.met.prefetchDropped.Inc()
		}
		return
	}
	for i, r := range flat {
		if elig[i] && m.installPrefetched(r.id, bufs[i], r.gen, ts0[i]) {
			m.met.prefetchIssued.Inc()
		} else {
			m.met.prefetchDropped.Inc()
		}
	}
}

// prefetchChainWindow resolves one cold chain hint with a speculative
// sequential window: block chains are laid out mostly in allocation order,
// so rather than reading one page per hop (a serial pointer chase the scan
// would immediately overtake), the worker reads the next min(depth,
// prefetchBatchMax) file-adjacent pages in a single coalesced pread and then
// walks the real chain through that window, installing only pages the chain
// actually visits. Window pages off the chain are discarded unpublished —
// over-read bytes cost one already-paid sequential pread, never a frame.
// When the chain leaves the window (a reallocated or fragmented link) with
// depth to spare, the first out-of-window link and the remaining depth are
// returned with cont=true so the caller keeps following in the same call.
func (m *Manager) prefetchChainWindow(r prefetchReq) (sas.PageID, int, bool) {
	w := r.depth
	if w > prefetchBatchMax {
		w = prefetchBatchMax
	}
	g0 := r.id.GlobalIndex()
	ids := make([]sas.PageID, w)
	bufs := make([][]byte, w)
	for i := range ids {
		ids[i] = sas.PageIDFromGlobal(g0 + uint64(i))
		bufs[i] = make([]byte, sas.PageSize)
	}
	elig, ts0 := m.prefetchEligibility(ids)
	if err := m.pf.ReadPages(ids, bufs); err != nil {
		m.met.prefetchDropped.Inc()
		return sas.PageID{}, 0, false
	}
	seen := make([]bool, w)
	rel, depth := 0, r.depth
	for {
		seen[rel] = true
		// Decode the successor before installing: once the frame is
		// published the bytes are shared and a writer may mutate them.
		var next sas.PageID
		ok := false
		if depth > 1 {
			next, ok = r.next(bufs[rel])
		}
		if elig[rel] && m.installPrefetched(ids[rel], bufs[rel], r.gen, ts0[rel]) {
			m.met.prefetchIssued.Inc()
		} else if rel == 0 {
			m.met.prefetchDropped.Inc()
		}
		depth--
		if !ok {
			return sas.PageID{}, 0, false
		}
		nrel := int64(next.GlobalIndex()) - int64(g0)
		if nrel > 0 && nrel < int64(w) && !seen[nrel] {
			rel = int(nrel)
			continue
		}
		// The chain leaves the speculative window with depth to spare.
		return next, depth, true
	}
}

// chainPeekResident reports whether r.id is already resident, and if the
// hint wants to go deeper, decodes the successor from a copy of the frame.
// The copy is taken under the stripe read lock with dirtyBy == 0, the same
// visibility argument as ReadSnapshot: any past writer's mutations
// happened-before the commit that cleared dirtyBy. A page under active
// update is not followed — its chain is unstable.
func (m *Manager) chainPeekResident(r prefetchReq, scratch []byte) (resident bool, nid sas.PageID, follow bool) {
	s := m.stripeFor(r.id.Page)
	s.rlock(m)
	f := s.frames[r.id]
	if f == nil {
		s.mu.RUnlock()
		return false, sas.PageID{}, false
	}
	if r.depth > 1 && r.next != nil && s.dirtyBy[r.id] == 0 {
		copy(scratch, f.data[:prefetchPeekBytes])
		s.mu.RUnlock()
		nid, ok := r.next(scratch)
		return true, nid, ok
	}
	s.mu.RUnlock()
	return true, sas.PageID{}, false
}

// installPrefetched publishes a freshly read page as an unpinned frame. ts0
// is the page's commit timestamp captured (via prefetchEligibility) before
// the disk read: if it has moved, or an uncommitted writer has appeared, the
// bytes in hand may predate a commit — or be torn by a flush racing the
// lockless pread — so the install is refused. It also refuses — the hint is
// dropped, never retried — when the generation is stale, the page raced to
// residency, the budget is spent, or making room would require flushing a
// dirty frame or touching a pinned one. The frame starts with a clear
// reference bit, so an untouched prefetched page is the clock's first
// victim under pressure.
func (m *Manager) installPrefetched(id sas.PageID, data []byte, gen uint64, ts0 uint64) bool {
	p := &m.pref
	s := m.stripeFor(id.Page)
	s.lock(m)
	defer s.mu.Unlock()
	if p.gen.Load() != gen {
		return false
	}
	if s.frames[id] != nil || s.dirtyBy[id] != 0 || s.pageTS[id] != ts0 {
		return false
	}
	// Reserve a budget share first (CAS, so the bound is hard even with
	// concurrent installs on other stripes); release it on any refusal.
	for {
		cur := p.resident.Load()
		if int(cur) >= p.budget {
			return false
		}
		if p.resident.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	for len(s.frames) >= s.capacity {
		if !s.prefetchEvictOne(m) {
			p.resident.Add(-1)
			return false
		}
	}
	f := &Frame{id: id, data: data}
	f.clockIdx = len(s.clock)
	s.clock = append(s.clock, f)
	s.frames[id] = f
	f.prefetched.Store(true)
	// Map the slot only if it is free: readahead must not unmap a layer
	// another scan is actively dereferencing through this slot.
	if e := &s.slots[int(id.Page)>>m.stripeShift]; e.frame == nil {
		*e = slotEntry{layer: id.Layer, frame: f}
	}
	return true
}

// prefetchEvictOne frees one frame for a prefetch install using the normal
// clock second-chance sweep, except that dirty frames are skipped instead of
// flushed: readahead must never force a hot dirty page to disk (nor take the
// WAL mutex on this path). Returns false when no clean unpinned victim
// exists. The caller holds the stripe write lock.
func (s *stripe) prefetchEvictOne(m *Manager) bool {
	for i := 0; i < 2*len(s.clock)+1; i++ {
		if s.hand >= len(s.clock) {
			s.hand = 0
		}
		f := s.clock[s.hand]
		s.hand++
		m.met.clockSweeps.Inc()
		if f.pin.Load() > 0 || s.dirty[f.id] {
			continue
		}
		if f.ref.Swap(false) {
			continue // second chance
		}
		s.drop(m, f)
		m.met.evictions.Inc()
		return true
	}
	return false
}
