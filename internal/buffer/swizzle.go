package buffer

import (
	"sync"

	"sedna/internal/sas"
)

// SwizzleDeref is the baseline pointer-dereferencing strategy that Sedna's
// layer mapping is designed to beat (§2, §4.2): database addresses and
// virtual addresses have different representations, so every dereference
// must translate a disk pointer to an in-memory frame through a mapping
// structure (the software side of pointer swizzling as in ObjectStore or
// QuickStore). The translation here is a hash-map lookup keyed by the page
// base; the layer-mapped scheme replaces it with an array index plus one
// comparison.
type SwizzleDeref struct {
	mu    sync.Mutex
	m     *Manager
	table map[sas.XPtr]*Frame

	hits, faults uint64
}

// NewSwizzleDeref wraps the buffer manager with the baseline dereferencer.
func NewSwizzleDeref(m *Manager) *SwizzleDeref {
	return &SwizzleDeref{m: m, table: make(map[sas.XPtr]*Frame)}
}

// Deref resolves a SAS pointer through the swizzling table. The frame is
// returned pinned; Unpin through the underlying manager.
func (s *SwizzleDeref) Deref(p sas.XPtr) (*Frame, error) {
	base := p.PageBase()
	s.mu.Lock()
	if f, ok := s.table[base]; ok {
		s.hits++
		s.mu.Unlock()
		// Re-pin through the manager so pin accounting stays correct.
		return s.m.Pin(f.ID())
	}
	s.faults++
	s.mu.Unlock()
	f, err := s.m.Pin(sas.PageIDOf(p))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.table[base] = f
	s.mu.Unlock()
	return f, nil
}

// Invalidate drops a translation (needed when the page is evicted).
func (s *SwizzleDeref) Invalidate(p sas.XPtr) {
	s.mu.Lock()
	delete(s.table, p.PageBase())
	s.mu.Unlock()
}

// Counters returns hit and fault counts.
func (s *SwizzleDeref) Counters() (hits, faults uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.faults
}
