package buffer

import (
	"path/filepath"
	"testing"

	"sedna/internal/pagefile"
	"sedna/internal/sas"
)

func newTestManager(t *testing.T, capacity int) (*Manager, *pagefile.File, *pagefile.SnapArea) {
	t.Helper()
	dir := t.TempDir()
	pf, err := pagefile.Open(filepath.Join(dir, "data.sdb"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := pagefile.OpenSnapArea(filepath.Join(dir, "data.snap"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close(); snap.Close() })
	m := New(pf, snap, capacity)
	t.Cleanup(m.StopPrefetch) // LIFO: workers stop before the files close
	return m, pf, snap
}

func TestDerefFastPathAfterFault(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()
	p := id.Ptr()

	f, err := m.Deref(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	st := m.Stats()
	if st.Faults != 1 || st.Hits != 0 {
		t.Fatalf("first deref: %+v", st)
	}

	f2, err := m.Deref(p.Add(100))
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f2)
	st = m.Stats()
	if st.Hits != 1 {
		t.Fatalf("second deref must hit the mapped slot: %+v", st)
	}
	if f2 != f {
		t.Fatal("same page must resolve to the same frame")
	}
}

func TestDerefLayerMismatchFaults(t *testing.T) {
	m, _, _ := newTestManager(t, 8)
	// Two pages at the same page index in different layers compete for the
	// same mapping slot — the equality-basis mapping of the paper.
	p1 := sas.MakePtr(1, 5*sas.PageSize)
	p2 := sas.MakePtr(2, 5*sas.PageSize)

	f1, err := m.Deref(p1)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f1)
	f2, err := m.Deref(p2)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f2)
	st := m.Stats()
	if st.Faults != 2 {
		t.Fatalf("layer mismatch must fault: %+v", st)
	}
	// p2 now owns the slot; p1 faults again.
	f1b, err := m.Deref(p1)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f1b)
	if got := m.Stats().Faults; got != 3 {
		t.Fatalf("faults = %d, want 3", got)
	}
}

func TestDerefNil(t *testing.T) {
	m, _, _ := newTestManager(t, 8)
	if _, err := m.Deref(sas.NilPtr); err == nil {
		t.Fatal("nil deref must error")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	m, pf, _ := newTestManager(t, 2)
	ids := []sas.PageID{pf.Alloc(), pf.Alloc(), pf.Alloc()}
	for i, id := range ids {
		f, err := m.PinWrite(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		m.Unpin(f)
	}
	// Loading a third page evicted one of the first two; its bytes must be
	// on disk.
	if m.Stats().Evictions == 0 {
		t.Fatal("expected at least one eviction with capacity 2")
	}
	m.CommitTxn(1, 1)
	if err := m.FlushCommitted(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sas.PageSize)
	for i, id := range ids {
		if err := pf.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d first byte = %d", i, buf[0])
		}
	}
}

func TestAllPinnedErrBusy(t *testing.T) {
	m, pf, _ := newTestManager(t, 2)
	f1, err := m.Pin(pf.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Pin(pf.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Pin(pf.Alloc()); err == nil {
		t.Fatal("want ErrBusy when all frames pinned")
	}
	m.Unpin(f1)
	m.Unpin(f2)
}

func TestWriteConflictDetected(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	if _, err := m.PinWrite(id, 2); err == nil {
		t.Fatal("second txn writing the same page must conflict")
	}
}

func TestSnapshotReadSeesOldVersion(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()

	// Txn 1 commits version A at ts 10.
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'A'
	m.Unpin(f)
	m.CommitTxn(1, 10)

	// Txn 2 starts modifying; snapshot at ts 10 must still see A.
	f, err = m.PinWrite(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'B'
	m.Unpin(f)

	buf := make([]byte, sas.PageSize)
	if err := m.ReadSnapshot(id, 10, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'A' {
		t.Fatalf("snapshot at 10 sees %q, want A (uncommitted B invisible)", buf[0])
	}

	// After commit at 20, snapshot 10 still sees A, snapshot 20 sees B.
	m.CommitTxn(2, 20)
	if err := m.ReadSnapshot(id, 10, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'A' {
		t.Fatalf("snapshot at 10 sees %q after commit, want A", buf[0])
	}
	if err := m.ReadSnapshot(id, 20, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'B' {
		t.Fatalf("snapshot at 20 sees %q, want B", buf[0])
	}
}

func TestSnapshotReadOfNonexistentPageIsZero(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'X'
	m.Unpin(f)
	m.CommitTxn(1, 50)

	// A snapshot older than the page's first commit sees zeros.
	buf := make([]byte, sas.PageSize)
	buf[0] = 0xFF
	if err := m.ReadSnapshot(id, 1, buf); err != nil {
		t.Fatal(err)
	}
	// pageTS is 50 > 1 and the only chain version has ts 0 (pre-image of
	// the unallocated page), which IS <= 1, so it reads as zeros.
	if buf[0] != 0 {
		t.Fatalf("pre-creation snapshot sees %#x, want zero page", buf[0])
	}
}

func TestRollbackRestoresPreImage(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()

	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'A'
	m.Unpin(f)
	m.CommitTxn(1, 10)

	f, err = m.PinWrite(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'B'
	m.Unpin(f)
	if err := m.RollbackTxn(2); err != nil {
		t.Fatal(err)
	}

	g, err := m.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unpin(g)
	if g.Data()[0] != 'A' {
		t.Fatalf("after rollback live = %q, want A", g.Data()[0])
	}
	// A new txn can now write the page.
	if _, err := m.PinWrite(id, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackSurvivesEviction(t *testing.T) {
	m, pf, _ := newTestManager(t, 2)
	id := pf.Alloc()
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'A'
	m.Unpin(f)
	m.CommitTxn(1, 5)

	f, err = m.PinWrite(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'B'
	m.Unpin(f)

	// Force the uncommitted page to be evicted (flushed to disk).
	for i := 0; i < 4; i++ {
		g, err := m.Pin(pf.Alloc())
		if err != nil {
			t.Fatal(err)
		}
		m.Unpin(g)
	}
	if err := m.RollbackTxn(2); err != nil {
		t.Fatal(err)
	}
	g, err := m.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unpin(g)
	if g.Data()[0] != 'A' {
		t.Fatalf("after rollback live = %q, want A", g.Data()[0])
	}
}

func TestVersionPurge(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	var snaps []uint64
	m.SetActiveSnapshots(func() []uint64 { return snaps })
	id := pf.Alloc()

	write := func(txn, ts uint64, b byte) {
		f, err := m.PinWrite(id, txn)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = b
		m.Unpin(f)
		m.CommitTxn(txn, ts)
	}

	snaps = []uint64{10}
	write(1, 10, 'A')
	write(2, 20, 'B')
	write(3, 30, 'C')
	m.PurgeAllVersions()
	// Snapshot 10 pins the content as of ts 10 ('A'); newer pre-images are
	// purgeable once superseded.
	buf := make([]byte, sas.PageSize)
	if err := m.ReadSnapshot(id, 10, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'A' {
		t.Fatalf("snapshot 10 sees %q", buf[0])
	}

	// Release the snapshot: everything purges.
	snaps = nil
	m.PurgeAllVersions()
	if n := m.VersionCount(); n != 0 {
		t.Fatalf("versions after purge = %d, want 0", n)
	}
}

func TestPinNewZeroesRecycledPage(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	id := pf.Alloc()
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'Z'
	m.Unpin(f)
	m.CommitTxn(1, 10)
	pf.Free(id)

	id2 := pf.Alloc()
	if id2 != id {
		t.Fatalf("expected recycled page, got %v", id2)
	}
	f, err = m.PinNew(id2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 0 {
		t.Fatal("PinNew must zero the page")
	}
	m.Unpin(f)

	// An old snapshot must still see the pre-recycling content.
	buf := make([]byte, sas.PageSize)
	if err := m.ReadSnapshot(id, 10, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'Z' {
		t.Fatalf("snapshot sees %q, want Z", buf[0])
	}
}

func TestFlushCommittedSkipsUncommitted(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	idC := pf.Alloc()
	idU := pf.Alloc()

	f, err := m.PinWrite(idC, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'C'
	m.Unpin(f)
	m.CommitTxn(1, 1)

	f, err = m.PinWrite(idU, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'U'
	m.Unpin(f)

	if err := m.FlushCommitted(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sas.PageSize)
	if err := pf.ReadPage(idC, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'C' {
		t.Fatal("committed page must be flushed")
	}
	if err := pf.ReadPage(idU, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("uncommitted page must not be flushed by FlushCommitted")
	}
}

func TestSnapSaveBeforeOverwrite(t *testing.T) {
	m, pf, snap := newTestManager(t, 8)
	id := pf.Alloc()

	// Establish checkpoint content.
	f, err := m.PinWrite(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'P' // persistent-snapshot content
	m.Unpin(f)
	m.CommitTxn(1, 1)
	if err := m.FlushCommitted(); err != nil {
		t.Fatal(err)
	}
	// Simulate a checkpoint: master now covers this page, snapshot area reset.
	master := pf.Master()
	master.NextAlloc = pf.NextAlloc()
	if err := pf.WriteMaster(master); err != nil {
		t.Fatal(err)
	}
	if err := snap.Reset(1); err != nil {
		t.Fatal(err)
	}

	// Overwrite after the checkpoint and flush: the snapshot area must have
	// received the checkpoint-time content first.
	f, err = m.PinWrite(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 'N'
	m.Unpin(f)
	m.CommitTxn(2, 2)
	if err := m.FlushCommitted(); err != nil {
		t.Fatal(err)
	}
	if !snap.Saved(id) {
		t.Fatal("overwritten page must be saved to the snapshot area")
	}
	found := false
	err = snap.Restore(func(gotID sas.PageID, data []byte) error {
		if gotID == id {
			found = true
			if data[0] != 'P' {
				t.Fatalf("snapshot copy holds %q, want P", data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("snapshot entry missing")
	}
}

func TestSwizzleDerefBaseline(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	s := NewSwizzleDeref(m)
	id := pf.Alloc()
	p := id.Ptr()

	f, err := s.Deref(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	f, err = s.Deref(p.Add(8))
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	hits, faults := s.Counters()
	if hits != 1 || faults != 1 {
		t.Fatalf("hits=%d faults=%d", hits, faults)
	}
}

func TestInvalidateAll(t *testing.T) {
	m, pf, _ := newTestManager(t, 8)
	f, err := m.Pin(pf.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f)
	m.InvalidateAll()
	if m.DirtyCount() != 0 {
		t.Fatal("InvalidateAll must clear dirty state")
	}
	st := m.Stats()
	// A deref after invalidation faults again.
	f2, err := m.Deref(sas.MakePtr(1, sas.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	m.Unpin(f2)
	if m.Stats().Faults != st.Faults+1 {
		t.Fatal("deref after InvalidateAll must fault")
	}
}
