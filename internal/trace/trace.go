// Package trace is the per-query lens over the engine: a dependency-free,
// low-overhead span tracer. A statement execution opens a Trace whose spans
// nest through the query pipe (parse, analyze, rewrite, per-operator
// execution) and down into the storage layers (buffer faults, WAL fsyncs,
// lock waits). Counter deltas from the metrics registry are snapshotted over
// the trace window, so a trace also shows what the whole engine did while
// the statement ran.
//
// The disabled path costs one nil check: every Span method is safe on a nil
// receiver, and Tracer.Start returns nil unless tracing or the slow-query
// threshold is on. Completed traces land in a bounded in-memory ring;
// over-threshold traces are additionally retained in a slow ring and
// serialized as JSONL to the slow-query log.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/metrics"
)

// Attr is one typed span attribute: either a string or an int64 value.
type Attr struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Int int64  `json:"int,omitempty"`
	// IsInt distinguishes an integer attribute from a string one (an int
	// attribute may legitimately be zero).
	IsInt bool `json:"is_int,omitempty"`
}

// Span is one timed region of a trace. Spans nest. A span's mutators are
// guarded by a small mutex: the parallel query executor lets several worker
// goroutines attach children and accumulate event attributes on the same
// span (e.g. buffer faults attributed through the transaction's event
// span), so single-goroutine discipline no longer holds. The lock is
// uncontended on serial statements. All methods are no-ops on a nil
// receiver; reading a finished trace needs no locking (workers are joined
// before the trace is rendered).
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"` // offset from the trace start
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	mu     sync.Mutex
	parent *Span
	t0     time.Time // trace epoch, copied to children
	start  time.Time
	ended  bool
}

// Child opens a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, StartNs: now.Sub(s.t0).Nanoseconds(), parent: s, t0: s.t0, start: now}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// ChildDone records an already-measured region (e.g. a parse that finished
// before the trace opened) as an ended child span.
func (s *Span) ChildDone(name string, durNs int64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, DurNs: durNs, parent: s, t0: s.t0, ended: true}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.DurNs = time.Since(s.start).Nanoseconds()
	}
	s.mu.Unlock()
}

// Snapshot deep-copies the span subtree as it stands right now, for live
// introspection of an in-flight statement. Safe to call concurrently with
// the statement's own mutators: each span's fields are copied under its
// mutex. In-flight spans report their duration so far.
func (s *Span) Snapshot() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := &Span{Name: s.Name, StartNs: s.StartNs, DurNs: s.DurNs}
	if !s.ended && !s.start.IsZero() {
		c.DurNs = time.Since(s.start).Nanoseconds()
	}
	c.Attrs = append([]Attr(nil), s.Attrs...)
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, ch := range children {
		c.Children = append(c.Children, ch.Snapshot())
	}
	return c
}

// Parent returns the enclosing span (nil for the root).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// SetStr sets a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
	s.mu.Unlock()
}

// SetInt sets an integer attribute, replacing an existing one of the same
// key (a span re-annotated per parallel section keeps one value).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key && s.Attrs[i].IsInt {
			s.Attrs[i].Int = v
			s.mu.Unlock()
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v, IsInt: true})
	s.mu.Unlock()
}

// AddInt adds d to an integer attribute, creating it at d if absent.
func (s *Span) AddInt(key string, d int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key && s.Attrs[i].IsInt {
			s.Attrs[i].Int += d
			s.mu.Unlock()
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: d, IsInt: true})
	s.mu.Unlock()
}

// Trace is one statement's completed (or in-flight) span tree plus the
// engine-wide counter deltas observed over its window.
type Trace struct {
	ID          uint64            `json:"id"`
	Query       string            `json:"query"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurNs       int64             `json:"dur_ns"`
	Slow        bool              `json:"slow,omitempty"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
	Root        *Span             `json:"root"`

	// SessionID and Client identify who ran the statement (the wire session
	// id and the client's remote address); zero/empty for statements run
	// outside a server session. Set by the session before the trace can
	// finish, so slowlog lines join against \sessions output.
	SessionID uint64 `json:"session_id,omitempty"`
	Client    string `json:"client,omitempty"`

	base []uint64 // watch-counter values at Start, indexed like Tracer.watch
}

// SetOrigin attributes the trace to a session and client address. Must be
// called by the statement's coordinating goroutine before Finish.
func (tr *Trace) SetOrigin(sessionID uint64, client string) {
	if tr == nil {
		return
	}
	tr.SessionID = sessionID
	tr.Client = client
}

// ringSize bounds the recent and slow trace rings.
const ringSize = 32

// watchCounter is one registry counter whose delta a trace snapshots.
type watchCounter struct {
	name string
	c    *metrics.Counter
}

// watchedCounters is the registry watch list snapshotted per trace: the
// storage-layer activity that explains where a statement's time went.
var watchedCounters = []string{
	"buffer.hits",
	"buffer.faults",
	"buffer.disk_reads",
	"buffer.disk_writes",
	"buffer.evictions",
	"buffer.snapshot_reads",
	"wal.appends",
	"wal.fsyncs",
	"lock.waits",
	"lock.deadlock_aborts",
}

// Tracer owns the tracing configuration, the trace rings and the slow-query
// log for one database. All methods are safe on a nil receiver and for
// concurrent use.
type Tracer struct {
	enabled atomic.Bool
	slowNs  atomic.Int64
	nextID  atomic.Uint64

	watch []watchCounter

	traces      *metrics.Counter
	slowQueries *metrics.Counter
	logErrors   *metrics.Counter

	mu      sync.Mutex
	recent  [ringSize]*Trace
	recentN uint64
	slow    [ringSize]*Trace
	slowN   uint64

	activeMu sync.Mutex
	active   map[uint64]*Span // txn id → root span of its open trace

	logMu   sync.Mutex
	logPath string
	logF    *os.File
}

// New creates a tracer that snapshots counter deltas from reg (nil = a
// fresh private registry) and reports its own counters there under the
// "trace." family.
func New(reg *metrics.Registry) *Tracer {
	reg = metrics.OrNew(reg)
	t := &Tracer{
		traces:      reg.Counter("trace.traces"),
		slowQueries: reg.Counter("trace.slow_queries"),
		logErrors:   reg.Counter("trace.slowlog_errors"),
		active:      make(map[uint64]*Span),
	}
	for _, name := range watchedCounters {
		t.watch = append(t.watch, watchCounter{name: name, c: reg.Counter(name)})
	}
	return t
}

// SetEnabled turns always-on tracing on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether always-on tracing is on.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold sets the slow-query threshold (0 disables the slow log).
// Queries are traced whenever the threshold is on, so a slow one has a full
// trace to log.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNs.Store(int64(d))
	}
}

// SlowThresholdNs returns the slow-query threshold in nanoseconds.
func (t *Tracer) SlowThresholdNs() int64 {
	if t == nil {
		return 0
	}
	return t.slowNs.Load()
}

// SetSlowLogPath sets where slow traces are appended as JSONL ("" disables
// the file, rings still fill).
func (t *Tracer) SetSlowLogPath(path string) {
	if t == nil {
		return
	}
	t.logMu.Lock()
	defer t.logMu.Unlock()
	if t.logF != nil {
		t.logF.Close()
		t.logF = nil
	}
	t.logPath = path
}

// Active reports whether Start would open a trace.
func (t *Tracer) Active() bool {
	return t != nil && (t.enabled.Load() || t.slowNs.Load() > 0)
}

// Start opens a trace for a statement, or returns nil when tracing is off —
// the disabled path's single check.
func (t *Tracer) Start(query string) *Trace {
	if !t.Active() {
		return nil
	}
	return t.start(query)
}

// StartForced opens a trace regardless of configuration (PROFILE).
func (t *Tracer) StartForced(query string) *Trace {
	if t == nil {
		return nil
	}
	return t.start(query)
}

func (t *Tracer) start(query string) *Trace {
	now := time.Now()
	tr := &Trace{
		ID:          t.nextID.Add(1),
		Query:       query,
		StartUnixNs: now.UnixNano(),
		Root:        &Span{Name: "statement", t0: now, start: now},
		base:        make([]uint64, len(t.watch)),
	}
	for i, w := range t.watch {
		tr.base[i] = w.c.Value()
	}
	return tr
}

// Finish completes a trace: the root span is ended (unless already ended by
// the caller, whose duration then stands), counter deltas are attached, the
// trace joins the recent ring, and — when its duration meets a non-zero
// slow threshold — the slow ring and the JSONL slow log.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Root.End()
	tr.DurNs = tr.Root.DurNs
	for i, w := range t.watch {
		if d := w.c.Value() - tr.base[i]; d != 0 {
			if tr.Counters == nil {
				tr.Counters = make(map[string]uint64)
			}
			tr.Counters[w.name] = d
		}
	}
	tr.base = nil
	t.traces.Inc()
	thr := t.slowNs.Load()
	tr.Slow = thr > 0 && tr.DurNs >= thr
	t.mu.Lock()
	t.recent[t.recentN%ringSize] = tr
	t.recentN++
	if tr.Slow {
		t.slow[t.slowN%ringSize] = tr
		t.slowN++
	}
	t.mu.Unlock()
	if tr.Slow {
		t.slowQueries.Inc()
		t.appendSlowLog(tr)
	}
}

func (t *Tracer) appendSlowLog(tr *Trace) {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	if t.logPath == "" {
		return
	}
	if t.logF == nil {
		f, err := os.OpenFile(t.logPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			t.logErrors.Inc()
			return
		}
		t.logF = f
	}
	line, err := json.Marshal(tr)
	if err != nil {
		t.logErrors.Inc()
		return
	}
	line = append(line, '\n')
	if _, err := t.logF.Write(line); err != nil {
		t.logErrors.Inc()
	}
}

// Close releases the slow-log file handle.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.logMu.Lock()
	defer t.logMu.Unlock()
	if t.logF != nil {
		err := t.logF.Close()
		t.logF = nil
		return err
	}
	return nil
}

// Recent returns up to ringSize recently completed traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringSlice(&t.recent, t.recentN)
}

// Slow returns up to ringSize retained slow traces, newest first.
func (t *Tracer) Slow() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringSlice(&t.slow, t.slowN)
}

func ringSlice(ring *[ringSize]*Trace, total uint64) []*Trace {
	n := total
	if n > ringSize {
		n = ringSize
	}
	out := make([]*Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, ring[(total-1-i)%ringSize])
	}
	return out
}

// SetActive registers the root span of a transaction's open trace, so
// layers that only know the transaction id (the lock manager) can attach
// child spans. Only touched at trace start/finish and on slow paths.
func (t *Tracer) SetActive(txnID uint64, s *Span) {
	if t == nil {
		return
	}
	t.activeMu.Lock()
	if s == nil {
		delete(t.active, txnID)
	} else {
		t.active[txnID] = s
	}
	t.activeMu.Unlock()
}

// ActiveFor returns the span registered for a transaction (nil if none).
func (t *Tracer) ActiveFor(txnID uint64) *Span {
	if t == nil {
		return nil
	}
	t.activeMu.Lock()
	s := t.active[txnID]
	t.activeMu.Unlock()
	return s
}

// ---- rendering ----

// WriteText renders the trace as an indented span tree with durations and
// attributes, followed by the counter deltas.
func (tr *Trace) WriteText(w io.Writer) error {
	if tr == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "trace %d dur=%s slow=%v\n  query: %s\n",
		tr.ID, time.Duration(tr.DurNs), tr.Slow, tr.Query); err != nil {
		return err
	}
	if err := writeSpan(w, tr.Root, 1); err != nil {
		return err
	}
	if len(tr.Counters) > 0 {
		names := make([]string, 0, len(tr.Counters))
		for name := range tr.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		if _, err := fmt.Fprintf(w, "  counters:"); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, " %s=%d", name, tr.Counters[name]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func writeSpan(w io.Writer, s *Span, depth int) error {
	if s == nil {
		return nil
	}
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	fmt.Fprintf(&sb, "%s dur=%s", s.Name, time.Duration(s.DurNs))
	for _, a := range s.Attrs {
		if a.IsInt {
			fmt.Fprintf(&sb, " %s=%d", a.Key, a.Int)
		} else {
			fmt.Fprintf(&sb, " %s=%s", a.Key, a.Str)
		}
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the trace as a string.
func (tr *Trace) Text() string {
	var sb strings.Builder
	_ = tr.WriteText(&sb)
	return sb.String()
}
