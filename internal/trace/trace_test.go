package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sedna/internal/metrics"
)

func TestNilReceiversAreSafe(t *testing.T) {
	var tr *Tracer
	tr.SetEnabled(true)
	tr.SetSlowThreshold(time.Second)
	tr.SetSlowLogPath("x")
	if tr.Active() || tr.Enabled() {
		t.Fatal("nil tracer reports active")
	}
	if tr.Start("q") != nil || tr.StartForced("q") != nil {
		t.Fatal("nil tracer started a trace")
	}
	tr.Finish(nil)
	tr.SetActive(1, nil)
	if tr.ActiveFor(1) != nil {
		t.Fatal("nil tracer has an active span")
	}
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer has traces")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var s *Span
	s.End()
	s.SetStr("k", "v")
	s.SetInt("k", 1)
	s.AddInt("k", 1)
	if s.Child("c") != nil || s.ChildDone("c", 1) != nil || s.Parent() != nil {
		t.Fatal("nil span produced a span")
	}
}

func TestStartDisabledReturnsNil(t *testing.T) {
	tr := New(nil)
	if tr.Active() {
		t.Fatal("fresh tracer is active")
	}
	if got := tr.Start("q"); got != nil {
		t.Fatalf("Start on disabled tracer = %v, want nil", got)
	}
	// A slow threshold alone activates tracing, so slow queries have a
	// full trace to log.
	tr.SetSlowThreshold(time.Millisecond)
	if tr.Start("q") == nil {
		t.Fatal("Start with slow threshold set returned nil")
	}
	tr.SetSlowThreshold(0)
	tr.SetEnabled(true)
	if tr.Start("q") == nil {
		t.Fatal("Start with tracing enabled returned nil")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := New(nil)
	tr.SetEnabled(true)
	trace := tr.Start("doc(\"x\")//y")
	root := trace.Root
	c1 := root.Child("analyze")
	c1.End()
	c2 := root.Child("execute")
	step := c2.Child("step child::y")
	step.SetInt("nodes", 3)
	step.AddInt("nodes", 2)
	step.SetStr("mode", "structural")
	if step.Parent() != c2 {
		t.Fatal("parent link broken")
	}
	step.End()
	c2.End()
	tr.Finish(trace)

	if len(root.Children) != 2 || root.Children[1].Children[0] != step {
		t.Fatal("span tree shape wrong")
	}
	if len(step.Attrs) != 2 {
		t.Fatalf("attrs = %v", step.Attrs)
	}
	if a := step.Attrs[0]; a.Key != "nodes" || !a.IsInt || a.Int != 5 {
		t.Fatalf("AddInt did not accumulate: %+v", a)
	}
	if trace.DurNs <= 0 || root.DurNs != trace.DurNs {
		t.Fatalf("durations: trace=%d root=%d", trace.DurNs, root.DurNs)
	}
	text := trace.Text()
	for _, want := range []string{"statement", "analyze", "step child::y", "nodes=5", "mode=structural"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestCounterDeltas(t *testing.T) {
	reg := metrics.OrNew(nil)
	hits := reg.Counter("buffer.hits")
	hits.Add(10)
	tr := New(reg)
	tr.SetEnabled(true)
	trace := tr.Start("q")
	hits.Add(7)
	tr.Finish(trace)
	if got := trace.Counters["buffer.hits"]; got != 7 {
		t.Fatalf("buffer.hits delta = %d, want 7", got)
	}
	// Counters that did not move are omitted.
	if _, ok := trace.Counters["wal.fsyncs"]; ok {
		t.Fatal("zero-delta counter present")
	}
}

func TestRecentRingNewestFirst(t *testing.T) {
	tr := New(nil)
	tr.SetEnabled(true)
	const total = ringSize + 9
	for i := 0; i < total; i++ {
		trace := tr.Start(fmt.Sprintf("q%d", i))
		tr.Finish(trace)
	}
	recent := tr.Recent()
	if len(recent) != ringSize {
		t.Fatalf("len(recent) = %d, want %d", len(recent), ringSize)
	}
	for i, trace := range recent {
		want := fmt.Sprintf("q%d", total-1-i)
		if trace.Query != want {
			t.Fatalf("recent[%d].Query = %q, want %q", i, trace.Query, want)
		}
	}
}

// finishWithDur completes a trace pretending it ran for dur: End is
// idempotent, so a pre-ended root with a hand-set duration stands.
func finishWithDur(tr *Tracer, trace *Trace, dur time.Duration) {
	trace.Root.End()
	trace.Root.DurNs = dur.Nanoseconds()
	tr.Finish(trace)
}

func TestSlowThresholdEdges(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "slowlog.jsonl")
	tr := New(nil)
	tr.SetSlowLogPath(logPath)
	defer tr.Close()

	// threshold = 0: nothing is slow, however long it took.
	tr.SetEnabled(true)
	trace := tr.StartForced("q-disabled")
	finishWithDur(tr, trace, time.Hour)
	if trace.Slow {
		t.Fatal("threshold=0 marked a trace slow")
	}

	tr.SetSlowThreshold(50 * time.Millisecond)
	// Just below the threshold: fast.
	trace = tr.StartForced("q-fast")
	finishWithDur(tr, trace, 50*time.Millisecond-time.Nanosecond)
	if trace.Slow {
		t.Fatal("below-threshold trace marked slow")
	}
	// Exactly at the threshold: slow (the bound is inclusive).
	trace = tr.StartForced("q-at")
	finishWithDur(tr, trace, 50*time.Millisecond)
	if !trace.Slow {
		t.Fatal("at-threshold trace not marked slow")
	}
	// Above: slow.
	trace = tr.StartForced("q-above")
	finishWithDur(tr, trace, time.Second)
	if !trace.Slow {
		t.Fatal("above-threshold trace not marked slow")
	}

	slow := tr.Slow()
	if len(slow) != 2 || slow[0].Query != "q-above" || slow[1].Query != "q-at" {
		t.Fatalf("slow ring = %v", queries(slow))
	}

	// The slow log holds one JSONL line per slow trace, round-trippable.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2", len(lines))
	}
	var logged Trace
	if err := json.Unmarshal([]byte(lines[0]), &logged); err != nil {
		t.Fatal(err)
	}
	if logged.Query != "q-at" || !logged.Slow || logged.Root == nil {
		t.Fatalf("logged trace = %+v", logged)
	}
}

func queries(traces []*Trace) []string {
	out := make([]string, len(traces))
	for i, tr := range traces {
		out[i] = tr.Query
	}
	return out
}

// TestConcurrentTracing exercises the rings, the active-span map and the
// configuration knobs from many goroutines; run under -race.
func TestConcurrentTracing(t *testing.T) {
	tr := New(nil)
	tr.SetEnabled(true)
	tr.SetSlowThreshold(time.Nanosecond) // everything is slow
	tr.SetSlowLogPath(filepath.Join(t.TempDir(), "slowlog.jsonl"))
	defer tr.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trace := tr.Start(fmt.Sprintf("g%d-q%d", g, i))
				s := trace.Root.Child("work")
				tr.SetActive(uint64(g), trace.Root)
				if got := tr.ActiveFor(uint64(g)); got == nil {
					t.Error("active span lost")
				}
				s.End()
				tr.SetActive(uint64(g), nil)
				tr.Finish(trace)
				_ = tr.Recent()
				_ = tr.Slow()
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Recent()) != ringSize || len(tr.Slow()) != ringSize {
		t.Fatalf("rings not full: recent=%d slow=%d", len(tr.Recent()), len(tr.Slow()))
	}
}
