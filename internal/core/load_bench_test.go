package core

import (
	"strings"
	"testing"

	"sedna/internal/xmlgen"
)

func BenchmarkLoadLibrary(b *testing.B) {
	doc := xmlgen.LibraryString(1000, 1)
	for i := 0; i < b.N; i++ {
		db, err := Open(b.TempDir(), Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		tx, _ := db.Begin()
		if _, err := tx.LoadXML("lib", strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
		db.Close()
	}
}
