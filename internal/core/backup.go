package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Hot backup (§6.5). A full backup checkpoints the database and copies the
// data file, the catalog snapshot and the write-ahead log; an incremental
// backup copies only the log bytes appended since the previous backup (plus
// the current catalog snapshots), which is cheap when the update rate is
// low. Restoring applies the base files and concatenates the chosen prefix
// of incremental log segments, so replaying fewer segments gives
// point-in-time recovery; the regular two-step recovery then brings the
// restored database to a consistent state.
//
// The paper solves the "split-block problem" (copying a page while it is
// concurrently rewritten) with additional logging; this reproduction copies
// under the quiescing latch instead, which excludes concurrent flushes for
// the duration of the copy. The behavioural contract — online backup without
// stopping the database process — is preserved: sessions resume as soon as
// the copy finishes.

// BackupManifest records what a backup directory contains.
type BackupManifest struct {
	MetaGen      uint64          // catalog generation of the base backup
	WalSize      uint64          // log size at base-backup time
	DurableLSN   uint64          // exact durable LSN the backup's log ends at
	Incrementals []BackupSegment // ordered incremental log segments
}

// BackupSegment is one incremental log copy.
type BackupSegment struct {
	File string
	From uint64 // log offset range [From, To)
	To   uint64
}

const manifestName = "backup.json"

// Backup takes a full hot backup into destDir (created if needed).
func (db *Database) Backup(destDir string) error {
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	master := db.pf.Master()
	if err := copyFile(filepath.Join(db.dir, "data.sdb"), filepath.Join(destDir, "data.sdb")); err != nil {
		return err
	}
	metaFileName := fmt.Sprintf("meta.%d", master.MetaGen)
	if err := copyFile(filepath.Join(db.dir, metaFileName), filepath.Join(destDir, metaFileName)); err != nil {
		return err
	}
	if err := copyFile(filepath.Join(db.dir, "data.wal"), filepath.Join(destDir, "data.wal")); err != nil {
		return err
	}
	// Under the quiesce latch after a checkpoint the log is fully flushed,
	// but record the durable LSN explicitly rather than assuming Size ==
	// DurableLSN: replication seeds a replica from this backup and must
	// resume streaming at exactly the LSN the copied log ends at.
	m := BackupManifest{MetaGen: master.MetaGen, WalSize: db.log.Size(), DurableLSN: db.log.DurableLSN()}
	return writeManifest(destDir, &m)
}

// BackupIncremental appends the log bytes written since the last backup (or
// last incremental) to the backup directory. The database stays fully
// available; only the log tail is fixated and copied.
func (db *Database) BackupIncremental(destDir string) error {
	m, err := readManifest(destDir)
	if err != nil {
		return fmt.Errorf("core: incremental backup requires a full backup first: %w", err)
	}
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	// Fixate the log (§6.5: "log is fixated and its files are copied").
	if err := db.logFlush(); err != nil {
		return err
	}
	from := m.WalSize
	for _, seg := range m.Incrementals {
		if seg.To > from {
			from = seg.To
		}
	}
	to := db.log.Size()
	if to <= from {
		return nil // nothing new
	}
	name := fmt.Sprintf("incr-%03d.wal", len(m.Incrementals)+1)
	if err := copyFileRange(filepath.Join(db.dir, "data.wal"), filepath.Join(destDir, name), int64(from), int64(to)); err != nil {
		return err
	}
	// The newest catalog snapshot may have advanced past the base; copy any
	// meta generations not yet present.
	master := db.pf.Master()
	metaFileName := fmt.Sprintf("meta.%d", master.MetaGen)
	if _, err := os.Stat(filepath.Join(destDir, metaFileName)); os.IsNotExist(err) {
		if err := copyFile(filepath.Join(db.dir, metaFileName), filepath.Join(destDir, metaFileName)); err != nil {
			return err
		}
	}
	m.Incrementals = append(m.Incrementals, BackupSegment{File: name, From: from, To: to})
	return writeManifest(destDir, m)
}

func (db *Database) logFlush() error { return db.log.Flush() }

// Restore materializes a database directory from a backup. upto selects how
// many incremental segments to apply (-1 = all), giving point-in-time
// restore at incremental-segment granularity. The restored directory is
// opened with Open, which runs recovery.
func Restore(backupDir, destDir string, upto int) error {
	m, err := readManifest(backupDir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	if err := copyFile(filepath.Join(backupDir, "data.sdb"), filepath.Join(destDir, "data.sdb")); err != nil {
		return err
	}
	// Copy every catalog snapshot present in the backup.
	entries, err := os.ReadDir(backupDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), "meta.%d", &gen); err == nil {
			if err := copyFile(filepath.Join(backupDir, e.Name()), filepath.Join(destDir, e.Name())); err != nil {
				return err
			}
		}
	}
	// Reassemble the log: base log plus the chosen incremental prefix.
	segs := m.Incrementals
	if upto >= 0 && upto < len(segs) {
		segs = segs[:upto]
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].From < segs[j].From })
	out, err := os.Create(filepath.Join(destDir, "data.wal"))
	if err != nil {
		return err
	}
	defer out.Close()
	if err := appendFile(out, filepath.Join(backupDir, "data.wal")); err != nil {
		return err
	}
	for _, seg := range segs {
		if err := appendFile(out, filepath.Join(backupDir, seg.File)); err != nil {
			return err
		}
	}
	return out.Sync()
}

func writeManifest(dir string, m *BackupManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// ReadBackupManifest loads the manifest of a backup directory. Replication
// uses it to learn the durable LSN a seed transfer ends at.
func ReadBackupManifest(dir string) (*BackupManifest, error) {
	return readManifest(dir)
}

func readManifest(dir string) (*BackupManifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m BackupManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func copyFile(src, dst string) error {
	return copyFileRange(src, dst, 0, -1)
}

func copyFileRange(src, dst string, from, to int64) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if _, err := in.Seek(from, io.SeekStart); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer out.Close()
	var r io.Reader = in
	if to >= 0 {
		r = io.LimitReader(in, to-from)
	}
	if _, err := io.Copy(out, r); err != nil {
		return err
	}
	return out.Sync()
}

func appendFile(dst *os.File, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	_, err = io.Copy(dst, in)
	return err
}
