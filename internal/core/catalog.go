// Package core assembles the Sedna engine: the catalog of documents and
// indexes, database open/close with two-step crash recovery (§6.4),
// checkpointing, transaction orchestration over the storage substrate, XML
// bulk loading and serialization, and hot backup (§6.5). It corresponds to
// the "database manager" of the paper's Figure 1.
package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sedna/internal/opt"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// IndexMeta describes a value index over one document path: the nodes
// selected by OnPath are indexed under the key computed by ByPath relative
// to each node, typed as KeyType ("string" or "number").
type IndexMeta struct {
	Name    string
	DocName string
	OnPath  string
	ByPath  string
	KeyType string
	Root    sas.XPtr
}

// Catalog tracks every document and index in the database, plus the
// optimizer state attached to documents: the ANALYZE statistics snapshots
// (persisted through the meta file) and the live access/update activity
// counters (advisory, reset on restart).
type Catalog struct {
	mu        sync.RWMutex
	docs      map[string]*storage.Doc
	docsByID  map[uint32]*storage.Doc
	indexes   map[string]*IndexMeta
	stats     map[string]*opt.DocStats
	activity  map[string]*opt.Activity
	nextDocID uint32
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		docs:      make(map[string]*storage.Doc),
		docsByID:  make(map[uint32]*storage.Doc),
		indexes:   make(map[string]*IndexMeta),
		stats:     make(map[string]*opt.DocStats),
		activity:  make(map[string]*opt.Activity),
		nextDocID: 1,
	}
}

// Doc returns the document by name.
func (c *Catalog) Doc(name string) (*storage.Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[name]
	return d, ok
}

// DocByID returns the document by identifier.
func (c *Catalog) DocByID(id uint32) (*storage.Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docsByID[id]
	return d, ok
}

// DocNames returns the sorted document names.
func (c *Catalog) DocNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for n := range c.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AllocDocID reserves the next document identifier.
func (c *Catalog) AllocDocID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextDocID
	c.nextDocID++
	return id
}

// Put registers a document.
func (c *Catalog) Put(doc *storage.Doc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs[doc.Name] = doc
	c.docsByID[doc.ID] = doc
	if doc.ID >= c.nextDocID {
		c.nextDocID = doc.ID + 1
	}
}

// Delete removes a document.
func (c *Catalog) Delete(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.docs[name]; ok {
		delete(c.docsByID, d.ID)
		delete(c.docs, name)
	}
	delete(c.stats, name)
	delete(c.activity, name)
}

// Index returns index metadata by name.
func (c *Catalog) Index(name string) (*IndexMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	return ix, ok
}

// PutIndex registers an index.
func (c *Catalog) PutIndex(ix *IndexMeta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.indexes[ix.Name] = ix
}

// DeleteIndex removes an index.
func (c *Catalog) DeleteIndex(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.indexes, name)
}

// IndexesOf returns the indexes defined over a document.
func (c *Catalog) IndexesOf(docName string) []*IndexMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*IndexMeta
	for _, ix := range c.indexes {
		if ix.DocName == docName {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DocStats returns the ANALYZE statistics snapshot for a document, or nil
// when the document has never been analyzed.
func (c *Catalog) DocStats(docName string) *opt.DocStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats[docName]
}

// PutDocStats installs (or, with nil, clears) a document's statistics
// snapshot. Snapshots are immutable after installation; ANALYZE replaces the
// whole value.
func (c *Catalog) PutDocStats(docName string, s *opt.DocStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s == nil {
		delete(c.stats, docName)
		return
	}
	c.stats[docName] = s
}

// Activity returns the document's live activity counters, creating them on
// first use. The counters are advisory and reset on restart.
func (c *Catalog) Activity(docName string) *opt.Activity {
	c.mu.RLock()
	a := c.activity[docName]
	c.mu.RUnlock()
	if a != nil {
		return a
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a = c.activity[docName]; a == nil {
		a = &opt.Activity{}
		c.activity[docName] = a
	}
	return a
}

// NoteUpdate records one committed update transaction touching the document.
func (c *Catalog) NoteUpdate(docName string) {
	c.Activity(docName).Updates.Add(1)
}

// NoteAccess records one statement resolving the document.
func (c *Catalog) NoteAccess(docName string) {
	c.Activity(docName).Accesses.Add(1)
}

// ---- catalog snapshot (the meta.<gen> file written at every checkpoint) ----

type metaDoc struct {
	ID                    uint32
	Name                  string
	RootHandle            sas.XPtr
	IndirFirst, IndirLast sas.XPtr
	TextFirst, TextLast   sas.XPtr
	Schema                []schema.Flat
}

type metaFile struct {
	Gen       uint64
	NextDocID uint32
	FreeList  []sas.PageID
	Docs      []metaDoc
	Indexes   []IndexMeta
	Stats     map[string]*opt.DocStats
}

func metaPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("meta.%d", gen))
}

// saveMeta writes the catalog snapshot for generation gen and fsyncs it.
func saveMeta(dir string, gen uint64, c *Catalog, freeList []sas.PageID) error {
	c.mu.RLock()
	mf := metaFile{Gen: gen, NextDocID: c.nextDocID, FreeList: freeList}
	for _, d := range c.docs {
		mf.Docs = append(mf.Docs, metaDoc{
			ID: d.ID, Name: d.Name, RootHandle: d.RootHandle,
			IndirFirst: d.IndirFirst, IndirLast: d.IndirLast,
			TextFirst: d.TextFirst, TextLast: d.TextLast,
			Schema: d.Schema.Flatten(),
		})
	}
	for _, ix := range c.indexes {
		mf.Indexes = append(mf.Indexes, *ix)
	}
	if len(c.stats) > 0 {
		mf.Stats = make(map[string]*opt.DocStats, len(c.stats))
		for n, s := range c.stats {
			if _, ok := c.docs[n]; ok {
				mf.Stats[n] = s
			}
		}
	}
	c.mu.RUnlock()
	sort.Slice(mf.Docs, func(i, j int) bool { return mf.Docs[i].ID < mf.Docs[j].ID })
	sort.Slice(mf.Indexes, func(i, j int) bool { return mf.Indexes[i].Name < mf.Indexes[j].Name })

	path := metaPath(dir, gen)
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return fmt.Errorf("core: save meta: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(&mf); err != nil {
		f.Close()
		return fmt.Errorf("core: encode meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// loadMeta reads the catalog snapshot of generation gen and rebuilds the
// catalog.
func loadMeta(dir string, gen uint64) (*Catalog, []sas.PageID, error) {
	f, err := os.Open(metaPath(dir, gen))
	if err != nil {
		return nil, nil, fmt.Errorf("core: load meta: %w", err)
	}
	defer f.Close()
	var mf metaFile
	if err := gob.NewDecoder(f).Decode(&mf); err != nil {
		return nil, nil, fmt.Errorf("core: decode meta: %w", err)
	}
	c := NewCatalog()
	c.nextDocID = mf.NextDocID
	for _, md := range mf.Docs {
		s, err := schema.Rebuild(md.Schema)
		if err != nil {
			return nil, nil, fmt.Errorf("core: doc %q: %w", md.Name, err)
		}
		doc := &storage.Doc{
			ID: md.ID, Name: md.Name, Schema: s,
			RootHandle: md.RootHandle,
			IndirFirst: md.IndirFirst, IndirLast: md.IndirLast,
			TextFirst: md.TextFirst, TextLast: md.TextLast,
		}
		c.docs[doc.Name] = doc
		c.docsByID[doc.ID] = doc
	}
	for i := range mf.Indexes {
		ix := mf.Indexes[i]
		c.indexes[ix.Name] = &ix
	}
	for n, s := range mf.Stats {
		if _, ok := c.docs[n]; ok {
			c.stats[n] = s
		}
	}
	return c, mf.FreeList, nil
}

// removeOldMeta deletes catalog snapshots older than keepGen.
func removeOldMeta(dir string, keepGen uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), "meta.%d", &gen); err == nil && gen < keepGen {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
