package core

import (
	"io/fs"
	"os"

	"sedna/internal/sas"
	"sedna/internal/schema"
)

func sasNil() sas.XPtr             { return sas.NilPtr }
func kindElement() schema.NodeKind { return schema.KindElement }
func kindText() schema.NodeKind    { return schema.KindText }

func osReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
