package core

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFullBackupAndRestore(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "db"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.LoadXML("library.xml", strings.NewReader(libraryXML))
	tx.Commit()

	backupDir := filepath.Join(dir, "backup")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	// The source database keeps working after the backup.
	tx2, _ := db.Begin()
	tx2.LoadXML("post.xml", strings.NewReader("<p/>"))
	tx2.Commit()
	db.Close()

	restored := filepath.Join(dir, "restored")
	if err := Restore(backupDir, restored, -1); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(restored, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	out := serialize(t, db2, "library.xml")
	if !strings.Contains(out, "Abiteboul") {
		t.Fatal("restored database lost content")
	}
	// post.xml was created after the backup: not in the restore.
	r, _ := db2.BeginReadOnly()
	defer r.Rollback()
	if _, err := r.Document("post.xml"); err == nil {
		t.Fatal("post-backup document must not be in the restore")
	}
}

func TestIncrementalBackupPointInTime(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "db"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.LoadXML("a.xml", strings.NewReader("<a>base</a>"))
	tx.Commit()

	backupDir := filepath.Join(dir, "backup")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}

	// Era 1: add b.xml, take incremental 1.
	tx, _ = db.Begin()
	tx.LoadXML("b.xml", strings.NewReader("<b/>"))
	tx.Commit()
	if err := db.BackupIncremental(backupDir); err != nil {
		t.Fatal(err)
	}

	// Era 2: add c.xml, take incremental 2.
	tx, _ = db.Begin()
	tx.LoadXML("c.xml", strings.NewReader("<c/>"))
	tx.Commit()
	if err := db.BackupIncremental(backupDir); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Restore to era 1: a and b present, c absent.
	restored1 := filepath.Join(dir, "restored1")
	if err := Restore(backupDir, restored1, 1); err != nil {
		t.Fatal(err)
	}
	db1, err := Open(restored1, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := db1.BeginReadOnly()
	if _, err := r.Document("a.xml"); err != nil {
		t.Fatal("a.xml missing from era-1 restore")
	}
	if _, err := r.Document("b.xml"); err != nil {
		t.Fatal("b.xml missing from era-1 restore")
	}
	if _, err := r.Document("c.xml"); err == nil {
		t.Fatal("c.xml present in era-1 restore (point-in-time broken)")
	}
	r.Rollback()
	db1.Close()

	// Restore everything: all three present.
	restored2 := filepath.Join(dir, "restored2")
	if err := Restore(backupDir, restored2, -1); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(restored2, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r2, _ := db2.BeginReadOnly()
	defer r2.Rollback()
	for _, name := range []string{"a.xml", "b.xml", "c.xml"} {
		if _, err := r2.Document(name); err != nil {
			t.Fatalf("%s missing from full restore", name)
		}
	}
}

func TestIncrementalWithoutBaseFails(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "db"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.BackupIncremental(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("incremental without base backup must fail")
	}
}

func TestIncrementalIsSmallerThanFull(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "db"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	// A reasonably sized base document.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 2000; i++ {
		sb.WriteString("<item>content goes here</item>")
	}
	sb.WriteString("</r>")
	tx.LoadXML("big.xml", strings.NewReader(sb.String()))
	tx.Commit()

	backupDir := filepath.Join(dir, "backup")
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	sizeBefore := dirSize(t, backupDir)

	// One small update, then incremental.
	tx, _ = db.Begin()
	tx.LoadXML("tiny.xml", strings.NewReader("<t/>"))
	tx.Commit()
	if err := db.BackupIncremental(backupDir); err != nil {
		t.Fatal(err)
	}
	delta := dirSize(t, backupDir) - sizeBefore
	if delta <= 0 || delta > sizeBefore/4 {
		t.Fatalf("incremental delta %d vs base %d — expected a small fraction", delta, sizeBefore)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := osReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}
