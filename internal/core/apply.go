package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

// Replication apply: a replica receives the primary's log records over the
// wire and re-executes each committed primary transaction as a local update
// transaction. Physical page writes flow through the versioned buffer
// manager (so concurrent snapshot readers on the replica keep their
// consistent view) and are re-logged into the replica's own write-ahead log
// (so the replica is crash-durable on its own); logical catalog records
// rebuild the in-memory metadata exactly as recovery would. Every applied
// transaction also logs a RecReplApplied progress record, making "how far
// have I applied" exactly as durable as the data itself.

// ErrReplicaReadOnly reports an update attempted on a replica that has not
// been promoted.
var ErrReplicaReadOnly = errors.New("core: replica is read-only (PROMOTE to accept writes)")

// ErrNotReplica reports a replication-only operation on a regular database.
var ErrNotReplica = errors.New("core: database is not a replica")

// Replica reports whether the database is in replica (read-only apply) mode.
func (db *Database) Replica() bool { return db.replica.Load() }

// ReplProgress returns the replication progress watermarks: restart is the
// primary-log position streaming must resume from, commit the position just
// past the last applied commit record. Both are zero on a database that
// never applied replicated transactions.
func (db *Database) ReplProgress() (restart, commit uint64) {
	return db.replRestart.Load(), db.replCommit.Load()
}

// SetReplProgress durably forces the replication watermarks: a standalone
// progress record is appended to the replica's log and flushed before the
// in-memory state advances. The replica calls it once after seeding, before
// the first applied transaction, so a crash between seed and first apply
// still resumes from the seed point instead of the beginning of time.
func (db *Database) SetReplProgress(restart, commit uint64) error {
	if _, err := db.log.Append(&wal.Record{Type: wal.RecReplApplied, RestartLSN: restart, CommitLSN: commit}); err != nil {
		return err
	}
	if err := db.log.Flush(); err != nil {
		return err
	}
	db.noteReplProgress(restart, commit)
	return nil
}

// noteReplProgress advances the in-memory watermarks (never backwards).
func (db *Database) noteReplProgress(restart, commit uint64) {
	for {
		cur := db.replRestart.Load()
		if restart <= cur || db.replRestart.CompareAndSwap(cur, restart) {
			break
		}
	}
	for {
		cur := db.replCommit.Load()
		if commit <= cur || db.replCommit.CompareAndSwap(cur, commit) {
			break
		}
	}
}

// WAL exposes the write-ahead log; the replication primary tails it with a
// wal.Reader and subscribes to durable-LSN advances.
func (db *Database) WAL() *wal.Log { return db.log }

// beginApply starts the update transaction a replicated primary transaction
// is applied under. It bypasses the replica read-only gate but takes the
// quiesce latch like any updater, so checkpoints and backups on the replica
// still see a quiet system.
func (db *Database) beginApply() (*Tx, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.mu.Unlock()
	db.quiesce.RLock()
	return &Tx{Tx: db.txm.Begin(), db: db}, nil
}

// ApplyReplicated applies the body records of one committed primary
// transaction (everything between its RecBegin and RecCommit, exclusive) as
// a local transaction, then durably records the new replication watermarks.
// Records must be passed in log order. The commit forces the replica's own
// log, so a successfully applied transaction survives a replica crash.
func (db *Database) ApplyReplicated(recs []*wal.Record, restart, commit uint64) error {
	start := time.Now()
	t, err := db.beginApply()
	if err != nil {
		return err
	}
	// Physical page applies change document content without touching the
	// metadata versions resident caching validates against: have the commit
	// raise the resident cache's barrier.
	t.applyBarrier = true
	for _, r := range recs {
		if err := applyRecord(t, r); err != nil {
			t.Rollback()
			return fmt.Errorf("core: apply replicated record %d: %w", r.Type, err)
		}
	}
	if err := t.LogRecord(&wal.Record{Type: wal.RecReplApplied, RestartLSN: restart, CommitLSN: commit}); err != nil {
		t.Rollback()
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	db.noteReplProgress(restart, commit)
	db.met.Counter("repl.txns_applied").Inc()
	db.met.Histogram("repl.apply_ns").Observe(time.Since(start))
	return nil
}

// applyRecord re-executes one primary log record under the apply
// transaction. The physical cases write through the transaction (re-logged,
// versioned); the logical cases mirror recovery's redo against the live
// catalog, additionally re-logging the record so the replica's own recovery
// rebuilds the same metadata.
func applyRecord(t *Tx, r *wal.Record) error {
	db := t.db
	switch r.Type {
	case wal.RecPageWrite:
		return t.WriteAt(r.Page.Ptr().Add(r.Off), r.Data)
	case wal.RecAllocPage:
		return t.AllocPageAt(r.Page)
	case wal.RecFreePage:
		return t.FreePage(r.Page)
	case wal.RecCreateDoc:
		if _, exists := db.catalog.Doc(r.Name); exists {
			return fmt.Errorf("document %q already exists", r.Name)
		}
		if err := t.LogRecord(&wal.Record{Type: wal.RecCreateDoc, DocID: r.DocID, Name: r.Name}); err != nil {
			return err
		}
		doc := &storage.Doc{ID: r.DocID, Name: r.Name, Schema: schema.New()}
		db.catalog.Put(doc)
		t.TouchDoc(doc)
	case wal.RecDropDoc:
		if err := t.LogRecord(&wal.Record{Type: wal.RecDropDoc, DocID: r.DocID, Name: r.Name}); err != nil {
			return err
		}
		db.catalog.Delete(r.Name)
		t.pendingDrops = append(t.pendingDrops, r.Name)
	case wal.RecAddSchemaNode:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("schema node for unknown doc %d", r.DocID)
		}
		parent := doc.Schema.ByID(r.ParentID)
		if parent == nil {
			return fmt.Errorf("schema node %d: unknown parent %d", r.NodeID, r.ParentID)
		}
		if _, err := doc.Schema.AddWithID(parent, r.NodeID, schema.NodeKind(r.Kind), r.Name); err != nil {
			return err
		}
		if err := t.LogRecord(&wal.Record{
			Type: wal.RecAddSchemaNode, DocID: r.DocID,
			ParentID: r.ParentID, NodeID: r.NodeID, Kind: r.Kind, Name: r.Name,
		}); err != nil {
			return err
		}
		t.TouchDoc(doc)
	case wal.RecSchemaBlocks:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("schema blocks for unknown doc %d", r.DocID)
		}
		sn := doc.Schema.ByID(r.NodeID)
		if sn == nil {
			return fmt.Errorf("schema blocks: unknown node %d", r.NodeID)
		}
		sn.FirstBlock, sn.LastBlock = r.Ptrs[0], r.Ptrs[1]
		if err := t.LogRecord(&wal.Record{Type: wal.RecSchemaBlocks, DocID: r.DocID, NodeID: r.NodeID, Ptrs: r.Ptrs}); err != nil {
			return err
		}
		t.TouchDoc(doc)
	case wal.RecDocMeta:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("doc meta for unknown doc %d", r.DocID)
		}
		doc.RootHandle = r.Ptrs[0]
		doc.IndirFirst, doc.IndirLast = r.Ptrs[1], r.Ptrs[2]
		doc.TextFirst, doc.TextLast = r.Ptrs[3], r.Ptrs[4]
		if err := t.LogRecord(&wal.Record{Type: wal.RecDocMeta, DocID: r.DocID, Ptrs: r.Ptrs}); err != nil {
			return err
		}
		t.TouchDoc(doc)
	case wal.RecCreateIndex:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("index for unknown doc %d", r.DocID)
		}
		if err := t.LogRecord(&wal.Record{Type: wal.RecCreateIndex, DocID: r.DocID, Name: r.Name, Path: r.Path}); err != nil {
			return err
		}
		parts := strings.SplitN(r.Path, "\x1f", 3)
		ix := &IndexMeta{Name: r.Name, DocName: doc.Name}
		if len(parts) == 3 {
			ix.OnPath, ix.ByPath, ix.KeyType = parts[0], parts[1], parts[2]
		}
		db.catalog.PutIndex(ix)
	case wal.RecDropIndex:
		if err := t.LogRecord(&wal.Record{Type: wal.RecDropIndex, Name: r.Name}); err != nil {
			return err
		}
		db.catalog.DeleteIndex(r.Name)
	case wal.RecIndexMeta:
		if err := t.LogRecord(&wal.Record{Type: wal.RecIndexMeta, Name: r.Name, Ptrs: r.Ptrs}); err != nil {
			return err
		}
		if ix, ok := db.catalog.Index(r.Name); ok {
			ix.Root = r.Ptrs[0]
		}
	case wal.RecBulkLoad:
		// The load's data arrived as whole-page images (re-applied above as
		// ordinary page writes); re-log the marker so cascaded consumers of
		// this replica's log still see the load as a load, and account it.
		if err := t.LogRecord(&wal.Record{Type: wal.RecBulkLoad, DocID: r.DocID, Name: r.Name,
			Nodes: r.Nodes, Blocks: r.Blocks, Bytes: r.Bytes}); err != nil {
			return err
		}
		db.met.Counter("load.replicated_bulk_loads").Inc()
		db.met.Counter("load.replicated_bulk_nodes").Add(r.Nodes)
	case wal.RecBegin, wal.RecCommit, wal.RecAbort, wal.RecCheckpoint, wal.RecReplApplied:
		// Transaction framing is handled by the caller; checkpoints and
		// progress records are node-local and never applied across nodes.
	default:
		return fmt.Errorf("unknown record type %d", r.Type)
	}
	return nil
}

// Promote flips a replica into a writable primary: per-schema-node counters
// (kept approximate during physical apply) are recomputed from block
// headers, the read-only gate is lifted, and a checkpoint fixates the
// applied state so the promoted node restarts as an ordinary primary. The
// replication client must be stopped first; subsequent Begin/commit cycles
// behave exactly as on a never-replicated database.
func (db *Database) Promote() error {
	if !db.replica.Load() {
		return ErrNotReplica
	}
	for _, name := range db.catalog.DocNames() {
		doc, ok := db.catalog.Doc(name)
		if !ok {
			continue
		}
		if err := db.recountDoc(doc); err != nil {
			return fmt.Errorf("core: promote recount %q: %w", name, err)
		}
		// Republish so new snapshot readers see the corrected counters.
		db.pubMu.Lock()
		db.docVers.publish(name, db.txm.CommitTS(), cloneDoc(doc), db.txm.MinActiveSnapshot())
		db.resCache.Invalidate(name)
		db.pubMu.Unlock()
	}
	db.replica.Store(false)
	return db.Checkpoint()
}
