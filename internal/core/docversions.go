package core

import (
	"sort"
	"sync"

	"sedna/internal/schema"
	"sedna/internal/storage"
)

// docVersionStore keeps, per document name, immutable copies of the
// document's metadata (descriptive schema, block-list heads, chain heads) as
// of each commit that changed it. Snapshot transactions resolve documents
// against the version matching their snapshot timestamp, so a reader never
// observes uncommitted (or too-new) schema changes even though updaters
// mutate the live schema in place under the document's exclusive lock.
//
// In the original system this falls out of storing metadata in versioned
// pages (§6.1); with the metadata held in Go memory, publishing committed
// copies reproduces the same behaviour. Versions older than the oldest
// active snapshot are purged on publish.
type docVersionStore struct {
	mu     sync.RWMutex
	byName map[string][]docVersion
}

type docVersion struct {
	ts  uint64
	doc *storage.Doc // nil = document dropped at ts
}

func newDocVersionStore() *docVersionStore {
	return &docVersionStore{byName: make(map[string][]docVersion)}
}

// publish records a committed metadata version (doc nil = drop tombstone)
// and purges versions no active snapshot can read. minSnap is the oldest
// active snapshot timestamp.
func (s *docVersionStore) publish(name string, ts uint64, doc *storage.Doc, minSnap uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := append(s.byName[name], docVersion{ts: ts, doc: doc})
	sort.SliceStable(versions, func(i, j int) bool { return versions[i].ts < versions[j].ts })
	// Keep the newest version with ts <= minSnap and everything newer.
	cut := 0
	for i := range versions {
		if versions[i].ts <= minSnap {
			cut = i
		}
	}
	s.byName[name] = versions[cut:]
}

// at returns the document metadata visible to a snapshot at ts.
func (s *docVersionStore) at(name string, ts uint64) (*storage.Doc, bool) {
	doc, _, ok := s.versionAt(name, ts)
	return doc, ok
}

// versionAt returns the document metadata visible to a snapshot at ts
// together with the commit timestamp of that version — the key resident
// caching validates against.
func (s *docVersionStore) versionAt(name string, ts uint64) (*storage.Doc, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	versions := s.byName[name]
	var best *storage.Doc
	var bestTS uint64
	found := false
	for i := range versions {
		if versions[i].ts <= ts {
			best = versions[i].doc
			bestTS = versions[i].ts
			found = true
		}
	}
	if !found || best == nil {
		return nil, 0, false
	}
	return best, bestTS, true
}

// cloneDoc makes an immutable metadata copy: the schema tree is rebuilt
// from its flattened form, detaching it from the live (mutable) schema.
func cloneDoc(doc *storage.Doc) *storage.Doc {
	s, err := schema.Rebuild(doc.Schema.Flatten())
	if err != nil {
		// Flatten/Rebuild round-trips by construction; failure means heap
		// corruption, so fail loudly.
		panic("core: schema clone failed: " + err.Error())
	}
	return &storage.Doc{
		ID: doc.ID, Name: doc.Name, Schema: s,
		RootHandle: doc.RootHandle,
		IndirFirst: doc.IndirFirst, IndirLast: doc.IndirLast,
		TextFirst: doc.TextFirst, TextLast: doc.TextLast,
	}
}
