package core

import (
	"bytes"
	"strings"
	"testing"

	"sedna/internal/lock"
	"sedna/internal/storage"
)

const libraryXML = `<library>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author>
    <author>Hull</author>
    <author>Vianu</author>
  </book>
  <book>
    <title>An Introduction to Database Systems</title>
    <author>Date</author>
    <issue>
      <publisher>Addison-Wesley</publisher>
      <year>2004</year>
    </issue>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
</library>`

func openTestDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(t.TempDir(), Options{NoSync: true, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func loadLibrary(t *testing.T, db *Database) *storage.Doc {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tx.LoadXML("library.xml", strings.NewReader(libraryXML))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return doc
}

func serialize(t *testing.T, db *Database, docName string) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	doc, err := tx.Document(docName)
	if err != nil {
		t.Fatal(err)
	}
	root, err := storage.DescOf(tx.Tx, doc.RootHandle)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SerializeNode(tx.Tx, doc, root, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestLoadAndSerializeRoundTrip(t *testing.T) {
	db := openTestDB(t)
	doc := loadLibrary(t, db)

	tx, _ := db.BeginReadOnly()
	if err := storage.VerifyDoc(tx.Tx, doc); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	out := serialize(t, db, "library.xml")
	for _, want := range []string{
		"<library>", "<title>Foundations of Databases</title>",
		"<author>Abiteboul</author>", "<author>Hull</author>",
		"<publisher>Addison-Wesley</publisher>", "<year>2004</year>",
		"<paper>", "</library>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("serialization missing %q:\n%s", want, out)
		}
	}
	// Document order must be preserved: Abiteboul before Hull before Vianu.
	if !(strings.Index(out, "Abiteboul") < strings.Index(out, "Hull") &&
		strings.Index(out, "Hull") < strings.Index(out, "Vianu")) {
		t.Fatal("author order lost")
	}
}

func TestAttributesLoadAndSerialize(t *testing.T) {
	db := openTestDB(t)
	tx, _ := db.Begin()
	_, err := tx.LoadXML("attrs.xml", strings.NewReader(`<r><e id="7" name="x">body</e></r>`))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	out := serialize(t, db, "attrs.xml")
	if !strings.Contains(out, `<e id="7" name="x">body</e>`) {
		t.Fatalf("attributes lost: %s", out)
	}
}

func TestCommentAndPI(t *testing.T) {
	db := openTestDB(t)
	tx, _ := db.Begin()
	_, err := tx.LoadXML("c.xml", strings.NewReader(`<r><!--note--><?php echo?></r>`))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	out := serialize(t, db, "c.xml")
	if !strings.Contains(out, "<!--note-->") || !strings.Contains(out, "<?php echo?>") {
		t.Fatalf("comment/PI lost: %s", out)
	}
}

func TestMalformedXMLRejected(t *testing.T) {
	db := openTestDB(t)
	tx, _ := db.Begin()
	_, err := tx.LoadXML("bad.xml", strings.NewReader(`<a><b></a>`))
	if err == nil {
		t.Fatal("malformed XML must be rejected")
	}
	tx.Rollback()
	// The failed document must not exist.
	tx2, _ := db.BeginReadOnly()
	defer tx2.Rollback()
	if _, err := tx2.Document("bad.xml"); err == nil {
		t.Fatal("document from failed load must not exist")
	}
}

func TestDuplicateDocumentRejected(t *testing.T) {
	db := openTestDB(t)
	loadLibrary(t, db)
	tx, _ := db.Begin()
	defer tx.Rollback()
	if _, err := tx.CreateDocument("library.xml"); err == nil {
		t.Fatal("duplicate document must be rejected")
	}
}

func TestDropDocument(t *testing.T) {
	db := openTestDB(t)
	loadLibrary(t, db)
	tx, _ := db.Begin()
	if err := tx.DropDocument("library.xml"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2, _ := db.BeginReadOnly()
	defer tx2.Rollback()
	if _, err := tx2.Document("library.xml"); err == nil {
		t.Fatal("dropped document still visible")
	}
}

func TestDropDocumentRollbackRestores(t *testing.T) {
	db := openTestDB(t)
	loadLibrary(t, db)
	tx, _ := db.Begin()
	if err := tx.DropDocument("library.xml"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	out := serialize(t, db, "library.xml")
	if !strings.Contains(out, "Abiteboul") {
		t.Fatal("document content lost after rollback of drop")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("library.xml", strings.NewReader(libraryXML)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx2, _ := db2.BeginReadOnly()
	doc, err := tx2.Document("library.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyDoc(tx2.Tx, doc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	root, _ := storage.DescOf(tx2.Tx, doc.RootHandle)
	if err := SerializeNode(tx2.Tx, doc, root, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Abiteboul") {
		t.Fatal("content lost across reopen")
	}
	tx2.Rollback()
}

// crashReopen simulates a crash: the database files are reopened WITHOUT
// closing (Close would checkpoint). The old Database object is abandoned.
func crashReopen(t *testing.T, db *Database) *Database {
	t.Helper()
	// Flush the WAL the way a crash leaves it: whatever Commit forced is
	// durable; nothing else matters.
	db.closeFilesForCrash()
	db2, err := Open(db.dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	return db2
}

func TestRecoveryAfterCrashCommitted(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("library.xml", strings.NewReader(libraryXML)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	db2 := crashReopen(t, db)
	tx2, _ := db2.BeginReadOnly()
	defer tx2.Rollback()
	doc, err := tx2.Document("library.xml")
	if err != nil {
		t.Fatalf("committed document lost in crash: %v", err)
	}
	if err := storage.VerifyDoc(tx2.Tx, doc); err != nil {
		t.Fatalf("recovered document fails verification: %v", err)
	}
	var buf bytes.Buffer
	root, _ := storage.DescOf(tx2.Tx, doc.RootHandle)
	SerializeNode(tx2.Tx, doc, root, &buf)
	if !strings.Contains(buf.String(), "Addison-Wesley") {
		t.Fatal("recovered content incomplete")
	}
}

func TestRecoveryDiscardsUncommitted(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline.
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("a.xml", strings.NewReader(`<a>one</a>`)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	// Uncommitted update crashes.
	tx2, _ := db.Begin()
	if _, err := tx2.LoadXML("b.xml", strings.NewReader(`<b>two</b>`)); err != nil {
		t.Fatal(err)
	}
	// no commit — crash

	db2 := crashReopen(t, db)
	r, _ := db2.BeginReadOnly()
	defer r.Rollback()
	if _, err := r.Document("a.xml"); err != nil {
		t.Fatal("committed doc lost")
	}
	if _, err := r.Document("b.xml"); err == nil {
		t.Fatal("uncommitted doc survived the crash")
	}
	docA, _ := r.Document("a.xml")
	if err := storage.VerifyDoc(r.Tx, docA); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAfterCheckpointAndMoreCommits(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.LoadXML("a.xml", strings.NewReader(`<a><x>1</x></a>`))
	tx.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint committed change: overwrites pages covered by the
	// persistent snapshot, exercising the snapshot area.
	tx2, _ := db.Begin()
	doc, _ := tx2.Document("a.xml")
	if err := tx2.LockDocument("a.xml", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	root, _ := storage.DescOf(tx2.Tx, doc.RootHandle)
	kids, err := collectChildren(tx2.Tx, &root)
	if err != nil || len(kids) != 1 {
		t.Fatalf("children: %v %d", err, len(kids))
	}
	if _, err := storage.InsertNode(tx2.Tx, doc, kids[0].Handle, sasNil(), sasNil(), kindElement(), "y", nil); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	// Force committed pages to disk so the snapshot area must be used.
	if err := db.Buffer().FlushCommitted(); err != nil {
		t.Fatal(err)
	}

	db2 := crashReopen(t, db)
	r, _ := db2.BeginReadOnly()
	defer r.Rollback()
	docA, err := r.Document("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyDoc(r.Tx, docA); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rd, _ := storage.DescOf(r.Tx, docA.RootHandle)
	SerializeNode(r.Tx, docA, rd, &buf)
	if !strings.Contains(buf.String(), "<y/>") {
		t.Fatalf("post-checkpoint commit lost: %s", buf.String())
	}
}

func TestSnapshotReadersSeeStableStateDuringUpdate(t *testing.T) {
	db := openTestDB(t)
	loadLibrary(t, db)

	r, _ := db.BeginReadOnly()
	defer r.Rollback()

	// Concurrent update: delete the paper.
	w, _ := db.Begin()
	doc, _ := w.Document("library.xml")
	if err := w.LockDocument("library.xml", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	// Find the paper element via the schema.
	paperSn := doc.Schema.Root.Child(kindElement(), "library").Child(kindElement(), "paper")
	var paperHandle = sasNil()
	storage.ScanSchema(w.Tx, paperSn, func(d storage.Desc) (bool, error) {
		paperHandle = d.Handle
		return false, nil
	})
	if err := storage.DeleteSubtree(w.Tx, doc, paperHandle); err != nil {
		t.Fatal(err)
	}
	w.Commit()

	// The old snapshot still sees the paper; a new one does not.
	var buf bytes.Buffer
	rd, _ := storage.DescOf(r.Tx, doc.RootHandle)
	if err := SerializeNode(r.Tx, doc, rd, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Codd") {
		t.Fatal("old snapshot lost the paper")
	}
	out := serialize(t, db, "library.xml")
	if strings.Contains(out, "Codd") {
		t.Fatal("new snapshot still has the deleted paper")
	}
}

func TestKeepWhitespaceOption(t *testing.T) {
	db, err := Open(t.TempDir(), Options{NoSync: true, KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("w.xml", strings.NewReader("<r>  <e/>  </r>")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2, _ := db.BeginReadOnly()
	defer tx2.Rollback()
	doc, _ := tx2.Document("w.xml")
	rEl := doc.Schema.Root.Child(kindElement(), "r")
	textSn := rEl.Child(kindText(), "")
	if textSn == nil || textSn.NodeCount != 2 {
		t.Fatalf("whitespace text nodes not kept: %+v", textSn)
	}
}
