package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
	"sedna/internal/query"
	"sedna/internal/storage"
	"sedna/internal/xmlgen"
)

// bulkCorpus is the document set the bulk loader is proven equivalent on:
// element-only trees, attribute-heavy trees, mixed content with comments and
// processing instructions, and a deep narrow tree that stresses NID depth.
var bulkCorpus = []struct {
	name    string
	xml     string
	queries []string
}{
	{"library", xmlgen.LibraryString(400, 7), []string{
		`count(doc("library")//book)`,
		`count(doc("library")//author)`,
		`doc("library")/library/book[year = "1999"]/title`,
	}},
	{"auction", xmlgen.AuctionString(25, 40, 3, 11), []string{
		`count(doc("auction")//bidder)`,
		`doc("auction")/site/people/person[@id = "p3"]/name`,
		`count(doc("auction")//item)`,
	}},
	{"deep", xmlgen.DeepString(8, 3), []string{
		`count(doc("deep")//n0)`,
		`count(doc("deep")//n2)`,
	}},
	{"mixed", `<cat lang="en" ver="2"><!-- head --><item id="a1">Alpha &amp; Beta</item><item id="a2"><sub>x</sub> tail text</item><?proc some data?><empty/></cat>`, []string{
		`count(doc("mixed")//item)`,
		`doc("mixed")/cat/item[@id = "a1"]`,
	}},
}

func openBulkDB(t *testing.T, opts core.Options) *core.Database {
	t.Helper()
	opts.NoSync = true
	if opts.BufferPages == 0 {
		opts.BufferPages = 256
	}
	db, err := core.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func loadDoc(t *testing.T, db *core.Database, name, content string) {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML(name, strings.NewReader(content)); err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func serializeDoc(t *testing.T, db *core.Database, name string) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	doc, err := tx.Document(name)
	if err != nil {
		t.Fatal(err)
	}
	root, err := storage.DescOf(tx.Tx, doc.RootHandle)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.SerializeNode(tx.Tx, doc, root, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func verifyDocT(t *testing.T, db *core.Database, name string) {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	doc, err := tx.Document(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyDoc(tx.Tx, doc); err != nil {
		t.Fatalf("VerifyDoc(%s): %v", name, err)
	}
}

func runQuery(t *testing.T, db *core.Database, src string) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	res, err := query.Execute(query.NewExecCtx(tx), src)
	if err != nil {
		t.Fatalf("query %s: %v", src, err)
	}
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBulkLoadEquivalence is the property test: every corpus document loaded
// through the bulk path serializes byte-identically to the node-at-a-time
// path, passes full structural verification (which includes strict NID
// document ordering), and answers the same queries — serially and with
// 4-worker intra-query parallelism.
func TestBulkLoadEquivalence(t *testing.T) {
	bulk := openBulkDB(t, core.Options{QueryWorkers: 4})
	incr := openBulkDB(t, core.Options{QueryWorkers: 4, BulkLoad: core.BulkLoadOff})
	for _, c := range bulkCorpus {
		loadDoc(t, bulk, c.name, c.xml)
		loadDoc(t, incr, c.name, c.xml)
		verifyDocT(t, bulk, c.name)
		verifyDocT(t, incr, c.name)
		if b, i := serializeDoc(t, bulk, c.name), serializeDoc(t, incr, c.name); b != i {
			t.Fatalf("%s: bulk and incremental serializations differ\nbulk: %.200s\nincr: %.200s", c.name, b, i)
		}
		for _, q := range c.queries {
			if b, i := runQuery(t, bulk, q), runQuery(t, incr, q); b != i {
				t.Fatalf("%s: query %s: bulk=%q incremental=%q", c.name, q, b, i)
			}
		}
	}
	// Serial executor pass over the same pair: results must not depend on
	// the worker budget either.
	serial := openBulkDB(t, core.Options{QueryWorkers: 1})
	for _, c := range bulkCorpus {
		loadDoc(t, serial, c.name, c.xml)
		for _, q := range c.queries {
			if s, b := runQuery(t, serial, q), runQuery(t, bulk, q); s != b {
				t.Fatalf("%s: query %s: serial=%q parallel=%q", c.name, q, s, b)
			}
		}
	}
	if n := bulk.Metrics().Snapshot().Counters["load.bulk_loads"]; n != uint64(len(bulkCorpus)) {
		t.Fatalf("load.bulk_loads = %d, want %d", n, len(bulkCorpus))
	}
	if n := incr.Metrics().Snapshot().Counters["load.incremental_loads"]; n != uint64(len(bulkCorpus)) {
		t.Fatalf("load.incremental_loads = %d, want %d", n, len(bulkCorpus))
	}
}

// TestBulkLoadThenUpdate checks that the pre-spaced bulk NIDs leave room for
// ordinary node-at-a-time insertions afterwards, and that document order
// stays strict across the mix.
func TestBulkLoadThenUpdate(t *testing.T) {
	db := openBulkDB(t, core.Options{})
	loadDoc(t, db, "d", xmlgen.LibraryString(60, 3))
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		stmt := fmt.Sprintf(`UPDATE insert <book><title>new %d</title></book> into doc("d")/library`, i)
		if _, err := query.Execute(query.NewExecCtx(tx), stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	verifyDocT(t, db, "d")
	if got := runQuery(t, db, `count(doc("d")//title[. = "new 7"])`); got != "1" {
		t.Fatalf("inserted title count = %s", got)
	}
}

// TestBulkLoadMalformedRollback feeds the loader XML that breaks mid-document
// and checks (a) the parse error carries the byte offset of the failure and
// (b) rolling back leaves no trace of the partial document while earlier
// documents stay intact.
func TestBulkLoadMalformedRollback(t *testing.T) {
	for _, mode := range []core.BulkLoadMode{core.BulkLoadAuto, core.BulkLoadOff} {
		db := openBulkDB(t, core.Options{BulkLoad: mode})
		loadDoc(t, db, "keep", `<r><a>safe</a></r>`)

		// Enough well-formed prefix that the bulk path has real blocks in
		// flight, then a mismatched close tag.
		bad := `<r>` + strings.Repeat(`<item><k>v</k></item>`, 500) + `</wrong>`
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		_, err = tx.LoadXML("bad", strings.NewReader(bad))
		if err == nil {
			t.Fatalf("mode %d: malformed load succeeded", mode)
		}
		if !strings.Contains(err.Error(), "at byte") {
			t.Fatalf("mode %d: parse error lacks byte offset: %v", mode, err)
		}
		tx.Rollback()

		rtx, _ := db.BeginReadOnly()
		if _, err := rtx.Document("bad"); err == nil {
			t.Fatalf("mode %d: partial document visible after rollback", mode)
		}
		rtx.Rollback()
		verifyDocT(t, db, "keep")
		if got := runQuery(t, db, `count(doc("keep")/r/a)`); got != "1" {
			t.Fatalf("mode %d: keep damaged: %s", mode, got)
		}

		// The name must be reusable after the rollback.
		loadDoc(t, db, "bad", `<r><ok/></r>`)
		verifyDocT(t, db, "bad")
	}
}

// TestBulkLoadConcurrentReaders runs snapshot readers over existing documents
// while a large bulk load is in flight (run under -race in CI): the load must
// not disturb concurrent reads, and both documents verify afterwards.
func TestBulkLoadConcurrentReaders(t *testing.T) {
	db := openBulkDB(t, core.Options{BufferPages: 512})
	loadDoc(t, db, "base", xmlgen.LibraryString(200, 5))
	want := runQuery(t, db, `count(doc("base")//book)`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.BeginReadOnly()
				if err != nil {
					errs <- err
					return
				}
				res, err := query.Execute(query.NewExecCtx(tx), `count(doc("base")//book)`)
				if err == nil {
					var got string
					if got, err = res.String(); err == nil && got != want {
						err = fmt.Errorf("reader saw %s books, want %s", got, want)
					}
				}
				tx.Rollback()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	loadDoc(t, db, "big", xmlgen.AuctionString(60, 120, 4, 9))
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	verifyDocT(t, db, "base")
	verifyDocT(t, db, "big")
}

// TestBulkLoadCrashInjection kills the database after K flushed pages of a
// bulk load (no rollback — simulating process death mid-load) and proves
// whole-document-or-none recovery: the in-flight document is gone, earlier
// committed documents are intact. The final leg crashes after the commit and
// proves the whole document survives.
func TestBulkLoadCrashInjection(t *testing.T) {
	big := xmlgen.LibraryString(800, 13)
	for _, k := range []uint64{1, 3, 7} {
		k := k
		t.Run(fmt.Sprintf("kill-after-%d-pages", k), func(t *testing.T) {
			dir := t.TempDir()
			db, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 256})
			if err != nil {
				t.Fatal(err)
			}
			loadDoc(t, db, "keep", `<r><a>1</a><b>2</b></r>`)

			core.SetBulkFlushHookForTesting(func(pages uint64) error {
				if pages >= k {
					return fmt.Errorf("injected crash after %d pages", pages)
				}
				return nil
			})
			defer core.SetBulkFlushHookForTesting(nil)

			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.LoadXML("big", strings.NewReader(big)); err == nil {
				t.Fatal("injected flush failure did not abort the load")
			}
			// No rollback: die with the transaction open and its page
			// images in the log.
			db.CrashForTesting()
			core.SetBulkFlushHookForTesting(nil)

			db2, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 256})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer db2.Close()
			rtx, _ := db2.BeginReadOnly()
			if _, err := rtx.Document("big"); err == nil {
				t.Fatal("half-loaded document visible after crash recovery")
			}
			rtx.Rollback()
			verifyDocT(t, db2, "keep")
			if got := runQuery(t, db2, `count(doc("keep")/r/*)`); got != "2" {
				t.Fatalf("keep after recovery: %s nodes", got)
			}
		})
	}

	t.Run("commit-then-crash", func(t *testing.T) {
		dir := t.TempDir()
		db, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 256})
		if err != nil {
			t.Fatal(err)
		}
		loadDoc(t, db, "big", big)
		want := runQuery(t, db, `count(doc("big")//book)`)
		db.CrashForTesting()

		db2, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 256})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer db2.Close()
		verifyDocT(t, db2, "big")
		if got := runQuery(t, db2, `count(doc("big")//book)`); got != want {
			t.Fatalf("recovered %s books, want %s", got, want)
		}
	})
}
