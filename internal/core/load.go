package core

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// LoadXML parses the XML document from r and bulk-loads it under the given
// document name within the transaction. Whitespace-only text nodes are
// skipped unless the database was opened with KeepWhitespace.
//
// Because the document is freshly created here, the default ingest path is
// the streaming bulk loader (direct block construction); Options.BulkLoad =
// BulkLoadOff falls back to node-at-a-time inserts.
func (t *Tx) LoadXML(name string, r io.Reader) (*storage.Doc, error) {
	doc, err := t.CreateDocument(name)
	if err != nil {
		return nil, err
	}
	if t.db.opts.BulkLoad == BulkLoadOff {
		t.db.met.Counter("load.incremental_loads").Inc()
		if err := t.LoadInto(doc, doc.RootHandle, r); err != nil {
			return nil, err
		}
		return doc, nil
	}
	if err := t.bulkLoadInto(doc, r); err != nil {
		return nil, err
	}
	return doc, nil
}

// LoadInto streams XML content under an existing node (used both by LoadXML
// and by update statements inserting parsed fragments).
func (t *Tx) LoadInto(doc *storage.Doc, parent sas.XPtr, r io.Reader) error {
	dec := xml.NewDecoder(r)
	dec.Strict = true

	type frame struct {
		handle sas.XPtr
		last   sas.XPtr // last child inserted under this frame
	}
	stack := []frame{{handle: parent}}
	last := func() *frame { return &stack[len(stack)-1] }

	insert := func(kind schema.NodeKind, name string, text []byte) (sas.XPtr, error) {
		f := last()
		h, err := storage.InsertNode(t.Tx, doc, f.handle, f.last, sas.NilPtr, kind, name, text)
		if err != nil {
			return sas.NilPtr, err
		}
		f.last = h
		return h, nil
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return parseErr(dec, err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			h, err := insert(schema.KindElement, xmlName(tk.Name), nil)
			if err != nil {
				return err
			}
			stack = append(stack, frame{handle: h})
			// Attributes become attribute children of the element.
			for _, a := range tk.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not stored as attributes
				}
				if _, err := insert(schema.KindAttribute, xmlName(a.Name), []byte(a.Value)); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if len(stack) == 1 {
				return fmt.Errorf("core: unbalanced end element %s at byte %d", xmlName(tk.Name), dec.InputOffset())
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(tk)
			if !t.db.opts.KeepWhitespace && strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 1 {
				continue // ignore top-level whitespace/prolog text
			}
			if _, err := insert(schema.KindText, "", []byte(s)); err != nil {
				return err
			}
		case xml.Comment:
			if len(stack) == 1 {
				continue
			}
			if _, err := insert(schema.KindComment, "", []byte(tk)); err != nil {
				return err
			}
		case xml.ProcInst:
			if len(stack) == 1 {
				continue
			}
			if _, err := insert(schema.KindPI, tk.Target, tk.Inst); err != nil {
				return err
			}
		case xml.Directive:
			// DOCTYPE etc. — not stored.
		}
	}
	if len(stack) != 1 {
		return fmt.Errorf("core: unbalanced XML: %d unclosed elements", len(stack)-1)
	}
	return nil
}

func xmlName(n xml.Name) string {
	// The descriptive schema clusters by qualified name; we keep the
	// expanded form "space:local" when a namespace is present.
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// NodeAccess abstracts the two node reads serialization needs — children in
// document order and text values — so the same serializer runs over paged
// storage and over a resident representation, keeping output byte-identical
// by construction.
type NodeAccess interface {
	Children(d *storage.Desc) ([]storage.Desc, error)
	Text(d *storage.Desc) ([]byte, error)
}

// pagedAccess is the block-chain NodeAccess.
type pagedAccess struct{ r storage.Reader }

func (a pagedAccess) Children(d *storage.Desc) ([]storage.Desc, error) {
	return collectChildren(a.r, d)
}

func (a pagedAccess) Text(d *storage.Desc) ([]byte, error) {
	return storage.Text(a.r, d)
}

// SerializeNode writes the XML serialization of the subtree rooted at the
// node (given by descriptor) to w. Reader may be any transaction kind.
func SerializeNode(r storage.Reader, doc *storage.Doc, d storage.Desc, w io.Writer) error {
	return SerializeNodeVia(pagedAccess{r}, doc, d, w)
}

// SerializeNodeVia is SerializeNode over any NodeAccess backend.
func SerializeNodeVia(acc NodeAccess, doc *storage.Doc, d storage.Desc, w io.Writer) error {
	sn := doc.Schema.ByID(d.SchemaID)
	if sn == nil {
		return fmt.Errorf("core: serialize: unknown schema node %d", d.SchemaID)
	}
	switch sn.Kind {
	case schema.KindDocument:
		return serializeChildren(acc, doc, d, w)
	case schema.KindElement:
		if _, err := io.WriteString(w, "<"+sn.Name); err != nil {
			return err
		}
		// Attributes first, then content.
		content, err := acc.Children(&d)
		if err != nil {
			return err
		}
		hasContent := false
		for _, c := range content {
			csn := doc.Schema.ByID(c.SchemaID)
			if csn.Kind == schema.KindAttribute {
				val, err := acc.Text(&c)
				if err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, " %s=%q", csn.Name, string(val)); err != nil {
					return err
				}
			} else {
				hasContent = true
			}
		}
		if !hasContent {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range content {
			if doc.Schema.ByID(c.SchemaID).Kind == schema.KindAttribute {
				continue
			}
			if err := SerializeNodeVia(acc, doc, c, w); err != nil {
				return err
			}
		}
		_, err = io.WriteString(w, "</"+sn.Name+">")
		return err
	case schema.KindText:
		val, err := acc.Text(&d)
		if err != nil {
			return err
		}
		return xml.EscapeText(w, val)
	case schema.KindAttribute:
		// A bare attribute serializes as its string value.
		val, err := acc.Text(&d)
		if err != nil {
			return err
		}
		_, err = w.Write(val)
		return err
	case schema.KindComment:
		val, err := acc.Text(&d)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "<!--%s-->", val)
		return err
	case schema.KindPI:
		val, err := acc.Text(&d)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "<?%s %s?>", sn.Name, val)
		return err
	default:
		return fmt.Errorf("core: serialize: unsupported kind %v", sn.Kind)
	}
}

func serializeChildren(acc NodeAccess, doc *storage.Doc, d storage.Desc, w io.Writer) error {
	kids, err := acc.Children(&d)
	if err != nil {
		return err
	}
	for _, c := range kids {
		if err := SerializeNodeVia(acc, doc, c, w); err != nil {
			return err
		}
	}
	return nil
}

// collectChildren returns the children of d in document order.
func collectChildren(r storage.Reader, d *storage.Desc) ([]storage.Desc, error) {
	var out []storage.Desc
	c, ok, err := storage.FirstChild(r, d)
	for {
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, c)
		if c.RightSib.IsNil() {
			return out, nil
		}
		c, err = storage.ReadDesc(r, c.RightSib)
	}
}
