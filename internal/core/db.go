package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/buffer"
	"sedna/internal/lock"
	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/resident"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/trace"
	"sedna/internal/txn"
	"sedna/internal/wal"
)

// Options configures Open.
type Options struct {
	// BufferPages is the buffer-pool capacity in pages (default 2048 =
	// 32 MiB with 16 KiB pages).
	BufferPages int
	// NoSync disables fsync throughout; tests and benchmarks only.
	NoSync bool
	// LockTimeout bounds document-lock waits (0 = wait forever; deadlocks
	// are still detected eagerly).
	LockTimeout time.Duration
	// KeepWhitespace retains whitespace-only text nodes during LoadXML.
	KeepWhitespace bool
	// TraceEnabled records a span tree for every query into the tracer's
	// in-memory ring (also settable at runtime via DB.Tracer()).
	TraceEnabled bool
	// SlowQueryThreshold marks queries at or above this duration as slow,
	// retaining their full trace and appending them to the slow-query log
	// (0 = disabled).
	SlowQueryThreshold time.Duration
	// SlowLogPath overrides where slow queries are appended as JSONL
	// (default <dir>/slowlog.jsonl).
	SlowLogPath string
	// Metrics is the registry every layer of this database reports into;
	// nil creates a fresh registry per database. Sharing one registry across
	// databases (as sedna-bench does) accumulates counters across them.
	Metrics *metrics.Registry
	// QueryWorkers caps how many goroutines one statement may use for
	// intra-query parallel execution (path-step range scans, for-clause
	// fan-out). 0 means GOMAXPROCS; 1 disables parallel execution. Also
	// settable at runtime via Database.SetQueryWorkers.
	QueryWorkers int
	// PrefetchDepth is the default chain-readahead depth for block-list
	// scans: how many nextBlock links ahead of a scan the buffer manager
	// may load asynchronously. 0 (the default) disables readahead. Also
	// settable at runtime via Database.SetPrefetchDepth.
	PrefetchDepth int
	// Replica opens the database in replica mode: Begin refuses update
	// transactions (ErrReplicaReadOnly) and changes arrive only through
	// ApplyReplicated until Promote lifts the gate.
	Replica bool
	// Resident enables the compressed in-memory resident mode: read-only
	// statements over documents that fit the byte budget execute against a
	// cached structural array instead of the paged block chains. Updates
	// invalidate the cached copy on commit, so results stay byte-identical.
	// Also settable at runtime via Database.SetResident.
	Resident bool
	// ResidentBudget caps the total bytes of resident representations across
	// documents (LRU-evicted beyond it). 0 uses resident.DefaultBudget.
	ResidentBudget int64
	// BulkLoad selects the document-ingest path for LoadXML: the default
	// (BulkLoadAuto) streams freshly created documents through the direct
	// block-construction bulk loader; BulkLoadOff forces the node-at-a-time
	// insert path everywhere.
	BulkLoad BulkLoadMode
}

// Database is an open Sedna database: one directory holding the data file,
// the snapshot area, the write-ahead log and catalog snapshots.
type Database struct {
	dir  string
	opts Options

	pf     *pagefile.File
	snap   *pagefile.SnapArea
	log    *wal.Log
	buf    *buffer.Manager
	locks  *lock.Manager
	txm    *txn.Manager
	met    *metrics.Registry
	tracer *trace.Tracer

	catalog *Catalog

	// docVers publishes committed document-metadata versions for snapshot
	// readers.
	docVers *docVersionStore

	// queryWorkers is the intra-query parallelism cap (0 = GOMAXPROCS),
	// read by every new execution context and settable at runtime.
	queryWorkers atomic.Int64

	// prefetchDepth is the default chain-readahead depth (0 = off), read
	// at the start of every statement and settable at runtime.
	prefetchDepth atomic.Int64

	// residentOn gates the resident mode; resCache holds the per-document
	// resident representations (always allocated so metrics and runtime
	// toggling work even when the mode starts off).
	residentOn atomic.Bool
	resCache   *resident.Cache

	// quiesce is held shared by every statement-executing transaction and
	// exclusively by checkpoint/backup/close.
	quiesce sync.RWMutex

	// pubMu serializes commit+publish against snapshot acquisition, so a
	// new reader never sees a commit timestamp whose metadata versions are
	// not yet published.
	pubMu sync.Mutex

	// replica gates Begin while the node applies a primary's log;
	// replRestart/replCommit are the replication progress watermarks
	// (primary-log positions), recovered from RecReplApplied records.
	replica     atomic.Bool
	replRestart atomic.Uint64
	replCommit  atomic.Uint64

	closed bool
	mu     sync.Mutex
}

// ErrClosed reports use of a closed database.
var ErrClosed = errors.New("core: database is closed")

// Open opens (creating if needed) the database in dir and runs the two-step
// recovery procedure, leaving the database checkpointed and consistent.
func Open(dir string, opts Options) (*Database, error) {
	if opts.BufferPages <= 0 {
		opts.BufferPages = 2048
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	reg := metrics.OrNew(opts.Metrics)
	fileOpts := pagefile.Options{NoSync: opts.NoSync, Metrics: reg}
	pf, err := pagefile.Open(filepath.Join(dir, "data.sdb"), fileOpts)
	if err != nil {
		return nil, err
	}
	snap, err := pagefile.OpenSnapArea(filepath.Join(dir, "data.snap"), fileOpts)
	if err != nil {
		pf.Close()
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "data.wal"), wal.Options{NoSync: opts.NoSync, Metrics: reg})
	if err != nil {
		snap.Close()
		pf.Close()
		return nil, err
	}
	db := &Database{
		dir:     dir,
		opts:    opts,
		pf:      pf,
		snap:    snap,
		log:     log,
		buf:     buffer.NewWithMetrics(pf, snap, opts.BufferPages, reg),
		locks:   lock.NewWithMetrics(reg),
		met:     reg,
		docVers: newDocVersionStore(),
	}
	db.txm = txn.NewManagerWithMetrics(db.buf, log, pf, db.locks, reg)
	db.txm.LockTimeout = opts.LockTimeout
	db.replica.Store(opts.Replica)
	db.SetQueryWorkers(opts.QueryWorkers)
	db.SetPrefetchDepth(opts.PrefetchDepth)
	db.resCache = resident.NewCache(opts.ResidentBudget, reg)
	db.SetResident(opts.Resident)

	db.tracer = trace.New(reg)
	db.tracer.SetEnabled(opts.TraceEnabled)
	db.tracer.SetSlowThreshold(opts.SlowQueryThreshold)
	slowLog := opts.SlowLogPath
	if slowLog == "" {
		slowLog = filepath.Join(dir, "slowlog.jsonl")
	}
	db.tracer.SetSlowLogPath(slowLog)
	db.locks.SetTracer(db.tracer)

	if err := db.recover(); err != nil {
		db.closeFiles()
		return nil, err
	}
	return db, nil
}

func (db *Database) closeFiles() {
	db.buf.StopPrefetch()
	if db.tracer != nil {
		db.tracer.Close()
	}
	db.log.Close()
	db.snap.Close()
	db.pf.Close()
}

// closeFilesForCrash abandons the database without checkpointing, leaving
// files exactly as a crash would. Only tests and the crash-injection bench
// harness use it.
func (db *Database) closeFilesForCrash() {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.closeFiles()
}

// CrashForTesting simulates a crash: the files are abandoned in place with
// no checkpoint or clean-shutdown mark, so the next Open must run full
// recovery. Exposed for the recovery experiments and crash-injection tests.
func (db *Database) CrashForTesting() {
	db.closeFilesForCrash()
}

// Dir returns the database directory.
func (db *Database) Dir() string { return db.dir }

// Catalog exposes the catalog.
func (db *Database) Catalog() *Catalog { return db.catalog }

// TxnManager exposes the transaction manager.
func (db *Database) TxnManager() *txn.Manager { return db.txm }

// BufferStats returns buffer-manager counters.
func (db *Database) BufferStats() buffer.Stats { return db.buf.Stats() }

// Metrics returns the observability registry every layer of this database
// reports into.
func (db *Database) Metrics() *metrics.Registry { return db.met }

// Tracer returns the per-query tracer. Query execution starts traces on it;
// the server and shell use it to flip tracing on, adjust the slow-query
// threshold and browse retained traces.
func (db *Database) Tracer() *trace.Tracer { return db.tracer }

// SetQueryWorkers sets the intra-query parallelism cap at runtime: how many
// goroutines one statement may use for parallel path scans and for-clause
// fan-out. n ≤ 0 restores the default (GOMAXPROCS); 1 disables parallel
// execution. Takes effect for statements started after the call.
func (db *Database) SetQueryWorkers(n int) {
	if n < 0 {
		n = 0
	}
	db.queryWorkers.Store(int64(n))
}

// QueryWorkers returns the effective intra-query worker budget (≥ 1).
func (db *Database) QueryWorkers() int {
	n := int(db.queryWorkers.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// SetPrefetchDepth sets the default chain-readahead depth at runtime: how
// many pages ahead of a block-list scan the buffer manager may load —
// synchronously via sequential read-around on cold snapshot misses, and
// asynchronously by following nextBlock chains. n ≤ 0 disables readahead
// (scans behave exactly as without the prefetcher). New transactions start
// at this depth; an execution context's explicit PrefetchDepth overrides it
// per statement.
func (db *Database) SetPrefetchDepth(n int) {
	if n < 0 {
		n = 0
	}
	db.prefetchDepth.Store(int64(n))
	db.txm.SetDefaultPrefetchDepth(n)
}

// PrefetchDepth returns the default chain-readahead depth (0 = off).
func (db *Database) PrefetchDepth() int { return int(db.prefetchDepth.Load()) }

// SetResident switches the resident mode at runtime. Turning it off flushes
// the cache; statements already holding a resident representation finish on
// it (the representations are immutable).
func (db *Database) SetResident(on bool) {
	db.residentOn.Store(on)
	if !on {
		db.resCache.Flush()
	}
}

// Resident reports whether the resident mode is on.
func (db *Database) Resident() bool { return db.residentOn.Load() }

// ResidentCache exposes the resident-representation cache (tools, tests and
// benchmarks).
func (db *Database) ResidentCache() *resident.Cache { return db.resCache }

// Buffer exposes the buffer manager (benchmarks and tools).
func (db *Database) Buffer() *buffer.Manager { return db.buf }

// LogSize returns the current WAL size in bytes.
func (db *Database) LogSize() uint64 { return db.log.Size() }

// Checkpoint fixates the current committed state as the persistent
// snapshot: it quiesces update activity, writes the catalog snapshot
// (generation master.MetaGen+1), flushes all committed pages, publishes the
// new master page and resets the snapshot area (§6.4).
func (db *Database) Checkpoint() error {
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	gen := db.pf.Master().MetaGen + 1
	if err := saveMeta(db.dir, gen, db.catalog, db.pf.FreeList()); err != nil {
		return err
	}
	if _, err := db.txm.Checkpoint(db.snap, gen); err != nil {
		return err
	}
	removeOldMeta(db.dir, gen)
	// Recovery scans the log only from this checkpoint, so any replication
	// progress recorded inside earlier apply transactions just became
	// invisible to it: re-assert the watermarks with a standalone record
	// above the checkpoint.
	if restart, commit := db.ReplProgress(); restart > 0 || commit > 0 {
		if _, err := db.log.Append(&wal.Record{Type: wal.RecReplApplied, RestartLSN: restart, CommitLSN: commit}); err != nil {
			return err
		}
		if err := db.log.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close checkpoints and closes the database.
func (db *Database) Close() error {
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()
	// Stop the readahead workers before checkpointing: no prefetch I/O may
	// overlap the shutdown writes or outlive the files.
	db.buf.StopPrefetch()
	if err := db.checkpointLocked(); err != nil {
		db.closeFiles()
		return err
	}
	m := db.pf.Master()
	m.CleanShutdown = true
	if err := db.pf.WriteMaster(m); err != nil {
		db.closeFiles()
		return err
	}
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.tracer.Close()
	if err := db.log.Close(); err != nil {
		return err
	}
	if err := db.snap.Close(); err != nil {
		return err
	}
	return db.pf.Close()
}

// Tx is an engine-level transaction: it wraps a storage transaction and
// holds the shared quiesce latch for its lifetime.
type Tx struct {
	*txn.Tx
	db   *Database
	done bool

	pendingDrops []string // documents dropped by this transaction

	// applyBarrier marks a replicated-apply transaction: its physical page
	// writes change content without touching document metadata, so commit
	// must raise the resident cache's barrier instead of relying on
	// per-document invalidation.
	applyBarrier bool
}

// Begin starts an update transaction. On a replica it fails with
// ErrReplicaReadOnly: changes arrive only via ApplyReplicated until Promote.
func (db *Database) Begin() (*Tx, error) {
	if db.replica.Load() {
		return nil, ErrReplicaReadOnly
	}
	return db.beginApply()
}

// BeginReadOnly starts a non-blocking snapshot transaction (§6.3).
func (db *Database) BeginReadOnly() (*Tx, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.mu.Unlock()
	db.quiesce.RLock()
	db.pubMu.Lock()
	inner := db.txm.BeginReadOnly()
	db.pubMu.Unlock()
	return &Tx{Tx: inner, db: db}, nil
}

// Commit commits and releases the quiesce latch. Committed metadata
// versions of every modified document are published for snapshot readers.
func (t *Tx) Commit() error {
	if t.done {
		return txn.ErrDone
	}
	t.done = true
	touched := t.Tx.TouchedDocs()
	var err error
	if t.ReadOnly() {
		err = t.Tx.Commit()
	} else {
		t.db.pubMu.Lock()
		// Clone metadata before the inner commit: committing releases the
		// document locks, after which another writer may mutate the live
		// schema while we are still flattening it.
		clones := make([]*storage.Doc, len(touched))
		for i, doc := range touched {
			clones[i] = cloneDoc(doc)
		}
		err = t.Tx.Commit()
		if err == nil {
			cts := t.Tx.CommitTS()
			minSnap := t.db.txm.MinActiveSnapshot()
			for i, doc := range touched {
				t.db.docVers.publish(doc.Name, cts, clones[i], minSnap)
				t.db.resCache.Invalidate(doc.Name)
				// Feed the optimizer's staleness clock: one committed update
				// transaction per touched document.
				t.db.catalog.NoteUpdate(doc.Name)
			}
			for _, name := range t.pendingDrops {
				t.db.docVers.publish(name, cts, nil, minSnap)
				t.db.resCache.Invalidate(name)
			}
			if t.applyBarrier {
				// Still under pubMu: no reader can begin between the apply
				// commit and the cache flush, so none can cache stale content
				// under a pre-apply snapshot.
				t.db.resCache.Barrier(cts)
			}
		}
		t.db.pubMu.Unlock()
	}
	t.db.quiesce.RUnlock()
	return err
}

// Rollback aborts and releases the quiesce latch.
func (t *Tx) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	err := t.Tx.Rollback()
	t.db.quiesce.RUnlock()
	return err
}

// DB returns the owning database.
func (t *Tx) DB() *Database { return t.db }

// LockDocument takes a document-granularity lock (§6.2). Read-only
// transactions skip locking entirely.
func (t *Tx) LockDocument(name string, mode lock.Mode) error {
	return t.Lock("doc:"+name, mode)
}

// CreateDocument creates an empty document under the transaction.
func (t *Tx) CreateDocument(name string) (*storage.Doc, error) {
	if t.ReadOnly() {
		return nil, txn.ErrReadOnly
	}
	if _, exists := t.db.catalog.Doc(name); exists {
		return nil, fmt.Errorf("core: document %q already exists", name)
	}
	if err := t.LockDocument(name, lock.Exclusive); err != nil {
		return nil, err
	}
	id := t.db.catalog.AllocDocID()
	if err := t.LogRecord(&wal.Record{Type: wal.RecCreateDoc, DocID: id, Name: name}); err != nil {
		return nil, err
	}
	doc, err := storage.CreateDoc(t.Tx, id, name)
	if err != nil {
		return nil, err
	}
	t.db.catalog.Put(doc)
	t.Defer(func() { t.db.catalog.Delete(name) })
	return doc, nil
}

// DropDocument removes a document and all its storage.
func (t *Tx) DropDocument(name string) error {
	if t.ReadOnly() {
		return txn.ErrReadOnly
	}
	doc, ok := t.db.catalog.Doc(name)
	if !ok {
		return fmt.Errorf("core: document %q does not exist", name)
	}
	if err := t.LockDocument(name, lock.Exclusive); err != nil {
		return err
	}
	if err := t.LogRecord(&wal.Record{Type: wal.RecDropDoc, DocID: doc.ID, Name: name}); err != nil {
		return err
	}
	// Free every page of the document: node blocks per schema node, text
	// blocks, indirection blocks.
	var chains []sas.XPtr
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		chains = append(chains, sn.FirstBlock)
	})
	chains = append(chains, doc.TextFirst, doc.IndirFirst)
	for _, chain := range chains {
		for b := chain; !b.IsNil(); {
			next, err := storage.ChainNext(t.Tx, b)
			if err != nil {
				return err
			}
			if err := t.FreePage(sas.PageIDOf(b)); err != nil {
				return err
			}
			b = next
		}
	}
	t.db.catalog.Delete(name)
	t.Defer(func() { t.db.catalog.Put(doc) })
	t.pendingDrops = append(t.pendingDrops, name)
	return nil
}

// residentHotAccesses is how many statement accesses a document needs before
// the residency advisor promotes it without the global resident switch.
const residentHotAccesses = 32

// advisorHot reports whether the residency advisor wants doc resident even
// with the global switch off: the document has fresh ANALYZE statistics (so
// we know its shape and that it is not churning) and enough accesses to
// amortize the build.
func (db *Database) advisorHot(name string) bool {
	s := db.catalog.DocStats(name)
	if s == nil {
		return false
	}
	a := db.catalog.Activity(name)
	if s.Stale(a.Updates.Load()) {
		return false
	}
	return a.Accesses.Load() >= residentHotAccesses
}

// ResidentFor returns the resident representation of doc for this
// transaction's snapshot, or nil when the document must be served paged:
// update transaction, unversioned document, build failure, budget overflow,
// or a replication barrier. Residency triggers either globally (the
// -resident switch) or per document via the advisor: analyzed, not stale,
// and hot enough (≥ residentHotAccesses statement accesses). The cache
// builds at most once per committed version and validates shared
// representations by commit timestamp.
func (t *Tx) ResidentFor(doc *storage.Doc) *resident.Rep {
	if !t.ReadOnly() {
		return nil
	}
	if !t.db.Resident() && !t.db.advisorHot(doc.Name) {
		return nil
	}
	snap := t.SnapshotTS()
	_, vts, ok := t.db.docVers.versionAt(doc.Name, snap)
	if !ok {
		return nil
	}
	return t.db.resCache.Acquire(doc.Name, vts, snap, func() (*resident.Rep, error) {
		return resident.Build(t.Tx, doc, vts, snap)
	})
}

// Document resolves a document by name. Update transactions use the live
// catalog (they hold document locks); read-only transactions use the
// committed metadata version matching their snapshot, so concurrent
// uncommitted schema changes stay invisible (§6.1, §6.3).
func (t *Tx) Document(name string) (*storage.Doc, error) {
	if t.ReadOnly() {
		doc, ok := t.db.docVers.at(name, t.SnapshotTS())
		if !ok {
			return nil, fmt.Errorf("core: document %q does not exist", name)
		}
		return doc, nil
	}
	doc, ok := t.db.catalog.Doc(name)
	if !ok {
		return nil, fmt.Errorf("core: document %q does not exist", name)
	}
	return doc, nil
}
