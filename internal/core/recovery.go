package core

import (
	"fmt"
	"strings"

	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

// recover runs the paper's two-step recovery (§6.4) and is executed on every
// Open (a cleanly shut down database recovers trivially):
//
//  1. The transaction-consistent persistent snapshot is restored: the
//     catalog snapshot of the master's generation is loaded, and every page
//     saved to the snapshot area since that checkpoint is copied back into
//     the data file (stale areas from an older era are discarded).
//  2. The log is scanned from the checkpoint: the commit records determine
//     which transactions completed, and only their operations are redone —
//     physical page writes, allocator movements, and the logical catalog
//     records that rebuild in-memory schemas and document metadata.
//
// Afterwards per-schema node counters are recomputed and a fresh checkpoint
// is taken, so a crash during recovery restarts it idempotently.
func (db *Database) recover() error {
	master := db.pf.Master()

	// Step 0: catalog snapshot of the checkpoint generation.
	if master.MetaGen > 0 {
		cat, freeList, err := loadMeta(db.dir, master.MetaGen)
		if err != nil {
			return err
		}
		db.catalog = cat
		db.pf.ResetAllocator(master.NextAlloc, freeList)
	} else {
		db.catalog = NewCatalog()
		db.pf.ResetAllocator(master.NextAlloc, nil)
	}

	// Step 1: restore the persistent snapshot.
	if db.snap.Era() == master.CheckpointLSN {
		err := db.snap.Restore(func(id sas.PageID, data []byte) error {
			return db.pf.WritePage(id, data)
		})
		if err != nil {
			return err
		}
		if err := db.pf.Sync(); err != nil {
			return err
		}
	}
	// A mismatched era means the crash hit the window between master
	// publication and area reset: the data file already is the snapshot.
	if err := db.snap.Reset(master.CheckpointLSN); err != nil {
		return err
	}

	// Step 2, pass 1: find committed transactions.
	committed := make(map[uint64]uint64) // txn -> commitTS
	maxCTS := master.CommitTS
	err := db.log.Scan(master.CheckpointLSN, func(_ uint64, r *wal.Record) error {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = r.CommitTS
			if r.CommitTS > maxCTS {
				maxCTS = r.CommitTS
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Step 2, pass 2: redo committed operations in log order. Replication
	// progress records are recovered alongside: a standalone watermark
	// (Txn == 0) is always valid, one inside an apply transaction only if
	// that transaction committed. Later records carry larger watermarks, so
	// plain assignment keeps the maximum.
	redo := &redoState{db: db, pages: make(map[sas.PageID][]byte)}
	var replRestart, replCommit uint64
	err = db.log.Scan(master.CheckpointLSN, func(_ uint64, r *wal.Record) error {
		if r.Type == wal.RecCheckpoint {
			return nil
		}
		if r.Type == wal.RecReplApplied {
			_, ok := committed[r.Txn]
			if r.Txn == 0 || ok {
				replRestart, replCommit = r.RestartLSN, r.CommitLSN
			}
			return nil
		}
		if _, ok := committed[r.Txn]; !ok {
			return nil
		}
		return redo.apply(r)
	})
	if err != nil {
		return err
	}
	if err := redo.flush(); err != nil {
		return err
	}
	db.txm.SetCommitTS(maxCTS)
	db.noteReplProgress(replRestart, replCommit)

	// Recompute schema counters from block headers and publish the initial
	// committed metadata version of every document.
	for _, name := range db.catalog.DocNames() {
		doc, _ := db.catalog.Doc(name)
		if err := db.recountDoc(doc); err != nil {
			return err
		}
		db.docVers.publish(name, maxCTS, cloneDoc(doc), 0)
	}

	// Fresh checkpoint: bounds the next recovery and clears redo work.
	return db.checkpointLocked()
}

// redoState applies redo records against a private page cache, flushing to
// the data file at the end.
type redoState struct {
	db    *Database
	pages map[sas.PageID][]byte
}

func (rs *redoState) page(id sas.PageID) ([]byte, error) {
	if p, ok := rs.pages[id]; ok {
		return p, nil
	}
	p := make([]byte, sas.PageSize)
	if err := rs.db.pf.ReadPage(id, p); err != nil {
		return nil, err
	}
	rs.pages[id] = p
	return p, nil
}

func (rs *redoState) apply(r *wal.Record) error {
	db := rs.db
	switch r.Type {
	case wal.RecPageWrite:
		p, err := rs.page(r.Page)
		if err != nil {
			return err
		}
		if int(r.Off)+len(r.Data) > len(p) {
			return fmt.Errorf("core: redo write out of page bounds at %v+%d", r.Page, r.Off)
		}
		copy(p[r.Off:], r.Data)
	case wal.RecAllocPage:
		db.pf.RedoAlloc(r.Page)
	case wal.RecFreePage:
		db.pf.Free(r.Page)
	case wal.RecCreateDoc:
		doc := &storage.Doc{ID: r.DocID, Name: r.Name, Schema: schema.New()}
		db.catalog.Put(doc)
	case wal.RecDropDoc:
		db.catalog.Delete(r.Name)
	case wal.RecAddSchemaNode:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("core: redo schema node for unknown doc %d", r.DocID)
		}
		parent := doc.Schema.ByID(r.ParentID)
		if parent == nil {
			return fmt.Errorf("core: redo schema node %d: unknown parent %d", r.NodeID, r.ParentID)
		}
		if _, err := doc.Schema.AddWithID(parent, r.NodeID, schema.NodeKind(r.Kind), r.Name); err != nil {
			return err
		}
	case wal.RecSchemaBlocks:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("core: redo schema blocks for unknown doc %d", r.DocID)
		}
		sn := doc.Schema.ByID(r.NodeID)
		if sn == nil {
			return fmt.Errorf("core: redo schema blocks: unknown node %d", r.NodeID)
		}
		sn.FirstBlock, sn.LastBlock = r.Ptrs[0], r.Ptrs[1]
	case wal.RecDocMeta:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("core: redo doc meta for unknown doc %d", r.DocID)
		}
		doc.RootHandle = r.Ptrs[0]
		doc.IndirFirst, doc.IndirLast = r.Ptrs[1], r.Ptrs[2]
		doc.TextFirst, doc.TextLast = r.Ptrs[3], r.Ptrs[4]
	case wal.RecCreateIndex:
		doc, ok := db.catalog.DocByID(r.DocID)
		if !ok {
			return fmt.Errorf("core: redo index for unknown doc %d", r.DocID)
		}
		parts := strings.SplitN(r.Path, "\x1f", 3)
		ix := &IndexMeta{Name: r.Name, DocName: doc.Name}
		if len(parts) == 3 {
			ix.OnPath, ix.ByPath, ix.KeyType = parts[0], parts[1], parts[2]
		}
		db.catalog.PutIndex(ix)
	case wal.RecDropIndex:
		db.catalog.DeleteIndex(r.Name)
	case wal.RecIndexMeta:
		if ix, ok := db.catalog.Index(r.Name); ok {
			ix.Root = r.Ptrs[0]
		}
	case wal.RecBulkLoad:
		// The load's whole-page images were already replayed physically;
		// per-document counters are recomputed from block headers afterwards.
	case wal.RecBegin, wal.RecCommit, wal.RecAbort:
	}
	return nil
}

func (rs *redoState) flush() error {
	for id, p := range rs.pages {
		if err := rs.db.pf.WritePage(id, p); err != nil {
			return err
		}
	}
	if len(rs.pages) > 0 {
		return rs.db.pf.Sync()
	}
	return nil
}

// recountDoc recomputes NodeCount and BlockCount for every schema node of a
// document by scanning block headers.
func (db *Database) recountDoc(doc *storage.Doc) error {
	tx := db.txm.BeginReadOnly()
	defer tx.Rollback()
	var outer error
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		if outer != nil {
			return
		}
		var nodes uint64
		var blocks uint32
		for b := sn.FirstBlock; !b.IsNil(); {
			var count int
			var next sas.XPtr
			err := tx.ReadPage(b, func(page []byte) error {
				count, next = storage.BlockCountNext(page)
				return nil
			})
			if err != nil {
				outer = err
				return
			}
			nodes += uint64(count)
			blocks++
			b = next
		}
		sn.NodeCount = nodes
		sn.BlockCount = blocks
	})
	return outer
}
