package core

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

// BulkLoadMode selects the document-ingest path for LoadXML.
type BulkLoadMode int

const (
	// BulkLoadAuto (the default) streams the document through the direct
	// block-construction bulk loader whenever the target document was
	// freshly created in this transaction — which LoadXML's create-then-load
	// always satisfies. Fragment inserts into existing documents (LoadInto
	// from update statements) keep the node-at-a-time path.
	BulkLoadAuto BulkLoadMode = iota
	// BulkLoadOff forces the node-at-a-time insert path everywhere — the
	// escape hatch, and the reference behavior the bulk path must match
	// byte for byte.
	BulkLoadOff
)

// bulkFlushHook, when set, is passed to every bulk loader as its flush
// hook: it runs after each whole-page write, and an error aborts the load.
// Crash-injection tests install it via SetBulkFlushHookForTesting.
var bulkFlushHook func(pagesFlushed uint64) error

// SetBulkFlushHookForTesting installs (or, with nil, removes) the global
// bulk-load flush hook. Not safe against concurrent loads; tests only.
func SetBulkFlushHookForTesting(fn func(pagesFlushed uint64) error) { bulkFlushHook = fn }

// bulkLoadInto streams the XML token stream from r straight into block
// construction for doc (freshly created in this transaction). Token
// handling mirrors LoadInto exactly — same whitespace, namespace,
// top-level and directive rules — so the two paths produce byte-identical
// documents.
func (t *Tx) bulkLoadInto(doc *storage.Doc, r io.Reader) error {
	start := time.Now()
	bl, err := storage.NewBulkLoader(t.Tx, doc)
	if err != nil {
		return err
	}
	if bulkFlushHook != nil {
		bl.SetFlushHook(bulkFlushHook)
	}
	dec := xml.NewDecoder(r)
	dec.Strict = true
	stack := []*storage.BulkNode{bl.Root()}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return parseErr(dec, err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			n, err := bl.AppendElement(stack[len(stack)-1], xmlName(tk.Name))
			if err != nil {
				return err
			}
			stack = append(stack, n)
			// Attributes become attribute children of the element.
			for _, a := range tk.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not stored as attributes
				}
				if err := bl.AppendLeaf(n, schema.KindAttribute, xmlName(a.Name), []byte(a.Value)); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if len(stack) == 1 {
				return fmt.Errorf("core: unbalanced end element %s at byte %d", xmlName(tk.Name), dec.InputOffset())
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(tk)
			if !t.db.opts.KeepWhitespace && strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 1 {
				continue // ignore top-level whitespace/prolog text
			}
			if err := bl.AppendLeaf(stack[len(stack)-1], schema.KindText, "", []byte(s)); err != nil {
				return err
			}
		case xml.Comment:
			if len(stack) == 1 {
				continue
			}
			if err := bl.AppendLeaf(stack[len(stack)-1], schema.KindComment, "", []byte(tk)); err != nil {
				return err
			}
		case xml.ProcInst:
			if len(stack) == 1 {
				continue
			}
			if err := bl.AppendLeaf(stack[len(stack)-1], schema.KindPI, tk.Target, tk.Inst); err != nil {
				return err
			}
		case xml.Directive:
			// DOCTYPE etc. — not stored.
		}
	}
	if len(stack) != 1 {
		return fmt.Errorf("core: unbalanced XML: %d unclosed elements", len(stack)-1)
	}
	stats, err := bl.Finish()
	if err != nil {
		return err
	}
	loadBytes := uint64(dec.InputOffset())
	if err := t.LogRecord(&wal.Record{
		Type: wal.RecBulkLoad, DocID: doc.ID, Name: doc.Name,
		Nodes: stats.Nodes, Blocks: stats.Blocks, Bytes: loadBytes,
	}); err != nil {
		return err
	}
	el := time.Since(start)
	met := t.db.met
	met.Counter("load.bulk_loads").Inc()
	met.Counter("load.nodes").Add(stats.Nodes)
	met.Counter("load.blocks_built").Add(stats.Blocks)
	met.Counter("load.bytes").Add(loadBytes)
	met.Counter("load.pages_flushed").Add(stats.PagesFlushed)
	met.Histogram("load.ns").Observe(el)
	if secs := el.Seconds(); secs > 0 {
		met.Gauge("load.nodes_per_sec").Set(int64(float64(stats.Nodes) / secs))
	}
	return nil
}

// parseErr wraps an XML decoder error with the byte offset (and, when the
// decoder reports one, the line) of the failing token.
func parseErr(dec *xml.Decoder, err error) error {
	var syn *xml.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("core: parse XML at byte %d (line %d): %w", dec.InputOffset(), syn.Line, err)
	}
	return fmt.Errorf("core: parse XML at byte %d: %w", dec.InputOffset(), err)
}
