package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
	"sedna/internal/query"
	"sedna/internal/storage"
	"sedna/internal/xmlgen"
)

// TestOutOfCoreDocument loads a document far larger than the buffer pool,
// forcing evictions (with WAL-rule flushes and snapshot-area saves), then
// verifies integrity and query results — the buffer-manager path of Fig. 4
// under memory pressure.
func TestOutOfCoreDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus")
	}
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 32}) // 512 KiB pool
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const entries = 2000 // ≈ 4 MiB of pages
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("big", strings.NewReader(xmlgen.LibraryString(entries, 9))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := db.BufferStats(); st.Evictions == 0 {
		t.Fatal("expected evictions with a 32-page pool")
	}

	rtx, _ := db.BeginReadOnly()
	defer rtx.Rollback()
	doc, err := rtx.Document("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
		t.Fatalf("integrity under eviction: %v", err)
	}
	res, err := query.Execute(query.NewExecCtx(rtx), `count(doc("big")/library/book)`)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.String()
	if got != "1600" { // 4/5 of entries are books
		t.Fatalf("book count = %s, want 1600", got)
	}
}

// TestOutOfCoreSnapshotReadersDuringUpdates combines memory pressure with
// snapshot isolation: while an updater commits batches, snapshot readers
// with an eviction-heavy pool must still see consistent states.
func TestOutOfCoreSnapshotReadersDuringUpdates(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("d", strings.NewReader(xmlgen.LibraryString(400, 3))); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	baseline := docCount(t, db, `count(doc("d")//book)`)
	var readers, updater sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Updater: keeps inserting books in batches until told to stop.
	updater.Add(1)
	go func() {
		defer updater.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := db.Begin()
			if err != nil {
				errs <- err
				return
			}
			stmt := fmt.Sprintf(`UPDATE insert <book><title>new %d</title></book> into doc("d")/library`, i)
			if _, err := query.Execute(query.NewExecCtx(tx), stmt); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: every snapshot must be consistent and contain at least the
	// baseline books.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 30; i++ {
				rtx, err := db.BeginReadOnly()
				if err != nil {
					errs <- err
					return
				}
				res, err := query.Execute(query.NewExecCtx(rtx), `count(doc("d")//book)`)
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					rtx.Rollback()
					return
				}
				sVal, _ := res.String()
				rtx.Rollback()
				var n int
				fmt.Sscanf(sVal, "%d", &n)
				if n < baseline {
					errs <- fmt.Errorf("reader saw %d books, baseline %d", n, baseline)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	updater.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Final integrity check.
	rtx, _ := db.BeginReadOnly()
	defer rtx.Rollback()
	doc, _ := rtx.Document("d")
	if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
		t.Fatal(err)
	}
}

func docCount(t *testing.T, db *core.Database, q string) int {
	t.Helper()
	rtx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer rtx.Rollback()
	res, err := query.Execute(query.NewExecCtx(rtx), q)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.String()
	var n int
	fmt.Sscanf(s, "%d", &n)
	return n
}

// TestDropDocumentUnderSnapshotReader verifies that a snapshot reader keeps
// a consistent view of a document that a concurrent transaction drops and
// whose pages may be recycled: the version store preserves page content and
// the metadata version store preserves the catalog entry.
func TestDropDocumentUnderSnapshotReader(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("victim", strings.NewReader(xmlgen.LibraryString(50, 4))); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	reader, _ := db.BeginReadOnly()
	defer reader.Rollback()

	// Drop the document and immediately reuse the space with a new one.
	tx2, _ := db.Begin()
	if err := tx2.DropDocument("victim"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := db.Begin()
	if _, err := tx3.LoadXML("replacement", strings.NewReader(xmlgen.LibraryString(80, 5))); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()

	// The old snapshot still resolves and verifies the dropped document.
	doc, err := reader.Document("victim")
	if err != nil {
		t.Fatalf("snapshot lost the dropped document: %v", err)
	}
	if err := storage.VerifyDoc(reader.Tx, doc); err != nil {
		t.Fatalf("dropped document corrupt in snapshot: %v", err)
	}
	res, err := query.Execute(query.NewExecCtx(reader), `count(doc("victim")//book)`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String(); got != "40" { // 4/5 of 50 entries
		t.Fatalf("snapshot book count = %s, want 40", got)
	}

	// A new reader no longer sees it.
	r2, _ := db.BeginReadOnly()
	defer r2.Rollback()
	if _, err := r2.Document("victim"); err == nil {
		t.Fatal("dropped document visible to a new snapshot")
	}
}

// TestConcurrentMultiDocumentWorkload hammers several documents from
// concurrent writers and readers; document-granularity locks must allow
// disjoint writers to proceed in parallel while keeping every document
// internally consistent.
func TestConcurrentMultiDocumentWorkload(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const docs = 4
	for d := 0; d < docs; d++ {
		tx, _ := db.Begin()
		if _, err := tx.LoadXML(fmt.Sprintf("doc%d", d), strings.NewReader("<r/>")); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < docs*2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			docName := fmt.Sprintf("doc%d", w%docs)
			for i := 0; i < 25; i++ {
				if rng.Intn(3) == 0 {
					rtx, err := db.BeginReadOnly()
					if err != nil {
						errs <- err
						return
					}
					if _, err := query.Execute(query.NewExecCtx(rtx),
						fmt.Sprintf(`count(doc(%q)//x)`, docName)); err != nil {
						errs <- err
						rtx.Rollback()
						return
					}
					rtx.Rollback()
					continue
				}
				tx, err := db.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := query.Execute(query.NewExecCtx(tx),
					fmt.Sprintf(`UPDATE insert <x w="%d" i="%d"/> into doc(%q)/r`, w, i, docName)); err != nil {
					errs <- err
					tx.Rollback()
					return
				}
				if rng.Intn(5) == 0 {
					tx.Rollback()
				} else if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rtx, _ := db.BeginReadOnly()
	defer rtx.Rollback()
	for d := 0; d < docs; d++ {
		doc, err := rtx.Document(fmt.Sprintf("doc%d", d))
		if err != nil {
			t.Fatal(err)
		}
		if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
			t.Fatalf("doc%d: %v", d, err)
		}
	}
}
