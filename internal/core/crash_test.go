package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sedna/internal/core"
	"sedna/internal/query"
	"sedna/internal/storage"
)

// TestRandomizedCrashRecovery runs randomized committed/aborted update
// transactions against a database, crashes at a random point, recovers, and
// verifies (a) full structural integrity of every document and (b) that the
// visible state equals the model of committed statements.
func TestRandomizedCrashRecovery(t *testing.T) {
	for round := 0; round < 5; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + round)))
			dir := t.TempDir()
			db, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 64})
			if err != nil {
				t.Fatal(err)
			}
			tx, _ := db.Begin()
			if _, err := tx.LoadXML("d", strings.NewReader("<r><items/><log/></r>")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			committedItems := 0
			steps := 20 + rng.Intn(40)
			for i := 0; i < steps; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Fatal(err)
				}
				stmt := fmt.Sprintf(`UPDATE insert <item n="%d"/> into doc("d")/r/items`, i)
				if _, err := query.Execute(query.NewExecCtx(tx), stmt); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(4) == 0 {
					tx.Rollback()
				} else {
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					committedItems++
				}
				if rng.Intn(10) == 0 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			db.CrashForTesting()

			db2, err := core.Open(dir, core.Options{NoSync: true, BufferPages: 64})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			rtx, _ := db2.BeginReadOnly()
			defer rtx.Rollback()
			doc, err := rtx.Document("d")
			if err != nil {
				t.Fatal(err)
			}
			if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
				t.Fatalf("integrity after recovery: %v", err)
			}
			res, err := query.Execute(query.NewExecCtx(rtx), `count(doc("d")/r/items/item)`)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.String()
			if got != fmt.Sprint(committedItems) {
				t.Fatalf("recovered %s items, committed %d", got, committedItems)
			}
		})
	}
}

// TestCrashDuringCheckpointEra exercises the snapshot-area era logic: crash
// right after a checkpoint, then again after post-checkpoint commits, and
// make sure each recovery converges.
func TestCrashDoubleRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.LoadXML("d", strings.NewReader("<r><a>1</a></r>"))
	tx.Commit()
	db.Checkpoint()
	tx, _ = db.Begin()
	if _, err := query.Execute(query.NewExecCtx(tx), `UPDATE insert <b/> into doc("d")/r`); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.CrashForTesting()

	// First recovery.
	db2, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Crash again immediately — recovery must be idempotent.
	db2.CrashForTesting()
	db3, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rtx, _ := db3.BeginReadOnly()
	defer rtx.Rollback()
	res, err := query.Execute(query.NewExecCtx(rtx), `count(doc("d")/r/b)`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String(); got != "1" {
		t.Fatalf("after double recovery: %s", got)
	}
	doc, _ := rtx.Document("d")
	if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryWithIndexes checks that index pages and metadata survive a
// crash: physical redo restores the B+tree, logical records restore the
// catalog entry.
func TestRecoveryWithIndexes(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tx.LoadXML("d", strings.NewReader(`<r><e><k>alpha</k></e><e><k>beta</k></e></r>`))
	tx.Commit()
	tx, _ = db.Begin()
	if _, err := query.Execute(query.NewExecCtx(tx), `CREATE INDEX "byk" ON doc("d")/r/e BY k AS string`); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	// Post-index committed insert, maintained in the index.
	tx, _ = db.Begin()
	if _, err := query.Execute(query.NewExecCtx(tx), `UPDATE insert <e><k>gamma</k></e> into doc("d")/r`); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.CrashForTesting()

	db2, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rtx, _ := db2.BeginReadOnly()
	defer rtx.Rollback()
	for _, k := range []string{"alpha", "beta", "gamma"} {
		res, err := query.Execute(query.NewExecCtx(rtx), fmt.Sprintf(`count(index-scan("byk", %q))`, k))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.String(); got != "1" {
			t.Fatalf("index-scan(%q) after recovery = %s", k, got)
		}
	}
}
