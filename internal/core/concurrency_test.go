package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
	"sedna/internal/query"
	"sedna/internal/xmlgen"
)

// TestParallelReadOnlyQueries drives many snapshot readers through the full
// engine stack at once. Every dereference takes the sharded buffer
// manager's stripe read-lock fast path; under -race this checks that
// concurrent readers share frames, slots and pin counts without a data
// race, and every reader must compute the same answer over the quiescent
// document.
func TestParallelReadOnlyQueries(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	if _, err := tx.LoadXML("lib", strings.NewReader(xmlgen.LibraryString(300, 5))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := docCount(t, db, `count(doc("lib")//book)`)

	const goroutines = 8
	const queriesEach = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				rtx, err := db.BeginReadOnly()
				if err != nil {
					errs <- err
					return
				}
				res, err := query.Execute(query.NewExecCtx(rtx), `count(doc("lib")//book)`)
				if err != nil {
					errs <- err
					rtx.Rollback()
					return
				}
				s, _ := res.String()
				rtx.Rollback()
				var n int
				fmt.Sscanf(s, "%d", &n)
				if n != want {
					errs <- fmt.Errorf("parallel reader counted %d books, want %d", n, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
