package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestSharedLocksCompatible(t *testing.T) {
	m := New()
	if err := m.Lock(1, "doc", Shared, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "doc", Shared, 0); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := New()
	if err := m.Lock(1, "doc", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(2, "doc", Shared, 0) }()
	select {
	case <-done:
		t.Fatal("shared lock granted while exclusive held")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
}

func TestRelockSameModeNoop(t *testing.T) {
	m := New()
	if err := m.Lock(1, "doc", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "doc", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "doc", Shared, 0); err != nil {
		t.Fatal(err) // weaker re-lock is a no-op
	}
	m.ReleaseAll(1)
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := New()
	if err := m.Lock(1, "doc", Shared, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "doc", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldModes(1)["doc"]; got != Exclusive {
		t.Fatalf("mode = %v", got)
	}
	m.ReleaseAll(1)
}

func TestUpgradeWaitsForOtherReader(t *testing.T) {
	m := New()
	m.Lock(1, "doc", Shared, 0)
	m.Lock(2, "doc", Shared, 0)
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, "doc", Exclusive, 0) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another reader holds the lock")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	m.Lock(1, "a", Exclusive, 0)
	m.Lock(2, "b", Exclusive, 0)

	got := make(chan error, 1)
	go func() { got <- m.Lock(1, "b", Exclusive, 0) }() // 1 waits for 2
	time.Sleep(30 * time.Millisecond)
	err := m.Lock(2, "a", Exclusive, 0) // closes the cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts; txn 1 proceeds.
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Two readers both upgrading is the classic upgrade deadlock.
	m := New()
	m.Lock(1, "doc", Shared, 0)
	m.Lock(2, "doc", Shared, 0)
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, "doc", Exclusive, 0) }()
	time.Sleep(30 * time.Millisecond)
	err := m.Lock(2, "doc", Exclusive, 0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestTimeout(t *testing.T) {
	m := New()
	m.Lock(1, "doc", Exclusive, 0)
	err := m.Lock(2, "doc", Shared, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	m.ReleaseAll(1)
	// After timeout the queue must not retain the dead request.
	if err := m.Lock(3, "doc", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestFIFONoWriterStarvation(t *testing.T) {
	m := New()
	m.Lock(1, "doc", Shared, 0)
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Lock(2, "doc", Exclusive, 0) }()
	time.Sleep(20 * time.Millisecond)
	// A later reader must NOT overtake the queued writer.
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Lock(3, "doc", Shared, 0) }()
	select {
	case <-readerDone:
		t.Fatal("reader overtook queued writer")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(txn uint64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				mode := Shared
				if j%5 == 0 {
					mode = Exclusive
				}
				err := m.Lock(txn, "doc", mode, time.Second)
				if err != nil {
					if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) {
						errs <- err
					}
					m.ReleaseAll(txn)
					continue
				}
				m.ReleaseAll(txn)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
