// Package lock implements the strict two-phase-locking manager of §6.2:
// shared/exclusive locks at XML-document granularity, lock upgrade, FIFO
// queuing, and deadlock detection over the wait-for graph. Locks are held
// until commit or rollback (strictness) by the transaction layer calling
// ReleaseAll.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sedna/internal/metrics"
	"sedna/internal/trace"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrDeadlock reports that granting the request would close a cycle in the
// wait-for graph; the caller should abort the transaction.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrTimeout reports that the lock was not granted within the deadline.
var ErrTimeout = errors.New("lock: timeout")

type request struct {
	txn   uint64
	mode  Mode
	ready chan struct{}
}

type entry struct {
	holders map[uint64]Mode
	queue   []*request
}

// Manager is the lock manager.
type Manager struct {
	mu      sync.Mutex
	table   map[string]*entry
	held    map[uint64]map[string]Mode // per-txn held locks, for ReleaseAll
	waitFor map[uint64]map[uint64]bool // wait-for graph edges

	// tracer resolves the active trace span of a waiting transaction, so
	// lock waits appear in its trace. Only consulted on the wait path.
	tracer *trace.Tracer

	met lockMetrics
}

// SetTracer wires the tracer lock waits report spans into (nil disables).
func (m *Manager) SetTracer(t *trace.Tracer) { m.tracer = t }

// lockMetrics binds the lock-manager counters in a metrics registry.
type lockMetrics struct {
	acquires  *metrics.Counter
	waits     *metrics.Counter
	waitNs    *metrics.Histogram
	deadlocks *metrics.Counter
	timeouts  *metrics.Counter
	waiting   *metrics.Gauge
}

func bindLockMetrics(reg *metrics.Registry) lockMetrics {
	return lockMetrics{
		acquires:  reg.Counter("lock.acquires"),
		waits:     reg.Counter("lock.waits"),
		waitNs:    reg.Histogram("lock.wait_ns"),
		deadlocks: reg.Counter("lock.deadlock_aborts"),
		timeouts:  reg.Counter("lock.timeouts"),
		waiting:   reg.Gauge("lock.waiting"),
	}
}

// New creates a lock manager reporting into a private metrics registry.
func New() *Manager {
	return NewWithMetrics(nil)
}

// NewWithMetrics creates a lock manager that reports its counters into reg
// under the "lock." family (nil = a fresh private registry).
func NewWithMetrics(reg *metrics.Registry) *Manager {
	return &Manager{
		table:   make(map[string]*entry),
		held:    make(map[uint64]map[string]Mode),
		waitFor: make(map[uint64]map[uint64]bool),
		met:     bindLockMetrics(metrics.OrNew(reg)),
	}
}

// Lock acquires res in the given mode for txn, blocking until granted, a
// deadlock is detected, or the timeout expires (0 = no timeout). Re-locking
// in the same or weaker mode is a no-op; Shared→Exclusive upgrades are
// supported.
func (m *Manager) Lock(txn uint64, res string, mode Mode, timeout time.Duration) error {
	m.mu.Lock()
	e := m.table[res]
	if e == nil {
		e = &entry{holders: make(map[uint64]Mode)}
		m.table[res] = e
	}
	if cur, ok := e.holders[txn]; ok && cur >= mode {
		m.mu.Unlock()
		m.met.acquires.Inc()
		return nil
	}
	if m.grantable(e, txn, mode) {
		m.grant(e, txn, res, mode)
		m.mu.Unlock()
		m.met.acquires.Inc()
		return nil
	}
	// Must wait: record wait-for edges and check for a cycle.
	req := &request{txn: txn, mode: mode, ready: make(chan struct{})}
	e.queue = append(e.queue, req)
	m.addEdges(txn, e)
	if m.cycleFrom(txn) {
		m.removeRequest(e, req)
		m.clearEdges(txn)
		m.mu.Unlock()
		m.met.deadlocks.Inc()
		return fmt.Errorf("%w: txn %d on %q", ErrDeadlock, txn, res)
	}
	// Pick one conflicting transaction to name in the trace: an
	// incompatible holder if any, else whoever holds the resource.
	var blocker uint64
	for t, held := range e.holders {
		if t == txn {
			continue
		}
		if blocker == 0 {
			blocker = t
		}
		if mode == Exclusive || held == Exclusive {
			blocker = t
			break
		}
	}
	m.mu.Unlock()
	m.met.waits.Inc()
	m.met.waiting.Inc()
	// This goroutine is the waiting transaction's own statement goroutine,
	// so attaching a span to its active trace is race-free.
	ws := m.tracer.ActiveFor(txn).Child("lock.wait")
	ws.SetStr("resource", res)
	ws.SetStr("mode", mode.String())
	if blocker != 0 {
		ws.SetInt("blocking_txn", int64(blocker))
	}
	waitStart := time.Now()
	defer func() {
		ws.End()
		m.met.waiting.Dec()
		m.met.waitNs.Observe(time.Since(waitStart))
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-req.ready:
		m.met.acquires.Inc()
		ws.SetStr("outcome", "granted")
		return nil
	case <-timer:
		m.mu.Lock()
		defer m.mu.Unlock()
		select {
		case <-req.ready:
			// Granted in the race window.
			m.met.acquires.Inc()
			ws.SetStr("outcome", "granted")
			return nil
		default:
		}
		m.removeRequest(e, req)
		m.clearEdges(txn)
		m.met.timeouts.Inc()
		ws.SetStr("outcome", "timeout")
		return fmt.Errorf("%w: txn %d on %q", ErrTimeout, txn, res)
	}
}

// grantable reports whether txn may take res in mode right now. FIFO
// fairness: a request must also not overtake earlier incompatible waiters,
// except for upgrades, which take priority.
func (m *Manager) grantable(e *entry, txn uint64, mode Mode) bool {
	_, upgrading := e.holders[txn]
	for t, held := range e.holders {
		if t == txn {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	if upgrading {
		return true
	}
	for _, q := range e.queue {
		if q.txn == txn {
			break // only waiters queued earlier can block this request
		}
		if mode == Exclusive || q.mode == Exclusive {
			return false // don't overtake earlier incompatible waiters
		}
	}
	return true
}

func (m *Manager) grant(e *entry, txn uint64, res string, mode Mode) {
	e.holders[txn] = mode
	h := m.held[txn]
	if h == nil {
		h = make(map[string]Mode)
		m.held[txn] = h
	}
	h[res] = mode
	m.clearEdges(txn)
}

// addEdges adds wait-for edges from txn to every incompatible holder.
func (m *Manager) addEdges(txn uint64, e *entry) {
	edges := m.waitFor[txn]
	if edges == nil {
		edges = make(map[uint64]bool)
		m.waitFor[txn] = edges
	}
	for t := range e.holders {
		if t != txn {
			edges[t] = true
		}
	}
}

func (m *Manager) clearEdges(txn uint64) {
	delete(m.waitFor, txn)
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// txn.
func (m *Manager) cycleFrom(txn uint64) bool {
	seen := make(map[uint64]bool)
	var dfs func(t uint64) bool
	dfs = func(t uint64) bool {
		if t == txn && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.waitFor[t] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range m.waitFor[txn] {
		seen[txn] = true
		if dfs(next) {
			return true
		}
	}
	return false
}

func (m *Manager) removeRequest(e *entry, req *request) {
	for i, q := range e.queue {
		if q == req {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll releases every lock txn holds and wakes up grantable waiters —
// the shrink phase of strict 2PL, run at commit or rollback.
func (m *Manager) ReleaseAll(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[txn] {
		e := m.table[res]
		if e == nil {
			continue
		}
		delete(e.holders, txn)
		m.wakeLocked(res, e)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.table, res)
		}
	}
	delete(m.held, txn)
	m.clearEdges(txn)
}

// wakeLocked grants queued requests that became compatible, in FIFO order
// (upgrades first).
func (m *Manager) wakeLocked(res string, e *entry) {
	for {
		granted := false
		for _, q := range e.queue {
			if m.grantable(e, q.txn, q.mode) {
				m.removeRequest(e, q)
				m.grant(e, q.txn, res, q.mode)
				close(q.ready)
				granted = true
				break
			}
		}
		if !granted {
			return
		}
	}
}

// HeldModes returns a copy of the locks txn currently holds (for tests and
// the governor's introspection).
func (m *Manager) HeldModes(txn uint64) map[string]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Mode, len(m.held[txn]))
	for k, v := range m.held[txn] {
		out[k] = v
	}
	return out
}
