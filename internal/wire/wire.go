// Package wire defines the client-server wire protocol: a small
// length-prefixed message format on TCP. Control messages (queries,
// transaction verbs, runtime tuning) are JSON payloads; the replication
// stream negotiated by MsgReplicate switches the connection to raw binary
// frames carrying seed files and write-ahead-log bytes.
//
// The package exists below both the server and the replication subsystem so
// that primaries (package server), replicas (package repl) and the Go driver
// (package client) share one frame format without import cycles.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Message types (client → server).
const (
	MsgHello      = 1
	MsgBegin      = 2
	MsgExecute    = 3
	MsgCommit     = 4
	MsgRollback   = 5
	MsgQuit       = 6
	MsgMetrics    = 7
	MsgSlowLog    = 8
	MsgWorkers    = 9
	MsgPrefetch   = 10
	MsgReplicate  = 11 // switch the connection to a replication stream
	MsgReplStatus = 12 // report replication topology and lag
	MsgPromote    = 13 // promote a replica to a writable primary
	MsgSessions   = 14 // list live sessions with per-session accounting
	MsgKill       = 15 // cancel another session's in-flight statement
	MsgCluster    = 16 // merged topology: local sessions + per-replica lag
	MsgResident   = 17 // report or toggle the resident-mode switch
)

// Message types (server → client).
const (
	MsgOK     = 64
	MsgResult = 65
	MsgError  = 66
)

// Replication stream frame types (after a MsgReplicate handshake). Frame
// payloads are raw bytes, not JSON, except where noted.
const (
	// FrameSeedFile announces one seed file; JSON payload SeedFile.
	FrameSeedFile = 0x50
	// FrameSeedData carries a chunk of the announced file's bytes.
	FrameSeedData = 0x51
	// FrameSeedDone ends the seed transfer (empty payload).
	FrameSeedDone = 0x52
	// FrameWAL carries log records: 8-byte little-endian start LSN followed
	// by record-aligned raw log bytes (primary → replica).
	FrameWAL = 0x53
	// FrameHeartbeat carries the primary's current durable LSN as 8 bytes
	// little-endian, sent when the stream is caught up (primary → replica).
	FrameHeartbeat = 0x54
	// FrameAck carries the replica's restart LSN as 8 bytes little-endian:
	// everything below it is applied (replica → primary).
	FrameAck = 0x55
)

// maxMessage bounds a single protocol message or frame.
const maxMessage = 64 << 20

// ErrTooLarge reports a framed message whose declared length exceeds the
// protocol limit. The server answers it with a protocol error before closing
// the connection; everything after the oversized header is unparseable.
var ErrTooLarge = errors.New("wire: message exceeds size limit")

// Request is a client message payload.
type Request struct {
	ReadOnly bool   `json:"readonly,omitempty"` // MsgBegin
	Query    string `json:"query,omitempty"`    // MsgExecute

	// MsgSlowLog: N bounds how many retained slow traces to return (0 =
	// all); when SetThreshold is set, the server first updates the
	// slow-query threshold to ThresholdNs (0 disables the slow log).
	N            int   `json:"n,omitempty"`
	ThresholdNs  int64 `json:"threshold_ns,omitempty"`
	SetThreshold bool  `json:"set_threshold,omitempty"`

	// MsgWorkers: when SetWorkers is set, the server updates the intra-query
	// parallelism cap to Workers (≤ 0 restores the GOMAXPROCS default); the
	// response always reports the effective worker budget.
	Workers    int  `json:"workers,omitempty"`
	SetWorkers bool `json:"set_workers,omitempty"`

	// MsgPrefetch: when SetPrefetch is set, the server updates the default
	// chain-readahead depth to Prefetch (≤ 0 disables readahead); the
	// response always reports the effective depth.
	Prefetch    int  `json:"prefetch,omitempty"`
	SetPrefetch bool `json:"set_prefetch,omitempty"`

	// MsgResident: when SetResident is set, the server switches the
	// compressed in-memory resident mode on or off; the response always
	// reports the effective state ("on"/"off").
	Resident    bool `json:"resident,omitempty"`
	SetResident bool `json:"set_resident,omitempty"`

	// MsgReplicate: the joining replica asks for the stream to start at
	// FromLSN; with NeedSeed it requests a hot-backup seed transfer first
	// (FromLSN is then ignored — the stream starts at the backup's durable
	// LSN, reported in the Handshake).
	FromLSN  uint64 `json:"from_lsn,omitempty"`
	NeedSeed bool   `json:"need_seed,omitempty"`

	// MsgKill: cancel the target session's in-flight statement. When
	// KillStatement is non-zero the kill only lands if that statement (by
	// per-session ordinal, as reported by SESSIONS) is still the one
	// running — a fence against killing an innocent successor.
	KillSession   uint64 `json:"kill_session,omitempty"`
	KillStatement uint64 `json:"kill_statement,omitempty"`
}

// Response is a server message payload.
type Response struct {
	Message string `json:"message,omitempty"`
	Data    string `json:"data,omitempty"`
	Updated int    `json:"updated,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Handshake is the primary's JSON answer to MsgReplicate (in Response.Data),
// sent before the binary stream begins.
type Handshake struct {
	// Seed reports whether seed-file frames precede the WAL stream.
	Seed bool `json:"seed"`
	// StartLSN is the primary-log position the WAL stream begins at.
	StartLSN uint64 `json:"start_lsn"`
}

// SeedFile is the JSON payload of a FrameSeedFile frame.
type SeedFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// WriteMsg frames and writes one JSON message.
func WriteMsg(w io.Writer, typ byte, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	return WriteFrame(w, typ, body)
}

// ReadMsg reads one framed JSON message.
func ReadMsg(r io.Reader, payload any) (byte, error) {
	typ, body, err := ReadFrame(r)
	if err != nil {
		return 0, err
	}
	if payload != nil {
		if err := json.Unmarshal(body, payload); err != nil {
			return 0, err
		}
	}
	return typ, nil
}

// WriteFrame writes one frame with a raw payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame and returns its type and raw payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxMessage {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}
