package wal

import (
	"fmt"
	"testing"
)

// TestReaderTailsInChunks ships the whole log through ReadRecords with a
// tiny chunk bound and checks ScanBytes reassembles every record with
// correct LSNs.
func TestReaderTailsInChunks(t *testing.T) {
	l := openTemp(t)
	var lsns []uint64
	const n = 200
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{Type: RecCreateDoc, Txn: uint64(i + 1), DocID: uint32(i), Name: fmt.Sprintf("doc-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := l.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	var got []uint64
	pos := uint64(0)
	for {
		data, next, cnt, err := rd.ReadRecords(pos, 64) // force many chunks
		if err != nil {
			t.Fatal(err)
		}
		if cnt == 0 {
			break
		}
		err = ScanBytes(pos, data, func(lsn uint64, r *Record, recLen int) error {
			if r.Type != RecCreateDoc {
				return fmt.Errorf("unexpected type %d at %d", r.Type, lsn)
			}
			got = append(got, lsn)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		pos = next
	}
	if pos != l.DurableLSN() {
		t.Fatalf("reader stopped at %d, durable %d", pos, l.DurableLSN())
	}
	if len(got) != n {
		t.Fatalf("scanned %d records, want %d", len(got), n)
	}
	for i, lsn := range got {
		if lsn != lsns[i] {
			t.Fatalf("record %d at LSN %d, want %d", i, lsn, lsns[i])
		}
	}

	// Caught up: no data, same position.
	data, next, cnt, err := rd.ReadRecords(pos, 1<<20)
	if err != nil || data != nil || next != pos || cnt != 0 {
		t.Fatalf("caught-up read = (%v,%d,%d,%v)", data, next, cnt, err)
	}
	// Past durable is an error, not a silent wait.
	if _, _, _, err := rd.ReadRecords(pos+1, 1<<20); err == nil {
		t.Fatal("read past durable LSN succeeded")
	}
}

// TestReaderOversizedRecord checks a record bigger than the chunk bound is
// returned whole.
func TestReaderOversizedRecord(t *testing.T) {
	l := openTemp(t)
	big := make([]byte, 96)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(&Record{Type: RecPageWrite, Txn: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := l.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	data, next, cnt, err := rd.ReadRecords(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1 || next != l.DurableLSN() {
		t.Fatalf("oversized read = (%d bytes, next %d, cnt %d)", len(data), next, cnt)
	}
	if err := ScanBytes(0, data, func(_ uint64, r *Record, _ int) error {
		if len(r.Data) != len(big) {
			return fmt.Errorf("payload %d bytes, want %d", len(r.Data), len(big))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScanBytesRejectsTorn checks strict corruption handling on shipped
// chunks: a truncated buffer is an error, unlike the tolerant tail scan.
func TestScanBytesRejectsTorn(t *testing.T) {
	l := openTemp(t)
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := l.OpenReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	data, _, _, err := rd.ReadRecords(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ScanBytes(0, data[:len(data)-1], func(uint64, *Record, int) error { return nil }); err == nil {
		t.Fatal("torn chunk scanned without error")
	}
	data[len(data)-1] ^= 0xff
	if err := ScanBytes(0, data, func(uint64, *Record, int) error { return nil }); err == nil {
		t.Fatal("corrupt chunk scanned without error")
	}
}

// TestNotifyDurable checks flush notifications reach subscribers and stop
// after cancel.
func TestNotifyDurable(t *testing.T) {
	l := openTemp(t)
	ch := make(chan struct{}, 1)
	cancel := l.NotifyDurable(ch)
	if _, err := l.Append(&Record{Type: RecBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no durable notification after flush")
	}
	cancel()
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("notification after cancel")
	default:
	}
}
