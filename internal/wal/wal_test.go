package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sedna/internal/sas"
)

func openTemp(t *testing.T) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func allRecordTypes() []*Record {
	return []*Record{
		{Type: RecBegin, Txn: 1},
		{Type: RecPageWrite, Txn: 1, Page: sas.PageID{Layer: 2, Page: 7}, Off: 100, Data: []byte{1, 2, 3}},
		{Type: RecAllocPage, Txn: 1, Page: sas.PageID{Layer: 1, Page: 9}},
		{Type: RecFreePage, Txn: 1, Page: sas.PageID{Layer: 1, Page: 4}},
		{Type: RecCreateDoc, Txn: 1, DocID: 3, Name: "books.xml"},
		{Type: RecDropDoc, Txn: 1, DocID: 4, Name: "old.xml"},
		{Type: RecAddSchemaNode, Txn: 1, DocID: 3, ParentID: 1, NodeID: 2, Kind: 2, Name: "library"},
		{Type: RecSchemaBlocks, Txn: 1, DocID: 3, NodeID: 2, Ptrs: [5]sas.XPtr{sas.MakePtr(1, 0), sas.MakePtr(1, 16384)}},
		{Type: RecDocMeta, Txn: 1, DocID: 3, Ptrs: [5]sas.XPtr{1, 2, 3, 4, 5}},
		{Type: RecCreateIndex, Txn: 1, DocID: 3, Name: "titles", Path: "/library/book/title"},
		{Type: RecDropIndex, Txn: 1, Name: "titles"},
		{Type: RecCommit, Txn: 1, CommitTS: 42},
		{Type: RecAbort, Txn: 2},
		{Type: RecCheckpoint},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	l := openTemp(t)
	recs := allRecordTypes()
	var lsns []uint64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	var gotLSNs []uint64
	err := l.Scan(0, func(lsn uint64, r *Record) error {
		got = append(got, r)
		gotLSNs = append(gotLSNs, lsn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(normalize(recs[i]), normalize(got[i])) {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, recs[i], got[i])
		}
		if gotLSNs[i] != lsns[i] {
			t.Fatalf("record %d LSN %d, want %d", i, gotLSNs[i], lsns[i])
		}
	}
}

// normalize maps nil and empty Data to the same representation.
func normalize(r *Record) Record {
	c := *r
	if len(c.Data) == 0 {
		c.Data = nil
	}
	return c
}

func TestScanFromMiddle(t *testing.T) {
	l := openTemp(t)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	mid, _ := l.Append(&Record{Type: RecCheckpoint})
	l.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 7})
	l.Flush()
	var types []RecType
	if err := l.Scan(mid, func(_ uint64, r *Record) error {
		types = append(types, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != RecCheckpoint || types[1] != RecCommit {
		t.Fatalf("types = %v", types)
	}
}

func TestAppendAfterScan(t *testing.T) {
	l := openTemp(t)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Flush()
	if err := l.Scan(0, func(uint64, *Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 1})
	l.Flush()
	count := 0
	if err := l.Scan(0, func(uint64, *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (append position broken after scan)", count)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 1})
	lsn2, _ := l.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 1})
	l.Flush()
	l.Close()

	// Simulate a torn write: append garbage half-record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{200, 0, 0, 0, 1, 2}) // claims 200-byte payload, truncated
	f.Close()

	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Scan(0, func(uint64, *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	// New appends land after the valid prefix.
	lsn3, _ := l2.Append(&Record{Type: RecAbort, Txn: 9})
	if lsn3 <= lsn2 {
		t.Fatalf("append LSN %d not after %d", lsn3, lsn2)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Flush()
	end := l.NextLSN()
	l.Close()

	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextLSN() != end {
		t.Fatalf("NextLSN after reopen = %d, want %d", l2.NextLSN(), end)
	}
}

func TestLargePageWriteRecord(t *testing.T) {
	l := openTemp(t)
	data := make([]byte, sas.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := l.Append(&Record{Type: RecPageWrite, Txn: 1, Page: sas.PageID{Layer: 1, Page: 1}, Data: data}); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	var got *Record
	l.Scan(0, func(_ uint64, r *Record) error { got = r; return nil })
	if got == nil || len(got.Data) != sas.PageSize || got.Data[5000] != data[5000] {
		t.Fatal("full-page record round trip failed")
	}
}
