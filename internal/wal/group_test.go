package wal

import (
	"path/filepath"
	"sync"
	"testing"
)

func openDurable(t *testing.T) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestFlushCoalesces verifies the already-durable fast path: a Flush that
// finds nothing new must not fsync again, so the WAL-rule hook on the
// eviction path is free when the log is clean.
func TestFlushCoalesces(t *testing.T) {
	l := openDurable(t)
	if _, err := l.Append(&Record{Type: RecBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.met.fsyncs.Value(); got != 1 {
		t.Fatalf("fsyncs after first flush = %d, want 1", got)
	}
	if l.DurableLSN() != l.NextLSN() {
		t.Fatal("flush did not advance the durable LSN to the log end")
	}
	for i := 0; i < 3; i++ {
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.met.fsyncs.Value(); got != 1 {
		t.Fatalf("redundant flushes must not fsync: fsyncs = %d, want 1", got)
	}
	if _, err := l.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.met.fsyncs.Value(); got != 2 {
		t.Fatalf("fsyncs after new append = %d, want 2", got)
	}
}

// TestConcurrentGroupCommit has many committers append and flush
// concurrently against a durable log; every record must be durable and
// re-scannable afterwards, and the rounds must account every flusher.
func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				txn := uint64(1 + g*perG + i)
				if _, err := l.Append(&Record{Type: RecCommit, Txn: txn, CommitTS: txn}); err != nil {
					errc <- err
					return
				}
				if err := l.Flush(); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if l.DurableLSN() != l.NextLSN() {
		t.Fatal("log end not durable after all flushes returned")
	}
	rounds := l.met.groupCommit.Value()
	if rounds == 0 {
		t.Fatal("no group-commit rounds recorded")
	}
	if satisfied := l.met.groupTxns.Value(); satisfied < rounds {
		t.Fatalf("group_commit_txns (%d) < group_commits (%d)", satisfied, rounds)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay: all records must be present exactly once.
	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seen := make(map[uint64]bool)
	if err := l2.Scan(0, func(_ uint64, r *Record) error {
		if r.Type != RecCommit {
			t.Fatalf("unexpected record type %d", r.Type)
		}
		if seen[r.Txn] {
			t.Fatalf("txn %d logged twice", r.Txn)
		}
		seen[r.Txn] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("replayed %d commit records, want %d", len(seen), goroutines*perG)
	}
}
