package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Reader tails a live log for replication shipping. It reads through its own
// read-only file descriptor with positioned reads, so it never interferes
// with the appender's file position and needs no lock coordination: it only
// reads below the durable LSN, and bytes below the durable LSN are complete,
// fsynced records that will never change.
type Reader struct {
	f   *os.File
	log *Log
}

// OpenReader opens a tailing reader over the log.
func (l *Log) OpenReader() (*Reader, error) {
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: open reader: %w", err)
	}
	return &Reader{f: f, log: l}, nil
}

// Close releases the reader's file descriptor.
func (r *Reader) Close() error { return r.f.Close() }

// ReadRecords reads a record-aligned chunk of the log starting at from,
// bounded by the durable LSN and approximately by maxBytes (a single record
// larger than maxBytes is returned whole). It returns the raw bytes exactly
// as they appear in the log (framing headers included), the LSN of the first
// byte after the chunk, and the number of complete records in it. A caught-up
// reader gets (nil, from, 0, nil); combine with Log.NotifyDurable to wait
// for more.
func (r *Reader) ReadRecords(from uint64, maxBytes int) (data []byte, next uint64, nrecs int, err error) {
	durable := r.log.DurableLSN()
	if from > durable {
		return nil, from, 0, fmt.Errorf("wal: read from %d past durable LSN %d", from, durable)
	}
	if from == durable {
		return nil, from, 0, nil
	}
	if maxBytes < 64 {
		maxBytes = 64
	}
	avail := durable - from
	n := uint64(maxBytes)
	if n > avail {
		n = avail
	}
	buf := make([]byte, n)
	if _, err := r.f.ReadAt(buf, int64(from)); err != nil {
		return nil, from, 0, fmt.Errorf("wal: read records: %w", err)
	}
	end, cnt := recordAlignedEnd(buf)
	if end == 0 {
		// The first record is larger than maxBytes; it is durable, hence
		// complete — read it whole.
		if len(buf) < 8 {
			return nil, from, 0, ErrCorrupt
		}
		total := uint64(8 + binary.LittleEndian.Uint32(buf[0:]))
		if total > avail {
			return nil, from, 0, ErrCorrupt
		}
		buf = make([]byte, total)
		if _, err := r.f.ReadAt(buf, int64(from)); err != nil {
			return nil, from, 0, fmt.Errorf("wal: read records: %w", err)
		}
		end, cnt = recordAlignedEnd(buf)
		if end == 0 {
			return nil, from, 0, ErrCorrupt
		}
	}
	return buf[:end], from + uint64(end), cnt, nil
}

// recordAlignedEnd returns the length of the longest prefix of buf holding
// only complete records, and how many records that prefix contains.
func recordAlignedEnd(buf []byte) (int, int) {
	pos, cnt := 0, 0
	for pos+8 <= len(buf) {
		n := int(binary.LittleEndian.Uint32(buf[pos:]))
		if n == 0 || n > 1<<24 {
			break
		}
		if pos+8+n > len(buf) {
			break
		}
		pos += 8 + n
		cnt++
	}
	return pos, cnt
}

// ScanBytes walks the complete records in a raw log chunk (as produced by
// Reader.ReadRecords and shipped over a replication stream), verifying each
// record's checksum and calling fn with the record's LSN (base + offset) and
// decoded form. Torn or corrupt content returns ErrCorrupt: shipped chunks
// are record-aligned by construction, so unlike a log-tail scan nothing here
// is silently tolerated.
func ScanBytes(base uint64, buf []byte, fn func(lsn uint64, r *Record, recLen int) error) error {
	pos := 0
	for pos < len(buf) {
		if pos+8 > len(buf) {
			return ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(buf[pos:]))
		crc := binary.LittleEndian.Uint32(buf[pos+4:])
		if n == 0 || n > 1<<24 || pos+8+n > len(buf) {
			return ErrCorrupt
		}
		payload := buf[pos+8 : pos+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return ErrCorrupt
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if err := fn(base+uint64(pos), rec, 8+n); err != nil {
			return err
		}
		pos += 8 + n
	}
	return nil
}

var _ io.Closer = (*Reader)(nil)
