// Package wal implements Sedna's write-ahead log (§6.4). All main
// operations are logged: physical page writes carry redo information for
// every byte an update statement changes, and logical catalog records
// (document creation, descriptive-schema growth, block-list changes, index
// DDL) carry the in-memory metadata recovery must rebuild. Recovery is
// redo-only: the persistent snapshot restored in step one is
// transaction-consistent, so step two replays only the records of
// transactions that committed after the checkpoint.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"sedna/internal/metrics"
	"sedna/internal/sas"
	"sedna/internal/trace"
)

// RecType enumerates log record types.
type RecType byte

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecPageWrite
	RecAllocPage
	RecFreePage
	RecCreateDoc
	RecDropDoc
	RecAddSchemaNode
	RecSchemaBlocks
	RecDocMeta
	RecCreateIndex
	RecDropIndex
	RecIndexMeta
	RecCheckpoint
	// RecReplApplied is written only on replicas: it records how far in the
	// primary's log the replica has applied, so a restarted replica resumes
	// streaming from the right point. Inside an apply transaction it carries
	// that transaction's progress (valid only if the transaction committed);
	// with Txn == 0 it is a standalone watermark written after a checkpoint
	// or a seed, flushed before it is relied upon.
	RecReplApplied
	// RecBulkLoad marks a completed streaming bulk load of one document.
	// The whole-page images of the load precede it in the same transaction,
	// so redo needs nothing from it; replicas use it to account the load as
	// a load (one record) instead of N per-node inserts.
	RecBulkLoad
)

// Record is the union of all log record payloads; which fields are
// meaningful depends on Type.
type Record struct {
	Type RecType
	Txn  uint64

	CommitTS uint64 // RecCommit

	Page sas.PageID // RecPageWrite, RecAllocPage, RecFreePage
	Off  uint32     // RecPageWrite
	Data []byte     // RecPageWrite

	DocID    uint32 // document-scoped records
	Name     string // RecCreateDoc, RecCreateIndex, RecDropIndex, RecAddSchemaNode
	Path     string // RecCreateIndex
	ParentID uint32 // RecAddSchemaNode
	NodeID   uint32 // RecAddSchemaNode, RecSchemaBlocks
	Kind     byte   // RecAddSchemaNode

	Ptrs [5]sas.XPtr // RecSchemaBlocks (first,last), RecDocMeta (root, indirF, indirL, textF, textL)

	// RecReplApplied: RestartLSN is the primary-log position replication
	// must resume shipping from (every record below it is applied or belongs
	// to an aborted transaction); CommitLSN is the position just past the
	// last applied commit record (commit records below it must not be
	// re-applied when the stream overlaps).
	RestartLSN uint64
	CommitLSN  uint64

	// RecBulkLoad: load summary (DocID and Name identify the document).
	Nodes  uint64
	Blocks uint64
	Bytes  uint64
}

// ErrCorrupt reports a malformed record in the middle of the log (not a
// torn tail, which is silently treated as the end).
var ErrCorrupt = errors.New("wal: corrupt log record")

// Options configures Open.
type Options struct {
	// NoSync disables fsync on Flush; tests and benchmarks only.
	NoSync bool
	// Metrics is the registry the log reports into under the "wal." family
	// (nil = a fresh private registry).
	Metrics *metrics.Registry
}

// Log is an append-only write-ahead log. LSNs are byte offsets of record
// starts.
//
// Flush implements group commit: concurrent flushers targeting undurable
// LSNs elect one leader, which performs a single batched fsync covering
// every record appended so far; the others wait on the round and return
// when their records are durable. A flusher whose records are already
// durable returns immediately without touching the disk, so the WAL-rule
// hook on the page-eviction path costs nothing when the log is clean.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled when a sync round completes
	f       *os.File
	w       *bufio.Writer
	nextLSN uint64
	flushed uint64 // all records below this LSN are durable
	syncing bool   // a leader fsync is in flight (mu released)
	syncErr error  // outcome of the last completed round
	waiters int    // flushers waiting for the in-flight round
	noSync  bool
	path    string

	// durableSubs are notified (non-blocking) whenever the durable LSN
	// advances; replication streamers tailing the log wait on them.
	durableSubs map[int]chan struct{}
	nextSub     int

	met walMetrics
}

// walMetrics binds the write-ahead-log counters in a metrics registry.
type walMetrics struct {
	appends     *metrics.Counter
	appendBytes *metrics.Counter
	flushes     *metrics.Counter
	fsyncs      *metrics.Counter
	fsyncNs     *metrics.Histogram
	groupCommit *metrics.Counter // commit-flush rounds (one batched fsync each when durable)
	groupTxns   *metrics.Counter // flush requests that found undurable records (each counted once)
	groupSize   *metrics.Gauge   // flushers enqueued when the most recent round began
}

func bindWalMetrics(reg *metrics.Registry) walMetrics {
	return walMetrics{
		appends:     reg.Counter("wal.appends"),
		appendBytes: reg.Counter("wal.append_bytes"),
		flushes:     reg.Counter("wal.flushes"),
		fsyncs:      reg.Counter("wal.fsyncs"),
		fsyncNs:     reg.Histogram("wal.fsync_ns"),
		groupCommit: reg.Counter("wal.group_commits"),
		groupTxns:   reg.Counter("wal.group_commit_txns"),
		groupSize:   reg.Gauge("wal.group_size"),
	}
}

// Open opens or creates the log at path and positions appends at the end of
// the last complete record.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, noSync: opts.NoSync, path: path, met: bindWalMetrics(metrics.OrNew(opts.Metrics))}
	// Find the end of the valid prefix.
	end, err := l.validEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(end)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(end), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.nextLSN = end
	l.flushed = end
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// validEnd scans the file for the end of the last complete record.
func (l *Log) validEnd() (uint64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	var pos uint64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return pos, nil // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<24 {
			return pos, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return pos, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return pos, nil
		}
		pos += 8 + uint64(n)
	}
}

// Append appends the record and returns its LSN. The record is durable only
// after Flush.
func (l *Log) Append(r *Record) (uint64, error) {
	payload := encodeRecord(r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextLSN += 8 + uint64(len(payload))
	l.met.appends.Inc()
	l.met.appendBytes.Add(8 + uint64(len(payload)))
	return lsn, nil
}

// Flush makes all appended records durable (the WAL rule hook). Returns
// immediately when everything appended so far is already durable.
func (l *Log) Flush() error { return l.FlushSpan(nil) }

// FlushSpan is Flush attributing the work to a trace span: the batched sync
// runs inside a "wal.fsync" child span and time spent waiting on another
// flusher's round inside "wal.group_wait".
//
// Group commit: the first flusher to find no round in flight becomes the
// leader; it flushes the buffered records and runs one fsync with the mutex
// released, so concurrent committers keep appending and enqueueing behind
// it. Every flusher whose records the round covered is satisfied by that
// single fsync.
func (l *Log) FlushSpan(sp *trace.Span) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met.flushes.Inc()
	target := l.nextLSN
	if l.flushed < target {
		// Counted once per flush request regardless of how many rounds it
		// waits through, so group_commit_txns / group_commits is the true
		// batching factor.
		l.met.groupTxns.Inc()
	}
	for l.flushed < target {
		if l.syncing {
			// Follower: wait out the in-flight round, then re-check. The
			// round's goal was taken before we appended only if our target
			// is still above flushed afterwards, in which case we loop and
			// may lead the next round.
			l.waiters++
			ws := sp.Child("wal.group_wait")
			for l.syncing {
				l.cond.Wait()
			}
			ws.End()
			l.waiters--
			if l.syncErr != nil && l.flushed < target {
				return l.syncErr
			}
			continue
		}
		// Leader: everything appended up to this instant rides this round.
		group := uint64(1 + l.waiters)
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		goal := l.nextLSN
		if !l.noSync {
			l.syncing = true
			l.syncErr = nil
			l.mu.Unlock()
			fs := sp.Child("wal.fsync")
			start := time.Now()
			err := l.f.Sync()
			fs.End()
			l.mu.Lock()
			l.syncing = false
			if err != nil {
				l.syncErr = fmt.Errorf("wal: sync: %w", err)
				l.cond.Broadcast()
				return l.syncErr
			}
			l.met.fsyncs.Inc()
			l.met.fsyncNs.Observe(time.Since(start))
		}
		l.flushed = goal
		l.met.groupCommit.Inc()
		l.met.groupSize.Set(int64(group))
		l.cond.Broadcast()
		l.notifyDurableLocked()
	}
	return nil
}

// notifyDurableLocked wakes durable-LSN subscribers without blocking; a
// subscriber whose channel is full already has a wakeup pending.
func (l *Log) notifyDurableLocked() {
	for _, ch := range l.durableSubs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// NotifyDurable registers ch to receive a (non-blocking) signal every time
// the durable LSN advances. The returned cancel function unregisters it.
// Subscribers must still poll DurableLSN: signals are wakeups, not values,
// and may be coalesced.
func (l *Log) NotifyDurable(ch chan struct{}) (cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.durableSubs == nil {
		l.durableSubs = make(map[int]chan struct{})
	}
	id := l.nextSub
	l.nextSub++
	l.durableSubs[id] = ch
	return func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		delete(l.durableSubs, id)
	}
}

// DurableLSN returns the LSN below which every record is durable.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Size returns the current log size in bytes.
func (l *Log) Size() uint64 { return l.NextLSN() }

// Scan replays records from the given LSN in order. A torn tail terminates
// the scan without error; corruption in the middle returns ErrCorrupt.
// Appends are blocked during the scan.
func (l *Log) Scan(from uint64, fn func(lsn uint64, r *Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	end := l.nextLSN
	if _, err := l.f.Seek(int64(from), io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(l.f, 1<<16)
	pos := from
	var hdr [8]byte
	for pos < end {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<24 {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		if err := fn(pos, rec); err != nil {
			return err
		}
		pos += 8 + uint64(n)
	}
	// Restore the file position for future appends.
	_, err := l.f.Seek(int64(l.nextLSN), io.SeekStart)
	return err
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Close flushes and closes the log. It waits for any in-flight group-commit
// round before touching the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if !l.noSync {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

func encodeRecord(r *Record) []byte {
	b := make([]byte, 0, 64+len(r.Data)+len(r.Name)+len(r.Path))
	b = append(b, byte(r.Type))
	b = binary.LittleEndian.AppendUint64(b, r.Txn)
	switch r.Type {
	case RecCommit:
		b = binary.LittleEndian.AppendUint64(b, r.CommitTS)
	case RecPageWrite:
		b = binary.LittleEndian.AppendUint32(b, r.Page.Layer)
		b = binary.LittleEndian.AppendUint32(b, r.Page.Page)
		b = binary.LittleEndian.AppendUint32(b, r.Off)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Data)))
		b = append(b, r.Data...)
	case RecAllocPage, RecFreePage:
		b = binary.LittleEndian.AppendUint32(b, r.Page.Layer)
		b = binary.LittleEndian.AppendUint32(b, r.Page.Page)
	case RecCreateDoc, RecDropDoc:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		b = appendString(b, r.Name)
	case RecAddSchemaNode:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		b = binary.LittleEndian.AppendUint32(b, r.ParentID)
		b = binary.LittleEndian.AppendUint32(b, r.NodeID)
		b = append(b, r.Kind)
		b = appendString(b, r.Name)
	case RecSchemaBlocks:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		b = binary.LittleEndian.AppendUint32(b, r.NodeID)
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Ptrs[0]))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Ptrs[1]))
	case RecDocMeta:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		for _, p := range r.Ptrs {
			b = binary.LittleEndian.AppendUint64(b, uint64(p))
		}
	case RecCreateIndex:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		b = appendString(b, r.Name)
		b = appendString(b, r.Path)
	case RecDropIndex:
		b = appendString(b, r.Name)
	case RecIndexMeta:
		b = appendString(b, r.Name)
		b = binary.LittleEndian.AppendUint64(b, uint64(r.Ptrs[0]))
	case RecReplApplied:
		b = binary.LittleEndian.AppendUint64(b, r.RestartLSN)
		b = binary.LittleEndian.AppendUint64(b, r.CommitLSN)
	case RecBulkLoad:
		b = binary.LittleEndian.AppendUint32(b, r.DocID)
		b = appendString(b, r.Name)
		b = binary.LittleEndian.AppendUint64(b, r.Nodes)
		b = binary.LittleEndian.AppendUint64(b, r.Blocks)
		b = binary.LittleEndian.AppendUint64(b, r.Bytes)
	case RecBegin, RecAbort, RecCheckpoint:
		// no payload beyond type+txn
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.pos+4 > len(d.b) {
		d.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.pos+8 > len(d.b) {
		d.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) byte1() byte {
	if d.err != nil || d.pos+1 > len(d.b) {
		d.err = ErrCorrupt
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || d.pos+n > len(d.b) {
		d.err = ErrCorrupt
		return nil
	}
	v := append([]byte(nil), d.b[d.pos:d.pos+n]...)
	d.pos += n
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	return string(d.bytes(int(n)))
}

func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) < 9 {
		return nil, ErrCorrupt
	}
	d := &decoder{b: payload}
	r := &Record{Type: RecType(d.byte1()), Txn: d.u64()}
	switch r.Type {
	case RecCommit:
		r.CommitTS = d.u64()
	case RecPageWrite:
		r.Page.Layer = d.u32()
		r.Page.Page = d.u32()
		r.Off = d.u32()
		n := d.u32()
		r.Data = d.bytes(int(n))
	case RecAllocPage, RecFreePage:
		r.Page.Layer = d.u32()
		r.Page.Page = d.u32()
	case RecCreateDoc, RecDropDoc:
		r.DocID = d.u32()
		r.Name = d.str()
	case RecAddSchemaNode:
		r.DocID = d.u32()
		r.ParentID = d.u32()
		r.NodeID = d.u32()
		r.Kind = d.byte1()
		r.Name = d.str()
	case RecSchemaBlocks:
		r.DocID = d.u32()
		r.NodeID = d.u32()
		r.Ptrs[0] = sas.XPtr(d.u64())
		r.Ptrs[1] = sas.XPtr(d.u64())
	case RecDocMeta:
		r.DocID = d.u32()
		for i := range r.Ptrs {
			r.Ptrs[i] = sas.XPtr(d.u64())
		}
	case RecCreateIndex:
		r.DocID = d.u32()
		r.Name = d.str()
		r.Path = d.str()
	case RecDropIndex:
		r.Name = d.str()
	case RecIndexMeta:
		r.Name = d.str()
		r.Ptrs[0] = sas.XPtr(d.u64())
	case RecReplApplied:
		r.RestartLSN = d.u64()
		r.CommitLSN = d.u64()
	case RecBulkLoad:
		r.DocID = d.u32()
		r.Name = d.str()
		r.Nodes = d.u64()
		r.Blocks = d.u64()
		r.Bytes = d.u64()
	case RecBegin, RecAbort, RecCheckpoint:
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, r.Type)
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}
