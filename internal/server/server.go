package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/query"
	"sedna/internal/repl"
	"sedna/internal/trace"
)

// Governor is the control center of the system (§3): it keeps track of the
// database and of every session and transaction currently running, and
// manages their lifecycle.
type Governor struct {
	db *core.Database

	// primary serves downstream replication streams (REPLICATE); replica,
	// when set, is the replication client this server fronts (set once at
	// startup, before any session runs).
	primary *repl.Primary
	replica *repl.Replica

	mu       sync.Mutex
	sessions map[uint64]*Session
	nextSess uint64

	met govMetrics
}

// govMetrics binds the server/governor counters in a metrics registry.
type govMetrics struct {
	sessOpened  *metrics.Counter
	sessClosed  *metrics.Counter
	sessActive  *metrics.Gauge
	txnsStarted *metrics.Counter
	commands    *metrics.Counter
	errors      *metrics.Counter
	kills       *metrics.Counter
	bytesIn     *metrics.Counter
	bytesOut    *metrics.Counter
}

func bindGovMetrics(reg *metrics.Registry) govMetrics {
	return govMetrics{
		sessOpened:  reg.Counter("server.sessions_opened"),
		sessClosed:  reg.Counter("server.sessions_closed"),
		sessActive:  reg.Gauge("server.sessions_active"),
		txnsStarted: reg.Counter("server.txns_started"),
		commands:    reg.Counter("server.commands"),
		errors:      reg.Counter("server.errors"),
		kills:       reg.Counter("server.kills"),
		bytesIn:     reg.Counter("server.bytes_in"),
		bytesOut:    reg.Counter("server.bytes_out"),
	}
}

// NewGovernor creates a governor over an open database; it reports into the
// database's metrics registry under the "server." family, which also gains
// the process-level build/uptime gauges both expositions serve.
func NewGovernor(db *core.Database) *Governor {
	reg := db.Metrics()
	metrics.RegisterBuildInfo(reg)
	metrics.RegisterUptime(reg, time.Now())
	return &Governor{
		db:       db,
		primary:  repl.NewPrimary(db),
		sessions: make(map[uint64]*Session),
		met:      bindGovMetrics(reg),
	}
}

// Primary returns the replication manager serving downstream replicas.
func (g *Governor) Primary() *repl.Primary { return g.primary }

// SetReplica attaches the replication client when this server fronts a
// replica database: REPLSTATUS then reports its stream state and PROMOTE
// detaches it, making the node writable. Must be called before serving.
func (g *Governor) SetReplica(r *repl.Replica) { g.replica = r }

// Metrics returns the registry shared by the governor and its database.
func (g *Governor) Metrics() *metrics.Registry { return g.db.Metrics() }

// Tracer returns the database's per-query tracer.
func (g *Governor) Tracer() *trace.Tracer { return g.db.Tracer() }

// DB returns the managed database.
func (g *Governor) DB() *core.Database { return g.db }

// SessionCount returns the number of registered sessions.
func (g *Governor) SessionCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// TxnsStarted returns how many transactions the governor has created.
func (g *Governor) TxnsStarted() uint64 { return g.met.txnsStarted.Value() }

func (g *Governor) register(s *Session) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextSess++
	s.id = g.nextSess
	g.sessions[s.id] = s
	g.met.sessOpened.Inc()
	g.met.sessActive.Set(int64(len(g.sessions)))
}

func (g *Governor) unregister(s *Session) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.sessions[s.id]; ok {
		delete(g.sessions, s.id)
		g.met.sessClosed.Inc()
		g.met.sessActive.Set(int64(len(g.sessions)))
	}
}

// Session is the connection component: it encapsulates one client session
// and creates a transaction component per database transaction (§3). The
// lifecycle methods (Begin/Commit/Rollback/Execute/Close) run on the
// connection's goroutine only; Info and kill are called from other
// goroutines and touch only the locked/atomic fields.
type Session struct {
	id        uint64
	gov       *Governor
	client    string    // remote address, "" for embedded sessions
	connected time.Time // registration time
	tx        *core.Tx  // open explicit transaction, if any
	txOpen    atomic.Bool

	statsMu sync.Mutex
	stats   SessionStats

	curMu   sync.Mutex
	stmtOrd uint64     // per-session statement ordinal, counts from 1
	cur     *stmtState // in-flight statement, nil when idle
}

// NewSession registers a fresh session with the governor.
func (g *Governor) NewSession() *Session {
	return g.NewSessionFor("")
}

// NewSessionFor registers a fresh session carrying the client's remote
// address for introspection and slowlog attribution.
func (g *Governor) NewSessionFor(client string) *Session {
	s := &Session{gov: g, client: client, connected: time.Now()}
	g.register(s)
	return s
}

// Close rolls back any open transaction and unregisters the session.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
		s.txOpen.Store(false)
	}
	s.gov.unregister(s)
}

// Begin starts an explicit transaction on the session.
func (s *Session) Begin(readonly bool) error {
	if s.tx != nil {
		return errors.New("server: transaction already open")
	}
	tx, err := s.beginTx(readonly)
	if err != nil {
		return err
	}
	s.tx = tx
	s.txOpen.Store(true)
	return nil
}

func (s *Session) beginTx(readonly bool) (*core.Tx, error) {
	s.gov.met.txnsStarted.Inc()
	if readonly {
		return s.gov.db.BeginReadOnly()
	}
	return s.gov.db.Begin()
}

// Commit commits the open transaction.
func (s *Session) Commit() error {
	if s.tx == nil {
		return errors.New("server: no open transaction")
	}
	err := s.tx.Commit()
	s.tx = nil
	s.txOpen.Store(false)
	return err
}

// Rollback aborts the open transaction.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return errors.New("server: no open transaction")
	}
	err := s.tx.Rollback()
	s.tx = nil
	s.txOpen.Store(false)
	return err
}

// Execute runs one statement. Inside an explicit transaction it uses it;
// otherwise it runs in auto-commit mode, choosing a read-only snapshot
// transaction for queries and an update transaction for everything else.
func (s *Session) Execute(src string) (*Response, error) {
	parseStart := time.Now()
	st, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	parseNs := time.Since(parseStart).Nanoseconds()
	tx := s.tx
	auto := tx == nil
	if auto {
		tx, err = s.beginTx(st.ReadOnly())
		if err != nil {
			return nil, err
		}
	}
	// The session owns the statement's trace so an auto-commit (and its WAL
	// fsync) is captured inside it; FinishTrace is idempotent and runs after
	// the commit on the happy path.
	ctx := query.NewExecCtx(tx)
	ctx.StartTrace(st.Source)
	ctx.RecordParse(parseNs)
	defer ctx.FinishTrace()
	// Register the statement for introspection and KILL; every exit path
	// below unregisters it and settles the accounting window.
	base := s.beginStatement(st.Source, ctx)
	nodes := 0
	defer func() { s.endStatement(base, nodes, err) }()
	res, err := query.ExecuteStatement(ctx, st)
	if err == nil {
		var sb strings.Builder
		if serr := res.Serialize(&sb); serr != nil {
			err = serr
		} else {
			nodes = len(res.Items) + res.Updated
			if auto {
				if err = tx.Commit(); err != nil {
					return nil, err
				}
			}
			return &Response{Data: sb.String(), Updated: res.Updated, Message: res.Message}, nil
		}
	}
	if auto {
		tx.Rollback()
	} else if errors.Is(err, query.ErrKilled) {
		// A killed statement aborts its explicit transaction too: partial
		// update effects must not survive to a later COMMIT.
		s.Rollback()
	}
	return nil, err
}

// slowLog serves a MsgSlowLog request: optionally retune the slow-query
// threshold, then return retained slow traces (newest first) as JSON.
func (g *Governor) slowLog(req *Request) (*Response, error) {
	tr := g.db.Tracer()
	if req.SetThreshold {
		tr.SetSlowThreshold(time.Duration(req.ThresholdNs))
	}
	traces := tr.Slow()
	if req.N > 0 && len(traces) > req.N {
		traces = traces[:req.N]
	}
	b, err := json.Marshal(traces)
	if err != nil {
		return nil, err
	}
	return &Response{
		Data:    string(b),
		Message: fmt.Sprintf("threshold=%s entries=%d", time.Duration(tr.SlowThresholdNs()), len(traces)),
	}, nil
}

// workers serves a MsgWorkers request: optionally retune the intra-query
// parallelism cap (the runtime face of sednad -query-workers), then report
// the effective worker budget.
func (g *Governor) workers(req *Request) (*Response, error) {
	if req.SetWorkers {
		g.db.SetQueryWorkers(req.Workers)
	}
	n := g.db.QueryWorkers()
	return &Response{
		Data:    fmt.Sprint(n),
		Message: fmt.Sprintf("query workers=%d", n),
	}, nil
}

// prefetch serves a MsgPrefetch request: optionally retune the default
// chain-readahead depth (the runtime face of sednad -prefetch-depth), then
// report the effective depth.
func (g *Governor) prefetch(req *Request) (*Response, error) {
	if req.SetPrefetch {
		g.db.SetPrefetchDepth(req.Prefetch)
	}
	n := g.db.PrefetchDepth()
	return &Response{
		Data:    fmt.Sprint(n),
		Message: fmt.Sprintf("prefetch depth=%d", n),
	}, nil
}

// resident serves a MsgResident request: optionally switch the compressed
// in-memory resident mode (the runtime face of sednad -resident), then
// report the effective state.
func (g *Governor) resident(req *Request) (*Response, error) {
	if req.SetResident {
		g.db.SetResident(req.Resident)
	}
	state := "off"
	if g.db.Resident() {
		state = "on"
	}
	return &Response{
		Data:    state,
		Message: fmt.Sprintf("resident mode %s", state),
	}, nil
}

// replStatus serves a MsgReplStatus request: the node's role and lag-aware
// replica topology as JSON.
func (g *Governor) replStatus() (*Response, error) {
	t := repl.Topology{Role: "primary", Replicas: g.primary.Status()}
	if g.replica != nil {
		self := g.replica.Status()
		t.Self = &self
		if self.State != "promoted" {
			t.Role = "replica"
		}
	}
	b, err := json.Marshal(&t)
	if err != nil {
		return nil, err
	}
	return &Response{
		Data:    string(b),
		Message: fmt.Sprintf("role=%s replicas=%d", t.Role, len(t.Replicas)),
	}, nil
}

// promote serves a MsgPromote request: the replica detaches from its primary
// and starts accepting writes.
func (g *Governor) promote() (*Response, error) {
	if g.replica == nil {
		return nil, errors.New("server: not a replica")
	}
	if err := g.replica.Promote(); err != nil {
		return nil, err
	}
	return &Response{Message: "promoted: accepting writes"}, nil
}

// Server accepts client connections.
type Server struct {
	gov *Governor
	ln  net.Listener

	wg     sync.WaitGroup
	closed atomic.Bool
}

// Listen starts a server on addr (e.g. "127.0.0.1:5050").
func Listen(db *core.Database, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{gov: NewGovernor(db), ln: ln}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Governor exposes the governor.
func (s *Server) Governor() *Governor { return s.gov }

// Close stops accepting and waits for connections to finish. Replication
// streams are terminated first — they are long-lived by design and would
// otherwise hold the shutdown forever.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.gov.primary.Close()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			log.Printf("sednad: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// countingConn tallies wire traffic into the server byte counters.
type countingConn struct {
	net.Conn
	in, out *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}

func (s *Server) handle(rawConn net.Conn) {
	defer rawConn.Close()
	conn := &countingConn{Conn: rawConn, in: s.gov.met.bytesIn, out: s.gov.met.bytesOut}
	sess := s.gov.NewSessionFor(rawConn.RemoteAddr().String())
	defer sess.Close()

	for {
		var req Request
		typ, err := ReadMsg(conn, &req)
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				// Report the protocol violation before dropping the
				// connection; the stream is unparseable past this point.
				s.gov.met.errors.Inc()
				WriteMsg(conn, MsgError, &Response{Error: err.Error()})
			}
			return // connection gone
		}
		s.gov.met.commands.Inc()
		var resp *Response
		var rerr error
		switch typ {
		case MsgHello:
			resp = &Response{Message: fmt.Sprintf("sedna-go session %d", sess.id)}
		case MsgBegin:
			rerr = sess.Begin(req.ReadOnly)
			resp = &Response{Message: "begun"}
		case MsgExecute:
			resp, rerr = sess.Execute(req.Query)
		case MsgCommit:
			rerr = sess.Commit()
			resp = &Response{Message: "committed"}
		case MsgRollback:
			rerr = sess.Rollback()
			resp = &Response{Message: "rolled back"}
		case MsgMetrics:
			resp = &Response{Data: s.gov.Metrics().Text()}
		case MsgSlowLog:
			resp, rerr = s.gov.slowLog(&req)
		case MsgWorkers:
			resp, rerr = s.gov.workers(&req)
		case MsgPrefetch:
			resp, rerr = s.gov.prefetch(&req)
		case MsgResident:
			resp, rerr = s.gov.resident(&req)
		case MsgReplicate:
			// The connection becomes a replication stream and never returns
			// to the request-response loop.
			if err := s.gov.primary.ServeConn(conn, &req); err != nil {
				s.gov.met.errors.Inc()
				log.Printf("sednad: replication stream: %v", err)
			}
			return
		case MsgReplStatus:
			resp, rerr = s.gov.replStatus()
		case MsgPromote:
			resp, rerr = s.gov.promote()
		case MsgSessions:
			resp, rerr = s.gov.sessionsResp()
		case MsgKill:
			resp, rerr = s.gov.killResp(&req)
		case MsgCluster:
			resp, rerr = s.gov.clusterResp()
		case MsgQuit:
			WriteMsg(conn, MsgOK, &Response{Message: "bye"})
			return
		default:
			rerr = fmt.Errorf("server: unknown message type %d", typ)
		}
		if rerr != nil {
			s.gov.met.errors.Inc()
			if err := WriteMsg(conn, MsgError, &Response{Error: rerr.Error()}); err != nil {
				return
			}
			continue
		}
		out := byte(MsgOK)
		switch typ {
		case MsgExecute, MsgMetrics, MsgSlowLog, MsgWorkers, MsgPrefetch, MsgReplStatus, MsgSessions, MsgCluster, MsgResident:
			out = MsgResult
		}
		if err := WriteMsg(conn, out, resp); err != nil {
			return
		}
	}
}
