package server_test

import (
	"runtime"
	"testing"

	"sedna/client"
)

// TestWorkersVerb smoke-tests the MsgWorkers wire verb end to end: the
// default budget resolves to GOMAXPROCS, a set round-trips and reports the
// new effective value, and 0 restores the default.
func TestWorkersVerb(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n, err := c.QueryWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if n != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", n, runtime.GOMAXPROCS(0))
	}
	n, err = c.SetQueryWorkers(3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("SetQueryWorkers(3) reported %d", n)
	}
	if n, err = c.QueryWorkers(); err != nil || n != 3 {
		t.Fatalf("workers after set = %d, %v", n, err)
	}
	// Statements keep flowing under the new budget.
	if _, err := c.Execute(`CREATE DOCUMENT "w"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x></r> into doc("w")`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`count(doc("w")//x)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "1" {
		t.Fatalf("count = %q", res.Data)
	}
	// 0 restores the server default.
	if n, err = c.SetQueryWorkers(0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetQueryWorkers(0) = %d, %v", n, err)
	}
}
