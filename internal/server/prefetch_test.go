package server_test

import (
	"testing"

	"sedna/client"
)

// TestPrefetchVerb smoke-tests the MsgPrefetch wire verb end to end: the
// depth defaults to 0 (readahead off), a set round-trips and reports the
// new effective value, statements keep returning correct results at the
// new depth, and a negative set clamps to 0.
func TestPrefetchVerb(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	d, err := c.PrefetchDepth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("default prefetch depth = %d, want 0", d)
	}
	if d, err = c.SetPrefetchDepth(8); err != nil || d != 8 {
		t.Fatalf("SetPrefetchDepth(8) = %d, %v", d, err)
	}
	if d, err = c.PrefetchDepth(); err != nil || d != 8 {
		t.Fatalf("prefetch depth after set = %d, %v", d, err)
	}
	// Statements keep flowing — and reading correctly — with readahead on.
	if _, err := c.Execute(`CREATE DOCUMENT "p"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x><x>2</x></r> into doc("p")`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`count(doc("p")//x)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "2" {
		t.Fatalf("count = %q", res.Data)
	}
	if d, err = c.SetPrefetchDepth(-5); err != nil || d != 0 {
		t.Fatalf("SetPrefetchDepth(-5) = %d, %v (want clamp to 0)", d, err)
	}
}
