package server

import (
	"net"
	"net/http"

	"sedna/internal/metrics"
)

// MetricsServer serves a registry's text snapshot over plain HTTP, for
// scraping with curl or any monitoring agent. It exposes:
//
//	GET /metrics  — the sorted "name value" snapshot (text/plain)
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenMetrics starts an HTTP metrics endpoint on addr (e.g.
// "127.0.0.1:5051"). Pass the same registry the database and governor report
// into.
func ListenMetrics(reg *metrics.Registry, addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Addr returns the bound listen address.
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the endpoint.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }
