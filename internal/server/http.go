package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"sedna/internal/metrics"
	"sedna/internal/trace"
)

// indexPage lists the observability endpoints; served on "/" and on unknown
// paths (with a 404 status) so a bare curl against the port is self-describing.
const indexPage = `sedna observability endpoints:
  /metrics       metrics snapshot (text/plain; ?format=prometheus for text exposition)
  /sessions      live sessions with per-session accounting and in-flight statements (JSON)
  /slowlog       retained slow-query traces as JSON (?n=N limits)
  /debug/pprof/  Go runtime profiles
`

// MetricsServer serves the observability endpoints over plain HTTP, for
// scraping with curl or any monitoring agent. It exposes:
//
//	GET /metrics      — the sorted "name value" snapshot (text/plain);
//	                    ?format=prometheus switches to the Prometheus text
//	                    exposition format (HELP/TYPE lines, histograms)
//	GET /sessions     — live sessions: per-session accounting + in-flight
//	                    statements with live span trees (JSON)
//	GET /slowlog      — retained slow-query traces, newest first (JSON)
//	GET /debug/pprof/ — the standard Go runtime profiling handlers
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// getOnly rejects everything but GET; the endpoints are read-only views.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// ListenMetrics starts an HTTP observability endpoint on addr (e.g.
// "127.0.0.1:5051"). Pass the same registry the database and governor report
// into; tr (may be nil) backs the /slowlog endpoint and gov (may be nil)
// the /sessions endpoint.
func ListenMetrics(reg *metrics.Registry, tr *trace.Tracer, gov *Governor, addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Path != "/" {
			w.WriteHeader(http.StatusNotFound)
		}
		fmt.Fprint(w, indexPage)
	}))
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Snapshot().WriteText(w)
		case "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.Snapshot().WritePrometheus(w)
		default:
			http.Error(w, fmt.Sprintf("metrics: unknown format %q", format), http.StatusBadRequest)
		}
	}))
	mux.HandleFunc("/sessions", getOnly(func(w http.ResponseWriter, r *http.Request) {
		infos := []SessionInfo{}
		if gov != nil {
			infos = gov.SessionInfos()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(infos)
	}))
	mux.HandleFunc("/slowlog", getOnly(func(w http.ResponseWriter, r *http.Request) {
		traces := []*trace.Trace{}
		if tr != nil {
			traces = tr.Slow()
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "slowlog: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	}))
	// The pprof handlers are registered unwrapped: Symbol accepts POST.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Addr returns the bound listen address.
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close stops the endpoint.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }
