package server

// The session & statement registry: the governor's live view of who is
// connected, what each session has consumed, and which statement each one is
// executing right now (paper §3 — the governor "keeps track of all sessions
// and transactions running in the system"). Per-session resource accounting
// accumulates engine-wide counter deltas over each statement's window — the
// same technique the tracer uses — so it costs a handful of atomic loads per
// statement, not per event. Under concurrent sessions a delta can attribute
// a neighbour's page fault to the wrong session; the numbers are operator
// telemetry, not billing.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"sedna/internal/query"
	"sedna/internal/repl"
	"sedna/internal/trace"
)

// SessionStats is one session's cumulative resource accounting.
type SessionStats struct {
	Statements   uint64 `json:"statements"`
	Errors       uint64 `json:"errors,omitempty"`
	Nodes        uint64 `json:"nodes,omitempty"`         // items/updates produced
	BufferFaults uint64 `json:"buffer_faults,omitempty"` // page faults over statement windows
	PagesRead    uint64 `json:"pages_read,omitempty"`    // disk reads
	PagesWritten uint64 `json:"pages_written,omitempty"` // disk writes
	WALBytes     uint64 `json:"wal_bytes,omitempty"`
	LockWaitNs   int64  `json:"lock_wait_ns,omitempty"`
	ExecNs       int64  `json:"exec_ns,omitempty"` // cumulative statement wall time
}

// add accumulates one statement window's deltas.
func (st *SessionStats) add(d SessionStats) {
	st.Statements += d.Statements
	st.Errors += d.Errors
	st.Nodes += d.Nodes
	st.BufferFaults += d.BufferFaults
	st.PagesRead += d.PagesRead
	st.PagesWritten += d.PagesWritten
	st.WALBytes += d.WALBytes
	st.LockWaitNs += d.LockWaitNs
	st.ExecNs += d.ExecNs
}

// StatementInfo is the live view of a session's in-flight statement.
type StatementInfo struct {
	Ordinal     uint64      `json:"ordinal"` // per-session statement number
	Query       string      `json:"query"`
	StartUnixNs int64       `json:"start_unix_ns"`
	ElapsedNs   int64       `json:"elapsed_ns"`
	Spans       *trace.Span `json:"spans,omitempty"` // live span-tree snapshot
}

// SessionInfo is the introspection view of one session.
type SessionInfo struct {
	ID              uint64         `json:"id"`
	Client          string         `json:"client,omitempty"`
	ConnectedUnixNs int64          `json:"connected_unix_ns"`
	TxOpen          bool           `json:"tx_open,omitempty"`
	Stats           SessionStats   `json:"stats"`
	Statement       *StatementInfo `json:"statement,omitempty"`
}

// ClusterInfo is the primary's merged health snapshot: replication topology
// plus every local session.
type ClusterInfo struct {
	Topology repl.Topology `json:"topology"`
	Sessions []SessionInfo `json:"sessions"`
}

// stmtState registers one executing statement with its session: the text,
// the start time, the execution context carrying the cancellation token, and
// the trace root for live span snapshots.
type stmtState struct {
	ord   uint64
	query string
	start time.Time
	ctx   *query.ExecCtx
	root  *trace.Span
}

// statsBase is the engine-wide counter baseline captured at statement start;
// the statement's consumption is the delta at finish.
type statsBase struct {
	faults, reads, writes, walBytes uint64
	lockWaitNs                      int64
}

func (s *Session) statsBaseline() statsBase {
	reg := s.gov.Metrics()
	return statsBase{
		faults:     reg.Counter("buffer.faults").Value(),
		reads:      reg.Counter("buffer.disk_reads").Value(),
		writes:     reg.Counter("buffer.disk_writes").Value(),
		walBytes:   reg.Counter("wal.append_bytes").Value(),
		lockWaitNs: reg.Histogram("lock.wait_ns").SumNs(),
	}
}

// beginStatement registers the in-flight statement and returns the counter
// baseline for its accounting window.
func (s *Session) beginStatement(src string, ctx *query.ExecCtx) statsBase {
	var root *trace.Span
	if tr := ctx.Trace(); tr != nil {
		tr.SetOrigin(s.id, s.client)
		root = tr.Root
	}
	s.curMu.Lock()
	s.stmtOrd++
	s.cur = &stmtState{
		ord:   s.stmtOrd,
		query: src,
		start: time.Now(),
		ctx:   ctx,
		root:  root,
	}
	s.curMu.Unlock()
	return s.statsBaseline()
}

// endStatement unregisters the statement and folds its window's deltas into
// the session's cumulative stats.
func (s *Session) endStatement(base statsBase, nodes int, execErr error) {
	s.curMu.Lock()
	start := s.cur.start
	s.cur = nil
	s.curMu.Unlock()
	reg := s.gov.Metrics()
	d := SessionStats{
		Statements:   1,
		Nodes:        uint64(nodes),
		BufferFaults: reg.Counter("buffer.faults").Value() - base.faults,
		PagesRead:    reg.Counter("buffer.disk_reads").Value() - base.reads,
		PagesWritten: reg.Counter("buffer.disk_writes").Value() - base.writes,
		WALBytes:     reg.Counter("wal.append_bytes").Value() - base.walBytes,
		LockWaitNs:   reg.Histogram("lock.wait_ns").SumNs() - base.lockWaitNs,
		ExecNs:       time.Since(start).Nanoseconds(),
	}
	if execErr != nil {
		d.Errors = 1
	}
	s.statsMu.Lock()
	s.stats.add(d)
	s.statsMu.Unlock()
}

// Info renders the session for introspection, including a live deep-copied
// snapshot of the in-flight statement's span tree.
func (s *Session) Info() SessionInfo {
	info := SessionInfo{
		ID:              s.id,
		Client:          s.client,
		ConnectedUnixNs: s.connected.UnixNano(),
		TxOpen:          s.txOpen.Load(),
	}
	s.statsMu.Lock()
	info.Stats = s.stats
	s.statsMu.Unlock()
	s.curMu.Lock()
	cur := s.cur
	s.curMu.Unlock()
	if cur != nil {
		info.Statement = &StatementInfo{
			Ordinal:     cur.ord,
			Query:       cur.query,
			StartUnixNs: cur.start.UnixNano(),
			ElapsedNs:   time.Since(cur.start).Nanoseconds(),
			Spans:       cur.root.Snapshot(),
		}
	}
	return info
}

// kill cancels the session's in-flight statement. With wantOrd non-zero the
// kill only lands if that statement is still the one executing — the fence
// against a KILL racing normal completion and hitting an innocent successor.
func (s *Session) kill(wantOrd uint64) error {
	s.curMu.Lock()
	defer s.curMu.Unlock()
	if s.cur == nil {
		return fmt.Errorf("server: session %d is idle", s.id)
	}
	if wantOrd != 0 && s.cur.ord != wantOrd {
		return fmt.Errorf("server: session %d statement %d already finished", s.id, wantOrd)
	}
	s.cur.ctx.Kill()
	s.gov.met.kills.Inc()
	return nil
}

// SessionInfos returns the introspection view of every live session, by id.
func (g *Governor) SessionInfos() []SessionInfo {
	g.mu.Lock()
	sessions := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.mu.Unlock()
	// Snapshot outside the governor lock: Info takes per-session locks and
	// deep-copies span trees.
	infos := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		infos = append(infos, s.Info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Kill cancels the in-flight statement of the target session (stmtOrd 0 =
// whatever is running now, otherwise that specific per-session ordinal).
func (g *Governor) Kill(sessionID, stmtOrd uint64) error {
	g.mu.Lock()
	target := g.sessions[sessionID]
	g.mu.Unlock()
	if target == nil {
		return fmt.Errorf("server: no session %d", sessionID)
	}
	return target.kill(stmtOrd)
}

// Cluster returns the merged topology/health snapshot: the node's
// replication role with per-replica lag, plus every local session.
func (g *Governor) Cluster() ClusterInfo {
	t := repl.Topology{Role: "primary", Replicas: g.primary.Status()}
	if g.replica != nil {
		self := g.replica.Status()
		t.Self = &self
		if self.State != "promoted" {
			t.Role = "replica"
		}
	}
	return ClusterInfo{Topology: t, Sessions: g.SessionInfos()}
}

// sessionsResp serves a MsgSessions request.
func (g *Governor) sessionsResp() (*Response, error) {
	infos := g.SessionInfos()
	b, err := json.Marshal(infos)
	if err != nil {
		return nil, err
	}
	running := 0
	for _, in := range infos {
		if in.Statement != nil {
			running++
		}
	}
	return &Response{
		Data:    string(b),
		Message: fmt.Sprintf("sessions=%d running=%d", len(infos), running),
	}, nil
}

// killResp serves a MsgKill request.
func (g *Governor) killResp(req *Request) (*Response, error) {
	if req.KillSession == 0 {
		return nil, errors.New("server: KILL needs a session id")
	}
	if err := g.Kill(req.KillSession, req.KillStatement); err != nil {
		return nil, err
	}
	return &Response{Message: fmt.Sprintf("killed: session %d", req.KillSession)}, nil
}

// clusterResp serves a MsgCluster request.
func (g *Governor) clusterResp() (*Response, error) {
	c := g.Cluster()
	b, err := json.Marshal(&c)
	if err != nil {
		return nil, err
	}
	return &Response{
		Data: string(b),
		Message: fmt.Sprintf("role=%s replicas=%d sessions=%d",
			c.Topology.Role, len(c.Topology.Replicas), len(c.Sessions)),
	}, nil
}
