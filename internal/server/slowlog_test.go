package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sedna/client"
	"sedna/internal/server"
	"sedna/internal/trace"
)

// TestSlowLogEndToEnd drives a slow query through the wire protocol and
// checks it appears in the SLOWLOG response, the /slowlog HTTP endpoint and
// the JSONL file, with its full trace.
func TestSlowLogEndToEnd(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 1ns threshold: every statement qualifies as slow.
	if err := c.SetSlowThreshold(time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`CREATE DOCUMENT "s"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x><x>2</x></r> into doc("s")`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`count(doc("s")//x)`); err != nil {
		t.Fatal(err)
	}

	traces, err := c.SlowLog(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("slow log has %d traces, want 3", len(traces))
	}
	// Newest first: the count query leads.
	tr := traces[0]
	if tr.Query != `count(doc("s")//x)` || !tr.Slow {
		t.Fatalf("newest slow trace = %+v", tr)
	}
	if tr.Root == nil || tr.DurNs <= 0 {
		t.Fatalf("trace has no span tree: %+v", tr)
	}
	var spanNames []string
	var walk func(s *trace.Span)
	walk = func(s *trace.Span) {
		spanNames = append(spanNames, s.Name)
		for _, ch := range s.Children {
			walk(ch)
		}
	}
	walk(tr.Root)
	joined := strings.Join(spanNames, " ")
	for _, want := range []string{"statement", "parse", "analyze", "rewrite", "execute"} {
		if !strings.Contains(joined, want) {
			t.Errorf("slow trace missing %q span: %v", want, spanNames)
		}
	}
	// The update's trace captured the auto-commit WAL activity.
	upd := traces[1]
	if upd.Counters["wal.appends"] == 0 {
		t.Errorf("update trace has no wal.appends delta: %v", upd.Counters)
	}

	// N bounds the response.
	if traces, err = c.SlowLog(1); err != nil || len(traces) != 1 {
		t.Fatalf("SlowLog(1) = %d traces, err %v", len(traces), err)
	}

	// Same traces over HTTP.
	ms, err := server.ListenMetrics(srv.Governor().Metrics(), srv.Governor().Tracer(), srv.Governor(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/slowlog", ms.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slowlog status = %d", resp.StatusCode)
	}
	var httpTraces []*trace.Trace
	if err := json.NewDecoder(resp.Body).Decode(&httpTraces); err != nil {
		t.Fatal(err)
	}
	if len(httpTraces) != 3 || httpTraces[0].Query != `count(doc("s")//x)` {
		t.Fatalf("/slowlog returned %d traces, first %+v", len(httpTraces), httpTraces[0])
	}

	// And on disk as JSONL in the database directory.
	data, err := os.ReadFile(filepath.Join(srv.Governor().DB().Dir(), "slowlog.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("slowlog.jsonl has %d lines, want 3", len(lines))
	}
	var logged trace.Trace
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &logged); err != nil {
		t.Fatal(err)
	}
	if logged.Query != `count(doc("s")//x)` || logged.Root == nil {
		t.Fatalf("logged trace = %+v", logged)
	}

	// Threshold back to 0 disables collection.
	if err := c.SetSlowThreshold(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`count(doc("s")//x)`); err != nil {
		t.Fatal(err)
	}
	if traces, err = c.SlowLog(0); err != nil || len(traces) != 3 {
		t.Fatalf("slow log grew after disabling: %d traces, err %v", len(traces), err)
	}
}

// TestHTTPEndpointHygiene covers the non-GET guard, the index page, 404s on
// unknown paths and the pprof mount.
func TestHTTPEndpointHygiene(t *testing.T) {
	srv := startServer(t)
	ms, err := server.ListenMetrics(srv.Governor().Metrics(), srv.Governor().Tracer(), srv.Governor(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr()

	resp, err := http.Post(base+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET / status = %d", resp.StatusCode)
	}
	for _, want := range []string{"/metrics", "/slowlog", "/debug/pprof/"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("index page missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope status = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "/metrics") {
		t.Errorf("404 body is not the index page:\n%s", body)
	}

	resp, err = http.Get(base + "/slowlog?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /slowlog?n=bogus status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("GET /debug/pprof/ status = %d body:\n%.200s", resp.StatusCode, body)
	}
}
