package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sedna/client"
	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/server"
)

// longKillQuery runs millions of cheap FLWOR iterations — long enough to be
// observed and killed, with a cancellation checkpoint at every iteration.
const longKillQuery = `for $i in 1 to 4000 for $j in 1 to 4000 where $i + $j = 0 return 1`

// TestSessionsVisibility is the acceptance-criteria test: a second
// connection's in-flight statement shows up in SESSIONS with its query text,
// and sessions that did storage work show non-zero page-fault and exec-time
// counters.
func TestSessionsVisibility(t *testing.T) {
	srv := startServer(t)
	worker, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	watcher, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	// Storage work first, so the worker session accumulates faults.
	if _, err := worker.Execute(`CREATE DOCUMENT "d"`); err != nil {
		t.Fatal(err)
	}
	if _, err := worker.Execute(`UPDATE insert <r><x>1</x><x>2</x></r> into doc("d")`); err != nil {
		t.Fatal(err)
	}
	if _, err := worker.Execute(`count(doc("d")//x)`); err != nil {
		t.Fatal(err)
	}

	// Fire the long statement and catch it in flight from the watcher.
	done := make(chan error, 1)
	go func() {
		_, err := worker.Execute(longKillQuery)
		done <- err
	}()
	var running *server.SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for running == nil && time.Now().Before(deadline) {
		infos, err := watcher.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		for i := range infos {
			if infos[i].Statement != nil && infos[i].Statement.Query == longKillQuery {
				running = &infos[i]
			}
		}
		if running == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if running == nil {
		t.Fatal("in-flight statement never appeared in SESSIONS")
	}
	if running.Statement.Ordinal == 0 || running.Statement.ElapsedNs <= 0 {
		t.Fatalf("statement view incomplete: %+v", running.Statement)
	}
	if running.Stats.Statements < 3 {
		t.Fatalf("worker session stats = %+v, want ≥ 3 statements", running.Stats)
	}
	if running.Stats.BufferFaults == 0 {
		t.Fatalf("worker session shows no buffer faults: %+v", running.Stats)
	}
	if running.Stats.ExecNs <= 0 {
		t.Fatalf("worker session shows no exec time: %+v", running.Stats)
	}
	if running.Client == "" {
		t.Fatal("session has no client address")
	}

	// KILL it and require prompt termination with a clean abort.
	killedAt := time.Now()
	if err := watcher.Kill(running.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "killed") {
			t.Fatalf("killed statement returned %v, want killed error", err)
		}
		if lat := time.Since(killedAt); lat > 100*time.Millisecond {
			t.Fatalf("kill-to-termination took %s, want < 100ms", lat)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed statement did not terminate")
	}

	// The worker session survives its killed statement.
	res, err := worker.Execute(`count(doc("d")//x)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "2" {
		t.Fatalf("post-kill query = %q, want 2", res.Data)
	}
	kills := srv.Governor().Metrics().Counter("server.kills").Value()
	if kills != 1 {
		t.Fatalf("server.kills = %d, want 1", kills)
	}
}

// TestKillAbortsExplicitTransaction: a statement killed inside BEGIN…COMMIT
// rolls the whole transaction back — partial update effects must not
// survive.
func TestKillAbortsExplicitTransaction(t *testing.T) {
	srv := startServer(t)
	worker, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	watcher, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	if _, err := worker.Execute(`CREATE DOCUMENT "d"`); err != nil {
		t.Fatal(err)
	}
	if _, err := worker.Execute(`UPDATE insert <r/> into doc("d")`); err != nil {
		t.Fatal(err)
	}
	if err := worker.Begin(false); err != nil {
		t.Fatal(err)
	}
	if _, err := worker.Execute(`UPDATE insert <gone/> into doc("d")/r`); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := worker.Execute(longKillQuery)
		done <- err
	}()
	if err := killWhenRunning(watcher, longKillQuery); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("got %v, want killed error", err)
	}
	// The transaction was aborted server-side: COMMIT has nothing to commit
	// and the in-transaction update is gone.
	if err := worker.Commit(); err == nil {
		t.Fatal("COMMIT succeeded after kill, want no-open-transaction error")
	}
	res, err := worker.Execute(`count(doc("d")/r/gone)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "0" {
		t.Fatalf("killed transaction leaked an update: count = %q", res.Data)
	}
}

// killWhenRunning polls SESSIONS until query is in flight, then kills its
// session.
func killWhenRunning(watcher *client.Conn, query string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		infos, err := watcher.Sessions()
		if err != nil {
			return err
		}
		for _, in := range infos {
			if in.Statement != nil && in.Statement.Query == query {
				return watcher.Kill(in.ID)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("statement %q never appeared", query)
}

// TestKillRacesNormalCompletion hammers the window where KILL arrives as
// the statement completes on its own: the kill either lands (killed error)
// or reports the session idle / the statement finished — never anything
// else, and the session keeps working either way. Run under -race.
func TestKillRacesNormalCompletion(t *testing.T) {
	srv := startServer(t)
	worker, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	watcher, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	// Find the worker's session id (the one that is not the watcher's: the
	// watcher session is the one executing SESSIONS... simplest to take both
	// and kill the one whose id differs from the watcher's own hello id).
	infos, err := watcher.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("sessions = %d, want 2", len(infos))
	}

	for i := 0; i < 40; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		var execErr error
		go func() {
			defer wg.Done()
			_, execErr = worker.Execute(`count(for $i in 1 to 500 return $i)`)
		}()
		// Kill both sessions with no synchronization; errors about idle
		// sessions or finished statements are expected.
		for _, in := range infos {
			if err := watcher.Kill(in.ID); err != nil {
				msg := err.Error()
				if !strings.Contains(msg, "idle") && !strings.Contains(msg, "finished") {
					t.Fatalf("iteration %d: unexpected kill error %q", i, msg)
				}
			}
		}
		wg.Wait()
		if execErr != nil && !strings.Contains(execErr.Error(), "killed") {
			t.Fatalf("iteration %d: unexpected execute error %v", i, execErr)
		}
	}
	// The worker session still works.
	if _, err := worker.Execute(`1 + 1`); err != nil {
		t.Fatal(err)
	}
}

// TestKillStatementOrdinalFence: killing a specific finished statement
// ordinal fails instead of cancelling an innocent successor.
func TestKillStatementOrdinalFence(t *testing.T) {
	srv := startServer(t)
	worker, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	watcher, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	if _, err := worker.Execute(`1 + 1`); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := worker.Execute(longKillQuery)
		done <- err
	}()
	// Catch the long statement's ordinal, then try to kill its predecessor.
	deadline := time.Now().Add(5 * time.Second)
	var sessID, ord uint64
	for ord == 0 && time.Now().Before(deadline) {
		infos, err := watcher.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			if in.Statement != nil && in.Statement.Query == longKillQuery {
				sessID, ord = in.ID, in.Statement.Ordinal
			}
		}
	}
	if ord < 2 {
		t.Fatalf("long statement ordinal = %d, want ≥ 2", ord)
	}
	if err := watcher.KillStatement(sessID, ord-1); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Fatalf("stale-ordinal kill returned %v, want finished error", err)
	}
	// The fenced kill with the right ordinal lands.
	if err := watcher.KillStatement(sessID, ord); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("got %v, want killed error", err)
	}
}

// TestKillErrors covers the error paths: unknown session, idle session,
// missing session id.
func TestKillErrors(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Kill(99999); err == nil || !strings.Contains(err.Error(), "no session") {
		t.Fatalf("unknown session: %v", err)
	}
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	// Our own session is idle while serving SESSIONS/KILL verbs.
	if err := c.Kill(infos[0].ID); err == nil || !strings.Contains(err.Error(), "idle") {
		t.Fatalf("idle session: %v", err)
	}
	if err := c.Kill(0); err == nil {
		t.Fatal("kill without a session id succeeded")
	}
}

// TestClusterView: the CLUSTER verb merges the replication topology with
// local sessions.
func TestClusterView(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ci, err := c.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if ci.Topology.Role != "primary" {
		t.Fatalf("role = %q, want primary", ci.Topology.Role)
	}
	if len(ci.Sessions) != 1 || ci.Sessions[0].Client == "" {
		t.Fatalf("cluster sessions = %+v", ci.Sessions)
	}
}

// TestSessionsHTTP exercises GET /sessions and both /metrics formats, with
// concurrent scrapes racing live counter writers (run under -race).
func TestSessionsHTTP(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := server.Listen(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ms, err := server.ListenMetrics(db.Metrics(), db.Tracer(), srv.Governor(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`CREATE DOCUMENT "d"`); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// /sessions returns the connected session as JSON.
	code, body := get("/sessions")
	if code != http.StatusOK {
		t.Fatalf("/sessions status = %d", code)
	}
	var infos []server.SessionInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/sessions not JSON: %v\n%s", err, body)
	}
	if len(infos) != 1 || infos[0].Stats.Statements == 0 {
		t.Fatalf("/sessions = %+v", infos)
	}

	// Default /metrics format unchanged (no HELP/TYPE lines), prometheus
	// format parses and carries build info + histogram families.
	code, body = get("/metrics")
	if code != http.StatusOK || strings.Contains(body, "# TYPE") {
		t.Fatalf("/metrics default format changed (status %d):\n%.300s", code, body)
	}
	if !strings.Contains(body, "server.sessions_active 1") {
		t.Fatalf("/metrics missing sessions_active:\n%.300s", body)
	}
	code, body = get("/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prometheus format status = %d", code)
	}
	fams, err := metrics.ParsePrometheusText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("prometheus output malformed: %v\n%s", err, body)
	}
	for _, want := range []string{"sedna_sedna_build_info", "sedna_server_uptime_seconds", "sedna_query_ddl_ns"} {
		if fams[want] == nil {
			t.Fatalf("prometheus output missing family %s", want)
		}
	}
	if fams["sedna_query_ddl_ns"].Type != "histogram" {
		t.Fatalf("ddl_ns type = %q, want histogram", fams["sedna_query_ddl_ns"].Type)
	}
	if code, _ := get("/metrics?format=wat"); code != http.StatusBadRequest {
		t.Fatalf("unknown format status = %d, want 400", code)
	}

	// Concurrent scrapes racing live counter writers.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := db.Metrics()
			c := reg.Counter("scrape.race")
			h := reg.Histogram("scrape.race_ns")
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.ObserveNs(7)
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if code, _ := get("/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		code, body := get("/metrics?format=prometheus")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		if _, err := metrics.ParsePrometheusText(strings.NewReader(body)); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if code, _ := get("/sessions"); code != http.StatusOK {
			t.Fatalf("scrape %d: /sessions status %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSlowlogSessionEnrichment: slowlog entries carry the session id and
// client address of the statement's origin, joinable against SESSIONS.
func TestSlowlogSessionEnrichment(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetSlowThreshold(1); err != nil { // 1ns: everything is slow
		t.Fatal(err)
	}
	if _, err := c.Execute(`CREATE DOCUMENT "d"`); err != nil {
		t.Fatal(err)
	}
	traces, err := c.SlowLog(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no slow traces retained")
	}
	tr := traces[0]
	if tr.SessionID == 0 || tr.Client == "" {
		t.Fatalf("slow trace not enriched: session_id=%d client=%q", tr.SessionID, tr.Client)
	}
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].ID != tr.SessionID || infos[0].Client != tr.Client {
		t.Fatalf("slowlog/sessions mismatch: trace %d/%q vs session %d/%q",
			tr.SessionID, tr.Client, infos[0].ID, infos[0].Client)
	}
}
