package server_test

import (
	"testing"

	"sedna/client"
)

// TestResidentVerb smoke-tests the MsgResident wire verb end to end: the
// mode defaults to off, a set round-trips and reports the new effective
// state, and statements keep returning correct results while resident
// copies serve the reads.
func TestResidentVerb(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	on, err := c.Resident()
	if err != nil {
		t.Fatal(err)
	}
	if on {
		t.Fatal("resident mode on by default, want off")
	}
	if on, err = c.SetResident(true); err != nil || !on {
		t.Fatalf("SetResident(true) = %v, %v", on, err)
	}
	if on, err = c.Resident(); err != nil || !on {
		t.Fatalf("resident state after set = %v, %v", on, err)
	}
	if _, err := c.Execute(`CREATE DOCUMENT "r"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x><x>2</x></r> into doc("r")`); err != nil {
		t.Fatal(err)
	}
	// Two reads: the first builds the resident copy, the second hits it.
	for i := 0; i < 2; i++ {
		res, err := c.Execute(`count(doc("r")//x)`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Data != "2" {
			t.Fatalf("count = %q", res.Data)
		}
	}
	// An update while resident invalidates; the next read is still correct.
	if _, err := c.Execute(`UPDATE insert <x>3</x> into doc("r")/r`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`count(doc("r")//x)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "3" {
		t.Fatalf("count after update = %q", res.Data)
	}
	if on, err = c.SetResident(false); err != nil || on {
		t.Fatalf("SetResident(false) = %v, %v", on, err)
	}
}
