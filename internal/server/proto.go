// Package server implements the process architecture of the paper's
// Figure 1: the governor keeps track of all sessions and transactions
// running in the system; a connection component encapsulates each client
// session; and a transaction component wraps every database transaction a
// session runs. Clients talk to the server over a small length-prefixed
// message protocol on TCP.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Message types (client → server).
const (
	MsgHello    = 1
	MsgBegin    = 2
	MsgExecute  = 3
	MsgCommit   = 4
	MsgRollback = 5
	MsgQuit     = 6
	MsgMetrics  = 7
	MsgSlowLog  = 8
	MsgWorkers  = 9
	MsgPrefetch = 10
)

// Message types (server → client).
const (
	MsgOK     = 64
	MsgResult = 65
	MsgError  = 66
)

// maxMessage bounds a single protocol message.
const maxMessage = 64 << 20

// ErrTooLarge reports a framed message whose declared length exceeds the
// protocol limit. The server answers it with a protocol error before closing
// the connection; everything after the oversized header is unparseable.
var ErrTooLarge = errors.New("server: message exceeds size limit")

// Request is a client message payload.
type Request struct {
	ReadOnly bool   `json:"readonly,omitempty"` // MsgBegin
	Query    string `json:"query,omitempty"`    // MsgExecute

	// MsgSlowLog: N bounds how many retained slow traces to return (0 =
	// all); when SetThreshold is set, the server first updates the
	// slow-query threshold to ThresholdNs (0 disables the slow log).
	N            int   `json:"n,omitempty"`
	ThresholdNs  int64 `json:"threshold_ns,omitempty"`
	SetThreshold bool  `json:"set_threshold,omitempty"`

	// MsgWorkers: when SetWorkers is set, the server updates the intra-query
	// parallelism cap to Workers (≤ 0 restores the GOMAXPROCS default); the
	// response always reports the effective worker budget.
	Workers    int  `json:"workers,omitempty"`
	SetWorkers bool `json:"set_workers,omitempty"`

	// MsgPrefetch: when SetPrefetch is set, the server updates the default
	// chain-readahead depth to Prefetch (≤ 0 disables readahead); the
	// response always reports the effective depth.
	Prefetch    int  `json:"prefetch,omitempty"`
	SetPrefetch bool `json:"set_prefetch,omitempty"`
}

// Response is a server message payload.
type Response struct {
	Message string `json:"message,omitempty"`
	Data    string `json:"data,omitempty"`
	Updated int    `json:"updated,omitempty"`
	Error   string `json:"error,omitempty"`
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, typ byte, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader, payload any) (byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxMessage {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	if payload != nil {
		if err := json.Unmarshal(body, payload); err != nil {
			return 0, err
		}
	}
	return hdr[4], nil
}
