// Package server implements the process architecture of the paper's
// Figure 1: the governor keeps track of all sessions and transactions
// running in the system; a connection component encapsulates each client
// session; and a transaction component wraps every database transaction a
// session runs. Clients talk to the server over a small length-prefixed
// message protocol on TCP.
//
// The frame format itself lives in package wire (shared with the
// replication subsystem and the Go driver); this file re-exports it so
// existing callers keep working against the server package.
package server

import (
	"io"

	"sedna/internal/wire"
)

// Message types (client → server).
const (
	MsgHello      = wire.MsgHello
	MsgBegin      = wire.MsgBegin
	MsgExecute    = wire.MsgExecute
	MsgCommit     = wire.MsgCommit
	MsgRollback   = wire.MsgRollback
	MsgQuit       = wire.MsgQuit
	MsgMetrics    = wire.MsgMetrics
	MsgSlowLog    = wire.MsgSlowLog
	MsgWorkers    = wire.MsgWorkers
	MsgPrefetch   = wire.MsgPrefetch
	MsgReplicate  = wire.MsgReplicate
	MsgReplStatus = wire.MsgReplStatus
	MsgPromote    = wire.MsgPromote
	MsgSessions   = wire.MsgSessions
	MsgKill       = wire.MsgKill
	MsgCluster    = wire.MsgCluster
	MsgResident   = wire.MsgResident
)

// Message types (server → client).
const (
	MsgOK     = wire.MsgOK
	MsgResult = wire.MsgResult
	MsgError  = wire.MsgError
)

// ErrTooLarge reports a framed message whose declared length exceeds the
// protocol limit.
var ErrTooLarge = wire.ErrTooLarge

// Request is a client message payload.
type Request = wire.Request

// Response is a server message payload.
type Response = wire.Response

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, typ byte, payload any) error {
	return wire.WriteMsg(w, typ, payload)
}

// ReadMsg reads one framed message.
func ReadMsg(r io.Reader, payload any) (byte, error) {
	return wire.ReadMsg(r, payload)
}
