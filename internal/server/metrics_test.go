package server_test

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"sedna/client"
	"sedna/internal/server"
)

// metricFamilies are the subsystem prefixes every exposure path must cover.
var metricFamilies = []string{"buffer.", "pagefile.", "wal.", "txn.", "lock.", "query.", "server."}

func execSome(t *testing.T, c *client.Conn) {
	t.Helper()
	if _, err := c.Execute(`CREATE DOCUMENT "m"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x></r> into doc("m")`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`count(doc("m")//x)`); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsCommand(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	execSome(t, c)

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("METRICS returned an empty snapshot")
	}
	for _, fam := range metricFamilies {
		if !strings.Contains(text, fam) {
			t.Errorf("snapshot missing %q family:\n%s", fam, text)
		}
	}
	for _, want := range []string{
		"server.sessions_active 1",
		"query.statements 3",
		"# recent queries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsHTTPEndpoint(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	execSome(t, c)

	ms, err := server.ListenMetrics(srv.Governor().Metrics(), srv.Governor().Tracer(), srv.Governor(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ms.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, fam := range metricFamilies {
		if !strings.Contains(text, fam) {
			t.Errorf("HTTP snapshot missing %q family", fam)
		}
	}
	// The wire snapshot and the HTTP snapshot come from the same registry.
	wire, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wire, "buffer.hits") || !strings.Contains(text, "buffer.hits") {
		t.Error("wire and HTTP snapshots disagree on buffer.hits presence")
	}
}

func TestUnknownVerbIsError(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := server.WriteMsg(conn, 42, &server.Request{}); err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	typ, err := server.ReadMsg(conn, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if typ != server.MsgError {
		t.Fatalf("reply type = %d, want MsgError", typ)
	}
	if !strings.Contains(resp.Error, "unknown message type") {
		t.Fatalf("error = %q", resp.Error)
	}
	// The session survives a protocol error.
	if err := server.WriteMsg(conn, server.MsgHello, &server.Request{}); err != nil {
		t.Fatal(err)
	}
	if typ, err := server.ReadMsg(conn, &resp); err != nil || typ != server.MsgOK {
		t.Fatalf("session dead after unknown verb: type=%d err=%v", typ, err)
	}
}

func TestOversizedMessageIsError(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-craft a frame header declaring a body far beyond maxMessage.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<30)
	hdr[4] = server.MsgExecute
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var resp server.Response
	typ, err := server.ReadMsg(conn, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if typ != server.MsgError {
		t.Fatalf("reply type = %d, want MsgError", typ)
	}
	if !strings.Contains(resp.Error, "exceeds size limit") {
		t.Fatalf("error = %q", resp.Error)
	}
	// After an oversized header the stream is unparseable; the server
	// closes the connection.
	if _, err := server.ReadMsg(conn, &resp); err == nil {
		t.Fatal("connection still open after oversized message")
	}
}

func TestOversizedClientRead(t *testing.T) {
	// The client-side ReadMsg applies the same bound.
	r := strings.NewReader(string([]byte{0xff, 0xff, 0xff, 0xff, server.MsgOK}))
	_, err := server.ReadMsg(r, nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds size limit") {
		t.Fatalf("err = %v", err)
	}
}
