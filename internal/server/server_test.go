package server_test

import (
	"strings"
	"sync"
	"testing"

	"sedna/client"
	"sedna/internal/core"
	"sedna/internal/server"
)

func startServer(t *testing.T) *server.Server {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv
}

func TestClientServerRoundTrip(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Execute(`CREATE DOCUMENT "d"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <r><x>1</x><x>2</x></r> into doc("d")`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`count(doc("d")/r/x)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "2" {
		t.Fatalf("count = %q", res.Data)
	}
	res, err = c.Execute(`doc("d")/r`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "<r><x>1</x><x>2</x></r>" {
		t.Fatalf("serialize = %q", res.Data)
	}
}

func TestExplicitTransactionCommitRollback(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Execute(`CREATE DOCUMENT "d"`)
	c.Execute(`UPDATE insert <r/> into doc("d")`)

	// Rolled-back transaction leaves no trace.
	if err := c.Begin(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <gone/> into doc("d")/r`); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Execute(`count(doc("d")/r/gone)`)
	if res.Data != "0" {
		t.Fatalf("rollback leaked: %s", res.Data)
	}

	// Committed transaction persists.
	if err := c.Begin(false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(`UPDATE insert <kept/> into doc("d")/r`); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Execute(`count(doc("d")/r/kept)`)
	if res.Data != "1" {
		t.Fatalf("commit lost: %s", res.Data)
	}
}

func TestErrorsDoNotKillSession(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`syntax error here(`); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.Execute(`doc("missing")`); err == nil {
		t.Fatal("expected error for missing document")
	}
	// Session still alive.
	res, err := c.Execute(`1 + 1`)
	if err != nil || res.Data != "2" {
		t.Fatalf("session dead after errors: %v %v", res, err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv := startServer(t)
	setup, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	setup.Execute(`CREATE DOCUMENT "d"`)
	setup.Execute(`UPDATE insert <r><n>0</n></r> into doc("d")`)
	setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Connect(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if i%2 == 0 {
					if _, err := c.Execute(`count(doc("d")//n)`); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := c.Execute(`UPDATE insert <n>x</n> into doc("d")/r`); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Execute(`count(doc("d")//n)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != "41" { // 1 initial + 4 writers × 10
		t.Fatalf("final count = %s, want 41", res.Data)
	}
}

func TestGovernorTracksSessions(t *testing.T) {
	srv := startServer(t)
	if n := srv.Governor().SessionCount(); n != 0 {
		t.Fatalf("sessions = %d", n)
	}
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`1`)
	if err != nil || res.Data != "1" {
		t.Fatal(err)
	}
	if n := srv.Governor().SessionCount(); n != 1 {
		t.Fatalf("sessions = %d, want 1", n)
	}
	if srv.Governor().TxnsStarted() == 0 {
		t.Fatal("governor did not count transactions")
	}
	c.Close()
}

func TestLargeResult(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Execute(`CREATE DOCUMENT "big"`)
	var sb strings.Builder
	sb.WriteString(`UPDATE insert <r>`)
	for i := 0; i < 3000; i++ {
		sb.WriteString("<item>some moderately long content here</item>")
	}
	sb.WriteString(`</r> into doc("big")`)
	if _, err := c.Execute(sb.String()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`doc("big")/r`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) < 3000*20 {
		t.Fatalf("large result truncated: %d bytes", len(res.Data))
	}
}
