// Package txn implements Sedna's transaction manager (§6): ACID update
// transactions under document-granularity strict 2PL, non-blocking read-only
// transactions over page-level snapshots (§6.1, §6.3), write-ahead logging
// of every change, and commit-time garbage such as deferred page frees.
//
// An update transaction satisfies storage.Writer: page writes flow through
// the buffer manager's copy-on-write versioning and are appended to the WAL
// as physical redo records; in-memory metadata changes are logged logically
// and undone via the Defer stack on rollback. A read-only transaction
// satisfies storage.Reader over its snapshot and never takes locks.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/buffer"
	"sedna/internal/lock"
	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/trace"
	"sedna/internal/wal"
)

// ErrReadOnly reports a write attempted through a read-only transaction.
var ErrReadOnly = errors.New("txn: write in read-only transaction")

// ErrDone reports use of a finished transaction.
var ErrDone = errors.New("txn: transaction already finished")

// Manager coordinates transactions, snapshots and commit timestamps.
type Manager struct {
	mu sync.Mutex

	buf   *buffer.Manager
	log   *wal.Log
	pf    *pagefile.File
	locks *lock.Manager

	nextTxn  uint64
	commitTS uint64

	// snapshots maps snapshot timestamp → reference count of read-only
	// transactions using it. The newest snapshot is advanced lazily: each
	// BeginReadOnly takes a snapshot of the latest committed state if
	// commits happened since the last one (§6.3 "snapshots are periodically
	// advanced").
	snapshots map[uint64]int

	// LockTimeout bounds lock waits; 0 disables. Deadlocks are detected
	// eagerly regardless.
	LockTimeout time.Duration

	// defaultPrefetchDepth seeds every new transaction's chain-readahead
	// depth, so scans that never pass through the query executor — the
	// open-time block-chain recount above all — still get readahead.
	defaultPrefetchDepth atomic.Int64

	met txnMetrics
}

// txnMetrics binds the transaction-manager counters in a metrics registry.
type txnMetrics struct {
	begins       *metrics.Counter
	beginsRO     *metrics.Counter
	commits      *metrics.Counter
	aborts       *metrics.Counter
	snapAdvances *metrics.Counter
	activeSnaps  *metrics.Gauge
}

func bindTxnMetrics(reg *metrics.Registry) txnMetrics {
	return txnMetrics{
		begins:       reg.Counter("txn.begins"),
		beginsRO:     reg.Counter("txn.begins_readonly"),
		commits:      reg.Counter("txn.commits"),
		aborts:       reg.Counter("txn.aborts"),
		snapAdvances: reg.Counter("txn.snapshot_advances"),
		activeSnaps:  reg.Gauge("txn.active_snapshots"),
	}
}

// NewManager creates a transaction manager and wires the buffer manager's
// WAL-rule and snapshot hooks, reporting into a private metrics registry.
func NewManager(buf *buffer.Manager, log *wal.Log, pf *pagefile.File, locks *lock.Manager) *Manager {
	return NewManagerWithMetrics(buf, log, pf, locks, nil)
}

// NewManagerWithMetrics creates a transaction manager that reports its
// counters into reg under the "txn." family (nil = a fresh private registry).
func NewManagerWithMetrics(buf *buffer.Manager, log *wal.Log, pf *pagefile.File, locks *lock.Manager, reg *metrics.Registry) *Manager {
	m := &Manager{
		buf:       buf,
		log:       log,
		pf:        pf,
		locks:     locks,
		snapshots: make(map[uint64]int),
		commitTS:  pf.Master().CommitTS,
		met:       bindTxnMetrics(metrics.OrNew(reg)),
	}
	buf.SetWALFlush(log.Flush)
	buf.SetActiveSnapshots(m.activeSnapshots)
	return m
}

// SetCommitTS forces the commit-timestamp counter; recovery uses it after
// replaying the log.
func (m *Manager) SetCommitTS(ts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.commitTS {
		m.commitTS = ts
	}
}

// CommitTS returns the timestamp of the latest committed transaction.
func (m *Manager) CommitTS() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitTS
}

func (m *Manager) activeSnapshots() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.snapshots))
	for ts := range m.snapshots {
		out = append(out, ts)
	}
	return out
}

// SnapshotCount returns the number of distinct active snapshots.
func (m *Manager) SnapshotCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.snapshots)
}

// MinActiveSnapshot returns the oldest active snapshot timestamp, or the
// current commit timestamp when no snapshot is active; state older than the
// result can be garbage-collected.
func (m *Manager) MinActiveSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.commitTS
	for ts := range m.snapshots {
		if ts < min {
			min = ts
		}
	}
	return min
}

// Locks exposes the lock manager (the engine locks documents by name).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Tx is a transaction. An updater implements storage.Writer; a read-only
// transaction implements storage.Reader only.
type Tx struct {
	m        *Manager
	id       uint64
	readonly bool
	done     bool

	// Snapshot state (read-only transactions). The cache keeps resolved
	// page copies for the lifetime of the transaction; it is a sync.Map
	// because the intra-query parallel executor reads one snapshot
	// transaction from several worker goroutines. The map is read-mostly
	// (a page resolves once, then serves every node on it), which is the
	// sync.Map sweet spot; a racing duplicate resolve is benign — both
	// copies hold identical snapshot content.
	snapTS uint64
	cache  sync.Map // sas.PageID → []byte

	// Updater state.
	undo   []func()
	allocs []sas.PageID
	frees  []sas.PageID

	// touched records documents whose in-memory metadata (schema, block
	// lists, chain heads) this transaction changed; the engine publishes
	// committed metadata versions for snapshot readers from it.
	touched map[*storage.Doc]bool

	cts uint64 // commit timestamp, set by Commit

	// pagesTouched counts page-level accesses (reads and writes) made
	// through this transaction; the query executor reads it to attribute
	// page traffic to statements. Atomic so profile readers never race a
	// transaction running on another goroutine.
	pagesTouched atomic.Uint64

	// span is the innermost open trace span of the statement currently
	// executing on this transaction (nil when not tracing); buffer faults
	// and commit-time fsyncs attach to it. The field itself is only
	// re-pointed by the statement's coordinating goroutine (worker forks
	// never call SetTraceSpan), and Span's methods are goroutine-safe, so
	// workers may attribute events through it concurrently.
	span *trace.Span

	// prefetchDepth is the chain-readahead depth for block-list scans on
	// this transaction (0 = off). Atomic because the executor sets it per
	// statement while parallel scan workers may be emitting hints.
	prefetchDepth atomic.Int64

	// prefetchHints counts readahead hints emitted through this
	// transaction, for PROFILE/trace attribution.
	prefetchHints atomic.Uint64
}

// SetTraceSpan installs (or, with nil, clears) the trace span storage-layer
// events of this transaction attach to.
func (tx *Tx) SetTraceSpan(s *trace.Span) { tx.span = s }

// TraceSpan returns the transaction's current trace span (nil when not
// tracing).
func (tx *Tx) TraceSpan() *trace.Span { return tx.span }

// PagesTouched returns the number of page accesses (reads + writes) the
// transaction has performed.
func (tx *Tx) PagesTouched() uint64 { return tx.pagesTouched.Load() }

func (tx *Tx) touch(doc *storage.Doc) {
	if tx.touched == nil {
		tx.touched = make(map[*storage.Doc]bool)
	}
	tx.touched[doc] = true
}

// TouchedDocs returns the documents whose metadata the transaction changed.
func (tx *Tx) TouchedDocs() []*storage.Doc {
	out := make([]*storage.Doc, 0, len(tx.touched))
	for d := range tx.touched {
		out = append(out, d)
	}
	return out
}

// CommitTS returns the commit timestamp (valid after Commit).
func (tx *Tx) CommitTS() uint64 { return tx.cts }

// Begin starts an update transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	m.met.begins.Inc()
	tx := &Tx{m: m, id: m.nextTxn}
	tx.prefetchDepth.Store(m.defaultPrefetchDepth.Load())
	if _, err := m.log.Append(&wal.Record{Type: wal.RecBegin, Txn: tx.id}); err != nil {
		// Log append failures surface at the first write; Begin stays
		// infallible for API simplicity.
		_ = err
	}
	return tx
}

// BeginReadOnly starts a read-only transaction (a "query" in the paper's
// terms): it reads the latest snapshot, never blocks updaters and is never
// blocked (§6.3). A fresh snapshot is taken if commits happened since the
// previous one — "advancing" is just recording the current timestamp.
func (m *Manager) BeginReadOnly() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	m.met.beginsRO.Inc()
	ts := m.commitTS
	if m.snapshots[ts] == 0 {
		// First reader at this timestamp: the system's snapshot advanced.
		m.met.snapAdvances.Inc()
	}
	m.snapshots[ts]++
	m.met.activeSnaps.Set(int64(len(m.snapshots)))
	tx := &Tx{m: m, id: m.nextTxn, readonly: true, snapTS: ts}
	tx.prefetchDepth.Store(m.defaultPrefetchDepth.Load())
	return tx
}

// SetDefaultPrefetchDepth sets the chain-readahead depth new transactions
// start with; statements may still override it per transaction. 0 disables
// readahead by default.
func (m *Manager) SetDefaultPrefetchDepth(d int) {
	m.defaultPrefetchDepth.Store(int64(d))
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// TxnID implements storage.Writer.
func (tx *Tx) TxnID() uint64 { return tx.id }

// ReadOnly reports whether this is a snapshot transaction.
func (tx *Tx) ReadOnly() bool { return tx.readonly }

// SnapshotTS returns the snapshot timestamp of a read-only transaction.
func (tx *Tx) SnapshotTS() uint64 { return tx.snapTS }

// Lock acquires a document lock (S2PL; released at commit/rollback).
// Read-only transactions never lock.
func (tx *Tx) Lock(res string, mode lock.Mode) error {
	if tx.readonly {
		return nil
	}
	return tx.m.locks.Lock(tx.id, res, mode, tx.m.LockTimeout)
}

// ReadPage implements storage.Reader for both transaction kinds.
func (tx *Tx) ReadPage(p sas.XPtr, fn func(page []byte) error) error {
	if tx.done {
		return ErrDone
	}
	if p.IsNil() {
		return errors.New("txn: read of nil pointer")
	}
	tx.pagesTouched.Add(1)
	if tx.readonly {
		id := sas.PageIDOf(p)
		if v, ok := tx.cache.Load(id); ok {
			return fn(v.([]byte))
		}
		tx.span.AddInt("snapshot_reads", 1)
		page := make([]byte, sas.PageSize)
		var err error
		if d := tx.prefetchDepth.Load(); d > 0 {
			// With readahead on, a cold miss reads a sequential window of up
			// to depth adjacent pages in one pread and leaves a residency
			// footprint (depth 0 keeps the footprint-free single-pread path,
			// byte-identical to the engine without readahead).
			err = tx.m.buf.ReadSnapshotInstall(id, tx.snapTS, page, int(d))
		} else {
			err = tx.m.buf.ReadSnapshot(id, tx.snapTS, page)
		}
		if err != nil {
			return err
		}
		if v, loaded := tx.cache.LoadOrStore(id, page); loaded {
			page = v.([]byte)
		}
		return fn(page)
	}
	f, faulted, err := tx.m.buf.DerefTrack(p)
	if faulted {
		tx.span.AddInt("faults", 1)
	}
	if err != nil {
		return err
	}
	defer tx.m.buf.Unpin(f)
	return fn(f.Data())
}

// SetPrefetchDepth sets the chain-readahead depth for scans on this
// transaction; 0 disables hint emission entirely (byte-identical to the
// pre-readahead read path).
func (tx *Tx) SetPrefetchDepth(d int) { tx.prefetchDepth.Store(int64(d)) }

// PrefetchDepth returns the transaction's chain-readahead depth.
func (tx *Tx) PrefetchDepth() int { return int(tx.prefetchDepth.Load()) }

// PrefetchHints returns the number of readahead hints emitted so far.
func (tx *Tx) PrefetchHints() uint64 { return tx.prefetchHints.Load() }

// PrefetchFrom implements storage.Prefetcher: the block-list iterators call
// it when a scan crosses a block boundary, and the buffer manager's workers
// follow the nextBlock chain up to the configured depth. Fire-and-forget —
// never blocks, never errors. Prefetched frames serve updaters through
// Deref and snapshot readers through ReadSnapshot's resident-frame path
// alike.
func (tx *Tx) PrefetchFrom(block sas.XPtr) {
	d := int(tx.prefetchDepth.Load())
	if d <= 0 || tx.done {
		return
	}
	tx.prefetchHints.Add(1)
	tx.span.AddInt("prefetch_hints", 1)
	tx.m.buf.PrefetchChain(sas.PageIDOf(block), d, storage.PageChainNext)
}

// WriteAt implements storage.Writer: the bytes are applied to the page
// through the versioned buffer manager and logged as a physical redo
// record.
func (tx *Tx) WriteAt(p sas.XPtr, data []byte) error {
	if tx.done {
		return ErrDone
	}
	if tx.readonly {
		return ErrReadOnly
	}
	id := sas.PageIDOf(p)
	off := p.PageOffset()
	if int(off)+len(data) > sas.PageSize {
		return fmt.Errorf("txn: write of %d bytes at %v crosses page end", len(data), p)
	}
	if _, err := tx.m.log.Append(&wal.Record{
		Type: wal.RecPageWrite, Txn: tx.id, Page: id, Off: off, Data: data,
	}); err != nil {
		return err
	}
	f, err := tx.m.buf.PinWrite(id, tx.id)
	if err != nil {
		return err
	}
	copy(f.Data()[off:], data)
	tx.m.buf.Unpin(f)
	tx.pagesTouched.Add(1)
	return nil
}

// AllocPage implements storage.Writer.
func (tx *Tx) AllocPage() (sas.PageID, error) {
	if tx.readonly {
		return sas.PageID{}, ErrReadOnly
	}
	id := tx.m.pf.Alloc()
	if _, err := tx.m.log.Append(&wal.Record{Type: wal.RecAllocPage, Txn: tx.id, Page: id}); err != nil {
		return sas.PageID{}, err
	}
	tx.allocs = append(tx.allocs, id)
	return id, nil
}

// AllocPageAt mirrors a specific page allocation: the exact page id is
// claimed from the allocator (removed from the free list, or the
// next-allocation cursor advanced past it) and logged. Replication apply
// uses it so replicas materialize the primary's pages at identical ids —
// physical log shipping only works when the address spaces match.
func (tx *Tx) AllocPageAt(id sas.PageID) error {
	if tx.readonly {
		return ErrReadOnly
	}
	if _, err := tx.m.log.Append(&wal.Record{Type: wal.RecAllocPage, Txn: tx.id, Page: id}); err != nil {
		return err
	}
	tx.m.pf.RedoAlloc(id)
	tx.allocs = append(tx.allocs, id)
	return nil
}

// FreePage implements storage.Writer: the page returns to the allocator at
// commit (so an abort keeps it), and old snapshots keep reading its prior
// content through the version store even after reuse.
func (tx *Tx) FreePage(id sas.PageID) error {
	if tx.readonly {
		return ErrReadOnly
	}
	if _, err := tx.m.log.Append(&wal.Record{Type: wal.RecFreePage, Txn: tx.id, Page: id}); err != nil {
		return err
	}
	tx.frees = append(tx.frees, id)
	return nil
}

// NoteSchemaNode implements storage.Writer.
func (tx *Tx) NoteSchemaNode(doc *storage.Doc, parent, node *schema.Node) {
	tx.touch(doc)
	tx.m.log.Append(&wal.Record{
		Type: wal.RecAddSchemaNode, Txn: tx.id, DocID: doc.ID,
		ParentID: parent.ID, NodeID: node.ID, Kind: byte(node.Kind), Name: node.Name,
	})
}

// NoteSchemaBlocks implements storage.Writer.
func (tx *Tx) NoteSchemaBlocks(doc *storage.Doc, node *schema.Node) {
	tx.touch(doc)
	tx.m.log.Append(&wal.Record{
		Type: wal.RecSchemaBlocks, Txn: tx.id, DocID: doc.ID, NodeID: node.ID,
		Ptrs: [5]sas.XPtr{node.FirstBlock, node.LastBlock},
	})
}

// NoteDocMeta implements storage.Writer.
func (tx *Tx) NoteDocMeta(doc *storage.Doc) {
	tx.touch(doc)
	tx.m.log.Append(&wal.Record{
		Type: wal.RecDocMeta, Txn: tx.id, DocID: doc.ID,
		Ptrs: [5]sas.XPtr{doc.RootHandle, doc.IndirFirst, doc.IndirLast, doc.TextFirst, doc.TextLast},
	})
}

// TouchDoc implements storage.Writer.
func (tx *Tx) TouchDoc(doc *storage.Doc) { tx.touch(doc) }

// LogRecord appends an engine-level logical record (document/index DDL)
// under this transaction.
func (tx *Tx) LogRecord(r *wal.Record) error {
	if tx.readonly {
		return ErrReadOnly
	}
	r.Txn = tx.id
	_, err := tx.m.log.Append(r)
	return err
}

// Defer implements storage.Writer.
func (tx *Tx) Defer(undo func()) { tx.undo = append(tx.undo, undo) }

// Commit makes the transaction durable: the commit record is forced to the
// log, the transaction's page versions become the last committed ones, and
// deferred page frees are applied.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrDone
	}
	tx.done = true
	m := tx.m
	if tx.readonly {
		m.releaseSnapshot(tx.snapTS)
		return nil
	}
	m.mu.Lock()
	m.commitTS++
	cts := m.commitTS
	m.mu.Unlock()
	tx.cts = cts
	if _, err := m.log.Append(&wal.Record{Type: wal.RecCommit, Txn: tx.id, CommitTS: cts}); err != nil {
		return err
	}
	// The commit-forcing fsync is attributed to the statement's trace when
	// one is still open (the session finishes its trace after commit).
	if err := m.log.FlushSpan(tx.span); err != nil {
		return err
	}
	m.buf.CommitTxn(tx.id, cts)
	for _, id := range tx.frees {
		m.pf.Free(id)
	}
	m.locks.ReleaseAll(tx.id)
	m.met.commits.Inc()
	return nil
}

// Rollback discards the transaction: page pre-images are restored, deferred
// in-memory undos run in reverse, and allocated pages return to the free
// list.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	m := tx.m
	if tx.readonly {
		m.releaseSnapshot(tx.snapTS)
		return nil
	}
	if err := m.buf.RollbackTxn(tx.id); err != nil {
		return err
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i]()
	}
	for _, id := range tx.allocs {
		m.pf.Free(id)
	}
	m.log.Append(&wal.Record{Type: wal.RecAbort, Txn: tx.id})
	m.locks.ReleaseAll(tx.id)
	m.met.aborts.Inc()
	return nil
}

func (m *Manager) releaseSnapshot(ts uint64) {
	m.mu.Lock()
	m.snapshots[ts]--
	if m.snapshots[ts] <= 0 {
		delete(m.snapshots, ts)
	}
	m.met.activeSnaps.Set(int64(len(m.snapshots)))
	m.mu.Unlock()
	// Purging old versions is piggybacked on snapshot release; the check is
	// cheap (§6.1).
	m.buf.PurgeAllVersions()
}

// Checkpoint fixates the current committed state as the persistent snapshot
// (§6.4): flush the log, flush all committed pages, append and force a
// checkpoint record, publish the new master (with the catalog generation the
// engine just wrote), and reset the snapshot area to the new era. The engine
// must quiesce update transactions first.
func (m *Manager) Checkpoint(snap *pagefile.SnapArea, metaGen uint64) (uint64, error) {
	if err := m.log.Flush(); err != nil {
		return 0, err
	}
	if err := m.buf.FlushCommitted(); err != nil {
		return 0, err
	}
	lsn, err := m.log.Append(&wal.Record{Type: wal.RecCheckpoint})
	if err != nil {
		return 0, err
	}
	if err := m.log.Flush(); err != nil {
		return 0, err
	}
	master := pagefile.Master{
		NextAlloc:     m.pf.NextAlloc(),
		CheckpointLSN: lsn,
		CommitTS:      m.CommitTS(),
		MetaGen:       metaGen,
	}
	if err := m.pf.WriteMaster(master); err != nil {
		return 0, err
	}
	if err := snap.Reset(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}
