package txn

import (
	"path/filepath"
	"testing"

	"sedna/internal/buffer"
	"sedna/internal/lock"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

type env struct {
	m    *Manager
	pf   *pagefile.File
	snap *pagefile.SnapArea
	log  *wal.Log
	buf  *buffer.Manager
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dir := t.TempDir()
	pf, err := pagefile.Open(filepath.Join(dir, "data.sdb"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := pagefile.OpenSnapArea(filepath.Join(dir, "data.snap"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "data.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := buffer.New(pf, snap, 256)
	m := NewManager(buf, log, pf, lock.New())
	t.Cleanup(func() { log.Close(); snap.Close(); pf.Close() })
	return &env{m: m, pf: pf, snap: snap, log: log, buf: buf}
}

// Storage-layer interface compliance.
var _ storage.Writer = (*Tx)(nil)
var _ storage.Reader = (*Tx)(nil)

func TestCommitMakesWritesVisible(t *testing.T) {
	e := newEnv(t)
	tx := e.m.Begin()
	id, err := tx.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteAt(id.Ptr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.m.Begin()
	defer tx2.Rollback()
	err = tx2.ReadPage(id.Ptr(), func(page []byte) error {
		if string(page[:5]) != "hello" {
			t.Fatalf("page = %q", page[:5])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRollbackDiscardsWritesAndRunsUndo(t *testing.T) {
	e := newEnv(t)
	setup := e.m.Begin()
	id, _ := setup.AllocPage()
	setup.WriteAt(id.Ptr(), []byte("AAAA"))
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := e.m.Begin()
	tx.WriteAt(id.Ptr(), []byte("BBBB"))
	undone := false
	tx.Defer(func() { undone = true })
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if !undone {
		t.Fatal("undo did not run")
	}

	tx2 := e.m.BeginReadOnly()
	defer tx2.Rollback()
	tx2.ReadPage(id.Ptr(), func(page []byte) error {
		if string(page[:4]) != "AAAA" {
			t.Fatalf("page = %q after rollback", page[:4])
		}
		return nil
	})
}

func TestReadOnlySnapshotIsolation(t *testing.T) {
	e := newEnv(t)
	w1 := e.m.Begin()
	id, _ := w1.AllocPage()
	w1.WriteAt(id.Ptr(), []byte{1})
	w1.Commit()

	r := e.m.BeginReadOnly()
	defer r.Rollback()

	w2 := e.m.Begin()
	w2.WriteAt(id.Ptr(), []byte{2})
	w2.Commit()

	// Reader still sees version 1; a new reader sees 2.
	r.ReadPage(id.Ptr(), func(page []byte) error {
		if page[0] != 1 {
			t.Fatalf("old snapshot sees %d", page[0])
		}
		return nil
	})
	r2 := e.m.BeginReadOnly()
	defer r2.Rollback()
	r2.ReadPage(id.Ptr(), func(page []byte) error {
		if page[0] != 2 {
			t.Fatalf("new snapshot sees %d", page[0])
		}
		return nil
	})
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	e := newEnv(t)
	r := e.m.BeginReadOnly()
	defer r.Rollback()
	if err := r.WriteAt(sas.MakePtr(1, sas.PageSize), []byte{1}); err != ErrReadOnly {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.AllocPage(); err != ErrReadOnly {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotReleasePurgesVersions(t *testing.T) {
	e := newEnv(t)
	w := e.m.Begin()
	id, _ := w.AllocPage()
	w.WriteAt(id.Ptr(), []byte{1})
	w.Commit()

	r := e.m.BeginReadOnly()
	w2 := e.m.Begin()
	w2.WriteAt(id.Ptr(), []byte{2})
	w2.Commit()
	if e.m.SnapshotCount() != 1 {
		t.Fatalf("snapshots = %d", e.m.SnapshotCount())
	}
	r.Rollback()
	if e.m.SnapshotCount() != 0 {
		t.Fatalf("snapshots = %d after release", e.m.SnapshotCount())
	}
	if n := e.buf.VersionCount(); n != 0 {
		t.Fatalf("versions retained after last snapshot released: %d", n)
	}
}

func TestFreedPageRecycledOnlyAfterCommit(t *testing.T) {
	e := newEnv(t)
	w := e.m.Begin()
	id, _ := w.AllocPage()
	w.WriteAt(id.Ptr(), []byte{9})
	w.Commit()

	w2 := e.m.Begin()
	if err := w2.FreePage(id); err != nil {
		t.Fatal(err)
	}
	// Not yet recycled: a concurrent alloc must not get it.
	w3 := e.m.Begin()
	other, _ := w3.AllocPage()
	if other == id {
		t.Fatal("page recycled before freeing txn committed")
	}
	w3.Rollback()
	w2.Commit()
	w4 := e.m.Begin()
	defer w4.Rollback()
	got, _ := w4.AllocPage()
	if got != id {
		t.Fatalf("freed page not recycled: got %v want %v", got, id)
	}
}

func TestRollbackReturnsAllocatedPages(t *testing.T) {
	e := newEnv(t)
	w := e.m.Begin()
	id, _ := w.AllocPage()
	w.Rollback()
	w2 := e.m.Begin()
	defer w2.Rollback()
	got, _ := w2.AllocPage()
	if got != id {
		t.Fatalf("aborted alloc not recycled: got %v want %v", got, id)
	}
}

func TestDocumentOperationsThroughTx(t *testing.T) {
	// End-to-end: storage operations through a real transaction.
	e := newEnv(t)
	tx := e.m.Begin()
	doc, err := storage.CreateDoc(tx, 1, "d.xml")
	if err != nil {
		t.Fatal(err)
	}
	el, err := storage.InsertNode(tx, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "root", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := storage.InsertNode(tx, doc, el, sas.NilPtr, sas.NilPtr, schema.KindElement, "item", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := storage.VerifyDoc(tx, doc); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Verify through a read-only snapshot too.
	r := e.m.BeginReadOnly()
	defer r.Rollback()
	if err := storage.VerifyDoc(r, doc); err != nil {
		t.Fatalf("snapshot verify: %v", err)
	}
}

func TestAbortedDocumentInvisible(t *testing.T) {
	e := newEnv(t)
	tx := e.m.Begin()
	doc, err := storage.CreateDoc(tx, 1, "d.xml")
	if err != nil {
		t.Fatal(err)
	}
	el, err := storage.InsertNode(tx, doc, doc.RootHandle, sas.NilPtr, sas.NilPtr, schema.KindElement, "root", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = el
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The schema undo removed the element's schema node.
	if doc.Schema.Root.Child(schema.KindElement, "root") != nil {
		t.Fatal("schema growth survived rollback")
	}
}

func TestCheckpointPublishesMasterAndResetsSnapArea(t *testing.T) {
	e := newEnv(t)
	tx := e.m.Begin()
	id, _ := tx.AllocPage()
	tx.WriteAt(id.Ptr(), []byte{7})
	tx.Commit()

	lsn, err := e.m.Checkpoint(e.snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	master := e.pf.Master()
	if master.CheckpointLSN != lsn || master.MetaGen != 3 {
		t.Fatalf("master = %+v, lsn %d", master, lsn)
	}
	if master.CommitTS != e.m.CommitTS() {
		t.Fatal("commitTS not recorded")
	}
	if e.snap.Era() != lsn {
		t.Fatalf("snap era = %d", e.snap.Era())
	}
	// Committed data is on disk.
	buf := make([]byte, sas.PageSize)
	if err := e.pf.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("committed page not flushed by checkpoint")
	}
}

func TestCommitTimestampsMonotonic(t *testing.T) {
	e := newEnv(t)
	var last uint64
	for i := 0; i < 10; i++ {
		tx := e.m.Begin()
		id, _ := tx.AllocPage()
		tx.WriteAt(id.Ptr(), []byte{byte(i)})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if ts := e.m.CommitTS(); ts <= last {
			t.Fatalf("commitTS not monotonic: %d then %d", last, ts)
		} else {
			last = ts
		}
	}
}

func TestUseAfterFinish(t *testing.T) {
	e := newEnv(t)
	tx := e.m.Begin()
	tx.Commit()
	if err := tx.WriteAt(sas.MakePtr(1, sas.PageSize), []byte{1}); err != ErrDone {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); err != ErrDone {
		t.Fatalf("double commit err = %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after commit should be a no-op, got %v", err)
	}
}
