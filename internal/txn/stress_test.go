package txn

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"sedna/internal/buffer"
	"sedna/internal/lock"
	"sedna/internal/metrics"
	"sedna/internal/pagefile"
	"sedna/internal/sas"
	"sedna/internal/wal"
)

// newDurableEnv builds a manager whose WAL really fsyncs, so concurrent
// commits exercise the group-commit leader/follower protocol end to end.
func newDurableEnv(t *testing.T) (*env, *metrics.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	pf, err := pagefile.Open(filepath.Join(dir, "data.sdb"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := pagefile.OpenSnapArea(filepath.Join(dir, "data.snap"), pagefile.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "data.wal"), wal.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	buf := buffer.NewWithMetrics(pf, snap, 256, reg)
	m := NewManagerWithMetrics(buf, log, pf, lock.New(), reg)
	t.Cleanup(func() { log.Close(); snap.Close(); pf.Close() })
	return &env{m: m, pf: pf, snap: snap, log: log, buf: buf}, reg
}

// TestConcurrentCommitsAndSnapshotReaders runs writers (one page each, as
// document 2PL guarantees above this layer) committing through the durable
// group-commit WAL, racing snapshot readers that check the §6.3 invariant:
// a read-only transaction sees one frozen, untorn state of a page no matter
// how often it re-reads it.
func TestConcurrentCommitsAndSnapshotReaders(t *testing.T) {
	e, reg := newDurableEnv(t)

	const writers = 2
	const readers = 2
	const commits = 40

	setup := e.m.Begin()
	pages := make([]sas.PageID, writers)
	for i := range pages {
		id, err := setup.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = id
		if err := setup.WriteAt(id.Ptr(), bytes.Repeat([]byte{1}, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				tx := e.m.Begin()
				v := byte(2 + i%250)
				if err := tx.WriteAt(pages[w].Ptr(), bytes.Repeat([]byte{v}, 8)); err != nil {
					errc <- err
					tx.Rollback()
					return
				}
				if i%9 == 4 {
					if err := tx.Rollback(); err != nil {
						errc <- err
						return
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				rtx := e.m.BeginReadOnly()
				id := pages[(r+i)%len(pages)]
				var first []byte
				for pass := 0; pass < 2; pass++ {
					err := rtx.ReadPage(id.Ptr(), func(page []byte) error {
						head := page[:8]
						for _, b := range head[1:] {
							if b != head[0] {
								return fmt.Errorf("torn snapshot read: % x", head)
							}
						}
						if pass == 0 {
							first = append([]byte(nil), head...)
						} else if !bytes.Equal(first, head) {
							return fmt.Errorf("snapshot moved within one txn: % x -> % x", first, head)
						}
						return nil
					})
					if err != nil {
						errc <- err
						rtx.Rollback()
						return
					}
				}
				rtx.Rollback()
			}
		}(r)
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Rolled-back transactions may leave unflushed abort records; one more
	// flush must make the whole log durable, and commits must have run
	// through group-commit rounds.
	if err := e.log.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.log.DurableLSN() != e.log.NextLSN() {
		t.Fatal("WAL end not durable after flush")
	}
	snap := reg.Snapshot()
	if snap.Counters["wal.group_commits"] == 0 {
		t.Fatal("no group-commit rounds recorded")
	}
	if snap.Counters["wal.group_commit_txns"] < snap.Counters["wal.group_commits"] {
		t.Fatal("group accounting: fewer flushers than rounds")
	}
}
