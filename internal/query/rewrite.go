package query

// The optimizing rewriter (§5.1): rule-based transformations over the
// operation tree, applied in four passes.
//
//  1. Combining the abbreviated descendant-or-self step with the next step
//     when its predicates are position-independent (§5.1.2).
//  2. Removing unnecessary DDO operations by inferring, for every
//     operation, whether its result is already in distinct document order,
//     has at most one item, or consists of nodes on a common tree level
//     (§5.1.1).
//  3. Marking invariant nested for-clause binding sequences lazy (§5.1.3).
//  4. Extracting structural location-path fragments for schema-level
//     execution (§5.1.4).
//
// A fifth pass marks element constructors whose content is only serialized
// as virtual (§5.2.1).

// Rewrite applies all passes to a statement in place and records which
// rules fired in st.Rewrites (EXPLAIN renders them).
func Rewrite(st *Statement) {
	rw := &rewriter{nextCache: 1}
	exprs := st.exprs()
	for _, fd := range st.Prolog.Funcs {
		fd.Body = rw.rewriteExpr(fd.Body)
	}
	for i, e := range exprs {
		if e != nil {
			*exprs[i] = rw.rewriteExpr(*exprs[i])
			_ = i
		}
	}
	// Virtual-constructor marking: only result-position constructors.
	if st.Query != nil {
		markVirtual(st.Query, true)
	}
	if st.Update != nil && st.Update.Source != nil {
		// Inserted content is materialized into the database anyway; the
		// copy is unavoidable, so no virtual marking.
		markVirtual(st.Update.Source, false)
	}
	if st.Query != nil {
		walkExpr(st.Query, func(x Expr) {
			if c, ok := x.(*ElementCtor); ok && c.Virtual {
				rw.note("virtual-ctor: <" + c.Name + ">")
			}
		})
	}
	st.Rewrites = rw.notes
}

// exprs returns pointers to every top-level expression of the statement.
func (st *Statement) exprs() []*Expr {
	var out []*Expr
	for _, v := range st.Prolog.Vars {
		out = append(out, &v.Seq)
	}
	switch {
	case st.Query != nil:
		out = append(out, &st.Query)
	case st.Update != nil:
		out = append(out, &st.Update.Target)
		if st.Update.Source != nil {
			out = append(out, &st.Update.Source)
		}
	case st.DDL != nil:
		if st.DDL.OnPath != nil {
			out = append(out, &st.DDL.OnPath)
		}
	}
	return out
}

type rewriter struct {
	nextCache int
	// notes records fired rules for EXPLAIN.
	notes []string
	// iterVars tracks enclosing for-iteration variables for the laziness
	// pass.
	iterVars []string
	// singleVars tracks variables known to be bound to single items (for
	// and quantifier bindings), for the DDO property inference.
	singleVars map[string]int
}

func (rw *rewriter) note(s string) { rw.notes = append(rw.notes, s) }

func (rw *rewriter) pushSingle(name string) {
	if rw.singleVars == nil {
		rw.singleVars = make(map[string]int)
	}
	rw.singleVars[name]++
}

func (rw *rewriter) popSingle(name string) {
	rw.singleVars[name]--
	if rw.singleVars[name] <= 0 {
		delete(rw.singleVars, name)
	}
}

// rewriteExpr applies passes 1–4 bottom-up.
func (rw *rewriter) rewriteExpr(x Expr) Expr {
	switch n := x.(type) {
	case *Step:
		if n.Input != nil {
			n.Input = rw.rewriteExpr(n.Input)
		}
		for i := range n.Preds {
			n.Preds[i] = rw.rewriteExpr(n.Preds[i])
		}
		// Pass 1: //-combining. descendant-or-self::node()/child::X →
		// descendant::X when X's predicates are position-independent
		// (//para[1] ≠ /descendant::para[1], the paper's counter-example).
		if in, ok := n.Input.(*Step); ok &&
			in.Axis == AxisDescendantOrSelf && in.Test.Kind == TestNode && len(in.Preds) == 0 &&
			n.Axis == AxisChild && predsPositionFree(n.Preds) {
			n.Axis = AxisDescendant
			n.Input = in.Input
			rw.note("combine-descendant: descendant-or-self::node()/child::" +
				n.Test.Text() + " → descendant::" + n.Test.Text())
		}
		// Pass 2: DDO elimination.
		if n.NeedDDO {
			p := rw.props(n, true)
			if (p.ordered && p.distinct) || p.single {
				n.NeedDDO = false
				rw.note("ddo-removed: " + stepText(n))
			}
		}
		// Pass 4: structural extraction (the last step of a structural
		// chain evaluates over the schema).
		if doc, _ := structuralChain(n); doc != nil {
			n.Structural = true
			n.NeedDDO = false
			rw.note("structural-path: " + stepText(n) + " over doc(\"" + doc.Name + "\")")
		}
		return n

	case *Filter:
		n.Input = rw.rewriteExpr(n.Input)
		for i := range n.Preds {
			n.Preds[i] = rw.rewriteExpr(n.Preds[i])
		}
		return n

	case *Sequence:
		for i := range n.Items {
			n.Items[i] = rw.rewriteExpr(n.Items[i])
		}
		return n

	case *Binary:
		n.Left = rw.rewriteExpr(n.Left)
		n.Right = rw.rewriteExpr(n.Right)
		return n

	case *Unary:
		n.X = rw.rewriteExpr(n.X)
		return n

	case *IfExpr:
		n.Cond = rw.rewriteExpr(n.Cond)
		n.Then = rw.rewriteExpr(n.Then)
		n.Else = rw.rewriteExpr(n.Else)
		return n

	case *Quantified:
		n.Seq = rw.rewriteExpr(n.Seq)
		rw.pushSingle(n.Var)
		n.Pred = rw.rewriteExpr(n.Pred)
		rw.popSingle(n.Var)
		return n

	case *FLWOR:
		for _, cl := range n.Clauses {
			cl.Seq = rw.rewriteExpr(cl.Seq)
			// Pass 3: a for-clause binding sequence nested under an outer
			// for-iteration that references no variables at all is
			// invariant: evaluate once, reuse across iterations.
			if !cl.Let && len(rw.iterVars) > 0 && exprIsInvariant(cl.Seq) {
				cl.Lazy = true
				cl.CacheID = rw.nextCache
				rw.nextCache++
				rw.note("lazy-for: $" + cl.Var)
			}
			if !cl.Let {
				rw.iterVars = append(rw.iterVars, cl.Var)
				rw.pushSingle(cl.Var)
				if cl.PosVar != "" {
					rw.pushSingle(cl.PosVar)
				}
			}
		}
		if n.Where != nil {
			n.Where = rw.rewriteExpr(n.Where)
		}
		for i := range n.OrderBy {
			n.OrderBy[i].Key = rw.rewriteExpr(n.OrderBy[i].Key)
		}
		n.Return = rw.rewriteExpr(n.Return)
		// Pop this FLWOR's iteration variables.
		for _, cl := range n.Clauses {
			if !cl.Let {
				rw.iterVars = rw.iterVars[:len(rw.iterVars)-1]
				rw.popSingle(cl.Var)
				if cl.PosVar != "" {
					rw.popSingle(cl.PosVar)
				}
			}
		}
		return n

	case *FuncCall:
		for i := range n.Args {
			n.Args[i] = rw.rewriteExpr(n.Args[i])
		}
		return n

	case *ElementCtor:
		for _, a := range n.Attrs {
			for i := range a.Value {
				a.Value[i] = rw.rewriteExpr(a.Value[i])
			}
		}
		for i := range n.Content {
			n.Content[i] = rw.rewriteExpr(n.Content[i])
		}
		return n

	case *TextCtor:
		n.Content = rw.rewriteExpr(n.Content)
		return n

	case *CommentCtor:
		n.Content = rw.rewriteExpr(n.Content)
		return n

	default:
		return x
	}
}

// exprIsInvariant reports whether an expression references no variables and
// no context item, so its value cannot change across iterations.
func exprIsInvariant(x Expr) bool {
	fv := make(map[string]bool)
	freeVars(x, map[string]bool{}, fv)
	if len(fv) > 0 {
		return false
	}
	return !usesContext(x)
}

func usesContext(x Expr) bool {
	found := false
	walkExpr(x, func(e Expr) {
		switch e.(type) {
		case *ContextItem, *Root:
			found = true
		case *Step:
			if e.(*Step).Input == nil {
				found = true
			}
		case *FuncCall:
			n := e.(*FuncCall).Name
			if n == "position" || n == "last" {
				found = true
			}
			if fc := e.(*FuncCall); len(fc.Args) == 0 {
				switch n {
				case "string", "number", "name", "local-name", "string-length",
					"normalize-space", "root", "text", "node-kind":
					found = true // defaults to the context item
				}
			}
		}
	})
	return found
}

// predsPositionFree reports whether predicates depend neither explicitly
// nor implicitly on context position or size — the §5.1.2 safety condition
// for combining // with the next step.
func predsPositionFree(preds []Expr) bool {
	for _, p := range preds {
		// A predicate whose value may be numeric acts positionally.
		if mayBeNumeric(p) {
			return false
		}
		posDep := false
		walkExpr(p, func(e Expr) {
			if fc, ok := e.(*FuncCall); ok && (fc.Name == "position" || fc.Name == "last" ||
				fc.Name == "fn:position" || fc.Name == "fn:last") {
				posDep = true
			}
		})
		if posDep {
			return false
		}
	}
	return true
}

// mayBeNumeric conservatively reports whether an expression can evaluate to
// a numeric value (making a predicate positional).
func mayBeNumeric(x Expr) bool {
	switch n := x.(type) {
	case *Literal:
		return !n.IsString
	case *Binary:
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpIDiv, OpMod, OpTo:
			return true
		default:
			return false // comparisons and logic yield booleans
		}
	case *Unary:
		return true
	case *FuncCall:
		switch n.Name {
		case "not", "exists", "empty", "boolean", "contains", "starts-with",
			"ends-with", "true", "false":
			return false
		case "string", "concat", "string-join", "normalize-space", "substring",
			"upper-case", "lower-case", "name", "local-name":
			return false
		default:
			return true // count(), sum(), user functions, …
		}
	case *Step, *Filter, *DocCall, *Root, *ContextItem, *VarRef:
		// Node sequences and variables: variables may hold numbers, so be
		// conservative for VarRef only.
		_, isVar := x.(*VarRef)
		return isVar
	case *Quantified:
		return false
	case *IfExpr:
		return mayBeNumeric(n.Then) || mayBeNumeric(n.Else)
	default:
		return true
	}
}

// walkExpr visits every node of an expression tree.
func walkExpr(x Expr, visit func(Expr)) {
	if x == nil {
		return
	}
	visit(x)
	switch n := x.(type) {
	case *Step:
		walkExpr(n.Input, visit)
		for _, p := range n.Preds {
			walkExpr(p, visit)
		}
	case *Filter:
		walkExpr(n.Input, visit)
		for _, p := range n.Preds {
			walkExpr(p, visit)
		}
	case *Sequence:
		for _, it := range n.Items {
			walkExpr(it, visit)
		}
	case *Binary:
		walkExpr(n.Left, visit)
		walkExpr(n.Right, visit)
	case *Unary:
		walkExpr(n.X, visit)
	case *IfExpr:
		walkExpr(n.Cond, visit)
		walkExpr(n.Then, visit)
		walkExpr(n.Else, visit)
	case *Quantified:
		walkExpr(n.Seq, visit)
		walkExpr(n.Pred, visit)
	case *FLWOR:
		for _, cl := range n.Clauses {
			walkExpr(cl.Seq, visit)
		}
		walkExpr(n.Where, visit)
		for _, o := range n.OrderBy {
			walkExpr(o.Key, visit)
		}
		walkExpr(n.Return, visit)
	case *FuncCall:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *ElementCtor:
		for _, a := range n.Attrs {
			for _, v := range a.Value {
				walkExpr(v, visit)
			}
		}
		for _, c := range n.Content {
			walkExpr(c, visit)
		}
	case *TextCtor:
		walkExpr(n.Content, visit)
	case *CommentCtor:
		walkExpr(n.Content, visit)
	}
}

// seqProps are the properties §5.1.1 infers for every operation's result.
type seqProps struct {
	ordered   bool // already in document order
	distinct  bool // no duplicate nodes
	single    bool // at most one item
	sameLevel bool // all nodes on a common level of one XML tree
}

// props infers the result properties of an expression. For a Step,
// beforeDDO selects the properties of the raw axis concatenation (used to
// decide whether the DDO is redundant).
func (rw *rewriter) props(x Expr, beforeDDO bool) seqProps {
	switch n := x.(type) {
	case *DocCall, *Root, *ContextItem:
		return seqProps{ordered: true, distinct: true, single: true, sameLevel: true}
	case *VarRef:
		if rw.singleVars[n.Name] > 0 {
			return seqProps{ordered: true, distinct: true, single: true, sameLevel: true}
		}
		return seqProps{}
	case *Literal:
		return seqProps{ordered: true, distinct: true, single: true}
	case *Filter:
		return rw.props(n.Input, false)
	case *Step:
		var in seqProps
		if n.Input == nil {
			in = seqProps{ordered: true, distinct: true, single: true, sameLevel: true}
		} else {
			in = rw.props(n.Input, false)
		}
		var out seqProps
		switch n.Axis {
		case AxisSelf:
			out = in
		case AxisChild, AxisAttribute:
			if in.ordered && in.distinct && in.sameLevel {
				out = seqProps{ordered: true, distinct: true, sameLevel: true}
			}
			if in.single {
				out.ordered, out.distinct, out.sameLevel = true, true, true
			}
		case AxisDescendant, AxisDescendantOrSelf:
			if in.ordered && in.distinct && in.sameLevel {
				out = seqProps{ordered: true, distinct: true}
			}
			if in.single {
				out.ordered, out.distinct = true, true
			}
		case AxisParent:
			if in.single {
				out = seqProps{ordered: true, distinct: true, single: true, sameLevel: true}
			}
		case AxisFollowingSibling, AxisPrecedingSibling:
			if in.single {
				out = seqProps{ordered: true, distinct: true, sameLevel: true}
			}
		case AxisAncestor, AxisAncestorOrSelf:
			if in.single {
				out = seqProps{ordered: true, distinct: true}
			}
		}
		if !beforeDDO && n.NeedDDO {
			out.ordered, out.distinct = true, true
		}
		return out
	case *Sequence:
		if len(n.Items) == 1 {
			return rw.props(n.Items[0], false)
		}
		return seqProps{}
	case *ElementCtor, *TextCtor, *CommentCtor:
		return seqProps{ordered: true, distinct: true, single: true, sameLevel: true}
	default:
		return seqProps{}
	}
}

// markVirtual implements the §5.2.1 analysis: constructors whose results
// only flow to serialization positions keep references instead of deep
// copies. safe propagates "this expression's value is only serialized".
func markVirtual(x Expr, safe bool) {
	switch n := x.(type) {
	case *ElementCtor:
		n.Virtual = safe
		for _, a := range n.Attrs {
			for _, v := range a.Value {
				markVirtual(v, false) // attribute values are atomized anyway
			}
		}
		for _, c := range n.Content {
			// Content of a serialized constructor is itself only
			// serialized.
			markVirtual(c, safe)
		}
	case *TextCtor:
		markVirtual(n.Content, false)
	case *CommentCtor:
		markVirtual(n.Content, false)
	case *Sequence:
		for _, it := range n.Items {
			markVirtual(it, safe)
		}
	case *IfExpr:
		markVirtual(n.Cond, false)
		markVirtual(n.Then, safe)
		markVirtual(n.Else, safe)
	case *FLWOR:
		for _, cl := range n.Clauses {
			markVirtual(cl.Seq, false)
		}
		markVirtual(n.Where, false)
		for _, o := range n.OrderBy {
			markVirtual(o.Key, false)
		}
		markVirtual(n.Return, safe)
	case *Step:
		markVirtual(n.Input, false)
		for _, p := range n.Preds {
			markVirtual(p, false)
		}
	case *Filter:
		markVirtual(n.Input, false)
		for _, p := range n.Preds {
			markVirtual(p, false)
		}
	case *Binary:
		markVirtual(n.Left, false)
		markVirtual(n.Right, false)
	case *Unary:
		markVirtual(n.X, false)
	case *Quantified:
		markVirtual(n.Seq, false)
		markVirtual(n.Pred, false)
	case *FuncCall:
		for _, a := range n.Args {
			markVirtual(a, false)
		}
	case nil:
	}
}

// clearVirtualFlags forces deep-copy semantics everywhere (the E9
// baseline).
func clearVirtualFlags(st *Statement) {
	clear := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if c, ok := x.(*ElementCtor); ok {
				c.Virtual = false
			}
		})
	}
	for _, fd := range st.Prolog.Funcs {
		clear(fd.Body)
	}
	for _, pv := range st.Prolog.Vars {
		clear(pv.Seq)
	}
	if st.Query != nil {
		clear(st.Query)
	}
	if st.Update != nil {
		clear(st.Update.Target)
		if st.Update.Source != nil {
			clear(st.Update.Source)
		}
	}
}
