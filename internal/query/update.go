package query

import (
	"fmt"
	"sort"

	"sedna/internal/index"
	"sedna/internal/lock"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// execUpdate runs an XUpdate statement: the first (query) part selects the
// target nodes, the second applies the modification (§5.2). Targets are
// referred to by node handles since descriptor addresses can move during
// the update — exactly the split the paper describes.
func execUpdate(u *Update, e *env) (int, error) {
	if e.ctx.Tx.ReadOnly() {
		return 0, fmt.Errorf("query: update statement in a read-only transaction")
	}
	targets, err := eval(u.Target, e, nil)
	if err != nil {
		return 0, err
	}
	if len(targets) == 0 {
		return 0, nil
	}
	// All targets must be stored nodes; lock their documents exclusively.
	nodes := make([]*NodeItem, 0, len(targets))
	for _, it := range targets {
		n, ok := it.(*NodeItem)
		if !ok {
			return 0, fmt.Errorf("query: update target is not a stored node")
		}
		if err := e.ctx.Tx.LockDocument(n.Doc.Name, lock.Exclusive); err != nil {
			return 0, err
		}
		nodes = append(nodes, n)
	}

	switch u.Kind {
	case UpdInsertInto, UpdInsertPreceding, UpdInsertFollowing:
		count := 0
		for _, n := range nodes {
			src, err := eval(u.Source, e, &focus{item: n, pos: 1, size: 1})
			if err != nil {
				return count, err
			}
			if err := insertItems(e, n, u.Kind, src); err != nil {
				return count, err
			}
			count++
		}
		return count, nil

	case UpdDelete:
		return deleteNodes(e, nodes)

	case UpdReplace:
		count := 0
		for _, n := range nodes {
			// Re-resolve: previous iterations may have moved descriptors.
			d, err := storage.DescOf(e.r, n.D.Handle)
			if err != nil {
				return count, err
			}
			cur := &NodeItem{Doc: n.Doc, D: d}
			src, err := eval(u.Source, e.bind(u.Var, []Item{cur}), nil)
			if err != nil {
				return count, err
			}
			if err := insertItems(e, cur, UpdInsertFollowing, src); err != nil {
				return count, err
			}
			if _, err := deleteNodes(e, []*NodeItem{cur}); err != nil {
				return count, err
			}
			count++
		}
		return count, nil

	case UpdRename:
		count := 0
		for _, n := range nodes {
			d, err := storage.DescOf(e.r, n.D.Handle)
			if err != nil {
				return count, err
			}
			cur := &NodeItem{Doc: n.Doc, D: d}
			sn := cur.Doc.Schema.ByID(cur.D.SchemaID)
			if sn.Kind != schema.KindElement && sn.Kind != schema.KindAttribute {
				return count, fmt.Errorf("query: rename of a %v node", sn.Kind)
			}
			// Rename re-clusters the subtree under the new name's schema
			// node: copy with the new name, then delete the original.
			cp, err := deepCopyStored(e, cur)
			if err != nil {
				return count, err
			}
			cp.Name = u.Name
			if err := insertTempAt(e, cur, UpdInsertFollowing, cp); err != nil {
				return count, err
			}
			if _, err := deleteNodes(e, []*NodeItem{cur}); err != nil {
				return count, err
			}
			count++
		}
		return count, nil

	default:
		return 0, fmt.Errorf("query: unknown update kind %d", u.Kind)
	}
}

// insertItems inserts evaluated source items relative to the target node.
func insertItems(e *env, target *NodeItem, kind UpdateKind, src []Item) error {
	for _, it := range src {
		var t *TempNode
		switch x := it.(type) {
		case *TempItem:
			t = x.N
		case *NodeItem:
			cp, err := deepCopyStored(e, x)
			if err != nil {
				return err
			}
			t = cp
		case *Atomic:
			t = e.ctx.newTempNode(schema.KindText, "")
			t.Text = x.StringValue()
		}
		if err := insertTempAt(e, target, kind, t); err != nil {
			return err
		}
		// Subsequent siblings insert after the one just inserted when the
		// position is "following"/"into"; re-resolve the target descriptor
		// in case it moved.
		d, err := storage.DescOf(e.r, target.D.Handle)
		if err != nil {
			return err
		}
		target = &NodeItem{Doc: target.Doc, D: d}
	}
	return nil
}

// insertTempAt materializes a constructed tree into the document relative
// to the target: as last child (into), left sibling (preceding) or right
// sibling (following). All newly stored nodes are index-maintained.
func insertTempAt(e *env, target *NodeItem, kind UpdateKind, t *TempNode) error {
	if err := t.expand(e); err != nil {
		return err
	}
	w, ok := e.r.(storage.Writer)
	if !ok {
		return fmt.Errorf("query: transaction cannot write")
	}
	doc := target.Doc
	var parentH, leftH, rightH sas.XPtr
	switch kind {
	case UpdInsertInto:
		parentH = target.D.Handle
	case UpdInsertPreceding:
		parentH = target.D.Parent
		rightH = target.D.Handle
	case UpdInsertFollowing:
		parentH = target.D.Parent
		leftH = target.D.Handle
	}
	if parentH.IsNil() {
		return fmt.Errorf("query: cannot insert siblings of the document node")
	}
	var inserted []sas.XPtr
	var rec func(parent sas.XPtr, left, right sas.XPtr, t *TempNode) (sas.XPtr, error)
	rec = func(parent, left, right sas.XPtr, t *TempNode) (sas.XPtr, error) {
		if err := t.expand(e); err != nil {
			return sas.NilPtr, err
		}
		h, err := storage.InsertNode(w, doc, parent, left, right, t.Kind, t.Name, []byte(t.Text))
		if err != nil {
			return sas.NilPtr, err
		}
		inserted = append(inserted, h)
		last := sas.NilPtr
		for _, c := range t.Children {
			ch, err := rec(h, last, sas.NilPtr, c)
			if err != nil {
				return sas.NilPtr, err
			}
			last = ch
		}
		return h, nil
	}
	if _, err := rec(parentH, leftH, rightH, t); err != nil {
		return err
	}
	return maintainIndexes(e, doc, inserted, true)
}

// deleteNodes removes targets (subtrees) in reverse document order so
// nested targets are handled before their ancestors. Index entries of every
// removed node are deleted first.
func deleteNodes(e *env, nodes []*NodeItem) (int, error) {
	w, ok := e.r.(storage.Writer)
	if !ok {
		return 0, fmt.Errorf("query: transaction cannot write")
	}
	sort.SliceStable(nodes, func(i, j int) bool { return docOrderLess(nodes[j], nodes[i]) })
	count := 0
	for _, n := range nodes {
		// The node may already be gone as part of an earlier subtree.
		d, err := storage.DescOf(e.r, n.D.Handle)
		if err != nil {
			continue
		}
		// Collect handles in the subtree for index maintenance.
		var handles []sas.XPtr
		var collect func(d storage.Desc) error
		collect = func(d storage.Desc) error {
			handles = append(handles, d.Handle)
			kids, err := storedChildren(e, &NodeItem{Doc: n.Doc, D: d})
			if err != nil {
				return err
			}
			for i := range kids {
				if err := collect(kids[i].D); err != nil {
					return err
				}
			}
			return nil
		}
		if err := collect(d); err != nil {
			return count, err
		}
		if err := maintainIndexes(e, n.Doc, handles, false); err != nil {
			return count, err
		}
		if err := storage.DeleteSubtree(w, n.Doc, n.D.Handle); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// maintainIndexes inserts or deletes index entries for the given node
// handles, matching each node's schema path against every index defined on
// the document.
func maintainIndexes(e *env, doc *storage.Doc, handles []sas.XPtr, insert bool) error {
	metas := e.ctx.Tx.DB().Catalog().IndexesOf(doc.Name)
	if len(metas) == 0 {
		return nil
	}
	w, _ := e.r.(storage.Writer)
	handleSet := make(map[sas.XPtr]struct{}, len(handles))
	for _, h := range handles {
		handleSet[h] = struct{}{}
	}
	for _, meta := range metas {
		onSet, bySteps, err := indexPaths(e, doc, meta)
		if err != nil {
			return err
		}
		// Schema nodes the BY path can land on under some ON node: touching
		// one of these changes the key set of its owning ON ancestor.
		byTargets := make(map[uint32]bool)
		for id := range onSet {
			if sn := doc.Schema.ByID(id); sn != nil {
				for _, bn := range resolveStructural(sn, bySteps) {
					byTargets[bn.ID] = true
				}
			}
		}
		tree := &index.Tree{Root: meta.Root}
		changed := false
		for _, h := range handles {
			d, err := storage.DescOf(e.r, h)
			if err != nil {
				return err
			}
			sn := doc.Schema.ByID(d.SchemaID)
			if sn == nil {
				continue
			}
			switch {
			case onSet[sn.ID]:
				node := &NodeItem{Doc: doc, D: d}
				keys, err := indexKeysOf(e, node, bySteps, meta.KeyType)
				if err != nil {
					return err
				}
				for _, key := range keys {
					if insert {
						err = tree.Insert(w, key, h)
					} else {
						err = tree.Delete(w, key, h)
					}
					if err != nil {
						return err
					}
					changed = true
				}
			case byTargets[sn.ID]:
				// A BY-path value appeared or vanished under an existing ON
				// node: (un)register this one value against the owner. When
				// the owner itself is in the batch, its branch above already
				// covers every value — doing both would double-count.
				owner, err := onAncestor(e, doc, d, onSet)
				if err != nil {
					return err
				}
				if owner.IsNil() {
					continue
				}
				if _, busy := handleSet[owner]; busy {
					continue
				}
				a, err := atomize(e, &NodeItem{Doc: doc, D: d})
				if err != nil {
					return err
				}
				key := index.KeyFor(meta.KeyType, a.StringValue(), a.NumberValue())
				if insert {
					err = tree.Insert(w, key, owner)
				} else {
					err = tree.Delete(w, key, owner)
				}
				if err != nil {
					return err
				}
				changed = true
			}
		}
		if changed && tree.Root != meta.Root {
			meta.Root = tree.Root
			if err := logIndexRoot(e, meta); err != nil {
				return err
			}
		}
	}
	return nil
}

// onAncestor walks a node's parent chain up to the nearest ancestor whose
// schema node belongs to the index's ON set; nil when there is none.
func onAncestor(e *env, doc *storage.Doc, d storage.Desc, onSet map[uint32]bool) (sas.XPtr, error) {
	cur := d.Parent
	for !cur.IsNil() {
		pd, err := storage.DescOf(e.r, cur)
		if err != nil {
			return sas.NilPtr, err
		}
		if onSet[pd.SchemaID] {
			return pd.Handle, nil
		}
		cur = pd.Parent
	}
	return sas.NilPtr, nil
}
