package query

import (
	"strings"

	"sedna/internal/schema"
)

// TempNode is a node constructed during query evaluation (§5.2.1). By
// default element construction deep-copies its content into temp nodes; a
// constructor the rewriter proved "virtual" instead stores references to
// stored subtrees (Ref children), avoiding the copy. Navigation into a
// virtual subtree expands the reference lazily, preserving semantics.
type TempNode struct {
	Kind schema.NodeKind
	Name string
	Text string

	Parent   *TempNode
	Children []*TempNode

	// Ref marks a virtual reference to a stored subtree; such a node has no
	// Children of its own until expanded.
	Ref *NodeItem

	ord uint64 // construction ordinal: document order among temp nodes
}

// newTempNode allocates a constructed node with the next ordinal. The
// counter is atomic for safety, but parallel sections exclude constructors
// (parallelSafeExpr) precisely because worker interleaving would make these
// ordinals — the document order of constructed nodes — nondeterministic.
func (c *ExecCtx) newTempNode(kind schema.NodeKind, name string) *TempNode {
	return &TempNode{Kind: kind, Name: name, ord: c.shared().tempOrd.Add(1)}
}

// append links child under n.
func (n *TempNode) append(child *TempNode) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// expand materializes a virtual reference into real temp children (deep
// copy on demand). env provides storage access; the expansion counts as a
// deep copy for the E9 statistics.
func (n *TempNode) expand(env *env) error {
	if n.Ref == nil {
		return nil
	}
	ref := n.Ref
	n.Ref = nil
	env.ctx.stats().AddDeepCopies(1)
	copied, err := deepCopyStored(env, ref)
	if err != nil {
		return err
	}
	// Graft the copied node's identity onto n.
	n.Kind, n.Name, n.Text = copied.Kind, copied.Name, copied.Text
	n.Children = copied.Children
	for _, c := range n.Children {
		c.Parent = n
	}
	return nil
}

// deepCopyStored copies a stored subtree into temp nodes — the expensive
// operation element constructors pay by default (§5.2.1).
func deepCopyStored(env *env, it *NodeItem) (*TempNode, error) {
	sn := it.Doc.Schema.ByID(it.D.SchemaID)
	t := env.ctx.newTempNode(sn.Kind, sn.Name)
	if sn.Kind.HasText() {
		b, err := env.storeFor(it.Doc).text(env, it.Doc, &it.D)
		if err != nil {
			return nil, err
		}
		t.Text = string(b)
		env.ctx.stats().AddBytesCopied(uint64(len(b)))
		return t, nil
	}
	kids, err := storedChildren(env, it)
	if err != nil {
		return nil, err
	}
	for i := range kids {
		ct, err := deepCopyStored(env, &kids[i])
		if err != nil {
			return nil, err
		}
		t.append(ct)
	}
	return t, nil
}

// storedChildren lists the children of a stored node in document order.
func storedChildren(env *env, it *NodeItem) ([]NodeItem, error) {
	kids, err := env.storeFor(it.Doc).children(env, it.Doc, &it.D)
	if err != nil {
		return nil, err
	}
	out := make([]NodeItem, len(kids))
	for i := range kids {
		out[i] = NodeItem{Doc: it.Doc, D: kids[i]}
	}
	return out, nil
}

// stringValue concatenates descendant text of a temp node.
func (n *TempNode) stringValue(env *env) (string, error) {
	if n.Kind.HasText() {
		return n.Text, nil
	}
	var sb strings.Builder
	var rec func(t *TempNode) error
	rec = func(t *TempNode) error {
		if t.Ref != nil {
			s, err := nodeStringValue(env, t.Ref)
			if err != nil {
				return err
			}
			sb.WriteString(s)
			return nil
		}
		if t.Kind == schema.KindText {
			sb.WriteString(t.Text)
			return nil
		}
		if t.Kind == schema.KindAttribute || t.Kind == schema.KindComment || t.Kind == schema.KindPI {
			if t != n {
				return nil // attribute/comment/PI text is not element content
			}
			sb.WriteString(t.Text)
			return nil
		}
		for _, c := range t.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(n)
	return sb.String(), err
}
