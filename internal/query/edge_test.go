package query

import (
	"strings"
	"testing"
)

func TestSerializationEscaping(t *testing.T) {
	db := testDB(t)
	upd(t, db, `CREATE DOCUMENT "esc"`)
	upd(t, db, `UPDATE insert <e a="x">5 &lt; 6 &amp; 7 &gt; 2</e> into doc("esc")`)
	got := q(t, db, `doc("esc")/e`)
	if !strings.Contains(got, "5 &lt; 6 &amp; 7") {
		t.Fatalf("special characters not escaped: %s", got)
	}
	// String value is unescaped.
	got = q(t, db, `string(doc("esc")/e)`)
	if got != "5 < 6 & 7 > 2" {
		t.Fatalf("string value = %q", got)
	}
}

func TestMultiKeyOrderBy(t *testing.T) {
	db := testDB(t)
	got := q(t, db, `
		for $a in doc("lib")//author
		let $b := $a/..
		order by name($b), $a
		return concat(name($b), ":", string($a), " ")`)
	// books first (alphabetical by parent name), then paper.
	if !strings.HasPrefix(got, "book:Abiteboul") {
		t.Fatalf("order-by result: %s", got)
	}
	if !strings.Contains(got, "paper:Codd") {
		t.Fatalf("paper author lost: %s", got)
	}
	if strings.Index(got, "paper:") < strings.Index(got, "book:Vianu") {
		t.Fatalf("multi-key order wrong: %s", got)
	}
}

func TestNestedPredicates(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`doc("lib")/library/book[issue[publisher = "Addison-Wesley"]]/author/text()`:                   `Date`,
		`count(doc("lib")/library/book[author][year])`:                                                 `2`,
		`doc("lib")/library/book[count(author) = 3]/title/text()`:                                      `Foundations of Databases`,
		`count(doc("lib")//book[not(issue)])`:                                                          `1`,
		`doc("lib")/library/*[title = "A Relational Model for Large Shared Data Banks"]/author/text()`: `Codd`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestExplicitAxesWithKindTests(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`count(doc("lib")/library/book[1]/child::text())`:       `0`,
		`count(doc("lib")/library/book[1]/descendant::text())`:  `5`,
		`count(doc("lib")/descendant::element(book))`:           `2`,
		`count(doc("lib")//year/self::year)`:                    `4`,
		`count(doc("lib")//year/self::book)`:                    `0`,
		`count(doc("lib")/library/book[2]/issue/child::node())`: `2`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestAttributesInUpdatesAndQueries(t *testing.T) {
	db := testDB(t)
	upd(t, db, `UPDATE insert <review stars="5" by="alice"/> into doc("lib")/library/book[1]`)
	cases := map[string]string{
		`doc("lib")//review/@stars`:                   `5`,
		`string(doc("lib")//review/@by)`:              `alice`,
		`count(doc("lib")//review[@stars = 5])`:       `1`,
		`count(doc("lib")//review/attribute::node())`: `2`,
		`name(doc("lib")//review/@by)`:                `by`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
	// Attribute serialization inside the element.
	got := q(t, db, `doc("lib")//review`)
	if got != `<review stars="5" by="alice"/>` {
		t.Fatalf("review = %s", got)
	}
}

func TestUpdateWithConstructedAttributeContent(t *testing.T) {
	db := testDB(t)
	upd(t, db, `UPDATE insert
		<edition year="{1990 + 5}" kind="reprint"><note>n</note></edition>
		into doc("lib")/library/book[1]`)
	got := q(t, db, `doc("lib")/library/book[1]/edition`)
	if got != `<edition year="1995" kind="reprint"><note>n</note></edition>` {
		t.Fatalf("edition = %s", got)
	}
}

func TestRenameAttributeFails(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	defer tx.Rollback()
	// Renaming text nodes is rejected.
	if _, err := Execute(NewExecCtx(tx), `UPDATE rename doc("lib")//title/text() on x`); err == nil {
		t.Fatal("renaming a text node must fail")
	}
}

func TestRuntimeErrors(t *testing.T) {
	db := testDB(t)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	for _, src := range []string{
		`1 idiv 0`,
		`(1,2) + 3`,
		`doc("lib")/library is doc("lib")//author`, // multi-node identity
		`sum(doc("lib")//book) + .`,                // no context item
	} {
		if _, err := Execute(NewExecCtx(tx), src); err == nil {
			t.Errorf("%q: expected runtime error", src)
		}
	}
}

func TestEmptySequencePropagation(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`count(doc("lib")//missing + 1)`:    ``, // empty arithmetic → empty... count is 1 of empty? count(()) = 0
		`1 + count(doc("lib")//missing)`:    `1`,
		`string(doc("lib")//missing)`:       ``,
		`count(doc("lib")//missing/text())`: `0`,
		`empty(doc("lib")//missing)`:        `true`,
	}
	// Fix the first case: count of an empty arithmetic result is 0.
	cases[`count(doc("lib")//missing + 1)`] = `0`
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %q\nwant: %q", src, got, want)
		}
	}
}

func TestDeeplyNestedConstructedResult(t *testing.T) {
	db := testDB(t)
	got := q(t, db, `
		<catalog>{
		  for $b in doc("lib")/library/book
		  return <entry>
		    <heading>{$b/title/text()}</heading>
		    <people>{for $a in $b/author return <p>{string($a)}</p>}</people>
		  </entry>
		}</catalog>`)
	if !strings.Contains(got, "<people><p>Abiteboul</p><p>Hull</p><p>Vianu</p></people>") {
		t.Fatalf("nested construction: %s", got)
	}
	if strings.Count(got, "<entry>") != 2 {
		t.Fatalf("entries: %s", got)
	}
}

func TestLongTextThroughEngine(t *testing.T) {
	db := testDB(t)
	long := strings.Repeat("abcdefghij", 3000) // 30 KB, multiple chunks
	upd(t, db, `CREATE DOCUMENT "blob"`)
	upd(t, db, `UPDATE insert <t>`+long+`</t> into doc("blob")`)
	got := q(t, db, `string-length(doc("blob")/t)`)
	if got != "30000" {
		t.Fatalf("length = %s", got)
	}
	got = q(t, db, `substring(doc("blob")/t, 29998)`)
	if got != "hij" {
		t.Fatalf("tail = %q", got)
	}
}

func TestIndexScanAfterReplace(t *testing.T) {
	db := testDB(t)
	upd(t, db, `CREATE INDEX "byt" ON doc("lib")/library/book BY title AS string`)
	upd(t, db, `UPDATE replace $b in doc("lib")/library/book[1]
	            with <book><title>Renamed Title</title></book>`)
	if got := q(t, db, `count(index-scan("byt", "Foundations of Databases"))`); got != "0" {
		t.Fatalf("stale index entry after replace: %s", got)
	}
	if got := q(t, db, `index-scan("byt", "Renamed Title")/title/text()`); got != "Renamed Title" {
		t.Fatalf("new index entry missing: %s", got)
	}
}

func TestDistinctValuesAndQuantifiersOverDocs(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`count(distinct-values(doc("lib")//author/text()))`:          `5`,
		`some $y in doc("lib")//year satisfies number($y) < 1980`:    `true`,
		`every $y in doc("lib")//year satisfies number($y) > 1900`:   `true`,
		`every $b in doc("lib")//book satisfies exists($b/author)`:   `true`,
		`some $b in doc("lib")//book satisfies count($b/author) > 5`: `false`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}
