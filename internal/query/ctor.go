package query

import (
	"fmt"
	"strings"

	"sedna/internal/schema"
)

func kindText() schema.NodeKind    { return schema.KindText }
func kindComment() schema.NodeKind { return schema.KindComment }

// evalElementCtor constructs an element. Default semantics deep-copy node
// content; a constructor the rewriter marked Virtual stores references
// instead (§5.2.1) — semantically equivalent because the analysis proved the
// content is only serialized.
func evalElementCtor(c *ElementCtor, e *env, f *focus) (*TempNode, error) {
	t := e.ctx.newTempNode(schema.KindElement, c.Name)
	for _, a := range c.Attrs {
		var sb strings.Builder
		for _, part := range a.Value {
			v, err := eval(part, e, f)
			if err != nil {
				return nil, err
			}
			s, err := atomizedString(e, v, " ")
			if err != nil {
				return nil, err
			}
			sb.WriteString(s)
		}
		at := e.ctx.newTempNode(schema.KindAttribute, a.Name)
		at.Text = sb.String()
		t.append(at)
	}
	for _, part := range c.Content {
		v, err := eval(part, e, f)
		if err != nil {
			return nil, err
		}
		// Adjacent atomic values merge into one text node separated by
		// spaces.
		var atomRun []string
		flushAtoms := func() {
			if len(atomRun) == 0 {
				return
			}
			tn := e.ctx.newTempNode(schema.KindText, "")
			tn.Text = strings.Join(atomRun, " ")
			t.append(tn)
			atomRun = nil
		}
		for _, it := range v {
			switch x := it.(type) {
			case *Atomic:
				atomRun = append(atomRun, x.StringValue())
			case *TempItem:
				flushAtoms()
				// Constructed content is adopted directly (it already is a
				// copy); this is the embedded-constructor optimisation: the
				// nested constructor's result parents straight into the
				// enclosing element with no further copying.
				t.append(x.N)
			case *NodeItem:
				flushAtoms()
				if c.Virtual {
					ref := e.ctx.newTempNode(schema.KindElement, "")
					ref.Ref = x
					t.append(ref)
					e.ctx.stats().AddVirtualRefs(1)
				} else {
					e.ctx.stats().AddDeepCopies(1)
					cp, err := deepCopyStored(e, x)
					if err != nil {
						return nil, err
					}
					t.append(cp)
				}
			}
		}
		flushAtoms()
	}
	return t, nil
}

// atomizedString atomizes a sequence and joins the values with sep.
func atomizedString(e *env, items []Item, sep string) (string, error) {
	var parts []string
	for _, it := range items {
		a, err := atomize(e, it)
		if err != nil {
			return "", err
		}
		parts = append(parts, a.StringValue())
	}
	return strings.Join(parts, sep), nil
}

// axisTemp evaluates axes over constructed nodes; virtual references expand
// lazily when navigation enters them.
func axisTemp(e *env, n *TempNode, axis Axis, test NodeTest, out []Item) ([]Item, error) {
	if err := n.expand(e); err != nil {
		return nil, err
	}
	matches := func(t *TempNode) bool {
		return matchesTempNode(t, test)
	}
	switch axis {
	case AxisChild, AxisAttribute:
		wantAttr := axis == AxisAttribute
		tt := test
		if wantAttr {
			tt = attributeTest(test)
		}
		for _, c := range n.Children {
			if c.Ref != nil {
				// A referenced stored subtree: match against the stored
				// node.
				sn := c.Ref.Doc.Schema.ByID(c.Ref.D.SchemaID)
				isAttr := sn.Kind == schema.KindAttribute
				if isAttr == wantAttr && matchesSchema(sn, tt) {
					out = append(out, c.Ref)
				}
				continue
			}
			isAttr := c.Kind == schema.KindAttribute
			if isAttr == wantAttr && matchesTempNode(c, tt) {
				out = append(out, &TempItem{N: c})
			}
		}
		return out, nil
	case AxisSelf:
		if matches(n) {
			out = append(out, &TempItem{N: n})
		}
		return out, nil
	case AxisParent:
		if n.Parent != nil && matchesTempNode(n.Parent, test) {
			out = append(out, &TempItem{N: n.Parent})
		}
		return out, nil
	case AxisAncestor, AxisAncestorOrSelf:
		var chain []Item
		if axis == AxisAncestorOrSelf && matches(n) {
			chain = append(chain, &TempItem{N: n})
		}
		for p := n.Parent; p != nil; p = p.Parent {
			if matchesTempNode(p, test) {
				chain = append(chain, &TempItem{N: p})
			}
		}
		for i := len(chain) - 1; i >= 0; i-- {
			out = append(out, chain[i])
		}
		return out, nil
	case AxisDescendant, AxisDescendantOrSelf:
		if axis == AxisDescendantOrSelf && matches(n) {
			out = append(out, &TempItem{N: n})
		}
		var rec func(t *TempNode) error
		rec = func(t *TempNode) error {
			if err := t.expand(e); err != nil {
				return err
			}
			for _, c := range t.Children {
				if c.Ref != nil {
					var err error
					out, err = axisStored(e, c.Ref, AxisDescendantOrSelf, test, out)
					if err != nil {
						return err
					}
					continue
				}
				if c.Kind == schema.KindAttribute {
					continue
				}
				if matchesTempNode(c, test) {
					out = append(out, &TempItem{N: c})
				}
				if err := rec(c); err != nil {
					return err
				}
			}
			return nil
		}
		return out, rec(n)
	case AxisFollowingSibling, AxisPrecedingSibling:
		if n.Parent == nil {
			return out, nil
		}
		sibs := n.Parent.Children
		idx := -1
		for i, s := range sibs {
			if s == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			return out, nil
		}
		if axis == AxisFollowingSibling {
			for _, s := range sibs[idx+1:] {
				if matchesTempNode(s, test) {
					out = append(out, &TempItem{N: s})
				}
			}
		} else {
			for _, s := range sibs[:idx] {
				if matchesTempNode(s, test) {
					out = append(out, &TempItem{N: s})
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unsupported axis %v over constructed nodes", axis)
	}
}

func matchesTempNode(t *TempNode, test NodeTest) bool {
	switch test.Kind {
	case TestName:
		return t.Kind == schema.KindElement && (test.Name == "*" || t.Name == test.Name)
	case TestNode:
		return true
	case TestText:
		return t.Kind == schema.KindText
	case TestComment:
		return t.Kind == schema.KindComment
	case TestPI:
		return t.Kind == schema.KindPI && (test.Name == "" || test.Name == "*" || t.Name == test.Name)
	case TestElement:
		return t.Kind == schema.KindElement && (test.Name == "" || test.Name == "*" || t.Name == test.Name)
	case TestAttrTest:
		return t.Kind == schema.KindAttribute && (test.Name == "" || test.Name == "*" || t.Name == test.Name)
	default:
		return false
	}
}

// forEachDescendantText streams the text content of a stored element's
// subtree in document order using the schema-driven descendant scan.
func forEachDescendantText(e *env, n *NodeItem, fn func(text []byte)) error {
	items, err := axisStored(e, n, AxisDescendant, NodeTest{Kind: TestText}, nil)
	if err != nil {
		return err
	}
	for _, it := range items {
		ni := it.(*NodeItem)
		b, err := e.storeFor(ni.Doc).text(e, ni.Doc, &ni.D)
		if err != nil {
			return err
		}
		fn(b)
	}
	return nil
}
