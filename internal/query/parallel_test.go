package query

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
	"sedna/internal/xmlgen"
)

// parallelDB opens a database preloaded with the xmlgen corpora the
// parallel-vs-serial property tests query against: the multi-schema-node
// Sections catalog (the fan-out shape), a scaled library, an auction site
// and a deep narrow tree.
func parallelDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"cat":    xmlgen.SectionsString(8, 40, 1),
		"biglib": xmlgen.LibraryString(120, 2),
		"site":   xmlgen.AuctionString(30, 20, 3, 3),
		"deep":   xmlgen.DeepString(6, 4),
	}
	for name, content := range docs {
		if _, err := tx.LoadXML(name, strings.NewReader(content)); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// qw executes a query with an explicit intra-query worker budget and
// serializes the result.
func qw(t *testing.T, db *core.Database, src string, workers int) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.Workers = workers
	res, err := Execute(ctx, src)
	if err != nil {
		t.Fatalf("query %q (workers=%d): %v", src, workers, err)
	}
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// parallelPropertyQueries is the property-test corpus: path steps with
// multi-schema-node descendant fan-out, predicates, FLWORs (plain, where,
// positional, ordered, nested), aggregates and quantifiers. Every query must
// serialize byte-identically at any worker count.
var parallelPropertyQueries = []string{
	// Sections catalog: //item fans out over 8 schema nodes.
	`count(doc("cat")//item)`,
	`doc("cat")//name`,
	`data(doc("cat")//value)`,
	`doc("cat")//item[value > 9000]/name`,
	`count(doc("cat")//item[value < 5000])`,
	`doc("cat")/catalog/sec3/item[2]/name/text()`,
	`data(doc("cat")//item/@id)`,
	`max(doc("cat")//value)`,
	`min(doc("cat")//value)`,
	`sum(for $v in doc("cat")//value return number($v))`,
	`distinct-values(doc("cat")//note/text())`,
	`for $i in doc("cat")//item where $i/value > 9500 return string($i/name)`,
	`for $i at $p in doc("cat")/catalog/sec0/item where $p <= 5 return string($i/value)`,
	`for $i in doc("cat")/catalog/sec1/item order by number($i/value) return string($i/value)`,
	`for $s in doc("cat")/catalog/*, $i in $s/item where $i/value > 9000 return string($i/value)`,
	`for $i in doc("cat")/catalog/sec2/item return if ($i/value > 5000) then "hi" else "lo"`,
	`count(doc("cat")//item[some $n in note satisfies contains($n, "Codd")])`,
	// Scaled library.
	`count(doc("biglib")//author)`,
	`doc("biglib")//book[year = 1999]/title`,
	`data(doc("biglib")//publisher)`,
	`count(doc("biglib")//issue/year)`,
	`for $b in doc("biglib")/library/book where count($b/author) > 2 return $b/title/text()`,
	`for $p in doc("biglib")/library/paper order by $p/title return string($p/title)`,
	`for $a in doc("biglib")//author order by $a return string($a)`,
	// Auction site: deeper nesting, more schema variety.
	`count(doc("site")//bidder)`,
	`data(doc("site")//current)`,
	`doc("site")//person[profile/age > 60]/name`,
	`for $a in doc("site")//open_auction where number($a/current) > 4000 return string($a/initial)`,
	`sum(for $b in doc("site")//increase return number($b))`,
	`count(doc("site")//item)`,
	// Deep narrow tree: long labels, recursion through one schema chain.
	`count(doc("deep")//n0)`,
	`count(doc("deep")//n2)`,
	`data(doc("deep")/root/n0/n0/n1)`,
}

// lowerScanGate drops the scan fan-out threshold so the small test corpora
// exercise the parallel path, restoring it on cleanup.
func lowerScanGate(t *testing.T) {
	t.Helper()
	old := parallelScanMinNodes
	parallelScanMinNodes = 4
	t.Cleanup(func() { parallelScanMinNodes = old })
}

// TestParallelMatchesSerial is the determinism property: for the whole query
// corpus, execution with any worker budget serializes byte-identically to
// -query-workers=1. Run with -race to also check the concurrent read path.
func TestParallelMatchesSerial(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	for _, src := range parallelPropertyQueries {
		serial := qw(t, db, src, 1)
		for _, workers := range []int{2, 4, 8} {
			if got := qw(t, db, src, workers); got != serial {
				t.Errorf("%s\nworkers=%d diverges from serial\n got: %.200s\nwant: %.200s",
					src, workers, got, serial)
			}
		}
	}
}

// TestParallelStepsCounted pins that a fanned-out descendant step records
// query.parallel_steps and worker busy time, and that forcing workers=1
// leaves the counter untouched.
func TestParallelStepsCounted(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	reg := db.Metrics()
	before := reg.Counter("query.parallel_steps").Value()
	qw(t, db, `count(doc("cat")//item)`, 4)
	if got := reg.Counter("query.parallel_steps").Value(); got <= before {
		t.Fatalf("parallel_steps not incremented: before=%d after=%d", before, got)
	}
	if reg.Counter("query.worker_busy_ns").Value() == 0 {
		t.Fatal("worker_busy_ns stayed zero after a parallel step")
	}
	before = reg.Counter("query.parallel_steps").Value()
	qw(t, db, `count(doc("cat")//item)`, 1)
	if got := reg.Counter("query.parallel_steps").Value(); got != before {
		t.Fatalf("workers=1 still fanned out: before=%d after=%d", before, got)
	}
}

// TestParallelFallbackSerial pins that unsafe sections are counted instead of
// parallelized: a FLWOR whose return constructs nodes must fall back.
func TestParallelFallbackSerial(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	reg := db.Metrics()
	before := reg.Counter("query.fallback_serial").Value()
	got := qw(t, db, `for $p in doc("biglib")/library/paper return <t>{$p/title/text()}</t>`, 4)
	if !strings.HasPrefix(got, "<t>") {
		t.Fatalf("constructor FLWOR result: %.80s", got)
	}
	if after := reg.Counter("query.fallback_serial").Value(); after <= before {
		t.Fatalf("fallback_serial not incremented: before=%d after=%d", before, after)
	}
}

// TestWorkerPool unit-tests the token pool: budget accounting, non-blocking
// acquisition and degradation to serial when drained.
func TestWorkerPool(t *testing.T) {
	p := newWorkerPool(4)
	if got := p.tryAcquire(10); got != 3 {
		t.Fatalf("tryAcquire(10) on size-4 pool: got %d extra tokens, want 3", got)
	}
	if got := p.tryAcquire(1); got != 0 {
		t.Fatalf("drained pool handed out %d tokens", got)
	}
	p.release(3)
	if got := p.tryAcquire(2); got != 2 {
		t.Fatalf("after release: got %d tokens, want 2", got)
	}
	p.release(2)
	serial := newWorkerPool(1)
	if got := serial.tryAcquire(5); got != 0 {
		t.Fatalf("size-1 pool handed out %d tokens", got)
	}
}

// TestFanOutOrderAndErrors pins fanOut semantics: every index runs exactly
// once, results land at their own index (order restored by position, not
// completion), and a worker error propagates.
func TestFanOutOrderAndErrors(t *testing.T) {
	ctx := &ExecCtx{Workers: 4}
	const n = 64
	out := make([]int, n)
	workers, err := ctx.fanOut(n, func(i int, wctx *ExecCtx) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if workers < 1 || workers > 4 {
		t.Fatalf("fanOut used %d workers", workers)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("index %d ran %d times", i, v)
		}
	}
	boom := fmt.Errorf("boom")
	if _, err := ctx.fanOut(n, func(i int, wctx *ExecCtx) error {
		if i == 7 {
			return boom
		}
		return nil
	}); err != boom {
		t.Fatalf("fanOut error: got %v, want boom", err)
	}
}

// TestMergeSortedParts checks the k-way merge degenerate cases the scan
// fan-out relies on: empty parts, single part, interleaved labels.
func TestMergeSortedParts(t *testing.T) {
	if got := mergeSortedParts(nil, nil); got != nil {
		t.Fatalf("merge of nothing: %v", got)
	}
	if got := mergeSortedParts([][]Item{nil, nil}, nil); got != nil {
		t.Fatalf("merge of empties: %v", got)
	}
}

// TestExecStatsConcurrent hammers the shared stats block, the lazy cache and
// the temp ordinal from many goroutines; run with -race. The counters must
// neither lose increments nor tear.
func TestExecStatsConcurrent(t *testing.T) {
	ctx := NewExecCtx(nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fctx := ctx.fork(nil)
			s := fctx.stats()
			for i := 0; i < perWorker; i++ {
				s.AddDDOOps(1)
				s.AddSchemaScans(1)
				s.AddLazyHits(1)
				fctx.shared().tempOrd.Add(1)
				id := (w*perWorker + i) % 16
				if _, ok := fctx.lazyLookup(id); !ok {
					fctx.lazyStore(id, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	want := uint64(workers * perWorker)
	s := ctx.stats()
	if s.DDOOps != want || s.SchemaScans != want || s.LazyHits != want {
		t.Fatalf("lost increments: ddo=%d schema=%d lazy=%d want %d",
			s.DDOOps, s.SchemaScans, s.LazyHits, want)
	}
	if got := ctx.shared().tempOrd.Load(); got != want {
		t.Fatalf("tempOrd=%d want %d", got, want)
	}
}
