package query

// Intra-query parallel execution. The schema-driven execution model (§4.1,
// §5.1) decomposes the two heaviest operators into independent units of
// work: a descendant step is a set of per-schema-node block-list range
// scans, and a FLWOR for-clause is a set of independent binding
// evaluations. Both fan out here over a bounded worker pool, with results
// gathered back into exactly the order serial execution produces — the
// per-stream buffers merge by NID label (what mergeStreams does
// incrementally) and the per-binding tuple sinks concatenate in binding
// order. Every worker reads through the same snapshot transaction; PR 3's
// striped buffer pool and per-frame atomic pins make that concurrent read
// path safe and scalable.
//
// Sections that cannot run concurrently fall back to serial execution and
// count query.fallback_serial: update statements (writes interleave with
// evaluation), expressions that construct nodes (temp-node ordinals — the
// document order of constructed nodes — would become nondeterministic
// across workers, and virtual references expand by mutation), user-defined
// function calls (bodies are not analyzed), and pools of size 1.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/metrics"
	"sedna/internal/nid"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/trace"
)

// parallelScanMinNodes gates the per-schema-node scan fan-out: below this
// many candidate descriptors (summed NodeCount of the matched schema nodes)
// goroutine startup outweighs the scan work. A variable so tests can
// exercise the parallel path on small corpora.
var parallelScanMinNodes uint64 = 64

// parallelForMinBindings is the minimum for-clause cardinality worth
// fanning out.
const parallelForMinBindings = 2

// workerPool bounds how many goroutines one statement may add beyond the
// coordinating one. Tokens are taken non-blockingly: a nested parallel
// section that finds the pool drained simply runs serially, so parallelism
// never stacks multiplicatively.
type workerPool struct {
	size   int           // configured worker budget (≥ 1)
	tokens chan struct{} // size-1 extra-goroutine tokens; nil when size == 1
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{size: size}
	if size > 1 {
		p.tokens = make(chan struct{}, size-1)
		for i := 0; i < size-1; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// tryAcquire takes up to want extra-goroutine tokens without blocking and
// returns how many it got.
func (p *workerPool) tryAcquire(want int) int {
	got := 0
	for got < want && p.tokens != nil {
		select {
		case <-p.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

func (p *workerPool) release(n int) {
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
}

// pool returns the statement's worker pool, building it on first use from
// ctx.Workers (explicit), the database's -query-workers setting, or
// GOMAXPROCS.
func (ctx *ExecCtx) pool() *workerPool {
	sh := ctx.shared()
	sh.poolOnce.Do(func() {
		n := ctx.Workers
		if n <= 0 && sh.plannedWorkers >= 2 {
			// The cost-based optimizer sized the fan-out from estimated rows;
			// the database-wide cap still bounds it.
			n = sh.plannedWorkers
			if ctx.Tx != nil && ctx.Tx.DB() != nil {
				if dbw := ctx.Tx.DB().QueryWorkers(); dbw < n {
					n = dbw
				}
			}
		}
		if n <= 0 && ctx.Tx != nil && ctx.Tx.DB() != nil {
			n = ctx.Tx.DB().QueryWorkers()
		}
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		sh.pool = newWorkerPool(n)
	})
	return sh.pool
}

// noteFallback counts a parallel-eligible section that ran serially
// (update statement, unsafe subtree, size-1 pool, drained pool).
func (ctx *ExecCtx) noteFallback() {
	if reg := ctx.registry(); reg != nil {
		reg.Counter("query.fallback_serial").Inc()
	}
}

// fanOut runs fn(0..n-1) across the statement's worker pool. The calling
// goroutine always works too; extra goroutines join only when pool tokens
// are free, so a drained pool degrades to serial execution on the caller.
// Work items are dispensed from a shared counter (dynamic load balancing),
// every worker runs on its own context fork with a "worker N" trace span
// under the current span, and the current span is annotated with
// parallelism=N. Returns the number of goroutines that worked (1 = serial).
func (ctx *ExecCtx) fanOut(n int, fn func(i int, wctx *ExecCtx) error) (int, error) {
	pool := ctx.pool()
	want := n - 1
	if want > pool.size-1 {
		want = pool.size - 1
	}
	extra := pool.tryAcquire(want)
	if extra == 0 {
		if pool.size > 1 {
			// The statement wanted to go parallel here but the pool is
			// drained by an enclosing section.
			ctx.noteFallback()
		}
		for i := 0; i < n; i++ {
			if err := fn(i, ctx); err != nil {
				return 1, err
			}
		}
		return 1, nil
	}
	defer pool.release(extra)
	workers := extra + 1

	if reg := ctx.registry(); reg != nil {
		reg.Counter("query.parallel_steps").Inc()
	}
	ctx.span.SetInt("parallelism", int64(workers))
	var busy *metrics.Counter
	if reg := ctx.registry(); reg != nil {
		busy = reg.Counter("query.worker_busy_ns")
	}
	// Worker spans are created by the coordinator so the rendered order is
	// deterministic; each span's duration is its worker's busy wall time.
	spans := make([]*trace.Span, workers)
	if ctx.span != nil {
		for w := range spans {
			spans[w] = ctx.span.Child(fmt.Sprintf("worker %d", w))
		}
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		errMu  sync.Mutex
		first  error
	)
	work := func(w int) {
		wctx := ctx.fork(spans[w])
		start := time.Now()
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				break
			}
			if err := fn(i, wctx); err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
				failed.Store(true)
				break
			}
		}
		spans[w].End()
		if busy != nil {
			busy.Add(uint64(time.Since(start).Nanoseconds()))
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
	return workers, first
}

// parallelStreams evaluates one range scan per matched schema node on the
// worker pool, each draining fully into a per-stream buffer, then k-way
// merges the label-ordered buffers into document order — the same order the
// serial incremental mergeStreams produces, so parallel output is
// byte-identical to serial. handled=false means the section did not qualify
// (fewer than two targets, too little work, update statement, parallelism
// off) and the caller should run its serial path.
func parallelStreams(e *env, doc *storage.Doc, targets []*schema.Node, st docStore, anc *storage.Desc, out []Item) ([]Item, bool, error) {
	ctx := e.ctx
	if len(targets) < 2 || ctx.updateStmt {
		return out, false, nil
	}
	var total uint64
	for _, sn := range targets {
		total += sn.NodeCount
	}
	if total < parallelScanMinNodes {
		return out, false, nil
	}
	if ctx.pool().size < 2 {
		ctx.noteFallback()
		return out, false, nil
	}
	parts := make([][]Item, len(targets))
	if _, err := ctx.fanOut(len(targets), func(i int, wctx *ExecCtx) error {
		we := *e
		we.ctx = wctx
		s, err := st.descendantScan(&we, doc, targets[i], anc)
		if err != nil {
			return err
		}
		var buf []Item
		for s != nil && s.valid() {
			if err := wctx.checkKilled(); err != nil {
				return err
			}
			buf = append(buf, &NodeItem{Doc: doc, D: *s.desc()})
			if err := s.advance(&we); err != nil {
				return err
			}
		}
		parts[i] = buf
		return nil
	}); err != nil {
		return nil, true, err
	}
	return mergeSortedParts(parts, out), true, nil
}

// mergeSortedParts k-way merges label-ordered NodeItem buffers into
// document order.
func mergeSortedParts(parts [][]Item, out []Item) []Item {
	idx := make([]int, len(parts))
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if out == nil && total > 0 {
		out = make([]Item, 0, total)
	}
	for {
		best := -1
		var bestLabel nid.Label
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			l := p[idx[i]].(*NodeItem).D.Label
			if best < 0 || nid.Compare(l, bestLabel) < 0 {
				best, bestLabel = i, l
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
}

// parallelFLWOR fans the first for-clause's bindings out across the worker
// pool when everything evaluated under it is safe to run concurrently. Each
// binding's tuples gather into a per-binding sink; sinks concatenate in
// binding order, reproducing the serial nested-loop order exactly.
// handled=false → the caller runs the serial nested loop.
func parallelFLWOR(fl *FLWOR, e *env, f *focus, run func(i int, e *env, sink *[]flworTuple) error, results *[]flworTuple) (bool, error) {
	ctx := e.ctx
	if len(fl.Clauses) == 0 || fl.Clauses[0].Let {
		return false, nil
	}
	if ctx.updateStmt {
		ctx.noteFallback()
		return false, nil
	}
	if !parallelSafeFLWOR(fl, ctx) {
		ctx.noteFallback()
		return false, nil
	}
	if ctx.pool().size < 2 {
		ctx.noteFallback()
		return false, nil
	}
	cl := fl.Clauses[0]
	seq, err := evalClauseSeq(cl, e, f)
	if err != nil {
		return true, err
	}
	bindSerial := func() (bool, error) {
		for pos, it := range seq {
			if err := ctx.checkKilled(); err != nil {
				return true, err
			}
			ne := e.bind(cl.Var, []Item{it})
			if cl.PosVar != "" {
				ne = ne.bind(cl.PosVar, []Item{num(float64(pos + 1))})
			}
			if err := run(1, ne, results); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	if len(seq) < parallelForMinBindings {
		// Too small to fan out; the clause sequence is already evaluated
		// (re-entering the serial loop would evaluate it twice), so bind
		// over it here. Not a fallback — there is nothing to parallelize.
		return bindSerial()
	}
	if anyTemp(seq) || envHasTemp(e, f) {
		// A constructed node in scope: expansion of virtual references
		// mutates shared temp nodes.
		ctx.noteFallback()
		return bindSerial()
	}
	sinks := make([][]flworTuple, len(seq))
	if _, err := ctx.fanOut(len(seq), func(i int, wctx *ExecCtx) error {
		ne := e.bind(cl.Var, []Item{seq[i]})
		ne.ctx = wctx
		if cl.PosVar != "" {
			ne = ne.bind(cl.PosVar, []Item{num(float64(i + 1))})
		}
		return run(1, ne, &sinks[i])
	}); err != nil {
		return true, err
	}
	for i := range sinks {
		*results = append(*results, sinks[i]...)
	}
	return true, nil
}

// parallelSafeFLWOR reports whether everything evaluated under the first
// for-clause is safe and deterministic to run concurrently.
func parallelSafeFLWOR(fl *FLWOR, ctx *ExecCtx) bool {
	for _, cl := range fl.Clauses[1:] {
		if !parallelSafeExpr(cl.Seq, ctx) {
			return false
		}
	}
	if fl.Where != nil && !parallelSafeExpr(fl.Where, ctx) {
		return false
	}
	for _, spec := range fl.OrderBy {
		if !parallelSafeExpr(spec.Key, ctx) {
			return false
		}
	}
	return parallelSafeExpr(fl.Return, ctx)
}

// parallelSafeExpr walks an expression deciding whether workers may
// evaluate it concurrently: no node construction (temp ordinals — the
// document order of constructed nodes — must stay deterministic, and
// virtual references expand by mutation), no user-defined function calls
// (bodies are not analyzed), and a conservative default of unsafe for any
// expression form the walker does not know.
func parallelSafeExpr(x Expr, ctx *ExecCtx) bool {
	switch n := x.(type) {
	case nil:
		return true
	case *Literal, *VarRef, *ContextItem, *Root, *DocCall:
		return true
	case *Step:
		if n.Input != nil && !parallelSafeExpr(n.Input, ctx) {
			return false
		}
		return parallelSafeExprs(n.Preds, ctx)
	case *Filter:
		return parallelSafeExpr(n.Input, ctx) && parallelSafeExprs(n.Preds, ctx)
	case *Sequence:
		return parallelSafeExprs(n.Items, ctx)
	case *Binary:
		return parallelSafeExpr(n.Left, ctx) && parallelSafeExpr(n.Right, ctx)
	case *Unary:
		return parallelSafeExpr(n.X, ctx)
	case *IfExpr:
		return parallelSafeExpr(n.Cond, ctx) && parallelSafeExpr(n.Then, ctx) && parallelSafeExpr(n.Else, ctx)
	case *Quantified:
		return parallelSafeExpr(n.Seq, ctx) && parallelSafeExpr(n.Pred, ctx)
	case *FLWOR:
		for _, cl := range n.Clauses {
			if !parallelSafeExpr(cl.Seq, ctx) {
				return false
			}
		}
		return parallelSafeFLWOR(n, ctx)
	case *FuncCall:
		if _, userDefined := ctx.funcs[n.Name]; userDefined {
			return false
		}
		return parallelSafeExprs(n.Args, ctx)
	default:
		// ElementCtor, TextCtor, CommentCtor and anything added later.
		return false
	}
}

func parallelSafeExprs(xs []Expr, ctx *ExecCtx) bool {
	for _, x := range xs {
		if !parallelSafeExpr(x, ctx) {
			return false
		}
	}
	return true
}

// anyTemp reports whether the sequence holds a constructed node.
func anyTemp(items []Item) bool {
	for _, it := range items {
		if _, ok := it.(*TempItem); ok {
			return true
		}
	}
	return false
}

// envHasTemp reports whether any reachable binding or the focus holds a
// constructed node. Constructed nodes are excluded from parallel sections:
// virtual references expand (mutate) lazily, and their document order is
// the construction ordinal — both would race or become nondeterministic
// across workers.
func envHasTemp(e *env, f *focus) bool {
	if f != nil && f.item != nil {
		if _, ok := f.item.(*TempItem); ok {
			return true
		}
	}
	for b := e.vars; b != nil; b = b.next {
		if anyTemp(b.val) {
			return true
		}
	}
	return false
}
