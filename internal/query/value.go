package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sedna/internal/nid"
	"sedna/internal/storage"
)

// Item is one item of the XQuery data model: a stored node, a constructed
// (temporary) node, or an atomic value.
type Item interface{ isItem() }

// NodeItem is a node stored in the database, referenced by direct pointer
// (its descriptor) as intermediate query results are in Sedna (§5.2).
type NodeItem struct {
	Doc *storage.Doc
	D   storage.Desc
}

// TempItem is a node constructed during query evaluation.
type TempItem struct{ N *TempNode }

// AtomKind classifies atomic values.
type AtomKind int

// Atomic kinds.
const (
	AtomString AtomKind = iota + 1
	AtomNumber
	AtomBool
	AtomUntyped // untyped atomic from node atomization
)

// Atomic is an atomic value.
type Atomic struct {
	Kind AtomKind
	S    string
	F    float64
	B    bool
}

func (*NodeItem) isItem() {}
func (*TempItem) isItem() {}
func (*Atomic) isItem()   {}

// Convenience constructors.
func str(s string) *Atomic     { return &Atomic{Kind: AtomString, S: s} }
func untyped(s string) *Atomic { return &Atomic{Kind: AtomUntyped, S: s} }
func num(f float64) *Atomic    { return &Atomic{Kind: AtomNumber, F: f} }
func boolean(b bool) *Atomic   { return &Atomic{Kind: AtomBool, B: b} }

// StringValue returns the atomic's lexical form.
func (a *Atomic) StringValue() string {
	switch a.Kind {
	case AtomString, AtomUntyped:
		return a.S
	case AtomNumber:
		return formatNumber(a.F)
	case AtomBool:
		if a.B {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// NumberValue converts to a double (NaN on failure, per XPath).
func (a *Atomic) NumberValue() float64 {
	switch a.Kind {
	case AtomNumber:
		return a.F
	case AtomBool:
		if a.B {
			return 1
		}
		return 0
	default:
		f, err := strconv.ParseFloat(strings.TrimSpace(a.S), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// nodeStringValue computes the string value of a stored node: the
// concatenation of all descendant text (and the value itself for
// text-carrying kinds).
func nodeStringValue(env *env, n *NodeItem) (string, error) {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	if sn == nil {
		return "", fmt.Errorf("query: unknown schema node %d", n.D.SchemaID)
	}
	if sn.Kind.HasText() {
		b, err := env.storeFor(n.Doc).text(env, n.Doc, &n.D)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	// Element/document: concatenate descendant text nodes in document
	// order via the schema-driven descendant scan.
	var sb strings.Builder
	err := forEachDescendantText(env, n, func(text []byte) {
		sb.Write(text)
	})
	return sb.String(), err
}

// itemStringValue is the string value of any item.
func itemStringValue(env *env, it Item) (string, error) {
	switch x := it.(type) {
	case *Atomic:
		return x.StringValue(), nil
	case *NodeItem:
		return nodeStringValue(env, x)
	case *TempItem:
		return x.N.stringValue(env)
	default:
		return "", fmt.Errorf("query: unknown item type %T", it)
	}
}

// atomize converts an item to its typed value (untyped atomic for nodes).
func atomize(env *env, it Item) (*Atomic, error) {
	switch x := it.(type) {
	case *Atomic:
		return x, nil
	default:
		s, err := itemStringValue(env, x)
		if err != nil {
			return nil, err
		}
		return untyped(s), nil
	}
}

// ebv computes the effective boolean value of a sequence.
func ebv(items []Item) (bool, error) {
	if len(items) == 0 {
		return false, nil
	}
	switch first := items[0].(type) {
	case *NodeItem, *TempItem:
		return true, nil
	case *Atomic:
		if len(items) > 1 {
			return false, fmt.Errorf("query: effective boolean value of multi-item atomic sequence")
		}
		switch first.Kind {
		case AtomBool:
			return first.B, nil
		case AtomNumber:
			return first.F != 0 && !math.IsNaN(first.F), nil
		default:
			return first.S != "", nil
		}
	}
	return false, fmt.Errorf("query: cannot compute effective boolean value")
}

// compareAtomic applies a value comparison between two atomics following
// the (simplified) XPath rules: numbers compare numerically, untyped values
// adapt to the other operand, strings compare lexicographically.
func compareAtomic(op BinOp, a, b *Atomic) (bool, error) {
	numeric := a.Kind == AtomNumber || b.Kind == AtomNumber
	if a.Kind == AtomBool || b.Kind == AtomBool {
		// Booleans compare as booleans (numbers coerce).
		av, bv := a.NumberValue(), b.NumberValue()
		return compareFloats(op, av, bv)
	}
	if numeric {
		return compareFloats(op, a.NumberValue(), b.NumberValue())
	}
	cmp := strings.Compare(a.StringValue(), b.StringValue())
	return cmpResult(op, cmp), nil
}

func compareFloats(op BinOp, a, b float64) (bool, error) {
	if math.IsNaN(a) || math.IsNaN(b) {
		// NaN compares false except under != which is true.
		return op == OpNe || op == OpVNe, nil
	}
	switch {
	case a < b:
		return cmpResult(op, -1), nil
	case a > b:
		return cmpResult(op, 1), nil
	default:
		return cmpResult(op, 0), nil
	}
}

func cmpResult(op BinOp, cmp int) bool {
	switch op {
	case OpEq, OpVEq:
		return cmp == 0
	case OpNe, OpVNe:
		return cmp != 0
	case OpLt, OpVLt:
		return cmp < 0
	case OpLe, OpVLe:
		return cmp <= 0
	case OpGt, OpVGt:
		return cmp > 0
	case OpGe, OpVGe:
		return cmp >= 0
	default:
		return false
	}
}

// ---- node identity and document order ----

// identityKey returns a comparable identity for a node item.
func identityKey(it Item) (any, bool) {
	switch x := it.(type) {
	case *NodeItem:
		return [2]uint64{uint64(x.Doc.ID), uint64(x.D.Handle)}, true
	case *TempItem:
		return x.N, true
	default:
		return nil, false
	}
}

// docOrderLess orders two node items in document order. Stored nodes order
// by (document, label); constructed nodes follow all stored nodes and order
// by construction ordinal.
func docOrderLess(a, b Item) bool {
	an, aok := a.(*NodeItem)
	bn, bok := b.(*NodeItem)
	switch {
	case aok && bok:
		if an.Doc.ID != bn.Doc.ID {
			return an.Doc.ID < bn.Doc.ID
		}
		return nid.Compare(an.D.Label, bn.D.Label) < 0
	case aok:
		return true
	case bok:
		return false
	default:
		at, aok2 := a.(*TempItem)
		bt, bok2 := b.(*TempItem)
		if aok2 && bok2 {
			return at.N.ord < bt.N.ord
		}
		return false
	}
}

// ddo sorts node items into document order and removes duplicates — the
// explicit DDO operation of §5.1.1. It reports an error when the sequence
// mixes nodes and atomics (such sequences have no document order).
func ddo(items []Item) ([]Item, error) {
	for _, it := range items {
		if _, ok := it.(*Atomic); ok {
			return nil, fmt.Errorf("query: document-order operation over atomic values")
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return docOrderLess(items[i], items[j]) })
	out := items[:0]
	var lastKey any
	for i, it := range items {
		k, _ := identityKey(it)
		if i > 0 && k == lastKey {
			continue
		}
		out = append(out, it)
		lastKey = k
	}
	return out, nil
}

// sameNode reports node identity between two items.
func sameNode(a, b Item) bool {
	ka, ok1 := identityKey(a)
	kb, ok2 := identityKey(b)
	return ok1 && ok2 && ka == kb
}
