package query

import (
	"strings"
	"testing"
)

func rewritten(t *testing.T, src string) *Statement {
	t.Helper()
	st := mustParse(t, src)
	if err := Analyze(st); err != nil {
		t.Fatal(err)
	}
	Rewrite(st)
	return st
}

func findSteps(e Expr) []*Step {
	var out []*Step
	walkExpr(e, func(x Expr) {
		if s, ok := x.(*Step); ok {
			out = append(out, s)
		}
	})
	return out
}

func TestRewriteCombinesDescendantOrSelf(t *testing.T) {
	st := rewritten(t, `doc("lib")//para`)
	steps := findSteps(st.Query)
	// The dos::node() step must be gone, folded into descendant::para.
	for _, s := range steps {
		if s.Axis == AxisDescendantOrSelf {
			t.Fatal("descendant-or-self step not combined")
		}
	}
	top := st.Query.(*Step)
	if top.Axis != AxisDescendant || top.Test.Name != "para" {
		t.Fatalf("combined step = %+v", top)
	}
}

func TestRewriteKeepsDosForPositionalPredicate(t *testing.T) {
	// The paper's counter-example: //para[1] ≠ /descendant::para[1].
	for _, src := range []string{
		`doc("lib")//para[1]`,
		`doc("lib")//para[position() = 2]`,
		`doc("lib")//para[last()]`,
		`doc("lib")//para[count(x)]`,
	} {
		st := rewritten(t, src)
		found := false
		for _, s := range findSteps(st.Query) {
			if s.Axis == AxisDescendantOrSelf {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: dos step combined despite positional predicate", src)
		}
	}
}

func TestRewriteCombinesWithSafePredicate(t *testing.T) {
	st := rewritten(t, `doc("lib")//para[@type = "x"]`)
	for _, s := range findSteps(st.Query) {
		if s.Axis == AxisDescendantOrSelf {
			t.Fatal("dos not combined despite position-free predicate")
		}
	}
}

func TestRewriteRemovesDDOOnStructuralChains(t *testing.T) {
	st := rewritten(t, `doc("lib")/library/book/title`)
	top := st.Query.(*Step)
	if top.NeedDDO {
		t.Fatal("DDO not removed on a child chain from doc()")
	}
	if !top.Structural {
		t.Fatal("structural path not marked")
	}
}

func TestRewriteKeepsDDOAfterParentStep(t *testing.T) {
	st := rewritten(t, `doc("lib")//author/../title`)
	steps := findSteps(st.Query)
	// The step after ".." (child::title over parent results) must keep its
	// DDO: parents of many authors contain duplicates.
	var parentStep *Step
	for _, s := range steps {
		if s.Axis == AxisParent {
			parentStep = s
		}
	}
	if parentStep == nil {
		t.Fatal("parent step missing")
	}
	if !parentStep.NeedDDO {
		t.Fatal("parent step from multi-node input must keep DDO")
	}
}

func TestRewriteVariablePathsKeepDDO(t *testing.T) {
	st := rewritten(t, `for $x in doc("lib")//a return $x/b/c`)
	f := st.Query.(*FLWOR)
	ret := f.Return.(*Step)
	// $x is a single item binding: steps from it are provably ordered.
	if ret.NeedDDO {
		t.Fatal("steps from a for-variable (singleton) should not need DDO")
	}
}

func TestRewriteMarksLazyInvariantForClause(t *testing.T) {
	st := rewritten(t, `
		for $x in doc("lib")//a
		for $y in doc("lib")//b
		return ($x, $y)`)
	f := st.Query.(*FLWOR)
	if f.Clauses[0].Lazy {
		t.Fatal("outer clause must not be lazy (not nested)")
	}
	if !f.Clauses[1].Lazy {
		t.Fatal("invariant inner clause must be lazy")
	}
}

func TestRewriteDependentClauseNotLazy(t *testing.T) {
	st := rewritten(t, `
		for $x in doc("lib")//a
		for $y in $x/b
		return $y`)
	f := st.Query.(*FLWOR)
	if f.Clauses[1].Lazy {
		t.Fatal("clause depending on $x must not be lazy")
	}
}

func TestRewriteNestedFLWORLazy(t *testing.T) {
	st := rewritten(t, `
		for $x in doc("lib")//a
		return for $y in doc("lib")//b return $y`)
	outer := st.Query.(*FLWOR)
	inner := outer.Return.(*FLWOR)
	if !inner.Clauses[0].Lazy {
		t.Fatal("invariant inner FLWOR clause must be lazy")
	}
}

func TestRewriteStructuralMarking(t *testing.T) {
	cases := map[string]bool{
		`doc("lib")/library/book`:     true,
		`doc("lib")//author`:          true, // after //-combining
		`doc("lib")/library/book/@id`: true,
		`doc("lib")/library/book[1]`:  false, // predicate
		`doc("lib")//para[1]`:         false,
	}
	for src, want := range cases {
		st := rewritten(t, src)
		top, ok := st.Query.(*Step)
		if !ok {
			t.Fatalf("%s: not a step", src)
		}
		if top.Structural != want {
			t.Errorf("%s: Structural = %v, want %v", src, top.Structural, want)
		}
	}
}

func TestRewriteVirtualConstructorMarking(t *testing.T) {
	// Result-position constructor: virtual.
	st := rewritten(t, `<r>{doc("lib")//a}</r>`)
	if !st.Query.(*ElementCtor).Virtual {
		t.Fatal("result constructor should be virtual")
	}

	// Constructor that is navigated: not virtual.
	st = rewritten(t, `count((<r>{doc("lib")//a}</r>)/a)`)
	virtual := false
	walkExpr(st.Query, func(x Expr) {
		if c, ok := x.(*ElementCtor); ok && c.Virtual {
			virtual = true
		}
	})
	if virtual {
		t.Fatal("navigated constructor must not be virtual")
	}

	// Nested constructors in result position: all virtual.
	st = rewritten(t, `<a><b>{doc("lib")//x}</b></a>`)
	count := 0
	walkExpr(st.Query, func(x Expr) {
		if c, ok := x.(*ElementCtor); ok && c.Virtual {
			count++
		}
	})
	if count != 2 {
		t.Fatalf("virtual constructors = %d, want 2", count)
	}

	// FLWOR return position: virtual.
	st = rewritten(t, `for $x in doc("lib")//a return <r>{$x}</r>`)
	f := st.Query.(*FLWOR)
	if !f.Return.(*ElementCtor).Virtual {
		t.Fatal("FLWOR-return constructor should be virtual")
	}

	// Variable-bound constructor: not virtual (may be navigated later).
	st = rewritten(t, `for $r in (<x>{doc("lib")//a}</x>) return $r`)
	walkExpr(st.Query, func(x Expr) {
		if c, ok := x.(*ElementCtor); ok && c.Virtual {
			t.Fatal("variable-bound constructor must not be virtual")
		}
	})
}

func TestRewriteOffSwitch(t *testing.T) {
	// With NoRewrite the executor must still produce correct results; this
	// is the ablation baseline used by the E5–E8 experiments.
	db := testDB(t)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.NoRewrite = true
	res, err := Execute(ctx, `count(doc("lib")//author)`)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.String()
	if s != "5" {
		t.Fatalf("unrewritten query result: %s", s)
	}
	if ctx.Profile.DDOOps == 0 {
		t.Fatal("unrewritten plan should execute explicit DDO operations")
	}
}

func TestRewrittenAndNaiveAgree(t *testing.T) {
	db := testDB(t)
	queries := []string{
		`count(doc("lib")//author)`,
		`data(doc("lib")//year)`,
		`doc("lib")//book/title/text()`,
		`count(doc("lib")/library/book/author/..)`,
		`for $b in doc("lib")/library/book for $a in doc("lib")//author return 1`,
		`string-join(for $t in doc("lib")//title return string($t), ";")`,
	}
	for _, src := range queries {
		tx, _ := db.BeginReadOnly()
		opt := NewExecCtx(tx)
		r1, err := Execute(opt, src)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := r1.String()
		naive := NewExecCtx(tx)
		naive.NoRewrite = true
		r2, err := Execute(naive, src)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := r2.String()
		tx.Rollback()
		if s1 != s2 {
			t.Errorf("%s:\nrewritten: %s\nnaive:     %s", src, s1, s2)
		}
		if !strings.Contains(src, "..") && naive.Profile.DDOOps < opt.Profile.DDOOps {
			t.Errorf("%s: naive executed fewer DDO ops (%d) than optimized (%d)",
				src, naive.Profile.DDOOps, opt.Profile.DDOOps)
		}
	}
}
