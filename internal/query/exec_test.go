package query

import (
	"strings"
	"testing"

	"sedna/internal/core"
)

const libraryXML = `<library>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author>
    <author>Hull</author>
    <author>Vianu</author>
    <year>1995</year>
  </book>
  <book>
    <title>An Introduction to Database Systems</title>
    <author>Date</author>
    <year>2004</year>
    <issue>
      <publisher>Addison-Wesley</publisher>
      <year>2004</year>
    </issue>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
    <year>1970</year>
  </paper>
</library>`

// testDB opens a database preloaded with the library document.
func testDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("lib", strings.NewReader(libraryXML)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// q executes a query in a read-only transaction and serializes the result.
func q(t *testing.T, db *core.Database, src string) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	res, err := Execute(NewExecCtx(tx), src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// upd executes an update/DDL statement in a fresh update transaction.
func upd(t *testing.T, db *core.Database, src string) *Result {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(NewExecCtx(tx), src)
	if err != nil {
		tx.Rollback()
		t.Fatalf("statement %q: %v", src, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPathQueries(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`doc("lib")/library/book/title`:                        `<title>Foundations of Databases</title><title>An Introduction to Database Systems</title>`,
		`doc("lib")/library/paper/title/text()`:                `A Relational Model for Large Shared Data Banks`,
		`doc("lib")//author[text() = "Codd"]`:                  `<author>Codd</author>`,
		`count(doc("lib")//author)`:                            `5`,
		`count(doc("lib")/library/*)`:                          `3`,
		`doc("lib")/library/book[2]/author/text()`:             `Date`,
		`doc("lib")/library/book[author = "Hull"]/year/text()`: `1995`,
		`doc("lib")//publisher/text()`:                         `Addison-Wesley`,
		`count(doc("lib")//year)`:                              `4`,
		`doc("lib")/library/book[1]/title/text()`:              `Foundations of Databases`,
		`doc("lib")/library/book[last()]/author/text()`:        `Date`,
		`count(doc("lib")/library/book/author)`:                `4`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestAxes(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`doc("lib")//publisher/parent::issue/year/text()`:                      `2004`,
		`count(doc("lib")//year/ancestor::book)`:                               `2`,
		`doc("lib")//issue/ancestor-or-self::node()[self::book]/author/text()`: `Date`,
		`doc("lib")/library/book[1]/following-sibling::paper/author/text()`:    `Codd`,
		`doc("lib")/library/paper/preceding-sibling::book[1]/author[1]/text()`: `Abiteboul`,
		`count(doc("lib")/library/book[2]/descendant::year)`:                   `2`,
		`count(doc("lib")/library/book[2]/descendant-or-self::node())`:         `12`,
		`doc("lib")//title/..[self::paper]/year/text()`:                        `1970`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	db := testDB(t)
	// Union deduplicates and orders.
	got := q(t, db, `count(doc("lib")//author | doc("lib")//author)`)
	if got != "5" {
		t.Fatalf("union dedup: %s", got)
	}
	// Parent step from many children yields each parent once.
	got = q(t, db, `count(doc("lib")/library/book/author/..)`)
	if got != "2" {
		t.Fatalf("parent dedup: %s", got)
	}
	// Results of // are in document order.
	got = q(t, db, `data(doc("lib")//year)`)
	if got != "1995 2004 2004 1970" {
		t.Fatalf("document order: %s", got)
	}
}

func TestFLWORQueries(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`for $a in doc("lib")//author return string($a)`: `Abiteboul Hull Vianu Date Codd`,
		`for $b in doc("lib")/library/book
		 where $b/year = 2004
		 return $b/title/text()`: `An Introduction to Database Systems`,
		`for $b in doc("lib")/library/book
		 let $n := count($b/author)
		 return $n`: `3 1`,
		`for $a in doc("lib")//author
		 order by $a return string($a)`: `Abiteboul Codd Date Hull Vianu`,
		`for $a in doc("lib")//author
		 order by $a descending
		 return string($a)`: `Vianu Hull Date Codd Abiteboul`,
		`for $i at $p in ("a","b","c") return $p`:                       `1 2 3`,
		`sum(for $y in doc("lib")/library/book/year return number($y))`: `3999`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestConstructors(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`<result count="{count(doc("lib")//author)}"/>`: `<result count="5"/>`,
		`<r>{doc("lib")/library/paper/title}</r>`:       `<r><title>A Relational Model for Large Shared Data Banks</title></r>`,
		`<r>{1+1}</r>`: `<r>2</r>`,
		`element res { doc("lib")//publisher/text() }`: `<res>Addison-Wesley</res>`,
		`text { "plain" }`:    `plain`,
		`<a><b>x</b><c/></a>`: `<a><b>x</b><c/></a>`,
		`for $b in doc("lib")/library/book return <short>{$b/title/text()}</short>`: `<short>Foundations of Databases</short><short>An Introduction to Database Systems</short>`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestNavigatingConstructedNodes(t *testing.T) {
	db := testDB(t)
	// Navigation into constructed content must behave like a copy.
	got := q(t, db, `
		let $r := <wrap>{doc("lib")/library/paper}</wrap>
		return count($r/paper/author)`)
	if got != "1" {
		t.Fatalf("navigation into constructed: %s", got)
	}
	got = q(t, db, `(<a><b>1</b><b>2</b></a>)/b[2]/text()`)
	if got != "2" {
		t.Fatalf("temp node predicate: %s", got)
	}
}

func TestFunctions(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`string-length("hello")`:                    `5`,
		`concat("a", "b", 1+1)`:                     `ab2`,
		`contains(doc("lib")//publisher, "Wesley")`: `true`,
		`starts-with("sedna", "sed")`:               `true`,
		`substring("database", 5)`:                  `base`,
		`substring("database", 1, 4)`:               `data`,
		`normalize-space("  a   b  ")`:              `a b`,
		`string-join(("a","b","c"), "-")`:           `a-b-c`,
		`distinct-values(doc("lib")//year/text())`:  `1995 2004 1970`,
		`min(doc("lib")//year)`:                     `1970`,
		`max(doc("lib")//year)`:                     `2004`,
		`avg((2, 4, 6))`:                            `4`,
		`not(empty(doc("lib")//paper))`:             `true`,
		`exists(doc("lib")//nonexistent)`:           `false`,
		`name(doc("lib")/library/*[3])`:             `paper`,
		`upper-case("abc")`:                         `ABC`,
		`floor(3.7)`:                                `3`,
		`ceiling(3.2)`:                              `4`,
		`round(3.5)`:                                `4`,
		`abs(-3)`:                                   `3`,
		`number("12") * 2`:                          `24`,
		`boolean("x")`:                              `true`,
		`string(doc("lib")/library/paper/year)`:     `1970`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestUserFunctions(t *testing.T) {
	db := testDB(t)
	got := q(t, db, `
		declare function local:authors($b) { count($b/author) };
		for $b in doc("lib")/library/book return local:authors($b)`)
	if got != "3 1" {
		t.Fatalf("user function: %s", got)
	}
	got = q(t, db, `
		declare variable $lib := doc("lib");
		declare function local:titles() { $lib//title };
		count(local:titles())`)
	if got != "3" {
		t.Fatalf("prolog var + function: %s", got)
	}
}

func TestOperators(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`1 + 2 * 3`:                            `7`,
		`(1 + 2) * 3`:                          `9`,
		`10 div 4`:                             `2.5`,
		`10 idiv 4`:                            `2`,
		`10 mod 3`:                             `1`,
		`-(3)`:                                 `-3`,
		`2 < 3 and 3 < 2`:                      `false`,
		`2 < 3 or 3 < 2`:                       `true`,
		`"abc" eq "abc"`:                       `true`,
		`2 lt 10`:                              `true`,
		`"2" = 2`:                              `true`,
		`count((1 to 5))`:                      `5`,
		`if (1 < 2) then "y" else "n"`:         `y`,
		`some $x in (1,2,3) satisfies $x > 2`:  `true`,
		`every $x in (1,2,3) satisfies $x > 2`: `false`,
		`count(doc("lib")//book intersect doc("lib")/library/book[1])`: `1`,
		`count(doc("lib")//book except doc("lib")/library/book[1])`:    `1`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestNodeComparisons(t *testing.T) {
	db := testDB(t)
	cases := map[string]string{
		`doc("lib")/library/book[1] is doc("lib")/library/book[1]`: `true`,
		`doc("lib")/library/book[1] is doc("lib")/library/book[2]`: `false`,
		`doc("lib")/library/book[1] << doc("lib")/library/paper`:   `true`,
		`doc("lib")/library/paper >> doc("lib")/library/book[2]`:   `true`,
	}
	for src, want := range cases {
		if got := q(t, db, src); got != want {
			t.Errorf("%s\n got: %s\nwant: %s", src, got, want)
		}
	}
}

func TestUpdateInsert(t *testing.T) {
	db := testDB(t)
	res := upd(t, db, `UPDATE insert <author>Stonebraker</author> into doc("lib")/library/book[2]`)
	if res.Updated != 1 {
		t.Fatalf("updated = %d", res.Updated)
	}
	got := q(t, db, `count(doc("lib")//author)`)
	if got != "6" {
		t.Fatalf("count after insert: %s", got)
	}
	// Inserted as last child.
	got = q(t, db, `doc("lib")/library/book[2]/author[2]/text()`)
	if got != "Stonebraker" {
		t.Fatalf("inserted author: %s", got)
	}
}

func TestUpdateInsertPrecedingFollowing(t *testing.T) {
	db := testDB(t)
	upd(t, db, `UPDATE insert <magazine><title>CACM</title></magazine> preceding doc("lib")/library/paper`)
	got := q(t, db, `name(doc("lib")/library/*[3])`)
	if got != "magazine" {
		t.Fatalf("preceding insert: %s", got)
	}
	upd(t, db, `UPDATE insert <report/> following doc("lib")/library/book[1]`)
	got = q(t, db, `name(doc("lib")/library/*[2])`)
	if got != "report" {
		t.Fatalf("following insert: %s", got)
	}
	got = q(t, db, `count(doc("lib")/library/*)`)
	if got != "5" {
		t.Fatalf("total children: %s", got)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	res := upd(t, db, `UPDATE delete doc("lib")//author[text() = "Hull"]`)
	if res.Updated != 1 {
		t.Fatalf("updated = %d", res.Updated)
	}
	got := q(t, db, `for $a in doc("lib")/library/book[1]/author return string($a)`)
	if got != "Abiteboul Vianu" {
		t.Fatalf("after delete: %s", got)
	}
	// Deleting a subtree removes descendants.
	upd(t, db, `UPDATE delete doc("lib")/library/book[2]/issue`)
	if got := q(t, db, `count(doc("lib")//publisher)`); got != "0" {
		t.Fatalf("publisher still present: %s", got)
	}
}

func TestUpdateDeleteNestedTargets(t *testing.T) {
	db := testDB(t)
	// Both the book and its issue match; reverse-order deletion must not
	// fail on the already-deleted nested target.
	res := upd(t, db, `UPDATE delete (doc("lib")/library/book[2], doc("lib")/library/book[2]/issue)`)
	if res.Updated < 1 {
		t.Fatalf("updated = %d", res.Updated)
	}
	if got := q(t, db, `count(doc("lib")/library/book)`); got != "1" {
		t.Fatalf("books left: %s", got)
	}
}

func TestUpdateReplace(t *testing.T) {
	db := testDB(t)
	upd(t, db, `UPDATE replace $p in doc("lib")/library/paper
	            with <paper><title>{$p/title/text()}</title><author>E.F. Codd</author></paper>`)
	got := q(t, db, `doc("lib")/library/paper/author/text()`)
	if got != "E.F. Codd" {
		t.Fatalf("after replace: %s", got)
	}
	got = q(t, db, `count(doc("lib")/library/paper)`)
	if got != "1" {
		t.Fatalf("paper count: %s", got)
	}
}

func TestUpdateRename(t *testing.T) {
	db := testDB(t)
	upd(t, db, `UPDATE rename doc("lib")/library/paper on article`)
	if got := q(t, db, `count(doc("lib")/library/paper)`); got != "0" {
		t.Fatalf("paper still present: %s", got)
	}
	got := q(t, db, `doc("lib")/library/article/author/text()`)
	if got != "Codd" {
		t.Fatalf("renamed element content: %s", got)
	}
	// Position preserved: article is still the third child.
	if got := q(t, db, `name(doc("lib")/library/*[3])`); got != "article" {
		t.Fatalf("rename lost position: %s", got)
	}
}

func TestUpdateVisibleOnlyAfterCommit(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	if _, err := Execute(NewExecCtx(tx), `UPDATE delete doc("lib")//paper`); err != nil {
		t.Fatal(err)
	}
	// A concurrent snapshot still sees the paper.
	if got := q(t, db, `count(doc("lib")//paper)`); got != "1" {
		t.Fatalf("snapshot sees uncommitted delete: %s", got)
	}
	tx.Rollback()
	if got := q(t, db, `count(doc("lib")//paper)`); got != "1" {
		t.Fatalf("rollback lost the paper: %s", got)
	}
}

func TestDDLAndIndexScan(t *testing.T) {
	db := testDB(t)
	res := upd(t, db, `CREATE INDEX "byauthor" ON doc("lib")/library/book BY author AS string`)
	if !strings.Contains(res.Message, "created") {
		t.Fatalf("create index: %s", res.Message)
	}
	got := q(t, db, `index-scan("byauthor", "Date")/title/text()`)
	if got != "An Introduction to Database Systems" {
		t.Fatalf("index scan: %s", got)
	}
	// Index maintenance on insert.
	upd(t, db, `UPDATE insert <book><title>New</title><author>Gray</author></book> into doc("lib")/library`)
	got = q(t, db, `index-scan("byauthor", "Gray")/title/text()`)
	if got != "New" {
		t.Fatalf("index after insert: %s", got)
	}
	// Index maintenance on delete.
	upd(t, db, `UPDATE delete doc("lib")/library/book[author = "Gray"]`)
	got = q(t, db, `count(index-scan("byauthor", "Gray"))`)
	if got != "0" {
		t.Fatalf("index after delete: %s", got)
	}
	upd(t, db, `DROP INDEX "byauthor"`)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	if _, err := Execute(NewExecCtx(tx), `index-scan("byauthor", "Date")`); err == nil {
		t.Fatal("dropped index still usable")
	}
}

func TestNumericIndex(t *testing.T) {
	db := testDB(t)
	upd(t, db, `CREATE INDEX "byyear" ON doc("lib")/library/book BY year AS number`)
	got := q(t, db, `index-scan("byyear", 1995)/title/text()`)
	if got != "Foundations of Databases" {
		t.Fatalf("numeric index scan: %s", got)
	}
}

func TestCreateDropDocumentDDL(t *testing.T) {
	db := testDB(t)
	upd(t, db, `CREATE DOCUMENT "scratch"`)
	if got := q(t, db, `count(doc("scratch")/node())`); got != "0" {
		t.Fatalf("fresh doc children: %s", got)
	}
	upd(t, db, `UPDATE insert <root><a/></root> into doc("scratch")`)
	if got := q(t, db, `count(doc("scratch")/root/a)`); got != "1" {
		t.Fatalf("insert into fresh doc: %s", got)
	}
	upd(t, db, `DROP DOCUMENT "scratch"`)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	if _, err := Execute(NewExecCtx(tx), `doc("scratch")`); err == nil {
		t.Fatal("dropped document still resolvable")
	}
}

func TestStaticErrors(t *testing.T) {
	db := testDB(t)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	for _, src := range []string{
		`$undefined`,
		`frobnicate(1)`,
		`for $x in (1,2) return $y`,
	} {
		if _, err := Execute(NewExecCtx(tx), src); err == nil {
			t.Errorf("%q: expected static error", src)
		}
	}
}

func TestReadOnlyRejectsUpdates(t *testing.T) {
	db := testDB(t)
	tx, _ := db.BeginReadOnly()
	defer tx.Rollback()
	if _, err := Execute(NewExecCtx(tx), `UPDATE delete doc("lib")//paper`); err == nil {
		t.Fatal("update in read-only transaction must fail")
	}
	if _, err := Execute(NewExecCtx(tx), `CREATE DOCUMENT "x"`); err == nil {
		t.Fatal("DDL in read-only transaction must fail")
	}
}
