package query

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
)

// qctl executes a query with explicit optimizer and worker settings.
func qctl(t *testing.T, db *core.Database, src string, noopt bool, workers int) string {
	t.Helper()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.NoOpt = noopt
	ctx.Workers = workers
	res, err := Execute(ctx, src)
	if err != nil {
		t.Fatalf("query %q (noopt=%v workers=%d): %v", src, noopt, workers, err)
	}
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// invXML builds the probe-adversarial inventory document: heavy value
// duplication (v = i mod 10), a second <v> on every third item (multi-value
// index entries), and long <name> strings that all collide within the
// fixed-size B+tree key prefix so only the recheck can tell them apart.
func invXML(items int) string {
	prefix := strings.Repeat("x", 30)
	var sb strings.Builder
	sb.WriteString("<inv>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&sb, "<item><v>%d</v>", i%10)
		if i%3 == 0 {
			fmt.Fprintf(&sb, "<v>%d</v>", (i+5)%10)
		}
		fmt.Fprintf(&sb, "<name>%s%c</name></item>", prefix, 'A'+rune(i%3))
	}
	sb.WriteString("</inv>")
	return sb.String()
}

// invDB opens a database with the inventory document and value indexes over
// both the numeric and the colliding string column.
func invDB(t *testing.T, items int) *core.Database {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("inv", strings.NewReader(invXML(items))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	upd(t, db, `CREATE INDEX "byv" ON doc("inv")//item BY v AS number`)
	upd(t, db, `CREATE INDEX "byname" ON doc("inv")//item BY name AS string`)
	return db
}

func TestAnalyzeStatement(t *testing.T) {
	db := testDB(t)
	res := upd(t, db, `ANALYZE doc("lib")`)
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "analyzed") {
		t.Fatalf("unexpected ANALYZE result: %s", s)
	}
	stats := db.Catalog().DocStats("lib")
	if stats == nil {
		t.Fatal("no DocStats recorded after ANALYZE")
	}
	if stats.AnalyzedNodes == 0 {
		t.Fatal("AnalyzedNodes is zero")
	}
	if len(stats.Cols) == 0 {
		t.Fatal("no value columns collected")
	}
	// The catalog round-trips statistics through a checkpoint.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeSampled checks the sampled ANALYZE path: a document above the
// node-count threshold builds its histograms from per-column reservoirs, the
// snapshot and the EXPLAIN output say so, column Rows reflect the true (not
// sampled) counts with a sane distinct extrapolation — and query results
// never depend on how the statistics were gathered.
func TestAnalyzeSampled(t *testing.T) {
	// ~40k nodes: well above the sampling threshold. No indexes — the
	// costed plan (and its annotation) comes from statistics alone.
	sampledDB := func(items int) *core.Database {
		db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 1024})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.LoadXML("inv", strings.NewReader(invXML(items))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := sampledDB(6000)

	res := upd(t, db, `ANALYZE doc("inv")`)
	s, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "(sampled)") {
		t.Fatalf("large-document ANALYZE not marked sampled: %s", s)
	}
	stats := db.Catalog().DocStats("inv")
	if stats == nil || !stats.Sampled {
		t.Fatalf("DocStats.Sampled not set: %+v", stats)
	}
	// The v column holds 6000 + 2000 values; sampling must still report the
	// true row count and an extrapolated distinct near the real 10.
	found := false
	for _, c := range stats.Cols {
		if c.Rows == 8000 {
			found = true
			if c.Distinct < 5 || c.Distinct > 200 {
				t.Fatalf("sampled distinct estimate off: %d (true 10)", c.Distinct)
			}
		}
	}
	if !found {
		t.Fatalf("no column reports the true row count; cols: %+v", stats.Cols)
	}

	// Results must match the unoptimized plans exactly.
	for _, src := range []string{
		`count(doc("inv")//item[v = 3])`,
		`count(doc("inv")//item[v > 7])`,
	} {
		want := qctl(t, db, src, true, 0)
		if got := qctl(t, db, src, false, 0); got != want {
			t.Errorf("sampled stats diverge for %s: got %s want %s", src, got, want)
		}
	}

	// EXPLAIN advertises that its estimates rest on a sample.
	out := q(t, db, `EXPLAIN doc("inv")//item[v = 3]`)
	if !strings.Contains(out, "sampled=true") {
		t.Fatalf("EXPLAIN missing sampled annotation:\n%s", out)
	}

	// A small document keeps the exact path and the unmarked message.
	small := sampledDB(50)
	res = upd(t, small, `ANALYZE doc("inv")`)
	if s, _ := res.String(); strings.Contains(s, "(sampled)") {
		t.Fatalf("small-document ANALYZE claims sampling: %s", s)
	}
	if st := small.Catalog().DocStats("inv"); st == nil || st.Sampled {
		t.Fatalf("small-document DocStats.Sampled set: %+v", st)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	db := testDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := Execute(NewExecCtx(tx), `ANALYZE doc("nosuch")`); err == nil {
		t.Fatal("ANALYZE of a missing document should fail")
	}
}

func TestAnalyzeEmptyAndSingleValue(t *testing.T) {
	db := testDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("empty", strings.NewReader(`<root/>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("mono", strings.NewReader(
		`<m><r><k>7</k></r><r><k>7</k></r><r><k>7</k></r></m>`)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	upd(t, db, `ANALYZE doc("empty")`)
	upd(t, db, `ANALYZE doc("mono")`)
	es := db.Catalog().DocStats("empty")
	if es == nil || es.AnalyzedNodes == 0 {
		t.Fatalf("empty doc stats: %+v", es)
	}
	if len(es.Cols) != 0 {
		t.Fatalf("empty doc should have no value columns, got %d", len(es.Cols))
	}
	ms := db.Catalog().DocStats("mono")
	if ms == nil || len(ms.Cols) == 0 {
		t.Fatal("mono doc collected no columns")
	}
	for _, c := range ms.Cols {
		if c.Distinct != 1 {
			t.Fatalf("single-value column distinct=%d", c.Distinct)
		}
	}
	// Queries over both stay correct with fresh statistics attached.
	if got := q(t, db, `count(doc("mono")//k[. = 7])`); got != "3" {
		t.Fatalf("mono query under stats: %s", got)
	}
	if got := q(t, db, `count(doc("empty")//missing)`); got != "0" {
		t.Fatalf("empty query under stats: %s", got)
	}
}

// TestProbeByteIdentity is the auto-rewrite regression gate: every eligible
// comparison over the indexed paths must serialize byte-identically whether
// it runs as a structural scan (optimizer off), an optimized serial plan, or
// an optimized plan at four workers — across duplicates, multi-value nodes,
// colliding key prefixes and empty results.
func TestProbeByteIdentity(t *testing.T) {
	db := invDB(t, 600)
	prefix := strings.Repeat("x", 30)
	queries := []string{
		`count(doc("inv")//item[v = 3])`,
		`doc("inv")//item[v = 3]/name/text()`,
		`count(doc("inv")//item[3 = v])`,
		`count(doc("inv")//item[v > 7])`,
		`count(doc("inv")//item[v >= 9])`,
		`count(doc("inv")//item[v < 1])`,
		`count(doc("inv")//item[v <= 2])`,
		`count(doc("inv")//item[v = 11])`,
		`count(doc("inv")//item[name = "` + prefix + `A"])`,
		`doc("inv")//item[name = "` + prefix + `B"][v = 4]/v/text()`,
		`count(doc("inv")//item[v = 5][name = "` + prefix + `C"])`,
	}
	before := db.Metrics().Snapshot().Counters["opt.index_probes"]
	for _, src := range queries {
		want := qctl(t, db, src, true, 0) // optimizer off: plain evaluation
		if got := qctl(t, db, src, false, 0); got != want {
			t.Errorf("optimized serial diverges for %s\n got: %.200s\nwant: %.200s", src, got, want)
		}
		if got := qctl(t, db, src, false, 4); got != want {
			t.Errorf("optimized parallel diverges for %s\n got: %.200s\nwant: %.200s", src, got, want)
		}
	}
	after := db.Metrics().Snapshot().Counters["opt.index_probes"]
	if after == before {
		t.Fatal("no query actually executed an index probe")
	}
}

// TestProbeAfterAnalyze re-runs the identity suite with histograms present:
// selectivity estimates change which alternative wins, results must not.
func TestProbeAfterAnalyze(t *testing.T) {
	db := invDB(t, 600)
	upd(t, db, `ANALYZE doc("inv")`)
	queries := []string{
		`count(doc("inv")//item[v = 3])`,
		`count(doc("inv")//item[v > 7])`,
		`count(doc("inv")//item[v = 11])`,
		`doc("inv")//item[v = 9]/name/text()`,
	}
	for _, src := range queries {
		want := qctl(t, db, src, true, 0)
		if got := qctl(t, db, src, false, 0); got != want {
			t.Errorf("analyzed plan diverges for %s\n got: %.200s\nwant: %.200s", src, got, want)
		}
	}
}

func TestExplainShowsCosts(t *testing.T) {
	db := invDB(t, 600)
	upd(t, db, `ANALYZE doc("inv")`)
	out := q(t, db, `EXPLAIN doc("inv")//item[v = 3]`)
	for _, want := range []string{"costs:", "index-probe", "structural-scan", "✓", "est rows", "plan="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	// Optimizer off: the same EXPLAIN must not carry a costs table.
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.NoOpt = true
	res, err := Execute(ctx, `EXPLAIN doc("inv")//item[v = 3]`)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.String()
	if strings.Contains(s, "costs:") {
		t.Fatalf("NoOpt EXPLAIN still shows costs:\n%s", s)
	}
}

func TestProfileShowsEstimatedRows(t *testing.T) {
	db := invDB(t, 600)
	upd(t, db, `ANALYZE doc("inv")`)
	out := q(t, db, `PROFILE count(doc("inv")//item[v = 3])`)
	if !strings.Contains(out, "est_rows=") {
		t.Fatalf("PROFILE missing est_rows:\n%s", out)
	}
	m := db.Metrics().Snapshot()
	if m.Counters["opt.plans_costed"] == 0 {
		t.Fatal("opt.plans_costed never incremented")
	}
	if _, ok := m.Histograms["opt.est_error_pct"]; !ok {
		t.Fatal("opt.est_error_pct histogram missing")
	}
}

// TestSkewAwarePlanChoice pins the histogram actually steering the choice: on
// a skewed column the frequent value scans, the rare value probes.
func TestSkewAwarePlanChoice(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var sb strings.Builder
	sb.WriteString("<inv>")
	for i := 0; i < 600; i++ {
		v := 1
		if i%20 == 0 {
			v = 100 + i // rare long tail
		}
		fmt.Fprintf(&sb, "<item><v>%d</v></item>", v)
	}
	sb.WriteString("</inv>")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("inv", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	upd(t, db, `CREATE INDEX "byv" ON doc("inv")//item BY v AS number`)
	upd(t, db, `ANALYZE doc("inv")`)
	frequent := q(t, db, `EXPLAIN doc("inv")//item[v = 1]`)
	if !strings.Contains(frequent, "plan=structural-scan") {
		t.Errorf("frequent value should scan:\n%s", frequent)
	}
	rare := q(t, db, `EXPLAIN doc("inv")//item[v = 100]`)
	if !strings.Contains(rare, "plan=index-probe") {
		t.Errorf("rare value should probe:\n%s", rare)
	}
	// And both answers stay correct either way.
	if got := q(t, db, `count(doc("inv")//item[v = 1])`); got != "570" {
		t.Fatalf("frequent count: %s", got)
	}
	if got := q(t, db, `count(doc("inv")//item[v = 100])`); got != "1" {
		t.Fatalf("rare count: %s", got)
	}
}

// TestStalenessDisablesPlanning: heavy updates after ANALYZE push the
// staleness clock past the threshold; the optimizer then refuses to plan
// from the dead histograms.
func TestStalenessDisablesPlanning(t *testing.T) {
	db := testDB(t)
	upd(t, db, `ANALYZE doc("lib")`)
	if out := q(t, db, `EXPLAIN doc("lib")//author`); !strings.Contains(out, "costs:") {
		t.Fatalf("fresh stats should produce a costed plan:\n%s", out)
	}
	for i := 0; i < 30; i++ {
		upd(t, db, `UPDATE insert <author>Churn</author> into doc("lib")/library/paper`)
	}
	if out := q(t, db, `EXPLAIN doc("lib")//author`); strings.Contains(out, "costs:") {
		t.Fatalf("stale stats should disable planning:\n%s", out)
	}
	// Re-analyzing restores planning.
	upd(t, db, `ANALYZE doc("lib")`)
	if out := q(t, db, `EXPLAIN doc("lib")//author`); !strings.Contains(out, "costs:") {
		t.Fatalf("re-ANALYZE should restore the costed plan:\n%s", out)
	}
}

// TestAnalyzeConcurrentCommits races ANALYZE against committing writers; the
// lock manager serializes them, and neither side may corrupt the other
// (run under -race).
func TestAnalyzeConcurrentCommits(t *testing.T) {
	db := testDB(t)
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 64)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			tx, err := db.Begin()
			if err != nil {
				errs <- err
				return
			}
			if _, err := Execute(NewExecCtx(tx), `UPDATE insert <author>W</author> into doc("lib")/library/paper`); err != nil {
				tx.Rollback()
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			tx, err := db.Begin()
			if err != nil {
				errs <- err
				return
			}
			if _, err := Execute(NewExecCtx(tx), `ANALYZE doc("lib")`); err != nil {
				tx.Rollback()
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Catalog().DocStats("lib") == nil {
		t.Fatal("stats lost after concurrent ANALYZE")
	}
}

// TestAnalyzeRollback: a rolled-back ANALYZE restores the previous snapshot.
func TestAnalyzeRollback(t *testing.T) {
	db := testDB(t)
	upd(t, db, `ANALYZE doc("lib")`)
	first := db.Catalog().DocStats("lib")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(NewExecCtx(tx), `ANALYZE doc("lib")`); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if got := db.Catalog().DocStats("lib"); got != first {
		t.Fatalf("rollback did not restore the previous stats snapshot: %p vs %p", got, first)
	}
}

// TestResidencyAdvisor: with the global resident switch OFF, an analyzed
// document that crosses the access threshold is promoted to the resident
// cache by the advisor alone.
func TestResidencyAdvisor(t *testing.T) {
	db := testDB(t)
	upd(t, db, `ANALYZE doc("lib")`)
	if db.Resident() {
		t.Fatal("precondition: global resident mode must be off")
	}
	for i := 0; i < 40; i++ {
		q(t, db, `count(doc("lib")//author)`)
	}
	if !db.ResidentCache().Contains("lib") {
		t.Fatal("advisor did not promote a hot analyzed document")
	}
	// Promotion must not change results.
	if got := q(t, db, `doc("lib")//author[text() = "Codd"]`); got != `<author>Codd</author>` {
		t.Fatalf("resident result diverged: %s", got)
	}
	// An update churns the stats clock and accesses reset on staleness; a
	// cold document without stats must never be promoted.
	if db.ResidentCache().Contains("nosuchdoc") {
		t.Fatal("cache contains a document that was never loaded")
	}
}

// TestOptimizedCorpusIdentity runs the full parallel property corpus with
// fresh statistics on every document: plans (serial-forced, fanned out,
// probed) must never change any serialization.
func TestOptimizedCorpusIdentity(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	for _, name := range []string{"cat", "biglib", "site", "deep"} {
		upd(t, db, fmt.Sprintf(`ANALYZE doc(%q)`, name))
	}
	for _, src := range parallelPropertyQueries {
		want := qctl(t, db, src, true, 0)
		if got := qctl(t, db, src, false, 0); got != want {
			t.Errorf("optimized serial diverges for %s\n got: %.200s\nwant: %.200s", src, got, want)
		}
		if got := qctl(t, db, src, false, 4); got != want {
			t.Errorf("optimized parallel diverges for %s\n got: %.200s\nwant: %.200s", src, got, want)
		}
	}
	m := db.Metrics().Snapshot()
	if m.Counters["opt.plans_costed"] == 0 {
		t.Fatal("corpus run costed no plans despite fresh stats")
	}
}

// TestMultiValueIndexEntries pins the index build/maintenance fix: a node
// with several BY-path values is reachable through each of them.
func TestMultiValueIndexEntries(t *testing.T) {
	db := testDB(t)
	upd(t, db, `CREATE INDEX "byauthor" ON doc("lib")/library/book BY author AS string`)
	// Book 1 has three authors; the pre-fix build indexed only the first.
	for _, a := range []string{"Abiteboul", "Hull", "Vianu"} {
		got := q(t, db, fmt.Sprintf(`index-scan("byauthor", %q)/title/text()`, a))
		if got != "Foundations of Databases" {
			t.Errorf("index-scan(%q): %s", a, got)
		}
	}
	// Maintenance: adding a later author updates the index too.
	upd(t, db, `UPDATE insert <author>Gray</author> into doc("lib")/library/book[2]`)
	if got := q(t, db, `index-scan("byauthor", "Gray")/title/text()`); got != "An Introduction to Database Systems" {
		t.Errorf("post-insert index-scan: %s", got)
	}
}
