package query

import (
	"testing"
)

func mustParse(t *testing.T, src string) *Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func TestParseSimplePaths(t *testing.T) {
	for _, src := range []string{
		`doc("lib")/library/book/title`,
		`doc("lib")//author`,
		`/library/book`,
		`//book/title/text()`,
		`doc("lib")/library/book[1]`,
		`doc("lib")/library/book[author = "Date"]/title`,
		`doc("lib")/library/*`,
		`doc("lib")//book/@isbn`,
		`doc("lib")/library/book/..`,
		`doc("lib")//node()`,
		`doc("lib")/child::library/descendant::author`,
		`doc("lib")/library/book/ancestor-or-self::node()`,
		`doc("lib")/library/book/following-sibling::paper`,
	} {
		st := mustParse(t, src)
		if st.Query == nil {
			t.Fatalf("%q: not parsed as query", src)
		}
	}
}

func TestParsePathShape(t *testing.T) {
	st := mustParse(t, `doc("lib")/library/book`)
	step, ok := st.Query.(*Step)
	if !ok || step.Axis != AxisChild || step.Test.Name != "book" {
		t.Fatalf("outer step = %#v", st.Query)
	}
	inner, ok := step.Input.(*Step)
	if !ok || inner.Test.Name != "library" {
		t.Fatalf("inner step = %#v", step.Input)
	}
	if _, ok := inner.Input.(*DocCall); !ok {
		t.Fatalf("head = %#v", inner.Input)
	}
	if !step.NeedDDO {
		t.Fatal("parser must mark steps as needing DDO; the rewriter clears it")
	}
}

func TestParseDoubleSlashExpansion(t *testing.T) {
	st := mustParse(t, `doc("lib")//author`)
	// //author expands to descendant-or-self::node()/child::author.
	outer := st.Query.(*Step)
	if outer.Axis != AxisChild || outer.Test.Name != "author" {
		t.Fatalf("outer = %#v", outer)
	}
	dos := outer.Input.(*Step)
	if dos.Axis != AxisDescendantOrSelf || dos.Test.Kind != TestNode {
		t.Fatalf("dos = %#v", dos)
	}
}

func TestParseFLWOR(t *testing.T) {
	st := mustParse(t, `
		for $b in doc("lib")/library/book
		let $t := $b/title
		where $b/author = "Date"
		order by $t descending
		return <result>{$t}</result>`)
	f, ok := st.Query.(*FLWOR)
	if !ok {
		t.Fatalf("not FLWOR: %#v", st.Query)
	}
	if len(f.Clauses) != 2 || f.Clauses[0].Let || !f.Clauses[1].Let {
		t.Fatalf("clauses = %#v", f.Clauses)
	}
	if f.Where == nil || len(f.OrderBy) != 1 || !f.OrderBy[0].Descending {
		t.Fatal("where/order-by lost")
	}
	if _, ok := f.Return.(*ElementCtor); !ok {
		t.Fatalf("return = %#v", f.Return)
	}
}

func TestParseForAt(t *testing.T) {
	st := mustParse(t, `for $x at $i in (1,2,3) return $i`)
	f := st.Query.(*FLWOR)
	if f.Clauses[0].PosVar != "i" {
		t.Fatalf("posvar = %q", f.Clauses[0].PosVar)
	}
}

func TestParseQuantified(t *testing.T) {
	st := mustParse(t, `some $x in (1,2) satisfies $x = 2`)
	q := st.Query.(*Quantified)
	if q.Every || q.Var != "x" {
		t.Fatalf("q = %#v", q)
	}
	st = mustParse(t, `every $x in (1,2) satisfies $x > 0`)
	if !st.Query.(*Quantified).Every {
		t.Fatal("every lost")
	}
}

func TestParseIfAndOperators(t *testing.T) {
	st := mustParse(t, `if (1 < 2 and 3 >= 2 or not(true())) then "a" else 1 + 2 * 3`)
	ife := st.Query.(*IfExpr)
	add := ife.Else.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("else = %#v", ife.Else)
	}
	if add.Right.(*Binary).Op != OpMul {
		t.Fatal("precedence wrong: * must bind tighter than +")
	}
}

func TestParseValueAndNodeComparisons(t *testing.T) {
	for src, op := range map[string]BinOp{
		`1 eq 1`:   OpVEq,
		`1 lt 2`:   OpVLt,
		`$a is $b`: OpIs,
		`$a << $b`: OpBefore,
		`$a >> $b`: OpAfter,
	} {
		st := mustParse(t, src)
		if st.Query.(*Binary).Op != op {
			t.Fatalf("%q: op = %v", src, st.Query.(*Binary).Op)
		}
	}
}

func TestParseConstructors(t *testing.T) {
	st := mustParse(t, `<book year="2004" id="{1+2}">text {1+1} <nested/>more</book>`)
	c := st.Query.(*ElementCtor)
	if c.Name != "book" || len(c.Attrs) != 2 {
		t.Fatalf("ctor = %#v", c)
	}
	if len(c.Attrs[1].Value) != 1 {
		t.Fatalf("attr value parts = %#v", c.Attrs[1].Value)
	}
	if _, ok := c.Attrs[1].Value[0].(*Binary); !ok {
		t.Fatalf("embedded attr expr = %#v", c.Attrs[1].Value[0])
	}
	// Content: text "text ", {1+1}, <nested/>, text "more".
	if len(c.Content) != 4 {
		t.Fatalf("content = %d items: %#v", len(c.Content), c.Content)
	}
}

func TestParseComputedConstructors(t *testing.T) {
	st := mustParse(t, `element res { 1, 2 }`)
	c := st.Query.(*ElementCtor)
	if c.Name != "res" || len(c.Content) != 1 {
		t.Fatalf("ctor = %#v", c)
	}
	st = mustParse(t, `text { "hi" }`)
	if _, ok := st.Query.(*TextCtor); !ok {
		t.Fatalf("text ctor = %#v", st.Query)
	}
}

func TestParseNestedConstructorWithQuery(t *testing.T) {
	st := mustParse(t, `<r>{for $x in //a return <i>{$x/text()}</i>}</r>`)
	c := st.Query.(*ElementCtor)
	if len(c.Content) != 1 {
		t.Fatalf("content = %#v", c.Content)
	}
	if _, ok := c.Content[0].(*FLWOR); !ok {
		t.Fatalf("inner = %#v", c.Content[0])
	}
}

func TestParseEscapes(t *testing.T) {
	st := mustParse(t, `<a>x {{literal}} &amp; y</a>`)
	c := st.Query.(*ElementCtor)
	tc := c.Content[0].(*TextCtor)
	lit := tc.Content.(*Literal)
	if lit.String != "x {literal} & y" {
		t.Fatalf("text = %q", lit.String)
	}
}

func TestParseProlog(t *testing.T) {
	st := mustParse(t, `
		declare variable $base := 10;
		declare function local:double($x) { $x * 2 };
		local:double($base)`)
	if len(st.Prolog.Vars) != 1 || st.Prolog.Vars[0].Var != "base" {
		t.Fatalf("vars = %#v", st.Prolog.Vars)
	}
	f := st.Prolog.Funcs["local:double"]
	if f == nil || len(f.Params) != 1 {
		t.Fatalf("funcs = %#v", st.Prolog.Funcs)
	}
}

func TestParseUpdateStatements(t *testing.T) {
	st := mustParse(t, `UPDATE insert <author>New</author> into doc("lib")/library/book[1]`)
	if st.Update == nil || st.Update.Kind != UpdInsertInto {
		t.Fatalf("update = %#v", st.Update)
	}
	st = mustParse(t, `UPDATE delete doc("lib")//paper`)
	if st.Update.Kind != UpdDelete {
		t.Fatal("delete lost")
	}
	st = mustParse(t, `UPDATE replace $b in doc("lib")//book with <book>{$b/title}</book>`)
	if st.Update.Kind != UpdReplace || st.Update.Var != "b" {
		t.Fatalf("replace = %#v", st.Update)
	}
	st = mustParse(t, `UPDATE rename doc("lib")//paper on article`)
	if st.Update.Kind != UpdRename || st.Update.Name != "article" {
		t.Fatalf("rename = %#v", st.Update)
	}
	st = mustParse(t, `UPDATE insert <x/> preceding doc("lib")//book[1]`)
	if st.Update.Kind != UpdInsertPreceding {
		t.Fatal("preceding lost")
	}
}

func TestParseDDLStatements(t *testing.T) {
	st := mustParse(t, `CREATE DOCUMENT "books"`)
	if st.DDL == nil || st.DDL.Kind != DDLCreateDocument || st.DDL.Name != "books" {
		t.Fatalf("ddl = %#v", st.DDL)
	}
	st = mustParse(t, `DROP DOCUMENT "books"`)
	if st.DDL.Kind != DDLDropDocument {
		t.Fatal("drop lost")
	}
	st = mustParse(t, `CREATE INDEX "titles" ON doc("lib")/library/book BY title AS string`)
	d := st.DDL
	if d.Kind != DDLCreateIndex || d.DocName != "lib" || d.AsType != "string" {
		t.Fatalf("index ddl = %#v", d)
	}
	st = mustParse(t, `DROP INDEX "titles"`)
	if st.DDL.Kind != DDLDropIndex {
		t.Fatal("drop index lost")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`for in x return 1`,
		`doc(unquoted)`,
		`<a><b></a>`,
		`1 +`,
		`"unterminated`,
		`(: unterminated comment`,
		`UPDATE frobnicate x`,
		`doc("x")/`,
		``,
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q: expected parse error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, `(: outer (: nested :) still :) 1 + (: mid :) 2`)
	if st.Query.(*Binary).Op != OpAdd {
		t.Fatal("comments broke parsing")
	}
}

func TestParseRangeAndSequence(t *testing.T) {
	st := mustParse(t, `(1 to 5, 7)`)
	seq := st.Query.(*Sequence)
	if len(seq.Items) != 2 {
		t.Fatalf("seq = %#v", seq)
	}
	if seq.Items[0].(*Binary).Op != OpTo {
		t.Fatal("range lost")
	}
}

func TestParseUnionIntersectExcept(t *testing.T) {
	st := mustParse(t, `$a | $b intersect $c except $d`)
	b := st.Query.(*Binary)
	if b.Op != OpUnion {
		t.Fatalf("top = %v", b.Op)
	}
}

func TestParseEmptySequence(t *testing.T) {
	st := mustParse(t, `()`)
	if s, ok := st.Query.(*Sequence); !ok || len(s.Items) != 0 {
		t.Fatalf("empty seq = %#v", st.Query)
	}
}

func TestDDLIndexRequiresDoc(t *testing.T) {
	if _, err := Parse(`CREATE INDEX "i" ON /library/book BY title`); err == nil {
		t.Fatal("index on non-doc path must fail")
	}
}
