package query

import (
	"fmt"
	"math"
	"sort"

	"sedna/internal/lock"
	"sedna/internal/metrics"
	"sedna/internal/storage"
)

// ExecStats counts executor events; the E5/E8/E9 experiments read them. It
// lives in the metrics package (embedded in QueryProfile) so each event is
// accounted once; the alias keeps the query-level name.
type ExecStats = metrics.ExecStats

// env is the dynamic evaluation context: storage access plus variable
// bindings (an immutable chain so extension is O(1)).
type env struct {
	ctx  *ExecCtx
	r    storage.Reader
	vars *binding
}

type binding struct {
	name string
	val  []Item
	next *binding
}

func (e *env) bind(name string, val []Item) *env {
	ne := *e
	ne.vars = &binding{name: name, val: val, next: e.vars}
	return &ne
}

func (e *env) lookup(name string) ([]Item, bool) {
	for b := e.vars; b != nil; b = b.next {
		if b.name == name {
			return b.val, true
		}
	}
	return nil, false
}

// focus is the context item, position and size for predicate and path
// evaluation.
type focus struct {
	item Item
	pos  int
	size int
}

// eval evaluates an expression to a materialized item sequence. The
// executor materializes at expression granularity; the open-next-close
// pipeline of physical steps lives inside path evaluation, where Sedna's
// design concentrates it.
func eval(x Expr, e *env, f *focus) ([]Item, error) {
	switch n := x.(type) {
	case *Literal:
		if n.IsString {
			return []Item{str(n.String)}, nil
		}
		return []Item{num(n.Number)}, nil

	case *VarRef:
		v, ok := e.lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("query: undefined variable $%s", n.Name)
		}
		return v, nil

	case *ContextItem:
		if f == nil || f.item == nil {
			return nil, fmt.Errorf("query: no context item")
		}
		return []Item{f.item}, nil

	case *Root:
		if f == nil || f.item == nil {
			return nil, fmt.Errorf("query: '/' requires a context node")
		}
		ni, ok := f.item.(*NodeItem)
		if !ok {
			return nil, fmt.Errorf("query: '/' requires a stored context node")
		}
		root, err := e.storeFor(ni.Doc).root(e, ni.Doc)
		if err != nil {
			return nil, err
		}
		return []Item{&NodeItem{Doc: ni.Doc, D: root}}, nil

	case *DocCall:
		return evalDoc(e, n.Name)

	case *Step:
		return evalStep(n, e, f)

	case *Filter:
		in, err := eval(n.Input, e, f)
		if err != nil {
			return nil, err
		}
		return applyPredicates(in, n.Preds, e)

	case *Sequence:
		var out []Item
		for _, it := range n.Items {
			v, err := eval(it, e, f)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil

	case *Binary:
		return evalBinary(n, e, f)

	case *Unary:
		v, err := eval(n.X, e, f)
		if err != nil {
			return nil, err
		}
		a, err := singletonNumber(e, v)
		if err != nil {
			return nil, err
		}
		if a == nil {
			return nil, nil
		}
		return []Item{num(-a.NumberValue())}, nil

	case *IfExpr:
		c, err := eval(n.Cond, e, f)
		if err != nil {
			return nil, err
		}
		b, err := ebv(c)
		if err != nil {
			return nil, err
		}
		if b {
			return eval(n.Then, e, f)
		}
		return eval(n.Else, e, f)

	case *Quantified:
		seq, err := eval(n.Seq, e, f)
		if err != nil {
			return nil, err
		}
		for _, it := range seq {
			v, err := eval(n.Pred, e.bind(n.Var, []Item{it}), f)
			if err != nil {
				return nil, err
			}
			b, err := ebv(v)
			if err != nil {
				return nil, err
			}
			if n.Every && !b {
				return []Item{boolean(false)}, nil
			}
			if !n.Every && b {
				return []Item{boolean(true)}, nil
			}
		}
		return []Item{boolean(n.Every)}, nil

	case *FLWOR:
		return evalFLWOR(n, e, f)

	case *FuncCall:
		return evalFuncCall(n, e, f)

	case *ElementCtor:
		t, err := evalElementCtor(n, e, f)
		if err != nil {
			return nil, err
		}
		return []Item{&TempItem{N: t}}, nil

	case *TextCtor:
		v, err := eval(n.Content, e, f)
		if err != nil {
			return nil, err
		}
		s, err := atomizedString(e, v, " ")
		if err != nil {
			return nil, err
		}
		t := e.ctx.newTempNode(kindText(), "")
		t.Text = s
		return []Item{&TempItem{N: t}}, nil

	case *CommentCtor:
		v, err := eval(n.Content, e, f)
		if err != nil {
			return nil, err
		}
		s, err := atomizedString(e, v, " ")
		if err != nil {
			return nil, err
		}
		t := e.ctx.newTempNode(kindComment(), "")
		t.Text = s
		return []Item{&TempItem{N: t}}, nil

	default:
		return nil, fmt.Errorf("query: cannot evaluate %T", x)
	}
}

// evalDoc resolves doc("name"): it locks the document in shared mode for
// update transactions (read-only transactions read their snapshot without
// locking, §6.3) and returns the document node.
func evalDoc(e *env, name string) ([]Item, error) {
	tx := e.ctx.Tx
	doc, err := tx.Document(name)
	if err != nil {
		return nil, err
	}
	if !tx.ReadOnly() {
		mode := lock.Shared
		if e.ctx.updateStmt {
			// Update statements lock their documents exclusively from the
			// start: the target selection would otherwise take a shared
			// lock whose later upgrade deadlocks with a concurrent updater.
			mode = lock.Exclusive
		}
		if err := tx.LockDocument(name, mode); err != nil {
			return nil, err
		}
	}
	root, err := e.storeFor(doc).root(e, doc)
	if err != nil {
		return nil, err
	}
	return []Item{&NodeItem{Doc: doc, D: root}}, nil
}

// evalStep evaluates a location step: for every context node the axis
// produces matches in document order, predicates filter per context, and a
// final DDO pass runs only when the rewriter could not prove it redundant.
// evalStep is the physical location-step operator. When a trace is open it
// wraps the evaluation in a span reporting nodes yielded and pages touched
// (including nested input steps); the disabled path costs one nil check.
func evalStep(s *Step, e *env, f *focus) ([]Item, error) {
	if e.ctx.span == nil {
		out, err := evalStepInner(s, e, f)
		if err == nil && s.Plan != nil {
			recordEstimate(e.ctx, s.Plan.EstRows, len(out))
		}
		return out, err
	}
	sp := e.ctx.pushSpan("step " + stepText(s))
	var pages0 uint64
	if e.ctx.Tx != nil {
		pages0 = e.ctx.Tx.PagesTouched()
	}
	out, err := evalStepInner(s, e, f)
	sp.SetInt("nodes", int64(len(out)))
	if e.ctx.Tx != nil {
		sp.SetInt("pages", int64(e.ctx.Tx.PagesTouched()-pages0))
	}
	if s.Structural {
		sp.SetStr("mode", "structural")
	}
	if s.Plan != nil {
		// Estimated vs actual rows: the misestimate is visible per step in
		// PROFILE and aggregated in the opt.est_error_pct histogram.
		sp.SetInt("est_rows", int64(s.Plan.EstRows+0.5))
		if err == nil {
			recordEstimate(e.ctx, s.Plan.EstRows, len(out))
		}
	}
	if k := e.ctx.storageKind(out); k != "" {
		sp.SetStr("storage", k)
	}
	e.ctx.popSpan(sp)
	return out, err
}

func evalStepInner(s *Step, e *env, f *focus) ([]Item, error) {
	if s.Plan != nil && s.Plan.Probe != nil {
		out, handled, err := evalIndexProbe(s, e)
		if err != nil {
			return nil, err
		}
		if handled {
			return out, nil
		}
		// Index or document vanished since planning: fall through to the
		// ordinary evaluation paths.
	}
	if s.Structural {
		return evalStructural(s, e, f)
	}
	var input []Item
	var err error
	if s.Input == nil {
		if f == nil || f.item == nil {
			return nil, fmt.Errorf("query: step without context")
		}
		input = []Item{f.item}
	} else {
		input, err = eval(s.Input, e, f)
		if err != nil {
			return nil, err
		}
	}
	var out []Item
	for _, it := range input {
		// Axis-step boundary: one killed check per context node.
		if err := e.ctx.checkKilled(); err != nil {
			return nil, err
		}
		var local []Item
		switch n := it.(type) {
		case *NodeItem:
			local, err = axisStored(e, n, s.Axis, s.Test, nil)
			if err != nil {
				return nil, err
			}
		case *TempItem:
			local, err = axisTemp(e, n.N, s.Axis, s.Test, nil)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("query: path step over an atomic value")
		}
		local, err = applyPredicates(local, s.Preds, e)
		if err != nil {
			return nil, err
		}
		out = append(out, local...)
	}
	if s.NeedDDO && len(out) > 1 {
		e.ctx.stats().AddDDOOps(1)
		return ddo(out)
	}
	return out, nil
}

// applyPredicates filters items with XPath predicate semantics: a numeric
// predicate value selects by position, anything else by effective boolean
// value, with position() and last() available through the focus.
func applyPredicates(items []Item, preds []Expr, e *env) ([]Item, error) {
	for _, p := range preds {
		var kept []Item
		n := len(items)
		for i, it := range items {
			if err := e.ctx.checkKilled(); err != nil {
				return nil, err
			}
			pf := &focus{item: it, pos: i + 1, size: n}
			v, err := eval(p, e, pf)
			if err != nil {
				return nil, err
			}
			keep := false
			if len(v) == 1 {
				if a, ok := v[0].(*Atomic); ok && a.Kind == AtomNumber {
					keep = float64(i+1) == a.F
					if keep {
						kept = append(kept, it)
					}
					continue
				}
			}
			keep, err = ebv(v)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}

// flworTuple is one tuple of the FLWOR tuple stream: the return items plus
// the order-by keys evaluated in the tuple's scope.
type flworTuple struct {
	items []Item
	keys  []*Atomic
}

// evalFLWOR evaluates for/let/where/order-by/return with nested-loop
// semantics; lazy clauses (§5.1.3) evaluate their binding sequence once and
// reuse it across outer iterations. When the first clause is a for-clause
// whose body is safe for concurrent evaluation, the bindings fan out over
// the statement's worker pool (parallelFLWOR) with an order-preserving
// gather; the nested loop below remains the serial path and the semantic
// reference.
func evalFLWOR(fl *FLWOR, e *env, f *focus) ([]Item, error) {
	var results []flworTuple

	var run func(i int, e *env, sink *[]flworTuple) error
	run = func(i int, e *env, sink *[]flworTuple) error {
		if i == len(fl.Clauses) {
			if fl.Where != nil {
				v, err := eval(fl.Where, e, f)
				if err != nil {
					return err
				}
				b, err := ebv(v)
				if err != nil {
					return err
				}
				if !b {
					return nil
				}
			}
			var keys []*Atomic
			for _, spec := range fl.OrderBy {
				v, err := eval(spec.Key, e, f)
				if err != nil {
					return err
				}
				var a *Atomic
				if len(v) > 0 {
					a, err = atomize(e, v[0])
					if err != nil {
						return err
					}
				}
				keys = append(keys, a)
			}
			v, err := eval(fl.Return, e, f)
			if err != nil {
				return err
			}
			*sink = append(*sink, flworTuple{items: v, keys: keys})
			return nil
		}
		cl := fl.Clauses[i]
		seq, err := evalClauseSeq(cl, e, f)
		if err != nil {
			return err
		}
		if cl.Let {
			return run(i+1, e.bind(cl.Var, seq), sink)
		}
		for pos, it := range seq {
			// FLWOR iteration boundary: a KILL lands here even when each
			// individual binding is cheap (wide cross joins).
			if err := e.ctx.checkKilled(); err != nil {
				return err
			}
			ne := e.bind(cl.Var, []Item{it})
			if cl.PosVar != "" {
				ne = ne.bind(cl.PosVar, []Item{num(float64(pos + 1))})
			}
			if err := run(i+1, ne, sink); err != nil {
				return err
			}
		}
		return nil
	}
	handled, err := parallelFLWOR(fl, e, f, run, &results)
	if err != nil {
		return nil, err
	}
	if !handled {
		if err := run(0, e, &results); err != nil {
			return nil, err
		}
	}

	if len(fl.OrderBy) > 0 {
		specs := fl.OrderBy
		sort.SliceStable(results, func(a, b int) bool {
			for k := range specs {
				ka, kb := results[a].keys[k], results[b].keys[k]
				c := compareKeys(ka, kb)
				if c == 0 {
					continue
				}
				if specs[k].Descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	var out []Item
	for _, r := range results {
		out = append(out, r.items...)
	}
	return out, nil
}

// evalClauseSeq evaluates a for/let binding sequence, honouring the lazy
// flag by caching the first evaluation (§5.1.3).
func evalClauseSeq(cl *ForClause, e *env, f *focus) ([]Item, error) {
	if cl.Lazy {
		if v, ok := e.ctx.lazyLookup(cl.CacheID); ok {
			e.ctx.stats().AddLazyHits(1)
			return v, nil
		}
	}
	v, err := eval(cl.Seq, e, f)
	if err != nil {
		return nil, err
	}
	if cl.Lazy {
		e.ctx.lazyStore(cl.CacheID, v)
	}
	return v, nil
}

// compareKeys orders two order-by keys; empty sequence sorts first.
func compareKeys(a, b *Atomic) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	if a.Kind == AtomNumber || b.Kind == AtomNumber {
		av, bv := a.NumberValue(), b.NumberValue()
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	}
	as, bs := a.StringValue(), b.StringValue()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

func evalBinary(n *Binary, e *env, f *focus) ([]Item, error) {
	switch n.Op {
	case OpOr, OpAnd:
		l, err := eval(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		lb, err := ebv(l)
		if err != nil {
			return nil, err
		}
		if n.Op == OpOr && lb {
			return []Item{boolean(true)}, nil
		}
		if n.Op == OpAnd && !lb {
			return []Item{boolean(false)}, nil
		}
		r, err := eval(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		rb, err := ebv(r)
		if err != nil {
			return nil, err
		}
		return []Item{boolean(rb)}, nil

	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		// General comparison: existential over atomized operands.
		l, err := eval(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		for _, li := range l {
			la, err := atomize(e, li)
			if err != nil {
				return nil, err
			}
			for _, ri := range r {
				ra, err := atomize(e, ri)
				if err != nil {
					return nil, err
				}
				ok, err := compareAtomic(n.Op, la, ra)
				if err != nil {
					return nil, err
				}
				if ok {
					return []Item{boolean(true)}, nil
				}
			}
		}
		return []Item{boolean(false)}, nil

	case OpVEq, OpVNe, OpVLt, OpVLe, OpVGt, OpVGe:
		l, err := evalSingleAtomic(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		r, err := evalSingleAtomic(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, nil // empty sequence propagates
		}
		ok, err := compareAtomic(n.Op, l, r)
		if err != nil {
			return nil, err
		}
		return []Item{boolean(ok)}, nil

	case OpIs, OpBefore, OpAfter:
		l, err := eval(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		if len(l) != 1 || len(r) != 1 {
			return nil, fmt.Errorf("query: node comparison requires single nodes")
		}
		switch n.Op {
		case OpIs:
			return []Item{boolean(sameNode(l[0], r[0]))}, nil
		case OpBefore:
			return []Item{boolean(docOrderLess(l[0], r[0]))}, nil
		default:
			return []Item{boolean(docOrderLess(r[0], l[0]))}, nil
		}

	case OpAdd, OpSub, OpMul, OpDiv, OpIDiv, OpMod:
		l, err := eval(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		la, err := singletonNumber(e, l)
		if err != nil {
			return nil, err
		}
		ra, err := singletonNumber(e, r)
		if err != nil {
			return nil, err
		}
		if la == nil || ra == nil {
			return nil, nil
		}
		a, b := la.NumberValue(), ra.NumberValue()
		var v float64
		switch n.Op {
		case OpAdd:
			v = a + b
		case OpSub:
			v = a - b
		case OpMul:
			v = a * b
		case OpDiv:
			v = a / b
		case OpIDiv:
			if b == 0 {
				return nil, fmt.Errorf("query: integer division by zero")
			}
			v = math.Trunc(a / b)
		case OpMod:
			v = math.Mod(a, b)
		}
		return []Item{num(v)}, nil

	case OpTo:
		la, err := evalSingleAtomic(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		ra, err := evalSingleAtomic(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		if la == nil || ra == nil {
			return nil, nil
		}
		lo, hi := int(la.NumberValue()), int(ra.NumberValue())
		if hi < lo {
			return nil, nil
		}
		if hi-lo > 10_000_000 {
			return nil, fmt.Errorf("query: range %d to %d too large", lo, hi)
		}
		out := make([]Item, 0, hi-lo+1)
		for i := lo; i <= hi; i++ {
			out = append(out, num(float64(i)))
		}
		return out, nil

	case OpUnion, OpIntersect, OpExcept:
		l, err := eval(n.Left, e, f)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, e, f)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpUnion:
			e.ctx.stats().AddDDOOps(1)
			return ddo(append(append([]Item{}, l...), r...))
		case OpIntersect:
			keys := make(map[any]bool)
			for _, it := range r {
				if k, ok := identityKey(it); ok {
					keys[k] = true
				}
			}
			var out []Item
			for _, it := range l {
				if k, ok := identityKey(it); ok && keys[k] {
					out = append(out, it)
				}
			}
			e.ctx.stats().AddDDOOps(1)
			return ddo(out)
		default:
			keys := make(map[any]bool)
			for _, it := range r {
				if k, ok := identityKey(it); ok {
					keys[k] = true
				}
			}
			var out []Item
			for _, it := range l {
				if k, ok := identityKey(it); !ok || !keys[k] {
					out = append(out, it)
				}
			}
			e.ctx.stats().AddDDOOps(1)
			return ddo(out)
		}
	default:
		return nil, fmt.Errorf("query: unknown operator %d", n.Op)
	}
}

func evalSingleAtomic(x Expr, e *env, f *focus) (*Atomic, error) {
	v, err := eval(x, e, f)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return nil, nil
	}
	if len(v) > 1 {
		return nil, fmt.Errorf("query: expected a single value, got %d", len(v))
	}
	return atomize(e, v[0])
}

func singletonNumber(e *env, v []Item) (*Atomic, error) {
	if len(v) == 0 {
		return nil, nil
	}
	if len(v) > 1 {
		return nil, fmt.Errorf("query: arithmetic over a sequence of %d items", len(v))
	}
	return atomize(e, v[0])
}
