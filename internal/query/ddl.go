package query

import (
	"fmt"
	"strings"

	"sedna/internal/core"
	"sedna/internal/index"
	"sedna/internal/lock"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

// execDDL runs a data-definition statement.
func execDDL(d *DDL, e *env) (string, error) {
	tx := e.ctx.Tx
	if tx.ReadOnly() {
		return "", fmt.Errorf("query: DDL in a read-only transaction")
	}
	switch d.Kind {
	case DDLCreateDocument:
		if _, err := tx.CreateDocument(d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("document %q created", d.Name), nil

	case DDLDropDocument:
		// Drop dependent indexes first.
		for _, ix := range tx.DB().Catalog().IndexesOf(d.Name) {
			if err := dropIndex(e, ix.Name); err != nil {
				return "", err
			}
		}
		if err := tx.DropDocument(d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("document %q dropped", d.Name), nil

	case DDLCreateIndex:
		return createIndex(e, d)

	case DDLDropIndex:
		if err := dropIndex(e, d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("index %q dropped", d.Name), nil

	default:
		return "", fmt.Errorf("query: unknown DDL kind %d", d.Kind)
	}
}

// createIndex builds a value index: the ON path selects the indexed nodes
// over the descriptive schema, the BY path computes each node's key.
func createIndex(e *env, d *DDL) (string, error) {
	tx := e.ctx.Tx
	cat := tx.DB().Catalog()
	if _, exists := cat.Index(d.Name); exists {
		return "", fmt.Errorf("query: index %q already exists", d.Name)
	}
	doc, err := tx.Document(d.DocName)
	if err != nil {
		return "", err
	}
	if err := tx.LockDocument(d.DocName, lock.Exclusive); err != nil {
		return "", err
	}
	w, ok := e.r.(storage.Writer)
	if !ok {
		return "", fmt.Errorf("query: transaction cannot write")
	}

	meta := &core.IndexMeta{
		Name: d.Name, DocName: d.DocName,
		OnPath:  pathString(d.OnPath),
		ByPath:  pathString(d.ByPath),
		KeyType: d.AsType,
	}
	tree, err := index.Create(w)
	if err != nil {
		return "", err
	}
	meta.Root = tree.Root

	onSet, bySteps, err := indexPaths(e, doc, meta)
	if err != nil {
		return "", err
	}
	count := 0
	var outerErr error
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		if outerErr != nil || !onSet[sn.ID] {
			return
		}
		outerErr = storage.ScanSchema(e.r, sn, func(desc storage.Desc) (bool, error) {
			node := &NodeItem{Doc: doc, D: desc}
			key, ok, err := indexKeyOf(e, node, bySteps, meta.KeyType)
			if err != nil {
				return false, err
			}
			if ok {
				if err := tree.Insert(w, key, desc.Handle); err != nil {
					return false, err
				}
				count++
			}
			return true, nil
		})
	})
	if outerErr != nil {
		return "", outerErr
	}
	meta.Root = tree.Root

	if err := tx.LogRecord(&wal.Record{
		Type: wal.RecCreateIndex, DocID: doc.ID, Name: d.Name,
		Path: strings.Join([]string{meta.OnPath, meta.ByPath, meta.KeyType}, "\x1f"),
	}); err != nil {
		return "", err
	}
	cat.PutIndex(meta)
	tx.Defer(func() { cat.DeleteIndex(d.Name) })
	if err := logIndexRoot(e, meta); err != nil {
		return "", err
	}
	return fmt.Sprintf("index %q created over %d node(s)", d.Name, count), nil
}

func dropIndex(e *env, name string) error {
	tx := e.ctx.Tx
	cat := tx.DB().Catalog()
	meta, ok := cat.Index(name)
	if !ok {
		return fmt.Errorf("query: index %q does not exist", name)
	}
	if err := tx.LockDocument(meta.DocName, lock.Exclusive); err != nil {
		return err
	}
	w, okw := e.r.(storage.Writer)
	if !okw {
		return fmt.Errorf("query: transaction cannot write")
	}
	tree := &index.Tree{Root: meta.Root}
	if err := tree.FreeAll(w); err != nil {
		return err
	}
	if err := tx.LogRecord(&wal.Record{Type: wal.RecDropIndex, Name: name}); err != nil {
		return err
	}
	cat.DeleteIndex(name)
	tx.Defer(func() { cat.PutIndex(meta) })
	return nil
}

// logIndexRoot records the tree root in the WAL so recovery can restore it.
func logIndexRoot(e *env, meta *core.IndexMeta) error {
	return e.ctx.Tx.LogRecord(&wal.Record{
		Type: wal.RecIndexMeta, Name: meta.Name, Ptrs: [5]sas.XPtr{meta.Root},
	})
}

// indexPaths resolves an index's ON path into the set of schema-node IDs it
// denotes and parses its BY path into relative steps.
func indexPaths(e *env, doc *storage.Doc, meta *core.IndexMeta) (map[uint32]bool, []*Step, error) {
	onExpr, err := parseRelPath(meta.OnPath)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q ON path: %w", meta.Name, err)
	}
	onSteps, err := pathSteps(onExpr)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q ON path: %w", meta.Name, err)
	}
	targets := resolveStructural(doc.Schema.Root, onSteps)
	onSet := make(map[uint32]bool, len(targets))
	for _, sn := range targets {
		onSet[sn.ID] = true
	}

	byExpr, err := parseRelPath(meta.ByPath)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q BY path: %w", meta.Name, err)
	}
	bySteps, err := pathSteps(byExpr)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q BY path: %w", meta.Name, err)
	}
	return onSet, bySteps, nil
}

// pathSteps decomposes a location-path expression into its steps, accepting
// a doc(...) or root head.
func pathSteps(x Expr) ([]*Step, error) {
	var steps []*Step
	for cur := x; cur != nil; {
		switch n := cur.(type) {
		case *Step:
			steps = append([]*Step{n}, steps...)
			cur = n.Input
		case *DocCall, *Root:
			cur = nil
		default:
			return nil, fmt.Errorf("not a structural location path (%T)", cur)
		}
	}
	return steps, nil
}

// parseRelPath parses a stored path string back into an expression.
func parseRelPath(s string) (Expr, error) {
	if s == "" || s == "." {
		return &Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}}, nil
	}
	return ParseExpr(s)
}

// indexKeyOf evaluates the BY path relative to the node and normalizes the
// first resulting value into an index key.
func indexKeyOf(e *env, node *NodeItem, bySteps []*Step, keyType string) (index.Key, bool, error) {
	items := []Item{node}
	for _, st := range bySteps {
		var next []Item
		for _, it := range items {
			n, ok := it.(*NodeItem)
			if !ok {
				continue
			}
			var err error
			next, err = axisStored(e, n, st.Axis, st.Test, next)
			if err != nil {
				return index.Key{}, false, err
			}
		}
		items = next
		if len(items) == 0 {
			return index.Key{}, false, nil
		}
	}
	a, err := atomize(e, items[0])
	if err != nil {
		return index.Key{}, false, err
	}
	return index.KeyFor(keyType, a.StringValue(), a.NumberValue()), true, nil
}

// evalIndexScan implements the Sedna index-scan("name", value) function:
// cost-based index selection is future work in the paper, so index access
// is explicit, as in the original system.
func evalIndexScan(e *env, name string, value *Atomic) ([]Item, error) {
	e.ctx.stats().AddIndexScans(1)
	meta, ok := e.ctx.Tx.DB().Catalog().Index(name)
	if !ok {
		return nil, fmt.Errorf("query: index %q does not exist", name)
	}
	doc, err := e.ctx.Tx.Document(meta.DocName)
	if err != nil {
		return nil, err
	}
	if !e.ctx.Tx.ReadOnly() {
		if err := e.ctx.Tx.LockDocument(meta.DocName, lock.Shared); err != nil {
			return nil, err
		}
	}
	_, bySteps, err := indexPaths(e, doc, meta)
	if err != nil {
		return nil, err
	}
	tree := &index.Tree{Root: meta.Root}
	key := index.KeyFor(meta.KeyType, value.StringValue(), value.NumberValue())
	handles, err := tree.Lookup(e.r, key)
	if err != nil {
		return nil, err
	}
	var out []Item
	for _, h := range handles {
		d, err := storage.DescOf(e.r, h)
		if err != nil {
			return nil, err
		}
		node := &NodeItem{Doc: doc, D: d}
		// Recheck: the fixed-size key prefix is imprecise for long strings.
		items := []Item{node}
		var exact bool
		k2, ok2, err := indexKeyOf(e, node, bySteps, meta.KeyType)
		if err != nil {
			return nil, err
		}
		exact = ok2 && k2 == key
		if !exact {
			continue
		}
		if meta.KeyType == "string" {
			// Verify the full value, not just the prefix.
			v, err := atomizeByPath(e, node, bySteps)
			if err != nil {
				return nil, err
			}
			if v == nil || v.StringValue() != value.StringValue() {
				continue
			}
		}
		out = append(out, items[0])
	}
	return out, nil
}

func atomizeByPath(e *env, node *NodeItem, bySteps []*Step) (*Atomic, error) {
	items := []Item{node}
	for _, st := range bySteps {
		var next []Item
		for _, it := range items {
			n, ok := it.(*NodeItem)
			if !ok {
				continue
			}
			var err error
			next, err = axisStored(e, n, st.Axis, st.Test, next)
			if err != nil {
				return nil, err
			}
		}
		items = next
	}
	if len(items) == 0 {
		return nil, nil
	}
	return atomize(e, items[0])
}

// pathString renders a structural path expression back to source form for
// catalog persistence.
func pathString(x Expr) string {
	var parts []string
	for cur := x; cur != nil; {
		switch n := cur.(type) {
		case *Step:
			parts = append([]string{stepString(n)}, parts...)
			cur = n.Input
		case *DocCall:
			parts = append([]string{fmt.Sprintf("doc(%q)", n.Name)}, parts...)
			cur = nil
		case *Root:
			cur = nil
		default:
			cur = nil
		}
	}
	return strings.Join(parts, "/")
}

func stepString(s *Step) string {
	var test string
	switch s.Test.Kind {
	case TestName:
		test = s.Test.Name
	case TestNode:
		test = "node()"
	case TestText:
		test = "text()"
	case TestComment:
		test = "comment()"
	case TestPI:
		test = "processing-instruction()"
	case TestElement:
		test = "element(" + s.Test.Name + ")"
	case TestAttrTest:
		test = "attribute(" + s.Test.Name + ")"
	}
	switch s.Axis {
	case AxisChild:
		return test
	case AxisAttribute:
		if s.Test.Kind == TestName || s.Test.Kind == TestAttrTest {
			return "@" + s.Test.Name
		}
		return "attribute::" + test
	case AxisSelf:
		return "self::" + test
	default:
		return s.Axis.String() + "::" + test
	}
}
