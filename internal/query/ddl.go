package query

import (
	"fmt"
	"math/rand"
	"strings"

	"sedna/internal/core"
	"sedna/internal/index"
	"sedna/internal/lock"
	"sedna/internal/opt"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/wal"
)

// execDDL runs a data-definition statement.
func execDDL(d *DDL, e *env) (string, error) {
	tx := e.ctx.Tx
	if tx.ReadOnly() {
		return "", fmt.Errorf("query: DDL in a read-only transaction")
	}
	switch d.Kind {
	case DDLCreateDocument:
		if _, err := tx.CreateDocument(d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("document %q created", d.Name), nil

	case DDLDropDocument:
		// Drop dependent indexes first.
		for _, ix := range tx.DB().Catalog().IndexesOf(d.Name) {
			if err := dropIndex(e, ix.Name); err != nil {
				return "", err
			}
		}
		if err := tx.DropDocument(d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("document %q dropped", d.Name), nil

	case DDLCreateIndex:
		return createIndex(e, d)

	case DDLDropIndex:
		if err := dropIndex(e, d.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("index %q dropped", d.Name), nil

	case DDLAnalyze:
		return analyzeDocument(e, d.Name)

	default:
		return "", fmt.Errorf("query: unknown DDL kind %d", d.Kind)
	}
}

// createIndex builds a value index: the ON path selects the indexed nodes
// over the descriptive schema, the BY path computes each node's key.
func createIndex(e *env, d *DDL) (string, error) {
	tx := e.ctx.Tx
	cat := tx.DB().Catalog()
	if _, exists := cat.Index(d.Name); exists {
		return "", fmt.Errorf("query: index %q already exists", d.Name)
	}
	doc, err := tx.Document(d.DocName)
	if err != nil {
		return "", err
	}
	if err := tx.LockDocument(d.DocName, lock.Exclusive); err != nil {
		return "", err
	}
	w, ok := e.r.(storage.Writer)
	if !ok {
		return "", fmt.Errorf("query: transaction cannot write")
	}

	meta := &core.IndexMeta{
		Name: d.Name, DocName: d.DocName,
		OnPath:  pathString(d.OnPath),
		ByPath:  pathString(d.ByPath),
		KeyType: d.AsType,
	}
	tree, err := index.Create(w)
	if err != nil {
		return "", err
	}
	meta.Root = tree.Root

	onSet, bySteps, err := indexPaths(e, doc, meta)
	if err != nil {
		return "", err
	}
	count := 0
	var outerErr error
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		if outerErr != nil || !onSet[sn.ID] {
			return
		}
		outerErr = storage.ScanSchema(e.r, sn, func(desc storage.Desc) (bool, error) {
			node := &NodeItem{Doc: doc, D: desc}
			keys, err := indexKeysOf(e, node, bySteps, meta.KeyType)
			if err != nil {
				return false, err
			}
			for _, key := range keys {
				if err := tree.Insert(w, key, desc.Handle); err != nil {
					return false, err
				}
			}
			if len(keys) > 0 {
				count++
			}
			return true, nil
		})
	})
	if outerErr != nil {
		return "", outerErr
	}
	meta.Root = tree.Root

	if err := tx.LogRecord(&wal.Record{
		Type: wal.RecCreateIndex, DocID: doc.ID, Name: d.Name,
		Path: strings.Join([]string{meta.OnPath, meta.ByPath, meta.KeyType}, "\x1f"),
	}); err != nil {
		return "", err
	}
	cat.PutIndex(meta)
	tx.Defer(func() { cat.DeleteIndex(d.Name) })
	if err := logIndexRoot(e, meta); err != nil {
		return "", err
	}
	return fmt.Sprintf("index %q created over %d node(s)", d.Name, count), nil
}

// Sampled ANALYZE: documents above the node-count threshold build their
// histograms from a per-column reservoir instead of a full value scan. The
// descriptor chains are still walked (that is where the counts live), but
// text — the expensive indirection — is only read for sampled nodes.
const (
	analyzeSampleThreshold = 20000 // document nodes above which ANALYZE samples
	analyzeSampleSize      = 1024  // reservoir size per column
)

// analyzeDocument rebuilds a document's optimizer statistics: an equi-depth
// value histogram plus distinct count per value-bearing schema node
// (attributes and text), total node count and average chain length. Large
// documents are sampled (reservoir per column, Duj1 distinct extrapolation)
// and the snapshot marked Sampled. The snapshot is advisory — it is
// installed in the catalog immediately (and rolled back with the
// transaction), persisted at the next checkpoint, and lost on crash; a stale
// or missing snapshot only costs plan quality, never correctness.
func analyzeDocument(e *env, docName string) (string, error) {
	tx := e.ctx.Tx
	doc, err := tx.Document(docName)
	if err != nil {
		return "", err
	}
	// Shared lock: ANALYZE reads every value in the document and must not
	// interleave with a writer's uncommitted state.
	if err := tx.LockDocument(docName, lock.Shared); err != nil {
		return "", err
	}
	cat := tx.DB().Catalog()

	// Sampling is decided per document (counts come free from the schema),
	// then applied to each column large enough to overflow a reservoir.
	var docNodes uint64
	doc.Schema.Root.Walk(func(sn *schema.Node) { docNodes += sn.NodeCount })
	sampling := docNodes > analyzeSampleThreshold

	stats := &opt.DocStats{Cols: make(map[uint32]*opt.ColStats)}
	var totalNodes, totalBlocks, chains uint64
	var scanErr error
	cols := 0
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		if scanErr != nil {
			return
		}
		totalNodes += sn.NodeCount
		if sn.BlockCount > 0 {
			totalBlocks += uint64(sn.BlockCount)
			chains++
		}
		if sn.Kind != schema.KindAttribute && sn.Kind != schema.KindText {
			return
		}
		var values []string
		if sampling && sn.NodeCount > analyzeSampleSize {
			// Reservoir sampling (algorithm R). The inclusion decision is
			// made before the text read, so skipped nodes cost nothing
			// beyond the descriptor scan; the deterministic seed makes
			// repeated ANALYZE runs of an unchanged document identical.
			rng := rand.New(rand.NewSource(int64(sn.ID)))
			values = make([]string, 0, analyzeSampleSize)
			var idx int64
			scanErr = storage.ScanSchema(e.r, sn, func(desc storage.Desc) (bool, error) {
				if err := e.ctx.checkKilled(); err != nil {
					return false, err
				}
				slot := -1
				if len(values) < analyzeSampleSize {
					slot = len(values)
					values = append(values, "")
				} else if j := rng.Int63n(idx + 1); j < analyzeSampleSize {
					slot = int(j)
				}
				idx++
				if slot < 0 {
					return true, nil
				}
				b, err := storage.Text(e.r, &desc)
				if err != nil {
					return false, err
				}
				values[slot] = string(b)
				return true, nil
			})
			if scanErr != nil {
				return
			}
			if len(values) > 0 {
				stats.Cols[sn.ID] = opt.BuildColSampled(values, sn.NodeCount)
				stats.Sampled = true
				cols++
			}
			return
		}
		scanErr = storage.ScanSchema(e.r, sn, func(desc storage.Desc) (bool, error) {
			if err := e.ctx.checkKilled(); err != nil {
				return false, err
			}
			b, err := storage.Text(e.r, &desc)
			if err != nil {
				return false, err
			}
			values = append(values, string(b))
			return true, nil
		})
		if scanErr != nil {
			return
		}
		if len(values) > 0 {
			stats.Cols[sn.ID] = opt.BuildCol(values)
			cols++
		}
	})
	if scanErr != nil {
		return "", scanErr
	}
	stats.AnalyzedNodes = totalNodes
	if chains > 0 {
		stats.AvgChain = float64(totalBlocks) / float64(chains)
	}
	stats.UpdateBase = cat.Activity(docName).Updates.Load()

	prev := cat.DocStats(docName)
	cat.PutDocStats(docName, stats)
	tx.Defer(func() { cat.PutDocStats(docName, prev) })
	note := ""
	if stats.Sampled {
		note = " (sampled)"
	}
	return fmt.Sprintf("document %q analyzed%s: %d node(s), %d column(s)", docName, note, totalNodes, cols), nil
}

func dropIndex(e *env, name string) error {
	tx := e.ctx.Tx
	cat := tx.DB().Catalog()
	meta, ok := cat.Index(name)
	if !ok {
		return fmt.Errorf("query: index %q does not exist", name)
	}
	if err := tx.LockDocument(meta.DocName, lock.Exclusive); err != nil {
		return err
	}
	w, okw := e.r.(storage.Writer)
	if !okw {
		return fmt.Errorf("query: transaction cannot write")
	}
	tree := &index.Tree{Root: meta.Root}
	if err := tree.FreeAll(w); err != nil {
		return err
	}
	if err := tx.LogRecord(&wal.Record{Type: wal.RecDropIndex, Name: name}); err != nil {
		return err
	}
	cat.DeleteIndex(name)
	tx.Defer(func() { cat.PutIndex(meta) })
	return nil
}

// logIndexRoot records the tree root in the WAL so recovery can restore it.
func logIndexRoot(e *env, meta *core.IndexMeta) error {
	return e.ctx.Tx.LogRecord(&wal.Record{
		Type: wal.RecIndexMeta, Name: meta.Name, Ptrs: [5]sas.XPtr{meta.Root},
	})
}

// indexPaths resolves an index's ON path into the set of schema-node IDs it
// denotes and parses its BY path into relative steps.
func indexPaths(e *env, doc *storage.Doc, meta *core.IndexMeta) (map[uint32]bool, []*Step, error) {
	onExpr, err := parseRelPath(meta.OnPath)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q ON path: %w", meta.Name, err)
	}
	onSteps, err := pathSteps(onExpr)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q ON path: %w", meta.Name, err)
	}
	targets := resolveStructural(doc.Schema.Root, onSteps)
	onSet := make(map[uint32]bool, len(targets))
	for _, sn := range targets {
		onSet[sn.ID] = true
	}

	byExpr, err := parseRelPath(meta.ByPath)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q BY path: %w", meta.Name, err)
	}
	bySteps, err := pathSteps(byExpr)
	if err != nil {
		return nil, nil, fmt.Errorf("query: index %q BY path: %w", meta.Name, err)
	}
	return onSet, bySteps, nil
}

// pathSteps decomposes a location-path expression into its steps, accepting
// a doc(...) or root head.
func pathSteps(x Expr) ([]*Step, error) {
	var steps []*Step
	for cur := x; cur != nil; {
		switch n := cur.(type) {
		case *Step:
			steps = append([]*Step{n}, steps...)
			cur = n.Input
		case *DocCall, *Root:
			cur = nil
		default:
			return nil, fmt.Errorf("not a structural location path (%T)", cur)
		}
	}
	return steps, nil
}

// parseRelPath parses a stored path string back into an expression.
func parseRelPath(s string) (Expr, error) {
	if s == "" || s == "." {
		return &Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}}, nil
	}
	return ParseExpr(s)
}

// indexKeysOf evaluates the BY path relative to the node and normalizes
// every resulting value into an index key (deduplicated): a node whose BY
// path yields several values is indexed under each of them, matching the
// existential semantics of general comparisons.
func indexKeysOf(e *env, node *NodeItem, bySteps []*Step, keyType string) ([]index.Key, error) {
	items := []Item{node}
	for _, st := range bySteps {
		var next []Item
		for _, it := range items {
			n, ok := it.(*NodeItem)
			if !ok {
				continue
			}
			var err error
			next, err = axisStored(e, n, st.Axis, st.Test, next)
			if err != nil {
				return nil, err
			}
		}
		items = next
		if len(items) == 0 {
			return nil, nil
		}
	}
	keys := make([]index.Key, 0, len(items))
	seen := make(map[index.Key]struct{}, len(items))
	for _, it := range items {
		a, err := atomize(e, it)
		if err != nil {
			return nil, err
		}
		k := index.KeyFor(keyType, a.StringValue(), a.NumberValue())
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys, nil
}

// evalIndexScan implements the Sedna index-scan("name", value) function:
// the paper keeps index access explicit; the cost-based optimizer's probe
// plans reuse the same machinery through evalIndexProbe.
func evalIndexScan(e *env, name string, value *Atomic) ([]Item, error) {
	e.ctx.stats().AddIndexScans(1)
	sp := e.ctx.pushSpan("index-scan " + name)
	defer e.ctx.popSpan(sp)
	meta, ok := e.ctx.Tx.DB().Catalog().Index(name)
	if !ok {
		return nil, fmt.Errorf("query: index %q does not exist", name)
	}
	doc, err := e.ctx.Tx.Document(meta.DocName)
	if err != nil {
		return nil, err
	}
	if !e.ctx.Tx.ReadOnly() {
		if err := e.ctx.Tx.LockDocument(meta.DocName, lock.Shared); err != nil {
			return nil, err
		}
	}
	_, bySteps, err := indexPaths(e, doc, meta)
	if err != nil {
		return nil, err
	}
	tree := &index.Tree{Root: meta.Root}
	key := index.KeyFor(meta.KeyType, value.StringValue(), value.NumberValue())
	handles, err := tree.Lookup(e.r, key)
	if err != nil {
		return nil, err
	}
	sp.SetInt("candidates", int64(len(handles)))
	var out []Item
	seen := make(map[sas.XPtr]struct{}, len(handles))
	for _, h := range handles {
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		d, err := storage.DescOf(e.r, h)
		if err != nil {
			return nil, err
		}
		node := &NodeItem{Doc: doc, D: d}
		match, err := byPathMatchesEq(e, node, bySteps, meta.KeyType, key, value)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, node)
		}
	}
	sp.SetInt("nodes", int64(len(out)))
	return out, nil
}

// byPathMatchesEq rechecks one index candidate against the probe value: the
// BY path may yield several values (existential semantics), and the
// fixed-size key prefix is imprecise for long strings, so string keys verify
// the full value.
func byPathMatchesEq(e *env, node *NodeItem, bySteps []*Step, keyType string, key index.Key, value *Atomic) (bool, error) {
	items := []Item{node}
	for _, st := range bySteps {
		var next []Item
		for _, it := range items {
			n, ok := it.(*NodeItem)
			if !ok {
				continue
			}
			var err error
			next, err = axisStored(e, n, st.Axis, st.Test, next)
			if err != nil {
				return false, err
			}
		}
		items = next
		if len(items) == 0 {
			return false, nil
		}
	}
	for _, it := range items {
		a, err := atomize(e, it)
		if err != nil {
			return false, err
		}
		if index.KeyFor(keyType, a.StringValue(), a.NumberValue()) != key {
			continue
		}
		if keyType == "string" && a.StringValue() != value.StringValue() {
			continue
		}
		return true, nil
	}
	return false, nil
}

// pathString renders a structural path expression back to source form for
// catalog persistence.
func pathString(x Expr) string {
	var parts []string
	for cur := x; cur != nil; {
		switch n := cur.(type) {
		case *Step:
			parts = append([]string{stepString(n)}, parts...)
			cur = n.Input
		case *DocCall:
			parts = append([]string{fmt.Sprintf("doc(%q)", n.Name)}, parts...)
			cur = nil
		case *Root:
			cur = nil
		default:
			cur = nil
		}
	}
	return strings.Join(parts, "/")
}

func stepString(s *Step) string {
	var test string
	switch s.Test.Kind {
	case TestName:
		test = s.Test.Name
	case TestNode:
		test = "node()"
	case TestText:
		test = "text()"
	case TestComment:
		test = "comment()"
	case TestPI:
		test = "processing-instruction()"
	case TestElement:
		test = "element(" + s.Test.Name + ")"
	case TestAttrTest:
		test = "attribute(" + s.Test.Name + ")"
	}
	switch s.Axis {
	case AxisChild:
		return test
	case AxisAttribute:
		if s.Test.Kind == TestName || s.Test.Kind == TestAttrTest {
			return "@" + s.Test.Name
		}
		return "attribute::" + test
	case AxisSelf:
		return "self::" + test
	default:
		return s.Axis.String() + "::" + test
	}
}
