package query

// The cost-based structural optimizer (ROADMAP item 1). It runs between the
// rule-based rewriter and the executor: for every location step whose chain
// resolves over the descriptive schema it estimates cardinality (NodeCount
// ratios for structural steps, histogram selectivity for comparison
// predicates) and costs the physical alternatives the executor already
// implements — value-index probe, schema-level structural scan, parallel
// fan-out, naive chain navigation. The chosen plan is attached to the step
// (Step.Plan) and surfaced through EXPLAIN (costed-alternatives table),
// PROFILE (estimated vs actual rows) and the opt.* metrics. Plans never
// change results: the index probe rechecks every predicate on its
// candidates, and parallel output merges back into document order.

import (
	"math"
	"runtime"
	"sort"

	"sedna/internal/index"
	"sedna/internal/lock"
	"sedna/internal/nid"
	"sedna/internal/opt"
	"sedna/internal/sas"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// optPrefetchMinBlocks is the estimated chain-block volume above which the
// optimizer turns on readahead for a statement that would otherwise run with
// depth 0; optPrefetchDepth is the depth it picks.
const (
	optPrefetchMinBlocks = 64
	optPrefetchDepth     = 4
)

// optimizeStatement plans every eligible step of a query statement. It is a
// no-op for updates and DDL: their target selections keep the executor's
// heuristics (an update's index would also see the statement's own
// uncommitted changes mid-flight).
func optimizeStatement(ctx *ExecCtx, st *Statement) {
	clearPlans(st)
	if ctx.Tx == nil || ctx.Tx.DB() == nil || st.Query == nil {
		return
	}
	planned := 0
	probes := 0
	var scanBlocks float64
	maxWorkers := 0
	visit := func(x Expr) {
		s, ok := x.(*Step)
		if !ok {
			return
		}
		if p := planStep(ctx, s); p != nil {
			s.Plan = p
			planned++
			if p.Probe != nil {
				probes++
			} else {
				scanBlocks += chosenBlocks(p)
			}
			if p.Workers > maxWorkers {
				maxWorkers = p.Workers
			}
		}
	}
	for _, v := range st.Prolog.Vars {
		walkExpr(v.Seq, visit)
	}
	walkExpr(st.Query, visit)
	if planned == 0 {
		return
	}
	sh := ctx.shared()
	if maxWorkers >= 2 {
		sh.plannedWorkers = maxWorkers
	}
	// Costed prefetch: a statement about to scan a meaningful chain volume
	// with readahead off gets a moderate depth. Readahead never changes
	// results, only when pages are fetched.
	if scanBlocks >= optPrefetchMinBlocks && ctx.resolvePrefetchDepth() == 0 {
		ctx.Tx.SetPrefetchDepth(optPrefetchDepth)
		sh.prefetchDepth = optPrefetchDepth
	}
	if reg := ctx.registry(); reg != nil {
		reg.Counter("opt.plans_costed").Add(uint64(planned))
		if probes > 0 {
			reg.Counter("opt.index_chosen").Add(uint64(probes))
		}
	}
}

// chosenBlocks reports the chain blocks the chosen alternative will read
// (zero for probes), for the prefetch decision.
func chosenBlocks(p *StepPlan) float64 {
	for _, a := range p.Alts {
		if a.Chosen && a.Name != opt.AltIndexProbe {
			return p.blocks
		}
	}
	return 0
}

// clearPlans drops every step plan of the statement; ASTs are reused across
// executions (benchmarks, sessions), so a run without the optimizer must not
// inherit plans from an earlier optimized run.
func clearPlans(st *Statement) {
	visit := func(x Expr) {
		if s, ok := x.(*Step); ok {
			s.Plan = nil
		}
	}
	for _, v := range st.Prolog.Vars {
		walkExpr(v.Seq, visit)
	}
	walkExpr(st.Query, visit)
	if st.Update != nil {
		walkExpr(st.Update.Target, visit)
		walkExpr(st.Update.Source, visit)
	}
}

// strippedStructuralChain is structuralChain with the step's own predicates
// ignored: the shape `doc(...)/a/b[preds]` qualifies, predicates anywhere
// earlier do not.
func strippedStructuralChain(s *Step) (*DocCall, []*Step) {
	if len(s.Preds) == 0 {
		return structuralChain(s)
	}
	saved := s.Preds
	s.Preds = nil
	docCall, steps := structuralChain(s)
	s.Preds = saved
	return docCall, steps
}

// planStep costs one step's physical alternatives and returns the plan, or
// nil when the step is not plannable (not schema-resolvable, or nothing to
// decide).
func planStep(ctx *ExecCtx, s *Step) *StepPlan {
	docCall, steps := strippedStructuralChain(s)
	if docCall == nil {
		return nil
	}
	doc, err := ctx.Tx.Document(docCall.Name)
	if err != nil {
		return nil
	}
	targets := resolveStructural(doc.Schema.Root, steps)
	if len(targets) == 0 {
		return nil
	}
	var nodes, blocks float64
	for _, sn := range targets {
		nodes += float64(sn.NodeCount)
		blocks += float64(sn.BlockCount)
	}
	cat := ctx.Tx.DB().Catalog()
	stats := cat.DocStats(doc.Name)
	fresh := stats != nil && !stats.Stale(cat.Activity(doc.Name).Updates.Load())

	if len(s.Preds) == 0 {
		if !s.Structural || !fresh {
			// Without fresh statistics the executor's own heuristics decide;
			// planning here would change behavior on never-analyzed
			// documents.
			return nil
		}
		return planScanStep(ctx, nodes, blocks, len(targets))
	}
	return planPredStep(ctx, s, doc, targets, nodes, blocks, stats, fresh)
}

// planScanStep costs a predicate-free structural scan: serial scan vs
// parallel fan-out vs chain navigation. Cardinality is exact (NodeCount).
func planScanStep(ctx *ExecCtx, nodes, blocks float64, targets int) *StepPlan {
	scan := opt.ScanCost(blocks, nodes, 0)
	p := &StepPlan{EstRows: nodes, Workers: 1, blocks: blocks}
	alts := []opt.Alt{
		{Name: opt.AltStructuralScan, EstRows: nodes, Cost: scan},
		{Name: opt.AltChainScan, EstRows: nodes, Cost: opt.ChainCost(blocks, nodes)},
	}
	maxW := ctx.workerBudget()
	if maxW > targets {
		maxW = targets
	}
	if w, cost, ok := opt.BestWorkers(scan, maxW); ok {
		alts = append(alts, opt.Alt{Name: opt.ParallelAltName(w), EstRows: nodes, Cost: cost})
		p.Workers = w
	}
	p.Alts = markChosen(alts)
	return p
}

// planPredStep costs a predicate-bearing step: structural scan + filter vs
// chain navigation vs (when an index matches an eligible predicate) a
// value-index probe.
func planPredStep(ctx *ExecCtx, s *Step, doc *storage.Doc, targets []*schema.Node, nodes, blocks float64, stats *opt.DocStats, fresh bool) *StepPlan {
	if !fresh {
		stats = nil // stale histograms mislead; fall back to the defaults
	}
	sel := 1.0
	for _, pred := range s.Preds {
		sel *= predSelectivity(targets, stats, pred)
	}
	estRows := nodes * sel
	p := &StepPlan{EstRows: estRows, blocks: blocks, Sampled: stats != nil && stats.Sampled}
	alts := []opt.Alt{
		{Name: opt.AltStructuralScan, EstRows: estRows, Cost: opt.ScanCost(blocks, nodes, len(s.Preds))},
		{Name: opt.AltChainScan, EstRows: estRows, Cost: opt.ChainCost(blocks, nodes)},
	}
	if probe, probeSel := findProbe(ctx, s, doc, targets, stats); probe != nil {
		candidates := nodes * probeSel
		alts = append(alts, opt.Alt{Name: opt.AltIndexProbe, EstRows: estRows, Cost: opt.ProbeCost(candidates)})
		p.Probe = probe
	}
	p.Alts = markChosen(alts)
	if p.Probe != nil && !chosen(p.Alts, opt.AltIndexProbe) {
		p.Probe = nil
	}
	if p.Probe == nil && len(p.Alts) == 2 && !fresh {
		// Nothing actionable: no probe and no statistics — don't claim a
		// plan (and an estimate) the executor will ignore.
		return nil
	}
	return p
}

func markChosen(alts []opt.Alt) []opt.Alt {
	best := 0
	for i := 1; i < len(alts); i++ {
		if alts[i].Cost < alts[best].Cost {
			best = i
		}
	}
	alts[best].Chosen = true
	return alts
}

func chosen(alts []opt.Alt, name string) bool {
	for _, a := range alts {
		if a.Chosen {
			return a.Name == name
		}
	}
	return false
}

// workerBudget is the statement's maximum fan-out width: the context's
// explicit cap, else the database setting, else GOMAXPROCS.
func (ctx *ExecCtx) workerBudget() int {
	if ctx.Workers > 0 {
		return ctx.Workers
	}
	if ctx.Tx != nil && ctx.Tx.DB() != nil {
		return ctx.Tx.DB().QueryWorkers()
	}
	return runtime.GOMAXPROCS(0)
}

// cmpPred is a decomposed comparison predicate: a relative path compared to
// a literal.
type cmpPred struct {
	steps    []*Step
	op       opt.CmpOp
	isString bool
	s        string
	f        float64
}

// decomposeCmp recognizes `relpath op literal` (either operand order) for
// the general comparisons =, <, <=, >, >=.
func decomposeCmp(pred Expr) *cmpPred {
	b, ok := pred.(*Binary)
	if !ok {
		return nil
	}
	var op opt.CmpOp
	switch b.Op {
	case OpEq:
		op = opt.CmpEq
	case OpLt:
		op = opt.CmpLt
	case OpLe:
		op = opt.CmpLe
	case OpGt:
		op = opt.CmpGt
	case OpGe:
		op = opt.CmpGe
	default:
		return nil
	}
	path, lit := b.Left, b.Right
	mirrored := false
	if _, isLit := path.(*Literal); isLit {
		path, lit = lit, path
		mirrored = true
	}
	l, ok := lit.(*Literal)
	if !ok {
		return nil
	}
	steps := relPathSteps(path)
	if steps == nil {
		return nil
	}
	if mirrored {
		switch op {
		case opt.CmpLt:
			op = opt.CmpGt
		case opt.CmpLe:
			op = opt.CmpGe
		case opt.CmpGt:
			op = opt.CmpLt
		case opt.CmpGe:
			op = opt.CmpLe
		}
	}
	return &cmpPred{steps: steps, op: op, isString: l.IsString, s: l.String, f: l.Number}
}

// relPathSteps decomposes a relative (context-anchored) location path into
// its steps, nil when the expression is anything else.
func relPathSteps(x Expr) []*Step {
	var steps []*Step
	cur := x
	for {
		st, ok := cur.(*Step)
		if !ok {
			return nil
		}
		if len(st.Preds) > 0 {
			return nil
		}
		switch st.Axis {
		case AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisAttribute, AxisSelf:
		default:
			return nil
		}
		steps = append([]*Step{st}, steps...)
		switch in := st.Input.(type) {
		case nil:
			return steps
		case *ContextItem:
			return steps
		case *Step:
			cur = in
		default:
			return nil
		}
	}
}

// predSelectivity estimates the fraction of context nodes a predicate keeps:
// histogram selectivity for comparisons against a known column, 0.5 for
// anything else (the System R "half stays" default for opaque predicates).
func predSelectivity(targets []*schema.Node, stats *opt.DocStats, pred Expr) float64 {
	cmp := decomposeCmp(pred)
	if cmp == nil {
		return 0.5
	}
	col := colForPath(targets, stats, cmp.steps)
	return col.Selectivity(cmp.op, cmp.isString, cmp.s, cmp.f)
}

// colForPath resolves a relative path from the step's target schema nodes to
// the value-bearing schema node ANALYZE collected, returning its column
// stats (nil → defaults). An element resolves through its text child, which
// is where the comparable value lives.
func colForPath(targets []*schema.Node, stats *opt.DocStats, steps []*Step) *opt.ColStats {
	if stats == nil {
		return nil
	}
	for _, target := range targets {
		for _, sn := range resolveStructural(target, steps) {
			switch sn.Kind {
			case schema.KindAttribute, schema.KindText:
				if c := stats.Col(sn.ID); c != nil {
					return c
				}
			case schema.KindElement:
				for _, ch := range sn.Children {
					if ch.Kind == schema.KindText {
						if c := stats.Col(ch.ID); c != nil {
							return c
						}
					}
				}
			}
		}
	}
	return nil
}

// findProbe looks for a value index that can answer one of the step's
// predicates, returning the probe and that predicate's selectivity estimate.
// Requirements: every predicate position-free (a probe yields a set, not a
// positional sequence), an index over this document whose ON set covers all
// of the step's schema targets, and a predicate comparing the index's BY
// path against a literal of the index's key type. Equality probes are
// preferred over range probes.
func findProbe(ctx *ExecCtx, s *Step, doc *storage.Doc, targets []*schema.Node, stats *opt.DocStats) (*IndexProbe, float64) {
	if ctx.updateStmt || !predsPositionFree(s.Preds) {
		return nil, 0
	}
	cat := ctx.Tx.DB().Catalog()
	var best *IndexProbe
	bestSel := 0.0
	for _, meta := range cat.IndexesOf(doc.Name) {
		onSet, bySteps, err := indexPaths(nil, doc, meta)
		if err != nil {
			continue
		}
		covered := true
		for _, sn := range targets {
			if !onSet[sn.ID] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		for _, pred := range s.Preds {
			cmp := decomposeCmp(pred)
			if cmp == nil || !stepsMatch(cmp.steps, bySteps) {
				continue
			}
			if (meta.KeyType == "number") == cmp.isString {
				continue // literal type must match the key encoding
			}
			probe := &IndexProbe{Index: meta.Name, Op: cmp.op, IsString: cmp.isString, S: cmp.s, F: cmp.f}
			col := colForPath(targets, stats, cmp.steps)
			sel := col.Selectivity(cmp.op, cmp.isString, cmp.s, cmp.f)
			if best == nil || (probe.Op == opt.CmpEq && best.Op != opt.CmpEq) || sel < bestSel {
				best, bestSel = probe, sel
			}
		}
	}
	return best, bestSel
}

// stepsMatch compares a predicate's relative path against an index BY path
// step for step: same axes, same node tests.
func stepsMatch(a, b []*Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Axis != b[i].Axis || a[i].Test.Kind != b[i].Test.Kind || a[i].Test.Name != b[i].Test.Name {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Probe execution.

// keyRange maps a probe comparison onto B+tree key bounds. The bounds are a
// superset of the true matches (the fixed-size key prefix is weakly
// order-preserving, and range bounds include the boundary key); the full
// predicate recheck on every candidate makes the result exact.
func keyRange(keyType string, p *IndexProbe) (lo, hi index.Key) {
	k := index.KeyFor(keyType, p.S, p.F)
	lo, hi = k, k
	switch p.Op {
	case opt.CmpEq:
		return lo, hi
	case opt.CmpLt, opt.CmpLe:
		lo = index.Key{}
		lo[0] = k[0]
	case opt.CmpGt, opt.CmpGe:
		hi = index.Key{}
		hi[0] = k[0]
		for i := 1; i < len(hi); i++ {
			hi[i] = 0xFF
		}
	}
	return lo, hi
}

// evalIndexProbe executes a planned index probe: probe the B+tree for
// candidate handles, keep those whose schema node belongs to the step's
// target set, sort into document order, then recheck every predicate.
// handled=false (index or document gone since planning) sends the caller to
// normal evaluation.
func evalIndexProbe(s *Step, e *env) ([]Item, bool, error) {
	probe := s.Plan.Probe
	ctx := e.ctx
	meta, ok := ctx.Tx.DB().Catalog().Index(probe.Index)
	if !ok {
		return nil, false, nil
	}
	docCall, steps := strippedStructuralChain(s)
	if docCall == nil || meta.DocName != docCall.Name {
		return nil, false, nil
	}
	doc, err := ctx.Tx.Document(docCall.Name)
	if err != nil {
		return nil, false, nil
	}
	if !ctx.Tx.ReadOnly() {
		if err := ctx.Tx.LockDocument(doc.Name, lock.Shared); err != nil {
			return nil, true, err
		}
	}
	sp := ctx.pushSpan("index-probe " + probe.Index)
	defer ctx.popSpan(sp)
	ctx.stats().AddIndexScans(1)
	if reg := ctx.registry(); reg != nil {
		reg.Counter("opt.index_probes").Inc()
	}

	targets := resolveStructural(doc.Schema.Root, steps)
	targetSet := make(map[uint32]bool, len(targets))
	for _, sn := range targets {
		targetSet[sn.ID] = true
	}
	lo, hi := keyRange(meta.KeyType, probe)
	tree := &index.Tree{Root: meta.Root}
	var handles []sas.XPtr
	seen := make(map[sas.XPtr]struct{})
	if err := tree.Range(e.r, lo, hi, func(_ index.Key, h sas.XPtr) bool {
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			handles = append(handles, h)
		}
		return true
	}); err != nil {
		return nil, true, err
	}
	sp.SetInt("candidates", int64(len(handles)))

	nodes := make([]Item, 0, len(handles))
	for _, h := range handles {
		if err := ctx.checkKilled(); err != nil {
			return nil, true, err
		}
		d, err := storage.DescOf(e.r, h)
		if err != nil {
			return nil, true, err
		}
		if !targetSet[d.SchemaID] {
			continue
		}
		nodes = append(nodes, &NodeItem{Doc: doc, D: d})
	}
	// Document order: candidates come back in key order, the result must be
	// in NID order (which also satisfies any pending DDO requirement).
	sort.Slice(nodes, func(i, j int) bool {
		return nid.Compare(nodes[i].(*NodeItem).D.Label, nodes[j].(*NodeItem).D.Label) < 0
	})
	out, err := applyPredicates(nodes, s.Preds, e)
	if err != nil {
		return nil, true, err
	}
	sp.SetInt("nodes", int64(len(out)))
	return out, true, nil
}

// recordEstimate publishes one step's estimated-vs-actual row counts into
// the opt.est_error_pct histogram (percentage points of relative error).
func recordEstimate(ctx *ExecCtx, est float64, actual int) {
	reg := ctx.registry()
	if reg == nil {
		return
	}
	base := float64(actual)
	if base < 1 {
		base = 1
	}
	pct := math.Abs(est-float64(actual)) / base * 100
	reg.Histogram("opt.est_error_pct").ObserveNs(int64(pct))
}
