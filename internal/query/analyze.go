package query

import (
	"fmt"
)

// Analyze performs the static analysis phase (§5): variable scoping and
// function resolution. Static errors are detected here, before any data is
// touched.
func Analyze(st *Statement) error {
	scope := make(map[string]bool)
	for _, v := range st.Prolog.Vars {
		if err := analyzeExpr(v.Seq, scope, st.Prolog); err != nil {
			return err
		}
		scope[v.Var] = true
	}
	// Function bodies see the prolog variables plus their parameters.
	for _, fd := range st.Prolog.Funcs {
		fscope := copyScope(scope)
		for _, p := range fd.Params {
			fscope[p] = true
		}
		if err := analyzeExpr(fd.Body, fscope, st.Prolog); err != nil {
			return fmt.Errorf("in function %s: %w", fd.Name, err)
		}
	}
	switch {
	case st.Query != nil:
		return analyzeExpr(st.Query, scope, st.Prolog)
	case st.Update != nil:
		u := st.Update
		if err := analyzeExpr(u.Target, scope, st.Prolog); err != nil {
			return err
		}
		if u.Source != nil {
			s2 := scope
			if u.Var != "" {
				s2 = copyScope(scope)
				s2[u.Var] = true
			}
			return analyzeExpr(u.Source, s2, st.Prolog)
		}
		return nil
	case st.DDL != nil:
		if st.DDL.OnPath != nil {
			if err := analyzeExpr(st.DDL.OnPath, scope, st.Prolog); err != nil {
				return err
			}
		}
		if st.DDL.ByPath != nil {
			return analyzeRelativePath(st.DDL.ByPath)
		}
		return nil
	}
	return nil
}

func copyScope(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// builtinFunctions lists the supported function library (§5.2: "a library of
// physical operations which covers XQuery expressions").
var builtinFunctions = map[string]bool{
	"position": true, "last": true, "true": true, "false": true,
	"count": true, "empty": true, "exists": true, "not": true, "boolean": true,
	"string": true, "number": true, "data": true,
	"sum": true, "avg": true, "min": true, "max": true,
	"distinct-values": true, "name": true, "local-name": true,
	"concat": true, "string-join": true, "contains": true,
	"starts-with": true, "ends-with": true, "substring": true,
	"string-length": true, "normalize-space": true,
	"upper-case": true, "lower-case": true,
	"round": true, "floor": true, "ceiling": true, "abs": true,
	"root": true, "text": true, "node-kind": true, "doc": true,
	"index-scan": true,
}

func analyzeExpr(x Expr, scope map[string]bool, pr *Prolog) error {
	switch n := x.(type) {
	case nil:
		return nil
	case *Literal, *ContextItem, *Root, *DocCall:
		return nil
	case *VarRef:
		if !scope[n.Name] {
			return fmt.Errorf("query: static error: undefined variable $%s", n.Name)
		}
		return nil
	case *Step:
		if n.Input != nil {
			if err := analyzeExpr(n.Input, scope, pr); err != nil {
				return err
			}
		}
		for _, p := range n.Preds {
			if err := analyzeExpr(p, scope, pr); err != nil {
				return err
			}
		}
		return nil
	case *Filter:
		if err := analyzeExpr(n.Input, scope, pr); err != nil {
			return err
		}
		for _, p := range n.Preds {
			if err := analyzeExpr(p, scope, pr); err != nil {
				return err
			}
		}
		return nil
	case *Sequence:
		for _, it := range n.Items {
			if err := analyzeExpr(it, scope, pr); err != nil {
				return err
			}
		}
		return nil
	case *Binary:
		if err := analyzeExpr(n.Left, scope, pr); err != nil {
			return err
		}
		return analyzeExpr(n.Right, scope, pr)
	case *Unary:
		return analyzeExpr(n.X, scope, pr)
	case *IfExpr:
		if err := analyzeExpr(n.Cond, scope, pr); err != nil {
			return err
		}
		if err := analyzeExpr(n.Then, scope, pr); err != nil {
			return err
		}
		return analyzeExpr(n.Else, scope, pr)
	case *Quantified:
		if err := analyzeExpr(n.Seq, scope, pr); err != nil {
			return err
		}
		s2 := copyScope(scope)
		s2[n.Var] = true
		return analyzeExpr(n.Pred, s2, pr)
	case *FLWOR:
		s2 := copyScope(scope)
		for _, cl := range n.Clauses {
			if err := analyzeExpr(cl.Seq, s2, pr); err != nil {
				return err
			}
			s2[cl.Var] = true
			if cl.PosVar != "" {
				s2[cl.PosVar] = true
			}
		}
		if n.Where != nil {
			if err := analyzeExpr(n.Where, s2, pr); err != nil {
				return err
			}
		}
		for _, o := range n.OrderBy {
			if err := analyzeExpr(o.Key, s2, pr); err != nil {
				return err
			}
		}
		return analyzeExpr(n.Return, s2, pr)
	case *FuncCall:
		if _, ok := pr.Funcs[n.Name]; !ok {
			short := n.Name
			if len(short) > 3 && short[:3] == "fn:" {
				short = short[3:]
			}
			if !builtinFunctions[short] {
				return fmt.Errorf("query: static error: unknown function %s()", n.Name)
			}
		}
		for _, a := range n.Args {
			if err := analyzeExpr(a, scope, pr); err != nil {
				return err
			}
		}
		return nil
	case *ElementCtor:
		for _, a := range n.Attrs {
			for _, v := range a.Value {
				if err := analyzeExpr(v, scope, pr); err != nil {
					return err
				}
			}
		}
		for _, c := range n.Content {
			if err := analyzeExpr(c, scope, pr); err != nil {
				return err
			}
		}
		return nil
	case *TextCtor:
		return analyzeExpr(n.Content, scope, pr)
	case *CommentCtor:
		return analyzeExpr(n.Content, scope, pr)
	default:
		return fmt.Errorf("query: static error: unknown expression %T", x)
	}
}

// analyzeRelativePath validates an index BY path: relative, descending,
// predicate-free.
func analyzeRelativePath(x Expr) error {
	for {
		st, ok := x.(*Step)
		if !ok {
			return fmt.Errorf("query: static error: index key path must be a relative location path")
		}
		if len(st.Preds) > 0 {
			return fmt.Errorf("query: static error: index key path cannot have predicates")
		}
		if st.Input == nil {
			return nil
		}
		x = st.Input
	}
}

// freeVars collects the free variables of an expression.
func freeVars(x Expr, bound map[string]bool, out map[string]bool) {
	switch n := x.(type) {
	case nil:
	case *VarRef:
		if !bound[n.Name] {
			out[n.Name] = true
		}
	case *Step:
		freeVars(n.Input, bound, out)
		for _, p := range n.Preds {
			freeVars(p, bound, out)
		}
	case *Filter:
		freeVars(n.Input, bound, out)
		for _, p := range n.Preds {
			freeVars(p, bound, out)
		}
	case *Sequence:
		for _, it := range n.Items {
			freeVars(it, bound, out)
		}
	case *Binary:
		freeVars(n.Left, bound, out)
		freeVars(n.Right, bound, out)
	case *Unary:
		freeVars(n.X, bound, out)
	case *IfExpr:
		freeVars(n.Cond, bound, out)
		freeVars(n.Then, bound, out)
		freeVars(n.Else, bound, out)
	case *Quantified:
		freeVars(n.Seq, bound, out)
		b2 := copyScope(bound)
		b2[n.Var] = true
		freeVars(n.Pred, b2, out)
	case *FLWOR:
		b2 := copyScope(bound)
		for _, cl := range n.Clauses {
			freeVars(cl.Seq, b2, out)
			b2[cl.Var] = true
			if cl.PosVar != "" {
				b2[cl.PosVar] = true
			}
		}
		freeVars(n.Where, b2, out)
		for _, o := range n.OrderBy {
			freeVars(o.Key, b2, out)
		}
		freeVars(n.Return, b2, out)
	case *FuncCall:
		for _, a := range n.Args {
			freeVars(a, bound, out)
		}
	case *ElementCtor:
		for _, a := range n.Attrs {
			for _, v := range a.Value {
				freeVars(v, bound, out)
			}
		}
		for _, c := range n.Content {
			freeVars(c, bound, out)
		}
	case *TextCtor:
		freeVars(n.Content, bound, out)
	case *CommentCtor:
		freeVars(n.Content, bound, out)
	}
}
