package query

import (
	"strings"
)

// Direct XML constructor parsing. The constructor body is scanned in raw
// mode (character by character) because XML content does not tokenize like
// the query language; enclosed expressions `{...}` switch back to token
// mode.

// resetRaw rewinds the lexer to the position of the first buffered token and
// clears the lookahead buffer so raw scanning can proceed.
func (p *parser) resetRaw() {
	if len(p.l.toks) > 0 {
		p.l.pos = p.l.toks[0].pos
		p.l.toks = p.l.toks[:0]
	}
}

func (p *parser) parseDirectConstructor(pos int) (Expr, error) {
	p.resetRaw()
	if c, ok := p.l.rawByte(); !ok || c != '<' {
		return nil, p.l.errf(pos, "expected '<'")
	}
	return p.parseElementCtorRaw()
}

// parseElementCtorRaw parses an element constructor after the '<' has been
// consumed.
func (p *parser) parseElementCtorRaw() (Expr, error) {
	name := p.rawName()
	if name == "" {
		return nil, p.l.errf(p.l.pos, "expected element name")
	}
	ctor := &ElementCtor{Name: name}
	// Attributes.
	for {
		p.rawSkipSpace()
		c, ok := p.l.rawPeek()
		if !ok {
			return nil, p.l.errf(p.l.pos, "unterminated constructor <%s", name)
		}
		if c == '/' {
			p.l.rawByte()
			if c2, ok := p.l.rawByte(); !ok || c2 != '>' {
				return nil, p.l.errf(p.l.pos, "expected '/>'")
			}
			return ctor, nil
		}
		if c == '>' {
			p.l.rawByte()
			break
		}
		aname := p.rawName()
		if aname == "" {
			return nil, p.l.errf(p.l.pos, "expected attribute name in <%s>", name)
		}
		p.rawSkipSpace()
		if c, ok := p.l.rawByte(); !ok || c != '=' {
			return nil, p.l.errf(p.l.pos, "expected '=' after attribute %s", aname)
		}
		p.rawSkipSpace()
		quote, ok := p.l.rawByte()
		if !ok || (quote != '"' && quote != '\'') {
			return nil, p.l.errf(p.l.pos, "expected quoted attribute value")
		}
		// Scan to the closing quote, but quotes inside enclosed {…}
		// expressions belong to the expression, not the attribute.
		var raw strings.Builder
		depth := 0
		for {
			c, ok := p.l.rawByte()
			if !ok {
				return nil, p.l.errf(p.l.pos, "unterminated attribute value")
			}
			if depth == 0 && c == quote {
				break
			}
			switch c {
			case '{':
				if c2, _ := p.l.rawPeek(); c2 == '{' && depth == 0 {
					raw.WriteByte('{')
					raw.WriteByte('{')
					p.l.rawByte()
					continue
				}
				depth++
			case '}':
				if depth > 0 {
					depth--
				}
			case '"', '\'':
				if depth > 0 {
					// String literal inside the enclosed expression: copy
					// verbatim to its end.
					raw.WriteByte(c)
					for {
						c2, ok := p.l.rawByte()
						if !ok {
							return nil, p.l.errf(p.l.pos, "unterminated string in attribute expression")
						}
						raw.WriteByte(c2)
						if c2 == c {
							break
						}
					}
					continue
				}
			}
			raw.WriteByte(c)
		}
		parts, err := p.parseEmbedded(raw.String())
		if err != nil {
			return nil, err
		}
		ctor.Attrs = append(ctor.Attrs, AttrCtor{Name: aname, Value: parts})
	}
	// Content.
	var text strings.Builder
	flushText := func() {
		s := text.String()
		text.Reset()
		if strings.TrimSpace(s) == "" {
			return // boundary whitespace is stripped
		}
		ctor.Content = append(ctor.Content, &TextCtor{Content: &Literal{String: decodeEntities(s), IsString: true}})
	}
	for {
		c, ok := p.l.rawByte()
		if !ok {
			return nil, p.l.errf(p.l.pos, "unterminated content of <%s>", name)
		}
		switch c {
		case '<':
			c2, ok := p.l.rawPeek()
			if !ok {
				return nil, p.l.errf(p.l.pos, "unterminated content of <%s>", name)
			}
			if c2 == '/' {
				flushText()
				p.l.rawByte()
				end := p.rawName()
				if end != name {
					return nil, p.l.errf(p.l.pos, "mismatched </%s>, expected </%s>", end, name)
				}
				p.rawSkipSpace()
				if c3, ok := p.l.rawByte(); !ok || c3 != '>' {
					return nil, p.l.errf(p.l.pos, "expected '>' after </%s", end)
				}
				return ctor, nil
			}
			if c2 == '!' {
				// <!--comment-->
				if !strings.HasPrefix(p.l.src[p.l.pos:], "!--") {
					return nil, p.l.errf(p.l.pos, "unsupported markup in constructor")
				}
				p.l.pos += 3
				idx := strings.Index(p.l.src[p.l.pos:], "-->")
				if idx < 0 {
					return nil, p.l.errf(p.l.pos, "unterminated comment")
				}
				flushText()
				ctor.Content = append(ctor.Content, &CommentCtor{
					Content: &Literal{String: p.l.src[p.l.pos : p.l.pos+idx], IsString: true},
				})
				p.l.pos += idx + 3
				continue
			}
			flushText()
			sub, err := p.parseElementCtorRaw()
			if err != nil {
				return nil, err
			}
			ctor.Content = append(ctor.Content, sub)
		case '{':
			if c2, _ := p.l.rawPeek(); c2 == '{' {
				p.l.rawByte()
				text.WriteByte('{')
				continue
			}
			flushText()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("}"); err != nil {
				return nil, err
			}
			p.resetRaw()
			ctor.Content = append(ctor.Content, e)
		case '}':
			if c2, _ := p.l.rawPeek(); c2 == '}' {
				p.l.rawByte()
			}
			text.WriteByte('}')
		default:
			text.WriteByte(c)
		}
	}
}

func (p *parser) rawSkipSpace() {
	for {
		c, ok := p.l.rawPeek()
		if !ok || (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
			return
		}
		p.l.rawByte()
	}
}

func (p *parser) rawName() string {
	start := p.l.pos
	c, ok := p.l.rawPeek()
	if !ok || !isNameStart(rune(c)) {
		return ""
	}
	p.l.rawByte()
	for {
		c, ok := p.l.rawPeek()
		if !ok || !(isNameChar(rune(c)) || c == ':') {
			break
		}
		p.l.rawByte()
	}
	return p.l.src[start:p.l.pos]
}

// parseEmbedded splits attribute-value text into literal and enclosed-
// expression parts.
func (p *parser) parseEmbedded(s string) ([]Expr, error) {
	var parts []Expr
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, &Literal{String: decodeEntities(text.String()), IsString: true})
			text.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			if i+1 < len(s) && s[i+1] == '{' {
				text.WriteByte('{')
				i++
				continue
			}
			depth := 1
			j := i + 1
			for j < len(s) && depth > 0 {
				if s[j] == '{' {
					depth++
				} else if s[j] == '}' {
					depth--
				}
				j++
			}
			if depth != 0 {
				return nil, p.l.errf(p.l.pos, "unbalanced '{' in attribute value")
			}
			flush()
			e, err := ParseExpr(s[i+1 : j-1])
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			i = j - 1
		case '}':
			if i+1 < len(s) && s[i+1] == '}' {
				i++
			}
			text.WriteByte('}')
		default:
			text.WriteByte(s[i])
		}
	}
	flush()
	return parts, nil
}

var entityReplacer = strings.NewReplacer(
	"&lt;", "<", "&gt;", ">", "&amp;", "&", "&quot;", `"`, "&apos;", "'",
)

func decodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
