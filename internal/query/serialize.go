package query

import (
	"encoding/xml"
	"fmt"
	"io"

	"sedna/internal/core"
	"sedna/internal/schema"
)

// serializeTemp writes a constructed node as XML. Virtual references
// serialize straight from storage — the whole point of the optimisation:
// the deep copy never happens when the result is only serialized (§5.2.1).
func serializeTemp(e *env, n *TempNode, w io.Writer) error {
	if n.Ref != nil {
		return core.SerializeNode(e.r, n.Ref.Doc, n.Ref.D, w)
	}
	switch n.Kind {
	case schema.KindElement:
		if _, err := io.WriteString(w, "<"+n.Name); err != nil {
			return err
		}
		hasContent := false
		for _, c := range n.Children {
			if c.Kind == schema.KindAttribute {
				if _, err := fmt.Fprintf(w, " %s=%q", c.Name, c.Text); err != nil {
					return err
				}
			} else {
				hasContent = true
			}
		}
		if !hasContent {
			_, err := io.WriteString(w, "/>")
			return err
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		for _, c := range n.Children {
			if c.Kind == schema.KindAttribute {
				continue
			}
			if err := serializeTemp(e, c, w); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "</"+n.Name+">")
		return err
	case schema.KindText:
		return xml.EscapeText(w, []byte(n.Text))
	case schema.KindAttribute:
		_, err := io.WriteString(w, n.Text)
		return err
	case schema.KindComment:
		_, err := fmt.Fprintf(w, "<!--%s-->", n.Text)
		return err
	case schema.KindPI:
		_, err := fmt.Fprintf(w, "<?%s %s?>", n.Name, n.Text)
		return err
	default:
		return fmt.Errorf("query: cannot serialize constructed %v node", n.Kind)
	}
}
