package query

import (
	"fmt"
	"io"
	"strings"
)

// EXPLAIN/PROFILE rendering: a stable, indented, line-oriented view of the
// operation tree after static analysis and rewriting, annotated with the
// flags the optimizing rewriter set and the list of rules that fired.

// Text returns the node test in XPath form.
func (t NodeTest) Text() string {
	switch t.Kind {
	case TestName:
		if t.Name == "" {
			return "*"
		}
		return t.Name
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		return "processing-instruction()"
	case TestElement:
		return "element(" + t.Name + ")"
	case TestAttrTest:
		return "attribute(" + t.Name + ")"
	default:
		return fmt.Sprintf("test(%d)", int(t.Kind))
	}
}

// stepText labels one location step: axis::test.
func stepText(s *Step) string { return s.Axis.String() + "::" + s.Test.Text() }

func binOpText(op BinOp) string {
	switch op {
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpVEq:
		return "eq"
	case OpVNe:
		return "ne"
	case OpVLt:
		return "lt"
	case OpVLe:
		return "le"
	case OpVGt:
		return "gt"
	case OpVGe:
		return "ge"
	case OpIs:
		return "is"
	case OpBefore:
		return "<<"
	case OpAfter:
		return ">>"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpIDiv:
		return "idiv"
	case OpMod:
		return "mod"
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpExcept:
		return "except"
	case OpTo:
		return "to"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// ExplainText renders the statement's optimized operation tree; call after
// Analyze and Rewrite so the rewriter flags and notes are populated.
func ExplainText(st *Statement) string { return ExplainTextStorage(st, "") }

// ExplainTextStorage is ExplainText with a storage-backend hint: when
// non-empty ("resident" or "paged"), every location step is annotated
// storage=<hint> — the backend the executor will serve the statement's
// documents from (EXPLAIN is static, so the hint reflects the mode switch
// and statement kind, not per-document cache state).
func ExplainTextStorage(st *Statement, storageHint string) string {
	p := planPrinter{storage: storageHint}
	var sb strings.Builder
	kind := statementKind(st)
	access := "update"
	if st.ReadOnly() {
		access = "read-only"
	}
	fmt.Fprintf(&sb, "statement: %s (%s)\n", kind, access)
	if storageHint != "" {
		fmt.Fprintf(&sb, "storage: %s\n", storageHint)
	}
	if len(st.Rewrites) > 0 {
		sb.WriteString("rewrites:\n")
		for _, r := range st.Rewrites {
			fmt.Fprintf(&sb, "  - %s\n", r)
		}
	} else {
		sb.WriteString("rewrites: none\n")
	}
	for _, v := range st.Prolog.Vars {
		fmt.Fprintf(&sb, "declare variable $%s :=\n", v.Var)
		p.writePlan(&sb, v.Seq, 1)
	}
	sb.WriteString("plan:\n")
	switch {
	case st.Query != nil:
		p.writePlan(&sb, st.Query, 1)
		p.writeCosts(&sb)
	case st.Update != nil:
		fmt.Fprintf(&sb, "  update kind=%d\n", int(st.Update.Kind))
		sb.WriteString("  target:\n")
		p.writePlan(&sb, st.Update.Target, 2)
		if st.Update.Source != nil {
			sb.WriteString("  source:\n")
			p.writePlan(&sb, st.Update.Source, 2)
		}
	case st.DDL != nil:
		fmt.Fprintf(&sb, "  ddl kind=%d name=%q\n", int(st.DDL.Kind), st.DDL.Name)
		if st.DDL.OnPath != nil {
			sb.WriteString("  on:\n")
			p.writePlan(&sb, st.DDL.OnPath, 2)
		}
	}
	return sb.String()
}

func indent(w io.Writer, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
}

// planPrinter carries rendering options through the recursive plan walk and
// collects the costed steps it encounters for the trailing costs table.
type planPrinter struct {
	storage string  // per-step storage-backend annotation ("" = none)
	costed  []*Step // steps with a cost-based plan, in render order
}

// writeCosts appends the optimizer's costed-alternatives table: one block per
// planned step listing every alternative with its estimated rows and cost,
// the chosen one marked ✓. Empty when no statistics informed the plan.
func (p *planPrinter) writeCosts(w io.Writer) {
	if len(p.costed) == 0 {
		return
	}
	io.WriteString(w, "costs:\n")
	for _, s := range p.costed {
		note := ""
		if s.Plan.Sampled {
			note = " [sampled=true]"
		}
		fmt.Fprintf(w, "  step %s:%s\n", stepText(s), note)
		for _, a := range s.Plan.Alts {
			mark := " "
			if a.Chosen {
				mark = "✓"
			}
			fmt.Fprintf(w, "    %s %-22s est rows %10.0f  cost %12.1f\n", mark, a.Name, a.EstRows, a.Cost)
		}
	}
}

// writePlan renders one expression subtree, children indented under their
// parent, rewriter flags in brackets.
func (p *planPrinter) writePlan(w io.Writer, x Expr, depth int) {
	if x == nil {
		return
	}
	indent(w, depth)
	switch n := x.(type) {
	case *Literal:
		if n.IsString {
			fmt.Fprintf(w, "literal %q\n", n.String)
		} else {
			fmt.Fprintf(w, "literal %v\n", n.Number)
		}
	case *VarRef:
		fmt.Fprintf(w, "var $%s\n", n.Name)
	case *ContextItem:
		fmt.Fprintln(w, "context-item")
	case *Root:
		fmt.Fprintln(w, "root /")
	case *DocCall:
		fmt.Fprintf(w, "doc(%q)\n", n.Name)
	case *Step:
		var flags []string
		if n.NeedDDO {
			flags = append(flags, "ddo")
		}
		if n.Structural {
			flags = append(flags, "structural")
		}
		if len(n.Preds) > 0 {
			flags = append(flags, fmt.Sprintf("preds=%d", len(n.Preds)))
		}
		if p.storage != "" {
			flags = append(flags, "storage="+p.storage)
		}
		if n.Plan != nil {
			for _, a := range n.Plan.Alts {
				if a.Chosen {
					flags = append(flags, "plan="+a.Name)
					break
				}
			}
			p.costed = append(p.costed, n)
		}
		fmt.Fprintf(w, "step %s%s\n", stepText(n), flagText(flags))
		p.writePlan(w, n.Input, depth+1)
		for _, pred := range n.Preds {
			indent(w, depth+1)
			fmt.Fprintln(w, "predicate:")
			p.writePlan(w, pred, depth+2)
		}
	case *Filter:
		fmt.Fprintf(w, "filter preds=%d\n", len(n.Preds))
		p.writePlan(w, n.Input, depth+1)
		for _, pred := range n.Preds {
			p.writePlan(w, pred, depth+1)
		}
	case *Sequence:
		fmt.Fprintf(w, "sequence items=%d\n", len(n.Items))
		for _, it := range n.Items {
			p.writePlan(w, it, depth+1)
		}
	case *Binary:
		fmt.Fprintf(w, "binary %s\n", binOpText(n.Op))
		p.writePlan(w, n.Left, depth+1)
		p.writePlan(w, n.Right, depth+1)
	case *Unary:
		fmt.Fprintln(w, "unary -")
		p.writePlan(w, n.X, depth+1)
	case *IfExpr:
		fmt.Fprintln(w, "if")
		p.writePlan(w, n.Cond, depth+1)
		p.writePlan(w, n.Then, depth+1)
		p.writePlan(w, n.Else, depth+1)
	case *Quantified:
		kw := "some"
		if n.Every {
			kw = "every"
		}
		fmt.Fprintf(w, "%s $%s\n", kw, n.Var)
		p.writePlan(w, n.Seq, depth+1)
		p.writePlan(w, n.Pred, depth+1)
	case *FLWOR:
		fmt.Fprintln(w, "flwor")
		for _, cl := range n.Clauses {
			indent(w, depth+1)
			kw := "for"
			if cl.Let {
				kw = "let"
			}
			var flags []string
			if cl.Lazy {
				flags = append(flags, "lazy")
			}
			fmt.Fprintf(w, "%s $%s%s\n", kw, cl.Var, flagText(flags))
			p.writePlan(w, cl.Seq, depth+2)
		}
		if n.Where != nil {
			indent(w, depth+1)
			fmt.Fprintln(w, "where:")
			p.writePlan(w, n.Where, depth+2)
		}
		for _, o := range n.OrderBy {
			indent(w, depth+1)
			fmt.Fprintln(w, "order-by:")
			p.writePlan(w, o.Key, depth+2)
		}
		indent(w, depth+1)
		fmt.Fprintln(w, "return:")
		p.writePlan(w, n.Return, depth+2)
	case *FuncCall:
		fmt.Fprintf(w, "call %s args=%d\n", n.Name, len(n.Args))
		for _, a := range n.Args {
			p.writePlan(w, a, depth+1)
		}
	case *ElementCtor:
		var flags []string
		if n.Virtual {
			flags = append(flags, "virtual")
		}
		fmt.Fprintf(w, "element <%s>%s\n", n.Name, flagText(flags))
		for _, c := range n.Content {
			p.writePlan(w, c, depth+1)
		}
	case *TextCtor:
		fmt.Fprintln(w, "text-ctor")
		p.writePlan(w, n.Content, depth+1)
	case *CommentCtor:
		fmt.Fprintln(w, "comment-ctor")
		p.writePlan(w, n.Content, depth+1)
	default:
		fmt.Fprintf(w, "%T\n", x)
	}
}

func flagText(flags []string) string {
	if len(flags) == 0 {
		return ""
	}
	return " [" + strings.Join(flags, ",") + "]"
}
