package query

import (
	"fmt"
	"strings"
)

// Parser translates a query/statement into the operation tree. One parser
// handles all three statement types (XQuery, XUpdate, DDL), producing the
// uniform representation §3 describes.
type parser struct {
	l *lexer
}

// Parse parses a complete statement.
func Parse(src string) (*Statement, error) {
	p := &parser{l: newLexer(src)}
	st, err := p.parseStatement(src, true)
	if err != nil {
		return nil, err
	}
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, p.l.errf(t.pos, "unexpected %q after statement", t.text)
	}
	return st, nil
}

// parseStatement parses one statement body. allowExplain admits the
// EXPLAIN/PROFILE prefix (once: they cannot nest).
func (p *parser) parseStatement(src string, allowExplain bool) (*Statement, error) {
	st := &Statement{
		Prolog: &Prolog{Funcs: make(map[string]*FuncDecl)},
		Source: strings.TrimSpace(src),
	}
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokName && (t.text == "EXPLAIN" || t.text == "PROFILE") {
		if !allowExplain {
			return nil, p.l.errf(t.pos, "%s cannot be nested", t.text)
		}
		p.l.next()
		t2, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if t2.kind == tokEOF {
			return nil, p.l.errf(t2.pos, "%s requires a statement", t.text)
		}
		inner, err := p.parseStatement(p.l.src[t2.pos:], false)
		if err != nil {
			return nil, err
		}
		st.Explain = &ExplainStmt{Stmt: inner, Profile: t.text == "PROFILE"}
		return st, nil
	}
	if err := p.parseProlog(st.Prolog); err != nil {
		return nil, err
	}
	if t, err = p.l.peek(); err != nil {
		return nil, err
	}
	switch {
	case t.kind == tokName && t.text == "UPDATE":
		u, err := p.parseUpdate()
		if err != nil {
			return nil, err
		}
		st.Update = u
	case t.kind == tokName && (t.text == "CREATE" || t.text == "DROP"):
		d, err := p.parseDDL()
		if err != nil {
			return nil, err
		}
		st.DDL = d
	case t.kind == tokName && t.text == "ANALYZE":
		d, err := p.parseAnalyze()
		if err != nil {
			return nil, err
		}
		st.DDL = d
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Query = e
	}
	return st, nil
}

// ParseExpr parses a bare expression (used by embedded attribute content).
func ParseExpr(src string) (Expr, error) {
	p := &parser{l: newLexer(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, p.l.errf(t.pos, "unexpected %q", t.text)
	}
	return e, nil
}

// ---- token helpers ----

func (p *parser) expectSymbol(s string) error {
	t, err := p.l.next()
	if err != nil {
		return err
	}
	if t.kind != tokSymbol || t.text != s {
		return p.l.errf(t.pos, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectName(s string) error {
	t, err := p.l.next()
	if err != nil {
		return err
	}
	if t.kind != tokName || t.text != s {
		return p.l.errf(t.pos, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) isSymbol(t token, s string) bool { return t.kind == tokSymbol && t.text == s }
func (p *parser) isName(t token, s string) bool   { return t.kind == tokName && t.text == s }

// acceptSymbol consumes s if it is next.
func (p *parser) acceptSymbol(s string) (bool, error) {
	t, err := p.l.peek()
	if err != nil {
		return false, err
	}
	if p.isSymbol(t, s) {
		p.l.next()
		return true, nil
	}
	return false, nil
}

func (p *parser) acceptName(s string) (bool, error) {
	t, err := p.l.peek()
	if err != nil {
		return false, err
	}
	if p.isName(t, s) {
		p.l.next()
		return true, nil
	}
	return false, nil
}

// ---- prolog ----

func (p *parser) parseProlog(pr *Prolog) error {
	for {
		t, err := p.l.peek()
		if err != nil {
			return err
		}
		if !p.isName(t, "declare") {
			return nil
		}
		t2, err := p.l.peekN(1)
		if err != nil {
			return err
		}
		switch {
		case p.isName(t2, "variable"):
			p.l.next()
			p.l.next()
			v, err := p.l.next()
			if err != nil {
				return err
			}
			if v.kind != tokVar {
				return p.l.errf(v.pos, "expected variable name")
			}
			if err := p.expectSymbol(":="); err != nil {
				return err
			}
			e, err := p.parseExprSingle()
			if err != nil {
				return err
			}
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
			pr.Vars = append(pr.Vars, &ForClause{Let: true, Var: v.text, Seq: e})
		case p.isName(t2, "function"):
			p.l.next()
			p.l.next()
			name, err := p.l.next()
			if err != nil {
				return err
			}
			if name.kind != tokName {
				return p.l.errf(name.pos, "expected function name")
			}
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			var params []string
			for {
				t, err := p.l.peek()
				if err != nil {
					return err
				}
				if p.isSymbol(t, ")") {
					p.l.next()
					break
				}
				v, err := p.l.next()
				if err != nil {
					return err
				}
				if v.kind != tokVar {
					return p.l.errf(v.pos, "expected parameter variable")
				}
				params = append(params, v.text)
				if ok, err := p.acceptSymbol(","); err != nil {
					return err
				} else if !ok {
					if err := p.expectSymbol(")"); err != nil {
						return err
					}
					break
				}
			}
			if err := p.expectSymbol("{"); err != nil {
				return err
			}
			body, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectSymbol("}"); err != nil {
				return err
			}
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
			pr.Funcs[name.text] = &FuncDecl{Name: name.text, Params: params, Body: body}
		default:
			return p.l.errf(t2.pos, "unsupported declaration %q", t2.text)
		}
	}
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Sequence{Items: items}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokName {
		t2, err := p.l.peekN(1)
		if err != nil {
			return nil, err
		}
		switch {
		case (t.text == "for" || t.text == "let") && t2.kind == tokVar:
			return p.parseFLWOR()
		case (t.text == "some" || t.text == "every") && t2.kind == tokVar:
			return p.parseQuantified()
		case t.text == "if" && p.isSymbol(t2, "("):
			return p.parseIf()
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (*FLWOR, error) {
	f := &FLWOR{}
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if !(t.kind == tokName && (t.text == "for" || t.text == "let")) {
			break
		}
		isLet := t.text == "let"
		p.l.next()
		for {
			v, err := p.l.next()
			if err != nil {
				return nil, err
			}
			if v.kind != tokVar {
				return nil, p.l.errf(v.pos, "expected variable in %s clause", t.text)
			}
			cl := &ForClause{Let: isLet, Var: v.text}
			if !isLet {
				if ok, err := p.acceptName("at"); err != nil {
					return nil, err
				} else if ok {
					pv, err := p.l.next()
					if err != nil {
						return nil, err
					}
					if pv.kind != tokVar {
						return nil, p.l.errf(pv.pos, "expected position variable after 'at'")
					}
					cl.PosVar = pv.text
				}
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
			} else {
				if err := p.expectSymbol(":="); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.Seq = e
			f.Clauses = append(f.Clauses, cl)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if len(f.Clauses) == 0 {
		return nil, fmt.Errorf("query: FLWOR without clauses")
	}
	if ok, err := p.acceptName("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if ok, err := p.acceptName("order"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectName("by"); err != nil {
			return nil, err
		}
		for {
			k, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: k}
			if ok, err := p.acceptName("descending"); err != nil {
				return nil, err
			} else if ok {
				spec.Descending = true
			} else if ok, err := p.acceptName("ascending"); err != nil {
				return nil, err
			} else if ok {
				_ = ok
			}
			f.OrderBy = append(f.OrderBy, spec)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	r, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	f.Return = r
	return f, nil
}

func (p *parser) parseQuantified() (Expr, error) {
	t, _ := p.l.next() // some | every
	v, err := p.l.next()
	if err != nil {
		return nil, err
	}
	if v.kind != tokVar {
		return nil, p.l.errf(v.pos, "expected variable")
	}
	if err := p.expectName("in"); err != nil {
		return nil, err
	}
	seq, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("satisfies"); err != nil {
		return nil, err
	}
	pred, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &Quantified{Every: t.text == "every", Var: v.text, Seq: seq, Pred: pred}, nil
}

func (p *parser) parseIf() (Expr, error) {
	p.l.next() // if
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	c, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectName("then"); err != nil {
		return nil, err
	}
	th, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectName("else"); err != nil {
		return nil, err
	}
	el, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: c, Then: th, Else: el}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptName("or")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		ok, err := p.acceptName("and")
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
}

var compOps = map[string]BinOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"eq": OpVEq, "ne": OpVNe, "lt": OpVLt, "le": OpVLe, "gt": OpVGt, "ge": OpVGe,
	"is": OpIs, "<<": OpBefore, ">>": OpAfter,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch {
	case t.kind == tokSymbol:
		op = compOps[t.text]
	case t.kind == tokName:
		op = compOps[t.text]
	}
	if op == 0 {
		return left, nil
	}
	p.l.next()
	right, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseRange() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	ok, err := p.acceptName("to")
	if err != nil {
		return nil, err
	}
	if !ok {
		return left, nil
	}
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: OpTo, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		if p.isSymbol(t, "+") {
			op = OpAdd
		} else if p.isSymbol(t, "-") {
			op = OpSub
		} else {
			return left, nil
		}
		p.l.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch {
		case p.isSymbol(t, "*"):
			op = OpMul
		case p.isName(t, "div"):
			op = OpDiv
		case p.isName(t, "idiv"):
			op = OpIDiv
		case p.isName(t, "mod"):
			op = OpMod
		default:
			return left, nil
		}
		p.l.next()
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnion() (Expr, error) {
	left, err := p.parseIntersect()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if !p.isSymbol(t, "|") && !p.isName(t, "union") {
			return left, nil
		}
		p.l.next()
		right, err := p.parseIntersect()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpUnion, Left: left, Right: right}
	}
}

func (p *parser) parseIntersect() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		if p.isName(t, "intersect") {
			op = OpIntersect
		} else if p.isName(t, "except") {
			op = OpExcept
		} else {
			return left, nil
		}
		p.l.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	neg := false
	for {
		ok, err := p.acceptSymbol("-")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		neg = !neg
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if neg {
		return &Unary{X: e}, nil
	}
	return e, nil
}

// ---- path expressions ----

func (p *parser) parsePath() (Expr, error) {
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	var input Expr
	switch {
	case p.isSymbol(t, "/"):
		p.l.next()
		input = &Root{}
		// A lone "/" is the document node.
		t2, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if !p.startsStep(t2) {
			return input, nil
		}
		input, err = p.parseStepExpr(input)
		if err != nil {
			return nil, err
		}
	case p.isSymbol(t, "//"):
		p.l.next()
		dos := &Step{Input: &Root{}, Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}, NeedDDO: true}
		e, err := p.parseStepExpr(dos)
		if err != nil {
			return nil, err
		}
		input = e
	default:
		e, err := p.parseStepExpr(nil)
		if err != nil {
			return nil, err
		}
		input = e
	}
	return p.parseRelative(input)
}

func (p *parser) parseRelative(input Expr) (Expr, error) {
	for {
		t, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		switch {
		case p.isSymbol(t, "/"):
			p.l.next()
			e, err := p.parseStepExpr(input)
			if err != nil {
				return nil, err
			}
			input = e
		case p.isSymbol(t, "//"):
			p.l.next()
			dos := &Step{Input: input, Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}, NeedDDO: true}
			e, err := p.parseStepExpr(dos)
			if err != nil {
				return nil, err
			}
			input = e
		default:
			return input, nil
		}
	}
}

// startsStep reports whether the token can begin a location step or primary
// expression.
func (p *parser) startsStep(t token) bool {
	switch t.kind {
	case tokName, tokVar, tokString, tokNumber:
		return true
	case tokSymbol:
		switch t.text {
		case "(", ".", "..", "@", "*", "$", "<":
			return true
		}
	}
	return false
}

var axisNames = map[string]Axis{
	"child": AxisChild, "descendant": AxisDescendant, "self": AxisSelf,
	"descendant-or-self": AxisDescendantOrSelf, "parent": AxisParent,
	"ancestor": AxisAncestor, "ancestor-or-self": AxisAncestorOrSelf,
	"following-sibling": AxisFollowingSibling, "preceding-sibling": AxisPrecedingSibling,
	"attribute": AxisAttribute,
}

// kind-test names.
var kindTests = map[string]TestKind{
	"text": TestText, "node": TestNode, "comment": TestComment,
	"processing-instruction": TestPI, "element": TestElement, "attribute": TestAttrTest,
}

// parseStepExpr parses one step of a relative path: either an axis step
// (with input as its context) or, when input is nil, possibly a primary
// expression with predicates.
func (p *parser) parseStepExpr(input Expr) (Expr, error) {
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}

	// Reverse step "..".
	if p.isSymbol(t, "..") {
		p.l.next()
		st := &Step{Input: input, Axis: AxisParent, Test: NodeTest{Kind: TestNode}, NeedDDO: true}
		return p.parseStepPredicates(st)
	}
	// Attribute abbreviation "@name".
	if p.isSymbol(t, "@") {
		p.l.next()
		test, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		st := &Step{Input: input, Axis: AxisAttribute, Test: test, NeedDDO: true}
		return p.parseStepPredicates(st)
	}
	// Wildcard step.
	if p.isSymbol(t, "*") {
		p.l.next()
		st := &Step{Input: input, Axis: AxisChild, Test: NodeTest{Kind: TestName, Name: "*"}, NeedDDO: true}
		return p.parseStepPredicates(st)
	}
	// Explicit axis.
	if t.kind == tokName {
		// Computed constructors shadow kind-test names at the start of a
		// relative path: element name {...}, text {...}, comment {...}.
		if input == nil {
			t2, err := p.l.peekN(1)
			if err != nil {
				return nil, err
			}
			if (t.text == "element" && t2.kind == tokName) ||
				((t.text == "text" || t.text == "comment") && p.isSymbol(t2, "{")) {
				return p.parsePostfix()
			}
		}
		if axis, ok := axisNames[t.text]; ok {
			t2, err := p.l.peekN(1)
			if err != nil {
				return nil, err
			}
			if p.isSymbol(t2, "::") {
				p.l.next()
				p.l.next()
				test, err := p.parseNodeTest()
				if err != nil {
					return nil, err
				}
				st := &Step{Input: input, Axis: axis, Test: test, NeedDDO: true}
				return p.parseStepPredicates(st)
			}
		}
		// Kind test as child step: text(), node(), ...
		if _, ok := kindTests[t.text]; ok {
			t2, err := p.l.peekN(1)
			if err != nil {
				return nil, err
			}
			if p.isSymbol(t2, "(") {
				test, err := p.parseNodeTest()
				if err != nil {
					return nil, err
				}
				axis := AxisChild
				if test.Kind == TestAttrTest {
					axis = AxisAttribute
				}
				st := &Step{Input: input, Axis: axis, Test: test, NeedDDO: true}
				return p.parseStepPredicates(st)
			}
		}
		// Function call?
		t2, err := p.l.peekN(1)
		if err != nil {
			return nil, err
		}
		if p.isSymbol(t2, "(") {
			if input != nil {
				// Function call in a non-leading step: evaluate per context
				// item is not supported; treat as error for clarity.
				return nil, p.l.errf(t.pos, "function call %q cannot follow '/'", t.text)
			}
			return p.parsePostfix()
		}
		// Plain name: child step.
		p.l.next()
		st := &Step{Input: input, Axis: AxisChild, Test: NodeTest{Kind: TestName, Name: t.text}, NeedDDO: true}
		return p.parseStepPredicates(st)
	}

	// Primary expression (only valid at the start of a relative path).
	if input != nil {
		return nil, p.l.errf(t.pos, "expected location step, got %q", t.text)
	}
	return p.parsePostfix()
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	t, err := p.l.next()
	if err != nil {
		return NodeTest{}, err
	}
	if p.isSymbol(t, "*") {
		return NodeTest{Kind: TestName, Name: "*"}, nil
	}
	if t.kind != tokName {
		return NodeTest{}, p.l.errf(t.pos, "expected node test, got %q", t.text)
	}
	if kind, ok := kindTests[t.text]; ok {
		t2, err := p.l.peek()
		if err != nil {
			return NodeTest{}, err
		}
		if p.isSymbol(t2, "(") {
			p.l.next()
			name := ""
			t3, err := p.l.peek()
			if err != nil {
				return NodeTest{}, err
			}
			if t3.kind == tokName || t3.kind == tokString {
				p.l.next()
				name = t3.text
			} else if p.isSymbol(t3, "*") {
				p.l.next()
				name = "*"
			}
			if err := p.expectSymbol(")"); err != nil {
				return NodeTest{}, err
			}
			return NodeTest{Kind: kind, Name: name}, nil
		}
	}
	return NodeTest{Kind: TestName, Name: t.text}, nil
}

func (p *parser) parseStepPredicates(st *Step) (Expr, error) {
	for {
		ok, err := p.acceptSymbol("[")
		if err != nil {
			return nil, err
		}
		if !ok {
			return st, nil
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		st.Preds = append(st.Preds, pred)
	}
}

// parsePostfix parses a primary expression with optional predicates.
func (p *parser) parsePostfix() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var preds []Expr
	for {
		ok, err := p.acceptSymbol("[")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
	if len(preds) == 0 {
		return prim, nil
	}
	return &Filter{Input: prim, Preds: preds}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case t.kind == tokString:
		p.l.next()
		return &Literal{String: t.text, IsString: true}, nil
	case t.kind == tokNumber:
		p.l.next()
		return &Literal{Number: t.num}, nil
	case t.kind == tokVar:
		p.l.next()
		return &VarRef{Name: t.text}, nil
	case p.isSymbol(t, "."):
		p.l.next()
		return &ContextItem{}, nil
	case p.isSymbol(t, "("):
		p.l.next()
		t2, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if p.isSymbol(t2, ")") {
			p.l.next()
			return &Sequence{}, nil // empty sequence
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isSymbol(t, "<"):
		return p.parseDirectConstructor(t.pos)
	case t.kind == tokName:
		t2, err := p.l.peekN(1)
		if err != nil {
			return nil, err
		}
		// Computed constructors.
		if p.isSymbol(t2, "{") {
			switch t.text {
			case "text":
				p.l.next()
				p.l.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol("}"); err != nil {
					return nil, err
				}
				return &TextCtor{Content: e}, nil
			case "comment":
				p.l.next()
				p.l.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol("}"); err != nil {
					return nil, err
				}
				return &CommentCtor{Content: e}, nil
			}
		}
		if t.text == "element" && t2.kind == tokName {
			// element name { content }
			p.l.next()
			p.l.next()
			if err := p.expectSymbol("{"); err != nil {
				return nil, err
			}
			var content []Expr
			t3, err := p.l.peek()
			if err != nil {
				return nil, err
			}
			if !p.isSymbol(t3, "}") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				content = []Expr{e}
			}
			if err := p.expectSymbol("}"); err != nil {
				return nil, err
			}
			return &ElementCtor{Name: t2.text, Content: content}, nil
		}
		if p.isSymbol(t2, "(") {
			// Function call.
			p.l.next()
			p.l.next()
			fc := &FuncCall{Name: t.text}
			t3, err := p.l.peek()
			if err != nil {
				return nil, err
			}
			if !p.isSymbol(t3, ")") {
				for {
					arg, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					ok, err := p.acceptSymbol(",")
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			// doc("x") is turned into the dedicated operation so the
			// rewriter can recognise structural paths.
			if fc.Name == "doc" || fc.Name == "fn:doc" {
				if len(fc.Args) != 1 {
					return nil, p.l.errf(t.pos, "doc() takes one argument")
				}
				if lit, ok := fc.Args[0].(*Literal); ok && lit.IsString {
					return &DocCall{Name: lit.String}, nil
				}
				return nil, p.l.errf(t.pos, "doc() requires a string literal")
			}
			return fc, nil
		}
	}
	return nil, p.l.errf(t.pos, "unexpected %q", t.text)
}
