package query

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sedna/internal/core"
)

// roQuery is the goroutine-safe variant of q: it returns errors instead of
// failing the test.
func roQuery(db *core.Database, src string) (string, error) {
	tx, err := db.BeginReadOnly()
	if err != nil {
		return "", err
	}
	defer tx.Rollback()
	res, err := Execute(NewExecCtx(tx), src)
	if err != nil {
		return "", err
	}
	return res.String()
}

// TestResidentMatchesPaged is the resident-mode property test: the whole
// parallel property corpus — descendant fan-out, predicates, FLWORs,
// aggregates, attributes — must serialize byte-identically whether served
// from block chains or from the resident arrays, serial or fanned out.
func TestResidentMatchesPaged(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	paged := make([]string, len(parallelPropertyQueries))
	for i, src := range parallelPropertyQueries {
		paged[i] = q(t, db, src)
	}
	db.SetResident(true)
	defer db.SetResident(false)
	for i, src := range parallelPropertyQueries {
		if got := q(t, db, src); got != paged[i] {
			t.Errorf("resident result diverges for %s\n got: %.200s\nwant: %.200s", src, got, paged[i])
		}
		if got := qw(t, db, src, 4); got != paged[i] {
			t.Errorf("resident parallel result diverges for %s\n got: %.200s\nwant: %.200s", src, got, paged[i])
		}
	}
	if db.ResidentCache().Len() == 0 {
		t.Fatal("no document went resident during the corpus run")
	}
	m := db.Metrics().Snapshot()
	if m.Counters["resident.builds"] == 0 || m.Counters["resident.hits"] == 0 {
		t.Fatalf("resident cache unused: builds=%d hits=%d",
			m.Counters["resident.builds"], m.Counters["resident.hits"])
	}
}

// TestResidentUpdateInvalidation pins the lifecycle: an update drops the
// cached representation, and the rebuilt one is byte-identical to paged
// access of the new content.
func TestResidentUpdateInvalidation(t *testing.T) {
	db := testDB(t)
	db.SetResident(true)
	defer db.SetResident(false)
	checks := []string{
		`doc("lib")/library/book/title`,
		`count(doc("lib")//author)`,
		`doc("lib")//author[text() = "Codd"]`,
	}
	for _, src := range checks {
		q(t, db, src) // warm the cache
	}
	if !db.ResidentCache().Contains("lib") {
		t.Fatal("lib not resident after warm-up")
	}
	before := db.Metrics().Snapshot().Counters["resident.invalidations"]
	upd(t, db, `UPDATE insert <author>Stonebraker</author> into doc("lib")/library/paper`)
	if db.ResidentCache().Contains("lib") {
		t.Fatal("update did not invalidate the resident copy")
	}
	if after := db.Metrics().Snapshot().Counters["resident.invalidations"]; after <= before {
		t.Fatalf("invalidations counter did not move: %d -> %d", before, after)
	}
	// Results after the rebuild must match paged access byte for byte.
	for _, src := range append(checks, `count(doc("lib")//author[text() = "Stonebraker"])`) {
		got := q(t, db, src)
		db.SetResident(false)
		want := q(t, db, src)
		db.SetResident(true)
		if got != want {
			t.Errorf("post-update divergence for %s\n got: %s\nwant: %s", src, got, want)
		}
	}
	// A node replacement must also invalidate.
	q(t, db, `string(doc("lib")//publisher)`)
	upd(t, db, `UPDATE replace $p in doc("lib")//publisher with <publisher>MIT Press</publisher>`)
	if got := q(t, db, `string(doc("lib")//publisher)`); got != "MIT Press" {
		t.Fatalf("replace served stale resident copy: %q", got)
	}
}

// TestResidentPrefetchSuppression: a statement served entirely resident
// turns chain readahead off for its transaction; a paged statement keeps the
// configured depth.
func TestResidentPrefetchSuppression(t *testing.T) {
	db := testDB(t)
	db.SetPrefetchDepth(6)
	defer db.SetPrefetchDepth(0)
	run := func() int {
		tx, err := db.BeginReadOnly()
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Rollback()
		if _, err := Execute(NewExecCtx(tx), `count(doc("lib")//author)`); err != nil {
			t.Fatal(err)
		}
		return tx.PrefetchDepth()
	}
	if d := run(); d != 6 {
		t.Fatalf("paged statement left prefetch depth %d, want 6", d)
	}
	db.SetResident(true)
	defer db.SetResident(false)
	if d := run(); d != 0 {
		t.Fatalf("resident statement left prefetch depth %d, want 0 (suppressed)", d)
	}
}

// TestResidentExplainProfileStorage pins the plan annotations: EXPLAIN
// predicts the storage backend, PROFILE reports the one actually used.
func TestResidentExplainProfileStorage(t *testing.T) {
	db := testDB(t)
	out := q(t, db, `EXPLAIN doc("lib")//author`)
	if strings.Contains(out, "storage:") {
		t.Errorf("EXPLAIN mentions storage with resident mode off:\n%s", out)
	}
	out = q(t, db, `PROFILE doc("lib")//author`)
	if !strings.Contains(out, "storage=paged") {
		t.Errorf("PROFILE missing storage=paged with resident off:\n%s", out)
	}
	db.SetResident(true)
	defer db.SetResident(false)
	out = q(t, db, `EXPLAIN doc("lib")//author`)
	if !strings.Contains(out, "storage: resident") {
		t.Errorf("EXPLAIN missing storage: resident:\n%s", out)
	}
	if !strings.Contains(out, "storage=resident") {
		t.Errorf("EXPLAIN step missing storage=resident flag:\n%s", out)
	}
	out = q(t, db, `PROFILE doc("lib")//author`)
	if !strings.Contains(out, "storage=resident") {
		t.Errorf("PROFILE missing storage=resident:\n%s", out)
	}
	// An update statement always predicts paged.
	out = q(t, db, `EXPLAIN UPDATE delete doc("lib")//paper`)
	if !strings.Contains(out, "storage: paged") {
		t.Errorf("EXPLAIN of update missing storage: paged:\n%s", out)
	}
}

// TestResidentConcurrentReadsAndUpdates races snapshot readers against
// updates that invalidate and rebuild the resident copy; meant for the
// -race gate. Every read must see a consistent count.
func TestResidentConcurrentReadsAndUpdates(t *testing.T) {
	db := testDB(t)
	db.SetResident(true)
	defer db.SetResident(false)
	const readers, reads, writes = 4, 40, 10
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				got, err := roQuery(db, `count(doc("lib")//author)`)
				if err != nil {
					errs <- err
					return
				}
				if n, err := strconv.Atoi(got); err != nil || n < 5 || n > 5+writes {
					errs <- fmt.Errorf("inconsistent author count %q", got)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			tx, err := db.Begin()
			if err != nil {
				errs <- err
				return
			}
			src := fmt.Sprintf(`UPDATE insert <author>w%d</author> into doc("lib")/library/paper`, i)
			if _, err := Execute(NewExecCtx(tx), src); err != nil {
				tx.Rollback()
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResidentEvictionChurn gives the cache room for only one of two
// documents and races readers over both: constant build/evict churn must
// never corrupt results. Also meant for the -race gate.
func TestResidentEvictionChurn(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{NoSync: true, Resident: true})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := tx.LoadXML(name, strings.NewReader(libraryXML)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	q(t, db, `count(doc("a")//author)`) // warm one doc to measure its footprint
	size := db.ResidentCache().TotalBytes()
	if size == 0 {
		t.Fatal("warm-up did not cache")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = core.Open(dir, core.Options{NoSync: true, Resident: true, ResidentBudget: int64(size + 64)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	want := func(name string) string { return q(t, db, `count(doc("`+name+`")//author)`) }
	wantA, wantB := want("a"), want("b")
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			names := []string{"a", "b"}
			for i := 0; i < 30; i++ {
				name := names[(r+i)%2]
				got, err := roQuery(db, `count(doc("`+name+`")//author)`)
				if err != nil {
					errs <- err
					return
				}
				exp := wantA
				if name == "b" {
					exp = wantB
				}
				if got != exp {
					errs <- fmt.Errorf("doc %s: got %q want %q", name, got, exp)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if ev := db.Metrics().Snapshot().Counters["resident.evictions"]; ev == 0 {
		t.Error("no evictions under a one-document budget")
	}
}
