package query

import (
	"fmt"

	"sedna/internal/schema"
	"sedna/internal/storage"
)

// Structural location paths (§5.1.4): a path that starts from a document
// node and contains only descending axes and no predicates is resolved
// entirely over the descriptive schema in main memory; execution then just
// scans the block lists of the resulting schema nodes, which are already in
// document order.

// structuralChain decomposes a step chain down to its DocCall head. It
// returns nil when the chain is not structural.
func structuralChain(s *Step) (*DocCall, []*Step) {
	var steps []*Step
	cur := s
	for {
		if len(cur.Preds) > 0 {
			return nil, nil
		}
		switch cur.Axis {
		case AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisAttribute, AxisSelf:
		default:
			return nil, nil
		}
		steps = append(steps, cur)
		switch in := cur.Input.(type) {
		case *DocCall:
			// Reverse into evaluation order.
			for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
				steps[i], steps[j] = steps[j], steps[i]
			}
			return in, steps
		case *Step:
			cur = in
		default:
			return nil, nil
		}
	}
}

// resolveStructural maps the step chain onto the descriptive schema,
// returning the set of schema nodes the path denotes.
func resolveStructural(root *schema.Node, steps []*Step) []*schema.Node {
	cur := map[*schema.Node]bool{root: true}
	for _, st := range steps {
		next := make(map[*schema.Node]bool)
		for sn := range cur {
			switch st.Axis {
			case AxisSelf:
				if matchesSchema(sn, st.Test) {
					next[sn] = true
				}
			case AxisChild:
				for _, c := range sn.Children {
					if c.Kind != schema.KindAttribute && matchesSchema(c, st.Test) {
						next[c] = true
					}
				}
			case AxisAttribute:
				for _, c := range sn.Children {
					if c.Kind == schema.KindAttribute && matchesSchema(c, attributeTest(st.Test)) {
						next[c] = true
					}
				}
			case AxisDescendant, AxisDescendantOrSelf:
				if st.Axis == AxisDescendantOrSelf && matchesSchema(sn, st.Test) {
					next[sn] = true
				}
				for _, d := range sn.Descendants(func(c *schema.Node) bool {
					return c.Kind != schema.KindAttribute && matchesSchema(c, st.Test)
				}) {
					next[d] = true
				}
			}
		}
		cur = next
	}
	out := make([]*schema.Node, 0, len(cur))
	for sn := range cur {
		out = append(out, sn)
	}
	return out
}

// evalStructural executes a structural step chain: schema resolution in
// memory, then direct block-list scans merged by document order.
func evalStructural(s *Step, e *env, f *focus) ([]Item, error) {
	docCall, steps := structuralChain(s)
	if docCall == nil {
		return nil, fmt.Errorf("query: step marked structural is not a structural path")
	}
	docItems, err := evalDoc(e, docCall.Name)
	if err != nil {
		return nil, err
	}
	docNode := docItems[0].(*NodeItem)
	doc := docNode.Doc
	targets := resolveStructural(doc.Schema.Root, steps)
	if len(targets) == 0 {
		return nil, nil
	}
	st := e.storeFor(doc)
	if len(targets) == 1 {
		// Single schema node: its list already is the answer in document
		// order — no per-node work at all.
		var out []Item
		err := st.schemaScan(e, doc, targets[0], func(d storage.Desc) (bool, error) {
			out = append(out, &NodeItem{Doc: doc, D: d})
			return true, nil
		})
		return out, err
	}
	// A costed plan that chose serial execution (fan-out startup would
	// outweigh the scan) overrides the size heuristics below.
	if s.Plan == nil || s.Plan.Workers != 1 {
		if merged, ok, err := parallelStreams(e, doc, targets, st, &docNode.D, nil); err != nil {
			return nil, err
		} else if ok {
			return merged, nil
		}
	}
	streams := make([]descStream, 0, len(targets))
	for _, sn := range targets {
		s, err := st.descendantScan(e, doc, sn, &docNode.D)
		if err != nil {
			return nil, err
		}
		if s != nil && s.valid() {
			streams = append(streams, s)
		}
	}
	return mergeStreams(e, doc, streams, nil)
}
