// Package query implements Sedna's query stack (§3, §5): a parser producing
// a uniform operation tree for XQuery queries, XUpdate statements and DDL
// statements; a static analyzer; the optimizing rewriter with the paper's
// four rule-based techniques (DDO elimination, descendant-or-self combining,
// lazy invariant for-expressions, structural-path extraction); and a
// Volcano-style executor whose physical operations implement the
// open-next-close interface over the schema-driven storage.
package query

import (
	"fmt"

	"sedna/internal/opt"
)

// Expr is any expression of the operation tree.
type Expr interface {
	expr()
}

// Axis enumerates XPath axes.
type Axis int

// Supported axes.
const (
	AxisChild Axis = iota + 1
	AxisDescendant
	AxisSelf
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisAttribute
)

func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisSelf:
		return "self"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisAncestorOrSelf:
		return "ancestor-or-self"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisAttribute:
		return "attribute"
	default:
		return fmt.Sprintf("axis(%d)", int(a))
	}
}

// TestKind is the node-test kind of a step.
type TestKind int

// Node tests.
const (
	TestName     TestKind = iota + 1 // name or *
	TestNode                         // node()
	TestText                         // text()
	TestComment                      // comment()
	TestPI                           // processing-instruction()
	TestElement                      // element() / element(name)
	TestAttrTest                     // attribute() / attribute(name)
)

// NodeTest is a step's node test.
type NodeTest struct {
	Kind TestKind
	Name string // "" or "*" = any name
}

// Literal is a string or numeric literal.
type Literal struct {
	String   string
	Number   float64
	IsString bool
}

// VarRef references a variable $Name.
type VarRef struct{ Name string }

// ContextItem is ".".
type ContextItem struct{}

// Root is "/" — the root of the context node's document.
type Root struct{}

// DocCall is doc("name") — resolved specially so the rewriter can detect
// structural paths.
type DocCall struct{ Name string }

// Step is one location step with predicates. The flags are filled by the
// optimizing rewriter.
type Step struct {
	Input Expr // context sequence (nil only inside PathExpr chains)
	Axis  Axis
	Test  NodeTest
	Preds []Expr

	// NeedDDO is true when the step's result must be sorted into
	// distinct-document-order at runtime; the rewriter clears it when the
	// inferred properties prove it redundant (§5.1.1).
	NeedDDO bool

	// Structural is set when this step ends a structural location path
	// (descending axes from a document node, no predicates), enabling the
	// schema-level evaluation of §5.1.4.
	Structural bool

	// Plan is the cost-based optimizer's physical decision for this step
	// (nil when the optimizer did not run or had nothing to decide).
	Plan *StepPlan
}

// StepPlan is one step's costed physical plan: the estimated output
// cardinality, the alternatives considered (EXPLAIN renders them), and the
// chosen access method.
type StepPlan struct {
	EstRows float64
	Alts    []opt.Alt

	// Probe, when set, replaces the step's evaluation with a value-index
	// probe plus a full predicate recheck.
	Probe *IndexProbe

	// Workers is the planned fan-out for a structural scan: 0 = no decision
	// (executor heuristics apply), 1 = forced serial, ≥2 = parallel with
	// that many workers.
	Workers int

	// Sampled reports that the statistics behind the estimates came from a
	// sampled ANALYZE (reservoir histograms); EXPLAIN annotates the step.
	Sampled bool

	// blocks is the estimated chain-block volume behind the step, kept for
	// the optimizer's prefetch decision.
	blocks float64
}

// IndexProbe is a planned value-index access: probe the named index with
// the comparison, then recheck the step's predicates on the candidates.
type IndexProbe struct {
	Index    string
	Op       opt.CmpOp
	IsString bool
	S        string
	F        float64
}

// Filter is a primary expression with predicates, e.g. (expr)[p].
type Filter struct {
	Input Expr
	Preds []Expr
}

// Sequence is the comma operator.
type Sequence struct{ Items []Expr }

// Binary operators.
type BinOp int

// Binary operator kinds.
const (
	OpOr BinOp = iota + 1
	OpAnd
	OpEq  // general =
	OpNe  // !=
	OpLt  // <
	OpLe  // <=
	OpGt  // >
	OpGe  // >=
	OpVEq // value eq
	OpVNe
	OpVLt
	OpVLe
	OpVGt
	OpVGe
	OpIs     // node identity
	OpBefore // <<
	OpAfter  // >>
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
	OpUnion
	OpIntersect
	OpExcept
	OpTo // range 1 to 5
)

// Binary is a binary expression.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

// Unary is unary minus.
type Unary struct{ X Expr }

// IfExpr is if (c) then t else e.
type IfExpr struct{ Cond, Then, Else Expr }

// Quantified is some/every $var in seq satisfies pred.
type Quantified struct {
	Every bool
	Var   string
	Seq   Expr
	Pred  Expr
}

// ForClause is one for/let binding of a FLWOR expression.
type ForClause struct {
	Let     bool
	Var     string
	PosVar  string // "at $i", for-clauses only
	Seq     Expr
	Lazy    bool // §5.1.3: invariant of all outer for-variables → evaluate once
	CacheID int  // runtime cache slot for lazy clauses
}

// FLWOR is a for-let-where-order-return expression.
type FLWOR struct {
	Clauses []*ForClause
	Where   Expr
	OrderBy []OrderSpec
	Return  Expr
}

// OrderSpec is one "order by" key.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// FuncCall is a function call by QName.
type FuncCall struct {
	Name string
	Args []Expr
}

// ElementCtor is a direct or computed element constructor.
type ElementCtor struct {
	Name    string
	Attrs   []AttrCtor
	Content []Expr

	// Virtual is set by the rewriter when the constructed content is only
	// ever serialized, so the deep copy can be replaced by references
	// (§5.2.1 virtual element constructors).
	Virtual bool
}

// AttrCtor is an attribute constructor inside an element constructor.
type AttrCtor struct {
	Name  string
	Value []Expr // string literals and enclosed expressions
}

// TextCtor is text { expr } or literal text content.
type TextCtor struct{ Content Expr }

// CommentCtor is <!--...--> or comment { expr }.
type CommentCtor struct{ Content Expr }

func (*Literal) expr()     {}
func (*VarRef) expr()      {}
func (*ContextItem) expr() {}
func (*Root) expr()        {}
func (*DocCall) expr()     {}
func (*Step) expr()        {}
func (*Filter) expr()      {}
func (*Sequence) expr()    {}
func (*Binary) expr()      {}
func (*Unary) expr()       {}
func (*IfExpr) expr()      {}
func (*Quantified) expr()  {}
func (*FLWOR) expr()       {}
func (*FuncCall) expr()    {}
func (*ElementCtor) expr() {}
func (*TextCtor) expr()    {}
func (*CommentCtor) expr() {}

// FuncDecl is a user-declared XQuery function from the prolog.
type FuncDecl struct {
	Name   string
	Params []string
	Body   Expr
}

// Prolog holds query prolog declarations.
type Prolog struct {
	Vars  []*ForClause // declare variable $x := expr
	Funcs map[string]*FuncDecl
}

// Statement is a parsed query, update, DDL, EXPLAIN or PROFILE statement.
type Statement struct {
	Prolog *Prolog

	// Exactly one of the following is set.
	Query   Expr
	Update  *Update
	DDL     *DDL
	Explain *ExplainStmt

	// Source is the statement's original text (what the parser consumed);
	// traces and the slow-query log carry it.
	Source string

	// Rewrites records which optimizing-rewriter rules fired on this
	// statement, in application order; EXPLAIN renders them.
	Rewrites []string
}

// ExplainStmt wraps the statement under an EXPLAIN or PROFILE keyword.
// EXPLAIN renders the inner statement's operation tree after rewriting,
// without executing it; PROFILE executes the inner statement under a forced
// trace and renders the resulting span tree.
type ExplainStmt struct {
	Stmt    *Statement
	Profile bool
}

// ReadOnly reports whether executing the statement needs no update
// transaction: queries and plain EXPLAIN are read-only, PROFILE follows the
// statement it executes.
func (st *Statement) ReadOnly() bool {
	if st.Explain != nil {
		if st.Explain.Profile {
			return st.Explain.Stmt.ReadOnly()
		}
		return true
	}
	return st.Query != nil
}

// UpdateKind enumerates XUpdate statement kinds (§3, [17]-style syntax).
type UpdateKind int

// Update kinds.
const (
	UpdInsertInto UpdateKind = iota + 1
	UpdInsertPreceding
	UpdInsertFollowing
	UpdDelete
	UpdReplace
	UpdRename
)

// Update is an XUpdate statement: the first part selects target nodes, the
// second updates them (§5.2).
type Update struct {
	Kind   UpdateKind
	Source Expr   // inserted content / replacement (bound to Var for replace)
	Target Expr   // target node selection
	Var    string // replace: iteration variable
	Name   string // rename: new name
}

// DDLKind enumerates data-definition statements.
type DDLKind int

// DDL kinds.
const (
	DDLCreateDocument DDLKind = iota + 1
	DDLDropDocument
	DDLCreateIndex
	DDLDropIndex
	DDLAnalyze
)

// DDL is a data-definition statement.
type DDL struct {
	Kind    DDLKind
	Name    string // document or index name
	DocName string // CREATE INDEX: target document
	OnPath  Expr   // CREATE INDEX: node path
	ByPath  Expr   // CREATE INDEX: key path relative to node
	AsType  string // "string" | "number"
}
