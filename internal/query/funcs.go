package query

import (
	"fmt"
	"math"
	"strings"

	"sedna/internal/schema"
)

// evalFuncCall dispatches user-declared functions and the built-in library.
func evalFuncCall(fc *FuncCall, e *env, f *focus) ([]Item, error) {
	if fd, ok := e.ctx.funcs[fc.Name]; ok {
		if len(fc.Args) != len(fd.Params) {
			return nil, fmt.Errorf("query: %s expects %d arguments, got %d", fc.Name, len(fd.Params), len(fc.Args))
		}
		// Function bodies evaluate in the global (prolog) scope extended
		// with the parameters — caller locals are not visible.
		fe := e.ctx.globalEnv
		if fe == nil {
			fe = &env{ctx: e.ctx, r: e.r}
		}
		for i, p := range fd.Params {
			v, err := eval(fc.Args[i], e, f)
			if err != nil {
				return nil, err
			}
			fe = fe.bind(p, v)
		}
		return eval(fd.Body, fe, nil)
	}
	name := strings.TrimPrefix(fc.Name, "fn:")

	// Focus-dependent zero-argument functions.
	switch name {
	case "position":
		if f == nil {
			return nil, fmt.Errorf("query: position() outside predicate")
		}
		return []Item{num(float64(f.pos))}, nil
	case "last":
		if f == nil {
			return nil, fmt.Errorf("query: last() outside predicate")
		}
		return []Item{num(float64(f.size))}, nil
	case "true":
		return []Item{boolean(true)}, nil
	case "false":
		return []Item{boolean(false)}, nil
	}

	// Evaluate arguments. Functions with an optional first argument default
	// to the context item.
	args := make([][]Item, len(fc.Args))
	for i, a := range fc.Args {
		v, err := eval(a, e, f)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	argOrContext := func() ([]Item, error) {
		if len(args) > 0 {
			return args[0], nil
		}
		if f == nil || f.item == nil {
			return nil, fmt.Errorf("query: %s() requires an argument or context item", name)
		}
		return []Item{f.item}, nil
	}

	switch name {
	case "count":
		if len(args) != 1 {
			return nil, fmt.Errorf("query: count() takes one argument")
		}
		return []Item{num(float64(len(args[0])))}, nil

	case "empty":
		return []Item{boolean(len(args[0]) == 0)}, nil

	case "exists":
		return []Item{boolean(len(args[0]) != 0)}, nil

	case "not":
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return []Item{boolean(!b)}, nil

	case "boolean":
		b, err := ebv(args[0])
		if err != nil {
			return nil, err
		}
		return []Item{boolean(b)}, nil

	case "string":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return []Item{str("")}, nil
		}
		s, err := itemStringValue(e, v[0])
		if err != nil {
			return nil, err
		}
		return []Item{str(s)}, nil

	case "number":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return []Item{num(math.NaN())}, nil
		}
		a, err := atomize(e, v[0])
		if err != nil {
			return nil, err
		}
		return []Item{num(a.NumberValue())}, nil

	case "data":
		var out []Item
		for _, it := range args[0] {
			a, err := atomize(e, it)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		return out, nil

	case "sum", "avg", "min", "max":
		return evalAggregate(name, args[0], e)

	case "distinct-values":
		seen := make(map[string]bool)
		var out []Item
		for _, it := range args[0] {
			a, err := atomize(e, it)
			if err != nil {
				return nil, err
			}
			k := a.StringValue()
			if !seen[k] {
				seen[k] = true
				out = append(out, a)
			}
		}
		return out, nil

	case "name", "local-name":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return []Item{str("")}, nil
		}
		var qname string
		switch x := v[0].(type) {
		case *NodeItem:
			sn := x.Doc.Schema.ByID(x.D.SchemaID)
			if sn != nil && sn.Kind.HasName() {
				qname = sn.Name
			}
		case *TempItem:
			if x.N.Kind.HasName() {
				qname = x.N.Name
			}
		default:
			return nil, fmt.Errorf("query: %s() over an atomic value", name)
		}
		if name == "local-name" {
			if i := strings.LastIndexByte(qname, ':'); i >= 0 {
				qname = qname[i+1:]
			}
		}
		return []Item{str(qname)}, nil

	case "concat":
		var sb strings.Builder
		for _, a := range args {
			s, err := atomizedString(e, a, "")
			if err != nil {
				return nil, err
			}
			sb.WriteString(s)
		}
		return []Item{str(sb.String())}, nil

	case "string-join":
		sep := ""
		if len(args) > 1 {
			s, err := atomizedString(e, args[1], "")
			if err != nil {
				return nil, err
			}
			sep = s
		}
		var parts []string
		for _, it := range args[0] {
			a, err := atomize(e, it)
			if err != nil {
				return nil, err
			}
			parts = append(parts, a.StringValue())
		}
		return []Item{str(strings.Join(parts, sep))}, nil

	case "contains", "starts-with", "ends-with":
		s1, err := atomizedString(e, args[0], "")
		if err != nil {
			return nil, err
		}
		s2, err := atomizedString(e, args[1], "")
		if err != nil {
			return nil, err
		}
		var b bool
		switch name {
		case "contains":
			b = strings.Contains(s1, s2)
		case "starts-with":
			b = strings.HasPrefix(s1, s2)
		default:
			b = strings.HasSuffix(s1, s2)
		}
		return []Item{boolean(b)}, nil

	case "substring":
		s, err := atomizedString(e, args[0], "")
		if err != nil {
			return nil, err
		}
		start, err := singletonNumber(e, args[1])
		if err != nil || start == nil {
			return nil, err
		}
		runes := []rune(s)
		from := int(math.Round(start.NumberValue())) - 1
		to := len(runes)
		if len(args) > 2 {
			length, err := singletonNumber(e, args[2])
			if err != nil || length == nil {
				return nil, err
			}
			to = from + int(math.Round(length.NumberValue()))
		}
		if from < 0 {
			from = 0
		}
		if to > len(runes) {
			to = len(runes)
		}
		if from >= to {
			return []Item{str("")}, nil
		}
		return []Item{str(string(runes[from:to]))}, nil

	case "string-length":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		s, err := atomizedString(e, v, "")
		if err != nil {
			return nil, err
		}
		return []Item{num(float64(len([]rune(s))))}, nil

	case "normalize-space":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		s, err := atomizedString(e, v, "")
		if err != nil {
			return nil, err
		}
		return []Item{str(strings.Join(strings.Fields(s), " "))}, nil

	case "upper-case", "lower-case":
		s, err := atomizedString(e, args[0], "")
		if err != nil {
			return nil, err
		}
		if name == "upper-case" {
			return []Item{str(strings.ToUpper(s))}, nil
		}
		return []Item{str(strings.ToLower(s))}, nil

	case "round", "floor", "ceiling", "abs":
		a, err := singletonNumber(e, args[0])
		if err != nil {
			return nil, err
		}
		if a == nil {
			return nil, nil
		}
		v := a.NumberValue()
		switch name {
		case "round":
			v = math.Round(v)
		case "floor":
			v = math.Floor(v)
		case "ceiling":
			v = math.Ceil(v)
		case "abs":
			v = math.Abs(v)
		}
		return []Item{num(v)}, nil

	case "root":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, nil
		}
		switch x := v[0].(type) {
		case *NodeItem:
			return eval(&Root{}, e, &focus{item: x, pos: 1, size: 1})
		case *TempItem:
			t := x.N
			for t.Parent != nil {
				t = t.Parent
			}
			return []Item{&TempItem{N: t}}, nil
		}
		return nil, fmt.Errorf("query: root() over an atomic value")

	case "text":
		// Convenience alias used by some Sedna queries: text content of the
		// context element.
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, nil
		}
		s, err := itemStringValue(e, v[0])
		if err != nil {
			return nil, err
		}
		return []Item{str(s)}, nil

	case "index-scan":
		if len(args) != 2 {
			return nil, fmt.Errorf("query: index-scan(name, value) takes two arguments")
		}
		nameVal, err := atomizedString(e, args[0], "")
		if err != nil {
			return nil, err
		}
		if len(args[1]) == 0 {
			return nil, nil
		}
		v, err := atomize(e, args[1][0])
		if err != nil {
			return nil, err
		}
		return evalIndexScan(e, nameVal, v)

	case "node-kind":
		v, err := argOrContext()
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, nil
		}
		switch x := v[0].(type) {
		case *NodeItem:
			return []Item{str(x.Doc.Schema.ByID(x.D.SchemaID).Kind.String())}, nil
		case *TempItem:
			return []Item{str(x.N.Kind.String())}, nil
		}
		return nil, fmt.Errorf("query: node-kind() over an atomic value")

	default:
		return nil, fmt.Errorf("query: unknown function %s()", fc.Name)
	}
}

func evalAggregate(name string, items []Item, e *env) ([]Item, error) {
	if len(items) == 0 {
		if name == "sum" {
			return []Item{num(0)}, nil
		}
		return nil, nil
	}
	// Numeric aggregation unless min/max over strings.
	allStrings := true
	for _, it := range items {
		a, err := atomize(e, it)
		if err != nil {
			return nil, err
		}
		if a.Kind == AtomNumber {
			allStrings = false
			break
		}
		if _, errConv := fmt.Sscanf(a.StringValue(), "%f", new(float64)); errConv == nil {
			allStrings = false
			break
		}
	}
	if (name == "min" || name == "max") && allStrings {
		best := ""
		for i, it := range items {
			a, err := atomize(e, it)
			if err != nil {
				return nil, err
			}
			s := a.StringValue()
			if i == 0 || (name == "min" && s < best) || (name == "max" && s > best) {
				best = s
			}
		}
		return []Item{str(best)}, nil
	}
	var sum float64
	best := math.NaN()
	for i, it := range items {
		a, err := atomize(e, it)
		if err != nil {
			return nil, err
		}
		v := a.NumberValue()
		sum += v
		if i == 0 {
			best = v
		} else if name == "min" && v < best {
			best = v
		} else if name == "max" && v > best {
			best = v
		}
	}
	switch name {
	case "sum":
		return []Item{num(sum)}, nil
	case "avg":
		return []Item{num(sum / float64(len(items)))}, nil
	default:
		return []Item{num(best)}, nil
	}
}

// kindOf returns the node kind of an item (schema.KindDocument==0 means not
// a node); helper for tests and serialization.
func kindOf(it Item, _ *env) schema.NodeKind {
	switch x := it.(type) {
	case *NodeItem:
		return x.Doc.Schema.ByID(x.D.SchemaID).Kind
	case *TempItem:
		return x.N.Kind
	default:
		return 0
	}
}
