package query

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sedna/internal/core"
	"sedna/internal/xmlgen"
)

// longQuery is a deliberately long statement (a cross join with an
// unsatisfiable where) whose execution consists of millions of cheap FLWOR
// iterations — each one a cancellation checkpoint.
const longQuery = `for $i in 1 to 3000 for $j in 1 to 3000 where $i + $j = 0 return 1`

// TestKillLongFLWOR starts the long statement, kills it mid-flight and
// checks it terminates promptly with ErrKilled.
func TestKillLongFLWOR(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.Workers = 1

	done := make(chan error, 1)
	go func() {
		_, err := Execute(ctx, longQuery)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it get deep into the loop
	killedAt := time.Now()
	ctx.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("got %v, want ErrKilled", err)
		}
		if lat := time.Since(killedAt); lat > 100*time.Millisecond {
			t.Fatalf("kill took %s, want < 100ms", lat)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed statement did not terminate")
	}
	if !ctx.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
}

// TestKillLongScan kills a statement stuck in a stored-node descendant scan
// (the mergeStreams path), serial and parallel.
func TestKillLongScan(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true, BufferPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx0, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx0.LoadXML("cat", strings.NewReader(xmlgen.SectionsString(8, 200, 1))); err != nil {
		t.Fatal(err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tx, err := db.BeginReadOnly()
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewExecCtx(tx)
		ctx.Workers = workers
		// Quadratic predicate over the scan keeps one statement busy long
		// enough to kill: every //item re-counts all //item descendants.
		src := `count(doc("cat")//item[count(doc("cat")//item) > 0])`
		done := make(chan error, 1)
		go func() {
			_, err := Execute(ctx, src)
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		ctx.Kill()
		select {
		case err := <-done:
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("workers=%d: got %v, want ErrKilled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: killed scan did not terminate", workers)
		}
		tx.Rollback()
	}
}

// TestKillRacesCompletion hammers the window where KILL lands as the
// statement finishes on its own: both outcomes (clean result, ErrKilled) are
// legal; anything else — another error, a hang, a race report — is not.
func TestKillRacesCompletion(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var killedWins, completeWins atomic.Int64
	for i := 0; i < 60; i++ {
		tx, err := db.BeginReadOnly()
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewExecCtx(tx)
		ctx.Workers = 1
		done := make(chan error, 1)
		go func() {
			_, err := Execute(ctx, `count(for $i in 1 to 400 return $i)`)
			done <- err
		}()
		// No sleep: Kill races the whole execution, from parse to return.
		ctx.Kill()
		select {
		case err := <-done:
			switch {
			case err == nil:
				completeWins.Add(1)
			case errors.Is(err, ErrKilled):
				killedWins.Add(1)
			default:
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: statement hung", i)
		}
		tx.Rollback()
	}
	t.Logf("killed=%d completed=%d", killedWins.Load(), completeWins.Load())
}

// TestKillBeforeExecute: a context killed before the statement starts
// refuses to run it at the first checkpoint.
func TestKillBeforeExecute(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.Kill()
	if _, err := Execute(ctx, `for $i in 1 to 10 return $i`); !errors.Is(err, ErrKilled) {
		t.Fatalf("got %v, want ErrKilled", err)
	}
}
