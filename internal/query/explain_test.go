package query

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestParseExplain(t *testing.T) {
	st, err := Parse(`EXPLAIN doc("lib")//author`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Explain == nil || st.Explain.Profile {
		t.Fatalf("st.Explain = %+v", st.Explain)
	}
	if !st.ReadOnly() {
		t.Fatal("EXPLAIN of a query is not read-only")
	}
	if st.Explain.Stmt.Query == nil {
		t.Fatal("inner statement lost")
	}
	if got := st.Explain.Stmt.Source; got != `doc("lib")//author` {
		t.Fatalf("inner Source = %q", got)
	}

	st, err = Parse(`PROFILE UPDATE delete doc("lib")//paper`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Explain == nil || !st.Explain.Profile {
		t.Fatalf("st.Explain = %+v", st.Explain)
	}
	// PROFILE executes the statement, so it inherits the inner read-only-ness.
	if st.ReadOnly() {
		t.Fatal("PROFILE of an update claims read-only")
	}
	// EXPLAIN of an update never executes it: read-only.
	st, err = Parse(`EXPLAIN UPDATE delete doc("lib")//paper`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReadOnly() {
		t.Fatal("EXPLAIN of an update is not read-only")
	}
}

func TestParseExplainErrors(t *testing.T) {
	if _, err := Parse(`EXPLAIN`); err == nil {
		t.Fatal("bare EXPLAIN parsed")
	}
	if _, err := Parse(`PROFILE`); err == nil {
		t.Fatal("bare PROFILE parsed")
	}
	if _, err := Parse(`EXPLAIN PROFILE doc("lib")//author`); err == nil {
		t.Fatal("nested EXPLAIN PROFILE parsed")
	}
}

func TestExplainQueryShape(t *testing.T) {
	db := testDB(t)
	out := q(t, db, `EXPLAIN doc("lib")//book[author = "Date"]/title`)
	for _, want := range []string{
		"statement: query (read-only)",
		"rewrites:",
		"combine-descendant:",
		"plan:",
		"child::title",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUpdateIsReadOnly(t *testing.T) {
	db := testDB(t)
	// q() runs in a read-only snapshot transaction: EXPLAIN of an update
	// must succeed there and must not change anything.
	out := q(t, db, `EXPLAIN UPDATE delete doc("lib")//paper`)
	if !strings.Contains(out, "(update)") {
		t.Fatalf("EXPLAIN output missing update kind:\n%s", out)
	}
	if got := q(t, db, `count(doc("lib")//paper)`); got != "1" {
		t.Fatalf("EXPLAIN executed the update: count = %s", got)
	}
}

func TestProfileQueryShape(t *testing.T) {
	db := testDB(t)
	out := q(t, db, `PROFILE doc("lib")//book[author = "Date"]/title`)
	for _, want := range []string{
		"trace",
		`query: doc("lib")//book[author = "Date"]/title`,
		"statement dur=",
		"analyze dur=",
		"rewrite dur=",
		"execute dur=",
		"step ",
		"nodes=",
		"result: 1 item(s), 0 updated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PROFILE output missing %q:\n%s", want, out)
		}
	}
	// At least one storage-scanning operator touched pages.
	pages := regexp.MustCompile(`pages=(\d+)`).FindAllStringSubmatch(out, -1)
	if len(pages) == 0 {
		t.Fatalf("PROFILE output has no pages attribute:\n%s", out)
	}
	total := 0
	for _, m := range pages {
		n, _ := strconv.Atoi(m[1])
		total += n
	}
	if total == 0 {
		t.Errorf("no operator reports touched pages:\n%s", out)
	}
}

func TestProfileUpdateExecutes(t *testing.T) {
	db := testDB(t)
	res := upd(t, db, `PROFILE UPDATE insert <note/> into doc("lib")/library`)
	out, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 updated") {
		t.Fatalf("PROFILE update output:\n%s", out)
	}
	if got := q(t, db, `count(doc("lib")/library/note)`); got != "1" {
		t.Fatalf("PROFILE did not execute the update: count = %s", got)
	}
}

// TestProfileParallelSpans pins how a fanned-out step renders: the step span
// carries parallelism=N and one "worker N" child per goroutine that worked,
// each with its own wall time.
func TestProfileParallelSpans(t *testing.T) {
	lowerScanGate(t)
	db := parallelDB(t)
	tx, err := db.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	ctx := NewExecCtx(tx)
	ctx.Workers = 4
	res, err := Execute(ctx, `PROFILE count(doc("cat")//item)`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.String()
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`parallelism=[2-4]`).MatchString(out) {
		t.Errorf("PROFILE output missing parallelism attribute:\n%s", out)
	}
	if !regexp.MustCompile(`worker 0 dur=`).MatchString(out) {
		t.Errorf("PROFILE output missing worker spans:\n%s", out)
	}
	// Serial execution of the same statement renders no worker spans.
	sctx := NewExecCtx(tx)
	sctx.Workers = 1
	sres, err := Execute(sctx, `PROFILE count(doc("cat")//item)`)
	if err != nil {
		t.Fatal(err)
	}
	sout, err := sres.String()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sout, "worker 0") || strings.Contains(sout, "parallelism=") {
		t.Errorf("serial PROFILE still shows parallel spans:\n%s", sout)
	}
}

// TestProfileWorksWithoutTracerConfig: PROFILE forces a trace even when the
// database has tracing and the slow log off.
func TestProfileForcesTrace(t *testing.T) {
	db := testDB(t)
	if db.Tracer().Active() {
		t.Fatal("test premise broken: tracer active by default")
	}
	out := q(t, db, `PROFILE count(doc("lib")//author)`)
	if !strings.Contains(out, "statement dur=") {
		t.Fatalf("PROFILE without tracer config produced no trace:\n%s", out)
	}
}

// TestProfilePrefetchAnnotation pins that a statement run with readahead on
// renders the effective depth (and the hint counter) on its statement span,
// and that with readahead off neither attribute appears.
func TestProfilePrefetchAnnotation(t *testing.T) {
	db := testDB(t)
	out := q(t, db, `PROFILE doc("lib")//title`)
	if strings.Contains(out, "prefetch_depth=") {
		t.Errorf("depth-0 PROFILE mentions prefetch:\n%s", out)
	}
	db.SetPrefetchDepth(8)
	defer db.SetPrefetchDepth(0)
	out = q(t, db, `PROFILE doc("lib")//title`)
	for _, want := range []string{"prefetch_depth=8", "prefetch_hints="} {
		if !strings.Contains(out, want) {
			t.Errorf("PROFILE output missing %q:\n%s", want, out)
		}
	}
}
