package query

// The executor's document-storage interface. Every axis step, text read and
// serialization walk goes through a docStore, of which there are two
// implementations: pagedStore iterates the block chains exactly as before,
// and residentStore iterates the compressed in-memory resident
// representation (a per-document structural array built under a snapshot and
// cached with commit-timestamp validation). Which one serves a document is
// decided once per statement and document in storeFor; both produce the same
// descriptors in the same order, so query output is byte-identical across
// backends.

import (
	"sedna/internal/resident"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// Storage-backend names, used for the per-step EXPLAIN/PROFILE annotation.
const (
	storagePaged    = "paged"
	storageResident = "resident"
)

// docStore is the small storage interface the executor runs against.
// Descriptors returned by a resident store carry no paged navigation fields
// (block pointers, child slots), so callers must navigate them only through
// the store that produced them.
type docStore interface {
	kind() string
	// root returns the document node's descriptor.
	root(e *env, doc *storage.Doc) (storage.Desc, error)
	// parent returns d's parent (ok=false for the document node).
	parent(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error)
	// nextSibling / prevSibling step the sibling chain (ok=false at an end).
	nextSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error)
	prevSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error)
	// children returns d's children in document order.
	children(e *env, doc *storage.Doc, d *storage.Desc) ([]storage.Desc, error)
	// childrenOfSchema returns d's children clustered under one schema
	// child, in document order — the single-schema-child fast path of the
	// child axis.
	childrenOfSchema(e *env, doc *storage.Doc, d *storage.Desc, parent, child *schema.Node) ([]storage.Desc, error)
	// text returns d's text value (nil for nodes without text).
	text(e *env, doc *storage.Doc, d *storage.Desc) ([]byte, error)
	// descendantScan opens a document-order stream over sn's instances
	// inside anc's subtree (nil when empty). Counts one schema scan.
	descendantScan(e *env, doc *storage.Doc, sn *schema.Node, anc *storage.Desc) (descStream, error)
	// schemaScan visits every instance of sn in document order (the
	// whole-document structural-path fast path). Counts one schema scan.
	schemaScan(e *env, doc *storage.Doc, sn *schema.Node, fn func(storage.Desc) (bool, error)) error
}

// descStream is one per-schema-node document-order stream of a descendant
// scan; mergeStreams k-way merges streams by NID label.
type descStream interface {
	valid() bool
	desc() *storage.Desc
	advance(e *env) error
}

// storeFor resolves (and memoizes per statement) the store serving doc. The
// first resolution per document may build the resident representation, so it
// runs outside the registry lock; registration also reconciles the
// transaction's readahead depth — prefetch is suppressed while every
// document touched so far is resident (the executor never dereferences
// their chain pages), and restored as soon as any paged document joins.
func (e *env) storeFor(doc *storage.Doc) docStore {
	sh := e.ctx.shared()
	sh.storeMu.Lock()
	if st, ok := sh.stores[doc.ID]; ok {
		sh.storeMu.Unlock()
		return st
	}
	sh.storeMu.Unlock()

	st := e.resolveStore(doc)

	sh.storeMu.Lock()
	if prev, ok := sh.stores[doc.ID]; ok {
		// A concurrent worker registered first; use its store.
		st = prev
	} else {
		if sh.stores == nil {
			sh.stores = make(map[uint32]docStore)
		}
		sh.stores[doc.ID] = st
		if e.ctx.Tx != nil && e.ctx.Tx.DB() != nil {
			// One access per statement and document: the residency advisor's
			// hotness signal.
			e.ctx.Tx.DB().Catalog().NoteAccess(doc.Name)
		}
		if st.kind() == storageResident {
			sh.residentDocs++
		} else {
			sh.pagedDocs++
		}
		if e.ctx.Tx != nil {
			if sh.residentDocs > 0 && sh.pagedDocs == 0 {
				e.ctx.Tx.SetPrefetchDepth(0)
			} else {
				e.ctx.Tx.SetPrefetchDepth(sh.prefetchDepth)
			}
		}
	}
	sh.storeMu.Unlock()
	return st
}

// resolveStore picks the backend for doc: resident only for read-only
// statements when the mode is on and the cache yields a representation for
// this snapshot's version of the document.
func (e *env) resolveStore(doc *storage.Doc) docStore {
	ctx := e.ctx
	if ctx.Tx == nil || ctx.updateStmt || !ctx.Tx.ReadOnly() {
		return pagedStore{}
	}
	if rep := ctx.Tx.ResidentFor(doc); rep != nil {
		return &residentStore{rep: rep}
	}
	return pagedStore{}
}

// storageKind reports which backend served the step that produced items: the
// store of the first stored node's document, else "" (no stored nodes).
func (ctx *ExecCtx) storageKind(items []Item) string {
	for _, it := range items {
		ni, ok := it.(*NodeItem)
		if !ok {
			continue
		}
		sh := ctx.shared()
		sh.storeMu.Lock()
		st := sh.stores[ni.Doc.ID]
		sh.storeMu.Unlock()
		if st == nil {
			return ""
		}
		return st.kind()
	}
	return ""
}

// storeAccess adapts a docStore to core.NodeAccess so result serialization
// runs over the same backend that produced the nodes (resident-origin
// descriptors carry no paged navigation fields).
type storeAccess struct {
	e   *env
	doc *storage.Doc
	st  docStore
}

func (a storeAccess) Children(d *storage.Desc) ([]storage.Desc, error) {
	return a.st.children(a.e, a.doc, d)
}

func (a storeAccess) Text(d *storage.Desc) ([]byte, error) {
	return a.st.text(a.e, a.doc, d)
}

// ---------------------------------------------------------------------------
// Paged implementation: block-chain iteration, exactly the pre-interface
// code paths.

type pagedStore struct{}

func (pagedStore) kind() string { return storagePaged }

func (pagedStore) root(e *env, doc *storage.Doc) (storage.Desc, error) {
	return storage.DescOf(e.r, doc.RootHandle)
}

func (pagedStore) parent(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	return storage.ParentOf(e.r, d)
}

func (pagedStore) nextSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	if d.RightSib.IsNil() {
		return storage.Desc{}, false, nil
	}
	nd, err := storage.ReadDesc(e.r, d.RightSib)
	if err != nil {
		return storage.Desc{}, false, err
	}
	return nd, true, nil
}

func (pagedStore) prevSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	if d.LeftSib.IsNil() {
		return storage.Desc{}, false, nil
	}
	nd, err := storage.ReadDesc(e.r, d.LeftSib)
	if err != nil {
		return storage.Desc{}, false, err
	}
	return nd, true, nil
}

func (pagedStore) children(e *env, doc *storage.Doc, d *storage.Desc) ([]storage.Desc, error) {
	var out []storage.Desc
	c, ok, err := storage.FirstChild(e.r, d)
	for {
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if err := e.ctx.checkKilled(); err != nil {
			return nil, err
		}
		out = append(out, c)
		if c.RightSib.IsNil() {
			return out, nil
		}
		c, err = storage.ReadDesc(e.r, c.RightSib)
	}
}

func (pagedStore) childrenOfSchema(e *env, doc *storage.Doc, d *storage.Desc, parent, child *schema.Node) ([]storage.Desc, error) {
	// One schema child: follow its slot and the in-list chain while the
	// parent stays the same (children of one parent are contiguous in the
	// schema node's list).
	slot := parent.ChildIndex(child)
	first := d.ChildAtSlot(slot)
	if first.IsNil() {
		return nil, nil
	}
	cd, err := storage.ReadDesc(e.r, first)
	if err != nil {
		return nil, err
	}
	var out []storage.Desc
	for {
		if err := e.ctx.checkKilled(); err != nil {
			return nil, err
		}
		if cd.Parent != d.Handle {
			return out, nil
		}
		out = append(out, cd)
		nd, ok, err := storage.NextInList(e.r, &cd)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		cd = nd
	}
}

func (pagedStore) text(e *env, doc *storage.Doc, d *storage.Desc) ([]byte, error) {
	return storage.Text(e.r, d)
}

func (pagedStore) descendantScan(e *env, doc *storage.Doc, sn *schema.Node, anc *storage.Desc) (descStream, error) {
	rs, err := newRangeScan(e, doc, sn, anc.Label)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, nil
	}
	return rs, nil
}

func (pagedStore) schemaScan(e *env, doc *storage.Doc, sn *schema.Node, fn func(storage.Desc) (bool, error)) error {
	e.ctx.stats().AddSchemaScans(1)
	return storage.ScanSchema(e.r, sn, fn)
}

// ---------------------------------------------------------------------------
// Resident implementation: structural-array iteration. Context descriptors
// resolve into the array by node handle; a paged-origin descriptor that is
// not in the array (impossible for the document's own nodes, but cheap to
// guard) falls back to paged navigation per operation — paged reads stay
// valid under the same snapshot.

type residentStore struct {
	rep *resident.Rep
}

func (rs *residentStore) kind() string { return storageResident }

func (rs *residentStore) root(e *env, doc *storage.Doc) (storage.Desc, error) {
	return rs.rep.Desc(0), nil
}

func (rs *residentStore) parent(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return pagedStore{}.parent(e, doc, d)
	}
	p := rs.rep.Nodes[i].Parent
	if p < 0 {
		return storage.Desc{}, false, nil
	}
	return rs.rep.Desc(p), true, nil
}

func (rs *residentStore) nextSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return pagedStore{}.nextSibling(e, doc, d)
	}
	s := rs.rep.Nodes[i].NextSib
	if s < 0 {
		return storage.Desc{}, false, nil
	}
	return rs.rep.Desc(s), true, nil
}

func (rs *residentStore) prevSibling(e *env, doc *storage.Doc, d *storage.Desc) (storage.Desc, bool, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return pagedStore{}.prevSibling(e, doc, d)
	}
	s := rs.rep.Nodes[i].PrevSib
	if s < 0 {
		return storage.Desc{}, false, nil
	}
	return rs.rep.Desc(s), true, nil
}

func (rs *residentStore) children(e *env, doc *storage.Doc, d *storage.Desc) ([]storage.Desc, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return pagedStore{}.children(e, doc, d)
	}
	var out []storage.Desc
	for c := rs.rep.Nodes[i].FirstChild; c >= 0; c = rs.rep.Nodes[c].NextSib {
		out = append(out, rs.rep.Desc(c))
	}
	return out, nil
}

func (rs *residentStore) childrenOfSchema(e *env, doc *storage.Doc, d *storage.Desc, parent, child *schema.Node) ([]storage.Desc, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return pagedStore{}.childrenOfSchema(e, doc, d, parent, child)
	}
	list := rs.rep.ChildrenOfSchema(child.ID, i)
	if len(list) == 0 {
		return nil, nil
	}
	out := make([]storage.Desc, len(list))
	for k, ci := range list {
		out[k] = rs.rep.Desc(ci)
	}
	return out, nil
}

func (rs *residentStore) text(e *env, doc *storage.Doc, d *storage.Desc) ([]byte, error) {
	i, ok := rs.rep.Index(d)
	if !ok {
		return storage.Text(e.r, d)
	}
	return rs.rep.NodeText(i), nil
}

func (rs *residentStore) descendantScan(e *env, doc *storage.Doc, sn *schema.Node, anc *storage.Desc) (descStream, error) {
	i, ok := rs.rep.Index(anc)
	if !ok {
		return pagedStore{}.descendantScan(e, doc, sn, anc)
	}
	e.ctx.stats().AddSchemaScans(1)
	list := rs.rep.DescendantRange(sn.ID, i)
	if len(list) == 0 {
		return nil, nil
	}
	return &residentScan{rep: rs.rep, list: list, d: rs.rep.Desc(list[0])}, nil
}

func (rs *residentStore) schemaScan(e *env, doc *storage.Doc, sn *schema.Node, fn func(storage.Desc) (bool, error)) error {
	e.ctx.stats().AddSchemaScans(1)
	for _, i := range rs.rep.BySchema[sn.ID] {
		cont, err := fn(rs.rep.Desc(i))
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// residentScan streams one per-schema index-list slice, materializing
// descriptors on demand.
type residentScan struct {
	rep  *resident.Rep
	list []int32
	pos  int
	d    storage.Desc
}

func (s *residentScan) valid() bool         { return s.pos < len(s.list) }
func (s *residentScan) desc() *storage.Desc { return &s.d }

func (s *residentScan) advance(e *env) error {
	s.pos++
	if s.valid() {
		s.d = s.rep.Desc(s.list[s.pos])
	}
	return nil
}
