package query

// XUpdate and DDL statement parsing (§3: the parser produces a uniform
// operation tree for queries, update statements and DDL statements).

func (p *parser) parseUpdate() (*Update, error) {
	if err := p.expectName("UPDATE"); err != nil {
		return nil, err
	}
	t, err := p.l.next()
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "insert":
		src, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		kw, err := p.l.next()
		if err != nil {
			return nil, err
		}
		var kind UpdateKind
		switch kw.text {
		case "into":
			kind = UpdInsertInto
		case "preceding":
			kind = UpdInsertPreceding
		case "following":
			kind = UpdInsertFollowing
		default:
			return nil, p.l.errf(kw.pos, "expected into/preceding/following, got %q", kw.text)
		}
		target, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Update{Kind: kind, Source: src, Target: target}, nil

	case "delete":
		target, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Update{Kind: UpdDelete, Target: target}, nil

	case "replace":
		v, err := p.l.next()
		if err != nil {
			return nil, err
		}
		if v.kind != tokVar {
			return nil, p.l.errf(v.pos, "expected variable after replace")
		}
		if err := p.expectName("in"); err != nil {
			return nil, err
		}
		target, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("with"); err != nil {
			return nil, err
		}
		src, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Update{Kind: UpdReplace, Var: v.text, Target: target, Source: src}, nil

	case "rename":
		target, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("on"); err != nil {
			return nil, err
		}
		n, err := p.l.next()
		if err != nil {
			return nil, err
		}
		if n.kind != tokName && n.kind != tokString {
			return nil, p.l.errf(n.pos, "expected new name")
		}
		return &Update{Kind: UpdRename, Target: target, Name: n.text}, nil

	default:
		return nil, p.l.errf(t.pos, "unknown update statement %q", t.text)
	}
}

func (p *parser) parseDDL() (*DDL, error) {
	verb, err := p.l.next() // CREATE | DROP
	if err != nil {
		return nil, err
	}
	obj, err := p.l.next() // DOCUMENT | INDEX
	if err != nil {
		return nil, err
	}
	switch {
	case verb.text == "CREATE" && obj.text == "DOCUMENT":
		name, err := p.stringArg()
		if err != nil {
			return nil, err
		}
		return &DDL{Kind: DDLCreateDocument, Name: name}, nil
	case verb.text == "DROP" && obj.text == "DOCUMENT":
		name, err := p.stringArg()
		if err != nil {
			return nil, err
		}
		return &DDL{Kind: DDLDropDocument, Name: name}, nil
	case verb.text == "DROP" && obj.text == "INDEX":
		name, err := p.stringArg()
		if err != nil {
			return nil, err
		}
		return &DDL{Kind: DDLDropIndex, Name: name}, nil
	case verb.text == "CREATE" && obj.text == "INDEX":
		name, err := p.stringArg()
		if err != nil {
			return nil, err
		}
		if err := p.expectName("ON"); err != nil {
			return nil, err
		}
		onPath, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		doc := findDocCall(onPath)
		if doc == nil {
			return nil, p.l.errf(verb.pos, "CREATE INDEX path must start with doc(...)")
		}
		if err := p.expectName("BY"); err != nil {
			return nil, err
		}
		byPath, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		asType := "string"
		if ok, err := p.acceptName("AS"); err != nil {
			return nil, err
		} else if ok {
			t, err := p.l.next()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "string", "xs:string":
				asType = "string"
			case "number", "xs:double", "xs:decimal", "xs:integer":
				asType = "number"
			default:
				return nil, p.l.errf(t.pos, "unsupported index type %q", t.text)
			}
		}
		return &DDL{Kind: DDLCreateIndex, Name: name, DocName: doc.Name, OnPath: onPath, ByPath: byPath, AsType: asType}, nil
	default:
		return nil, p.l.errf(verb.pos, "unknown DDL statement %s %s", verb.text, obj.text)
	}
}

// parseAnalyze parses `ANALYZE doc("name")`: a full statistics rebuild for
// one document, feeding the cost-based optimizer.
func (p *parser) parseAnalyze() (*DDL, error) {
	verb, err := p.l.next() // ANALYZE
	if err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	doc := findDocCall(path)
	if doc == nil {
		return nil, p.l.errf(verb.pos, "ANALYZE requires doc(...)")
	}
	return &DDL{Kind: DDLAnalyze, Name: doc.Name, DocName: doc.Name}, nil
}

func (p *parser) stringArg() (string, error) {
	t, err := p.l.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokString {
		return "", p.l.errf(t.pos, "expected string literal, got %q", t.text)
	}
	return t.text, nil
}

// findDocCall locates the DocCall at the head of a path expression.
func findDocCall(e Expr) *DocCall {
	for {
		switch x := e.(type) {
		case *DocCall:
			return x
		case *Step:
			e = x.Input
		case *Filter:
			e = x.Input
		default:
			return nil
		}
	}
}
