package query

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// Axis evaluation over stored nodes. The implementations exploit the
// descriptive-schema clustering exactly as §4.1/§5 describe: a named child
// step touches only the blocks of the one matching schema node, and a
// descendant step resolves the matching schema nodes in main memory first
// and then scans only their block lists, range-restricted by the context
// node's numbering-scheme label.

// matchesSchema reports whether a schema node satisfies the node test.
func matchesSchema(sn *schema.Node, test NodeTest) bool {
	switch test.Kind {
	case TestName:
		if sn.Kind != schema.KindElement {
			return false
		}
		return test.Name == "*" || sn.Name == test.Name
	case TestNode:
		return true
	case TestText:
		return sn.Kind == schema.KindText
	case TestComment:
		return sn.Kind == schema.KindComment
	case TestPI:
		return sn.Kind == schema.KindPI && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	case TestElement:
		return sn.Kind == schema.KindElement && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	case TestAttrTest:
		return sn.Kind == schema.KindAttribute && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	default:
		return false
	}
}

// attributeTest adapts a test for the attribute axis: a plain name test
// matches attribute nodes there.
func attributeTest(test NodeTest) NodeTest {
	if test.Kind == TestName {
		return NodeTest{Kind: TestAttrTest, Name: test.Name}
	}
	return test
}

// axisStored evaluates an axis step for one stored context node, appending
// matches in document order.
func axisStored(env *env, n *NodeItem, axis Axis, test NodeTest, out []Item) ([]Item, error) {
	switch axis {
	case AxisChild:
		return childAxis(env, n, test, false, out)
	case AxisAttribute:
		return childAxis(env, n, attributeTest(test), true, out)
	case AxisSelf:
		if matchesStoredNode(n, test) {
			out = append(out, n)
		}
		return out, nil
	case AxisParent:
		p, ok, err := storage.ParentOf(env.r, &n.D)
		if err != nil {
			return nil, err
		}
		if ok {
			pi := &NodeItem{Doc: n.Doc, D: p}
			if matchesStoredNode(pi, test) {
				out = append(out, pi)
			}
		}
		return out, nil
	case AxisAncestor, AxisAncestorOrSelf:
		var chain []Item
		cur := *n
		if axis == AxisAncestorOrSelf && matchesStoredNode(n, test) {
			chain = append(chain, n)
		}
		for {
			p, ok, err := storage.ParentOf(env.r, &cur.D)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			pi := &NodeItem{Doc: n.Doc, D: p}
			if matchesStoredNode(pi, test) {
				chain = append(chain, pi)
			}
			cur = *pi
		}
		// Ancestors accumulate bottom-up; document order is top-down.
		for i := len(chain) - 1; i >= 0; i-- {
			out = append(out, chain[i])
		}
		return out, nil
	case AxisDescendant:
		return descendantAxis(env, n, test, false, out)
	case AxisDescendantOrSelf:
		return descendantAxis(env, n, test, true, out)
	case AxisFollowingSibling:
		sib := n.D.RightSib
		for !sib.IsNil() {
			if err := env.ctx.checkKilled(); err != nil {
				return nil, err
			}
			d, err := storage.ReadDesc(env.r, sib)
			if err != nil {
				return nil, err
			}
			si := &NodeItem{Doc: n.Doc, D: d}
			if matchesStoredNode(si, test) {
				out = append(out, si)
			}
			sib = d.RightSib
		}
		return out, nil
	case AxisPrecedingSibling:
		var rev []Item
		sib := n.D.LeftSib
		for !sib.IsNil() {
			if err := env.ctx.checkKilled(); err != nil {
				return nil, err
			}
			d, err := storage.ReadDesc(env.r, sib)
			if err != nil {
				return nil, err
			}
			si := &NodeItem{Doc: n.Doc, D: d}
			if matchesStoredNode(si, test) {
				rev = append(rev, si)
			}
			sib = d.LeftSib
		}
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unsupported axis %v", axis)
	}
}

func matchesStoredNode(n *NodeItem, test NodeTest) bool {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	return sn != nil && matchesSchema(sn, test)
}

// childAxis returns the children of n matching test in document order. For
// a specific name/kind test it touches only the matching schema node's
// children via the per-schema first-child slot; for wildcard tests it walks
// the sibling chain.
func childAxis(env *env, n *NodeItem, test NodeTest, attrs bool, out []Item) ([]Item, error) {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	if sn == nil {
		return nil, fmt.Errorf("query: unknown schema node %d", n.D.SchemaID)
	}
	// Identify matching schema children.
	var matched []*schema.Node
	for _, c := range sn.Children {
		isAttr := c.Kind == schema.KindAttribute
		if isAttr != attrs {
			continue
		}
		if matchesSchema(c, test) {
			matched = append(matched, c)
		}
	}
	if len(matched) == 0 {
		return out, nil
	}
	if len(matched) == 1 {
		// One schema child: follow its slot and the in-list chain while the
		// parent stays the same (children of one parent are contiguous in
		// the schema node's list).
		slot := sn.ChildIndex(matched[0])
		first := n.D.ChildAtSlot(slot)
		if first.IsNil() {
			return out, nil
		}
		d, err := storage.ReadDesc(env.r, first)
		if err != nil {
			return nil, err
		}
		for {
			if err := env.ctx.checkKilled(); err != nil {
				return nil, err
			}
			if d.Parent != n.D.Handle {
				break
			}
			out = append(out, &NodeItem{Doc: n.Doc, D: d})
			nd, ok, err := storage.NextInList(env.r, &d)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			d = nd
		}
		return out, nil
	}
	// Several schema children match (wildcard): walk the sibling chain for
	// global document order.
	c, ok, err := storage.FirstChild(env.r, &n.D)
	for {
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if err := env.ctx.checkKilled(); err != nil {
			return nil, err
		}
		ci := &NodeItem{Doc: n.Doc, D: c}
		csn := n.Doc.Schema.ByID(c.SchemaID)
		if csn != nil {
			isAttr := csn.Kind == schema.KindAttribute
			if isAttr == attrs && matchesSchema(csn, test) {
				out = append(out, ci)
			}
		}
		if c.RightSib.IsNil() {
			return out, nil
		}
		c, err = storage.ReadDesc(env.r, c.RightSib)
	}
}

// descendantAxis evaluates descendant(-or-self) with the schema-driven
// strategy: matching schema nodes are found in main memory, then only their
// block lists are scanned, restricted to the label range of the context
// node; per-schema streams are merged by document order.
func descendantAxis(env *env, n *NodeItem, test NodeTest, orSelf bool, out []Item) ([]Item, error) {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	if sn == nil {
		return nil, fmt.Errorf("query: unknown schema node %d", n.D.SchemaID)
	}
	if orSelf && matchesSchema(sn, test) {
		out = append(out, n)
	}
	matched := sn.Descendants(func(c *schema.Node) bool {
		return c.Kind != schema.KindAttribute && matchesSchema(c, test)
	})
	if len(matched) == 0 {
		return out, nil
	}
	if merged, ok, err := parallelStreams(env, n.Doc, matched, n.D.Label, out); err != nil {
		return nil, err
	} else if ok {
		return merged, nil
	}
	streams := make([]*rangeScan, 0, len(matched))
	for _, m := range matched {
		rs, err := newRangeScan(env, n.Doc, m, n.D.Label)
		if err != nil {
			return nil, err
		}
		if rs != nil {
			streams = append(streams, rs)
		}
	}
	return mergeStreams(env, n.Doc, streams, out)
}

// rangeScan iterates the descriptors of one schema node whose labels fall
// inside the descendant range of an ancestor label.
type rangeScan struct {
	anc nid.Label
	cur storage.Desc
	ok  bool
}

// newRangeScan positions a scan at the first descriptor of sn that is a
// descendant of anc; nil when none exists. Blocks whose last descriptor
// precedes the range are skipped via their headers (the partial order makes
// this sound).
func newRangeScan(env *env, doc *storage.Doc, sn *schema.Node, anc nid.Label) (*rangeScan, error) {
	env.ctx.stats().AddSchemaScans(1)
	d, ok, err := storage.FirstInRange(env.r, sn, anc)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &rangeScan{anc: anc, cur: d, ok: true}, nil
}

func (rs *rangeScan) advance(env *env) error {
	n, ok, err := storage.NextInList(env.r, &rs.cur)
	if err != nil {
		return err
	}
	if !ok || !nid.IsAncestor(rs.anc, n.Label) {
		rs.ok = false
		return nil
	}
	rs.cur = n
	return nil
}

// mergeStreams merges label-ordered streams into document order. The loop is
// the executor's main cancellation point for long storage scans: one
// iteration per yielded node, each starting with a killed check.
func mergeStreams(env *env, doc *storage.Doc, streams []*rangeScan, out []Item) ([]Item, error) {
	for {
		if err := env.ctx.checkKilled(); err != nil {
			return nil, err
		}
		best := -1
		for i, s := range streams {
			if s == nil || !s.ok {
				continue
			}
			if best < 0 || nid.Compare(s.cur.Label, streams[best].cur.Label) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out, nil
		}
		d := streams[best].cur
		out = append(out, &NodeItem{Doc: doc, D: d})
		if err := streams[best].advance(env); err != nil {
			return nil, err
		}
	}
}
