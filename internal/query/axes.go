package query

import (
	"fmt"

	"sedna/internal/nid"
	"sedna/internal/schema"
	"sedna/internal/storage"
)

// Axis evaluation over stored nodes. The implementations exploit the
// descriptive-schema clustering exactly as §4.1/§5 describe: a named child
// step touches only the blocks of the one matching schema node, and a
// descendant step resolves the matching schema nodes in main memory first
// and then scans only their block lists, range-restricted by the context
// node's numbering-scheme label.

// matchesSchema reports whether a schema node satisfies the node test.
func matchesSchema(sn *schema.Node, test NodeTest) bool {
	switch test.Kind {
	case TestName:
		if sn.Kind != schema.KindElement {
			return false
		}
		return test.Name == "*" || sn.Name == test.Name
	case TestNode:
		return true
	case TestText:
		return sn.Kind == schema.KindText
	case TestComment:
		return sn.Kind == schema.KindComment
	case TestPI:
		return sn.Kind == schema.KindPI && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	case TestElement:
		return sn.Kind == schema.KindElement && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	case TestAttrTest:
		return sn.Kind == schema.KindAttribute && (test.Name == "" || test.Name == "*" || sn.Name == test.Name)
	default:
		return false
	}
}

// attributeTest adapts a test for the attribute axis: a plain name test
// matches attribute nodes there.
func attributeTest(test NodeTest) NodeTest {
	if test.Kind == TestName {
		return NodeTest{Kind: TestAttrTest, Name: test.Name}
	}
	return test
}

// axisStored evaluates an axis step for one stored context node, appending
// matches in document order. All storage access routes through the
// document's store, so the same code serves paged and resident backends.
func axisStored(env *env, n *NodeItem, axis Axis, test NodeTest, out []Item) ([]Item, error) {
	st := env.storeFor(n.Doc)
	switch axis {
	case AxisChild:
		return childAxis(env, st, n, test, false, out)
	case AxisAttribute:
		return childAxis(env, st, n, attributeTest(test), true, out)
	case AxisSelf:
		if matchesStoredNode(n, test) {
			out = append(out, n)
		}
		return out, nil
	case AxisParent:
		p, ok, err := st.parent(env, n.Doc, &n.D)
		if err != nil {
			return nil, err
		}
		if ok {
			pi := &NodeItem{Doc: n.Doc, D: p}
			if matchesStoredNode(pi, test) {
				out = append(out, pi)
			}
		}
		return out, nil
	case AxisAncestor, AxisAncestorOrSelf:
		var chain []Item
		cur := *n
		if axis == AxisAncestorOrSelf && matchesStoredNode(n, test) {
			chain = append(chain, n)
		}
		for {
			p, ok, err := st.parent(env, n.Doc, &cur.D)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			pi := &NodeItem{Doc: n.Doc, D: p}
			if matchesStoredNode(pi, test) {
				chain = append(chain, pi)
			}
			cur = *pi
		}
		// Ancestors accumulate bottom-up; document order is top-down.
		for i := len(chain) - 1; i >= 0; i-- {
			out = append(out, chain[i])
		}
		return out, nil
	case AxisDescendant:
		return descendantAxis(env, st, n, test, false, out)
	case AxisDescendantOrSelf:
		return descendantAxis(env, st, n, test, true, out)
	case AxisFollowingSibling:
		cur := n.D
		for {
			if err := env.ctx.checkKilled(); err != nil {
				return nil, err
			}
			d, ok, err := st.nextSibling(env, n.Doc, &cur)
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			si := &NodeItem{Doc: n.Doc, D: d}
			if matchesStoredNode(si, test) {
				out = append(out, si)
			}
			cur = d
		}
	case AxisPrecedingSibling:
		var rev []Item
		cur := n.D
		for {
			if err := env.ctx.checkKilled(); err != nil {
				return nil, err
			}
			d, ok, err := st.prevSibling(env, n.Doc, &cur)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			si := &NodeItem{Doc: n.Doc, D: d}
			if matchesStoredNode(si, test) {
				rev = append(rev, si)
			}
			cur = d
		}
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unsupported axis %v", axis)
	}
}

func matchesStoredNode(n *NodeItem, test NodeTest) bool {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	return sn != nil && matchesSchema(sn, test)
}

// childAxis returns the children of n matching test in document order. For
// a specific name/kind test it touches only the matching schema node's
// children (per-schema slot chain or resident index range); for wildcard
// tests it walks the sibling chain.
func childAxis(env *env, st docStore, n *NodeItem, test NodeTest, attrs bool, out []Item) ([]Item, error) {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	if sn == nil {
		return nil, fmt.Errorf("query: unknown schema node %d", n.D.SchemaID)
	}
	// Identify matching schema children.
	var matched []*schema.Node
	for _, c := range sn.Children {
		isAttr := c.Kind == schema.KindAttribute
		if isAttr != attrs {
			continue
		}
		if matchesSchema(c, test) {
			matched = append(matched, c)
		}
	}
	if len(matched) == 0 {
		return out, nil
	}
	if len(matched) == 1 {
		kids, err := st.childrenOfSchema(env, n.Doc, &n.D, sn, matched[0])
		if err != nil {
			return nil, err
		}
		for i := range kids {
			out = append(out, &NodeItem{Doc: n.Doc, D: kids[i]})
		}
		return out, nil
	}
	// Several schema children match (wildcard): walk the sibling chain for
	// global document order.
	kids, err := st.children(env, n.Doc, &n.D)
	if err != nil {
		return nil, err
	}
	for i := range kids {
		csn := n.Doc.Schema.ByID(kids[i].SchemaID)
		if csn == nil {
			continue
		}
		isAttr := csn.Kind == schema.KindAttribute
		if isAttr == attrs && matchesSchema(csn, test) {
			out = append(out, &NodeItem{Doc: n.Doc, D: kids[i]})
		}
	}
	return out, nil
}

// descendantAxis evaluates descendant(-or-self) with the schema-driven
// strategy: matching schema nodes are found in main memory, then only their
// per-schema streams are scanned (block lists range-restricted by the
// context label, or resident index-list slices) and merged by document
// order.
func descendantAxis(env *env, st docStore, n *NodeItem, test NodeTest, orSelf bool, out []Item) ([]Item, error) {
	sn := n.Doc.Schema.ByID(n.D.SchemaID)
	if sn == nil {
		return nil, fmt.Errorf("query: unknown schema node %d", n.D.SchemaID)
	}
	if orSelf && matchesSchema(sn, test) {
		out = append(out, n)
	}
	matched := sn.Descendants(func(c *schema.Node) bool {
		return c.Kind != schema.KindAttribute && matchesSchema(c, test)
	})
	if len(matched) == 0 {
		return out, nil
	}
	if merged, ok, err := parallelStreams(env, n.Doc, matched, st, &n.D, out); err != nil {
		return nil, err
	} else if ok {
		return merged, nil
	}
	streams := make([]descStream, 0, len(matched))
	for _, m := range matched {
		s, err := st.descendantScan(env, n.Doc, m, &n.D)
		if err != nil {
			return nil, err
		}
		if s != nil && s.valid() {
			streams = append(streams, s)
		}
	}
	return mergeStreams(env, n.Doc, streams, out)
}

// rangeScan iterates the descriptors of one schema node whose labels fall
// inside the descendant range of an ancestor label.
type rangeScan struct {
	anc nid.Label
	cur storage.Desc
	ok  bool
}

// newRangeScan positions a scan at the first descriptor of sn that is a
// descendant of anc; nil when none exists. Blocks whose last descriptor
// precedes the range are skipped via their headers (the partial order makes
// this sound).
func newRangeScan(env *env, doc *storage.Doc, sn *schema.Node, anc nid.Label) (*rangeScan, error) {
	env.ctx.stats().AddSchemaScans(1)
	d, ok, err := storage.FirstInRange(env.r, sn, anc)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &rangeScan{anc: anc, cur: d, ok: true}, nil
}

func (rs *rangeScan) advance(env *env) error {
	n, ok, err := storage.NextInList(env.r, &rs.cur)
	if err != nil {
		return err
	}
	if !ok || !nid.IsAncestor(rs.anc, n.Label) {
		rs.ok = false
		return nil
	}
	rs.cur = n
	return nil
}

// rangeScan is the paged descStream.
func (rs *rangeScan) valid() bool         { return rs.ok }
func (rs *rangeScan) desc() *storage.Desc { return &rs.cur }

// mergeStreams merges label-ordered streams into document order. The loop is
// the executor's main cancellation point for long storage scans: one
// iteration per yielded node, each starting with a killed check.
func mergeStreams(env *env, doc *storage.Doc, streams []descStream, out []Item) ([]Item, error) {
	for {
		if err := env.ctx.checkKilled(); err != nil {
			return nil, err
		}
		best := -1
		for i, s := range streams {
			if s == nil || !s.valid() {
				continue
			}
			if best < 0 || nid.Compare(s.desc().Label, streams[best].desc().Label) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out, nil
		}
		d := *streams[best].desc()
		out = append(out, &NodeItem{Doc: doc, D: d})
		if err := streams[best].advance(env); err != nil {
			return nil, err
		}
	}
}
