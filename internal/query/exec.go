package query

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
)

// ExecCtx carries everything one statement execution needs: the engine
// transaction, the function table, rewriter switches (used by the ablation
// experiments) and runtime statistics.
type ExecCtx struct {
	Tx    *core.Tx
	Stats ExecStats

	// Profile records how the last statement executed through this context
	// spent its time and what it touched; it is also pushed into the
	// database's metrics registry.
	Profile metrics.QueryProfile

	// NoRewrite disables the optimizing rewriter (baseline for E5–E8).
	NoRewrite bool
	// NoVirtualCtors disables the virtual-constructor optimisation
	// (baseline for E9).
	NoVirtualCtors bool

	// updateStmt is set while executing an update statement so that
	// document resolution takes exclusive locks up front, avoiding the
	// classic shared→exclusive upgrade deadlock between two updaters.
	updateStmt bool

	funcs     map[string]*FuncDecl
	globalEnv *env // prolog-variable scope, used by function bodies
	lazyCache map[int][]Item
	tempOrd   uint64
}

// NewExecCtx creates an execution context over an engine transaction.
func NewExecCtx(tx *core.Tx) *ExecCtx {
	return &ExecCtx{Tx: tx, lazyCache: make(map[int][]Item)}
}

// Result is the outcome of one statement.
type Result struct {
	Items   []Item // query results
	Updated int    // nodes affected by an update statement
	Message string // DDL acknowledgement
	ctx     *ExecCtx
}

// Execute parses, analyzes, rewrites and runs one statement. This is the
// paper's full pipe: parser → static analysis → optimizing rewriter →
// executor (§5).
func Execute(ctx *ExecCtx, src string) (*Result, error) {
	parseStart := time.Now()
	st, err := Parse(src)
	parseNs := time.Since(parseStart).Nanoseconds()
	if err != nil {
		if reg := ctx.registry(); reg != nil {
			reg.Counter("query.errors").Inc()
		}
		return nil, err
	}
	ctx.Profile.ParseNs = parseNs
	return ExecuteStatement(ctx, st)
}

// registry resolves the metrics registry of the database the context's
// transaction runs against (nil when unavailable).
func (ctx *ExecCtx) registry() *metrics.Registry {
	if ctx.Tx == nil || ctx.Tx.DB() == nil {
		return nil
	}
	return ctx.Tx.DB().Metrics()
}

// statementKind labels a statement for the per-kind latency histograms.
func statementKind(st *Statement) string {
	switch {
	case st.Update != nil:
		return "update"
	case st.DDL != nil:
		return "ddl"
	default:
		return "query"
	}
}

// ExecuteStatement runs an already-parsed statement (benchmarks reuse
// parsed trees to isolate execution cost) and publishes the statement's
// latency and profile into the database's metrics registry.
func ExecuteStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	kind := statementKind(st)
	ctx.Profile.Kind = kind
	ctx.Profile.OptimizeNs = 0
	ctx.Profile.ExecNs = 0
	ctx.Profile.PagesTouched = 0
	ctx.Profile.NodesYielded = 0
	pagesBefore := ctx.Tx.PagesTouched()
	start := time.Now()
	res, err := executeStatement(ctx, st)
	ctx.Profile.PagesTouched = ctx.Tx.PagesTouched() - pagesBefore
	if res != nil {
		if len(res.Items) > 0 {
			ctx.Profile.NodesYielded = len(res.Items)
		} else {
			ctx.Profile.NodesYielded = res.Updated
		}
	}
	if reg := ctx.registry(); reg != nil {
		if err != nil {
			reg.Counter("query.errors").Inc()
		} else {
			reg.Counter("query.statements").Inc()
			reg.Histogram("query." + kind + "_ns").Observe(time.Since(start))
			reg.RecordProfile(ctx.Profile)
		}
	}
	return res, err
}

func executeStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	optStart := time.Now()
	if err := Analyze(st); err != nil {
		return nil, err
	}
	if !ctx.NoRewrite {
		Rewrite(st)
	}
	ctx.Profile.OptimizeNs = time.Since(optStart).Nanoseconds()
	execStart := time.Now()
	defer func() { ctx.Profile.ExecNs = time.Since(execStart).Nanoseconds() }()
	if ctx.NoVirtualCtors {
		clearVirtualFlags(st)
	}
	ctx.funcs = st.Prolog.Funcs
	if ctx.lazyCache == nil {
		ctx.lazyCache = make(map[int][]Item)
	}
	e := &env{ctx: ctx, r: ctx.Tx.Tx}
	// Prolog variables bind in order.
	for _, v := range st.Prolog.Vars {
		val, err := eval(v.Seq, e, nil)
		if err != nil {
			return nil, err
		}
		e = e.bind(v.Var, val)
	}
	ctx.globalEnv = e

	switch {
	case st.Query != nil:
		items, err := eval(st.Query, e, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Items: items, ctx: ctx}, nil
	case st.Update != nil:
		ctx.updateStmt = true
		n, err := execUpdate(st.Update, e)
		if err != nil {
			return nil, err
		}
		return &Result{Updated: n, Message: fmt.Sprintf("update: %d node(s)", n), ctx: ctx}, nil
	case st.DDL != nil:
		msg, err := execDDL(st.DDL, e)
		if err != nil {
			return nil, err
		}
		return &Result{Message: msg, ctx: ctx}, nil
	default:
		return nil, fmt.Errorf("query: empty statement")
	}
}

// Serialize writes the result sequence to w: nodes as XML, atomic values as
// their lexical forms, items separated by single spaces (adjacent atomics)
// or nothing (nodes).
func (r *Result) Serialize(w io.Writer) error {
	e := &env{ctx: r.ctx, r: r.ctx.Tx.Tx}
	prevAtomic := false
	for _, it := range r.Items {
		switch x := it.(type) {
		case *Atomic:
			if prevAtomic {
				if _, err := io.WriteString(w, " "); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, x.StringValue()); err != nil {
				return err
			}
			prevAtomic = true
		case *NodeItem:
			if err := core.SerializeNode(e.r, x.Doc, x.D, w); err != nil {
				return err
			}
			prevAtomic = false
		case *TempItem:
			if err := serializeTemp(e, x.N, w); err != nil {
				return err
			}
			prevAtomic = false
		}
	}
	return nil
}

// String serializes the result to a string.
func (r *Result) String() (string, error) {
	var sb strings.Builder
	if err := r.Serialize(&sb); err != nil {
		return "", err
	}
	if r.Message != "" && len(r.Items) == 0 {
		return r.Message, nil
	}
	return sb.String(), nil
}
