package query

import (
	"fmt"
	"io"
	"strings"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/trace"
)

// ExecCtx carries everything one statement execution needs: the engine
// transaction, the function table, rewriter switches (used by the ablation
// experiments) and runtime statistics.
type ExecCtx struct {
	Tx *core.Tx

	// Profile records how the last statement executed through this context
	// spent its time and what it touched (the embedded ExecStats counters
	// accumulate over the context's lifetime); it is also pushed into the
	// database's metrics registry.
	Profile metrics.QueryProfile

	// NoRewrite disables the optimizing rewriter (baseline for E5–E8).
	NoRewrite bool
	// NoVirtualCtors disables the virtual-constructor optimisation
	// (baseline for E9).
	NoVirtualCtors bool

	// updateStmt is set while executing an update statement so that
	// document resolution takes exclusive locks up front, avoiding the
	// classic shared→exclusive upgrade deadlock between two updaters.
	updateStmt bool

	funcs     map[string]*FuncDecl
	globalEnv *env // prolog-variable scope, used by function bodies
	lazyCache map[int][]Item
	tempOrd   uint64

	// Tracing state: the database's tracer, the open trace (nil when not
	// tracing — the disabled path's single check) and the innermost open
	// span, which storage-layer events attach to via the transaction.
	tracer *trace.Tracer
	trace  *trace.Trace
	span   *trace.Span
}

// NewExecCtx creates an execution context over an engine transaction.
func NewExecCtx(tx *core.Tx) *ExecCtx {
	ctx := &ExecCtx{Tx: tx, lazyCache: make(map[int][]Item)}
	if tx != nil && tx.DB() != nil {
		ctx.tracer = tx.DB().Tracer()
	}
	return ctx
}

// StartTrace opens a trace for the statement about to execute, unless one
// is already open or tracing is off. The caller that opened a trace
// finishes it with FinishTrace; a server session opens it before execution
// and finishes after commit so commit-time fsyncs land in the trace.
func (ctx *ExecCtx) StartTrace(src string) {
	if ctx.trace != nil {
		return
	}
	ctx.adoptTrace(ctx.tracer.Start(src))
}

// adoptTrace installs an open trace on the context and attaches its root to
// the transaction and the tracer's active-span table.
func (ctx *ExecCtx) adoptTrace(tr *trace.Trace) {
	if tr == nil {
		return
	}
	ctx.trace = tr
	ctx.span = tr.Root
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(tr.Root)
		ctx.tracer.SetActive(ctx.Tx.ID(), tr.Root)
	}
}

// FinishTrace completes the open trace (no-op when none is open).
func (ctx *ExecCtx) FinishTrace() {
	if ctx.trace == nil {
		return
	}
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(nil)
		ctx.tracer.SetActive(ctx.Tx.ID(), nil)
	}
	ctx.tracer.Finish(ctx.trace)
	ctx.trace = nil
	ctx.span = nil
}

// Trace returns the context's open trace (nil when not tracing).
func (ctx *ExecCtx) Trace() *trace.Trace { return ctx.trace }

// RecordParse attributes an already-measured parse time to the profile and,
// when tracing, to a finished "parse" child span.
func (ctx *ExecCtx) RecordParse(ns int64) {
	ctx.Profile.ParseNs = ns
	if ctx.trace != nil {
		ctx.trace.Root.ChildDone("parse", ns)
	}
}

// pushSpan opens a child of the current span and makes it current; returns
// nil (and stays free of side effects) when not tracing.
func (ctx *ExecCtx) pushSpan(name string) *trace.Span {
	c := ctx.span.Child(name)
	if c != nil {
		ctx.span = c
		if ctx.Tx != nil {
			ctx.Tx.SetTraceSpan(c)
		}
	}
	return c
}

// popSpan ends a span opened by pushSpan and restores its parent.
func (ctx *ExecCtx) popSpan(c *trace.Span) {
	if c == nil {
		return
	}
	c.End()
	ctx.span = c.Parent()
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(ctx.span)
	}
}

// Result is the outcome of one statement.
type Result struct {
	Items   []Item // query results
	Updated int    // nodes affected by an update statement
	Message string // DDL acknowledgement
	ctx     *ExecCtx
}

// Execute parses, analyzes, rewrites and runs one statement. This is the
// paper's full pipe: parser → static analysis → optimizing rewriter →
// executor (§5).
func Execute(ctx *ExecCtx, src string) (*Result, error) {
	owned := ctx.trace == nil
	if owned {
		ctx.StartTrace(src)
	}
	parseStart := time.Now()
	st, err := Parse(src)
	parseNs := time.Since(parseStart).Nanoseconds()
	if err != nil {
		if owned {
			ctx.FinishTrace()
		}
		if reg := ctx.registry(); reg != nil {
			reg.Counter("query.errors").Inc()
		}
		return nil, err
	}
	ctx.RecordParse(parseNs)
	res, err := ExecuteStatement(ctx, st)
	if owned {
		ctx.FinishTrace()
	}
	return res, err
}

// registry resolves the metrics registry of the database the context's
// transaction runs against (nil when unavailable).
func (ctx *ExecCtx) registry() *metrics.Registry {
	if ctx.Tx == nil || ctx.Tx.DB() == nil {
		return nil
	}
	return ctx.Tx.DB().Metrics()
}

// statementKind labels a statement for the per-kind latency histograms.
func statementKind(st *Statement) string {
	switch {
	case st.Explain != nil && st.Explain.Profile:
		return "profile"
	case st.Explain != nil:
		return "explain"
	case st.Update != nil:
		return "update"
	case st.DDL != nil:
		return "ddl"
	default:
		return "query"
	}
}

// ExecuteStatement runs an already-parsed statement (benchmarks reuse
// parsed trees to isolate execution cost) and publishes the statement's
// latency and profile into the database's metrics registry.
func ExecuteStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	owned := ctx.trace == nil
	if owned {
		ctx.StartTrace(st.Source)
	}
	kind := statementKind(st)
	ctx.Profile.Kind = kind
	ctx.Profile.OptimizeNs = 0
	ctx.Profile.ExecNs = 0
	ctx.Profile.PagesTouched = 0
	ctx.Profile.NodesYielded = 0
	pagesBefore := ctx.Tx.PagesTouched()
	start := time.Now()
	res, err := executeStatement(ctx, st)
	ctx.Profile.PagesTouched = ctx.Tx.PagesTouched() - pagesBefore
	if res != nil {
		if len(res.Items) > 0 {
			ctx.Profile.NodesYielded = len(res.Items)
		} else {
			ctx.Profile.NodesYielded = res.Updated
		}
	}
	if reg := ctx.registry(); reg != nil {
		if err != nil {
			reg.Counter("query.errors").Inc()
		} else {
			reg.Counter("query.statements").Inc()
			reg.Histogram("query." + kind + "_ns").Observe(time.Since(start))
			reg.RecordProfile(ctx.Profile)
		}
	}
	if owned {
		ctx.FinishTrace()
	}
	return res, err
}

func executeStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	if st.Explain != nil {
		if st.Explain.Profile {
			return execProfile(ctx, st.Explain.Stmt)
		}
		return execExplain(ctx, st.Explain.Stmt)
	}
	optStart := time.Now()
	asp := ctx.pushSpan("analyze")
	if err := Analyze(st); err != nil {
		ctx.popSpan(asp)
		return nil, err
	}
	ctx.popSpan(asp)
	if !ctx.NoRewrite {
		rsp := ctx.pushSpan("rewrite")
		Rewrite(st)
		ctx.popSpan(rsp)
	}
	ctx.Profile.OptimizeNs = time.Since(optStart).Nanoseconds()
	execStart := time.Now()
	esp := ctx.pushSpan("execute")
	defer func() {
		ctx.Profile.ExecNs = time.Since(execStart).Nanoseconds()
		ctx.popSpan(esp)
	}()
	if ctx.NoVirtualCtors {
		clearVirtualFlags(st)
	}
	ctx.funcs = st.Prolog.Funcs
	if ctx.lazyCache == nil {
		ctx.lazyCache = make(map[int][]Item)
	}
	e := &env{ctx: ctx, r: ctx.Tx.Tx}
	// Prolog variables bind in order.
	for _, v := range st.Prolog.Vars {
		val, err := eval(v.Seq, e, nil)
		if err != nil {
			return nil, err
		}
		e = e.bind(v.Var, val)
	}
	ctx.globalEnv = e

	switch {
	case st.Query != nil:
		items, err := eval(st.Query, e, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Items: items, ctx: ctx}, nil
	case st.Update != nil:
		ctx.updateStmt = true
		n, err := execUpdate(st.Update, e)
		if err != nil {
			return nil, err
		}
		return &Result{Updated: n, Message: fmt.Sprintf("update: %d node(s)", n), ctx: ctx}, nil
	case st.DDL != nil:
		msg, err := execDDL(st.DDL, e)
		if err != nil {
			return nil, err
		}
		return &Result{Message: msg, ctx: ctx}, nil
	default:
		return nil, fmt.Errorf("query: empty statement")
	}
}

// execExplain analyzes and rewrites the inner statement without executing
// it and yields the annotated operation tree as a single string item.
func execExplain(ctx *ExecCtx, inner *Statement) (*Result, error) {
	if err := Analyze(inner); err != nil {
		return nil, err
	}
	if !ctx.NoRewrite {
		Rewrite(inner)
	}
	if ctx.NoVirtualCtors {
		clearVirtualFlags(inner)
	}
	return &Result{Items: []Item{str(ExplainText(inner))}, ctx: ctx}, nil
}

// execProfile executes the inner statement under a forced trace — stashing
// any ambient trace so the PROFILE always yields its own complete span tree
// — and renders the trace as a single string item.
func execProfile(ctx *ExecCtx, inner *Statement) (*Result, error) {
	if ctx.tracer == nil {
		// No database tracer wired (bare contexts in tests/tools): a
		// private tracer still renders the span tree.
		ctx.tracer = trace.New(ctx.registry())
	}
	prevTrace, prevSpan := ctx.trace, ctx.span
	ctx.trace, ctx.span = nil, nil
	tr := ctx.tracer.StartForced(inner.Source)
	ctx.adoptTrace(tr)
	res, err := executeStatement(ctx, inner)
	// Close out the forced trace and restore the ambient one (if any).
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(prevSpan)
		var prevRoot *trace.Span
		if prevTrace != nil {
			prevRoot = prevTrace.Root
		}
		ctx.tracer.SetActive(ctx.Tx.ID(), prevRoot)
	}
	ctx.tracer.Finish(tr)
	ctx.trace, ctx.span = prevTrace, prevSpan
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(tr.Text())
	if res != nil {
		fmt.Fprintf(&sb, "  result: %d item(s), %d updated\n", len(res.Items), res.Updated)
	}
	return &Result{Items: []Item{str(sb.String())}, ctx: ctx}, nil
}

// Serialize writes the result sequence to w: nodes as XML, atomic values as
// their lexical forms, items separated by single spaces (adjacent atomics)
// or nothing (nodes).
func (r *Result) Serialize(w io.Writer) error {
	e := &env{ctx: r.ctx, r: r.ctx.Tx.Tx}
	prevAtomic := false
	for _, it := range r.Items {
		switch x := it.(type) {
		case *Atomic:
			if prevAtomic {
				if _, err := io.WriteString(w, " "); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, x.StringValue()); err != nil {
				return err
			}
			prevAtomic = true
		case *NodeItem:
			if err := core.SerializeNode(e.r, x.Doc, x.D, w); err != nil {
				return err
			}
			prevAtomic = false
		case *TempItem:
			if err := serializeTemp(e, x.N, w); err != nil {
				return err
			}
			prevAtomic = false
		}
	}
	return nil
}

// String serializes the result to a string.
func (r *Result) String() (string, error) {
	var sb strings.Builder
	if err := r.Serialize(&sb); err != nil {
		return "", err
	}
	if r.Message != "" && len(r.Items) == 0 {
		return r.Message, nil
	}
	return sb.String(), nil
}
