package query

import (
	"fmt"
	"io"
	"strings"

	"sedna/internal/core"
)

// ExecCtx carries everything one statement execution needs: the engine
// transaction, the function table, rewriter switches (used by the ablation
// experiments) and runtime statistics.
type ExecCtx struct {
	Tx    *core.Tx
	Stats ExecStats

	// NoRewrite disables the optimizing rewriter (baseline for E5–E8).
	NoRewrite bool
	// NoVirtualCtors disables the virtual-constructor optimisation
	// (baseline for E9).
	NoVirtualCtors bool

	// updateStmt is set while executing an update statement so that
	// document resolution takes exclusive locks up front, avoiding the
	// classic shared→exclusive upgrade deadlock between two updaters.
	updateStmt bool

	funcs     map[string]*FuncDecl
	globalEnv *env // prolog-variable scope, used by function bodies
	lazyCache map[int][]Item
	tempOrd   uint64
}

// NewExecCtx creates an execution context over an engine transaction.
func NewExecCtx(tx *core.Tx) *ExecCtx {
	return &ExecCtx{Tx: tx, lazyCache: make(map[int][]Item)}
}

// Result is the outcome of one statement.
type Result struct {
	Items   []Item // query results
	Updated int    // nodes affected by an update statement
	Message string // DDL acknowledgement
	ctx     *ExecCtx
}

// Execute parses, analyzes, rewrites and runs one statement. This is the
// paper's full pipe: parser → static analysis → optimizing rewriter →
// executor (§5).
func Execute(ctx *ExecCtx, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecuteStatement(ctx, st)
}

// ExecuteStatement runs an already-parsed statement (benchmarks reuse
// parsed trees to isolate execution cost).
func ExecuteStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	if err := Analyze(st); err != nil {
		return nil, err
	}
	if !ctx.NoRewrite {
		Rewrite(st)
	}
	if ctx.NoVirtualCtors {
		clearVirtualFlags(st)
	}
	ctx.funcs = st.Prolog.Funcs
	if ctx.lazyCache == nil {
		ctx.lazyCache = make(map[int][]Item)
	}
	e := &env{ctx: ctx, r: ctx.Tx.Tx}
	// Prolog variables bind in order.
	for _, v := range st.Prolog.Vars {
		val, err := eval(v.Seq, e, nil)
		if err != nil {
			return nil, err
		}
		e = e.bind(v.Var, val)
	}
	ctx.globalEnv = e

	switch {
	case st.Query != nil:
		items, err := eval(st.Query, e, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Items: items, ctx: ctx}, nil
	case st.Update != nil:
		ctx.updateStmt = true
		n, err := execUpdate(st.Update, e)
		if err != nil {
			return nil, err
		}
		return &Result{Updated: n, Message: fmt.Sprintf("update: %d node(s)", n), ctx: ctx}, nil
	case st.DDL != nil:
		msg, err := execDDL(st.DDL, e)
		if err != nil {
			return nil, err
		}
		return &Result{Message: msg, ctx: ctx}, nil
	default:
		return nil, fmt.Errorf("query: empty statement")
	}
}

// Serialize writes the result sequence to w: nodes as XML, atomic values as
// their lexical forms, items separated by single spaces (adjacent atomics)
// or nothing (nodes).
func (r *Result) Serialize(w io.Writer) error {
	e := &env{ctx: r.ctx, r: r.ctx.Tx.Tx}
	prevAtomic := false
	for _, it := range r.Items {
		switch x := it.(type) {
		case *Atomic:
			if prevAtomic {
				if _, err := io.WriteString(w, " "); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, x.StringValue()); err != nil {
				return err
			}
			prevAtomic = true
		case *NodeItem:
			if err := core.SerializeNode(e.r, x.Doc, x.D, w); err != nil {
				return err
			}
			prevAtomic = false
		case *TempItem:
			if err := serializeTemp(e, x.N, w); err != nil {
				return err
			}
			prevAtomic = false
		}
	}
	return nil
}

// String serializes the result to a string.
func (r *Result) String() (string, error) {
	var sb strings.Builder
	if err := r.Serialize(&sb); err != nil {
		return "", err
	}
	if r.Message != "" && len(r.Items) == 0 {
		return r.Message, nil
	}
	return sb.String(), nil
}
