package query

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/trace"
)

// ExecCtx carries everything one statement execution needs: the engine
// transaction, the function table, rewriter switches (used by the ablation
// experiments) and runtime statistics.
type ExecCtx struct {
	Tx *core.Tx

	// Profile records how the last statement executed through this context
	// spent its time and what it touched (the embedded ExecStats counters
	// accumulate over the context's lifetime); it is also pushed into the
	// database's metrics registry.
	Profile metrics.QueryProfile

	// NoRewrite disables the optimizing rewriter (baseline for E5–E8).
	NoRewrite bool
	// NoOpt disables the cost-based optimizer: no step plans, no automatic
	// index probes, no costed fan-out or prefetch (baseline for E23).
	NoOpt bool
	// NoVirtualCtors disables the virtual-constructor optimisation
	// (baseline for E9).
	NoVirtualCtors bool

	// Workers caps intra-query parallelism for statements run through this
	// context: 1 forces serial execution, 0 resolves the database's
	// -query-workers setting (default GOMAXPROCS). Set it before the first
	// statement; the worker pool is built on first use.
	Workers int

	// PrefetchDepth is the chain-readahead depth for block-list scans: how
	// many nextBlock links ahead of the scan the buffer manager may load.
	// 0 resolves the database's -prefetch-depth setting (default off), a
	// negative value forces readahead off for this context. At effective
	// depth 0 the read path is byte-identical to a build without readahead.
	PrefetchDepth int

	// updateStmt is set while executing an update statement so that
	// document resolution takes exclusive locks up front, avoiding the
	// classic shared→exclusive upgrade deadlock between two updaters.
	updateStmt bool

	funcs     map[string]*FuncDecl
	globalEnv *env // prolog-variable scope, used by function bodies

	// sh is the executor state shared between the root context and its
	// worker forks: the stats block, the lazy-clause cache, the temp-node
	// ordinal counter and the worker pool.
	sh *execShared

	// forked marks a worker's view of the context (see fork). A forked
	// context owns its span cursor but never re-points the transaction's
	// event span — that stays with the coordinator.
	forked bool

	// Tracing state: the database's tracer, the open trace (nil when not
	// tracing — the disabled path's single check) and the innermost open
	// span, which storage-layer events attach to via the transaction.
	tracer *trace.Tracer
	trace  *trace.Trace
	span   *trace.Span
}

// execShared is the per-statement executor state a root context shares with
// its worker forks. Everything here is safe for concurrent use: the profile
// counters are accumulated atomically, the lazy cache is mutex-guarded, the
// ordinal counter is atomic, and the pool hands out goroutine tokens.
type execShared struct {
	prof    *metrics.QueryProfile // the root context's Profile
	lazyMu  sync.Mutex
	lazy    map[int][]Item
	tempOrd atomic.Uint64

	// killed is the statement's cancellation token: set (from any
	// goroutine) by Kill, observed by every worker fork at axis-step and
	// FLWOR iteration boundaries via checkKilled.
	killed atomic.Bool

	poolOnce sync.Once
	pool     *workerPool

	// storeMu guards the per-document storage-backend registry and its
	// backend tallies; prefetchDepth is the statement's resolved readahead
	// depth, restored when a paged document joins a resident-only statement.
	storeMu       sync.Mutex
	stores        map[uint32]docStore
	residentDocs  int
	pagedDocs     int
	prefetchDepth int

	// plannedWorkers is the cost-based optimizer's chosen fan-out width for
	// this statement (0 = no decision); pool() consults it when the context
	// has no explicit Workers cap.
	plannedWorkers int
}

// ErrKilled is returned by a statement terminated through ExecCtx.Kill. The
// server maps it to a clean transaction abort.
var ErrKilled = fmt.Errorf("query: statement killed")

// Kill requests cancellation of the statement executing through this context
// (and all its worker forks). Safe to call from any goroutine, at any time,
// including after the statement finished (then a no-op for that statement —
// contexts are not reused across statements by the server).
func (ctx *ExecCtx) Kill() { ctx.shared().killed.Store(true) }

// Killed reports whether Kill has been called.
func (ctx *ExecCtx) Killed() bool { return ctx.shared().killed.Load() }

// checkKilled is the executor's cancellation point: a single atomic load on
// the hot path, returning ErrKilled once Kill has been called. Placed at
// axis-step stream boundaries and FLWOR iteration boundaries so even a
// statement in one long storage scan notices promptly.
func (ctx *ExecCtx) checkKilled() error {
	if ctx.sh != nil && ctx.sh.killed.Load() {
		return ErrKilled
	}
	return nil
}

// NewExecCtx creates an execution context over an engine transaction.
func NewExecCtx(tx *core.Tx) *ExecCtx {
	ctx := &ExecCtx{Tx: tx}
	ctx.sh = &execShared{prof: &ctx.Profile, lazy: make(map[int][]Item)}
	if tx != nil && tx.DB() != nil {
		ctx.tracer = tx.DB().Tracer()
	}
	return ctx
}

// shared returns the context's shared executor state, creating it for bare
// contexts built without NewExecCtx (tests, tools). Must first be called
// from the statement's coordinating goroutine, which every execution path
// does before any fan-out.
func (ctx *ExecCtx) shared() *execShared {
	if ctx.sh == nil {
		ctx.sh = &execShared{prof: &ctx.Profile, lazy: make(map[int][]Item)}
	}
	return ctx.sh
}

// stats returns the ExecStats block executor events accumulate into: always
// the root context's profile, shared by worker forks. Callers increment
// through the atomic Add* methods.
func (ctx *ExecCtx) stats() *metrics.ExecStats {
	return &ctx.shared().prof.ExecStats
}

// lazyLookup consults the shared lazy-clause cache.
func (ctx *ExecCtx) lazyLookup(id int) ([]Item, bool) {
	sh := ctx.shared()
	sh.lazyMu.Lock()
	v, ok := sh.lazy[id]
	sh.lazyMu.Unlock()
	return v, ok
}

// lazyStore records a lazy clause's materialized binding sequence. Racing
// workers may store the same id; either value is correct (both evaluated
// the same expression over the same snapshot), so last-write-wins is fine.
func (ctx *ExecCtx) lazyStore(id int, v []Item) {
	sh := ctx.shared()
	sh.lazyMu.Lock()
	sh.lazy[id] = v
	sh.lazyMu.Unlock()
}

// fork derives a worker's view of the context for one parallel section: it
// shares the transaction, function table, rewriter switches and the shared
// executor state, but owns its span cursor so the worker's spans nest under
// its own "worker N" span.
func (ctx *ExecCtx) fork(span *trace.Span) *ExecCtx {
	return &ExecCtx{
		Tx:             ctx.Tx,
		NoRewrite:      ctx.NoRewrite,
		NoOpt:          ctx.NoOpt,
		NoVirtualCtors: ctx.NoVirtualCtors,
		Workers:        ctx.Workers,
		PrefetchDepth:  ctx.PrefetchDepth,
		updateStmt:     ctx.updateStmt,
		funcs:          ctx.funcs,
		globalEnv:      ctx.globalEnv,
		sh:             ctx.shared(),
		forked:         true,
		tracer:         ctx.tracer,
		trace:          ctx.trace,
		span:           span,
	}
}

// StartTrace opens a trace for the statement about to execute, unless one
// is already open or tracing is off. The caller that opened a trace
// finishes it with FinishTrace; a server session opens it before execution
// and finishes after commit so commit-time fsyncs land in the trace.
func (ctx *ExecCtx) StartTrace(src string) {
	if ctx.trace != nil {
		return
	}
	ctx.adoptTrace(ctx.tracer.Start(src))
}

// adoptTrace installs an open trace on the context and attaches its root to
// the transaction and the tracer's active-span table.
func (ctx *ExecCtx) adoptTrace(tr *trace.Trace) {
	if tr == nil {
		return
	}
	ctx.trace = tr
	ctx.span = tr.Root
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(tr.Root)
		ctx.tracer.SetActive(ctx.Tx.ID(), tr.Root)
	}
}

// FinishTrace completes the open trace (no-op when none is open).
func (ctx *ExecCtx) FinishTrace() {
	if ctx.trace == nil {
		return
	}
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(nil)
		ctx.tracer.SetActive(ctx.Tx.ID(), nil)
	}
	ctx.tracer.Finish(ctx.trace)
	ctx.trace = nil
	ctx.span = nil
}

// Trace returns the context's open trace (nil when not tracing).
func (ctx *ExecCtx) Trace() *trace.Trace { return ctx.trace }

// RecordParse attributes an already-measured parse time to the profile and,
// when tracing, to a finished "parse" child span.
func (ctx *ExecCtx) RecordParse(ns int64) {
	ctx.Profile.ParseNs = ns
	if ctx.trace != nil {
		ctx.trace.Root.ChildDone("parse", ns)
	}
}

// pushSpan opens a child of the current span and makes it current; returns
// nil (and stays free of side effects) when not tracing. Worker forks keep
// their span cursor private: only the coordinating goroutine re-points the
// transaction's event span.
func (ctx *ExecCtx) pushSpan(name string) *trace.Span {
	c := ctx.span.Child(name)
	if c != nil {
		ctx.span = c
		if ctx.Tx != nil && !ctx.forked {
			ctx.Tx.SetTraceSpan(c)
		}
	}
	return c
}

// popSpan ends a span opened by pushSpan and restores its parent.
func (ctx *ExecCtx) popSpan(c *trace.Span) {
	if c == nil {
		return
	}
	c.End()
	ctx.span = c.Parent()
	if ctx.Tx != nil && !ctx.forked {
		ctx.Tx.SetTraceSpan(ctx.span)
	}
}

// Result is the outcome of one statement.
type Result struct {
	Items   []Item // query results
	Updated int    // nodes affected by an update statement
	Message string // DDL acknowledgement
	ctx     *ExecCtx
}

// Execute parses, analyzes, rewrites and runs one statement. This is the
// paper's full pipe: parser → static analysis → optimizing rewriter →
// executor (§5).
func Execute(ctx *ExecCtx, src string) (*Result, error) {
	owned := ctx.trace == nil
	if owned {
		ctx.StartTrace(src)
	}
	parseStart := time.Now()
	st, err := Parse(src)
	parseNs := time.Since(parseStart).Nanoseconds()
	if err != nil {
		if owned {
			ctx.FinishTrace()
		}
		if reg := ctx.registry(); reg != nil {
			reg.Counter("query.errors").Inc()
		}
		return nil, err
	}
	ctx.RecordParse(parseNs)
	res, err := ExecuteStatement(ctx, st)
	if owned {
		ctx.FinishTrace()
	}
	return res, err
}

// registry resolves the metrics registry of the database the context's
// transaction runs against (nil when unavailable).
func (ctx *ExecCtx) registry() *metrics.Registry {
	if ctx.Tx == nil || ctx.Tx.DB() == nil {
		return nil
	}
	return ctx.Tx.DB().Metrics()
}

// statementKind labels a statement for the per-kind latency histograms.
func statementKind(st *Statement) string {
	switch {
	case st.Explain != nil && st.Explain.Profile:
		return "profile"
	case st.Explain != nil:
		return "explain"
	case st.Update != nil:
		return "update"
	case st.DDL != nil:
		return "ddl"
	default:
		return "query"
	}
}

// ExecuteStatement runs an already-parsed statement (benchmarks reuse
// parsed trees to isolate execution cost) and publishes the statement's
// latency and profile into the database's metrics registry.
func ExecuteStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	owned := ctx.trace == nil
	if owned {
		ctx.StartTrace(st.Source)
	}
	kind := statementKind(st)
	ctx.Profile.Kind = kind
	ctx.Profile.OptimizeNs = 0
	ctx.Profile.ExecNs = 0
	ctx.Profile.PagesTouched = 0
	ctx.Profile.NodesYielded = 0
	depth := ctx.resolvePrefetchDepth()
	ctx.Tx.SetPrefetchDepth(depth)
	ctx.shared().prefetchDepth = depth
	hintsBefore := ctx.Tx.PrefetchHints()
	pagesBefore := ctx.Tx.PagesTouched()
	start := time.Now()
	res, err := executeStatement(ctx, st)
	ctx.Profile.PagesTouched = ctx.Tx.PagesTouched() - pagesBefore
	if depth > 0 && ctx.span != nil {
		ctx.span.SetInt("prefetch_depth", int64(depth))
		ctx.span.SetInt("prefetch_hints", int64(ctx.Tx.PrefetchHints()-hintsBefore))
	}
	if res != nil {
		if len(res.Items) > 0 {
			ctx.Profile.NodesYielded = len(res.Items)
		} else {
			ctx.Profile.NodesYielded = res.Updated
		}
	}
	if reg := ctx.registry(); reg != nil {
		if err != nil {
			reg.Counter("query.errors").Inc()
		} else {
			reg.Counter("query.statements").Inc()
			reg.Histogram("query." + kind + "_ns").Observe(time.Since(start))
			reg.RecordProfile(ctx.Profile)
		}
	}
	if owned {
		ctx.FinishTrace()
	}
	return res, err
}

// resolvePrefetchDepth resolves the effective chain-readahead depth for a
// statement: the context's explicit setting, else the database default;
// never negative.
func (ctx *ExecCtx) resolvePrefetchDepth() int {
	d := ctx.PrefetchDepth
	if d == 0 && ctx.Tx != nil && ctx.Tx.DB() != nil {
		d = ctx.Tx.DB().PrefetchDepth()
	}
	if d < 0 {
		d = 0
	}
	return d
}

func executeStatement(ctx *ExecCtx, st *Statement) (*Result, error) {
	if st.Explain != nil {
		if st.Explain.Profile {
			return execProfile(ctx, st.Explain.Stmt)
		}
		return execExplain(ctx, st.Explain.Stmt)
	}
	optStart := time.Now()
	asp := ctx.pushSpan("analyze")
	if err := Analyze(st); err != nil {
		ctx.popSpan(asp)
		return nil, err
	}
	ctx.popSpan(asp)
	if !ctx.NoRewrite {
		rsp := ctx.pushSpan("rewrite")
		Rewrite(st)
		ctx.popSpan(rsp)
	}
	if ctx.NoOpt || ctx.NoRewrite {
		clearPlans(st)
	} else {
		osp := ctx.pushSpan("optimize")
		optimizeStatement(ctx, st)
		ctx.popSpan(osp)
	}
	ctx.Profile.OptimizeNs = time.Since(optStart).Nanoseconds()
	execStart := time.Now()
	esp := ctx.pushSpan("execute")
	defer func() {
		ctx.Profile.ExecNs = time.Since(execStart).Nanoseconds()
		ctx.popSpan(esp)
	}()
	if ctx.NoVirtualCtors {
		clearVirtualFlags(st)
	}
	ctx.funcs = st.Prolog.Funcs
	ctx.shared() // materialize shared executor state before any fan-out
	e := &env{ctx: ctx, r: ctx.Tx.Tx}
	// Prolog variables bind in order.
	for _, v := range st.Prolog.Vars {
		val, err := eval(v.Seq, e, nil)
		if err != nil {
			return nil, err
		}
		e = e.bind(v.Var, val)
	}
	ctx.globalEnv = e

	switch {
	case st.Query != nil:
		items, err := eval(st.Query, e, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Items: items, ctx: ctx}, nil
	case st.Update != nil:
		ctx.updateStmt = true
		n, err := execUpdate(st.Update, e)
		if err != nil {
			return nil, err
		}
		return &Result{Updated: n, Message: fmt.Sprintf("update: %d node(s)", n), ctx: ctx}, nil
	case st.DDL != nil:
		msg, err := execDDL(st.DDL, e)
		if err != nil {
			return nil, err
		}
		return &Result{Message: msg, ctx: ctx}, nil
	default:
		return nil, fmt.Errorf("query: empty statement")
	}
}

// execExplain analyzes and rewrites the inner statement without executing
// it and yields the annotated operation tree as a single string item.
func execExplain(ctx *ExecCtx, inner *Statement) (*Result, error) {
	if err := Analyze(inner); err != nil {
		return nil, err
	}
	if !ctx.NoRewrite {
		Rewrite(inner)
	}
	if ctx.NoOpt || ctx.NoRewrite {
		clearPlans(inner)
	} else {
		optimizeStatement(ctx, inner)
	}
	if ctx.NoVirtualCtors {
		clearVirtualFlags(inner)
	}
	hint := ""
	if ctx.Tx != nil && ctx.Tx.DB() != nil && ctx.Tx.DB().Resident() {
		if inner.ReadOnly() && !ctx.Tx.ReadOnly() {
			// Resident serving requires a snapshot transaction; an update
			// transaction reads paged even for its read-only statements.
			hint = storagePaged
		} else if inner.ReadOnly() {
			hint = storageResident
		} else {
			hint = storagePaged
		}
	}
	return &Result{Items: []Item{str(ExplainTextStorage(inner, hint))}, ctx: ctx}, nil
}

// execProfile executes the inner statement under a forced trace — stashing
// any ambient trace so the PROFILE always yields its own complete span tree
// — and renders the trace as a single string item.
func execProfile(ctx *ExecCtx, inner *Statement) (*Result, error) {
	if ctx.tracer == nil {
		// No database tracer wired (bare contexts in tests/tools): a
		// private tracer still renders the span tree.
		ctx.tracer = trace.New(ctx.registry())
	}
	prevTrace, prevSpan := ctx.trace, ctx.span
	ctx.trace, ctx.span = nil, nil
	tr := ctx.tracer.StartForced(inner.Source)
	ctx.adoptTrace(tr)
	// PROFILE runs the statement directly, so it applies (and annotates) the
	// readahead depth itself, as ExecuteStatement does for plain statements.
	depth := ctx.resolvePrefetchDepth()
	ctx.shared().prefetchDepth = depth
	var hintsBefore uint64
	if ctx.Tx != nil {
		ctx.Tx.SetPrefetchDepth(depth)
		hintsBefore = ctx.Tx.PrefetchHints()
	}
	res, err := executeStatement(ctx, inner)
	if depth > 0 && ctx.span != nil && ctx.Tx != nil {
		ctx.span.SetInt("prefetch_depth", int64(depth))
		ctx.span.SetInt("prefetch_hints", int64(ctx.Tx.PrefetchHints()-hintsBefore))
	}
	// Close out the forced trace and restore the ambient one (if any).
	if ctx.Tx != nil {
		ctx.Tx.SetTraceSpan(prevSpan)
		var prevRoot *trace.Span
		if prevTrace != nil {
			prevRoot = prevTrace.Root
		}
		ctx.tracer.SetActive(ctx.Tx.ID(), prevRoot)
	}
	ctx.tracer.Finish(tr)
	ctx.trace, ctx.span = prevTrace, prevSpan
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(tr.Text())
	if res != nil {
		fmt.Fprintf(&sb, "  result: %d item(s), %d updated\n", len(res.Items), res.Updated)
	}
	return &Result{Items: []Item{str(sb.String())}, ctx: ctx}, nil
}

// Serialize writes the result sequence to w: nodes as XML, atomic values as
// their lexical forms, items separated by single spaces (adjacent atomics)
// or nothing (nodes).
func (r *Result) Serialize(w io.Writer) error {
	e := &env{ctx: r.ctx, r: r.ctx.Tx.Tx}
	prevAtomic := false
	for _, it := range r.Items {
		switch x := it.(type) {
		case *Atomic:
			if prevAtomic {
				if _, err := io.WriteString(w, " "); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, x.StringValue()); err != nil {
				return err
			}
			prevAtomic = true
		case *NodeItem:
			// Serialize over the backend that produced the node: resident
			// descriptors carry no paged navigation fields.
			st := e.storeFor(x.Doc)
			if err := core.SerializeNodeVia(storeAccess{e: e, doc: x.Doc, st: st}, x.Doc, x.D, w); err != nil {
				return err
			}
			prevAtomic = false
		case *TempItem:
			if err := serializeTemp(e, x.N, w); err != nil {
				return err
			}
			prevAtomic = false
		}
	}
	return nil
}

// String serializes the result to a string.
func (r *Result) String() (string, error) {
	var sb strings.Builder
	if err := r.Serialize(&sb); err != nil {
		return "", err
	}
	if r.Message != "" && len(r.Items) == 0 {
		return r.Message, nil
	}
	return sb.String(), nil
}
