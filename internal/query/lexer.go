package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokName           // NCName or QName (a:b)
	tokVar            // $name
	tokString         // "..." or '...'
	tokNumber
	tokSymbol // punctuation and operators, in tok.text
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

// lexer tokenizes the query language. XML constructor content is lexed by
// the parser switching the lexer into raw mode via nextRawUntil.
type lexer struct {
	src  string
	pos  int
	toks []token // lookahead buffer
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	line := 1 + strings.Count(l.src[:min(pos, len(l.src))], "\n")
	return fmt.Errorf("query: line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// peek returns the next token without consuming it.
func (l *lexer) peek() (token, error) { return l.peekN(0) }

func (l *lexer) peekN(n int) (token, error) {
	for len(l.toks) <= n {
		t, err := l.scan()
		if err != nil {
			return token{}, err
		}
		l.toks = append(l.toks, t)
	}
	return l.toks[n], nil
}

// next consumes and returns the next token.
func (l *lexer) next() (token, error) {
	t, err := l.peek()
	if err != nil {
		return token{}, err
	}
	l.toks = l.toks[1:]
	return t, nil
}

// rawByte returns the next raw source byte (constructor content mode); the
// lookahead buffer must be empty.
func (l *lexer) rawByte() (byte, bool) {
	if len(l.toks) != 0 {
		panic("query: rawByte with buffered tokens")
	}
	if l.pos >= len(l.src) {
		return 0, false
	}
	c := l.src[l.pos]
	l.pos++
	return c, true
}

// rawPeek peeks the next raw byte.
func (l *lexer) rawPeek() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
			depth := 1
			i := l.pos + 2
			for i < len(l.src) && depth > 0 {
				if strings.HasPrefix(l.src[i:], "(:") {
					depth++
					i += 2
				} else if strings.HasPrefix(l.src[i:], ":)") {
					depth--
					i += 2
				} else {
					i++
				}
			}
			if depth > 0 {
				return l.errf(l.pos, "unterminated comment")
			}
			l.pos = i
		default:
			return nil
		}
	}
	return nil
}

// multi-character symbols, longest first.
var symbols = []string{
	"<<", ">>", "!=", "<=", ">=", ":=", "//", "..", "::",
	"(", ")", "[", "]", "{", "}", ",", ";", "/", "@", "*", "+", "-",
	"=", "<", ">", "|", ".", "$", "?",
}

func (l *lexer) scan() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	// String literal.
	if c == '"' || c == '\'' {
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					b.WriteByte(quote) // doubled quote escape
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")
	}

	// Number.
	if c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9') {
		i := l.pos
		seenDot := false
		for i < len(l.src) {
			ch := l.src[i]
			if ch >= '0' && ch <= '9' {
				i++
			} else if ch == '.' && !seenDot {
				// ".." must not be eaten as part of a number
				if i+1 < len(l.src) && l.src[i+1] == '.' {
					break
				}
				seenDot = true
				i++
			} else if ch == 'e' || ch == 'E' {
				j := i + 1
				if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
					j++
				}
				if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
					i = j
					for i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9' {
						i++
					}
				}
				break
			} else {
				break
			}
		}
		text := l.src[l.pos:i]
		l.pos = i
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, l.errf(start, "bad number %q", text)
		}
		return token{kind: tokNumber, text: text, num: f, pos: start}, nil
	}

	// Variable.
	if c == '$' {
		l.pos++
		name := l.scanQName()
		if name == "" {
			return token{}, l.errf(start, "expected variable name after $")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	}

	// Name / QName.
	if isNameStart(rune(c)) {
		name := l.scanQName()
		return token{kind: tokName, text: name, pos: start}, nil
	}

	// Symbols.
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			return token{kind: tokSymbol, text: s, pos: start}, nil
		}
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) scanQName() string {
	i := l.pos
	if i >= len(l.src) || !isNameStart(rune(l.src[i])) {
		return ""
	}
	i++
	for i < len(l.src) && isNameChar(rune(l.src[i])) {
		i++
	}
	// Optional :localname (but not ::= axis separator or :=).
	if i+1 < len(l.src) && l.src[i] == ':' && l.src[i+1] != ':' && l.src[i+1] != '=' && isNameStart(rune(l.src[i+1])) {
		i += 2
		for i < len(l.src) && isNameChar(rune(l.src[i])) {
			i++
		}
	}
	name := l.src[l.pos:i]
	l.pos = i
	return name
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
