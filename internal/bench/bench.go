// Package bench provides the shared corpus builders and measurement helpers
// behind the experiment suite (DESIGN.md E1–E16): the root bench_test.go
// benchmarks and the cmd/sedna-bench harness both build on it.
package bench

import (
	"fmt"
	"os"
	"strings"

	"sedna"
	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/query"
	"sedna/internal/schema"
	"sedna/internal/storage"
	"sedna/internal/subtree"
	"sedna/internal/xmlgen"
)

// OpenDB creates a throwaway database under dir (NoSync: experiments
// measure algorithmic behaviour, not fsync latency, unless stated).
func OpenDB(dir string) (*sedna.DB, error) {
	return OpenDBMetrics(dir, nil)
}

// OpenDBMetrics is OpenDB reporting into a shared metrics registry, so a
// harness run can accumulate internals counters across its databases.
func OpenDBMetrics(dir string, reg *metrics.Registry) (*sedna.DB, error) {
	return sedna.Open(dir, &sedna.Options{NoSync: true, BufferPages: 8192, Metrics: reg})
}

// LoadLibrary loads an n-entry library corpus as document "lib".
func LoadLibrary(db *sedna.DB, n int) error {
	return db.LoadXML("lib", strings.NewReader(xmlgen.LibraryString(n, 42)))
}

// LoadAuction loads an auction corpus as document "auction".
func LoadAuction(db *sedna.DB, people, items, bids int) error {
	return db.LoadXML("auction", strings.NewReader(xmlgen.AuctionString(people, items, bids, 42)))
}

// LoadSections loads a Sections corpus (sections distinctly named section
// elements of perSection items each — the multi-schema-node shape the
// parallel executor fans out over) as document "cat".
func LoadSections(db *sedna.DB, sections, perSection int) error {
	return db.LoadXML("cat", strings.NewReader(xmlgen.SectionsString(sections, perSection, 42)))
}

// QueryWorkers runs a query under an explicit intra-query worker budget
// (1 = serial baseline) and returns the result data plus executor stats.
func QueryWorkers(db *sedna.DB, src string, workers int) (string, query.ExecStats, error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return "", query.ExecStats{}, err
	}
	defer tx.Rollback()
	ctx := query.NewExecCtx(tx)
	ctx.Workers = workers
	res, err := query.Execute(ctx, src)
	if err != nil {
		return "", query.ExecStats{}, err
	}
	var sb strings.Builder
	if err := res.Serialize(&sb); err != nil {
		return "", query.ExecStats{}, err
	}
	return sb.String(), ctx.Profile.ExecStats, nil
}

// QueryOpt runs a query with the cost-based optimizer on or off, under an
// explicit worker budget (0 = let the plan / database default decide),
// returning the result data plus executor stats — the E23 measurement
// harness for optimized vs hand-forced plans.
func QueryOpt(db *sedna.DB, src string, optimize bool, workers int) (string, query.ExecStats, error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return "", query.ExecStats{}, err
	}
	defer tx.Rollback()
	ctx := query.NewExecCtx(tx)
	ctx.NoOpt = !optimize
	ctx.Workers = workers
	res, err := query.Execute(ctx, src)
	if err != nil {
		return "", query.ExecStats{}, err
	}
	var sb strings.Builder
	if err := res.Serialize(&sb); err != nil {
		return "", query.ExecStats{}, err
	}
	return sb.String(), ctx.Profile.ExecStats, nil
}

// OpenDBBulk opens a database with an explicit LoadXML ingest path — the
// E24 measurement setup comparing the streaming bulk loader against
// node-at-a-time inserts.
func OpenDBBulk(dir string, reg *metrics.Registry, mode sedna.BulkLoadMode) (*sedna.DB, error) {
	return sedna.Open(dir, &sedna.Options{NoSync: true, BufferPages: 8192, Metrics: reg, BulkLoad: mode})
}

// OpenDBPrefetch reopens a database directory with an explicit default
// chain-readahead depth. The buffer pool starts empty, so the first scan
// after opening runs against a cold cache — the E19 measurement setup.
func OpenDBPrefetch(dir string, reg *metrics.Registry, depth int) (*sedna.DB, error) {
	return sedna.Open(dir, &sedna.Options{NoSync: true, BufferPages: 8192, Metrics: reg, PrefetchDepth: depth})
}

// OpenDBResident reopens a database directory with the compressed in-memory
// resident mode on (budget 0 = default 256 MiB). The buffer pool starts
// empty, so the first statement per document pays the resident build against
// a cold cache — the E22 measurement setup.
func OpenDBResident(dir string, reg *metrics.Registry, budget int64) (*sedna.DB, error) {
	return sedna.Open(dir, &sedna.Options{NoSync: true, BufferPages: 8192, Metrics: reg, Resident: true, ResidentBudget: budget})
}

// QueryPrefetch runs a query under an explicit per-statement chain-readahead
// depth (> 0 enables readahead regardless of the database default, < 0
// forces it off) and returns the result data plus executor stats.
func QueryPrefetch(db *sedna.DB, src string, depth int) (string, query.ExecStats, error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return "", query.ExecStats{}, err
	}
	defer tx.Rollback()
	ctx := query.NewExecCtx(tx)
	ctx.PrefetchDepth = depth
	res, err := query.Execute(ctx, src)
	if err != nil {
		return "", query.ExecStats{}, err
	}
	var sb strings.Builder
	if err := res.Serialize(&sb); err != nil {
		return "", query.ExecStats{}, err
	}
	return sb.String(), ctx.Profile.ExecStats, nil
}

// SubtreeStore builds the subtree-clustered baseline store with the same
// library corpus inside the same database (separate pages).
func SubtreeStore(db *sedna.DB, n int) (*subtree.Store, *core.Tx, error) {
	tx, err := db.Internal().Begin()
	if err != nil {
		return nil, nil, err
	}
	st, err := subtree.Load(tx.Tx, strings.NewReader(xmlgen.LibraryString(n, 42)))
	if err != nil {
		tx.Rollback()
		return nil, nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, nil, err
	}
	rtx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return nil, nil, err
	}
	return st, rtx, nil
}

// Query runs a query with the rewriter on or off and returns the result
// data plus executor stats.
func Query(db *sedna.DB, src string, rewrite bool) (string, query.ExecStats, error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return "", query.ExecStats{}, err
	}
	defer tx.Rollback()
	ctx := query.NewExecCtx(tx)
	ctx.NoRewrite = !rewrite
	res, err := query.Execute(ctx, src)
	if err != nil {
		return "", query.ExecStats{}, err
	}
	var sb strings.Builder
	if err := res.Serialize(&sb); err != nil {
		return "", query.ExecStats{}, err
	}
	return sb.String(), ctx.Profile.ExecStats, nil
}

// QueryCtor runs a query with virtual constructors on or off.
func QueryCtor(db *sedna.DB, src string, virtual bool) (string, query.ExecStats, error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return "", query.ExecStats{}, err
	}
	defer tx.Rollback()
	ctx := query.NewExecCtx(tx)
	ctx.NoVirtualCtors = !virtual
	res, err := query.Execute(ctx, src)
	if err != nil {
		return "", query.ExecStats{}, err
	}
	var sb strings.Builder
	if err := res.Serialize(&sb); err != nil {
		return "", query.ExecStats{}, err
	}
	return sb.String(), ctx.Profile.ExecStats, nil
}

// SchemaStats reports descriptive-schema conciseness for a document:
// schema-node count versus document-node count (experiment E15).
func SchemaStats(db *sedna.DB, docName string) (schemaNodes int, docNodes uint64, err error) {
	tx, err := db.Internal().BeginReadOnly()
	if err != nil {
		return 0, 0, err
	}
	defer tx.Rollback()
	doc, err := tx.Document(docName)
	if err != nil {
		return 0, 0, err
	}
	schemaNodes = doc.Schema.Len()
	doc.Schema.Root.Walk(func(sn *schema.Node) {
		docNodes += sn.NodeCount
	})
	return schemaNodes, docNodes, nil
}

// FirstBookHandle returns the handle of the first book element (helper for
// the pointer-chase and move experiments).
func FirstBookHandle(tx *core.Tx, docName string) (storage.Desc, *storage.Doc, error) {
	doc, err := tx.Document(docName)
	if err != nil {
		return storage.Desc{}, nil, err
	}
	lib := doc.Schema.Root.Children[0]
	var bookSn *schema.Node
	for _, c := range lib.Children {
		if c.Name == "book" {
			bookSn = c
		}
	}
	if bookSn == nil {
		return storage.Desc{}, nil, fmt.Errorf("bench: no book schema node")
	}
	d, ok, err := storage.FirstOfSchema(tx.Tx, bookSn)
	if err != nil || !ok {
		return storage.Desc{}, nil, fmt.Errorf("bench: no book node: %v", err)
	}
	return d, doc, nil
}

// TempDir creates a working directory for a harness run.
func TempDir(pattern string) (string, func(), error) {
	dir, err := os.MkdirTemp("", pattern)
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
