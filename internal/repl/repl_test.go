package repl_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sedna/client"
	"sedna/internal/core"
	"sedna/internal/repl"
	"sedna/internal/server"
	"sedna/internal/storage"
	"sedna/internal/xmlgen"
)

// startPrimary opens a fresh database and serves it.
func startPrimary(t *testing.T) (*server.Server, *core.Database) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen(db, "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

// startReplica seeds a replica of the primary into dir and serves it.
func startReplica(t *testing.T, dir, primaryAddr string) (*repl.Replica, *server.Server) {
	t.Helper()
	rep, err := repl.Start(dir, primaryAddr, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Listen(rep.DB(), "127.0.0.1:0")
	if err != nil {
		rep.Close()
		t.Fatal(err)
	}
	srv.Governor().SetReplica(rep)
	t.Cleanup(func() {
		srv.Close()
		rep.Stop()
		rep.DB().Close()
	})
	return rep, srv
}

func connect(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustExec(t *testing.T, c *client.Conn, q string) *client.Result {
	t.Helper()
	res, err := c.Execute(q)
	if err != nil {
		t.Fatalf("execute %q: %v", q, err)
	}
	return res
}

// waitConverged polls until the replica answers q exactly like the primary.
func waitConverged(t *testing.T, primary, replica *client.Conn, q string) string {
	t.Helper()
	want := mustExec(t, primary, q).Data
	deadline := time.Now().Add(15 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		res, err := replica.Execute(q)
		if err == nil {
			got = res.Data
			if got == want {
				return want
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica did not converge on %q: primary=%q replica=%q", q, want, got)
	return ""
}

func TestReplicaSeedAndStreamConverges(t *testing.T) {
	srv, _ := startPrimary(t)
	p := connect(t, srv.Addr())

	// Pre-seed state: exercised by the hot-backup transfer.
	mustExec(t, p, `CREATE DOCUMENT "d"`)
	mustExec(t, p, `UPDATE insert <r><seed>1</seed></r> into doc("d")`)

	_, rsrv := startReplica(t, t.TempDir(), srv.Addr())
	r := connect(t, rsrv.Addr())

	// Write burst while the replica streams.
	for i := 0; i < 1000; i++ {
		mustExec(t, p, fmt.Sprintf(`UPDATE insert <x>%d</x> into doc("d")/r`, i))
	}
	mustExec(t, p, `CREATE DOCUMENT "late"`)
	mustExec(t, p, `UPDATE insert <l><v>42</v></l> into doc("late")`)

	waitConverged(t, p, r, `count(doc("d")/r/x)`)
	data := waitConverged(t, p, r, `doc("d")/r`)
	if data == "" {
		t.Fatal("empty converged serialization")
	}
	waitConverged(t, p, r, `doc("late")/l`)

	// The replica is read-only.
	if _, err := r.Execute(`UPDATE insert <nope/> into doc("d")/r`); err == nil {
		t.Fatal("replica accepted a write before promotion")
	}

	// Topology is observable from both sides.
	pt, err := p.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if pt.Role != "primary" || len(pt.Replicas) != 1 {
		t.Fatalf("primary topology = %+v", pt)
	}
	rt, err := r.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Role != "replica" || rt.Self == nil || rt.Self.State != "streaming" {
		t.Fatalf("replica topology = %+v", rt)
	}
}

func TestReplicaReconnectCatchesUp(t *testing.T) {
	srv, _ := startPrimary(t)
	p := connect(t, srv.Addr())
	mustExec(t, p, `CREATE DOCUMENT "d"`)
	mustExec(t, p, `UPDATE insert <r/> into doc("d")`)

	rep, rsrv := startReplica(t, t.TempDir(), srv.Addr())
	r := connect(t, rsrv.Addr())
	waitConverged(t, p, r, `count(doc("d")//node())`)

	// Sever the stream, keep writing, and require full catch-up after the
	// automatic reconnect.
	rep.BreakConn()
	for i := 0; i < 100; i++ {
		mustExec(t, p, fmt.Sprintf(`UPDATE insert <y>%d</y> into doc("d")/r`, i))
	}
	waitConverged(t, p, r, `count(doc("d")/r/y)`)
	waitConverged(t, p, r, `doc("d")/r`)
	if n := rep.DB().Metrics().Counter("repl.reconnects").Value(); n == 0 {
		t.Fatal("reconnect not counted")
	}
}

func TestReplicaRestartResumesFromWatermark(t *testing.T) {
	srv, _ := startPrimary(t)
	p := connect(t, srv.Addr())
	mustExec(t, p, `CREATE DOCUMENT "d"`)
	mustExec(t, p, `UPDATE insert <r><a>1</a></r> into doc("d")`)

	dir := t.TempDir()
	rep, err := repl.Start(dir, srv.Addr(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := server.Listen(rep.DB(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv.Governor().SetReplica(rep)
	r := connect(t, rsrv.Addr())
	waitConverged(t, p, r, `doc("d")/r`)

	// Shut the replica down cleanly, advance the primary, restart the
	// replica over the same directory: it must resume from its persisted
	// watermark (no seed) and catch up.
	r.Close() // the server waits for live sessions on Close
	rsrv.Close()
	rep.Stop()
	if err := rep.DB().Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustExec(t, p, fmt.Sprintf(`UPDATE insert <b>%d</b> into doc("d")/r`, i))
	}

	_, rsrv2 := startReplica(t, dir, srv.Addr())
	r2 := connect(t, rsrv2.Addr())
	waitConverged(t, p, r2, `count(doc("d")/r/b)`)
	waitConverged(t, p, r2, `doc("d")/r`)
}

func TestPromoteMakesReplicaWritableAndDurable(t *testing.T) {
	srv, _ := startPrimary(t)
	p := connect(t, srv.Addr())
	mustExec(t, p, `CREATE DOCUMENT "d"`)
	mustExec(t, p, `UPDATE insert <r><a>1</a></r> into doc("d")`)

	dir := t.TempDir()
	rep, err := repl.Start(dir, srv.Addr(), core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := server.Listen(rep.DB(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv.Governor().SetReplica(rep)
	r := connect(t, rsrv.Addr())
	waitConverged(t, p, r, `doc("d")/r`)

	if _, err := r.Execute(`UPDATE insert <w/> into doc("d")/r`); err == nil {
		t.Fatal("write accepted before promotion")
	}
	msg, err := r.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if msg == "" {
		t.Fatal("empty promote acknowledgement")
	}
	mustExec(t, r, `UPDATE insert <w>post</w> into doc("d")/r`)
	if got := mustExec(t, r, `count(doc("d")/r/w)`).Data; got != "1" {
		t.Fatalf("post-promote write invisible: count=%q", got)
	}
	rt, err := r.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Role != "primary" {
		t.Fatalf("promoted node still reports role %q", rt.Role)
	}

	// Promoted writes survive a clean restart as a normal database.
	r.Close() // the server waits for live sessions on Close
	rsrv.Close()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(dir, core.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Replica() {
		t.Fatal("promoted database reopened as replica")
	}
	srv2, err := server.Listen(db, "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	c2 := connect(t, srv2.Addr())
	got := mustExec(t, c2, `count(doc("d")/r/w)`).Data
	c2.Close() // before srv2.Close: the server waits for live sessions
	srv2.Close()
	db.Close()
	if got != "1" {
		t.Fatalf("post-promote write lost after restart: count=%q", got)
	}
}

// TestReplicaAppliesBulkLoad streams a primary-side bulk load (whole-page
// WAL images plus the RecBulkLoad marker) to a replica and requires the
// replica to serve the identical document, account the load as a load, and
// keep it through a restart of its own.
func TestReplicaAppliesBulkLoad(t *testing.T) {
	srv, db := startPrimary(t)
	p := connect(t, srv.Addr())
	mustExec(t, p, `CREATE DOCUMENT "seed"`)
	mustExec(t, p, `UPDATE insert <r><a>1</a></r> into doc("seed")`)

	dir := t.TempDir()
	rep, rsrv := startReplica(t, dir, srv.Addr())
	r := connect(t, rsrv.Addr())
	waitConverged(t, p, r, `doc("seed")/r`)

	// Bulk-load on the primary through the embedded API (the path every
	// fresh-document LoadXML takes), while the replica streams.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.LoadXML("lib", strings.NewReader(xmlgen.LibraryString(300, 11))); err != nil {
		tx.Rollback()
		t.Fatalf("bulk load on primary: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	waitConverged(t, p, r, `count(doc("lib")//node())`)
	if data := waitConverged(t, p, r, `doc("lib")/library/book[5]`); data == "" {
		t.Fatal("empty converged serialization")
	}
	if n := rep.DB().Metrics().Counter("load.replicated_bulk_loads").Value(); n != 1 {
		t.Fatalf("load.replicated_bulk_loads = %d, want 1", n)
	}
	if n := rep.DB().Metrics().Counter("load.replicated_bulk_nodes").Value(); n == 0 {
		t.Fatal("load.replicated_bulk_nodes not accounted")
	}

	// Counters stay approximate during physical apply; promotion recounts
	// them, after which the bulk-loaded document must verify fully.
	if _, err := r.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	rtx, err := rep.DB().BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := rtx.Document("lib")
	if err != nil {
		rtx.Rollback()
		t.Fatalf("replicated document missing: %v", err)
	}
	if err := storage.VerifyDoc(rtx.Tx, doc); err != nil {
		rtx.Rollback()
		t.Fatalf("replicated document corrupt after promote: %v", err)
	}
	rtx.Rollback()
}
