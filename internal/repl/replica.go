package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/wal"
	"sedna/internal/wire"
)

// Reconnect backoff bounds.
const (
	backoffMin = 100 * time.Millisecond
	backoffMax = 5 * time.Second
)

// readTimeout bounds how long the replica waits for a frame; the primary
// heartbeats far more often than this, so an expired read means the
// connection is dead even if TCP has not noticed.
const readTimeout = 5 * time.Second

// handshakeTimeout bounds the MsgReplicate reply; a seeding handshake waits
// for a full hot backup on the primary first, so it is far more generous.
const handshakeTimeout = 10 * time.Minute

// Replica runs one database in replica mode: it connects to a primary,
// seeds itself with a hot backup when starting empty, and applies the
// streamed log continuously, reconnecting with exponential backoff after
// failures. Reads are served from the underlying database the whole time;
// Promote detaches it and makes it writable.
type Replica struct {
	dir     string
	primary string
	db      *core.Database

	reconnects *metrics.Counter
	lag        *metrics.Gauge

	mu      sync.Mutex
	conn    net.Conn // live stream, nil while disconnected
	state   string
	lastErr error

	// Stream state, owned by the run loop: pending accumulates each
	// in-flight primary transaction's records until its commit arrives.
	pending  map[uint64]*pendingTxn
	pos      uint64 // next primary-log byte expected from the stream
	restartW uint64 // resume point: everything below is applied or aborted
	commitW  uint64 // just past the last applied commit record

	stop chan struct{}
	once sync.Once
	done chan struct{}
}

type pendingTxn struct {
	first uint64 // LSN of the transaction's begin record
	recs  []*wal.Record
}

// errApply marks a local apply failure: the data diverged or the disk
// failed, so reconnecting cannot help and the replica halts.
var errApply = errors.New("repl: apply failed")

// Start opens (seeding first if dir holds no database) and runs a replica of
// the primary at addr. opts.Replica is forced on. The returned replica is
// already serving reads; streaming and catch-up proceed in the background.
func Start(dir, addr string, opts core.Options) (*Replica, error) {
	opts.Replica = true
	r := &Replica{
		dir:     dir,
		primary: addr,
		state:   "connecting",
		pending: make(map[uint64]*pendingTxn),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}

	var conn net.Conn
	var start uint64
	if _, err := os.Stat(filepath.Join(dir, "data.sdb")); os.IsNotExist(err) {
		// Empty directory: seed from a hot backup over the wire, then open
		// the restored copy. The same connection continues as the stream.
		c, hs, err := r.dial(0, true)
		if err != nil {
			return nil, fmt.Errorf("repl: seed from %s: %w", addr, err)
		}
		if err := r.receiveSeed(c); err != nil {
			c.Close()
			return nil, fmt.Errorf("repl: seed from %s: %w", addr, err)
		}
		db, err := core.Open(dir, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		// Make the seed point durable before applying anything: a crash
		// right after seeding must not resume from LSN zero.
		if err := db.SetReplProgress(hs.StartLSN, hs.StartLSN); err != nil {
			c.Close()
			db.Close()
			return nil, err
		}
		r.db, conn, start = db, c, hs.StartLSN
	} else {
		db, err := core.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		r.db = db
		start, _ = db.ReplProgress()
	}

	r.reconnects = r.db.Metrics().Counter("repl.reconnects")
	r.lag = r.db.Metrics().Gauge("repl.replica_lag_lsn")
	r.pos, r.restartW = start, start
	_, r.commitW = r.db.ReplProgress()
	r.setConn(conn)
	go r.run(conn)
	return r, nil
}

// DB returns the underlying database (read-only until promoted).
func (r *Replica) DB() *core.Database { return r.db }

// Topology is the REPLSTATUS report: the node's role, its connected
// downstream replicas (when it serves any) and, on a replica, its own
// stream state.
type Topology struct {
	Role     string          `json:"role"` // "primary" or "replica"
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
	Self     *SelfStatus     `json:"self,omitempty"`
}

// SelfStatus is a replica's own view of replication, served by REPLSTATUS.
type SelfStatus struct {
	Primary    string `json:"primary"`
	State      string `json:"state"`
	RestartLSN uint64 `json:"restart_lsn"`
	CommitLSN  uint64 `json:"commit_lsn"`
	LagLSNs    uint64 `json:"lag_lsns"`
	LastError  string `json:"last_error,omitempty"`
}

// Status reports connection state and watermarks.
func (r *Replica) Status() SelfStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := SelfStatus{
		Primary:    r.primary,
		State:      r.state,
		RestartLSN: r.restartW,
		CommitLSN:  r.commitW,
		LagLSNs:    uint64(r.lag.Value()),
	}
	if r.lastErr != nil {
		s.LastError = r.lastErr.Error()
	}
	return s
}

func (r *Replica) setState(state string, err error) {
	r.mu.Lock()
	r.state = state
	if err != nil {
		r.lastErr = err
	}
	r.mu.Unlock()
}

func (r *Replica) setConn(c net.Conn) {
	r.mu.Lock()
	r.conn = c
	r.mu.Unlock()
}

// BreakConn severs the current stream (tests: forces the reconnect path).
func (r *Replica) BreakConn() {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
}

// Stop ends streaming without closing the database.
func (r *Replica) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.BreakConn()
	<-r.done
}

// Close stops streaming and closes the database.
func (r *Replica) Close() error {
	r.Stop()
	return r.db.Close()
}

// Promote detaches the replica from its primary and makes the database
// writable: streaming stops, buffered in-flight transactions are discarded
// (they were not committed on this node), and core.Promote recounts
// statistics and checkpoints. The database keeps serving throughout.
func (r *Replica) Promote() error {
	r.Stop()
	r.pending = map[uint64]*pendingTxn{}
	if err := r.db.Promote(); err != nil && !errors.Is(err, core.ErrNotReplica) {
		return err
	}
	r.setState("promoted", nil)
	return nil
}

// dial connects to the primary and performs the MsgReplicate handshake.
func (r *Replica) dial(from uint64, needSeed bool) (net.Conn, *wire.Handshake, error) {
	conn, err := net.Dial("tcp", r.primary)
	if err != nil {
		return nil, nil, err
	}
	req := wire.Request{FromLSN: from, NeedSeed: needSeed}
	if err := wire.WriteMsg(conn, wire.MsgReplicate, &req); err != nil {
		conn.Close()
		return nil, nil, err
	}
	var resp wire.Response
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, err := wire.ReadMsg(conn, &resp)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if typ == wire.MsgError {
		conn.Close()
		return nil, nil, fmt.Errorf("primary refused: %s", resp.Error)
	}
	var hs wire.Handshake
	if err := json.Unmarshal([]byte(resp.Data), &hs); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, &hs, nil
}

// receiveSeed stores the streamed backup files into dir/seed.tmp, restores
// them into dir and removes the staging area. Staging plus restore keeps the
// "is this directory initialised" check (data.sdb exists) truthful even if
// the transfer dies halfway.
func (r *Replica) receiveSeed(conn net.Conn) error {
	r.setState("seeding", nil)
	stage := filepath.Join(r.dir, "seed.tmp")
	if err := os.RemoveAll(stage); err != nil {
		return err
	}
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(stage)
	var cur *os.File
	var want int64
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		err := cur.Sync()
		if cerr := cur.Close(); err == nil {
			err = cerr
		}
		cur = nil
		return err
	}
	defer closeCur()
	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		typ, body, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case wire.FrameSeedFile:
			if err := closeCur(); err != nil {
				return err
			}
			var sf wire.SeedFile
			if err := json.Unmarshal(body, &sf); err != nil {
				return err
			}
			if sf.Name != filepath.Base(sf.Name) || strings.HasPrefix(sf.Name, ".") {
				return fmt.Errorf("unsafe seed file name %q", sf.Name)
			}
			cur, err = os.Create(filepath.Join(stage, sf.Name))
			if err != nil {
				return err
			}
			want = sf.Size
		case wire.FrameSeedData:
			if cur == nil {
				return errors.New("seed data before file header")
			}
			if _, err := cur.Write(body); err != nil {
				return err
			}
			want -= int64(len(body))
		case wire.FrameSeedDone:
			if want != 0 {
				return fmt.Errorf("seed file truncated (%d bytes missing)", want)
			}
			if err := closeCur(); err != nil {
				return err
			}
			conn.SetReadDeadline(time.Time{})
			return core.Restore(stage, r.dir, -1)
		default:
			return fmt.Errorf("unexpected frame %#x during seed", typ)
		}
		if want < 0 {
			return errors.New("seed file overrun")
		}
	}
}

func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// run is the replica's streaming loop: consume frames until the connection
// dies, then reconnect from the in-memory restart watermark with exponential
// backoff. A local apply failure halts the replica (state "failed") — the
// data cannot self-heal by reconnecting.
func (r *Replica) run(conn net.Conn) {
	defer close(r.done)
	backoff := backoffMin
	for {
		if conn == nil {
			c, hs, err := r.dial(r.restartW, false)
			if err != nil {
				if r.stopped() {
					return
				}
				r.setState("reconnecting", err)
				select {
				case <-r.stop:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > backoffMax {
					backoff = backoffMax
				}
				continue
			}
			conn = c
			backoff = backoffMin
			r.reconnects.Inc()
			r.setConn(conn)
			// Reconnected streams restart at the watermark: drop partially
			// buffered transactions, they will be re-shipped in full.
			r.pending = map[uint64]*pendingTxn{}
			r.pos = hs.StartLSN
		}
		r.setState("streaming", nil)
		err := r.consume(conn)
		conn.Close()
		r.setConn(nil)
		conn = nil
		if r.stopped() {
			return
		}
		if errors.Is(err, errApply) {
			r.setState("failed", err)
			return
		}
		r.setState("reconnecting", err)
	}
}

// consume processes stream frames until an error.
func (r *Replica) consume(conn net.Conn) error {
	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		typ, body, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case wire.FrameWAL:
			if len(body) < 8 {
				return errors.New("repl: short WAL frame")
			}
			base := binary.LittleEndian.Uint64(body)
			if base != r.pos {
				return fmt.Errorf("repl: stream gap: got chunk at %d, expected %d", base, r.pos)
			}
			if err := r.applyChunk(base, body[8:]); err != nil {
				return err
			}
			if err := r.ack(conn); err != nil {
				return err
			}
		case wire.FrameHeartbeat:
			if len(body) == 8 {
				durable := binary.LittleEndian.Uint64(body)
				var lag uint64
				if durable > r.restartW {
					lag = durable - r.restartW
				}
				r.lag.Set(int64(lag))
			}
			if err := r.ack(conn); err != nil {
				return err
			}
		default:
			return fmt.Errorf("repl: unexpected frame %#x on stream", typ)
		}
	}
}

// ack reports the restart watermark back to the primary.
func (r *Replica) ack(conn net.Conn) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], r.restartW)
	return wire.WriteFrame(conn, wire.FrameAck, b[:])
}

// applyChunk walks one record-aligned chunk of the primary's log, buffering
// records per transaction and applying each transaction atomically when its
// commit record arrives. Commits at or below the commit watermark were
// already applied before a reconnect and are dropped; this is sound because
// transactions apply in commit-record order, so one watermark separates the
// applied from the unapplied.
func (r *Replica) applyChunk(base uint64, chunk []byte) error {
	r.mu.Lock() // watermarks are read by Status; mutate under the lock
	defer r.mu.Unlock()
	err := wal.ScanBytes(base, chunk, func(lsn uint64, rec *wal.Record, recLen int) error {
		switch rec.Type {
		case wal.RecBegin:
			r.pending[rec.Txn] = &pendingTxn{first: lsn}
		case wal.RecAbort:
			delete(r.pending, rec.Txn)
		case wal.RecCommit:
			end := lsn + uint64(recLen)
			pt := r.pending[rec.Txn]
			delete(r.pending, rec.Txn)
			if end <= r.commitW {
				return nil // applied before a reconnect; re-shipped overlap
			}
			if pt == nil {
				return fmt.Errorf("%w: commit of unknown transaction %d at %d", errApply, rec.Txn, lsn)
			}
			restart := r.minPending(end)
			if err := r.db.ApplyReplicated(pt.recs, restart, end); err != nil {
				return fmt.Errorf("%w: %v", errApply, err)
			}
			r.restartW, r.commitW = restart, end
		case wal.RecCheckpoint, wal.RecReplApplied:
			// Node-local records; never replicated across nodes.
		default:
			if pt, ok := r.pending[rec.Txn]; ok {
				pt.recs = append(pt.recs, rec)
			}
			// Records of transactions begun before the stream start belong
			// to already-applied transactions; their commit is dropped by
			// the watermark, so the records are skipped silently too.
		}
		return nil
	})
	if err != nil {
		return err
	}
	r.pos = base + uint64(len(chunk))
	r.restartW = r.minPending(r.pos)
	return nil
}

// minPending returns the restart watermark given the scan has reached fallback:
// the oldest first-record LSN among in-flight transactions, or fallback when
// none are in flight.
func (r *Replica) minPending(fallback uint64) uint64 {
	min := fallback
	for _, pt := range r.pending {
		if pt.first < min {
			min = pt.first
		}
	}
	return min
}
