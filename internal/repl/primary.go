// Package repl implements streaming write-ahead-log replication: a primary
// ships its log to read replicas, which apply committed transactions through
// the regular transaction machinery while serving snapshot reads. A joining
// replica with no state is seeded with a hot backup first; a returning
// replica resumes from its durable replication watermark. Replicas
// acknowledge applied positions so the primary can report per-replica lag,
// and a replica can be promoted to a writable primary when the original
// fails.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sedna/internal/core"
	"sedna/internal/metrics"
	"sedna/internal/wire"
)

// shipChunk bounds how many log bytes one FrameWAL carries.
const shipChunk = 256 << 10

// seedChunk bounds how many file bytes one FrameSeedData carries.
const seedChunk = 1 << 20

// heartbeatEvery is how often a caught-up stream emits its durable LSN.
const heartbeatEvery = 200 * time.Millisecond

// Primary manages the replication streams of one database. The server hands
// it connections that sent MsgReplicate; each becomes one outgoing stream.
type Primary struct {
	db      *core.Database
	shipped *metrics.Counter
	lag     *metrics.Gauge

	mu      sync.Mutex
	streams map[*stream]struct{}
	closed  bool
}

// stream is one connected replica.
type stream struct {
	conn    net.Conn
	addr    string
	since   time.Time
	acked   atomic.Uint64 // replica's restart LSN: everything below is applied
	seeding atomic.Bool
	stop    chan struct{}
	once    sync.Once
}

func (st *stream) close() { st.once.Do(func() { close(st.stop); st.conn.Close() }) }

// NewPrimary creates the replication manager for a database. It reports
// into the database's metrics registry under the "repl." family.
func NewPrimary(db *core.Database) *Primary {
	reg := db.Metrics()
	return &Primary{
		db:      db,
		shipped: reg.Counter("repl.records_shipped"),
		lag:     reg.Gauge("repl.replica_lag_lsn"),
		streams: make(map[*stream]struct{}),
	}
}

// ReplicaStatus describes one connected replica as reported by REPLSTATUS.
type ReplicaStatus struct {
	Addr     string `json:"addr"`
	State    string `json:"state"` // "seeding" or "streaming"
	AckedLSN uint64 `json:"acked_lsn"`
	LagLSNs  uint64 `json:"lag_lsns"` // durable LSN minus acknowledged LSN
	Seconds  int64  `json:"connected_s"`
}

// Status reports every connected replica.
func (p *Primary) Status() []ReplicaStatus {
	durable := p.db.WAL().DurableLSN()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(p.streams))
	for st := range p.streams {
		s := ReplicaStatus{
			Addr:     st.addr,
			State:    "streaming",
			AckedLSN: st.acked.Load(),
			Seconds:  int64(time.Since(st.since).Seconds()),
		}
		if st.seeding.Load() {
			s.State = "seeding"
		}
		if durable > s.AckedLSN {
			s.LagLSNs = durable - s.AckedLSN
		}
		out = append(out, s)
	}
	return out
}

// Close terminates every replication stream, unblocking their server
// goroutines. The primary keeps accepting new streams only through
// ServeConn, which fails once closed.
func (p *Primary) Close() {
	p.mu.Lock()
	p.closed = true
	streams := make([]*stream, 0, len(p.streams))
	for st := range p.streams {
		streams = append(streams, st)
	}
	p.mu.Unlock()
	for _, st := range streams {
		st.close()
	}
}

func (p *Primary) register(st *stream) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("repl: primary is closed")
	}
	p.streams[st] = struct{}{}
	return nil
}

func (p *Primary) unregister(st *stream) {
	p.mu.Lock()
	delete(p.streams, st)
	p.mu.Unlock()
	p.updateLag()
}

// updateLag publishes the worst-replica lag: durable LSN minus the smallest
// acknowledged LSN (0 with no replicas connected).
func (p *Primary) updateLag() {
	durable := p.db.WAL().DurableLSN()
	var minAcked uint64
	first := true
	p.mu.Lock()
	for st := range p.streams {
		if a := st.acked.Load(); first || a < minAcked {
			minAcked, first = a, false
		}
	}
	p.mu.Unlock()
	var lag uint64
	if !first && durable > minAcked {
		lag = durable - minAcked
	}
	p.lag.Set(int64(lag))
}

// ServeConn runs one replication stream over a connection whose MsgReplicate
// request is req. It blocks until the replica disconnects or the primary is
// closed; the caller owns (and closes) the connection. With NeedSeed the
// replica first receives a hot backup taken on the spot; otherwise the WAL
// stream starts at req.FromLSN, which must not exceed the durable LSN.
func (p *Primary) ServeConn(conn net.Conn, req *wire.Request) error {
	st := &stream{conn: conn, addr: conn.RemoteAddr().String(), since: time.Now(), stop: make(chan struct{})}
	start := req.FromLSN
	var seedDir string
	if req.NeedSeed {
		dir, err := os.MkdirTemp("", "sedna-seed-")
		if err != nil {
			wire.WriteMsg(conn, wire.MsgError, &wire.Response{Error: err.Error()})
			return err
		}
		defer os.RemoveAll(dir)
		if err := p.db.Backup(dir); err != nil {
			wire.WriteMsg(conn, wire.MsgError, &wire.Response{Error: err.Error()})
			return fmt.Errorf("repl: seed backup: %w", err)
		}
		m, err := core.ReadBackupManifest(dir)
		if err != nil {
			wire.WriteMsg(conn, wire.MsgError, &wire.Response{Error: err.Error()})
			return err
		}
		seedDir, start = dir, m.DurableLSN
		st.seeding.Store(true)
	} else if durable := p.db.WAL().DurableLSN(); start > durable {
		err := fmt.Errorf("repl: requested LSN %d past durable %d (need a seed)", start, durable)
		wire.WriteMsg(conn, wire.MsgError, &wire.Response{Error: err.Error()})
		return err
	}
	if err := p.register(st); err != nil {
		wire.WriteMsg(conn, wire.MsgError, &wire.Response{Error: err.Error()})
		return err
	}
	defer p.unregister(st)
	defer st.close()
	st.acked.Store(start)

	hs, err := json.Marshal(wire.Handshake{Seed: req.NeedSeed, StartLSN: start})
	if err != nil {
		return err
	}
	if err := wire.WriteMsg(conn, wire.MsgResult, &wire.Response{Data: string(hs)}); err != nil {
		return err
	}
	if seedDir != "" {
		if err := p.sendSeed(conn, seedDir); err != nil {
			return fmt.Errorf("repl: seed transfer: %w", err)
		}
		st.seeding.Store(false)
	}

	// Acks flow back on the same connection; a read error there also ends
	// the stream (the replica is gone).
	go func() {
		defer st.close()
		for {
			typ, body, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			if typ == wire.FrameAck && len(body) == 8 {
				st.acked.Store(binary.LittleEndian.Uint64(body))
				p.updateLag()
			}
		}
	}()
	return p.streamLog(st, start)
}

// sendSeed ships every file of the backup directory.
func (p *Primary) sendSeed(conn net.Conn, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	buf := make([]byte, seedChunk)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		hdr, err := json.Marshal(wire.SeedFile{Name: e.Name(), Size: info.Size()})
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(conn, wire.FrameSeedFile, hdr); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		for {
			n, rerr := f.Read(buf)
			if n > 0 {
				if err := wire.WriteFrame(conn, wire.FrameSeedData, buf[:n]); err != nil {
					f.Close()
					return err
				}
			}
			if rerr != nil {
				break
			}
		}
		f.Close()
	}
	return wire.WriteFrame(conn, wire.FrameSeedDone, nil)
}

// streamLog tails the log from pos, shipping record-aligned chunks as they
// become durable and heartbeating the durable LSN when caught up.
func (p *Primary) streamLog(st *stream, pos uint64) error {
	rd, err := p.db.WAL().OpenReader()
	if err != nil {
		return err
	}
	defer rd.Close()
	notify := make(chan struct{}, 1)
	cancel := p.db.WAL().NotifyDurable(notify)
	defer cancel()
	var hdr [8]byte
	for {
		select {
		case <-st.stop:
			return nil
		default:
		}
		data, next, n, err := rd.ReadRecords(pos, shipChunk)
		if err != nil {
			return err
		}
		if n > 0 {
			frame := make([]byte, 8+len(data))
			binary.LittleEndian.PutUint64(frame, pos)
			copy(frame[8:], data)
			if err := wire.WriteFrame(st.conn, wire.FrameWAL, frame); err != nil {
				return err
			}
			p.shipped.Add(uint64(n))
			pos = next
			continue
		}
		binary.LittleEndian.PutUint64(hdr[:], p.db.WAL().DurableLSN())
		if err := wire.WriteFrame(st.conn, wire.FrameHeartbeat, hdr[:]); err != nil {
			return err
		}
		select {
		case <-notify:
		case <-st.stop:
			return nil
		case <-time.After(heartbeatEvery):
		}
	}
}
