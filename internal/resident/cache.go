package resident

import (
	"sync"

	"sedna/internal/metrics"
)

// Cache holds resident representations across documents under a byte-size
// budget with LRU eviction. Entries validate by commit timestamp: a reader
// shares a cached Rep iff its snapshot resolves the document to the same
// metadata version the Rep was built against. Invalidation just drops the
// cache reference — Reps are immutable, so in-flight readers keep theirs.
//
// The barrier guards replicas: physical page applies from a primary do not
// touch document metadata, so after an apply commit every cached Rep is
// flushed and readers whose snapshot predates the barrier fall back to
// paged access rather than share a Rep across the apply.
type Cache struct {
	mu       sync.Mutex
	budget   uint64
	entries  map[string]*entry
	inflight map[string]chan struct{}
	// tooBig remembers versions whose Rep exceeds the whole budget, so each
	// statement does not rebuild them just to throw them away.
	tooBig  map[string]uint64
	barrier uint64
	total   uint64
	tick    uint64

	hits, builds, fallbacks, invalidations, evictions *metrics.Counter
	bytes                                             *metrics.Gauge
}

type entry struct {
	rep     *Rep
	lastUse uint64
}

// DefaultBudget is the resident byte budget when none is configured
// (256 MiB).
const DefaultBudget = 256 << 20

// NewCache creates a cache with the given byte budget (<= 0 uses
// DefaultBudget), reporting into reg.
func NewCache(budget int64, reg *metrics.Registry) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	reg = metrics.OrNew(reg)
	return &Cache{
		budget:        uint64(budget),
		entries:       make(map[string]*entry),
		inflight:      make(map[string]chan struct{}),
		tooBig:        make(map[string]uint64),
		hits:          reg.Counter("resident.hits"),
		builds:        reg.Counter("resident.builds"),
		fallbacks:     reg.Counter("resident.fallbacks"),
		invalidations: reg.Counter("resident.invalidations"),
		evictions:     reg.Counter("resident.evictions"),
		bytes:         reg.Gauge("resident.bytes"),
	}
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() uint64 { return c.budget }

// Acquire returns the resident representation of the named document at the
// given metadata version, building it via build on a miss. Concurrent
// acquirers of the same document wait for one in-flight build instead of
// duplicating it. Returns nil when the document must be served paged (build
// failed, the Rep alone exceeds the budget, or the reader's snapshot
// predates the replication barrier) — each such return counts one fallback.
func (c *Cache) Acquire(name string, version, snapTS uint64, build func() (*Rep, error)) *Rep {
	c.mu.Lock()
	for {
		if snapTS < c.barrier {
			c.mu.Unlock()
			c.fallbacks.Inc()
			return nil
		}
		if ent := c.entries[name]; ent != nil && ent.rep.CommitTS == version {
			c.tick++
			ent.lastUse = c.tick
			c.mu.Unlock()
			c.hits.Inc()
			return ent.rep
		}
		if v, ok := c.tooBig[name]; ok && v == version {
			c.mu.Unlock()
			c.fallbacks.Inc()
			return nil
		}
		ch, busy := c.inflight[name]
		if !busy {
			break
		}
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[name] = ch
	c.mu.Unlock()

	rep, err := build()

	c.mu.Lock()
	delete(c.inflight, name)
	close(ch)
	if err != nil || rep == nil {
		c.mu.Unlock()
		c.fallbacks.Inc()
		return nil
	}
	c.builds.Inc()
	if rep.Bytes > c.budget {
		c.tooBig[name] = version
		c.mu.Unlock()
		c.fallbacks.Inc()
		return nil
	}
	if rep.SnapTS < c.barrier {
		// Built under a snapshot older than a replicated apply that landed
		// mid-build: correct for this reader, but not cacheable.
		c.mu.Unlock()
		return rep
	}
	if old := c.entries[name]; old != nil {
		if old.rep.CommitTS > rep.CommitTS {
			// A newer version is already cached (this build served a reader
			// on an older snapshot): keep it, hand the fresh Rep to the
			// caller only.
			c.mu.Unlock()
			return rep
		}
		c.total -= old.rep.Bytes
	}
	c.tick++
	c.entries[name] = &entry{rep: rep, lastUse: c.tick}
	c.total += rep.Bytes
	c.evictLocked(name)
	c.bytes.Set(int64(c.total))
	c.mu.Unlock()
	return rep
}

// evictLocked drops least-recently-used entries (never keep) until the
// total fits the budget.
func (c *Cache) evictLocked(keep string) {
	for c.total > c.budget {
		var victim string
		var oldest uint64
		for name, ent := range c.entries {
			if name == keep {
				continue
			}
			if victim == "" || ent.lastUse < oldest {
				victim, oldest = name, ent.lastUse
			}
		}
		if victim == "" {
			return
		}
		c.total -= c.entries[victim].rep.Bytes
		delete(c.entries, victim)
		c.evictions.Inc()
	}
}

// Invalidate drops the named document's cached representation (commit of a
// change or a drop). In-flight readers holding the Rep are unaffected.
func (c *Cache) Invalidate(name string) {
	c.mu.Lock()
	delete(c.tooBig, name)
	ent := c.entries[name]
	if ent != nil {
		c.total -= ent.rep.Bytes
		delete(c.entries, name)
		c.invalidations.Inc()
		c.bytes.Set(int64(c.total))
	}
	c.mu.Unlock()
}

// Barrier flushes the whole cache and refuses resident service to readers
// whose snapshot predates ts — called after a replicated apply commits,
// whose physical page writes change content without touching document
// metadata versions.
func (c *Cache) Barrier(ts uint64) {
	c.mu.Lock()
	if ts > c.barrier {
		c.barrier = ts
	}
	c.flushLocked()
	c.mu.Unlock()
}

// Flush drops every cached representation (resident mode switched off).
func (c *Cache) Flush() {
	c.mu.Lock()
	c.flushLocked()
	c.mu.Unlock()
}

func (c *Cache) flushLocked() {
	for name := range c.entries {
		delete(c.entries, name)
		c.invalidations.Inc()
	}
	c.tooBig = make(map[string]uint64)
	c.total = 0
	c.bytes.Set(0)
}

// Len returns the number of cached documents.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// TotalBytes returns the cached byte total.
func (c *Cache) TotalBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Contains reports whether the named document is currently resident (any
// version).
func (c *Cache) Contains(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	return ok
}
